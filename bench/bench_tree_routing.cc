// Experiment E5 (paper Theorem 7 + Remark 3): distributed tree routing —
// stretch-1 schemes for trees in Õ(√n + D) rounds (single tree) and
// Õ(√(n·s) + D) for n trees with overlap s, versus the Θ(depth) cost of the
// sequential DFS the classical TZ tree scheme needs.
//
// The interesting regime is the one the paper calls out in §1: the
// shortest-path diameter S can be Ω(n) while the hop diameter D stays O(1).
// We build that graph explicitly — a unit-weight path plus a heavy star hub
// — so the SSSP tree is a depth-(n-1) path inside a hop-diameter-2 graph.

#include <cmath>

#include "common.h"
#include "graph/shortest_paths.h"
#include "treeroute/dist_tree.h"

namespace {

using namespace nors;

/// Path 0-1-…-(n-2) with unit weights + hub (n-1) connected to everyone
/// with weight 4n: hop diameter 2, SSSP tree from 0 = the whole path.
graph::WeightedGraph broom(int n) {
  graph::WeightedGraph g(n);
  for (graph::Vertex v = 0; v + 2 < n; ++v) g.add_edge(v, v + 1, 1);
  for (graph::Vertex v = 0; v + 1 < n; ++v) {
    g.add_edge(v, static_cast<graph::Vertex>(n - 1),
               4 * static_cast<graph::Weight>(n));
  }
  g.freeze();
  return g;
}

treeroute::TreeSpec sssp_spec(const graph::WeightedGraph& g,
                              graph::Vertex root) {
  const auto sp = graph::dijkstra(g, root);
  treeroute::TreeSpec spec;
  spec.root = root;
  spec.parent.assign(static_cast<std::size_t>(g.n()), graph::kNoVertex);
  spec.parent_port.assign(static_cast<std::size_t>(g.n()), graph::kNoPort);
  for (graph::Vertex v = 0; v < g.n(); ++v) {
    spec.members.push_back(v);
    if (v == root) continue;
    spec.parent[v] = sp.parent[static_cast<std::size_t>(v)];
    spec.parent_port[v] = sp.parent_port[static_cast<std::size_t>(v)];
  }
  return spec;
}

}  // namespace

int main() {
  const int n_max = bench::env_n(4096);
  bench::print_header("E5 / tree routing",
                      "Theorem 7 rounds vs n; Remark 3 batching; gamma sweep");

  // Single deep tree (depth n-2, hop diameter 2): Theorem 7's Õ(√n + D)
  // vs the Θ(depth) sequential DFS. rounds/n must fall as n grows.
  std::printf("-- single deep tree (S = n-2, D = 2) --\n");
  util::TextTable single({"n", "tree depth", "rounds", "rounds/sqrt(n)",
                          "rounds/n", "DFS cost"});
  for (int n = 512; n <= n_max; n *= 2) {
    const auto g = broom(n);
    std::vector<treeroute::TreeSpec> specs{sssp_spec(g, 0)};
    util::Rng rng(5);
    const auto batch = treeroute::build_dist_tree_batch(g, specs, {}, 2, rng);
    single.add_row(
        {std::to_string(n), std::to_string(n - 2),
         util::TextTable::fmt(batch.ledger.total_rounds()),
         util::TextTable::fmt(
             static_cast<double>(batch.ledger.total_rounds()) /
                 std::sqrt(static_cast<double>(n)),
             0),
         util::TextTable::fmt(
             static_cast<double>(batch.ledger.total_rounds()) / n, 2),
         std::to_string(n)});
  }
  std::printf("%s\n", single.render().c_str());

  // Remark 3: many overlapping trees built together. Cost should grow like
  // √s, far below the s× cost of separate builds.
  const int n = std::min(n_max, 2048);
  const auto g = bench::bench_graph(n, 2024);
  const int d = graph::hop_diameter(g);
  std::printf("-- Remark 3 batching, G(n,3n), n=%d --\n", n);
  util::TextTable batch_t({"#trees (s)", "batch rounds", "s x single",
                           "sqrt(s) ref ratio"});
  std::int64_t single_rounds = 0;
  for (int s : {1, 2, 4, 8, 16}) {
    std::vector<treeroute::TreeSpec> specs;
    for (int i = 0; i < s; ++i) {
      specs.push_back(sssp_spec(
          g, static_cast<graph::Vertex>((i * 131) % g.n())));
    }
    util::Rng rng(6);
    const auto batch = treeroute::build_dist_tree_batch(g, specs, {}, d, rng);
    if (s == 1) single_rounds = batch.ledger.total_rounds();
    batch_t.add_row(
        {std::to_string(s), util::TextTable::fmt(batch.ledger.total_rounds()),
         util::TextTable::fmt(s * single_rounds),
         util::TextTable::fmt(
             static_cast<double>(batch.ledger.total_rounds()) /
                 (static_cast<double>(single_rounds) * std::sqrt(s)),
             2)});
  }
  std::printf("%s\n", batch_t.render().c_str());

  // γ sweep on the deep tree: γ controls subtree depth (≈ n/γ · ln n) vs
  // global broadcast volume (≈ γ·s); Remark 3 balances them at γ = √(n/s).
  std::printf("-- gamma sweep on the deep tree, n=%d --\n", n);
  util::TextTable gam({"gamma", "rounds", "max subtree depth", "|U| total"});
  const auto deep = broom(n);
  std::vector<treeroute::TreeSpec> specs{sssp_spec(deep, 0)};
  for (double gamma : {4.0, 16.0, 64.0, 256.0, 1024.0, 0.0 /*Remark 3*/}) {
    treeroute::DistTreeBatchParams params;
    params.gamma = gamma;
    util::Rng rng(7);
    const auto batch =
        treeroute::build_dist_tree_batch(deep, specs, params, 2, rng);
    gam.add_row({gamma == 0 ? "sqrt(n/s)" : util::TextTable::fmt(gamma, 0),
                 util::TextTable::fmt(batch.ledger.total_rounds()),
                 std::to_string(batch.max_subtree_depth),
                 util::TextTable::fmt(batch.u_total)});
  }
  std::printf("%s\n", gam.render().c_str());
  std::printf(
      "shape checks: single-tree rounds/n falls with n (the sqrt(n) term\n"
      "wins over the Θ(n) DFS); batch cost ~ sqrt(s), not s; subtree depth\n"
      "shrinks as gamma grows, with Remark 3's gamma near the round optimum.\n");
  return 0;
}
