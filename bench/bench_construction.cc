// Construction-pipeline scaling bench (DESIGN.md §7): wall-clock and peak
// RSS of the full RoutingScheme::build at k=3 on the workhorse G(n, 3n)
// workload, n = 2^12 .. 2^16, serial vs thread-pooled rows. The threaded
// rows must report bit-identical round counts — the pool only moves
// wall-clock (the determinism suite enforces the same for tables, labels
// and ledgers). Results land in BENCH_construction.json; the committed
// snapshot lives in bench/results/ (schema: bench/results/README.md).
//
// NORS_BENCH_N caps the largest n for smoke runs (e.g. CI sets 4096);
// NORS_BENCH_THREADS overrides the threaded row's pool size (default 8).

#include <sys/resource.h>

#include <thread>

#include "common.h"
#include "core/scheme.h"

namespace {

using namespace nors;

double peak_rss_mb() {
  struct rusage ru {};
  getrusage(RUSAGE_SELF, &ru);
  return static_cast<double>(ru.ru_maxrss) / 1024.0;  // linux: KiB
}

int threaded_pool_size() {
  if (const char* e = std::getenv("NORS_BENCH_THREADS")) {
    const int v = std::atoi(e);
    if (v >= 1) return v;
  }
  return 8;
}

}  // namespace

int main() {
  bench::print_header("BENCH construction",
                      "scheme_build wall-clock + peak RSS, serial vs "
                      "thread-pooled (k=3, G(n, 3n), w in [1,32])");
  bench::JsonReport report("construction");
  util::TextTable table(
      {"n", "threads", "wall_s", "rounds", "trees", "peak_rss_mb"});

  const int max_n = bench::env_n(1 << 16);
  const int pool = threaded_pool_size();
  for (int n = 1 << 12; n <= max_n; n *= 2) {
    const auto g = bench::bench_graph(n, 911);
    std::int64_t serial_rounds = 0;
    for (const int threads : {1, pool}) {
      core::SchemeParams p;
      p.k = 3;
      p.seed = 7;
      p.threads = threads;
      const bench::WallTimer t;
      const auto s = core::RoutingScheme::build(g, p);
      const double wall = t.seconds();
      const double rss = peak_rss_mb();
      if (threads == 1) {
        serial_rounds = s.total_rounds();
      } else {
        // The pool must never change a round count (DESIGN.md §7).
        NORS_CHECK_MSG(s.total_rounds() == serial_rounds,
                       "threaded build diverged from serial round count");
      }
      table.add_row({util::TextTable::fmt(static_cast<std::int64_t>(n)),
                     util::TextTable::fmt(static_cast<std::int64_t>(threads)),
                     util::TextTable::fmt(wall),
                     util::TextTable::fmt(s.total_rounds()),
                     util::TextTable::fmt(
                         static_cast<std::int64_t>(s.trees().size())),
                     util::TextTable::fmt(rss)});
      report.row()
          .field("row", "construction")
          .field("n", n)
          .field("k", 3)
          .field("threads", threads)
          .field("wall_s", wall)
          .field("rounds", s.total_rounds())
          .field("trees", static_cast<std::int64_t>(s.trees().size()))
          .field("peak_rss_mb", rss);
    }
  }
  std::printf("%s", table.render().c_str());
  report.write();
  return 0;
}
