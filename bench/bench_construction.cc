// Construction-pipeline scaling bench (DESIGN.md §7/§9): wall-clock, peak
// RSS and arena-pool traffic of the full RoutingScheme::build at k=3 on the
// workhorse G(n, 3n) workload, n = 2^12 .. 2^16, serial vs thread-pooled
// rows. The threaded rows must report bit-identical round counts — the pool
// only moves wall-clock (the determinism suite enforces the same for
// tables, labels and ledgers). Results land in BENCH_construction.json; the
// committed snapshot lives in bench/results/ (schema:
// bench/results/README.md).
//
// NORS_BENCH_N caps the largest n for smoke runs (e.g. CI sets 8192);
// NORS_BENCH_THREADS overrides the threaded row's pool size (default 8).
// Note resolve_threads clamps pools to the hardware concurrency, so on a
// 1-core container the pooled row runs serial — the recorded hw_threads
// makes that interpretable in committed snapshots.

#include <sys/resource.h>

#if defined(__GLIBC__)
#include <malloc.h>
#endif

#include <thread>

#include "common.h"
#include "core/scheme.h"
#include "util/arena.h"

namespace {

using namespace nors;

double peak_rss_mb() {
  struct rusage ru {};
  getrusage(RUSAGE_SELF, &ru);
  return static_cast<double>(ru.ru_maxrss) / 1024.0;  // linux: KiB
}

int threaded_pool_size() {
  if (const char* e = std::getenv("NORS_BENCH_THREADS")) {
    const int v = std::atoi(e);
    if (v >= 1) return v;
  }
  return 8;
}

}  // namespace

int main() {
  bench::print_header("BENCH construction",
                      "scheme_build wall-clock + peak RSS + arena traffic, "
                      "serial vs thread-pooled (k=3, G(n, 3n), w in [1,32])");
  bench::JsonReport report("construction");
  util::TextTable table({"n", "threads", "wall_s", "rounds", "trees",
                         "peak_rss_mb", "alloc_mb", "arena_reuse_pct"});

  const int max_n = bench::env_n(1 << 16);
  const int pool = threaded_pool_size();
  const int hw_threads =
      static_cast<int>(std::thread::hardware_concurrency());
  for (int n = 1 << 12; n <= max_n; n *= 2) {
    const auto g = bench::bench_graph(n, 911);
    std::int64_t serial_rounds = 0;
    for (const int threads : {1, pool}) {
      {
      core::SchemeParams p;
      p.k = 3;
      p.seed = 7;
      p.threads = threads;
      const util::ArenaStats pool_before = util::SlabPool::global().stats();
      const bench::WallTimer t;
      const auto s = core::RoutingScheme::build(g, p);
      const double wall = t.seconds();
      const double rss = peak_rss_mb();
      const util::ArenaStats pool_after = util::SlabPool::global().stats();
      // Fresh OS memory the arena pool mapped during this row, and the
      // fraction of slab bytes it served by recycling instead (the delta
      // snapshot scoped to this row — util/arena.h).
      util::ArenaStats row_stats;
      row_stats.bytes_reused =
          pool_after.bytes_reused - pool_before.bytes_reused;
      row_stats.bytes_mapped =
          pool_after.bytes_mapped - pool_before.bytes_mapped;
      const double alloc_mb =
          static_cast<double>(row_stats.bytes_mapped) / (1024.0 * 1024.0);
      const double reuse_pct = row_stats.reuse_pct();
      if (threads == 1) {
        serial_rounds = s.total_rounds();
      } else {
        // The pool must never change a round count (DESIGN.md §7).
        NORS_CHECK_MSG(s.total_rounds() == serial_rounds,
                       "threaded build diverged from serial round count");
      }
      table.add_row({util::TextTable::fmt(static_cast<std::int64_t>(n)),
                     util::TextTable::fmt(static_cast<std::int64_t>(threads)),
                     util::TextTable::fmt(wall),
                     util::TextTable::fmt(s.total_rounds()),
                     util::TextTable::fmt(
                         static_cast<std::int64_t>(s.trees().size())),
                     util::TextTable::fmt(rss),
                     util::TextTable::fmt(alloc_mb),
                     util::TextTable::fmt(reuse_pct)});
      report.row()
          .field("row", "construction")
          .field("n", n)
          .field("k", 3)
          .field("threads", threads)
          .field("hw_threads", hw_threads)
          .field("wall_s", wall)
          .field("rounds", s.total_rounds())
          .field("trees", static_cast<std::int64_t>(s.trees().size()))
          .field("peak_rss_mb", rss)
          .field("alloc_mb", alloc_mb)
          .field("arena_reuse_pct", reuse_pct);
      }
      // Row isolation: the scheme just went out of scope — release its
      // heap pages so the next row's peak reflects its own footprint, not
      // inherited free-list garbage (peak_rss_mb stays process-monotonic;
      // this keeps later rows honest rather than cumulative).
#if defined(__GLIBC__)
      ::malloc_trim(0);
#endif
    }
  }
  std::printf("%s", table.render().c_str());
  report.write();
  return 0;
}
