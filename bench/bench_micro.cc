// Micro-benchmarks (google-benchmark): per-operation latencies of the hot
// query paths — routing decisions, Algorithm-2 distance estimates, TZ05
// oracle queries, and the substrate primitives they sit on. These are the
// O(k)-time / O(1)-word operations the paper's data structures promise.

#include <benchmark/benchmark.h>

#include "common.h"
#include "core/distance_estimation.h"
#include "core/scheme.h"
#include "graph/generators.h"
#include "graph/shortest_paths.h"
#include "primitives/bfs_tree.h"
#include "primitives/set_bf.h"
#include "tz/tz_oracle.h"

namespace {

using namespace nors;

struct Fixture {
  // Heap-stable graph: RoutingScheme keeps a pointer to it, so the graph's
  // address must not change after build().
  std::unique_ptr<graph::WeightedGraph> g;
  std::unique_ptr<core::RoutingScheme> scheme;
  std::unique_ptr<core::DistanceEstimation> de;
  std::unique_ptr<tz::TzDistanceOracle> oracle;

  const graph::WeightedGraph& graph() const { return *g; }

  static const Fixture& get(int k) {
    static std::map<int, std::unique_ptr<Fixture>> cache;
    auto it = cache.find(k);
    if (it == cache.end()) {
      util::Rng rng(4242);
      auto f = std::make_unique<Fixture>();
      f->g = std::make_unique<graph::WeightedGraph>(graph::connected_gnm(
          512, 1536, graph::WeightSpec::uniform(1, 32), rng));
      core::SchemeParams p;
      p.k = k;
      p.seed = 1;
      f->scheme = std::make_unique<core::RoutingScheme>(
          core::RoutingScheme::build(*f->g, p));
      f->de = std::make_unique<core::DistanceEstimation>(
          core::DistanceEstimation::build(*f->scheme));
      f->oracle = std::make_unique<tz::TzDistanceOracle>(
          tz::TzDistanceOracle::build(*f->g, {k, 1}));
      it = cache.emplace(k, std::move(f)).first;
    }
    return *it->second;
  }
};

void BM_RouteEndToEnd(benchmark::State& state) {
  const auto& f = Fixture::get(static_cast<int>(state.range(0)));
  util::Rng rng(9);
  for (auto _ : state) {
    const auto u = static_cast<graph::Vertex>(rng.uniform(f.graph().n()));
    const auto v = static_cast<graph::Vertex>(rng.uniform(f.graph().n()));
    benchmark::DoNotOptimize(f.scheme->route(u, v).length);
  }
}
BENCHMARK(BM_RouteEndToEnd)->Arg(2)->Arg(4);

void BM_DistanceEstimate(benchmark::State& state) {
  const auto& f = Fixture::get(static_cast<int>(state.range(0)));
  util::Rng rng(10);
  for (auto _ : state) {
    const auto u = static_cast<graph::Vertex>(rng.uniform(f.graph().n()));
    const auto v = static_cast<graph::Vertex>(rng.uniform(f.graph().n()));
    benchmark::DoNotOptimize(f.de->estimate(u, v).estimate);
  }
}
BENCHMARK(BM_DistanceEstimate)->Arg(2)->Arg(4);

void BM_TzOracleQuery(benchmark::State& state) {
  const auto& f = Fixture::get(static_cast<int>(state.range(0)));
  util::Rng rng(11);
  for (auto _ : state) {
    const auto u = static_cast<graph::Vertex>(rng.uniform(f.graph().n()));
    const auto v = static_cast<graph::Vertex>(rng.uniform(f.graph().n()));
    benchmark::DoNotOptimize(f.oracle->query(u, v).estimate);
  }
}
BENCHMARK(BM_TzOracleQuery)->Arg(2)->Arg(4);

void BM_Dijkstra(benchmark::State& state) {
  const auto& f = Fixture::get(3);
  util::Rng rng(12);
  for (auto _ : state) {
    const auto u = static_cast<graph::Vertex>(rng.uniform(f.graph().n()));
    benchmark::DoNotOptimize(graph::dijkstra(f.graph(), u).dist[0]);
  }
}
BENCHMARK(BM_Dijkstra);

void BM_SchemeConstruction(benchmark::State& state) {
  util::Rng rng(13);
  const auto g = graph::connected_gnm(
      static_cast<int>(state.range(0)), 3 * state.range(0),
      graph::WeightSpec::uniform(1, 32), rng);
  core::SchemeParams p;
  p.k = 3;
  for (auto _ : state) {
    p.seed += 1;
    benchmark::DoNotOptimize(core::RoutingScheme::build(g, p).total_rounds());
  }
}
BENCHMARK(BM_SchemeConstruction)->Arg(256)->Arg(512)->Unit(benchmark::kMillisecond);

/// Flat-core wall-clock section (n ≥ 10^4): the workloads that exercise the
/// CSR graph + arena CONGEST engine end to end, recorded to
/// BENCH_micro.json so the perf trajectory is tracked across PRs.
void run_flat_core_section() {
  bench::JsonReport report("micro");

  {
    util::Rng rng(4242);
    bench::WallTimer build_t;
    const auto g = graph::connected_gnm(100000, 300000,
                                        graph::WeightSpec::uniform(1, 32), rng);
    report.row()
        .field("workload", "build_gnm")
        .field("n", 100000)
        .field("m", g.m())
        .field("wall_s", build_t.seconds());

    bench::WallTimer dij_t;
    const auto sp = graph::dijkstra(g, 0);
    report.row()
        .field("workload", "dijkstra")
        .field("n", 100000)
        .field("checksum", sp.dist[99999])
        .field("wall_s", dij_t.seconds());

    bench::WallTimer bfs_t;
    const auto bfs = primitives::distributed_bfs_tree(g, 0);
    report.row()
        .field("workload", "congest_bfs")
        .field("n", 100000)
        .field("rounds", bfs.construction_rounds)
        .field("height", bfs.height)
        .field("wall_s", bfs_t.seconds());

    std::vector<graph::Vertex> set;
    for (graph::Vertex v = 0; v < g.n(); v += 317) set.push_back(v);
    bench::WallTimer bf_t;
    const auto bf = primitives::distributed_set_bellman_ford(g, set);
    report.row()
        .field("workload", "congest_set_bf")
        .field("n", 100000)
        .field("sources", static_cast<std::int64_t>(set.size()))
        .field("rounds", bf.rounds)
        .field("messages", bf.messages)
        .field("wall_s", bf_t.seconds());
  }
  {
    util::Rng rng(911);
    const auto g = graph::connected_gnm(16384, 3 * 16384,
                                        graph::WeightSpec::uniform(1, 32), rng);
    core::SchemeParams p;
    p.k = 3;
    p.seed = 7;
    bench::WallTimer t;
    const auto s = core::RoutingScheme::build(g, p);
    report.row()
        .field("workload", "scheme_build")
        .field("n", 16384)
        .field("m", g.m())
        .field("k", 3)
        .field("rounds", s.total_rounds())
        .field("wall_s", t.seconds());
  }
  report.write();
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  run_flat_core_section();
  return 0;
}
