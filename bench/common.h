#pragma once

// Shared helpers for the experiment harness (one binary per experiment in
// DESIGN.md §4). Each binary prints a self-contained table; NORS_BENCH_N
// overrides the default graph size for quick or extended runs.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "graph/generators.h"
#include "graph/properties.h"
#include "graph/shortest_paths.h"
#include "util/random.h"
#include "util/stats.h"
#include "util/table.h"

namespace nors::bench {

inline int env_n(int fallback) {
  const char* e = std::getenv("NORS_BENCH_N");
  if (e == nullptr) return fallback;
  const int v = std::atoi(e);
  return v > 8 ? v : fallback;
}

/// The workhorse workload: connected G(n,m) with uniform integer weights —
/// the "general weighted graph" the paper's theorems address.
inline graph::WeightedGraph bench_graph(int n, std::uint64_t seed,
                                        graph::Weight max_w = 32) {
  util::Rng rng(seed);
  return graph::connected_gnm(n, 3LL * n,
                              graph::WeightSpec::uniform(1, max_w), rng);
}

/// Stretch statistics of a routing scheme over sampled pairs. Route is any
/// callable (u,v) -> length (must be ≥ d_G).
struct StretchStats {
  double avg = 0, p50 = 0, p95 = 0, max = 0;
  int pairs = 0;
};

template <typename RouteFn>
StretchStats measure_stretch(const graph::WeightedGraph& g, RouteFn&& route,
                             int source_stride = 7, int dest_stride = 11) {
  std::vector<double> stretches;
  for (graph::Vertex u = 0; u < g.n(); u += source_stride) {
    const auto sp = graph::dijkstra(g, u);
    for (graph::Vertex v = 1; v < g.n(); v += dest_stride) {
      if (u == v) continue;
      const graph::Dist d = sp.dist[static_cast<std::size_t>(v)];
      if (d <= 0 || graph::is_inf(d)) continue;
      const auto len = route(u, v);
      stretches.push_back(static_cast<double>(len) /
                          static_cast<double>(d));
    }
  }
  StretchStats s;
  s.pairs = static_cast<int>(stretches.size());
  if (stretches.empty()) return s;
  util::Accumulator acc;
  for (double x : stretches) acc.add(x);
  s.avg = acc.mean();
  s.max = acc.max();
  s.p50 = util::percentile(stretches, 0.5);
  s.p95 = util::percentile(stretches, 0.95);
  return s;
}

/// Max/avg of a per-vertex quantity.
template <typename Fn>
std::pair<double, std::int64_t> avg_max(int n, Fn&& f) {
  double sum = 0;
  std::int64_t mx = 0;
  for (graph::Vertex v = 0; v < n; ++v) {
    const std::int64_t x = f(v);
    sum += static_cast<double>(x);
    mx = std::max(mx, x);
  }
  return {sum / n, mx};
}

inline void print_header(const char* experiment, const char* what) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", experiment, what);
  std::printf("==============================================================\n");
}

}  // namespace nors::bench
