#pragma once

// Shared helpers for the experiment harness (one binary per experiment in
// DESIGN.md §4). Each binary prints a self-contained table; NORS_BENCH_N
// overrides the default graph size for quick or extended runs.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "graph/generators.h"
#include "graph/properties.h"
#include "graph/shortest_paths.h"
#include "util/check.h"
#include "util/random.h"
#include "util/stats.h"
#include "util/table.h"

namespace nors::bench {

inline int env_n(int fallback) {
  const char* e = std::getenv("NORS_BENCH_N");
  if (e == nullptr) return fallback;
  const int v = std::atoi(e);
  return v > 8 ? v : fallback;
}

/// The workhorse workload: connected G(n,m) with uniform integer weights —
/// the "general weighted graph" the paper's theorems address.
inline graph::WeightedGraph bench_graph(int n, std::uint64_t seed,
                                        graph::Weight max_w = 32) {
  util::Rng rng(seed);
  return graph::connected_gnm(n, 3LL * n,
                              graph::WeightSpec::uniform(1, max_w), rng);
}

/// Stretch statistics of a routing scheme over sampled pairs. Route is any
/// callable (u,v) -> length (must be ≥ d_G).
struct StretchStats {
  double avg = 0, p50 = 0, p95 = 0, max = 0;
  int pairs = 0;
};

template <typename RouteFn>
StretchStats measure_stretch(const graph::WeightedGraph& g, RouteFn&& route,
                             int source_stride = 7, int dest_stride = 11) {
  std::vector<double> stretches;
  for (graph::Vertex u = 0; u < g.n(); u += source_stride) {
    const auto sp = graph::dijkstra(g, u);
    for (graph::Vertex v = 1; v < g.n(); v += dest_stride) {
      if (u == v) continue;
      const graph::Dist d = sp.dist[static_cast<std::size_t>(v)];
      if (d <= 0 || graph::is_inf(d)) continue;
      const auto len = route(u, v);
      stretches.push_back(static_cast<double>(len) /
                          static_cast<double>(d));
    }
  }
  StretchStats s;
  s.pairs = static_cast<int>(stretches.size());
  if (stretches.empty()) return s;
  util::Accumulator acc;
  for (double x : stretches) acc.add(x);
  s.avg = acc.mean();
  s.max = acc.max();
  s.p50 = util::percentile(stretches, 0.5);
  s.p95 = util::percentile(stretches, 0.95);
  return s;
}

/// Max/avg of a per-vertex quantity.
template <typename Fn>
std::pair<double, std::int64_t> avg_max(int n, Fn&& f) {
  double sum = 0;
  std::int64_t mx = 0;
  for (graph::Vertex v = 0; v < n; ++v) {
    const std::int64_t x = f(v);
    sum += static_cast<double>(x);
    mx = std::max(mx, x);
  }
  return {sum / n, mx};
}

inline void print_header(const char* experiment, const char* what) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", experiment, what);
  std::printf("==============================================================\n");
}

/// Wall-clock stopwatch for the JSON reports.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Machine-readable sidecar for an experiment binary: collects rows of
/// key/value measurements and writes BENCH_<name>.json into the working
/// directory, so the perf trajectory is trackable across PRs (the committed
/// snapshots live in bench/results/). Keys and values are emitted verbatim;
/// keep keys to [a-z0-9_].
class JsonReport {
 public:
  explicit JsonReport(std::string name) : name_(std::move(name)) {}

  JsonReport& row() {
    rows_.emplace_back();
    return *this;
  }
  JsonReport& field(const char* key, const std::string& v) {
    NORS_CHECK_MSG(!rows_.empty(), "call row() before field()");
    rows_.back().push_back(std::string("\"") + key + "\": \"" + v + "\"");
    return *this;
  }
  JsonReport& field(const char* key, std::int64_t v) {
    NORS_CHECK_MSG(!rows_.empty(), "call row() before field()");
    rows_.back().push_back(std::string("\"") + key +
                           "\": " + std::to_string(v));
    return *this;
  }
  JsonReport& field(const char* key, int v) {
    return field(key, static_cast<std::int64_t>(v));
  }
  JsonReport& field(const char* key, double v) {
    NORS_CHECK_MSG(!rows_.empty(), "call row() before field()");
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6f", v);
    rows_.back().push_back(std::string("\"") + key + "\": " + buf);
    return *this;
  }

  /// Writes BENCH_<name>.json; returns the path (empty on failure).
  std::string write() const {
    const std::string path = "BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return "";
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"rows\": [\n", name_.c_str());
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      std::fprintf(f, "    {");
      for (std::size_t j = 0; j < rows_[i].size(); ++j) {
        std::fprintf(f, "%s%s", j == 0 ? "" : ", ", rows_[i][j].c_str());
      }
      std::fprintf(f, "}%s\n", i + 1 == rows_.size() ? "" : ",");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
    return path;
  }

 private:
  std::string name_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace nors::bench
