// Experiment E8 (paper §3.2 "The middle level"): for odd k, level (k-1)/2
// is built with Theorem-1 source detection instead of plain bounded
// Bellman–Ford, shaving the round exponent from n^{1/2+3/(2k)} to
// n^{1/2+1/(2k)}. This ablation builds the same scheme with the
// optimization on and off and compares the level's round cost and the
// end-to-end stretch (which must be unaffected — only rounds change).

#include <cmath>

#include "common.h"
#include "core/scheme.h"

namespace {

std::int64_t middle_level_rounds(const nors::congest::RoundLedger& ledger,
                                 int level) {
  std::int64_t total = 0;
  const std::string mid = "level " + std::to_string(level);
  for (const auto& e : ledger.entries()) {
    if (e.phase.find("clusters/") == 0 &&
        e.phase.find(mid) != std::string::npos) {
      total += e.rounds;
    }
  }
  return total;
}

}  // namespace

int main() {
  using namespace nors;
  const int n = bench::env_n(2048);
  bench::print_header("E8 / odd-k middle level",
                      "source detection vs Bellman-Ford at level (k-1)/2");
  // The middle-level optimization pays off when the naive exploration is
  // deep: a weighted torus has a large shortest-path diameter S, so the
  // 4·n^{(i+1)/k}·ln n Bellman–Ford iterations are really walked, while
  // Theorem 1 pipelines all |S| sources in one sweep.
  util::Rng grng(1312);
  int rows = 32;
  while (rows * rows * 2 < n) rows *= 2;
  const auto g = graph::torus(rows, std::max(3, n / rows),
                              graph::WeightSpec::uniform(1, 100), grng);
  std::printf("graph: torus n=%d m=%lld\n\n", g.n(),
              static_cast<long long>(g.m()));

  util::TextTable table({"k", "variant", "mid rounds", "sync schedule",
                         "total rounds", "stretch max"});
  for (int k : {3, 5}) {
    const int mid = (k - 1) / 2;
    // A real CONGEST deployment of the naive variant cannot detect global
    // convergence locally: it must run the full Corollary-4 schedule of
    // 4·n^{(i+1)/k}·ln n Bellman–Ford iterations. The simulator's
    // message-driven count (mid rounds) is therefore a best case; the
    // schedule column is what the paper's analysis charges.
    const double schedule =
        4.0 * std::pow(static_cast<double>(n),
                       static_cast<double>(mid + 1) / k) *
        std::log(static_cast<double>(n));
    for (const bool opt : {true, false}) {
      core::SchemeParams p;
      p.k = k;
      p.seed = 14;
      p.middle_level_opt = opt;
      const auto s = core::RoutingScheme::build(g, p);
      const auto st = bench::measure_stretch(
          g, [&](graph::Vertex u, graph::Vertex v) {
            return s.route(u, v).length;
          });
      table.add_row({std::to_string(k),
                     opt ? "Theorem 1 (paper)" : "naive Bellman-Ford",
                     util::TextTable::fmt(middle_level_rounds(s.ledger(), mid)),
                     opt ? "-" : util::TextTable::fmt(schedule, 0),
                     util::TextTable::fmt(s.total_rounds()),
                     util::TextTable::fmt(st.max)});
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "shape checks: Theorem-1 'mid rounds' is far below the synchronous\n"
      "schedule the naive variant must run in a real network (the simulated\n"
      "naive count benefits from free quiescence detection); stretch is\n"
      "unaffected by the choice.\n");
  return 0;
}
