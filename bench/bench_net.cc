// Network serving workload (DESIGN.md §11): the same frozen image
// bench_serving rates in-process, measured through the whole wire stack —
// loopback TCP, framing + checksums, the epoll event loops, the sharded
// batch submit — with 1, 2 and 4 concurrent pipelined clients. Reports
// queries/sec, decisions/sec and client-observed per-frame p50/p99 (socket
// round-trip included), so the wire tax over raw serving is a number, not
// a feeling.
//
// Runtime knobs (all recorded in the emitted JSON):
//   --queries=Q     queries per client (default 200000)
//   --batch=B       queries per kRoute frame (default 64)
//   --depth=W       pipelined frames in flight per client (default 8)
//   --loops=L       server event loops (default 2)
//   --shards=K      route shards (default 2)
//   --seed=S        query RNG seed (default 9)
//   NORS_BENCH_N    graph size (default 2^13)
//
// Emits BENCH_net.json (schema: bench/results/README.md).

#include <dirent.h>
#include <unistd.h>

#include <cstring>
#include <deque>
#include <string>
#include <thread>
#include <vector>

#include <atomic>

#include "common.h"
#include "core/scheme.h"
#include "net/client.h"
#include "net/server.h"
#include "serve/delta.h"
#include "serve/frozen.h"
#include "util/latency.h"

namespace {

using namespace nors;

std::vector<serve::Query> make_queries(int n, std::size_t count,
                                       std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<serve::Query> qs;
  qs.reserve(count);
  while (qs.size() < count) {
    const auto u =
        static_cast<graph::Vertex>(rng.uniform(static_cast<std::uint64_t>(n)));
    const auto v =
        static_cast<graph::Vertex>(rng.uniform(static_cast<std::uint64_t>(n)));
    if (u == v) continue;
    qs.push_back({u, v});
  }
  return qs;
}

struct Flags {
  std::size_t queries = 200000;
  std::size_t batch = 64;
  std::size_t depth = 8;
  int loops = 2;
  int shards = 2;
  std::uint64_t seed = 9;

  static Flags parse(int argc, char** argv) {
    Flags f;
    for (int i = 1; i < argc; ++i) {
      const std::string a = argv[i];
      auto val = [&a](const char* key) -> const char* {
        const std::size_t len = std::strlen(key);
        return a.compare(0, len, key) == 0 ? a.c_str() + len : nullptr;
      };
      if (const char* v = val("--queries=")) {
        f.queries = std::strtoull(v, nullptr, 10);
      } else if (const char* v = val("--batch=")) {
        f.batch = std::strtoull(v, nullptr, 10);
      } else if (const char* v = val("--depth=")) {
        f.depth = std::strtoull(v, nullptr, 10);
      } else if (const char* v = val("--loops=")) {
        f.loops = std::atoi(v);
      } else if (const char* v = val("--shards=")) {
        f.shards = std::atoi(v);
      } else if (const char* v = val("--seed=")) {
        f.seed = std::strtoull(v, nullptr, 10);
      } else {
        std::fprintf(stderr,
                     "unknown flag %s\nusage: bench_net [--queries=Q] "
                     "[--batch=B] [--depth=W] [--loops=L] [--shards=K] "
                     "[--seed=S]\n",
                     a.c_str());
        std::exit(2);
      }
    }
    NORS_CHECK_MSG(f.queries > 0 && f.batch > 0 && f.depth > 0,
                   "bad flag value");
    return f;
  }
};

struct ClientResult {
  std::int64_t answered = 0;
  util::LatencyHistogram lat;  // per-frame round-trip, recorded client-side
};

/// One pipelined client: keeps `depth` kRoute frames of `batch` queries in
/// flight until `total` queries are answered.
void run_client(int port, const std::vector<serve::Query>& qs,
                std::size_t batch, std::size_t depth, ClientResult& out) {
  net::Client client("127.0.0.1", port);
  std::size_t sent = 0, received = 0;
  std::deque<std::size_t> inflight;  // send-order slot indices into timers
  std::vector<bench::WallTimer> timers(depth);
  std::deque<std::size_t> free_slots;
  for (std::size_t i = 0; i < depth; ++i) free_slots.push_back(i);

  while (received < qs.size()) {
    while (sent < qs.size() && !free_slots.empty()) {
      const std::size_t take = std::min(batch, qs.size() - sent);
      const std::size_t slot = free_slots.front();
      free_slots.pop_front();
      timers[slot] = bench::WallTimer();
      client.send_route(qs.data() + sent, take);
      inflight.push_back(slot);
      sent += take;
    }
    const auto part = client.recv_route();
    const std::size_t slot = inflight.front();
    inflight.pop_front();
    out.lat.record_ns(
        static_cast<std::int64_t>(timers[slot].seconds() * 1e9));
    free_slots.push_back(slot);
    received += part.size();
    out.answered += static_cast<std::int64_t>(part.size());
  }
}

struct OverloadResult {
  std::int64_t answered = 0;   // queries served
  std::int64_t shed = 0;       // queries rejected with kOverloaded
  util::LatencyHistogram lat;  // served frames only
};

/// An unthrottled client for the overload row: keeps `depth` frames in
/// flight and does NOT retry shed frames — the point is to measure how
/// the server behaves at ~2x its admission capacity, so rejected work is
/// counted, not resent.
void run_overload_client(int port, const std::vector<serve::Query>& qs,
                         std::size_t batch, std::size_t depth,
                         OverloadResult& out) {
  net::Client client("127.0.0.1", port);
  struct Inflight {
    bench::WallTimer timer;
    std::size_t take = 0;
  };
  std::deque<Inflight> inflight;
  std::size_t sent = 0;
  while (sent < qs.size() || !inflight.empty()) {
    while (sent < qs.size() && inflight.size() < depth) {
      const std::size_t take = std::min(batch, qs.size() - sent);
      client.send_route(qs.data() + sent, take);
      inflight.push_back({bench::WallTimer(), take});
      sent += take;
    }
    const net::Frame f = client.recv_frame();
    const Inflight fl = inflight.front();
    inflight.pop_front();
    if (f.type == net::FrameType::kRouteAck) {
      const auto part = net::decode_route_response(f.body);
      out.answered += static_cast<std::int64_t>(part.size());
      out.lat.record_ns(
          static_cast<std::int64_t>(fl.timer.seconds() * 1e9));
    } else {
      const auto err = net::decode_error(f.body);
      NORS_CHECK_MSG(err.code == net::ErrorCode::kOverloaded,
                     "overload bench saw an unexpected error frame");
      out.shed += static_cast<std::int64_t>(fl.take);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  const int n = bench::env_n(1 << 13);
  const int k = 3;
  bench::print_header("net",
                      "wire-protocol route serving over loopback TCP: "
                      "qps, decisions/sec, client-observed tails");

  bench::JsonReport report("net");

  const auto g = bench::bench_graph(n, /*seed=*/17);
  std::printf("graph: n=%d m=%lld; building scheme (k=%d)...\n", n,
              static_cast<long long>(g.m()), k);
  core::SchemeParams params;
  params.k = k;
  params.seed = 23;
  const auto scheme = core::RoutingScheme::build(g, params);

  // Serve the mmap'ed image — the daemon's own deployment shape.
  const std::string map_path = "bench_net_tables.frozen";
  serve::FrozenScheme::freeze(scheme).save_file(map_path);

  net::NetServerOptions opt;
  opt.loops = flags.loops;
  opt.shards = flags.shards;
  net::Server server(serve::FrozenScheme::map(map_path), opt);

  std::printf(
      "serving n=%d on 127.0.0.1:%d (loops=%d shards=%d batch=%zu "
      "depth=%zu)\n\n",
      n, server.port(), flags.loops, flags.shards, flags.batch, flags.depth);

  for (const int clients : {1, 2, 4}) {
    std::vector<ClientResult> results(static_cast<std::size_t>(clients));
    std::vector<std::vector<serve::Query>> qsets;
    for (int c = 0; c < clients; ++c) {
      qsets.push_back(
          make_queries(n, flags.queries, flags.seed + static_cast<unsigned>(c)));
    }
    bench::WallTimer t;
    std::vector<std::thread> pool;
    for (int c = 0; c < clients; ++c) {
      pool.emplace_back([&, c] {
        run_client(server.port(), qsets[static_cast<std::size_t>(c)],
                   flags.batch, flags.depth,
                   results[static_cast<std::size_t>(c)]);
      });
    }
    for (auto& th : pool) th.join();
    const double secs = t.seconds();

    std::int64_t answered = 0;
    util::LatencyHistogram::Counts merged{};
    for (const auto& r : results) {
      answered += r.answered;
      const auto c = r.lat.snapshot();
      for (std::size_t b = 0; b < c.size(); ++b) merged[b] += c[b];
    }
    const double qps = static_cast<double>(answered) / secs;
    const double p50_us =
        util::LatencyHistogram::quantile_us(merged, 0.5);
    const double p99_us =
        util::LatencyHistogram::quantile_us(merged, 0.99);

    // Hop work actually done, for a decisions/sec comparable with
    // bench_serving's serve rows.
    const auto totals = server.stats();
    std::printf(
        "clients=%d: %lld queries in %.3fs = %9.0f q/s | frame p50 %7.1fus "
        "p99 %7.1fus | server p50 %7.1fus\n",
        clients, static_cast<long long>(answered), secs, qps, p50_us, p99_us,
        static_cast<double>(totals.p50_ns) / 1000.0);

    report.row()
        .field("row", std::string("net"))
        .field("n", n)
        .field("k", k)
        .field("clients", clients)
        .field("batch", static_cast<std::int64_t>(flags.batch))
        .field("depth", static_cast<std::int64_t>(flags.depth))
        .field("loops", flags.loops)
        .field("shards", flags.shards)
        .field("queries", answered)
        .field("seconds", secs)
        .field("qps", qps)
        .field("frame_p50_us", p50_us)
        .field("frame_p99_us", p99_us);
  }

  const auto stats = server.stats();
  std::printf(
      "\nserver totals: %lld conns, %lld frames, %lld queries, %lld "
      "protocol errors\n",
      static_cast<long long>(stats.conns_accepted),
      static_cast<long long>(stats.frames_in),
      static_cast<long long>(stats.queries),
      static_cast<long long>(stats.protocol_errors));
  NORS_CHECK_MSG(stats.protocol_errors == 0,
                 "bench traffic must be error-free");

  // ---- overload row: offered load ~2x the admission budget -------------
  // A second server with a deliberately small in-flight query budget
  // (4 frames' worth) against 4 clients each keeping `depth` frames in
  // flight: offered in-flight load is clients*depth frames vs a budget of
  // 4, so admission control must shed — the row records how much, and
  // what the surviving traffic's tail looks like while shedding.
  {
    constexpr int kOverClients = 4;
    net::NetServerOptions oopt;
    oopt.loops = flags.loops;
    oopt.shards = flags.shards;
    oopt.max_inflight_queries =
        static_cast<std::int64_t>(4 * flags.batch);
    oopt.retry_after_ms = 1;
    net::Server oserver(serve::FrozenScheme::map(map_path), oopt);

    std::vector<OverloadResult> results(kOverClients);
    std::vector<std::vector<serve::Query>> qsets;
    for (int c = 0; c < kOverClients; ++c) {
      qsets.push_back(make_queries(
          n, flags.queries, flags.seed + 100 + static_cast<unsigned>(c)));
    }
    bench::WallTimer t;
    std::vector<std::thread> pool;
    for (int c = 0; c < kOverClients; ++c) {
      pool.emplace_back([&, c] {
        run_overload_client(oserver.port(),
                            qsets[static_cast<std::size_t>(c)], flags.batch,
                            flags.depth,
                            results[static_cast<std::size_t>(c)]);
      });
    }
    for (auto& th : pool) th.join();
    const double secs = t.seconds();

    std::int64_t served = 0, shed = 0;
    util::LatencyHistogram::Counts merged{};
    for (const auto& r : results) {
      served += r.answered;
      shed += r.shed;
      const auto c = r.lat.snapshot();
      for (std::size_t b = 0; b < c.size(); ++b) merged[b] += c[b];
    }
    const std::int64_t offered = served + shed;
    const double offered_qps = static_cast<double>(offered) / secs;
    const double served_qps = static_cast<double>(served) / secs;
    const double shed_rate =
        offered > 0 ? static_cast<double>(shed) / static_cast<double>(offered)
                    : 0.0;
    const double served_p99_us =
        util::LatencyHistogram::quantile_us(merged, 0.99);
    const auto ostats = oserver.stats();
    std::printf(
        "\noverload (budget=%lld queries): offered %9.0f q/s, served "
        "%9.0f q/s, shed %.1f%% | served frame p99 %7.1fus | server shed "
        "count %lld\n",
        static_cast<long long>(oopt.max_inflight_queries), offered_qps,
        served_qps, 100.0 * shed_rate, served_p99_us,
        static_cast<long long>(ostats.shed));
    NORS_CHECK_MSG(ostats.protocol_errors == 0,
                   "kOverloaded must not count as a protocol error");

    report.row()
        .field("row", std::string("overload"))
        .field("n", n)
        .field("k", k)
        .field("clients", kOverClients)
        .field("batch", static_cast<std::int64_t>(flags.batch))
        .field("depth", static_cast<std::int64_t>(flags.depth))
        .field("loops", flags.loops)
        .field("shards", flags.shards)
        .field("budget", oopt.max_inflight_queries)
        .field("offered_queries", offered)
        .field("served_queries", served)
        .field("shed_queries", shed)
        .field("seconds", secs)
        .field("offered_qps", offered_qps)
        .field("served_qps", served_qps)
        .field("shed_rate", shed_rate)
        .field("served_p99_us", served_p99_us);
  }

  // ---- update row: delta generations published under query load --------
  // A fresh server with 4 pipelined query clients running flat out while
  // an admin connection applies kUpdate batches back-to-back (each one a
  // hash-table rebuild + generation publish; DESIGN.md §13). The row
  // records both sides of the trade: update batches/sec sustained, and
  // the query p99 *while the table is churning* — compare against the
  // clients=4 row above for the cost of liveness.
  {
    constexpr int kUpdClients = 4;
    net::NetServerOptions uopt;
    uopt.loops = flags.loops;
    uopt.shards = flags.shards;
    net::Server userver(serve::FrozenScheme::map(map_path), uopt);

    // A pool of real edges to churn. Batches alternate doubling and
    // restoring a stride of weights, so every event hits the repair path
    // but the override set stays small and the journal keeps converging
    // back toward the base image.
    struct PoolEdge {
      graph::Vertex u, v;
      graph::Dist w;
    };
    std::vector<PoolEdge> pool;
    for (graph::Vertex u = 0; u < g.n() && pool.size() < 256; ++u) {
      for (const auto& he : g.neighbors(u)) {
        if (he.to > u) pool.push_back({u, he.to, he.w});
        if (pool.size() >= 256) break;
      }
    }
    constexpr std::size_t kEventsPerBatch = 64;

    std::vector<ClientResult> results(kUpdClients);
    std::vector<std::vector<serve::Query>> qsets;
    for (int c = 0; c < kUpdClients; ++c) {
      qsets.push_back(make_queries(
          n, flags.queries, flags.seed + 200 + static_cast<unsigned>(c)));
    }

    std::atomic<bool> stop{false};
    std::int64_t batches = 0, applied = 0;
    std::thread updater([&] {
      net::Client admin("127.0.0.1", userver.port());
      std::vector<serve::EdgeUpdate> batch;
      for (bool doubled = false; !stop.load(std::memory_order_acquire);
           doubled = !doubled) {
        batch.clear();
        for (std::size_t i = 0; i < kEventsPerBatch; ++i) {
          const PoolEdge& e =
              pool[(static_cast<std::size_t>(batches) * kEventsPerBatch + i) %
                   pool.size()];
          batch.push_back(serve::EdgeUpdate::weight(
              e.u, e.v, doubled ? e.w : e.w * 2));
        }
        const auto ack = admin.update(batch);
        ++batches;
        applied += ack.applied;
      }
    });

    bench::WallTimer t;
    std::vector<std::thread> pool_threads;
    for (int c = 0; c < kUpdClients; ++c) {
      pool_threads.emplace_back([&, c] {
        run_client(userver.port(), qsets[static_cast<std::size_t>(c)],
                   flags.batch, flags.depth,
                   results[static_cast<std::size_t>(c)]);
      });
    }
    for (auto& th : pool_threads) th.join();
    const double secs = t.seconds();
    stop.store(true, std::memory_order_release);
    updater.join();

    std::int64_t answered = 0;
    util::LatencyHistogram::Counts merged{};
    for (const auto& r : results) {
      answered += r.answered;
      const auto c = r.lat.snapshot();
      for (std::size_t b = 0; b < c.size(); ++b) merged[b] += c[b];
    }
    const double qps = static_cast<double>(answered) / secs;
    const double batches_per_sec = static_cast<double>(batches) / secs;
    const double updates_per_sec = static_cast<double>(applied) / secs;
    const double p99_us = util::LatencyHistogram::quantile_us(merged, 0.99);
    const auto ustats = userver.stats();
    std::printf(
        "\nupdates (batch=%zu events): %lld generations = %7.0f batches/s, "
        "%8.0f events/s | query %9.0f q/s, frame p99 %7.1fus | repaired "
        "answers %lld\n",
        kEventsPerBatch, static_cast<long long>(batches), batches_per_sec,
        updates_per_sec, qps, p99_us,
        static_cast<long long>(ustats.repaired));
    NORS_CHECK_MSG(ustats.protocol_errors == 0,
                   "update bench traffic must be error-free");
    NORS_CHECK_MSG(ustats.updates == batches,
                   "every applied batch must be a published generation");

    report.row()
        .field("row", std::string("update"))
        .field("n", n)
        .field("k", k)
        .field("clients", kUpdClients)
        .field("batch", static_cast<std::int64_t>(flags.batch))
        .field("depth", static_cast<std::int64_t>(flags.depth))
        .field("loops", flags.loops)
        .field("shards", flags.shards)
        .field("events_per_batch", static_cast<std::int64_t>(kEventsPerBatch))
        .field("update_batches", batches)
        .field("updates_applied", applied)
        .field("update_batches_per_sec", batches_per_sec)
        .field("updates_per_sec", updates_per_sec)
        .field("queries", answered)
        .field("seconds", secs)
        .field("qps", qps)
        .field("frame_p99_us", p99_us)
        .field("repaired_answers", ustats.repaired);
  }

  // ---- durability rows: the WAL tax per fsync policy --------------------
  // One server per policy, same image, a WAL in a throwaway directory,
  // and a single admin connection applying kUpdate batches back-to-back
  // with no query load — isolating what durability costs the update path.
  // fsync=always pays an fdatasync per acked batch (ack ⇒ durable);
  // interval amortizes it over the cadence; off measures pure WAL
  // encoding + append. DESIGN.md §14.
  {
    constexpr std::int64_t kDurBatches = 400;
    constexpr std::size_t kEventsPerBatch = 64;
    struct PoolEdge {
      graph::Vertex u, v;
      graph::Dist w;
    };
    std::vector<PoolEdge> pool;
    for (graph::Vertex u = 0; u < g.n() && pool.size() < 256; ++u) {
      for (const auto& he : g.neighbors(u)) {
        if (he.to > u) pool.push_back({u, he.to, he.w});
        if (pool.size() >= 256) break;
      }
    }

    std::printf("\ndurability (%lld kUpdate batches of %zu events, "
                "WAL on %s):\n",
                static_cast<long long>(kDurBatches), kEventsPerBatch,
                "/tmp");
    for (const std::string fsync : {"always", "interval", "off"}) {
      char tmpl[] = "/tmp/bench_net_wal_XXXXXX";
      char* wal_dir = ::mkdtemp(tmpl);
      NORS_CHECK_MSG(wal_dir != nullptr, "mkdtemp failed");

      net::NetServerOptions dopt;
      dopt.loops = flags.loops;
      dopt.shards = flags.shards;
      dopt.wal_dir = wal_dir;
      dopt.fsync = serve::parse_fsync_policy(fsync);
      net::Server dserver(serve::FrozenScheme::map(map_path), dopt);

      net::Client admin("127.0.0.1", dserver.port());
      util::LatencyHistogram ack_lat;
      std::vector<serve::EdgeUpdate> batch;
      std::int64_t applied = 0;
      bench::WallTimer t;
      for (std::int64_t b = 0; b < kDurBatches; ++b) {
        batch.clear();
        const bool doubled = (b % 2) != 0;
        for (std::size_t i = 0; i < kEventsPerBatch; ++i) {
          const PoolEdge& e =
              pool[(static_cast<std::size_t>(b) * kEventsPerBatch + i) %
                   pool.size()];
          batch.push_back(serve::EdgeUpdate::weight(
              e.u, e.v, doubled ? e.w : e.w * 2));
        }
        bench::WallTimer one;
        const auto ack = admin.update(batch);
        ack_lat.record_ns(static_cast<std::int64_t>(one.seconds() * 1e9));
        applied += ack.applied;
      }
      const double secs = t.seconds();
      const auto dstats = dserver.stats();
      NORS_CHECK_MSG(dstats.wal_records == kDurBatches,
                     "every acked batch must be a logged record");
      NORS_CHECK_MSG(dstats.wal_errors == 0,
                     "durability bench traffic must be error-free");

      const auto counts = ack_lat.snapshot();
      const double batches_per_sec =
          static_cast<double>(kDurBatches) / secs;
      const double updates_per_sec = static_cast<double>(applied) / secs;
      const double ack_p50_us =
          util::LatencyHistogram::quantile_us(counts, 0.5);
      const double ack_p99_us =
          util::LatencyHistogram::quantile_us(counts, 0.99);
      std::printf(
          "  fsync=%-8s %7.0f batches/s, %8.0f events/s | ack p50 "
          "%7.1fus p99 %7.1fus\n",
          fsync.c_str(), batches_per_sec, updates_per_sec, ack_p50_us,
          ack_p99_us);

      report.row()
          .field("row", std::string("durability"))
          .field("n", n)
          .field("k", k)
          .field("fsync", fsync)
          .field("events_per_batch",
                 static_cast<std::int64_t>(kEventsPerBatch))
          .field("update_batches", kDurBatches)
          .field("updates_applied", applied)
          .field("seconds", secs)
          .field("update_batches_per_sec", batches_per_sec)
          .field("updates_per_sec", updates_per_sec)
          .field("ack_p50_us", ack_p50_us)
          .field("ack_p99_us", ack_p99_us)
          .field("wal_records", dstats.wal_records);

      dserver.drain();
      if (DIR* d = ::opendir(wal_dir)) {
        while (struct dirent* e = ::readdir(d)) {
          const std::string name = e->d_name;
          if (name != "." && name != "..") {
            ::unlink((std::string(wal_dir) + "/" + name).c_str());
          }
        }
        ::closedir(d);
      }
      ::rmdir(wal_dir);
    }
  }

  report.write();
  std::remove(map_path.c_str());
  return 0;
}
