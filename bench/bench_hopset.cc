// Experiment E6 (paper Theorem 2): path-reporting (β,ε)-hopsets — measured
// hop bound β vs ε and the sampling depth κ, hopset size, and the Theorem-2
// round charge. The virtual graphs G' of the main construction are nearly
// complete at simulator scale (B ≥ diameter), so this bench exercises the
// hopset on sparse graphs where β is non-trivial.

#include "common.h"
#include "hopset/hopset.h"

int main() {
  using namespace nors;
  const int n = std::min(bench::env_n(320), 640);  // all-pairs verification
  bench::print_header("E6 / hopsets", "beta vs eps and kappa; size; rounds");
  util::Rng rng(31415);
  const auto g =
      graph::connected_gnm(n, 2LL * n, graph::WeightSpec::uniform(1, 1000), rng);
  std::printf("graph: n=%d m=%lld (sparse, heavy weights)\n\n", g.n(),
              static_cast<long long>(g.m()));

  // Baseline: how many hops does the raw graph need for exact distances?
  {
    const auto none = hopset::build_hopset(
        g, {util::Epsilon(1, 1'000'000), 2, 1, 0.5}, 4);
    std::printf("reference: near-exact hopset needs beta=%d\n\n", none.beta);
  }

  util::TextTable table({"eps", "kappa", "beta", "edges", "round charge"});
  for (const auto& [num, den] : std::vector<std::pair<int, int>>{
           {1, 2}, {1, 4}, {1, 10}, {1, 100}}) {
    for (int kappa : {2, 3}) {
      hopset::HopsetParams p{util::Epsilon(num, den), kappa, 8, 0.5};
      const auto hs = hopset::build_hopset(g, p, 4);
      hs.check_path_reporting(g);
      table.add_row({p.eps.to_string(), std::to_string(kappa),
                     std::to_string(hs.beta),
                     util::TextTable::fmt(
                         static_cast<std::int64_t>(hs.edges.size())),
                     util::TextTable::fmt(hs.round_cost)});
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "shape checks: beta grows as eps shrinks; kappa=3 has fewer edges but\n"
      "larger beta than kappa=2 (the Theorem-2 size/hopbound tradeoff);\n"
      "every hopset passed the Property-1 path-reporting check.\n");
  return 0;
}
