// Experiment T1 (paper Table 1): compact routing schemes compared on the
// same graphs — rounds to construct, table size, label size, stretch.
//
// Paper rows reproduced:
//   [TZ01]        sequential baseline: O(m) "rounds", Õ(n^{1/k}) tables,
//                 stretch 4k-5.
//   [LP13a]-style skeleton-spanner baseline: Õ(n^{1/2+1/k}+D) rounds but
//                 Ω(√n) tables.
//   This paper    (even and odd k): Õ(n^{1/2+1/k}+D) (resp. n^{1/2+1/(2k)})
//                 rounds with Õ(n^{1/k}) tables, stretch 4k-5+o(1).
//
// Absolute numbers are simulator-scale; the *shape* to check is:
// our tables ≈ TZ01 tables ≪ LP13a tables, our rounds ≪ m (=TZ01), and all
// stretches within their class bounds.

#include "baselines/lp_baseline.h"
#include "common.h"
#include "core/scheme.h"
#include "tz/tz_routing.h"

int main() {
  using namespace nors;
  const int n = bench::env_n(1024);
  const std::uint64_t seed = 20160725;  // PODC'16
  const auto g = bench::bench_graph(n, seed);
  const int diameter = graph::hop_diameter(g);
  bench::print_header("T1 / Table 1",
                      "rounds, table words, label words, stretch");
  std::printf("graph: connected G(n,m) n=%d m=%lld D=%d\n\n", g.n(),
              static_cast<long long>(g.m()), diameter);

  util::TextTable table({"k", "scheme", "rounds", "tbl avg", "tbl max",
                         "lbl max", "stretch avg", "stretch max", "bound"});

  for (int k : {2, 3, 4, 5}) {
    // --- TZ01 sequential baseline (rounds = m, the paper's Table 1 row).
    {
      const auto s = tz::TzRoutingScheme::build(g, {k, seed, true});
      const auto st = bench::measure_stretch(
          g, [&](graph::Vertex u, graph::Vertex v) {
            return s.route(u, v).length;
          });
      const auto [tavg, tmax] =
          bench::avg_max(n, [&](graph::Vertex v) { return s.table_words(v); });
      const auto [lavg, lmax] =
          bench::avg_max(n, [&](graph::Vertex v) { return s.label_words(v); });
      (void)lavg;
      table.add_row({std::to_string(k), "TZ01 (sequential)",
                     util::TextTable::fmt(g.m()),
                     util::TextTable::fmt(tavg, 0),
                     util::TextTable::fmt(tmax),
                     util::TextTable::fmt(lmax),
                     util::TextTable::fmt(st.avg),
                     util::TextTable::fmt(st.max),
                     std::to_string(std::max(1, 4 * k - 5))});
    }
    // --- LP13a-style baseline.
    {
      const auto s = baselines::LpBaselineScheme::build(
          g, {k, seed, 1.0}, diameter);
      const auto st = bench::measure_stretch(
          g, [&](graph::Vertex u, graph::Vertex v) {
            return s.route(u, v).length;
          });
      const auto [tavg, tmax] =
          bench::avg_max(n, [&](graph::Vertex v) { return s.table_words(v); });
      const auto [lavg, lmax] =
          bench::avg_max(n, [&](graph::Vertex v) { return s.label_words(v); });
      (void)lavg;
      table.add_row({std::to_string(k), "LP13a-style",
                     util::TextTable::fmt(s.ledger().total_rounds()),
                     util::TextTable::fmt(tavg, 0),
                     util::TextTable::fmt(tmax),
                     util::TextTable::fmt(lmax),
                     util::TextTable::fmt(st.avg),
                     util::TextTable::fmt(st.max), "O(k log k)"});
    }
    // --- This paper.
    {
      core::SchemeParams p;
      p.k = k;
      p.seed = seed;
      const auto s = core::RoutingScheme::build(g, p);
      const auto st = bench::measure_stretch(
          g, [&](graph::Vertex u, graph::Vertex v) {
            return s.route(u, v).length;
          });
      const auto [tavg, tmax] =
          bench::avg_max(n, [&](graph::Vertex v) { return s.table_words(v); });
      const auto [lavg, lmax] =
          bench::avg_max(n, [&](graph::Vertex v) { return s.label_words(v); });
      (void)lavg;
      const std::string name = std::string("This paper (") +
                               (k % 2 == 0 ? "even" : "odd") + " k)";
      table.add_row({std::to_string(k), name,
                     util::TextTable::fmt(s.total_rounds()),
                     util::TextTable::fmt(tavg, 0),
                     util::TextTable::fmt(tmax),
                     util::TextTable::fmt(lmax),
                     util::TextTable::fmt(st.avg),
                     util::TextTable::fmt(st.max),
                     util::TextTable::fmt(s.stretch_bound())});
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "shape checks: (1) our 'tbl max' tracks TZ01, both << LP13a-style;\n"
      "              (2) our stretch tracks TZ01's (the paper's point: the\n"
      "                  distributed construction matches the sequential\n"
      "                  state of the art up to o(1));\n"
      "              (3) every 'stretch max' <= its bound column.\n"
      "Round counts at n=10^3 are dominated by the Õ(·) polylog constants;\n"
      "bench_rounds_scaling (E1) shows the n^{1/2+1/k}+D growth and the\n"
      "rounds/m trend that make the distributed construction win at scale.\n");
  return 0;
}
