// Experiment E2: table and label sizes vs k — the paper's claims
// Õ(n^{1/k}) table words and O(k log² n) label words, against the measured
// per-vertex maxima and averages, and against the cluster-overlap bound of
// Claim 2 (4 n^{1/k} log n).

#include <cmath>

#include "common.h"
#include "core/distance_estimation.h"
#include "core/scheme.h"

int main() {
  using namespace nors;
  const int n = bench::env_n(2048);
  bench::print_header("E2 / sizes vs k",
                      "table Õ(n^{1/k}), label O(k log² n), overlap Claim 2");
  const auto g = bench::bench_graph(n, 424242);
  std::printf("graph: n=%d m=%lld\n\n", g.n(), static_cast<long long>(g.m()));

  util::TextTable table({"k", "n^(1/k)", "overlap max", "claim2 bound",
                         "tbl avg", "tbl max", "tbl avg +trick", "lbl avg",
                         "lbl max", "sketch avg"});
  for (int k : {2, 3, 4, 5, 6}) {
    core::SchemeParams p;
    p.k = k;
    p.seed = 99;
    p.label_trick = false;  // isolate the Õ(n^{1/k}) table regime
    const auto s = core::RoutingScheme::build(g, p);
    const auto de = core::DistanceEstimation::build(s);
    // The 4k-5 trick costs extra table space at level-0 roots; measure it.
    core::SchemeParams pt = p;
    pt.label_trick = true;
    const auto st_scheme = core::RoutingScheme::build(g, pt);
    const auto [trick_avg, trick_max] = bench::avg_max(
        n, [&](graph::Vertex v) { return st_scheme.table_words(v); });
    (void)trick_max;
    const auto [oavg, omax] =
        bench::avg_max(n, [&](graph::Vertex v) {
          return static_cast<std::int64_t>(s.overlap(v));
        });
    (void)oavg;
    const auto [tavg, tmax] =
        bench::avg_max(n, [&](graph::Vertex v) { return s.table_words(v); });
    const auto [lavg, lmax] =
        bench::avg_max(n, [&](graph::Vertex v) { return s.label_words(v); });
    const auto [savg, smax] =
        bench::avg_max(n, [&](graph::Vertex v) { return de.sketch_words(v); });
    (void)smax;
    const double n_pow = std::pow(static_cast<double>(n), 1.0 / k);
    const double claim2 = 4.0 * n_pow * std::log(n);
    table.add_row({std::to_string(k), util::TextTable::fmt(n_pow, 1),
                   util::TextTable::fmt(omax),
                   util::TextTable::fmt(claim2, 0),
                   util::TextTable::fmt(tavg, 0),
                   util::TextTable::fmt(tmax),
                   util::TextTable::fmt(trick_avg, 0),
                   util::TextTable::fmt(lavg, 0),
                   util::TextTable::fmt(lmax),
                   util::TextTable::fmt(savg, 0)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "shape checks: overlap max <= claim2 bound; table sizes fall with k\n"
      "(tracking n^{1/k}); label sizes grow ~linearly in k; the '+trick'\n"
      "column is the table cost of the 4k-5 improvement (level-0 roots\n"
      "store their members' labels).\n");
  return 0;
}
