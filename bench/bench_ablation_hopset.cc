// Experiment E9: the hopset ablation — §1.1's "the use of hopsets allows us
// to avoid the large memory requirement ... while significantly shortening
// the exploration range". With hopsets, Phase 1 explores β = O(1) hops of
// G''; without them (the [LP15]-style regime) it must explore up to the
// shortest-path hop diameter of G', and every virtual hop costs a global
// broadcast. We grow a heavy-weighted ring-with-chords whose virtual graph
// has a long hop diameter, and compare Phase-1 exploration depth and round
// cost with the hopset on and off. Routed stretch must be identical — the
// routing is oblivious to the hopset (§1.1).

#include <set>
#include <utility>

#include "common.h"
#include "core/scheme.h"

namespace {

std::int64_t phase1_rounds(const nors::congest::RoundLedger& ledger) {
  std::int64_t total = 0;
  for (const auto& e : ledger.entries()) {
    if (e.phase.find("phase1") != std::string::npos) total += e.rounds;
  }
  return total;
}

/// Weighted cycle with heavy long chords: the chords keep the hop diameter
/// D modest but are too heavy to appear on any shortest path, so the
/// shortest-path structure (and hence the virtual graph G' once B < n) is
/// ring-like with a large hop diameter — the regime where exploration
/// range matters.
nors::graph::WeightedGraph ring_with_chords(int n, std::uint64_t seed) {
  using namespace nors;
  util::Rng rng(seed);
  const auto ws = graph::WeightSpec::uniform(1, 8);
  graph::WeightedGraph g(n);
  std::set<std::pair<graph::Vertex, graph::Vertex>> used;
  auto key = [](graph::Vertex a, graph::Vertex b) {
    return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
  };
  // Ring, matching graph::cycle's edge and weight-draw order.
  for (graph::Vertex v = 0; v + 1 < n; ++v) {
    used.insert(key(v, v + 1));
    g.add_edge(v, v + 1, ws.draw(rng));
  }
  used.insert(key(n - 1, 0));
  g.add_edge(n - 1, 0, ws.draw(rng));
  for (int i = 0; i < n / 32; ++i) {
    const auto u = static_cast<graph::Vertex>(rng.uniform(n));
    const auto v = static_cast<graph::Vertex>(rng.uniform(n));
    if (u != v && used.insert(key(u, v)).second) {
      g.add_edge(u, v, 8LL * n);  // heavier than any ring path
    }
  }
  g.freeze();
  return g;
}

}  // namespace

int main() {
  using namespace nors;
  const int n_max = bench::env_n(4096);
  bench::print_header("E9 / hopset ablation",
                      "Phase-1 exploration depth and rounds, hopset on/off");

  util::TextTable table({"n", "variant", "beta", "phase1 rounds",
                         "total rounds", "stretch max"});
  for (int n = 1024; n <= n_max; n *= 2) {
    const auto g = ring_with_chords(n, 33 + static_cast<std::uint64_t>(n));
    for (const bool hopset : {true, false}) {
      core::SchemeParams p;
      p.k = 2;
      p.seed = 12;
      // hit_constant 1 keeps B = √n·ln n below the ring's hop distances, so
      // G' is sparse and the exploration range is the live quantity (with
      // the paper's 4, B ≥ n at simulator scale and G' is complete).
      p.hit_constant = 1.0;
      p.max_b_retries = 6;
      p.use_hopset = hopset;
      const auto s = core::RoutingScheme::build(g, p);
      const auto st = bench::measure_stretch(
          g, [&](graph::Vertex u, graph::Vertex v) {
            return s.route(u, v).length;
          });
      table.add_row({std::to_string(n),
                     hopset ? "with hopset (paper)" : "without ([LP15] regime)",
                     std::to_string(s.beta()),
                     util::TextTable::fmt(phase1_rounds(s.ledger())),
                     util::TextTable::fmt(s.total_rounds()),
                     util::TextTable::fmt(st.max)});
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "shape checks: without the hopset the exploration depth beta grows\n"
      "with |V'| (the virtual graph's hop diameter) and Phase-1 rounds grow\n"
      "with it; with the hopset beta stays flat. Stretch is identical —\n"
      "routing is oblivious to the hopset (paper section 1.1).\n");
  return 0;
}
