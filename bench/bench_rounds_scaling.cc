// Experiment E1: round complexity vs n — the paper's headline claim
// (n^{1/2+1/k} + D)·n^{o(1)} rounds, improving to n^{1/2+1/(2k)} for odd k.
//
// We measure total construction rounds while doubling n, and print the
// ratio rounds / (n^{1/2+1/k} + D) which should stay near-flat (up to the
// polylog factors the Õ hides), while rounds/m — the sequential TZ01 cost —
// falls. A path graph shows the +D term dominating when D ≈ n.

#include <cmath>

#include "common.h"
#include "core/scheme.h"

namespace {

void run_series(const char* name, bool path_graph, const std::vector<int>& ns,
                int k, nors::bench::JsonReport& report) {
  using namespace nors;
  std::printf("-- %s, k=%d --\n", name, k);
  util::TextTable table({"n", "D", "rounds", "sim", "acc",
                         "rounds/(n^(1/2+1/k)+D)", "rounds/m"});
  for (int n : ns) {
    graph::WeightedGraph g = [&] {
      util::Rng rng(911 + static_cast<std::uint64_t>(n));
      if (path_graph) {
        return graph::path(n, graph::WeightSpec::uniform(1, 8), rng);
      }
      return bench::bench_graph(n, 911 + static_cast<std::uint64_t>(n));
    }();
    const int d = graph::hop_diameter(g);
    core::SchemeParams p;
    p.k = k;
    p.seed = 7;
    const bench::WallTimer timer;
    const auto s = core::RoutingScheme::build(g, p);
    report.row()
        .field("series", name)
        .field("k", k)
        .field("n", n)
        .field("m", g.m())
        .field("diameter", d)
        .field("rounds", s.total_rounds())
        .field("simulated_rounds", s.ledger().simulated_rounds())
        .field("accounted_rounds", s.ledger().accounted_rounds())
        .field("build_wall_s", timer.seconds());
    const double reference =
        std::pow(static_cast<double>(n), 0.5 + 1.0 / k) + d;
    table.add_row(
        {std::to_string(n), std::to_string(d),
         util::TextTable::fmt(s.total_rounds()),
         util::TextTable::fmt(s.ledger().simulated_rounds()),
         util::TextTable::fmt(s.ledger().accounted_rounds()),
         util::TextTable::fmt(static_cast<double>(s.total_rounds()) /
                              reference, 1),
         util::TextTable::fmt(static_cast<double>(s.total_rounds()) /
                                  static_cast<double>(g.m()),
                              2)});
  }
  std::printf("%s\n", table.render().c_str());
}

}  // namespace

int main() {
  using namespace nors;
  const int n_max = bench::env_n(4096);
  bench::print_header("E1 / rounds scaling",
                      "construction rounds vs n, vs (n^{1/2+1/k}+D)");
  bench::JsonReport report("rounds_scaling");
  std::vector<int> ns;
  for (int n = 256; n <= n_max; n *= 2) ns.push_back(n);

  run_series("G(n, 3n) random", false, ns, 3, report);
  run_series("G(n, 3n) random", false, ns, 4, report);

  // Even vs odd k at matched table-size class: the odd-k construction
  // replaces the n^{1/2+1/k} term by n^{1/2+1/(2k)}.
  std::printf("-- even vs odd k on the same graphs --\n");
  util::TextTable eo({"n", "k=4 rounds", "k=5 rounds", "k=5/k=4"});
  for (int n : ns) {
    const auto g = bench::bench_graph(n, 1234 + static_cast<std::uint64_t>(n));
    core::SchemeParams p4;
    p4.k = 4;
    p4.seed = 5;
    core::SchemeParams p5 = p4;
    p5.k = 5;
    const auto s4 = core::RoutingScheme::build(g, p4);
    const auto s5 = core::RoutingScheme::build(g, p5);
    eo.add_row({std::to_string(n), util::TextTable::fmt(s4.total_rounds()),
                util::TextTable::fmt(s5.total_rounds()),
                util::TextTable::fmt(static_cast<double>(s5.total_rounds()) /
                                         static_cast<double>(s4.total_rounds()),
                                     2)});
  }
  std::printf("%s\n", eo.render().c_str());

  // The +D term: on a path, D = n-1 floors the cost for every k.
  std::vector<int> path_ns;
  for (int n = 256; n <= std::min(n_max, 2048); n *= 2) path_ns.push_back(n);
  run_series("path (D = n-1)", true, path_ns, 3, report);

  report.write();
  std::printf(
      "shape checks: ratio column ~flat (Õ hides polylogs); rounds/m falls\n"
      "with n; on the path the +D term dominates as D = n-1.\n");
  return 0;
}
