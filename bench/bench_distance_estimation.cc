// Experiment E4 (paper Theorem 6): the distance-estimation scheme —
// sketches O(n^{1/k} log n) words, stretch 2k-1+o(1), O(k)-time queries —
// against (a) the sequential TZ05 oracle it matches in size/stretch and
// (b) the [SDP15]-style distributed construction it beats in rounds
// (Õ(S·n^{1/k}) vs Õ(n^{1/2+1/k}+D) — the Izumi–Wattenhofer gap the paper
// closes). The rounds column compares both distributed constructions on a
// high-S graph appended below the main table.

#include <chrono>
#include <cmath>

#include "baselines/sdp15_sketches.h"
#include "common.h"
#include "core/distance_estimation.h"
#include "core/scheme.h"
#include "tz/tz_oracle.h"

int main() {
  using namespace nors;
  const int n = bench::env_n(1024);
  bench::print_header("E4 / distance estimation",
                      "sketch size, 2k-1+o(1) stretch, O(k) queries");
  const auto g = bench::bench_graph(n, 5150);
  std::printf("graph: n=%d m=%lld\n\n", g.n(), static_cast<long long>(g.m()));

  util::TextTable table({"k", "scheme", "sketch avg", "sketch max",
                         "stretch avg", "stretch max", "bound", "iters max",
                         "query ns"});
  for (int k : {2, 3, 4, 5}) {
    {
      core::SchemeParams p;
      p.k = k;
      p.seed = 616;
      const auto s = core::RoutingScheme::build(g, p);
      const auto de = core::DistanceEstimation::build(s);
      int iters_max = 0;
      const auto st = bench::measure_stretch(
          g, [&](graph::Vertex u, graph::Vertex v) {
            const auto q = de.estimate(u, v);
            iters_max = std::max(iters_max, q.iterations);
            return q.estimate;
          });
      const auto [savg, smax] = bench::avg_max(
          n, [&](graph::Vertex v) { return de.sketch_words(v); });
      // Query latency (O(k) sketch lookups).
      const auto t0 = std::chrono::steady_clock::now();
      std::int64_t sink = 0;
      const int reps = 200000;
      util::Rng qr(1);
      for (int i = 0; i < reps; ++i) {
        const auto u = static_cast<graph::Vertex>(qr.uniform(n));
        const auto v = static_cast<graph::Vertex>(qr.uniform(n));
        sink += de.estimate(u, v).estimate;
      }
      const double ns =
          std::chrono::duration<double, std::nano>(
              std::chrono::steady_clock::now() - t0)
              .count() /
          reps;
      if (sink == 42) std::printf("(unlikely)\n");
      table.add_row({std::to_string(k), "this paper (Thm 6)",
                     util::TextTable::fmt(savg, 0),
                     util::TextTable::fmt(smax),
                     util::TextTable::fmt(st.avg),
                     util::TextTable::fmt(st.max),
                     util::TextTable::fmt(de.stretch_bound()),
                     std::to_string(iters_max),
                     util::TextTable::fmt(ns, 0)});
    }
    {
      const auto o = tz::TzDistanceOracle::build(g, {k, 616});
      int iters_max = 0;
      const auto st = bench::measure_stretch(
          g, [&](graph::Vertex u, graph::Vertex v) {
            const auto q = o.query(u, v);
            iters_max = std::max(iters_max, q.iterations);
            return q.estimate;
          });
      const auto [savg, smax] = bench::avg_max(
          n, [&](graph::Vertex v) { return o.sketch_words(v); });
      table.add_row({std::to_string(k), "TZ05 sequential",
                     util::TextTable::fmt(savg, 0),
                     util::TextTable::fmt(smax),
                     util::TextTable::fmt(st.avg),
                     util::TextTable::fmt(st.max),
                     std::to_string(2 * k - 1), std::to_string(iters_max),
                     "-"});
    }
  }
  std::printf("%s\n", table.render().c_str());

  // Rounds head-to-head on S >> D graphs (unit path + heavy star hub):
  // [SDP15]'s exact explorations must walk the shortest-path diameter S,
  // so a real deployment runs an Õ(S·n^{1/k}) synchronous schedule (a
  // simulator converges earlier only because quiescence detection is
  // free); the paper's construction is hop-bounded by B = Õ(√n). S doubles
  // with n here while B grows like √n — the growth gap is the claim.
  {
    util::TextTable rounds_t({"n (S=n-2, D=2)", "SDP15 schedule",
                              "SDP15 measured", "this paper total",
                              "exploration depth: S vs B"});
    for (int sn : {1024, 2048, 4096}) {
      graph::WeightedGraph sg(sn);
      for (graph::Vertex v = 0; v + 2 < sn; ++v) sg.add_edge(v, v + 1, 1);
      for (graph::Vertex v = 0; v + 1 < sn; ++v) {
        sg.add_edge(v, static_cast<graph::Vertex>(sn - 1), 4LL * sn);
      }
      sg.freeze();
      // k=2: our exploration bound B = 4·√n·ln n is already below S = n-2
      // at these sizes, and the gap widens (√n vs n).
      const auto b = baselines::Sdp15Sketches::build(sg, {2, 616, 1});
      core::SchemeParams p;
      p.k = 2;
      p.seed = 616;
      const auto s = core::RoutingScheme::build(sg, p);
      const double log_n = std::log(static_cast<double>(sn));
      const double schedule =
          4.0 * (sn - 2) * std::sqrt(static_cast<double>(sn)) * log_n;
      const std::int64_t b_hops = std::min<std::int64_t>(
          sn, static_cast<std::int64_t>(
                  4.0 * std::sqrt(static_cast<double>(sn)) * log_n));
      rounds_t.add_row(
          {std::to_string(sn), util::TextTable::fmt(schedule, 0),
           util::TextTable::fmt(b.ledger().total_rounds()),
           util::TextTable::fmt(s.total_rounds()),
           std::to_string(sn - 2) + " vs " + std::to_string(b_hops)});
    }
    std::printf("rounds on S>>D graphs (k=2):\n%s\n",
                rounds_t.render().c_str());
  }
  std::printf(
      "shape checks: stretch max <= bound (2k-1+o(1)); sketch sizes track\n"
      "TZ05; query iterations <= k and latency is size-independent; on the\n"
      "S>>D graphs the SDP15-style schedule scales with S (= n) while the\n"
      "paper's exploration depth B does not (the gap Theorem 6 closes).\n");
  return 0;
}
