// Experiment E3: routing stretch vs k — the 4k-5+o(1) claim, the 4k-5 vs
// 4k-3 label-trick ablation, and the comparison against the sequential TZ01
// baseline (which our distributed construction should match up to o(1)).

#include "common.h"
#include "core/scheme.h"
#include "tz/tz_routing.h"

int main() {
  using namespace nors;
  const int n = bench::env_n(1024);
  bench::print_header("E3 / stretch vs k", "4k-5+o(1), trick ablation, vs TZ01");
  const auto g = bench::bench_graph(n, 777, /*max_w=*/40);
  std::printf("graph: n=%d m=%lld\n\n", g.n(), static_cast<long long>(g.m()));

  util::TextTable table({"k", "scheme", "avg", "p50", "p95", "max", "bound"});
  for (int k : {2, 3, 4, 5}) {
    for (const bool trick : {true, false}) {
      core::SchemeParams p;
      p.k = k;
      p.seed = 31337;
      p.label_trick = trick;
      const auto s = core::RoutingScheme::build(g, p);
      const auto st = bench::measure_stretch(
          g, [&](graph::Vertex u, graph::Vertex v) {
            return s.route(u, v).length;
          });
      table.add_row({std::to_string(k),
                     trick ? "this paper (4k-5 trick)" : "this paper (4k-3)",
                     util::TextTable::fmt(st.avg),
                     util::TextTable::fmt(st.p50),
                     util::TextTable::fmt(st.p95),
                     util::TextTable::fmt(st.max),
                     util::TextTable::fmt(s.stretch_bound())});
    }
    const auto tz = tz::TzRoutingScheme::build(g, {k, 31337, true});
    const auto st = bench::measure_stretch(
        g, [&](graph::Vertex u, graph::Vertex v) {
          return tz.route(u, v).length;
        });
    table.add_row({std::to_string(k), "TZ01 sequential",
                   util::TextTable::fmt(st.avg),
                   util::TextTable::fmt(st.p50),
                   util::TextTable::fmt(st.p95),
                   util::TextTable::fmt(st.max),
                   std::to_string(std::max(1, 4 * k - 5))});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "shape checks: every max <= bound; trick rows dominate no-trick rows;\n"
      "our distributed stretch tracks the sequential TZ01 values.\n");
  return 0;
}
