// Serving workload (DESIGN.md §5, §8): freeze a constructed scheme into
// flat tables, then rate batched route(u, v) decision queries answered
// purely from the frozen state — queries/sec and decisions/sec (one
// decision = one next-hop port evaluation) across thread counts, cache
// settings and shard counts, plus sampled per-query tail latency. The
// load path is measured three ways (owning load, zero-copy mmap, and the
// sharded front-end over the mapped image); the Thorup–Zwick distance
// oracle, frozen the same way, is the sequential-baseline row.
//
// Runtime knobs (all recorded in the emitted JSON):
//   --threads=T   max worker threads of the RouteServer sweep
//                 (default: 2 × hardware concurrency)
//   --shards=K    max shard count of the ShardedRouteServer sweep,
//                 swept 1, 2, 4, ... K (default 4)
//   --cache=C     (vertex, tree) cache entries per worker (default 4096)
//   --seed=S      query-batch RNG seed (default 9)
//   --queries=Q   batch size (default 200000)
//   NORS_BENCH_N  graph size (default 2^14)
//
// Emits BENCH_serving.json (schema: bench/results/README.md).

#include <cstring>
#include <string>
#include <thread>

#include "common.h"
#include "core/scheme.h"
#include "serve/frozen.h"
#include "serve/frozen_tz.h"
#include "serve/server.h"
#include "serve/shard.h"
#include "tz/tz_oracle.h"
#include "util/latency.h"

namespace {

using namespace nors;

std::vector<serve::Query> make_queries(int n, std::size_t count,
                                       std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<serve::Query> qs;
  qs.reserve(count);
  while (qs.size() < count) {
    const auto u =
        static_cast<graph::Vertex>(rng.uniform(static_cast<std::uint64_t>(n)));
    const auto v =
        static_cast<graph::Vertex>(rng.uniform(static_cast<std::uint64_t>(n)));
    if (u == v) continue;
    qs.push_back({u, v});
  }
  return qs;
}

/// --key=value flags; anything unrecognized aborts with usage.
struct Flags {
  int max_threads = 0;  // 0 = 2 × hardware concurrency
  int max_shards = 4;
  int cache = 4096;
  std::uint64_t seed = 9;
  std::size_t queries = 200000;

  static Flags parse(int argc, char** argv) {
    Flags f;
    for (int i = 1; i < argc; ++i) {
      const std::string a = argv[i];
      auto val = [&a](const char* key) -> const char* {
        const std::size_t len = std::strlen(key);
        return a.compare(0, len, key) == 0 ? a.c_str() + len : nullptr;
      };
      if (const char* v = val("--threads=")) {
        f.max_threads = std::atoi(v);
      } else if (const char* v = val("--shards=")) {
        f.max_shards = std::atoi(v);
      } else if (const char* v = val("--cache=")) {
        f.cache = std::atoi(v);
      } else if (const char* v = val("--seed=")) {
        f.seed = std::strtoull(v, nullptr, 10);
      } else if (const char* v = val("--queries=")) {
        f.queries = std::strtoull(v, nullptr, 10);
      } else {
        std::fprintf(stderr,
                     "unknown flag %s\nusage: bench_serving [--threads=T] "
                     "[--shards=K] [--cache=C] [--seed=S] [--queries=Q]\n",
                     a.c_str());
        std::exit(2);
      }
    }
    NORS_CHECK_MSG(f.max_shards >= 1 && f.cache >= 0 && f.queries > 0,
                   "bad flag value");
    return f;
  }
};

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  const int n = bench::env_n(1 << 14);
  const int k = 3;
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const int max_threads =
      flags.max_threads > 0 ? flags.max_threads : static_cast<int>(2 * hw);
  bench::print_header("serving",
                      "frozen-table route decisions/sec, tail latency, "
                      "save/load/mmap round-trip, sharded front-end");

  bench::JsonReport report("serving");

  // ---- build, freeze, save/load/map -------------------------------------
  const auto g = bench::bench_graph(n, /*seed=*/17);
  std::printf("graph: n=%d m=%lld; building scheme (k=%d)...\n", n,
              static_cast<long long>(g.m()), k);
  core::SchemeParams params;
  params.k = k;
  params.seed = 23;
  bench::WallTimer build_t;
  const auto scheme = core::RoutingScheme::build(g, params);
  const double build_s = build_t.seconds();

  bench::WallTimer freeze_t;
  const auto frozen = serve::FrozenScheme::freeze(scheme);
  const double freeze_s = freeze_t.seconds();

  bench::WallTimer save_t;
  const auto image = frozen.save();
  const double save_s = save_t.seconds();
  bench::WallTimer load_t;
  const auto reloaded = serve::FrozenScheme::load(image);
  const double load_s = load_t.seconds();
  const bool identical = reloaded.save() == image;

  // Zero-copy path: mmap the saved image (startup = checksum + validate).
  const std::string map_path = "bench_serving_tables.frozen";
  frozen.save_file(map_path);
  bench::WallTimer map_t;
  const auto mapped = serve::FrozenScheme::map(map_path);
  const double map_s = map_t.seconds();
  const bool map_identical = mapped.save() == image;

  // Spot-check both reloaded snapshots against the live scheme.
  int spot_checked = 0;
  for (const auto& q : make_queries(n, 200, 5)) {
    const auto live = scheme.route(q.u, q.v);
    const auto snap = reloaded.route(q.u, q.v);
    const auto msnap = mapped.route(q.u, q.v);
    NORS_CHECK_MSG(live.length == snap.length && live.hops == snap.hops,
                   "frozen decision diverged at " << q.u << "->" << q.v);
    NORS_CHECK_MSG(live.length == msnap.length && live.hops == msnap.hops,
                   "mapped decision diverged at " << q.u << "->" << q.v);
    ++spot_checked;
  }

  std::printf(
      "build %.2fs | freeze %.3fs | image %.1f MiB | save %.3fs | load %.3fs "
      "| mmap %.3fs | round-trip %s/%s | %d spot checks ok\n\n",
      build_s, freeze_s, static_cast<double>(image.size()) / (1 << 20),
      save_s, load_s, map_s, identical ? "byte-identical" : "MISMATCH",
      map_identical ? "byte-identical" : "MISMATCH", spot_checked);
  NORS_CHECK_MSG(identical, "save->load->save must be byte-identical");
  NORS_CHECK_MSG(map_identical, "save->map->save must be byte-identical");
  report.row()
      .field("row", std::string("build"))
      .field("n", n)
      .field("m", static_cast<std::int64_t>(g.m()))
      .field("k", k)
      .field("seed", static_cast<std::int64_t>(flags.seed))
      .field("hw_threads", static_cast<std::int64_t>(hw))
      .field("build_s", build_s)
      .field("freeze_s", freeze_s)
      .field("image_bytes", static_cast<std::int64_t>(image.size()))
      .field("save_s", save_s)
      .field("load_s", load_s)
      .field("map_s", map_s)
      .field("format_version", static_cast<std::int64_t>(
                                   frozen.format_version()))
      .field("roundtrip_identical", identical ? 1 : 0)
      .field("map_identical", map_identical ? 1 : 0)
      .field("spot_checked", spot_checked);

  // ---- throughput across threads / cache --------------------------------
  const auto queries = make_queries(n, flags.queries, flags.seed);
  std::vector<serve::Decision> out(queries.size());
  util::TextTable table({"threads", "cache", "queries/s", "decisions/s",
                         "avg hops", "cache hit%", "wall s"});
  std::vector<int> cache_settings{0};
  if (flags.cache != 0) cache_settings.push_back(flags.cache);
  for (const int cache : cache_settings) {
    for (int threads = 1; threads <= max_threads; threads *= 2) {
      serve::ServerOptions opt;
      opt.threads = threads;
      opt.cache_entries = cache;
      const serve::RouteServer server(reloaded, opt);
      bench::WallTimer t;
      server.serve(queries.data(), queries.size(), out.data());
      const double wall = t.seconds();
      const auto stats = server.stats();
      const double qps = static_cast<double>(queries.size()) / wall;
      const double dps = static_cast<double>(stats.hops) / wall;
      const double avg_hops = static_cast<double>(stats.hops) /
                              static_cast<double>(queries.size());
      const double hit_rate =
          stats.cache_hits + stats.cache_misses == 0
              ? 0.0
              : 100.0 * static_cast<double>(stats.cache_hits) /
                    static_cast<double>(stats.cache_hits + stats.cache_misses);
      table.add_row({util::TextTable::fmt(static_cast<std::int64_t>(threads)),
                     util::TextTable::fmt(static_cast<std::int64_t>(cache)),
                     util::TextTable::fmt(qps, 0),
                     util::TextTable::fmt(dps, 0),
                     util::TextTable::fmt(avg_hops, 2),
                     util::TextTable::fmt(hit_rate, 1),
                     util::TextTable::fmt(wall, 3)});
      report.row()
          .field("row", std::string("serve"))
          .field("n", n)
          .field("k", k)
          .field("seed", static_cast<std::int64_t>(flags.seed))
          .field("threads", threads)
          .field("cache_entries", cache)
          .field("queries", static_cast<std::int64_t>(queries.size()))
          .field("wall_s", wall)
          .field("qps", qps)
          .field("decisions_per_sec", dps)
          .field("avg_hops", avg_hops)
          .field("cache_hit_pct", hit_rate);
    }
  }
  std::printf("%s\n", table.render().c_str());

  // ---- sharded front-end over the mapped image --------------------------
  // Shards slice the query stream by source vertex; workers (one per shard
  // up to the hardware clamp — both counts are reported) answer through
  // the batch engine with warm caches over the shared zero-copy image.
  // Aggregate decisions/s scales with cores; on a 1-core runner every row
  // runs on one worker and measures dispatch overhead instead.
  {
    util::TextTable stable({"shards", "workers", "queries/s", "decisions/s",
                            "p50 us", "p99 us", "balance", "wall s"});
    for (int shards = 1; shards <= flags.max_shards; shards *= 2) {
      serve::ShardedOptions opt;
      opt.shards = shards;
      opt.cache_entries = flags.cache;
      serve::ShardedRouteServer server(mapped, opt);
      bench::WallTimer t;
      server.serve(queries.data(), queries.size(), out.data());
      const double wall = t.seconds();
      const auto totals = server.totals();
      NORS_CHECK_MSG(totals.queries ==
                         static_cast<std::int64_t>(queries.size()),
                     "sharded stats lost queries");
      const double qps = static_cast<double>(queries.size()) / wall;
      const double dps = static_cast<double>(totals.hops) / wall;
      // Load balance: smallest/largest per-shard query share.
      std::int64_t lo = totals.queries, hi = 0;
      for (int s = 0; s < server.shards(); ++s) {
        const auto st = server.shard_stats(s);
        lo = std::min(lo, st.queries);
        hi = std::max(hi, st.queries);
      }
      const double balance =
          hi == 0 ? 1.0
                  : static_cast<double>(lo) / static_cast<double>(hi);
      stable.add_row(
          {util::TextTable::fmt(static_cast<std::int64_t>(shards)),
           util::TextTable::fmt(static_cast<std::int64_t>(server.workers())),
           util::TextTable::fmt(qps, 0), util::TextTable::fmt(dps, 0),
           util::TextTable::fmt(totals.p50_us, 2),
           util::TextTable::fmt(totals.p99_us, 2),
           util::TextTable::fmt(balance, 2),
           util::TextTable::fmt(wall, 3)});
      report.row()
          .field("row", std::string("sharded"))
          .field("n", n)
          .field("k", k)
          .field("seed", static_cast<std::int64_t>(flags.seed))
          .field("shards", shards)
          .field("workers", server.workers())
          .field("cache_entries", flags.cache)
          .field("mapped", 1)
          .field("queries", static_cast<std::int64_t>(queries.size()))
          .field("wall_s", wall)
          .field("qps", qps)
          .field("decisions_per_sec", dps)
          .field("p50_us", totals.p50_us)
          .field("p99_us", totals.p99_us)
          .field("shard_balance", balance);
    }
    std::printf("sharded front-end over the mmap'ed image (cache %d):\n%s\n",
                flags.cache, stable.render().c_str());
  }

  // ---- tail latency (single thread, per-query timing) -------------------
  // Every query of the stream is clocked into the log2-bucket histogram
  // (util/latency.h, the same path the shards use), so p999 and max come
  // from the full stream rather than a sorted sample; max is exact.
  {
    util::LatencyHistogram hist;
    double max_us = 0;
    for (const auto& q : queries) {
      bench::WallTimer qt;
      const auto d = reloaded.route(q.u, q.v);
      const double us = qt.seconds() * 1e6;
      hist.record_ns(static_cast<std::int64_t>(us * 1e3));
      if (us > max_us) max_us = us;
      NORS_CHECK(d.ok);
    }
    const double p50 = hist.quantile_us(0.5);
    const double p99 = hist.quantile_us(0.99);
    const double p999 = hist.quantile_us(0.999);
    std::printf(
        "latency over %zu queries (full stream): p50 %.2fus  p99 %.2fus  "
        "p99.9 %.2fus  max %.2fus\n",
        queries.size(), p50, p99, p999, max_us);
    report.row()
        .field("row", std::string("latency"))
        .field("n", n)
        .field("k", k)
        .field("seed", static_cast<std::int64_t>(flags.seed))
        .field("sampled", static_cast<std::int64_t>(queries.size()))
        .field("p50_us", p50)
        .field("p99_us", p99)
        .field("p999_us", p999)
        .field("max_us", max_us);
  }

  // ---- frozen TZ distance-oracle baseline -------------------------------
  // Served through the same pipelined batch engine as the scheme, so the
  // gap between the rows is the algorithms', not the engines'.
  {
    tz::TzDistanceOracle::Params tp;
    tp.k = k;
    tp.seed = 29;
    const auto oracle = tz::TzDistanceOracle::build(g, tp);
    const auto ftz = serve::FrozenTzOracle::freeze(oracle, n);
    std::vector<serve::FrozenTzOracle::Result> results(queries.size());
    bench::WallTimer t;
    ftz.query_batch(queries.data(), queries.size(), results.data());
    const double wall = t.seconds();
    std::int64_t sink = 0;
    for (const auto& r : results) sink += r.estimate;
    const double qps = static_cast<double>(queries.size()) / wall;
    std::printf(
        "baseline: frozen TZ distance oracle %.0f queries/s (%.1f MiB flat, "
        "checksum %lld)\n",
        qps, static_cast<double>(ftz.byte_size()) / (1 << 20),
        static_cast<long long>(sink % 1000));
    report.row()
        .field("row", std::string("baseline_tz_oracle"))
        .field("n", n)
        .field("k", k)
        .field("queries", static_cast<std::int64_t>(queries.size()))
        .field("qps", qps)
        .field("frozen_bytes", ftz.byte_size());
  }

  std::remove(map_path.c_str());
  report.write();
  return 0;
}
