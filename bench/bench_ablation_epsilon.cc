// Experiment E7: the ε ablation. The paper fixes ε = 1/(48k⁴) so that the
// per-level (1+O(ε)) stretch losses accumulate to an additive o(1); larger
// practical ε weakens the bound but cheapens source detection (fewer
// quantization scales ⇒ fewer rounds). This bench sweeps ε and reports the
// analytic bound, measured stretch, and construction rounds.

#include "common.h"
#include "core/scheme.h"

int main() {
  using namespace nors;
  const int n = bench::env_n(1024);
  const int k = 3;
  bench::print_header("E7 / epsilon ablation",
                      "stretch bound and rounds vs eps (k=3)");
  // Heavy weights so the quantized source-detection scales actually differ.
  const auto g = bench::bench_graph(n, 2718, /*max_w=*/50000);
  std::printf("graph: n=%d m=%lld max_w=50000\n\n", g.n(),
              static_cast<long long>(g.m()));

  util::TextTable table({"eps", "bound", "stretch avg", "stretch max",
                         "rounds", "beta"});
  std::vector<util::Epsilon> epss{util::Epsilon::paper_value(k),
                                  util::Epsilon(1, 1000),
                                  util::Epsilon(1, 100),
                                  util::Epsilon(1, 20),
                                  util::Epsilon(1, 8),
                                  util::Epsilon(1, 4)};
  for (const auto& eps : epss) {
    core::SchemeParams p;
    p.k = k;
    p.seed = 10;
    p.eps = eps;
    const auto s = core::RoutingScheme::build(g, p);
    const auto st = bench::measure_stretch(
        g, [&](graph::Vertex u, graph::Vertex v) {
          return s.route(u, v).length;
        });
    table.add_row({eps.to_string(), util::TextTable::fmt(s.stretch_bound()),
                   util::TextTable::fmt(st.avg),
                   util::TextTable::fmt(st.max),
                   util::TextTable::fmt(s.total_rounds()),
                   std::to_string(s.beta())});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "shape checks: the analytic bound tightens toward 4k-5 as eps -> the\n"
      "paper value and degrades fast for coarse eps — that asymmetry is why\n"
      "the paper can afford eps = 1/(48k^4): at simulator scale the virtual\n"
      "graph is nearly complete (beta = 1), so the *measured* stretch and\n"
      "rounds barely move, and the only cost of a tiny eps is hidden in the\n"
      "n^{o(1)} factors that a laptop-scale n cannot surface.\n");
  return 0;
}
