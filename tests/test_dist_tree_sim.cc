#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/shortest_paths.h"
#include "treeroute/dist_tree.h"
#include "treeroute/dist_tree_sim.h"

namespace nors {
namespace {

using graph::Vertex;

treeroute::TreeSpec sssp_spec(const graph::WeightedGraph& g, Vertex root) {
  const auto sp = graph::dijkstra(g, root);
  treeroute::TreeSpec spec;
  spec.root = root;
  spec.parent.assign(static_cast<std::size_t>(g.n()), graph::kNoVertex);
  spec.parent_port.assign(static_cast<std::size_t>(g.n()), graph::kNoPort);
  for (Vertex v = 0; v < g.n(); ++v) {
    spec.members.push_back(v);
    if (v == root) continue;
    spec.parent[v] = sp.parent[static_cast<std::size_t>(v)];
    spec.parent_port[v] = sp.parent_port[static_cast<std::size_t>(v)];
  }
  return spec;
}

class Phase1SimTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Phase1SimTest, IntervalsMatchCentralizedBuild) {
  util::Rng rng(GetParam());
  const auto g =
      graph::connected_gnm(120, 300, graph::WeightSpec::uniform(1, 9), rng);
  const auto spec = sssp_spec(g, 0);
  std::vector<char> in_u(static_cast<std::size_t>(g.n()), 0);
  util::Rng urng(GetParam() + 7);
  for (Vertex v = 0; v < g.n(); ++v) {
    in_u[static_cast<std::size_t>(v)] = urng.bernoulli(0.15) ? 1 : 0;
  }
  const auto sim = treeroute::simulate_phase1(g, spec, in_u);
  const auto scheme = treeroute::DistTreeScheme::build(g, spec, in_u);
  // The simulated message-level DFS must assign exactly the intervals the
  // centralized construction computes (same heavy-first order).
  for (Vertex v = 0; v < g.n(); ++v) {
    const auto& local = scheme.info(v).local;
    EXPECT_EQ(sim.a.at(v), local.a) << "v=" << v;
    EXPECT_EQ(sim.b.at(v), local.b) << "v=" << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Phase1SimTest,
                         ::testing::Values(901, 902, 903, 904));

TEST(Phase1Sim, RoundsScaleWithSubtreeDepthNotTreeSize) {
  // Deep path tree: with dense U the two passes finish in O(max subtree
  // depth) rounds even though the tree has n vertices.
  util::Rng rng(911);
  const auto g = graph::path(400, graph::WeightSpec::unit(), rng);
  const auto spec = sssp_spec(g, 0);
  std::vector<char> dense(static_cast<std::size_t>(g.n()), 0);
  for (Vertex v = 0; v < g.n(); v += 20) dense[static_cast<std::size_t>(v)] = 1;
  const auto sim = treeroute::simulate_phase1(g, spec, dense);
  const auto scheme = treeroute::DistTreeScheme::build(g, spec, dense);
  EXPECT_LE(scheme.max_subtree_depth(), 20);
  // Two passes over depth-≤20 subtrees, plus wake/handoff slack.
  EXPECT_LE(sim.rounds, 3 * (scheme.max_subtree_depth() + 2));

  std::vector<char> none(static_cast<std::size_t>(g.n()), 0);
  const auto sim_deep = treeroute::simulate_phase1(g, spec, none);
  // Without sampled cut vertices the passes walk the whole depth.
  EXPECT_GE(sim_deep.rounds, 399);
}

TEST(Phase1Sim, SizesAreSubtreeSizes) {
  util::Rng rng(912);
  const auto g = graph::random_tree(150, graph::WeightSpec::unit(), rng);
  const auto spec = sssp_spec(g, 0);
  std::vector<char> in_u(static_cast<std::size_t>(g.n()), 0);
  for (Vertex v = 1; v < g.n(); v += 11) in_u[static_cast<std::size_t>(v)] = 1;
  const auto sim = treeroute::simulate_phase1(g, spec, in_u);
  // Each subtree root's size equals its interval width, and sizes of all
  // subtree roots sum to n.
  std::int64_t total = 0;
  for (Vertex v = 0; v < g.n(); ++v) {
    if (v == 0 || in_u[static_cast<std::size_t>(v)]) {
      EXPECT_EQ(sim.size.at(v), sim.b.at(v) - sim.a.at(v));
      total += sim.size.at(v);
    }
  }
  EXPECT_EQ(total, g.n());
}

}  // namespace
}  // namespace nors
