#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "util/latency.h"
#include "util/random.h"
#include "util/ratio.h"
#include "util/simd.h"
#include "util/stats.h"
#include "util/table.h"

namespace nors {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  util::Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  util::Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 4);
}

TEST(Rng, UniformRespectsBounds) {
  util::Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.uniform(10);
    EXPECT_LT(v, 10u);
  }
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.uniform_int(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, BernoulliExtremes) {
  util::Rng r(3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliFrequency) {
  util::Rng r(11);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) hits += r.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.02);
}

TEST(Rng, ForkIndependentStreams) {
  util::Rng a(5);
  util::Rng f1 = a.fork(1);
  util::Rng f2 = a.fork(2);
  EXPECT_NE(f1.next(), f2.next());
}

TEST(Epsilon, PaperValue) {
  const auto e = util::Epsilon::paper_value(4);
  EXPECT_EQ(e.num(), 1);
  EXPECT_EQ(e.den(), 48 * 256);
}

TEST(Epsilon, Normalization) {
  const util::Epsilon e(2, 4);
  EXPECT_EQ(e.num(), 1);
  EXPECT_EQ(e.den(), 2);
}

TEST(Epsilon, RejectsInvalid) {
  EXPECT_THROW(util::Epsilon(0, 5), std::logic_error);
  EXPECT_THROW(util::Epsilon(6, 5), std::logic_error);
  EXPECT_THROW(util::Epsilon(-1, 5), std::logic_error);
}

TEST(Epsilon, LessThanDivMatchesRationalArithmetic) {
  // a < c/(1+eps)^p with eps = 1/4, (1+eps) = 5/4.
  const util::Epsilon e(1, 4);
  // c = 125, p = 3: c/(5/4)^3 = 125 * 64/125 = 64.
  EXPECT_TRUE(e.less_than_div(63, 125, 3));
  EXPECT_FALSE(e.less_than_div(64, 125, 3));  // equality is not <
  EXPECT_FALSE(e.less_than_div(65, 125, 3));
}

TEST(Epsilon, LeqMulMatchesRationalArithmetic) {
  const util::Epsilon e(1, 4);
  // (1+eps)^2 * 16 = 25.
  EXPECT_TRUE(e.leq_mul(25, 16, 2));
  EXPECT_FALSE(e.leq_mul(26, 16, 2));
}

TEST(Epsilon, TinyPaperEpsilonStillExact) {
  const auto e = util::Epsilon::paper_value(6);  // 1/(48*1296)
  const std::int64_t c = 1'000'000'000;          // ~distance scale
  // c/(1+eps) is just below c: c-1 < c/(1+eps) iff (c-1)(1+eps) < c.
  EXPECT_TRUE(e.less_than_div(c - 100'000, c, 1));
  EXPECT_FALSE(e.less_than_div(c, c, 1));
}

TEST(Epsilon, MulPowCeil) {
  const util::Epsilon e(1, 2);
  EXPECT_EQ(e.mul_pow_ceil(8, 1), 12);   // 8 * 3/2
  EXPECT_EQ(e.mul_pow_ceil(8, 2), 18);   // 8 * 9/4
  EXPECT_EQ(e.mul_pow_ceil(7, 1), 11);   // ceil(10.5)
}

TEST(Stats, AccumulatorBasics) {
  util::Accumulator acc;
  for (double x : {1.0, 2.0, 3.0, 4.0}) acc.add(x);
  EXPECT_EQ(acc.count(), 4);
  EXPECT_DOUBLE_EQ(acc.min(), 1.0);
  EXPECT_DOUBLE_EQ(acc.max(), 4.0);
  EXPECT_DOUBLE_EQ(acc.mean(), 2.5);
  EXPECT_NEAR(acc.stddev(), std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(Stats, Percentile) {
  std::vector<double> v{5, 1, 4, 2, 3};
  EXPECT_DOUBLE_EQ(util::percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(util::percentile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(util::percentile(v, 0.5), 3.0);
}

TEST(Simd, LowerBoundMatchesStdOnExhaustiveSmallRuns) {
  // Every length 0..20, every key position including below-min/above-max,
  // with duplicates: the vector path, the scalar tail and the branchless
  // binary narrowing must all agree with std::lower_bound exactly.
  for (std::int32_t len = 0; len <= 20; ++len) {
    std::vector<std::int32_t> keys;
    for (std::int32_t i = 0; i < len; ++i) {
      keys.push_back(3 * i + (i % 2));  // gaps and an uneven stride
    }
    if (len >= 4) keys[2] = keys[1];  // duplicate run
    std::sort(keys.begin(), keys.end());
    for (std::int32_t key = -2; key <= 3 * len + 2; ++key) {
      const auto expect = static_cast<std::int32_t>(
          std::lower_bound(keys.begin(), keys.end(), key) - keys.begin());
      EXPECT_EQ(util::simd::lower_bound_i32(keys.data(), len, key), expect)
          << "len=" << len << " key=" << key;
      EXPECT_EQ(util::simd::count_less_i32(keys.data(), len, key), expect);
    }
  }
}

TEST(Simd, LowerBoundMatchesStdOnRandomLongRuns) {
  // Long runs cross the binary-narrowing threshold (>64) and exercise the
  // negative range and INT32 extremes.
  util::Rng rng(606060);
  for (int trial = 0; trial < 50; ++trial) {
    const auto len = static_cast<std::int32_t>(1 + rng.uniform(500));
    std::vector<std::int32_t> keys;
    keys.reserve(static_cast<std::size_t>(len));
    for (std::int32_t i = 0; i < len; ++i) {
      keys.push_back(static_cast<std::int32_t>(rng.next()));
    }
    std::sort(keys.begin(), keys.end());
    for (int probe = 0; probe < 40; ++probe) {
      std::int32_t key;
      if (probe == 0) {
        key = std::numeric_limits<std::int32_t>::min();
      } else if (probe == 1) {
        key = std::numeric_limits<std::int32_t>::max();
      } else if (probe % 2 == 0) {
        key = keys[rng.uniform(static_cast<std::uint64_t>(len))];
      } else {
        key = static_cast<std::int32_t>(rng.next());
      }
      const auto expect = static_cast<std::int32_t>(
          std::lower_bound(keys.begin(), keys.end(), key) - keys.begin());
      EXPECT_EQ(util::simd::lower_bound_i32(keys.data(), len, key), expect);
    }
  }
}

TEST(Latency, HistogramQuantilesBracketTheSamples) {
  util::LatencyHistogram h;
  // 1000 samples at 1µs, 10 at 100µs: p50 must sit near 1µs, p999 near
  // the tail bucket; log2 buckets guarantee only ≪2× resolution.
  for (int i = 0; i < 1000; ++i) h.record_ns(1000);
  for (int i = 0; i < 10; ++i) h.record_ns(100000);
  const double p50 = h.quantile_us(0.5);
  EXPECT_GE(p50, 0.5);
  EXPECT_LE(p50, 2.0);
  const double p999 = h.quantile_us(0.999);
  EXPECT_GE(p999, 64.0);
  EXPECT_LE(p999, 256.0);
  EXPECT_EQ(util::LatencyHistogram().quantile_us(0.5), 0.0);
}

TEST(Table, RendersAlignedCells) {
  util::TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
  EXPECT_THROW(t.add_row({"only-one"}), std::logic_error);
}

}  // namespace
}  // namespace nors
