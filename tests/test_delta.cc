// Live-table tests (DESIGN.md §13): the DeltaSet journal layer over a
// frozen image. Covered here: exact masking (a failed edge masks
// precisely the cluster trees routing across it), in-place weight repair
// (served lengths charge the overridden weights along the unchanged
// frozen route), revive-by-reweight unmasking, journal parsing, the
// sharded submit path with a delta attached, the stretch bound on the
// *updated* graph, and the update-while-serving wire stress: ≥10k
// journaled updates applied through kUpdate admin frames while four
// pipelined clients query continuously. CI runs this under ASan+UBSan
// and TSan.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "core/scheme.h"
#include "graph/generators.h"
#include "graph/shortest_paths.h"
#include "net/client.h"
#include "net/server.h"
#include "serve/delta.h"
#include "serve/frozen.h"
#include "serve/shard.h"
#include "util/random.h"

namespace nors {
namespace {

using graph::Vertex;
using serve::Decision;
using serve::DeltaSet;
using serve::EdgeUpdate;
using serve::Query;

graph::WeightedGraph test_graph(int n, std::uint64_t seed) {
  util::Rng rng(seed);
  return graph::connected_gnm(n, 3LL * n, graph::WeightSpec::uniform(1, 16),
                              rng);
}

core::RoutingScheme build_scheme(const graph::WeightedGraph& g, int k,
                                 std::uint64_t seed) {
  core::SchemeParams p;
  p.k = k;
  p.seed = seed;
  return core::RoutingScheme::build(g, p);
}

std::vector<Query> random_queries(int n, std::size_t count,
                                  std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<Query> qs;
  qs.reserve(count);
  while (qs.size() < count) {
    const auto u = static_cast<Vertex>(
        rng.uniform(static_cast<std::uint64_t>(n)));
    const auto v = static_cast<Vertex>(
        rng.uniform(static_cast<std::uint64_t>(n)));
    if (u != v) qs.push_back({u, v});
  }
  return qs;
}

using EdgeKey = std::pair<Vertex, Vertex>;

EdgeKey key_of(Vertex u, Vertex v) { return {std::min(u, v), std::max(u, v)}; }

/// All undirected edges of g, each once, with its weight.
std::vector<std::pair<EdgeKey, graph::Dist>> all_edges(
    const graph::WeightedGraph& g) {
  std::vector<std::pair<EdgeKey, graph::Dist>> out;
  for (Vertex u = 0; u < g.n(); ++u) {
    for (const auto& he : g.neighbors(u)) {
      if (he.to > u) out.push_back({{u, he.to}, he.w});
    }
  }
  return out;
}

/// The edge-state view a batch sequence leaves behind: weight per edge,
/// EdgeUpdate::kFail ⟺ failed. Later events override earlier ones, like
/// DeltaSet::apply.
using EdgeState = std::map<EdgeKey, graph::Dist>;

void fold_batch(EdgeState& state, const std::vector<EdgeUpdate>& batch) {
  for (const auto& e : batch) state[key_of(e.u, e.v)] = e.w;
}

/// Rebuilds g with `state` applied — the ground-truth graph the served
/// answers are measured against.
graph::WeightedGraph updated_graph(const graph::WeightedGraph& g,
                                   const EdgeState& state) {
  graph::WeightedGraph out(g.n());
  for (const auto& [key, w] : all_edges(g)) {
    graph::Dist use = w;
    if (const auto it = state.find(key); it != state.end()) use = it->second;
    if (use == EdgeUpdate::kFail) continue;
    out.add_edge(key.first, key.second, use);
  }
  out.freeze();
  return out;
}

/// The length of the walked path under the updated edge weights; fails the
/// test if the path crosses a failed edge.
graph::Dist path_length(const graph::WeightedGraph& g, const EdgeState& state,
                        const std::vector<Vertex>& path) {
  graph::Dist len = 0;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const EdgeKey key = key_of(path[i], path[i + 1]);
    graph::Dist w = graph::kDistInf;
    if (const auto it = state.find(key); it != state.end()) {
      w = it->second;
    } else {
      for (const auto& he : g.neighbors(path[i])) {
        if (he.to == path[i + 1]) {
          w = he.w;
          break;
        }
      }
    }
    EXPECT_NE(w, EdgeUpdate::kFail)
        << "served path crosses failed edge " << key.first << "-"
        << key.second;
    len = graph::dist_add(len, w);
  }
  return len;
}

// ---- overlay semantics --------------------------------------------------

TEST(DeltaSet, EmptyBatchBumpsSeqAndPatchesNothing) {
  const auto g = test_graph(60, 901);
  const auto fs = serve::FrozenScheme::freeze(build_scheme(g, 2, 7));
  serve::DeltaStats st;
  const auto ds = DeltaSet::apply(fs, nullptr, {}, &st);
  EXPECT_EQ(ds->seq(), 1u);
  EXPECT_EQ(st.applied, 0);
  EXPECT_EQ(ds->override_count(), 0);
  EXPECT_EQ(ds->masked_tree_count(), 0);
  graph::Dist w = 0;
  for (std::int64_t link = 0; link < 40; ++link) {
    EXPECT_EQ(ds->link_patch(link, w), serve::LinkPatch::kNone);
  }
  for (std::int32_t t = 0; t < fs.num_trees(); ++t) {
    EXPECT_FALSE(ds->tree_masked(t));
  }
}

TEST(DeltaSet, WeightOverridesChargeNewWeightsExactly) {
  const auto g = test_graph(100, 907);
  const auto fs = serve::FrozenScheme::freeze(build_scheme(g, 3, 11));

  // Double the weight of every 17th edge.
  const auto edges = all_edges(g);
  std::vector<EdgeUpdate> batch;
  for (std::size_t i = 0; i < edges.size(); i += 17) {
    batch.push_back(EdgeUpdate::weight(edges[i].first.first,
                                       edges[i].first.second,
                                       edges[i].second * 2));
  }
  EdgeState state;
  fold_batch(state, batch);

  serve::DeltaStats st;
  const auto ds = DeltaSet::apply(fs, nullptr, batch, &st);
  EXPECT_EQ(st.applied, static_cast<std::int64_t>(batch.size()));
  EXPECT_EQ(st.unknown_edges, 0);
  EXPECT_EQ(ds->override_count(),
            static_cast<std::int64_t>(2 * batch.size()));  // both directions
  EXPECT_EQ(ds->masked_tree_count(), 0);

  // No masking, so the walk takes the *same* frozen route and only the
  // charged lengths may differ — exactly by the overridden weights.
  for (const auto& q : random_queries(g.n(), 400, 911)) {
    std::vector<Vertex> path;
    const auto base = fs.route(q.u, q.v, &path);
    serve::OverlayTouch touch;
    std::vector<Vertex> opath;
    const auto over = fs.route_overlay(q.u, q.v, *ds, &touch, &opath);
    ASSERT_EQ(over.ok, base.ok);
    if (!base.ok) continue;
    EXPECT_EQ(opath, path);
    EXPECT_EQ(over.hops, base.hops);
    EXPECT_EQ(over.tree_root, base.tree_root);
    EXPECT_FALSE(touch.fell_back);
    const auto want = path_length(g, state, path);
    EXPECT_EQ(over.length, want) << q.u << "->" << q.v;
    bool crossed = false;
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      crossed = crossed || state.count(key_of(path[i], path[i + 1])) > 0;
    }
    EXPECT_EQ(touch.repaired, crossed) << q.u << "->" << q.v;
  }
}

TEST(DeltaSet, RestoringFrozenWeightsConvergesToEmpty) {
  const auto g = test_graph(80, 919);
  const auto fs = serve::FrozenScheme::freeze(build_scheme(g, 2, 13));
  const auto edges = all_edges(g);

  std::vector<EdgeUpdate> change, undo;
  for (std::size_t i = 0; i < edges.size(); i += 11) {
    change.push_back(EdgeUpdate::weight(
        edges[i].first.first, edges[i].first.second, edges[i].second + 5));
    undo.push_back(EdgeUpdate::weight(edges[i].first.first,
                                      edges[i].first.second,
                                      edges[i].second));
  }
  const auto ds1 = DeltaSet::apply(fs, nullptr, change);
  EXPECT_GT(ds1->override_count(), 0);
  const auto ds2 = DeltaSet::apply(fs, ds1.get(), undo);
  EXPECT_EQ(ds2->seq(), 2u);
  EXPECT_EQ(ds2->override_count(), 0)
      << "a journal that undoes itself must converge to an empty set";
  EXPECT_EQ(ds2->masked_tree_count(), 0);
}

TEST(DeltaSet, FailureMasksExactlyTheTreesCrossingTheLink) {
  const auto g = test_graph(110, 929);
  const auto fs = serve::FrozenScheme::freeze(build_scheme(g, 3, 17));
  const auto edges = all_edges(g);
  util::Rng rng(931);

  int masked_cases = 0;
  for (int trial = 0; trial < 24; ++trial) {
    const auto& [key, w] = edges[rng.uniform(edges.size())];
    const auto [a, b] = key;
    const std::vector<EdgeUpdate> fail_batch{EdgeUpdate::fail(a, b)};
    const auto ds = DeltaSet::apply(fs, nullptr, fail_batch);

    // Reference mask: tree T contains edge {a, b} iff some table slab
    // entry of a or b points back across it (parent_port at subtree
    // members, up_port at subtree roots).
    std::set<std::int32_t> expect_masked;
    const auto tables = fs.tables();
    const auto table_tree = fs.table_tree();
    const auto table_off = fs.table_off();
    for (const Vertex x : {a, b}) {
      const Vertex other = x == a ? b : a;
      const std::int32_t port = fs.find_port(x, other);
      ASSERT_GE(port, 0);
      for (std::int64_t i = table_off[static_cast<std::size_t>(x)];
           i < table_off[static_cast<std::size_t>(x) + 1]; ++i) {
        const auto& slot = tables[static_cast<std::size_t>(i)];
        if (slot.parent_port == port || slot.up_port == port) {
          expect_masked.insert(table_tree[static_cast<std::size_t>(i)]);
        }
      }
    }

    EXPECT_EQ(ds->masked_tree_count(),
              static_cast<std::int64_t>(expect_masked.size()));
    for (std::int32_t t = 0; t < fs.num_trees(); ++t) {
      EXPECT_EQ(ds->tree_masked(t), expect_masked.count(t) > 0)
          << "tree " << t << " vs failed edge " << a << "-" << b;
    }
    if (!expect_masked.empty()) ++masked_cases;
  }
  EXPECT_GT(masked_cases, 0) << "trials never hit a tree edge";
}

TEST(DeltaSet, ReviveByReweightUnmasks) {
  const auto g = test_graph(100, 937);
  const auto fs = serve::FrozenScheme::freeze(build_scheme(g, 2, 19));
  const auto edges = all_edges(g);
  util::Rng rng(941);

  // Find an edge whose failure masks at least one tree.
  for (int trial = 0; trial < 64; ++trial) {
    const auto& [key, w] = edges[rng.uniform(edges.size())];
    const auto [a, b] = key;
    const std::vector<EdgeUpdate> fail_batch{EdgeUpdate::fail(a, b)};
    const auto failed = DeltaSet::apply(fs, nullptr, fail_batch);
    if (failed->masked_tree_count() == 0) continue;

    const std::vector<EdgeUpdate> revive_batch{EdgeUpdate::weight(a, b, w + 3)};
    const auto revived = DeltaSet::apply(fs, failed.get(), revive_batch);
    EXPECT_EQ(revived->failed_link_count(), 0);
    EXPECT_EQ(revived->masked_tree_count(), 0)
        << "reviving the only failed edge must unmask every tree";
    EXPECT_GT(revived->override_count(), 0);  // the new weight stays

    const std::vector<EdgeUpdate> restore_batch{EdgeUpdate::weight(a, b, w)};
    const auto restored = DeltaSet::apply(fs, revived.get(), restore_batch);
    EXPECT_EQ(restored->override_count(), 0);
    return;
  }
  FAIL() << "no trial produced a masked tree";
}

TEST(DeltaSet, UnknownAndSelfLoopEdgesAreCountedAndSkipped) {
  const auto g = test_graph(60, 947);
  const auto fs = serve::FrozenScheme::freeze(build_scheme(g, 2, 23));
  // Find a non-edge.
  Vertex a = 0, b = 0;
  for (b = 1; b < g.n(); ++b) {
    if (fs.find_port(0, b) < 0) break;
  }
  ASSERT_LT(b, g.n());
  serve::DeltaStats st;
  const std::vector<EdgeUpdate> batch{EdgeUpdate::weight(a, b, 9),
                                      EdgeUpdate::fail(5, 5)};
  const auto ds = DeltaSet::apply(fs, nullptr, batch, &st);
  EXPECT_EQ(st.applied, 0);
  EXPECT_EQ(st.unknown_edges, 2);
  EXPECT_EQ(ds->override_count(), 0);
}

// ---- the stretch bound on the updated graph -----------------------------

TEST(DeltaSet, StretchBoundHoldsOnTheUpdatedGraph) {
  const auto g = test_graph(120, 953);
  const auto scheme = build_scheme(g, 3, 29);
  const auto fs = serve::FrozenScheme::freeze(scheme);
  const auto edges = all_edges(g);
  util::Rng rng(957);

  // Mixed batch: fail a few edges, scale a few weights by ≤ α = 2. A
  // single edge can sit in a *top-level* cluster tree, and masking one of
  // those costs every pair whose only covering tree it was — legal under
  // the mask-or-fallback policy, but it would turn this test into a
  // coverage test. Greedily keep failures whose cumulative mask stays
  // small so most pairs retain a surviving covering tree and the stretch
  // assertion below gets real fallback traffic to measure.
  std::vector<EdgeUpdate> batch;
  EdgeState state;
  const std::int64_t mask_budget = fs.num_trees() / 24;
  for (int i = 0; i < 64 && static_cast<int>(batch.size()) < 6; ++i) {
    const auto& [key, w] = edges[rng.uniform(edges.size())];
    auto trial = batch;
    trial.push_back(EdgeUpdate::fail(key.first, key.second));
    if (DeltaSet::apply(fs, nullptr, trial)->masked_tree_count() <=
        mask_budget) {
      batch = std::move(trial);
    }
  }
  EXPECT_GE(batch.size(), 3u);
  for (int i = 0; i < 12; ++i) {
    const auto& [key, w] = edges[rng.uniform(edges.size())];
    batch.push_back(EdgeUpdate::weight(key.first, key.second, w * 2));
  }
  fold_batch(state, batch);
  const auto ds = DeltaSet::apply(fs, nullptr, batch);
  EXPECT_GT(ds->masked_tree_count(), 0);

  const auto updated = updated_graph(g, state);
  // Weight scale α = 2: served length ≤ α · frozen-weight length of the
  // walked route ≤ α · bound · d_orig ≤ α² · bound · d_updated (every
  // updated weight is within a factor α of the frozen one, failures only
  // raise d_updated). DESIGN.md §13 spells the argument out.
  const double alpha = 2.0;
  const double bound = alpha * alpha * scheme.stretch_bound() + 1e-9;

  int routed = 0, skipped = 0;
  for (Vertex u = 0; u < g.n(); u += 5) {
    const auto sp = graph::dijkstra(updated, u);
    for (Vertex v = 2; v < g.n(); v += 7) {
      if (u == v) continue;
      serve::OverlayTouch touch;
      std::vector<Vertex> path;
      const auto d = fs.route_overlay(u, v, *ds, &touch, &path);
      if (!d.ok) {  // every surviving tree missed the pair — legal, rare
        ++skipped;
        continue;
      }
      const auto dist = sp.dist[static_cast<std::size_t>(v)];
      if (graph::is_inf(dist)) {  // failures disconnected the pair
        ++skipped;
        continue;
      }
      // The served route is a real path in the updated graph (never
      // crosses a failed link — path_length fails the test otherwise),
      // so it cannot beat the updated shortest path...
      const auto len = path_length(g, state, path);
      EXPECT_EQ(len, d.length);
      EXPECT_GE(len, dist) << u << "->" << v;
      // ...and it must respect the (α-adjusted) stretch bound.
      EXPECT_LE(static_cast<double>(len),
                bound * static_cast<double>(dist))
          << u << "->" << v << " masked-fallback=" << touch.fell_back;
      ++routed;
    }
  }
  EXPECT_GT(routed, 200);
  // Masking costs coverage by design (a pair whose every covering tree is
  // masked is unroutable until a repair); with the mask budget above the
  // majority of pairs must keep a surviving tree.
  EXPECT_LT(skipped, routed);
}

// ---- journal parsing ----------------------------------------------------

TEST(UpdateJournal, ParsesBatchesCommentsAndBlankLines) {
  const auto batches = serve::parse_update_journal(
      "# header comment\n"
      "w 3 9 12\n"
      "f 4 7\n"
      "commit\n"
      "\n"
      "w 1 2 5\n");
  ASSERT_EQ(batches.size(), 2u);
  ASSERT_EQ(batches[0].size(), 2u);
  EXPECT_EQ(batches[0][0].u, 3);
  EXPECT_EQ(batches[0][0].v, 9);
  EXPECT_EQ(batches[0][0].w, 12);
  EXPECT_FALSE(batches[0][0].is_fail());
  EXPECT_TRUE(batches[0][1].is_fail());
  ASSERT_EQ(batches[1].size(), 1u);  // trailing open batch
  EXPECT_EQ(batches[1][0].w, 5);
}

TEST(UpdateJournal, RejectsMalformedLinesWithLineNumbers) {
  try {
    serve::parse_update_journal("w 1 2 3\nbogus line\n");
    FAIL() << "malformed journal must throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("2"), std::string::npos)
        << "error should carry the 1-based line number: " << e.what();
  }
}

// ---- sharded submit with a delta attached -------------------------------

TEST(ShardedDelta, SubmitWithDeltaMatchesRouteOverlay) {
  const auto g = test_graph(110, 967);
  const auto fs = serve::FrozenScheme::freeze(build_scheme(g, 3, 31));
  const auto edges = all_edges(g);
  util::Rng rng(971);

  std::vector<EdgeUpdate> batch;
  for (int i = 0; i < 8; ++i) {
    const auto& [key, w] = edges[rng.uniform(edges.size())];
    batch.push_back(i % 2 == 0
                        ? EdgeUpdate::fail(key.first, key.second)
                        : EdgeUpdate::weight(key.first, key.second, w + 7));
  }
  const auto ds = DeltaSet::apply(fs, nullptr, batch);

  serve::ShardedOptions opt;
  opt.shards = 3;
  opt.cache_entries = 256;
  serve::ShardedRouteServer srv(fs, opt);

  const auto qs = random_queries(g.n(), 3000, 977);
  std::vector<Decision> got(qs.size());
  srv.submit(qs.data(), qs.size(), got.data(), ds).wait();

  std::int64_t want_masked = 0, want_repaired = 0;
  for (std::size_t i = 0; i < qs.size(); ++i) {
    serve::OverlayTouch touch;
    const auto want = fs.route_overlay(qs[i].u, qs[i].v, *ds, &touch);
    ASSERT_EQ(got[i].ok, want.ok) << qs[i].u << "->" << qs[i].v;
    EXPECT_EQ(got[i].length, want.length);
    EXPECT_EQ(got[i].hops, want.hops);
    EXPECT_EQ(got[i].tree_root, want.tree_root);
    EXPECT_EQ(got[i].tree_level, want.tree_level);
    EXPECT_EQ(got[i].via_trick, want.via_trick);
    want_masked += touch.fell_back ? 1 : 0;
    want_repaired += touch.repaired ? 1 : 0;
  }
  const auto totals = srv.totals();
  EXPECT_EQ(totals.masked, want_masked);
  EXPECT_EQ(totals.repaired, want_repaired);

  // Null delta on the same pool: identical to the unpatched image, and a
  // delta→null transition must not serve stale cache state.
  std::vector<Decision> plain(qs.size());
  srv.submit(qs.data(), qs.size(), plain.data(),
             std::shared_ptr<const DeltaSet>{})
      .wait();
  for (std::size_t i = 0; i < qs.size(); ++i) {
    const auto want = fs.route(qs[i].u, qs[i].v);
    ASSERT_EQ(plain[i].ok, want.ok);
    EXPECT_EQ(plain[i].length, want.length);
  }
}

// ---- update-while-serving wire stress -----------------------------------

TEST(WireUpdate, TenThousandUpdatesUnderFourPipelinedClients) {
  const auto g = test_graph(120, 983);
  const auto scheme = build_scheme(g, 3, 37);
  auto frozen = serve::FrozenScheme::freeze(scheme);
  const auto reference = serve::FrozenScheme::load(frozen.save());
  const auto edges = all_edges(g);

  net::NetServerOptions opt;
  opt.loops = 2;
  opt.shards = 2;
  opt.cache_entries = 256;
  net::Server server(std::move(frozen), opt);

  std::atomic<bool> stop{false};
  std::atomic<std::int64_t> answered{0};
  std::atomic<int> bad{0};

  // Four pipelined clients querying continuously across every update.
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      net::Client client("127.0.0.1", server.port());
      const auto qs =
          random_queries(reference.n(), 256, 991 + static_cast<unsigned>(c));
      while (!stop.load(std::memory_order_relaxed)) {
        constexpr int kDepth = 4;
        for (int f = 0; f < kDepth; ++f) {
          client.send_route(qs.data() + 64 * f, 64);
        }
        for (int f = 0; f < kDepth; ++f) {
          const auto part = client.recv_route();
          if (part.size() != 64) {
            bad.fetch_add(1);
            return;
          }
          for (const auto& d : part) {
            // Wrong-generation reads would show as zero/negative lengths
            // or torn decisions; ok answers must carry a real length.
            if (d.ok && d.length <= 0) bad.fetch_add(1);
          }
          answered.fetch_add(static_cast<std::int64_t>(part.size()));
        }
      }
    });
  }

  // The updater: ≥ 10k journaled events in 128 kUpdate batches — fail /
  // reweight / revive cycling over the edge pool, every batch published
  // as a generation while the clients above keep streaming.
  util::Rng rng(997);
  net::Client admin("127.0.0.1", server.port());
  EdgeState state;
  std::shared_ptr<const DeltaSet> mirror;
  std::uint64_t last_seq = 0;
  constexpr int kBatches = 128;
  constexpr int kPerBatch = 80;  // 128 * 80 = 10240 events
  for (int bidx = 0; bidx < kBatches; ++bidx) {
    std::vector<EdgeUpdate> batch;
    batch.reserve(kPerBatch);
    for (int i = 0; i < kPerBatch; ++i) {
      const auto& [key, w] = edges[rng.uniform(edges.size())];
      switch (rng.uniform(3)) {
        case 0:
          batch.push_back(EdgeUpdate::fail(key.first, key.second));
          break;
        case 1:
          batch.push_back(
              EdgeUpdate::weight(key.first, key.second, w * 2));
          break;
        default:  // revive / restore
          batch.push_back(EdgeUpdate::weight(key.first, key.second, w));
          break;
      }
    }
    const auto ack = admin.update(batch);
    EXPECT_GT(ack.seq, last_seq);
    last_seq = ack.seq;
    fold_batch(state, batch);
    mirror = DeltaSet::apply(reference, mirror.get(), batch);
    EXPECT_EQ(ack.overrides, mirror->override_count());
    EXPECT_EQ(ack.failed_links, mirror->failed_link_count());
    EXPECT_EQ(ack.masked_trees, mirror->masked_tree_count());
  }

  // Final batch: revive every still-failed edge at double weight, so the
  // head generation keeps plenty of overrides but masks nothing — the
  // verification sweep below then measures full coverage instead of the
  // (legal) unroutable pairs a masked top-level tree leaves behind.
  {
    std::vector<EdgeUpdate> revive;
    for (const auto& [key, w] : all_edges(g)) {
      const auto it = state.find(key);
      if (it != state.end() && it->second == EdgeUpdate::kFail) {
        revive.push_back(EdgeUpdate::weight(key.first, key.second, w * 2));
      }
    }
    if (!revive.empty()) {
      const auto ack = admin.update(revive);
      EXPECT_EQ(ack.masked_trees, 0);
      fold_batch(state, revive);
      mirror = DeltaSet::apply(reference, mirror.get(), revive);
    }
    EXPECT_EQ(mirror->masked_tree_count(), 0);
  }

  // Let the clients observe the final generation for a moment, then stop.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  stop.store(true);
  for (auto& t : clients) t.join();
  EXPECT_EQ(bad.load(), 0);
  EXPECT_GT(answered.load(), 4 * 1024);

  // Fresh connection: answers now come from the journal's head
  // generation, bit-identical to the local mirror, and within the
  // α-adjusted stretch bound on the updated graph.
  const auto updated = updated_graph(g, state);
  const double bound = 4.0 * scheme.stretch_bound() + 1e-9;  // α = 2
  net::Client verify("127.0.0.1", server.port());
  const auto vqs = random_queries(reference.n(), 512, 1009);
  const auto wire = verify.route(vqs);
  int checked = 0;
  for (std::size_t i = 0; i < vqs.size(); ++i) {
    serve::OverlayTouch touch;
    std::vector<Vertex> path;
    const auto want =
        reference.route_overlay(vqs[i].u, vqs[i].v, *mirror, &touch, &path);
    ASSERT_EQ(wire[i].ok, want.ok);
    if (!want.ok) continue;
    EXPECT_EQ(wire[i].length, want.length);
    EXPECT_EQ(wire[i].hops, want.hops);
    EXPECT_EQ(wire[i].tree_root, want.tree_root);
    const auto dist =
        graph::pair_distance(updated, vqs[i].u, vqs[i].v);
    if (graph::is_inf(dist)) continue;
    EXPECT_EQ(path_length(g, state, path), want.length);
    EXPECT_LE(static_cast<double>(want.length),
              bound * static_cast<double>(dist));
    ++checked;
  }
  EXPECT_GT(checked, 300);

  const auto stats = server.stats();
  EXPECT_GE(stats.updates, kBatches);
  EXPECT_GE(stats.masked, 0);
  EXPECT_GE(stats.repaired, 0);
}

}  // namespace
}  // namespace nors
