#include <gtest/gtest.h>

#include "congest/ledger.h"
#include "congest/network.h"
#include "graph/generators.h"
#include "graph/properties.h"
#include "primitives/bfs_tree.h"
#include "primitives/pipelined.h"

namespace nors {
namespace {

using congest::Message;
using congest::MessageView;
using graph::Vertex;

TEST(Message, WordBudgetEnforced) {
  EXPECT_NO_THROW(Message::make(1, {1, 2, 3, 4}));
  EXPECT_THROW(Message::make(1, {1, 2, 3, 4, 5}), std::logic_error);
}

/// A program where vertex 0 sends `burst` messages to vertex 1 in round 1;
/// with edge capacity 1 they must be delivered over `burst` rounds.
class BurstProgram : public congest::NodeProgram {
 public:
  explicit BurstProgram(int burst) : burst_(burst) {}
  void begin(congest::Network& net) override { net.wake(0); }
  void on_round(Vertex v, MessageView inbox,
                congest::Sender& out) override {
    if (v == 0 && !sent_) {
      sent_ = true;
      for (int i = 0; i < burst_; ++i) {
        out.send(0, Message::make(0, {i}));
      }
    }
    if (v == 1) {
      for (const auto& m : inbox) arrivals_.push_back(m.w[0]);
      per_round_.push_back(static_cast<int>(inbox.size()));
    }
  }
  int burst_;
  bool sent_ = false;
  std::vector<std::int64_t> arrivals_;
  std::vector<int> per_round_;
};

TEST(Network, CapacityQueuesBursts) {
  graph::WeightedGraph g(2);
  g.add_edge(0, 1, 1);
  g.freeze();
  BurstProgram prog(5);
  congest::Network net(g, {.edge_capacity = 1});
  const auto stats = net.run(prog);
  ASSERT_EQ(prog.arrivals_.size(), 5u);
  // FIFO order and one delivery per round.
  for (int i = 0; i < 5; ++i) EXPECT_EQ(prog.arrivals_[i], i);
  for (int c : prog.per_round_) EXPECT_EQ(c, 1);
  EXPECT_GE(stats.rounds, 5);
  EXPECT_EQ(stats.messages_delivered, 5);
  EXPECT_GE(stats.max_link_backlog, 4);
}

TEST(Network, HigherCapacityDrainsFaster) {
  graph::WeightedGraph g(2);
  g.add_edge(0, 1, 1);
  g.freeze();
  BurstProgram prog(6);
  congest::Network net(g, {.edge_capacity = 3});
  net.run(prog);
  ASSERT_EQ(prog.arrivals_.size(), 6u);
  EXPECT_EQ(prog.per_round_[0], 3);
  EXPECT_EQ(prog.per_round_[1], 3);
}

TEST(Network, MaxRoundsGuards) {
  graph::WeightedGraph g(2);
  g.add_edge(0, 1, 1);
  g.freeze();

  /// Ping-pong forever.
  class Forever : public congest::NodeProgram {
   public:
    void begin(congest::Network& net) override { net.wake(0); }
    void on_round(Vertex, MessageView,
                  congest::Sender& out) override {
      out.send(0, Message::make(0, {1}));
    }
  } prog;
  congest::Network net(g, {.edge_capacity = 1, .max_rounds = 50});
  EXPECT_THROW(net.run(prog), std::logic_error);
}

TEST(BfsTree, MatchesCentralizedDepths) {
  util::Rng rng(21);
  const auto g = graph::connected_gnm(150, 300, graph::WeightSpec::uniform(1, 9), rng);
  const auto d = primitives::distributed_bfs_tree(g, 0);
  const auto c = primitives::centralized_bfs_tree(g, 0);
  ASSERT_EQ(d.depth.size(), c.depth.size());
  for (std::size_t v = 0; v < d.depth.size(); ++v) {
    EXPECT_EQ(d.depth[v], c.depth[v]) << "v=" << v;
  }
  EXPECT_EQ(d.height, c.height);
  // Construction takes Θ(height) rounds.
  EXPECT_LE(d.construction_rounds, 3 * d.height + 5);
}

TEST(BfsTree, RoundsScaleWithDiameterNotSize) {
  util::Rng rng(22);
  const auto small_diam = graph::connected_gnm(300, 1500, graph::WeightSpec::unit(), rng);
  const auto big_diam = graph::path(300, graph::WeightSpec::unit(), rng);
  const auto a = primitives::distributed_bfs_tree(small_diam, 0);
  const auto b = primitives::distributed_bfs_tree(big_diam, 0);
  EXPECT_LT(a.construction_rounds, 30);
  EXPECT_GT(b.construction_rounds, 250);
}

TEST(Pipelined, FormulaBoundsSimulatedRuns) {
  util::Rng rng(23);
  for (int trial = 0; trial < 3; ++trial) {
    const auto g = graph::connected_gnm(60 + 30 * trial, 150,
                                        graph::WeightSpec::unit(), rng);
    const auto tree = primitives::centralized_bfs_tree(g, 0);
    std::vector<int> tokens(static_cast<std::size_t>(g.n()), 0);
    int total = 0;
    for (Vertex v = 0; v < g.n(); v += 7) {
      tokens[static_cast<std::size_t>(v)] = 1 + (v % 3);
      total += tokens[static_cast<std::size_t>(v)];
    }
    const auto rounds = primitives::simulate_pipelined_broadcast(g, tree, tokens);
    const auto bound = primitives::pipelined_broadcast_rounds(total, tree.height);
    // Lemma 1: O(M + D). The formula is the documented charge; the real run
    // must stay within it (+slack for the initial wake round).
    EXPECT_LE(rounds, bound + 2) << "n=" << g.n() << " M=" << total;
    // And the broadcast cannot beat the information-theoretic floor.
    EXPECT_GE(rounds, std::max<std::int64_t>(total, tree.height));
  }
}

TEST(Pipelined, ZeroMessagesCostsNothing) {
  EXPECT_EQ(primitives::pipelined_broadcast_rounds(0, 10), 0);
}

/// Echo program: vertex 1 reports the arrival port and sender of whatever
/// it receives, so we can pin the simulator's delivery metadata.
class EchoProgram : public congest::NodeProgram {
 public:
  void begin(congest::Network& net) override { net.wake(0); }
  void on_round(Vertex v, MessageView inbox,
                congest::Sender& out) override {
    if (v == 0 && !sent_) {
      sent_ = true;
      out.send(0, Message::make(7, {123}));
    }
    if (v == 1) {
      for (const auto& m : inbox) {
        from_ = m.from;
        arrival_port_ = m.arrival_port;
        tag_ = m.tag;
        payload_ = m.w[0];
      }
    }
  }
  bool sent_ = false;
  Vertex from_ = graph::kNoVertex;
  std::int32_t arrival_port_ = graph::kNoPort;
  std::uint16_t tag_ = 0;
  std::int64_t payload_ = 0;
};

TEST(Network, DeliveryMetadataIsAccurate) {
  // Triangle so vertex 1 has two ports; the message from 0 must arrive on
  // the port whose reverse leads back to 0.
  graph::WeightedGraph g(3);
  g.add_edge(1, 2, 1);  // port 0 of 1 -> 2
  g.add_edge(0, 1, 1);  // port 1 of 1 -> 0
  g.add_edge(0, 2, 1);
  g.freeze();
  EchoProgram prog;
  congest::Network net(g, {});
  net.run(prog);
  EXPECT_EQ(prog.from_, 0);
  EXPECT_EQ(prog.tag_, 7);
  EXPECT_EQ(prog.payload_, 123);
  ASSERT_NE(prog.arrival_port_, graph::kNoPort);
  EXPECT_EQ(g.edge(1, prog.arrival_port_).to, 0);
}

TEST(Network, ReusableAcrossRuns) {
  // The same Network object must produce identical statistics for repeated
  // runs of equivalent programs (state fully reset).
  graph::WeightedGraph g(2);
  g.add_edge(0, 1, 1);
  g.freeze();
  congest::Network net(g, {});
  BurstProgram p1(4), p2(4);
  const auto s1 = net.run(p1);
  const auto s2 = net.run(p2);
  EXPECT_EQ(s1.rounds, s2.rounds);
  EXPECT_EQ(s1.messages_sent, s2.messages_sent);
}

TEST(Network, MaxRoundsBoundaryIsExact) {
  graph::WeightedGraph g(2);
  g.add_edge(0, 1, 1);
  g.freeze();
  // A 5-message burst quiesces in exactly 6 rounds (1 send + 5 deliveries):
  // a cap of 6 must pass untouched, a cap of 5 must trip the guard.
  {
    BurstProgram prog(5);
    congest::Network net(g, {.edge_capacity = 1, .max_rounds = 6});
    EXPECT_EQ(net.run(prog).rounds, 6);
  }
  {
    BurstProgram prog(5);
    congest::Network net(g, {.edge_capacity = 1, .max_rounds = 5});
    EXPECT_THROW(net.run(prog), std::logic_error);
  }
}

TEST(Network, MaxLinkBacklogCountsQueuedPeak) {
  graph::WeightedGraph g(2);
  g.add_edge(0, 1, 1);
  g.freeze();
  BurstProgram prog(7);
  congest::Network net(g, {.edge_capacity = 1});
  const auto stats = net.run(prog);
  // All 7 staged in one round on one directed link; nothing delivered yet
  // when the round closes, so the observed peak is the full burst.
  EXPECT_EQ(stats.max_link_backlog, 7);
  EXPECT_EQ(stats.messages_sent, 7);
  EXPECT_EQ(stats.messages_delivered, 7);
}

TEST(Network, EdgeCapacityAboveOneDrainsInBatches) {
  graph::WeightedGraph g(2);
  g.add_edge(0, 1, 1);
  g.freeze();
  BurstProgram prog(7);
  congest::Network net(g, {.edge_capacity = 3});
  const auto stats = net.run(prog);
  ASSERT_EQ(prog.per_round_.size(), 3u);
  EXPECT_EQ(prog.per_round_[0], 3);
  EXPECT_EQ(prog.per_round_[1], 3);
  EXPECT_EQ(prog.per_round_[2], 1);
  // FIFO survives batched delivery.
  for (int i = 0; i < 7; ++i) EXPECT_EQ(prog.arrivals_[i], i);
  // Round 1: send burst. Rounds 2-4: drain. Quiesce.
  EXPECT_EQ(stats.rounds, 4);
  EXPECT_EQ(stats.messages_delivered, 7);
}

/// Counts the inbox sizes a woken vertex observes, re-waking itself a fixed
/// number of times without ever sending: pins wake-without-inbox semantics.
class WakeOnlyProgram : public congest::NodeProgram {
 public:
  explicit WakeOnlyProgram(int rewakes) : rewakes_(rewakes) {}
  void begin(congest::Network& net) override { net.wake(1); }
  void on_round(Vertex v, MessageView inbox, congest::Sender& out) override {
    if (v != 1) return;
    inbox_sizes_.push_back(static_cast<int>(inbox.size()));
    if (static_cast<int>(inbox_sizes_.size()) <= rewakes_) out.wake_self();
  }
  int rewakes_;
  std::vector<int> inbox_sizes_;
};

TEST(Network, WakeWithoutInboxRunsWithEmptyInbox) {
  graph::WeightedGraph g(3);
  g.add_edge(0, 1, 1);
  g.add_edge(1, 2, 1);
  g.freeze();
  WakeOnlyProgram prog(3);
  congest::Network net(g, {});
  const auto stats = net.run(prog);
  // Initial wake + 3 re-wakes, one round each, always an empty inbox.
  ASSERT_EQ(prog.inbox_sizes_.size(), 4u);
  for (int sz : prog.inbox_sizes_) EXPECT_EQ(sz, 0);
  EXPECT_EQ(stats.rounds, 4);
  EXPECT_EQ(stats.messages_sent, 0);
  EXPECT_EQ(stats.messages_delivered, 0);
  EXPECT_EQ(stats.max_link_backlog, 0);
}

TEST(Network, ThreadedRunMatchesSerial) {
  util::Rng rng(33);
  const auto g =
      graph::connected_gnm(400, 1200, graph::WeightSpec::uniform(1, 9), rng);
  const auto serial_tree = primitives::distributed_bfs_tree(g, 0);

  class BfsLike : public congest::NodeProgram {
   public:
    explicit BfsLike(int n) : depth_(static_cast<std::size_t>(n), -1) {}
    void begin(congest::Network& net) override {
      depth_[0] = 0;
      net.wake(0);
    }
    void on_round(Vertex v, MessageView inbox, congest::Sender& out) override {
      auto& d = depth_[static_cast<std::size_t>(v)];
      if (d == -1) {
        for (const auto& m : inbox) {
          if (d == -1 || m.w[0] + 1 < d) d = static_cast<int>(m.w[0]) + 1;
        }
        if (d != -1) out.send_all(Message::make(0, {d}));
      } else if (v == 0 && !sent_) {
        sent_ = true;
        out.send_all(Message::make(0, {0}));
      }
    }
    std::vector<int> depth_;
    bool sent_ = false;
  };

  BfsLike s1(g.n()), s4(g.n());
  congest::Network n1(g, {.edge_capacity = 1, .max_rounds = 50'000'000,
                          .threads = 1});
  congest::Network n4(g, {.edge_capacity = 1, .max_rounds = 50'000'000,
                          .threads = 4});
  const auto stats1 = n1.run(s1);
  const auto stats4 = n4.run(s4);
  EXPECT_EQ(stats1.rounds, stats4.rounds);
  EXPECT_EQ(stats1.messages_sent, stats4.messages_sent);
  EXPECT_EQ(stats1.messages_delivered, stats4.messages_delivered);
  EXPECT_EQ(stats1.max_link_backlog, stats4.max_link_backlog);
  EXPECT_EQ(s1.depth_, s4.depth_);
  // And both agree with the engine-independent BFS depths.
  for (std::size_t v = 0; v < s1.depth_.size(); ++v) {
    EXPECT_EQ(s1.depth_[v], serial_tree.depth[v]) << "v=" << v;
  }
}

TEST(Ledger, MergeAndTotals) {
  congest::RoundLedger a, b;
  a.add("x", congest::CostKind::kSimulated, 10, 5);
  b.add("y", congest::CostKind::kAccounted, 20, 7, "note");
  a.merge(b);
  EXPECT_EQ(a.total_rounds(), 30);
  EXPECT_EQ(a.simulated_rounds(), 10);
  EXPECT_EQ(a.accounted_rounds(), 20);
  EXPECT_EQ(a.entries().size(), 2u);
  EXPECT_THROW(a.add("neg", congest::CostKind::kSimulated, -1),
               std::logic_error);
}

}  // namespace
}  // namespace nors
