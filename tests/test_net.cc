// End-to-end tests of the network serving layer (src/net, DESIGN.md §11):
// wire answers must be bit-identical to in-process FrozenScheme::route()
// across scheme families, pipelined concurrent clients must account
// exactly, abrupt disconnects and backpressure must be harmless, and
// drain/reload must never drop or tear an in-flight response.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "core/scheme.h"
#include "graph/generators.h"
#include "net/client.h"
#include "net/server.h"
#include "serve/delta.h"
#include "serve/frozen.h"
#include "util/random.h"

namespace nors {
namespace {

using serve::Decision;
using serve::Query;

graph::WeightedGraph family_graph(int family, std::uint64_t seed) {
  util::Rng rng(seed);
  switch (family) {
    case 0:
      return graph::connected_gnm(140, 400, graph::WeightSpec::uniform(1, 24),
                                  rng);
    case 1:
      return graph::torus(10, 12, graph::WeightSpec::uniform(1, 9), rng);
    default:
      return graph::clustered(130, 5, 0.35, 40,
                              graph::WeightSpec::uniform(1, 12), rng);
  }
}

serve::FrozenScheme build_frozen(const graph::WeightedGraph& g, int k,
                                 std::uint64_t seed) {
  core::SchemeParams p;
  p.k = k;
  p.seed = seed;
  return serve::FrozenScheme::freeze(core::RoutingScheme::build(g, p));
}

std::vector<Query> random_queries(int n, std::size_t count,
                                  std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<Query> qs;
  qs.reserve(count);
  while (qs.size() < count) {
    const auto u = static_cast<graph::Vertex>(
        rng.uniform(static_cast<std::uint64_t>(n)));
    const auto v = static_cast<graph::Vertex>(
        rng.uniform(static_cast<std::uint64_t>(n)));
    qs.push_back({u, v});
  }
  return qs;
}

void expect_identical(const Decision& wire, const Decision& local,
                      const Query& q) {
  ASSERT_EQ(wire.ok, local.ok) << q.u << "->" << q.v;
  ASSERT_EQ(wire.via_trick, local.via_trick) << q.u << "->" << q.v;
  ASSERT_EQ(wire.hops, local.hops) << q.u << "->" << q.v;
  ASSERT_EQ(wire.tree_level, local.tree_level) << q.u << "->" << q.v;
  ASSERT_EQ(wire.tree_root, local.tree_root) << q.u << "->" << q.v;
  ASSERT_EQ(wire.length, local.length) << q.u << "->" << q.v;
}

// ---- loopback equivalence: every family × k, every Decision field ------

TEST(NetEquivalence, WireMatchesInProcessRouteAcrossFamiliesAndK) {
  for (int family = 0; family < 3; ++family) {
    for (int k = 2; k <= 4; ++k) {
      const auto g = family_graph(family, 100 + static_cast<unsigned>(k));
      auto frozen = build_frozen(g, k, 7);
      // Serving consumes the image; answers are checked against an
      // independent reload of the same bytes.
      const auto reference = serve::FrozenScheme::load(frozen.save());

      net::NetServerOptions opt;
      opt.shards = 2;
      net::Server server(std::move(frozen), opt);
      net::Client client("127.0.0.1", server.port());

      const auto info = client.hello();
      ASSERT_EQ(info.n, reference.n());
      ASSERT_EQ(info.k, reference.k());
      ASSERT_EQ(info.num_trees, reference.num_trees());
      ASSERT_EQ(info.image_version, reference.format_version());

      const auto qs =
          random_queries(reference.n(), 250, 900 + static_cast<unsigned>(k));
      const auto wire = client.route(qs);
      ASSERT_EQ(wire.size(), qs.size());
      for (std::size_t i = 0; i < qs.size(); ++i) {
        const auto local = reference.route(qs[i].u, qs[i].v);
        expect_identical(wire[i], local, qs[i]);
      }

      // Labels travel bit-for-bit too.
      for (graph::Vertex v = 0; v < reference.n();
           v += std::max(1, reference.n() / 17)) {
        const auto blob = reference.label_blob(v);
        const auto wire_label = client.label(v);
        ASSERT_EQ(wire_label,
                  std::vector<std::uint8_t>(blob.begin(), blob.end()));
      }
    }
  }
}

// ---- pipelined concurrent clients with exact accounting ----------------

TEST(NetConcurrency, EightPipelinedClientsAccountExactly) {
  const auto g = family_graph(0, 21);
  auto frozen = build_frozen(g, 3, 9);
  const auto reference = serve::FrozenScheme::load(frozen.save());
  const int n = reference.n();

  net::NetServerOptions opt;
  opt.loops = 2;
  opt.shards = 2;
  net::Server server(std::move(frozen), opt);

  constexpr int kClients = 8;
  constexpr std::size_t kFrames = 20;
  constexpr std::size_t kPerFrame = 50;
  std::atomic<int> failures{0};

  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      try {
        net::Client client("127.0.0.1", server.port());
        const auto qs = random_queries(
            n, kFrames * kPerFrame, 1000 + static_cast<unsigned>(c));
        // Fully pipelined: all frames on the wire before the first recv.
        for (std::size_t f = 0; f < kFrames; ++f) {
          client.send_route(qs.data() + f * kPerFrame, kPerFrame);
        }
        for (std::size_t f = 0; f < kFrames; ++f) {
          const auto part = client.recv_route();
          if (part.size() != kPerFrame) {
            ++failures;
            return;
          }
          // In-order delivery means frame f answers queries
          // [f*kPerFrame, (f+1)*kPerFrame) — check a sample.
          const auto& q = qs[f * kPerFrame];
          const auto local = reference.route(q.u, q.v);
          if (part[0].length != local.length || part[0].ok != local.ok) {
            ++failures;
            return;
          }
        }
      } catch (...) {
        ++failures;
      }
    });
  }
  for (auto& t : clients) t.join();
  ASSERT_EQ(failures.load(), 0);

  const auto stats = server.stats();
  EXPECT_EQ(stats.queries,
            static_cast<std::int64_t>(kClients * kFrames * kPerFrame));
  EXPECT_EQ(stats.frames_in,
            static_cast<std::int64_t>(kClients * kFrames));
  EXPECT_EQ(stats.frames_out,
            static_cast<std::int64_t>(kClients * kFrames));
  EXPECT_EQ(stats.conns_accepted, kClients);
  EXPECT_EQ(stats.protocol_errors, 0);
}

// ---- abrupt disconnect mid-batch ---------------------------------------

TEST(NetRobustness, AbruptDisconnectMidBatchIsHarmless) {
  const auto g = family_graph(2, 33);
  auto frozen = build_frozen(g, 2, 11);
  const auto reference = serve::FrozenScheme::load(frozen.save());
  const int n = reference.n();

  net::Server server(std::move(frozen), {});
  const auto qs = random_queries(n, 64, 5);

  for (int round = 0; round < 20; ++round) {
    net::Client client("127.0.0.1", server.port());
    // Several batches in flight, then vanish without reading a byte.
    for (int f = 0; f < 4; ++f) client.send_route(qs.data(), qs.size());
    client.close();
  }

  // The server must still answer correctly on a fresh connection.
  net::Client client("127.0.0.1", server.port());
  const auto wire = client.route(qs);
  ASSERT_EQ(wire.size(), qs.size());
  for (std::size_t i = 0; i < qs.size(); ++i) {
    expect_identical(wire[i], reference.route(qs[i].u, qs[i].v), qs[i]);
  }
}

// ---- backpressure window enforcement -----------------------------------

TEST(NetBackpressure, InflightNeverExceedsWindow) {
  const auto g = family_graph(0, 41);
  auto frozen = build_frozen(g, 2, 13);
  const int n = frozen.n();

  net::NetServerOptions opt;
  opt.window = 4;
  net::Server server(std::move(frozen), opt);

  net::Client client("127.0.0.1", server.port());
  ASSERT_EQ(client.hello().window, 4u);

  const auto qs = random_queries(n, 128, 6);
  constexpr std::size_t kFrames = 32;
  // Blast far past the window without reading anything back: the server
  // must throttle its own reads rather than queue unboundedly.
  for (std::size_t f = 0; f < kFrames; ++f) {
    client.send_route(qs.data(), qs.size());
  }
  std::size_t got = 0;
  for (std::size_t f = 0; f < kFrames; ++f) got += client.recv_route().size();
  EXPECT_EQ(got, kFrames * qs.size());

  const auto stats = server.stats();
  EXPECT_GE(stats.max_inflight, 1);
  EXPECT_LE(stats.max_inflight, 4)
      << "per-connection window must bound pipelined frames";
}

// ---- graceful drain never drops a parsed frame -------------------------

TEST(NetDrain, DrainAnswersEveryParsedFrameThenCloses) {
  const auto g = family_graph(1, 55);
  auto frozen = build_frozen(g, 3, 17);
  const auto reference = serve::FrozenScheme::load(frozen.save());
  const int n = reference.n();

  net::NetServerOptions opt;
  opt.window = 64;
  net::Server server(std::move(frozen), opt);
  net::Client client("127.0.0.1", server.port());

  constexpr std::size_t kFrames = 12;
  const auto qs = random_queries(n, 48, 23);
  for (std::size_t f = 0; f < kFrames; ++f) {
    client.send_route(qs.data(), qs.size());
  }
  // Wait until the server has parsed (dispatched) every frame, so they
  // are all genuinely in flight when the drain starts.
  for (int spin = 0;
       server.stats().frames_in < static_cast<std::int64_t>(kFrames) &&
       spin < 10000;
       ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(server.stats().frames_in, static_cast<std::int64_t>(kFrames));

  server.drain();

  // Every in-flight frame was answered — correctly — then the socket
  // closed cleanly.
  for (std::size_t f = 0; f < kFrames; ++f) {
    const auto part = client.recv_route();
    ASSERT_EQ(part.size(), qs.size());
    for (std::size_t i = 0; i < qs.size(); ++i) {
      expect_identical(part[i], reference.route(qs[i].u, qs[i].v), qs[i]);
    }
  }
  net::Frame leftover;
  EXPECT_FALSE(client.recv_frame_or_eof(leftover))
      << "drained server must close after the last response";
}

// ---- drain deadline: a wedged peer cannot hold shutdown hostage --------

TEST(NetDrain, DrainForcedCloseAfterDeadlineExpires) {
  const auto g = family_graph(0, 77);
  auto frozen = build_frozen(g, 2, 23);
  const int n = frozen.n();

  net::NetServerOptions opt;
  opt.drain_timeout_ms = 250;
  // Small kernel buffers so a non-reading peer wedges the flush with a
  // few frames instead of hiding behind autotuned TCP buffering.
  opt.sndbuf_bytes = 8192;
  net::Server server(std::move(frozen), opt);

  // An adversarial peer: a tiny receive window, plenty of pipelined
  // work, and it never reads a byte of the responses.
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  ASSERT_GE(fd, 0);
  int rcvbuf = 4096;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(server.port()));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  const auto qs = random_queries(n, 4096, 31);
  std::vector<std::uint8_t> body, frame;
  net::encode_route_request(body, qs.data(), qs.size());
  net::append_frame(frame, net::FrameType::kRoute, 1, body);
  for (int f = 0; f < 8; ++f) {
    std::size_t off = 0;
    while (off < frame.size()) {
      const auto wr = ::send(fd, frame.data() + off, frame.size() - off,
                             MSG_NOSIGNAL);
      if (wr <= 0) break;
      off += static_cast<std::size_t>(wr);
    }
  }
  // Let the responses wedge against the full socket buffers.
  for (int spin = 0; server.stats().frames_in < 8 && spin < 10000; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  // drain() must terminate via the forced-close branch — at the deadline,
  // not at the peer's leisure, and not hang.
  const auto t0 = std::chrono::steady_clock::now();
  server.drain();
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  EXPECT_GE(ms, 200) << "deadline branch should be what ends this drain";
  EXPECT_LT(ms, 5000) << "drain must not outlive its deadline by much";
  ::close(fd);
}

// ---- live reload: responses are never dropped or torn ------------------

TEST(NetReload, SwapNeverTearsAResponse) {
  const auto g_a = family_graph(0, 61);
  const auto g_b = family_graph(0, 62);  // same n, different edges/weights
  auto frozen_a = build_frozen(g_a, 3, 19);
  auto frozen_b = build_frozen(g_b, 3, 19);
  const auto ref_a = serve::FrozenScheme::load(frozen_a.save());
  const auto ref_b = serve::FrozenScheme::load(frozen_b.save());
  ASSERT_EQ(ref_a.n(), ref_b.n());
  const int n = ref_a.n();

  // A fixed query batch whose answers differ between the images, so a
  // torn (mixed-generation) response cannot masquerade as either.
  const auto qs = random_queries(n, 64, 29);
  std::vector<Decision> exp_a, exp_b;
  int differing = 0;
  for (const auto& q : qs) {
    exp_a.push_back(ref_a.route(q.u, q.v));
    exp_b.push_back(ref_b.route(q.u, q.v));
    differing += exp_a.back().length != exp_b.back().length ? 1 : 0;
  }
  ASSERT_GT(differing, 0) << "test needs distinguishable images";

  net::Server server(std::move(frozen_a), {});

  const auto matches = [&qs](const std::vector<Decision>& got,
                             const std::vector<Decision>& want) {
    for (std::size_t i = 0; i < qs.size(); ++i) {
      if (got[i].ok != want[i].ok || got[i].length != want[i].length ||
          got[i].hops != want[i].hops ||
          got[i].tree_root != want[i].tree_root ||
          got[i].tree_level != want[i].tree_level ||
          got[i].via_trick != want[i].via_trick) {
        return false;
      }
    }
    return true;
  };

  std::atomic<bool> stop{false};
  std::atomic<int> torn{0};
  std::atomic<int> matched_b{0};
  std::thread traffic([&] {
    net::Client client("127.0.0.1", server.port());
    while (!stop.load(std::memory_order_acquire)) {
      // A little pipeline so frames straddle the swap.
      client.send_route(qs.data(), qs.size());
      client.send_route(qs.data(), qs.size());
      for (int f = 0; f < 2; ++f) {
        const auto got = client.recv_route();
        if (matches(got, exp_a)) continue;
        if (matches(got, exp_b)) {
          matched_b.fetch_add(1, std::memory_order_relaxed);
        } else {
          torn.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
  });

  // Swap images under live traffic, ending on B.
  for (int swap = 0; swap < 5; ++swap) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    if (swap % 2 == 0) {
      server.reload(serve::FrozenScheme::load(frozen_b.save()));
    } else {
      server.reload(serve::FrozenScheme::load(ref_a.save()));
    }
  }
  // Keep traffic flowing until at least one post-reload frame answered
  // from the new image proves the swap took effect.
  for (int spin = 0; matched_b.load() == 0 && spin < 10000; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  stop.store(true, std::memory_order_release);
  traffic.join();

  EXPECT_EQ(torn.load(), 0)
      << "every response must match exactly one image generation";
  EXPECT_GT(matched_b.load(), 0) << "reload must actually take effect";
  EXPECT_EQ(server.stats().reloads, 5);
}

// ---- delta generations under load (DESIGN.md §13) -----------------------

// Update batches and a SIGHUP-style reload swap generations under
// sustained pipelined traffic; every response must be bit-identical to
// *one* generation's answers — never a mix. The TSan CI leg runs this
// file, so a torn read of the generation pointer or the delta set would
// also surface as a race report.
TEST(NetUpdate, UpdateAndReloadSwapsAreAtomicUnderPipelinedLoad) {
  const auto g = family_graph(0, 71);
  auto frozen = build_frozen(g, 3, 23);
  const auto reference = serve::FrozenScheme::load(frozen.save());
  const int n = reference.n();

  // Deterministic update batches over real edges: weight doubles, a
  // failure, and its revival.
  std::vector<std::pair<graph::Vertex, graph::Vertex>> edge_pool;
  for (graph::Vertex u = 0; u < g.n() && edge_pool.size() < 64; ++u) {
    for (const auto& he : g.neighbors(u)) {
      if (he.to > u) edge_pool.push_back({u, he.to});
    }
  }
  const auto weight_of = [&](std::size_t i) {
    const auto [a, b] = edge_pool[i];
    for (const auto& he : g.neighbors(a)) {
      if (he.to == b) return he.w;
    }
    return graph::Weight{0};
  };
  std::vector<std::vector<serve::EdgeUpdate>> batches;
  for (int bidx = 0; bidx < 6; ++bidx) {
    std::vector<serve::EdgeUpdate> batch;
    for (std::size_t i = static_cast<std::size_t>(bidx); i < edge_pool.size();
         i += 6) {
      const auto [a, b] = edge_pool[i];
      batch.push_back(serve::EdgeUpdate::weight(a, b, weight_of(i) * 2));
    }
    if (bidx == 2) {
      batch.push_back(serve::EdgeUpdate::fail(edge_pool[0].first,
                                              edge_pool[0].second));
    }
    if (bidx == 4) {  // revive at the original weight
      batch.push_back(serve::EdgeUpdate::weight(
          edge_pool[0].first, edge_pool[0].second, weight_of(0)));
    }
    batches.push_back(std::move(batch));
  }

  // Expected answer vector per generation: gen 0 (base), then the chain
  // after each batch — twice, because the reload drops the deltas and the
  // chain restarts from the base image.
  const auto qs = random_queries(n, 64, 31);
  std::vector<std::vector<Decision>> expected;
  {
    std::vector<Decision> base;
    for (const auto& q : qs) base.push_back(reference.route(q.u, q.v));
    expected.push_back(std::move(base));
    std::shared_ptr<const serve::DeltaSet> chain;
    for (const auto& batch : batches) {
      chain = serve::DeltaSet::apply(reference, chain.get(), batch);
      std::vector<Decision> want;
      for (const auto& q : qs) {
        want.push_back(reference.route_overlay(q.u, q.v, *chain));
      }
      expected.push_back(std::move(want));
    }
  }
  int differing = 0;
  for (std::size_t i = 0; i < qs.size(); ++i) {
    differing +=
        expected.front()[i].length != expected.back()[i].length ? 1 : 0;
  }
  ASSERT_GT(differing, 0) << "test needs distinguishable generations";

  net::NetServerOptions opt;
  opt.loops = 2;
  net::Server server(std::move(frozen), opt);

  const auto matches = [&qs](const std::vector<Decision>& got,
                             const std::vector<Decision>& want) {
    for (std::size_t i = 0; i < qs.size(); ++i) {
      if (got[i].ok != want[i].ok || got[i].length != want[i].length ||
          got[i].hops != want[i].hops ||
          got[i].tree_root != want[i].tree_root ||
          got[i].tree_level != want[i].tree_level ||
          got[i].via_trick != want[i].via_trick) {
        return false;
      }
    }
    return true;
  };

  std::atomic<bool> stop{false};
  std::atomic<int> torn{0};
  std::atomic<int> matched_head{0};
  std::vector<std::thread> traffic;
  for (int c = 0; c < 2; ++c) {
    traffic.emplace_back([&] {
      net::Client client("127.0.0.1", server.port());
      while (!stop.load(std::memory_order_acquire)) {
        client.send_route(qs.data(), qs.size());
        client.send_route(qs.data(), qs.size());
        for (int f = 0; f < 2; ++f) {
          const auto got = client.recv_route();
          bool found = false;
          for (const auto& want : expected) {
            if (matches(got, want)) {
              found = true;
              break;
            }
          }
          if (!found) {
            torn.fetch_add(1, std::memory_order_relaxed);
          } else if (matches(got, expected.back())) {
            matched_head.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }

  // Chain 1: apply every batch under load.
  for (const auto& batch : batches) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    server.apply_updates(batch);
  }
  // SIGHUP under load: back to the base generation (deltas dropped)...
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  server.reload(serve::FrozenScheme::load(reference.save()));
  // ...and chain 2 rebuilds to the head generation again.
  for (const auto& batch : batches) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    server.apply_updates(batch);
  }

  for (int spin = 0; matched_head.load() == 0 && spin < 10000; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : traffic) t.join();

  EXPECT_EQ(torn.load(), 0)
      << "every response must match exactly one generation";
  EXPECT_GT(matched_head.load(), 0)
      << "the head delta generation must actually serve";
  const auto stats = server.stats();
  EXPECT_EQ(stats.updates, 2 * static_cast<std::int64_t>(batches.size()));
  EXPECT_EQ(stats.reloads, 1);
}

}  // namespace
}  // namespace nors
