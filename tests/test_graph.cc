#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/properties.h"
#include "graph/shortest_paths.h"

namespace nors {
namespace {

using graph::Dist;
using graph::Vertex;
using graph::WeightedGraph;

TEST(Graph, AddEdgeSetsPortsAndReverse) {
  WeightedGraph g(3);
  g.add_edge(0, 1, 5);
  g.add_edge(1, 2, 7);
  g.freeze();
  EXPECT_EQ(g.m(), 2);
  EXPECT_EQ(g.degree(1), 2);
  const auto& e01 = g.edge(0, 0);
  EXPECT_EQ(e01.to, 1);
  EXPECT_EQ(e01.w, 5);
  // The reverse port at vertex 1 must point back to 0.
  EXPECT_EQ(g.edge(1, e01.rev).to, 0);
  EXPECT_EQ(g.port_to(1, 2), g.edge(2, g.port_to(2, 1)).rev);
}

TEST(Graph, RejectsInvalidEdges) {
  WeightedGraph g(3);
  EXPECT_THROW(g.add_edge(0, 0, 1), std::logic_error);  // self loop
  EXPECT_THROW(g.add_edge(0, 1, 0), std::logic_error);  // zero weight
  EXPECT_THROW(g.add_edge(0, 5, 1), std::logic_error);  // out of range
}

TEST(Generators, PathAndCycle) {
  util::Rng rng(1);
  const auto p = graph::path(10, graph::WeightSpec::unit(), rng);
  EXPECT_EQ(p.n(), 10);
  EXPECT_EQ(p.m(), 9);
  EXPECT_TRUE(graph::is_connected(p));
  EXPECT_EQ(graph::hop_diameter(p), 9);

  const auto c = graph::cycle(10, graph::WeightSpec::unit(), rng);
  EXPECT_EQ(c.m(), 10);
  EXPECT_EQ(graph::hop_diameter(c), 5);
}

TEST(Generators, GridTorusHypercube) {
  util::Rng rng(2);
  const auto g = graph::grid(4, 5, graph::WeightSpec::unit(), rng);
  EXPECT_EQ(g.n(), 20);
  EXPECT_EQ(g.m(), 4 * 4 + 5 * 3);
  EXPECT_EQ(graph::hop_diameter(g), 3 + 4);

  const auto t = graph::torus(4, 4, graph::WeightSpec::unit(), rng);
  EXPECT_EQ(t.n(), 16);
  for (Vertex v = 0; v < t.n(); ++v) EXPECT_EQ(t.degree(v), 4);

  const auto h = graph::hypercube(4, graph::WeightSpec::unit(), rng);
  EXPECT_EQ(h.n(), 16);
  EXPECT_EQ(graph::hop_diameter(h), 4);
}

TEST(Generators, ConnectedGnmIsConnectedWithRequestedSize) {
  util::Rng rng(3);
  const auto g =
      graph::connected_gnm(200, 400, graph::WeightSpec::uniform(1, 50), rng);
  EXPECT_EQ(g.n(), 200);
  EXPECT_EQ(g.m(), 199 + 400);
  EXPECT_TRUE(graph::is_connected(g));
  EXPECT_GE(g.max_weight(), 1);
  EXPECT_LE(g.max_weight(), 50);
}

TEST(Generators, RandomTreeIsTree) {
  util::Rng rng(4);
  const auto g = graph::random_tree(64, graph::WeightSpec::uniform(1, 9), rng);
  EXPECT_EQ(g.m(), 63);
  EXPECT_TRUE(graph::is_connected(g));
}

TEST(Generators, GeometricConnected) {
  util::Rng rng(5);
  const auto g = graph::random_geometric(100, 0.08, 1000, rng);
  EXPECT_TRUE(graph::is_connected(g));
  EXPECT_EQ(g.n(), 100);
}

TEST(Generators, BarabasiAlbertDegrees) {
  util::Rng rng(6);
  const auto g =
      graph::barabasi_albert(150, 3, graph::WeightSpec::unit(), rng);
  EXPECT_TRUE(graph::is_connected(g));
  for (Vertex v = 4; v < g.n(); ++v) EXPECT_GE(g.degree(v), 3);
}

TEST(Generators, ClusteredConnected) {
  util::Rng rng(7);
  const auto g = graph::clustered(120, 6, 0.3, 100,
                                  graph::WeightSpec::uniform(1, 10), rng);
  EXPECT_TRUE(graph::is_connected(g));
}

TEST(Generators, LollipopHighDiameter) {
  util::Rng rng(8);
  const auto g = graph::lollipop(80, 20, graph::WeightSpec::unit(), rng);
  EXPECT_TRUE(graph::is_connected(g));
  EXPECT_GE(graph::hop_diameter(g), 60);
}

TEST(Generators, FatTreeShape) {
  util::Rng rng(9);
  const auto g = graph::fat_tree(4, 3, 2, 2, graph::WeightSpec::unit(), rng);
  EXPECT_TRUE(graph::is_connected(g));
  EXPECT_EQ(g.n(), 2 + 4 + 12 + 24);
}

TEST(ShortestPaths, DijkstraOnKnownGraph) {
  WeightedGraph g(5);
  g.add_edge(0, 1, 2);
  g.add_edge(1, 2, 2);
  g.add_edge(0, 2, 5);
  g.add_edge(2, 3, 1);
  g.add_edge(3, 4, 1);
  g.freeze();
  const auto r = graph::dijkstra(g, 0);
  EXPECT_EQ(r.dist[2], 4);
  EXPECT_EQ(r.dist[4], 6);
  EXPECT_EQ(r.hops[4], 4);
  // Parent chain from 4 reaches 0.
  Vertex x = 4;
  int steps = 0;
  while (x != 0) {
    x = r.parent[static_cast<std::size_t>(x)];
    ASSERT_NE(x, graph::kNoVertex);
    ++steps;
  }
  EXPECT_EQ(steps, 4);
}

TEST(ShortestPaths, MultiSourceNearest) {
  util::Rng rng(10);
  const auto g = graph::connected_gnm(80, 160, graph::WeightSpec::uniform(1, 20), rng);
  const std::vector<Vertex> sources{3, 40, 77};
  const auto r = graph::multi_source_dijkstra(g, sources);
  for (Vertex v = 0; v < g.n(); ++v) {
    Dist best = graph::kDistInf;
    for (Vertex s : sources) {
      best = std::min(best, graph::pair_distance(g, s, v));
    }
    EXPECT_EQ(r.dist[static_cast<std::size_t>(v)], best) << "v=" << v;
  }
}

TEST(ShortestPaths, HopBoundedMatchesDefinition) {
  // Path with a heavy shortcut: 0-1-2-3 (w=1 each) plus direct 0-3 (w=10).
  WeightedGraph g(4);
  g.add_edge(0, 1, 1);
  g.add_edge(1, 2, 1);
  g.add_edge(2, 3, 1);
  g.add_edge(0, 3, 10);
  g.freeze();
  const auto r1 = graph::hop_bounded_sssp(g, 0, 1);
  EXPECT_EQ(r1.dist[3], 10);  // one hop: must take the heavy edge
  const auto r3 = graph::hop_bounded_sssp(g, 0, 3);
  EXPECT_EQ(r3.dist[3], 3);
  const auto r0 = graph::hop_bounded_sssp(g, 0, 0);
  EXPECT_TRUE(graph::is_inf(r0.dist[3]));
}

TEST(ShortestPaths, HopBoundedConvergesEarly) {
  util::Rng rng(11);
  const auto g = graph::connected_gnm(60, 150, graph::WeightSpec::unit(), rng);
  const auto bounded = graph::hop_bounded_sssp(g, 0, 100000);
  const auto exact = graph::dijkstra(g, 0);
  for (Vertex v = 0; v < g.n(); ++v) {
    EXPECT_EQ(bounded.dist[static_cast<std::size_t>(v)],
              exact.dist[static_cast<std::size_t>(v)]);
  }
  EXPECT_LT(bounded.iterations_used, 60);
}

TEST(Properties, ComponentsAndDiameters) {
  WeightedGraph g(6);
  g.add_edge(0, 1, 1);
  g.add_edge(1, 2, 1);
  g.add_edge(3, 4, 1);
  g.freeze();
  const auto c = graph::connected_components(g);
  EXPECT_EQ(c.count, 3);  // {0,1,2}, {3,4}, {5}
  EXPECT_FALSE(graph::is_connected(g));

  util::Rng rng(12);
  const auto p = graph::path(30, graph::WeightSpec::uniform(2, 2), rng);
  EXPECT_EQ(graph::hop_diameter(p), 29);
  EXPECT_EQ(graph::weighted_diameter(p), 58);
  EXPECT_EQ(graph::shortest_path_hop_diameter(p), 29);
}

TEST(Properties, ShortestPathDiameterCanExceedHopDiameter) {
  // Cycle with one heavy edge: hop diameter is small, but the shortest
  // weighted path between the heavy edge's endpoints goes the long way.
  WeightedGraph g(8);
  for (Vertex v = 0; v + 1 < 8; ++v) g.add_edge(v, v + 1, 1);
  g.add_edge(7, 0, 100);
  g.freeze();
  EXPECT_EQ(graph::hop_diameter(g), 4);
  EXPECT_EQ(graph::shortest_path_hop_diameter(g), 7);
}

TEST(Generators, DeterministicUnderSeed) {
  // Same seed ⇒ identical graph (edge sets and weights); different seed ⇒
  // (almost surely) different.
  auto build = [](std::uint64_t seed) {
    util::Rng rng(seed);
    return graph::connected_gnm(60, 150, graph::WeightSpec::uniform(1, 30),
                                rng);
  };
  const auto a = build(5), b = build(5), c = build(6);
  ASSERT_EQ(a.m(), b.m());
  bool all_equal_ab = true, all_equal_ac = (a.m() == c.m());
  for (Vertex v = 0; v < a.n(); ++v) {
    if (a.degree(v) != b.degree(v)) all_equal_ab = false;
    for (std::int32_t p = 0; p < std::min(a.degree(v), b.degree(v)); ++p) {
      if (a.edge(v, p).to != b.edge(v, p).to ||
          a.edge(v, p).w != b.edge(v, p).w) {
        all_equal_ab = false;
      }
    }
    if (all_equal_ac && a.degree(v) != c.degree(v)) all_equal_ac = false;
  }
  EXPECT_TRUE(all_equal_ab);
  EXPECT_FALSE(all_equal_ac);
}

TEST(Generators, WeightSpecDrawsWithinRange) {
  util::Rng rng(77);
  const auto ws = graph::WeightSpec::uniform(5, 9);
  for (int i = 0; i < 500; ++i) {
    const auto w = ws.draw(rng);
    EXPECT_GE(w, 5);
    EXPECT_LE(w, 9);
  }
  EXPECT_EQ(graph::WeightSpec::unit().draw(rng), 1);
}

TEST(Graph, FreezeIsOneShotAndGatesAccess) {
  WeightedGraph g(3);
  g.add_edge(0, 1, 2);
  // Frozen-phase accessors are unavailable during the builder phase...
  EXPECT_FALSE(g.frozen());
  EXPECT_THROW(g.neighbors(0), std::logic_error);
  EXPECT_THROW(g.edge(0, 0), std::logic_error);
  EXPECT_THROW(g.port_to(0, 1), std::logic_error);
  // ...but degree and counts are.
  EXPECT_EQ(g.degree(0), 1);
  EXPECT_EQ(g.m(), 1);
  g.freeze();
  EXPECT_TRUE(g.frozen());
  EXPECT_EQ(g.neighbors(0).size(), 1u);
  EXPECT_EQ(g.degree(0), 1);
  // The builder phase is over.
  EXPECT_THROW(g.add_edge(1, 2, 1), std::logic_error);
  EXPECT_THROW(g.freeze(), std::logic_error);
}

TEST(Graph, CsrAdjacencyIsContiguous) {
  util::Rng rng(31);
  const auto g =
      graph::connected_gnm(64, 200, graph::WeightSpec::uniform(1, 9), rng);
  // Spans of consecutive vertices abut: the CSR invariant the CONGEST
  // engine's link indexing relies on.
  for (Vertex v = 0; v + 1 < g.n(); ++v) {
    EXPECT_EQ(g.neighbors(v).data() + g.neighbors(v).size(),
              g.neighbors(v + 1).data());
  }
}

TEST(Graph, PortToMatchesLinearScan) {
  util::Rng rng(32);
  const auto g =
      graph::connected_gnm(80, 400, graph::WeightSpec::uniform(1, 9), rng);
  for (Vertex u = 0; u < g.n(); ++u) {
    std::vector<std::int32_t> expected(static_cast<std::size_t>(g.n()),
                                       graph::kNoPort);
    for (std::int32_t p = 0; p < g.degree(u); ++p) {
      const auto to = static_cast<std::size_t>(g.edge(u, p).to);
      if (expected[to] == graph::kNoPort) expected[to] = p;
    }
    for (Vertex v = 0; v < g.n(); ++v) {
      EXPECT_EQ(g.port_to(u, v), expected[static_cast<std::size_t>(v)])
          << "u=" << u << " v=" << v;
    }
  }
}

TEST(TreeDistance, WalksThroughLca) {
  // Star with center 0: parent of all is 0.
  std::vector<Vertex> parent{graph::kNoVertex, 0, 0, 1};
  std::vector<Dist> dist{0, 5, 7, 11};
  EXPECT_EQ(graph::tree_distance(parent, dist, 1, 2), 12);
  EXPECT_EQ(graph::tree_distance(parent, dist, 3, 1), 6);
  EXPECT_EQ(graph::tree_distance(parent, dist, 3, 2), 18);
  EXPECT_EQ(graph::tree_distance(parent, dist, 0, 3), 11);
}

}  // namespace
}  // namespace nors
