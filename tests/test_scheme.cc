#include <gtest/gtest.h>

#include <cmath>

#include "core/scheme.h"
#include "graph/generators.h"
#include "graph/properties.h"
#include "graph/shortest_paths.h"

namespace nors {
namespace {

using graph::Dist;
using graph::Vertex;

struct Case {
  int k;
  std::uint64_t seed;
  const char* topology;
};

graph::WeightedGraph make_graph(const char* topology, std::uint64_t seed) {
  util::Rng rng(seed);
  const std::string t = topology;
  if (t == "gnm") {
    return graph::connected_gnm(130, 340, graph::WeightSpec::uniform(1, 18),
                                rng);
  }
  if (t == "geometric") {
    return graph::random_geometric(120, 0.14, 500, rng);
  }
  if (t == "clustered") {
    return graph::clustered(120, 6, 0.25, 60,
                            graph::WeightSpec::uniform(1, 8), rng);
  }
  if (t == "torus") {
    return graph::torus(10, 12, graph::WeightSpec::uniform(1, 10), rng);
  }
  NORS_CHECK_MSG(false, "unknown topology " << topology);
}

TEST(SchemeStructure, ClusterTreesAndTreeSpecsStayVertexSorted) {
  // Regression guard for the flat construction path: to_spec() emits the
  // Section-6 TreeSpec as a straight column copy of the cluster tree, so
  // cluster members — and with them every spec and every tree scheme's
  // member list — must be (and stay) strictly vertex-sorted.
  const auto g = make_graph("gnm", 511);
  core::SchemeParams p;
  p.k = 3;
  p.seed = 511;
  const auto s = core::RoutingScheme::build(g, p);
  ASSERT_FALSE(s.trees().empty());
  for (std::size_t ti = 0; ti < s.trees().size(); ++ti) {
    const auto& t = s.trees()[ti];
    ASSERT_FALSE(t.members.empty());
    for (std::size_t i = 1; i < t.members.size(); ++i) {
      ASSERT_LT(t.members[i - 1], t.members[i])
          << "tree " << ti << " members not strictly sorted";
    }
    ASSERT_EQ(t.members.size(), t.info.size());
    // The tree scheme built from the spec carries the identical sorted
    // member list — no re-sort happened anywhere on the way.
    EXPECT_EQ(s.tree_scheme(ti).members(), t.members) << "tree " << ti;
  }
}

class SchemeEndToEnd : public ::testing::TestWithParam<Case> {};

TEST_P(SchemeEndToEnd, RoutesAllSampledPairsWithinBound) {
  const auto c = GetParam();
  const auto g = make_graph(c.topology, c.seed);
  core::SchemeParams p;
  p.k = c.k;
  p.seed = c.seed;
  const auto s = core::RoutingScheme::build(g, p);
  EXPECT_EQ(s.pruned_members(), 0);
  EXPECT_EQ(s.coverage_retries(), 0);

  const double bound = s.stretch_bound() + 1e-9;
  double worst = 1.0;
  int routed = 0;
  for (Vertex u = 0; u < g.n(); u += 4) {
    const auto sp = graph::dijkstra(g, u);
    for (Vertex v = 1; v < g.n(); v += 6) {
      if (u == v) continue;
      const auto r = s.route(u, v);
      ASSERT_TRUE(r.ok) << "u=" << u << " v=" << v;
      const Dist d = sp.dist[static_cast<std::size_t>(v)];
      ASSERT_GT(d, 0);
      EXPECT_GE(r.length, d) << "route shorter than shortest path?!";
      const double stretch =
          static_cast<double>(r.length) / static_cast<double>(d);
      EXPECT_LE(stretch, bound)
          << "u=" << u << " v=" << v << " k=" << c.k
          << " level=" << r.tree_level;
      worst = std::max(worst, stretch);
      ++routed;
      // The walked path must be consistent: hops edges, ends at v.
      ASSERT_EQ(r.path.front(), u);
      ASSERT_EQ(r.path.back(), v);
      ASSERT_EQ(static_cast<int>(r.path.size()), r.hops + 1);
    }
  }
  EXPECT_GT(routed, 100);
  // The paper's bound is 4k-3+o(1) without the trick; our default (with
  // trick) is 4k-5+o(1). Either way the analytic bound must cover the
  // observed worst case (already asserted) and be in the right regime.
  EXPECT_LE(s.stretch_bound(),
            std::max(1.0, 4.0 * c.k - (p.label_trick ? 5.0 : 3.0)) + 0.5);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SchemeEndToEnd,
    ::testing::Values(Case{1, 501, "gnm"}, Case{2, 502, "gnm"},
                      Case{3, 503, "gnm"}, Case{4, 504, "gnm"},
                      Case{5, 505, "gnm"}, Case{3, 506, "geometric"},
                      Case{3, 507, "clustered"}, Case{4, 508, "torus"},
                      Case{2, 509, "clustered"}, Case{4, 510, "geometric"}));

TEST(Scheme, KOneRoutesExactly) {
  util::Rng rng(521);
  const auto g = graph::connected_gnm(70, 160, graph::WeightSpec::uniform(1, 9), rng);
  core::SchemeParams p;
  p.k = 1;
  p.seed = 3;
  const auto s = core::RoutingScheme::build(g, p);
  for (Vertex u = 0; u < g.n(); u += 3) {
    const auto sp = graph::dijkstra(g, u);
    for (Vertex v = 1; v < g.n(); v += 4) {
      if (u == v) continue;
      const auto r = s.route(u, v);
      ASSERT_TRUE(r.ok);
      EXPECT_EQ(r.length, sp.dist[static_cast<std::size_t>(v)]);
    }
  }
}

TEST(Scheme, LabelAndTableSizesInRegime) {
  util::Rng rng(522);
  const int n = 200;
  const auto g = graph::connected_gnm(n, 520, graph::WeightSpec::uniform(1, 14), rng);
  core::SchemeParams p;
  p.k = 3;
  p.seed = 9;
  p.label_trick = false;  // isolate the Õ(n^{1/k}) table regime
  const auto s = core::RoutingScheme::build(g, p);
  const double log2n = std::log2(n);
  for (Vertex v = 0; v < n; v += 7) {
    // Labels: O(k log² n) words.
    EXPECT_LE(s.label_words(v), 3 * (3 + 40.0 * log2n));
    // Tables: overlap · O(log² n) words.
    EXPECT_LE(s.table_words(v),
              (s.overlap(v) + 1) * 40.0 * log2n + 2 * p.k);
  }
}

TEST(Scheme, LedgerHasSimulatedAndAccountedPhases) {
  util::Rng rng(523);
  const auto g = graph::connected_gnm(100, 250, graph::WeightSpec::uniform(1, 9), rng);
  core::SchemeParams p;
  p.k = 4;
  p.seed = 17;
  const auto s = core::RoutingScheme::build(g, p);
  EXPECT_GT(s.ledger().simulated_rounds(), 0);
  EXPECT_GT(s.ledger().accounted_rounds(), 0);
  EXPECT_EQ(s.ledger().total_rounds(),
            s.ledger().simulated_rounds() + s.ledger().accounted_rounds());
  // The report mentions the key phases.
  const std::string rep = s.ledger().report();
  EXPECT_NE(rep.find("pivots/exact"), std::string::npos);
  EXPECT_NE(rep.find("preprocess/hopset"), std::string::npos);
  EXPECT_NE(rep.find("clusters/large"), std::string::npos);
  EXPECT_NE(rep.find("treeroute/"), std::string::npos);
}

TEST(Scheme, TrickImprovesOrMatchesWorstStretch) {
  util::Rng rng(524);
  const auto g = graph::connected_gnm(110, 280, graph::WeightSpec::uniform(1, 22), rng);
  core::SchemeParams with;
  with.k = 3;
  with.seed = 77;
  core::SchemeParams without = with;
  without.label_trick = false;
  const auto sw = core::RoutingScheme::build(g, with);
  const auto so = core::RoutingScheme::build(g, without);
  double worst_with = 0, worst_without = 0;
  for (Vertex u = 0; u < g.n(); u += 5) {
    const auto sp = graph::dijkstra(g, u);
    for (Vertex v = 2; v < g.n(); v += 7) {
      if (u == v) continue;
      const Dist d = sp.dist[static_cast<std::size_t>(v)];
      worst_with = std::max(worst_with,
                            static_cast<double>(sw.route(u, v).length) / d);
      worst_without = std::max(
          worst_without, static_cast<double>(so.route(u, v).length) / d);
    }
  }
  EXPECT_LE(worst_with, worst_without + 1e-12);
  EXPECT_LT(sw.stretch_bound(), so.stretch_bound());
}

TEST(Scheme, PracticalEpsilonAblation) {
  // E7: a coarser ε still routes correctly, within its own (larger) bound.
  util::Rng rng(525);
  const auto g = graph::connected_gnm(100, 260, graph::WeightSpec::uniform(1, 30), rng);
  core::SchemeParams p;
  p.k = 3;
  p.seed = 31;
  p.eps = util::Epsilon(1, 20);
  const auto s = core::RoutingScheme::build(g, p);
  const double bound = s.stretch_bound() + 1e-9;
  for (Vertex u = 0; u < g.n(); u += 6) {
    const auto sp = graph::dijkstra(g, u);
    for (Vertex v = 3; v < g.n(); v += 8) {
      if (u == v) continue;
      const auto r = s.route(u, v);
      ASSERT_TRUE(r.ok);
      EXPECT_LE(static_cast<double>(r.length) /
                    sp.dist[static_cast<std::size_t>(v)],
                bound);
    }
  }
  EXPECT_GT(s.stretch_bound(),
            core::stretch_bound(3, util::Epsilon::paper_value(3), true));
}

TEST(Scheme, FindTreeSkipsLevelsWhenPivotClusterExcludesV) {
  // The paper (§4) notes its Algorithm 1 differs from TZ01: v may NOT
  // belong to C̃(ẑ_i(v)) (the pivot's cluster can exclude near-boundary
  // vertices), and the loop must keep searching. Verify the scenario
  // actually occurs and is handled: some label entry is non-member, and
  // some route settles at a level above the first.
  util::Rng rng(531);
  const auto g =
      graph::connected_gnm(160, 400, graph::WeightSpec::uniform(1, 30), rng);
  core::SchemeParams p;
  p.k = 4;
  p.seed = 61;
  p.label_trick = false;
  const auto s = core::RoutingScheme::build(g, p);
  int non_member_entries = 0;
  for (graph::Vertex v = 0; v < g.n(); ++v) {
    for (int i = 0; i < p.k; ++i) {
      if (!s.label_entry(v, i).member) ++non_member_entries;
    }
  }
  EXPECT_GT(non_member_entries, 0)
      << "approximate clusters never excluded a pivot owner — the "
         "Algorithm-1 deviation from TZ01 is untested";
  int elevated_routes = 0;
  for (graph::Vertex u = 0; u < g.n(); u += 3) {
    for (graph::Vertex v = 1; v < g.n(); v += 5) {
      if (u == v) continue;
      const auto r = s.route(u, v);
      ASSERT_TRUE(r.ok);
      if (r.tree_level > 0) ++elevated_routes;
    }
  }
  EXPECT_GT(elevated_routes, 0);
}

TEST(Scheme, RejectsDisconnectedGraphs) {
  graph::WeightedGraph g(4);
  g.add_edge(0, 1, 1);
  g.add_edge(2, 3, 1);
  g.freeze();
  core::SchemeParams p;
  p.k = 2;
  EXPECT_THROW(core::RoutingScheme::build(g, p), std::logic_error);
}

TEST(Scheme, StretchBoundFormulaSanity) {
  // ε → 0 recovers the combinatorial 4k-5 / 4k-3 bounds.
  const util::Epsilon tiny(1, 1'000'000);
  for (int k = 1; k <= 6; ++k) {
    EXPECT_NEAR(core::stretch_bound(k, tiny, true),
                std::max(1, 4 * k - 5), 0.01)
        << "k=" << k;
    EXPECT_NEAR(core::stretch_bound(k, tiny, false),
                std::max(1, 4 * k - 3), 0.01)
        << "k=" << k;
  }
  // Paper ε keeps the o(1) additive term small.
  for (int k = 2; k <= 6; ++k) {
    const auto e = util::Epsilon::paper_value(k);
    EXPECT_LE(core::stretch_bound(k, e, true), 4 * k - 5 + 0.2);
  }
}

}  // namespace
}  // namespace nors
