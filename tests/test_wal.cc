// Write-ahead log tests (DESIGN.md §14): the durability layer under the
// live tables. Covered here: append/replay round trips, the torn-tail
// matrix (a segment truncated at *every* byte offset of its final record
// recovers to exactly the records before it), the mid-log corruption
// refusals, checkpoint reset() squash semantics and its crash-overlap
// skip, segment rotation, the wal.append / wal.fsync / wal.recover
// failpoints (including the disk-full `partial` shape), fsync-policy
// accounting, a real fork + SIGKILL durability check, and the update
// journal's typed error satellites. CI runs this under ASan+UBSan and
// TSan.

#include <gtest/gtest.h>

#include <dirent.h>
#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "serve/delta.h"
#include "serve/wal.h"
#include "util/failpoint.h"

namespace nors {
namespace {

using serve::EdgeUpdate;
using serve::FsyncPolicy;
using serve::Wal;
using serve::WalCorrupt;
using serve::WalError;
using serve::WalOptions;
using serve::WalRecord;
using serve::WalStats;

// Same RAII idiom as test_chaos: arm in the constructor, disarm in the
// destructor so a failing assertion can't leak an armed failpoint into
// the next test.
struct FailpointGuard {
  explicit FailpointGuard(const std::string& spec) {
    util::Failpoints::configure(spec);
  }
  ~FailpointGuard() { util::Failpoints::clear(); }
};

// A throwaway directory per test; removed (one level deep is all a WAL
// ever makes) on destruction.
struct TempDir {
  std::string path;
  TempDir() {
    char tmpl[] = "/tmp/nors_wal_XXXXXX";
    char* p = ::mkdtemp(tmpl);
    if (p == nullptr) throw std::runtime_error("mkdtemp failed");
    path = p;
  }
  ~TempDir() {
    if (DIR* d = ::opendir(path.c_str())) {
      while (struct dirent* e = ::readdir(d)) {
        const std::string name = e->d_name;
        if (name != "." && name != "..") {
          ::unlink((path + "/" + name).c_str());
        }
      }
      ::closedir(d);
    }
    ::rmdir(path.c_str());
  }
  std::string sub(const std::string& name) const { return path + "/" + name; }
};

std::vector<EdgeUpdate> batch(std::uint64_t seed) {
  std::vector<EdgeUpdate> ev;
  const auto n = 1 + seed % 3;
  for (std::uint64_t i = 0; i < n; ++i) {
    const auto u = static_cast<graph::Vertex>((seed * 7 + i * 3) % 97);
    const auto v = static_cast<graph::Vertex>(u + 1 + (seed + i) % 5);
    if ((seed + i) % 2 == 0) {
      ev.push_back(EdgeUpdate::fail(u, v));
    } else {
      ev.push_back(EdgeUpdate::weight(
          u, v, static_cast<graph::Dist>(1 + (seed + i) % 16)));
    }
  }
  return ev;
}

void expect_events_eq(const std::vector<EdgeUpdate>& got,
                      const std::vector<EdgeUpdate>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].u, want[i].u);
    EXPECT_EQ(got[i].v, want[i].v);
    EXPECT_EQ(got[i].w, want[i].w);
  }
}

struct Recovered {
  std::vector<WalRecord> records;
  WalStats stats;
  std::uint64_t last_seq = 0;
  std::uint64_t segments = 0;
};

Recovered reopen(const std::string& dir, WalOptions opt = {}) {
  Recovered r;
  Wal w(dir, opt,
        [&](const WalRecord& rec) { r.records.push_back(rec); });
  r.stats = w.stats();
  r.last_seq = w.last_seq();
  r.segments = w.segment_count();
  return r;
}

void write_file(const std::string& path,
                const std::vector<std::uint8_t>& bytes) {
  const int fd =
      ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY | O_CLOEXEC, 0644);
  ASSERT_GE(fd, 0) << path << ": " << std::strerror(errno);
  ASSERT_EQ(::write(fd, bytes.data(), bytes.size()),
            static_cast<ssize_t>(bytes.size()));
  ::close(fd);
}

std::uint64_t file_size(const std::string& path) {
  struct stat st{};
  EXPECT_EQ(::stat(path.c_str(), &st), 0) << path;
  return static_cast<std::uint64_t>(st.st_size);
}

std::string seg_name(std::uint64_t base) {
  char name[32];
  std::snprintf(name, sizeof name, "wal-%016llx.log",
                static_cast<unsigned long long>(base));
  return name;
}

void append_bytes(std::vector<std::uint8_t>& out,
                  const std::vector<std::uint8_t>& more) {
  out.insert(out.end(), more.begin(), more.end());
}

TEST(Wal, RoundTripReplaysIdentically) {
  TempDir td;
  std::vector<std::vector<EdgeUpdate>> batches;
  {
    Wal w(td.path, {}, nullptr);
    EXPECT_EQ(w.last_seq(), 0u);
    for (std::uint64_t seq = 1; seq <= 5; ++seq) {
      batches.push_back(batch(seq));
      w.append(seq, /*snapshot=*/seq == 3, batches.back());
    }
    EXPECT_EQ(w.stats().appends, 5u);
    EXPECT_EQ(w.last_seq(), 5u);
  }
  const auto r = reopen(td.path);
  EXPECT_EQ(r.stats.records_recovered, 5u);
  EXPECT_EQ(r.stats.records_skipped, 0u);
  EXPECT_EQ(r.stats.torn_bytes_dropped, 0u);
  EXPECT_EQ(r.last_seq, 5u);
  ASSERT_EQ(r.records.size(), 5u);
  for (std::uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(r.records[i].seq, i + 1);
    EXPECT_EQ(r.records[i].snapshot, i + 1 == 3);
    expect_events_eq(r.records[i].events, batches[i]);
  }
}

TEST(Wal, AppendDemandsAscendingSeq) {
  TempDir td;
  Wal w(td.path, {}, nullptr);
  w.append(7, false, batch(1));
  EXPECT_THROW(w.append(7, false, batch(2)), std::logic_error);
  EXPECT_THROW(w.append(3, false, batch(2)), std::logic_error);
  w.append(8, false, batch(2));
  EXPECT_EQ(w.last_seq(), 8u);
}

TEST(Wal, OpenOnAFileThrowsWalError) {
  TempDir td;
  const std::string file = td.sub("not-a-dir");
  write_file(file, {0x42});
  EXPECT_THROW(Wal(file, {}, nullptr), WalError);
}

// The tentpole matrix: a 3-record segment cut at every byte offset of
// the final record must recover records 1 and 2 exactly, drop precisely
// the torn bytes, and leave a log that accepts the re-append.
TEST(Wal, TornTailMatrixDropsExactlyTheLastRecord) {
  const auto b1 = batch(11), b2 = batch(12), b3 = batch(13);
  std::vector<std::uint8_t> full = Wal::encode_segment_header(1);
  append_bytes(full, Wal::encode_record(1, false, b1));
  append_bytes(full, Wal::encode_record(2, true, b2));
  const std::uint64_t keep = full.size();
  append_bytes(full, Wal::encode_record(3, false, b3));

  for (std::uint64_t cut = keep; cut < full.size(); ++cut) {
    TempDir td;
    const std::string seg = td.sub(seg_name(1));
    write_file(seg, std::vector<std::uint8_t>(full.begin(),
                                              full.begin() + cut));
    const auto r = reopen(td.path);
    ASSERT_EQ(r.records.size(), 2u) << "cut at byte " << cut;
    EXPECT_EQ(r.records[0].seq, 1u);
    EXPECT_EQ(r.records[1].seq, 2u);
    EXPECT_TRUE(r.records[1].snapshot);
    EXPECT_EQ(r.stats.torn_bytes_dropped, cut - keep) << "cut " << cut;
    EXPECT_EQ(r.last_seq, 2u);
    // The recovery truncated the file back to the last whole record...
    EXPECT_EQ(file_size(seg), keep);
    // ...and the log accepts the interrupted append's retry.
    Wal w(td.path, {}, nullptr);
    w.append(3, false, b3);
    const auto r2 = reopen(td.path);
    ASSERT_EQ(r2.records.size(), 3u);
    expect_events_eq(r2.records[2].events, b3);
  }
}

TEST(Wal, ZeroFillTailIsTorn) {
  TempDir td;
  std::vector<std::uint8_t> bytes = Wal::encode_segment_header(1);
  append_bytes(bytes, Wal::encode_record(1, false, batch(3)));
  const std::uint64_t keep = bytes.size();
  bytes.resize(bytes.size() + 100, 0);  // zero-filling fs, crashed append
  write_file(td.sub(seg_name(1)), bytes);
  const auto r = reopen(td.path);
  EXPECT_EQ(r.records.size(), 1u);
  EXPECT_EQ(r.stats.torn_bytes_dropped, 100u);
  EXPECT_EQ(file_size(td.sub(seg_name(1))), keep);
}

TEST(Wal, ChecksumBreakAtExactEofIsTorn) {
  TempDir td;
  std::vector<std::uint8_t> bytes = Wal::encode_segment_header(1);
  append_bytes(bytes, Wal::encode_record(1, false, batch(3)));
  const std::uint64_t keep = bytes.size();
  const auto rec2 = Wal::encode_record(2, false, batch(4));
  append_bytes(bytes, rec2);
  bytes[bytes.size() - 3] ^= 0xff;  // damage inside the final trailer
  write_file(td.sub(seg_name(1)), bytes);
  const auto r = reopen(td.path);
  ASSERT_EQ(r.records.size(), 1u);
  EXPECT_EQ(r.records[0].seq, 1u);
  EXPECT_EQ(r.stats.torn_bytes_dropped, rec2.size());
  EXPECT_EQ(file_size(td.sub(seg_name(1))), keep);
}

TEST(Wal, MidLogChecksumDamageRefuses) {
  TempDir td;
  std::vector<std::uint8_t> bytes = Wal::encode_segment_header(1);
  const auto rec1 = Wal::encode_record(1, false, batch(5));
  append_bytes(bytes, rec1);
  append_bytes(bytes, Wal::encode_record(2, false, batch(6)));
  // Flip a body byte of record 1: valid bytes follow, so this is not a
  // crashed append and recovery must refuse rather than truncate.
  bytes[Wal::kSegHeaderBytes + Wal::kRecHeaderBytes] ^= 0x01;
  write_file(td.sub(seg_name(1)), bytes);
  EXPECT_THROW(reopen(td.path), WalCorrupt);
}

TEST(Wal, MidLogBadMagicRefuses) {
  TempDir td;
  std::vector<std::uint8_t> bytes = Wal::encode_segment_header(1);
  const auto rec1 = Wal::encode_record(1, false, batch(5));
  append_bytes(bytes, rec1);
  append_bytes(bytes, Wal::encode_record(2, false, batch(6)));
  bytes[Wal::kSegHeaderBytes] = 0x5a;  // record-1 magic, non-zero garbage
  write_file(td.sub(seg_name(1)), bytes);
  EXPECT_THROW(reopen(td.path), WalCorrupt);
}

TEST(Wal, NonAscendingSeqRefuses) {
  TempDir td;
  std::vector<std::uint8_t> bytes = Wal::encode_segment_header(1);
  append_bytes(bytes, Wal::encode_record(5, false, batch(1)));
  append_bytes(bytes, Wal::encode_record(4, false, batch(2)));
  write_file(td.sub(seg_name(1)), bytes);
  EXPECT_THROW(reopen(td.path), WalCorrupt);
}

TEST(Wal, SeqBelowSegmentBaseRefuses) {
  TempDir td;
  std::vector<std::uint8_t> bytes = Wal::encode_segment_header(9);
  append_bytes(bytes, Wal::encode_record(3, false, batch(1)));
  write_file(td.sub(seg_name(9)), bytes);
  EXPECT_THROW(reopen(td.path), WalCorrupt);
}

TEST(Wal, BadSegmentMagicRefuses) {
  TempDir td;
  auto bytes = Wal::encode_segment_header(1);
  bytes[0] ^= 0xff;
  write_file(td.sub(seg_name(1)), bytes);
  EXPECT_THROW(reopen(td.path), WalCorrupt);
}

TEST(Wal, SegmentNameHeaderDisagreementRefuses) {
  TempDir td;
  write_file(td.sub(seg_name(1)), Wal::encode_segment_header(2));
  EXPECT_THROW(reopen(td.path), WalCorrupt);
}

TEST(Wal, ShortHeaderInFinalSegmentIsDiscarded) {
  TempDir td;
  // A full first segment, then a crash while creating the second: the
  // newest segment has only 8 of its 24 header bytes.
  std::vector<std::uint8_t> seg1 = Wal::encode_segment_header(1);
  append_bytes(seg1, Wal::encode_record(1, false, batch(1)));
  write_file(td.sub(seg_name(1)), seg1);
  write_file(td.sub(seg_name(2)), std::vector<std::uint8_t>(8, 0x11));
  const auto r = reopen(td.path);
  EXPECT_EQ(r.records.size(), 1u);
  EXPECT_EQ(r.last_seq, 1u);
  // The torn segment was unlinked, and the reopened log appends fine.
  EXPECT_NE(::access(td.sub(seg_name(2)).c_str(), F_OK), 0);
}

TEST(Wal, ShortHeaderMidLogRefuses) {
  TempDir td;
  write_file(td.sub(seg_name(1)), std::vector<std::uint8_t>(8, 0x11));
  std::vector<std::uint8_t> seg2 = Wal::encode_segment_header(2);
  append_bytes(seg2, Wal::encode_record(2, false, batch(1)));
  write_file(td.sub(seg_name(2)), seg2);
  EXPECT_THROW(reopen(td.path), WalCorrupt);
}

TEST(Wal, TornRecordInNonFinalSegmentRefuses) {
  TempDir td;
  std::vector<std::uint8_t> seg1 = Wal::encode_segment_header(1);
  append_bytes(seg1, Wal::encode_record(1, false, batch(1)));
  seg1.pop_back();  // tear the first segment's only record
  write_file(td.sub(seg_name(1)), seg1);
  write_file(td.sub(seg_name(2)), Wal::encode_segment_header(2));
  EXPECT_THROW(reopen(td.path), WalCorrupt);
}

// The exact window a crash between reset()'s rename and its unlinks
// leaves behind: old history *and* the squash segment, overlapping seqs.
// Recovery replays the history and skips the overlap.
TEST(Wal, CheckpointOverlapSkipsDuplicateSeqs) {
  TempDir td;
  std::vector<std::uint8_t> seg1 = Wal::encode_segment_header(1);
  append_bytes(seg1, Wal::encode_record(1, false, batch(1)));
  append_bytes(seg1, Wal::encode_record(2, false, batch(2)));
  append_bytes(seg1, Wal::encode_record(3, false, batch(3)));
  write_file(td.sub(seg_name(1)), seg1);
  std::vector<std::uint8_t> seg3 = Wal::encode_segment_header(3);
  append_bytes(seg3, Wal::encode_record(3, true, batch(9)));
  write_file(td.sub(seg_name(3)), seg3);

  const auto r = reopen(td.path);
  EXPECT_EQ(r.stats.records_recovered, 3u);
  EXPECT_EQ(r.stats.records_skipped, 1u);
  EXPECT_EQ(r.last_seq, 3u);
  ASSERT_EQ(r.records.size(), 3u);
  EXPECT_FALSE(r.records[2].snapshot);
}

TEST(Wal, ResetReplacesLogWithSquash) {
  TempDir td;
  const auto snap = batch(42);
  {
    WalOptions opt;
    opt.segment_bytes = 128;  // force several segments first
    Wal w(td.path, opt, nullptr);
    for (std::uint64_t seq = 1; seq <= 6; ++seq) {
      w.append(seq, false, batch(seq));
    }
    EXPECT_GT(w.segment_count(), 1u);
    w.reset(6, &snap);
    EXPECT_EQ(w.segment_count(), 1u);
    EXPECT_EQ(w.last_seq(), 6u);
    w.append(7, false, batch(7));
  }
  const auto r = reopen(td.path);
  ASSERT_EQ(r.records.size(), 2u);
  EXPECT_EQ(r.records[0].seq, 6u);
  EXPECT_TRUE(r.records[0].snapshot);
  expect_events_eq(r.records[0].events, snap);
  EXPECT_EQ(r.records[1].seq, 7u);
  EXPECT_EQ(r.last_seq, 7u);
}

TEST(Wal, ResetWithoutSnapshotPreservesSeqFloor) {
  TempDir td;
  {
    Wal w(td.path, {}, nullptr);
    for (std::uint64_t seq = 1; seq <= 4; ++seq) {
      w.append(seq, false, batch(seq));
    }
    w.reset(4, nullptr);  // reload: deltas dropped, seq floor kept
    EXPECT_EQ(w.last_seq(), 4u);
  }
  // Even with zero records, the rebooted log resumes past the floor —
  // update_seq must stay monotonic across reload/checkpoint + crash.
  const auto r = reopen(td.path);
  EXPECT_EQ(r.records.size(), 0u);
  EXPECT_EQ(r.last_seq, 4u);
  Wal w(td.path, {}, nullptr);
  EXPECT_THROW(w.append(4, false, batch(1)), std::logic_error);
  w.append(5, false, batch(1));
}

TEST(Wal, RotationSpansSegmentsAndRecovers) {
  TempDir td;
  WalOptions opt;
  opt.segment_bytes = 160;
  std::vector<std::vector<EdgeUpdate>> batches;
  {
    Wal w(td.path, opt, nullptr);
    for (std::uint64_t seq = 1; seq <= 12; ++seq) {
      batches.push_back(batch(seq));
      w.append(seq, false, batches.back());
    }
    EXPECT_GE(w.segment_count(), 3u);
  }
  const auto r = reopen(td.path, opt);
  EXPECT_GE(r.segments, 3u);
  ASSERT_EQ(r.records.size(), 12u);
  for (std::uint64_t i = 0; i < 12; ++i) {
    EXPECT_EQ(r.records[i].seq, i + 1);
    expect_events_eq(r.records[i].events, batches[i]);
  }
}

TEST(Wal, AppendFailpointRollsBack) {
  TempDir td;
  Wal w(td.path, {}, nullptr);
  w.append(1, false, batch(1));
  const std::uint64_t size_before = file_size(td.sub(seg_name(1)));
  {
    FailpointGuard fp("wal.append:error:1");
    EXPECT_THROW(w.append(2, false, batch(2)), WalError);
  }
  EXPECT_EQ(w.last_seq(), 1u);
  EXPECT_EQ(w.stats().appends, 1u);
  EXPECT_EQ(file_size(td.sub(seg_name(1))), size_before);
  w.append(2, false, batch(2));  // the retry lands at the same seq
  EXPECT_EQ(reopen(td.path).records.size(), 2u);
}

// The disk-full shape: a torn prefix reaches the platter, the write
// reports no space, and the append must roll the file back so recovery
// never even sees the tear.
TEST(Wal, AppendPartialFailpointSimulatesDiskFull) {
  TempDir td;
  Wal w(td.path, {}, nullptr);
  w.append(1, false, batch(1));
  const std::uint64_t size_before = file_size(td.sub(seg_name(1)));
  {
    FailpointGuard fp("wal.append:partial:1");
    try {
      w.append(2, false, batch(2));
      FAIL() << "partial append should throw";
    } catch (const WalError& e) {
      EXPECT_NE(std::string(e.what()).find("rolled back"),
                std::string::npos);
    }
  }
  EXPECT_EQ(file_size(td.sub(seg_name(1))), size_before);
  w.append(2, false, batch(2));
  const auto r = reopen(td.path);
  EXPECT_EQ(r.records.size(), 2u);
  EXPECT_EQ(r.stats.torn_bytes_dropped, 0u);
}

TEST(Wal, FsyncFailpointRollsBackUnsyncedBytes) {
  TempDir td;
  WalOptions opt;
  opt.fsync = FsyncPolicy::kAlways;
  Wal w(td.path, opt, nullptr);
  w.append(1, false, batch(1));
  {
    FailpointGuard fp("wal.fsync:error:1");
    EXPECT_THROW(w.append(2, false, batch(2)), WalError);
  }
  // The bytes were written but never known durable: rolled back, so the
  // ack the server withheld matches the log a reboot would replay.
  EXPECT_EQ(w.last_seq(), 1u);
  EXPECT_EQ(reopen(td.path).records.size(), 1u);
}

TEST(Wal, RecoverFailpointFailsOpen) {
  TempDir td;
  FailpointGuard fp("wal.recover:error:1");
  EXPECT_THROW(Wal(td.path, {}, nullptr), WalError);
}

TEST(Wal, ParseFsyncPolicy) {
  EXPECT_EQ(serve::parse_fsync_policy("always"), FsyncPolicy::kAlways);
  EXPECT_EQ(serve::parse_fsync_policy("interval"), FsyncPolicy::kInterval);
  EXPECT_EQ(serve::parse_fsync_policy("off"), FsyncPolicy::kOff);
  EXPECT_THROW(serve::parse_fsync_policy("sometimes"), std::runtime_error);
}

TEST(Wal, FsyncPolicyAccountsSyncs) {
  {
    TempDir td;
    WalOptions opt;
    opt.fsync = FsyncPolicy::kAlways;
    Wal w(td.path, opt, nullptr);
    for (std::uint64_t s = 1; s <= 4; ++s) w.append(s, false, batch(s));
    EXPECT_EQ(w.stats().syncs, 4u);  // ack ⇒ durable: one sync per append
  }
  {
    TempDir td;
    WalOptions opt;
    opt.fsync = FsyncPolicy::kOff;
    Wal w(td.path, opt, nullptr);
    for (std::uint64_t s = 1; s <= 4; ++s) w.append(s, false, batch(s));
    EXPECT_EQ(w.stats().syncs, 0u);
    w.sync();  // the shutdown path still forces one
    EXPECT_EQ(w.stats().syncs, 1u);
  }
  {
    TempDir td;
    WalOptions opt;
    opt.fsync = FsyncPolicy::kInterval;
    opt.fsync_interval_ms = 3'600'000;  // never within this test
    Wal w(td.path, opt, nullptr);
    for (std::uint64_t s = 1; s <= 4; ++s) w.append(s, false, batch(s));
    EXPECT_EQ(w.stats().syncs, 0u);
  }
}

// The real thing: a child process appends with fsync=always and is
// SIGKILLed mid-stream; the parent must recover a contiguous prefix at
// least as long as the appends the child had confirmed to it.
TEST(Wal, SigkillLeavesContiguousDurablePrefix) {
  TempDir td;
  int pipefd[2];
  ASSERT_EQ(::pipe(pipefd), 0);
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: no gtest, no stdio cleanup — append and report, then die.
    ::close(pipefd[0]);
    try {
      WalOptions opt;
      opt.fsync = FsyncPolicy::kAlways;
      Wal w(td.path, opt, nullptr);
      for (std::uint64_t seq = 1; seq <= 100000; ++seq) {
        w.append(seq, false, batch(seq));
        const std::uint8_t b = 1;
        if (::write(pipefd[1], &b, 1) != 1) break;
      }
    } catch (...) {
    }
    ::_exit(0);
  }
  ::close(pipefd[1]);
  std::uint64_t confirmed = 0;
  std::uint8_t b;
  while (confirmed < 8 && ::read(pipefd[0], &b, 1) == 1) ++confirmed;
  ASSERT_GE(confirmed, 8u) << "child died before appending";
  ASSERT_EQ(::kill(pid, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ::close(pipefd[0]);

  const auto r = reopen(td.path);
  // Every append the child confirmed was fsynced first, so it survived
  // the SIGKILL; and recovery yields seqs 1..m with no gaps.
  EXPECT_GE(r.records.size(), confirmed);
  for (std::size_t i = 0; i < r.records.size(); ++i) {
    EXPECT_EQ(r.records[i].seq, i + 1);
  }
  EXPECT_EQ(r.last_seq, r.records.size());
}

// --- update-journal error satellites (DESIGN.md §13/§14) ---------------

TEST(UpdateJournal, ParseErrorNamesBatchAndLine) {
  try {
    serve::parse_update_journal("w 1 2 3\ncommit\nbogus 4 5\n");
    FAIL() << "malformed journal should throw";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("batch 2"), std::string::npos) << what;
    EXPECT_NE(what.find("line 3"), std::string::npos) << what;
  }
}

TEST(UpdateJournal, OpenFailureIsTyped) {
  TempDir td;
  try {
    serve::load_update_journal(td.sub("no-such-journal"));
    FAIL() << "missing journal should throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("cannot open update journal"),
              std::string::npos)
        << e.what();
  }
}

TEST(UpdateJournal, ReadErrorIsNeverMistakenForEof) {
  // fread() on a directory fd fails with EISDIR after a successful
  // fopen — the classic shape of a mid-read I/O error.
  TempDir td;
  try {
    serve::load_update_journal(td.path);
    FAIL() << "reading a directory should throw";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("not EOF"), std::string::npos) << what;
  }
}

}  // namespace
}  // namespace nors
