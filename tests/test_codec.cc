#include <gtest/gtest.h>

#include "core/serialize.h"
#include "graph/generators.h"
#include "graph/shortest_paths.h"
#include "treeroute/codec.h"

namespace nors {
namespace {

using graph::Dist;
using graph::Vertex;

bool labels_equal(const treeroute::TzTreeScheme::Label& a,
                  const treeroute::TzTreeScheme::Label& b) {
  return a.a == b.a && a.light == b.light;
}

TEST(Codec, TzLabelRoundTrip) {
  treeroute::TzTreeScheme::Label label;
  label.a = 42;
  label.light = {{3, 1}, {17, 0}, {99, 5}};
  util::WordWriter w;
  treeroute::encode(label, w);
  // Exact size contract: words() + overhead.
  EXPECT_EQ(static_cast<std::int64_t>(w.word_count()),
            label.words() + treeroute::kLabelOverheadWords);
  util::WordReader r(w.bytes());
  const auto back = treeroute::decode_label(r);
  EXPECT_TRUE(r.exhausted());
  EXPECT_TRUE(labels_equal(label, back));
}

TEST(Codec, TzTableRoundTrip) {
  treeroute::TzTreeScheme::Table t;
  t.self = 7;
  t.parent = 3;
  t.parent_port = 2;
  t.heavy = 11;
  t.heavy_port = 0;
  t.a = 5;
  t.b = 19;
  util::WordWriter w;
  treeroute::encode(t, w);
  EXPECT_EQ(static_cast<std::int64_t>(w.word_count()), t.words());
  util::WordReader r(w.bytes());
  const auto back = treeroute::decode_table(7, r);
  EXPECT_EQ(back.self, 7);
  EXPECT_EQ(back.parent, t.parent);
  EXPECT_EQ(back.parent_port, t.parent_port);
  EXPECT_EQ(back.heavy, t.heavy);
  EXPECT_EQ(back.heavy_port, t.heavy_port);
  EXPECT_EQ(back.a, t.a);
  EXPECT_EQ(back.b, t.b);
}

TEST(Codec, DecodeErrorsAreLoud) {
  util::WordWriter w;
  w.put(1);
  auto bytes = w.bytes();
  bytes.push_back(0);  // misaligned
  EXPECT_THROW(util::WordReader bad(bytes), std::logic_error);

  util::WordReader r(w.bytes());
  r.get();
  EXPECT_THROW(r.get(), std::logic_error);  // past end
}

class SchemeCodecTest : public ::testing::TestWithParam<int> {};

TEST_P(SchemeCodecTest, VertexLabelsRoundTripWithExactSizes) {
  const int k = GetParam();
  util::Rng rng(1200 + static_cast<std::uint64_t>(k));
  const auto g =
      graph::connected_gnm(110, 280, graph::WeightSpec::uniform(1, 14), rng);
  core::SchemeParams p;
  p.k = k;
  p.seed = 9;
  const auto s = core::RoutingScheme::build(g, p);

  for (Vertex v = 0; v < g.n(); v += 7) {
    const auto bytes = core::encode_vertex_label(s, v);
    // Byte size == 8 · (label_words + documented overhead): the words()
    // accounting is exact, not an estimate.
    EXPECT_EQ(static_cast<std::int64_t>(bytes.size()),
              8 * (s.label_words(v) + core::vertex_label_overhead_words(s, v)))
        << "v=" << v;
    const auto dec = core::decode_vertex_label(bytes);
    ASSERT_EQ(static_cast<int>(dec.levels.size()), k);
    for (int i = 0; i < k; ++i) {
      const auto& le = s.label_entry(v, i);
      EXPECT_EQ(dec.levels[static_cast<std::size_t>(i)].pivot, le.pivot);
      EXPECT_EQ(dec.levels[static_cast<std::size_t>(i)].pivot_dist,
                le.pivot_dist);
      EXPECT_EQ(dec.levels[static_cast<std::size_t>(i)].member, le.member);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, SchemeCodecTest, ::testing::Values(2, 3, 4));

TEST(Codec, RoutingFromDecodedLabelMatchesInMemoryRoute) {
  // The decoded label is a complete packet header: routing with it hop by
  // hop must reproduce route() exactly.
  util::Rng rng(1301);
  const auto g =
      graph::connected_gnm(120, 300, graph::WeightSpec::uniform(1, 10), rng);
  core::SchemeParams p;
  p.k = 3;
  p.seed = 21;
  p.label_trick = false;  // route decisions purely from (label, tables)
  const auto s = core::RoutingScheme::build(g, p);

  for (Vertex u = 0; u < g.n(); u += 11) {
    for (Vertex v = 4; v < g.n(); v += 13) {
      if (u == v) continue;
      const auto expect = s.route(u, v);
      ASSERT_TRUE(expect.ok);
      const auto dec = core::decode_vertex_label(core::encode_vertex_label(s, v));
      // Find-tree from the decoded header.
      const treeroute::DistTreeScheme* tree = nullptr;
      const treeroute::DistTreeScheme::VLabel* dest = nullptr;
      for (int i = 0; i < p.k; ++i) {
        const auto& e = dec.levels[static_cast<std::size_t>(i)];
        if (!e.member) continue;
        const int idx = s.tree_index(e.pivot);
        if (idx < 0) continue;
        const auto& scheme_tree = s.tree_scheme(static_cast<std::size_t>(idx));
        if (!scheme_tree.contains(u)) continue;
        tree = &scheme_tree;
        dest = &e.tree_label;
        break;
      }
      ASSERT_NE(tree, nullptr);
      Dist len = 0;
      Vertex x = u;
      int guard = 0;
      while (x != v) {
        const auto port = tree->next_hop(x, *dest);
        ASSERT_NE(port, graph::kNoPort);
        len += g.edge(x, port).w;
        x = g.edge(x, port).to;
        ASSERT_LE(++guard, 4 * g.n());
      }
      EXPECT_EQ(len, expect.length) << "u=" << u << " v=" << v;
    }
  }
}

}  // namespace
}  // namespace nors
