#include <gtest/gtest.h>

#include <limits>

#include "core/serialize.h"
#include "graph/generators.h"
#include "graph/shortest_paths.h"
#include "treeroute/codec.h"

namespace nors {
namespace {

using graph::Dist;
using graph::Vertex;

bool labels_equal(const treeroute::TzTreeScheme::Label& a,
                  const treeroute::TzTreeScheme::Label& b) {
  return a.a == b.a && a.light == b.light;
}

TEST(Codec, TzLabelRoundTrip) {
  treeroute::TzTreeScheme::Label label;
  label.a = 42;
  label.light = {{3, 1}, {17, 0}, {99, 5}};
  util::WordWriter w;
  treeroute::encode(label, w);
  // Exact size contract: words() + overhead.
  EXPECT_EQ(static_cast<std::int64_t>(w.word_count()),
            label.words() + treeroute::kLabelOverheadWords);
  util::WordReader r(w.bytes());
  const auto back = treeroute::decode_label(r);
  EXPECT_TRUE(r.exhausted());
  EXPECT_TRUE(labels_equal(label, back));
}

TEST(Codec, TzTableRoundTrip) {
  treeroute::TzTreeScheme::Table t;
  t.self = 7;
  t.parent = 3;
  t.parent_port = 2;
  t.heavy = 11;
  t.heavy_port = 0;
  t.a = 5;
  t.b = 19;
  util::WordWriter w;
  treeroute::encode(t, w);
  EXPECT_EQ(static_cast<std::int64_t>(w.word_count()), t.words());
  util::WordReader r(w.bytes());
  const auto back = treeroute::decode_table(7, r);
  EXPECT_EQ(back.self, 7);
  EXPECT_EQ(back.parent, t.parent);
  EXPECT_EQ(back.parent_port, t.parent_port);
  EXPECT_EQ(back.heavy, t.heavy);
  EXPECT_EQ(back.heavy_port, t.heavy_port);
  EXPECT_EQ(back.a, t.a);
  EXPECT_EQ(back.b, t.b);
}

TEST(Codec, DecodeErrorsAreLoud) {
  util::WordWriter w;
  w.put(1);
  auto bytes = w.bytes();
  bytes.push_back(0);  // misaligned
  EXPECT_THROW(util::WordReader bad(bytes), std::logic_error);

  util::WordReader r(w.bytes());
  r.get();
  EXPECT_THROW(r.get(), std::logic_error);  // past end
}

class SchemeCodecTest : public ::testing::TestWithParam<int> {};

TEST_P(SchemeCodecTest, VertexLabelsRoundTripWithExactSizes) {
  const int k = GetParam();
  util::Rng rng(1200 + static_cast<std::uint64_t>(k));
  const auto g =
      graph::connected_gnm(110, 280, graph::WeightSpec::uniform(1, 14), rng);
  core::SchemeParams p;
  p.k = k;
  p.seed = 9;
  const auto s = core::RoutingScheme::build(g, p);

  for (Vertex v = 0; v < g.n(); v += 7) {
    const auto bytes = core::encode_vertex_label(s, v);
    // Byte size == 8 · (label_words + documented overhead): the words()
    // accounting is exact, not an estimate.
    EXPECT_EQ(static_cast<std::int64_t>(bytes.size()),
              8 * (s.label_words(v) + core::vertex_label_overhead_words(s, v)))
        << "v=" << v;
    const auto dec = core::decode_vertex_label(bytes);
    ASSERT_EQ(static_cast<int>(dec.levels.size()), k);
    for (int i = 0; i < k; ++i) {
      const auto& le = s.label_entry(v, i);
      EXPECT_EQ(dec.levels[static_cast<std::size_t>(i)].pivot, le.pivot);
      EXPECT_EQ(dec.levels[static_cast<std::size_t>(i)].pivot_dist,
                le.pivot_dist);
      EXPECT_EQ(dec.levels[static_cast<std::size_t>(i)].member, le.member);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, SchemeCodecTest, ::testing::Values(2, 3, 4));

TEST(Codec, RoutingFromDecodedLabelMatchesInMemoryRoute) {
  // The decoded label is a complete packet header: routing with it hop by
  // hop must reproduce route() exactly.
  util::Rng rng(1301);
  const auto g =
      graph::connected_gnm(120, 300, graph::WeightSpec::uniform(1, 10), rng);
  core::SchemeParams p;
  p.k = 3;
  p.seed = 21;
  p.label_trick = false;  // route decisions purely from (label, tables)
  const auto s = core::RoutingScheme::build(g, p);

  for (Vertex u = 0; u < g.n(); u += 11) {
    for (Vertex v = 4; v < g.n(); v += 13) {
      if (u == v) continue;
      const auto expect = s.route(u, v);
      ASSERT_TRUE(expect.ok);
      const auto dec = core::decode_vertex_label(core::encode_vertex_label(s, v));
      // Find-tree from the decoded header.
      const treeroute::DistTreeScheme* tree = nullptr;
      const treeroute::DistTreeScheme::VLabel* dest = nullptr;
      for (int i = 0; i < p.k; ++i) {
        const auto& e = dec.levels[static_cast<std::size_t>(i)];
        if (!e.member) continue;
        const int idx = s.tree_index(e.pivot);
        if (idx < 0) continue;
        const auto& scheme_tree = s.tree_scheme(static_cast<std::size_t>(idx));
        if (!scheme_tree.contains(u)) continue;
        tree = &scheme_tree;
        dest = &e.tree_label;
        break;
      }
      ASSERT_NE(tree, nullptr);
      Dist len = 0;
      Vertex x = u;
      int guard = 0;
      while (x != v) {
        const auto port = tree->next_hop(x, *dest);
        ASSERT_NE(port, graph::kNoPort);
        len += g.edge(x, port).w;
        x = g.edge(x, port).to;
        ASSERT_LE(++guard, 4 * g.n());
      }
      EXPECT_EQ(len, expect.length) << "u=" << u << " v=" << v;
    }
  }
}

// ---- varint / zigzag (frozen-table v3 port columns, DESIGN.md §10) ------
// These pin the wire bytes, not just the round-trip: the v3 image format
// depends on this exact canonical encoding staying frozen forever.

std::uint64_t decode_one(const std::vector<std::uint8_t>& bytes) {
  std::uint64_t x = 0;
  const std::uint8_t* p =
      core::get_uvarint(bytes.data(), bytes.data() + bytes.size(), x);
  EXPECT_EQ(p, bytes.data() + bytes.size()) << "trailing bytes unread";
  return x;
}

TEST(Varint, PinnedByteSequences) {
  // Exact LEB128 bytes for representative values — a codec change that
  // round-trips but shifts bytes must fail here, not in a format bump.
  const struct {
    std::uint64_t value;
    std::vector<std::uint8_t> bytes;
  } cases[] = {
      {0, {0x00}},
      {1, {0x01}},
      {127, {0x7f}},
      {128, {0x80, 0x01}},
      {300, {0xac, 0x02}},
      {16383, {0xff, 0x7f}},
      {16384, {0x80, 0x80, 0x01}},
      {0xffffffffull, {0xff, 0xff, 0xff, 0xff, 0x0f}},
      {0xffffffffffffffffull,
       {0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}},
  };
  for (const auto& c : cases) {
    std::vector<std::uint8_t> out;
    core::put_uvarint(out, c.value);
    EXPECT_EQ(out, c.bytes) << "value " << c.value;
    EXPECT_EQ(decode_one(c.bytes), c.value);
  }
}

TEST(Varint, RoundTripSweep) {
  // Dense sweep around every 7-bit boundary plus random 64-bit values.
  util::Rng rng(9001);
  std::vector<std::uint64_t> values;
  for (int shift = 0; shift < 64; shift += 7) {
    const std::uint64_t base = 1ull << shift;
    for (std::int64_t d = -2; d <= 2; ++d) {
      values.push_back(base + static_cast<std::uint64_t>(d));
    }
  }
  for (int i = 0; i < 200; ++i) {
    values.push_back(rng.next() >> static_cast<int>(rng.uniform(64)));
  }
  std::vector<std::uint8_t> buf;
  for (const auto v : values) core::put_uvarint(buf, v);
  const std::uint8_t* p = buf.data();
  const std::uint8_t* end = buf.data() + buf.size();
  for (const auto v : values) {
    std::uint64_t back = 0;
    p = core::get_uvarint(p, end, back);
    EXPECT_EQ(back, v);
  }
  EXPECT_EQ(p, end);
}

TEST(Varint, RejectsTruncatedOverlongAndOverflowing) {
  std::uint64_t x = 0;
  auto reject = [&](std::vector<std::uint8_t> bytes) {
    EXPECT_THROW(
        core::get_uvarint(bytes.data(), bytes.data() + bytes.size(), x),
        std::logic_error);
  };
  reject({});                  // empty input
  reject({0x80});              // continuation bit with no next byte
  reject({0xff, 0xff});        // truncated mid-value
  reject({0x80, 0x00});        // over-long zero (canonical form is {0x00})
  reject({0xff, 0x00});        // over-long 127
  reject({0x80, 0x80, 0x00});  // over-long with longer tail
  // 11 bytes: too long for any 64-bit value.
  reject({0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01});
  // 10 bytes but the top byte carries more than the 1 remaining bit.
  reject({0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x02});
}

TEST(Varint, ZigzagMapsSmallMagnitudesToSmallCodes) {
  EXPECT_EQ(core::zigzag(0), 0u);
  EXPECT_EQ(core::zigzag(-1), 1u);
  EXPECT_EQ(core::zigzag(1), 2u);
  EXPECT_EQ(core::zigzag(-2), 3u);
  EXPECT_EQ(core::zigzag(2), 4u);
  EXPECT_EQ(core::zigzag(std::numeric_limits<std::int64_t>::min()),
            std::numeric_limits<std::uint64_t>::max());
  util::Rng rng(9002);
  for (int i = 0; i < 500; ++i) {
    const auto v = static_cast<std::int64_t>(rng.next());
    EXPECT_EQ(core::unzigzag(core::zigzag(v)), v);
  }
}

}  // namespace
}  // namespace nors
