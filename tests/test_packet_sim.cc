#include <gtest/gtest.h>

#include "congest/message.h"
#include "core/packet_sim.h"
#include "graph/generators.h"
#include "graph/shortest_paths.h"

namespace nors {
namespace {

using graph::Vertex;

TEST(PacketSim, DeliversWithSchemeRouteGeometry) {
  util::Rng rng(801);
  const auto g =
      graph::connected_gnm(100, 250, graph::WeightSpec::uniform(1, 12), rng);
  core::SchemeParams p;
  p.k = 3;
  p.seed = 4;
  const auto s = core::RoutingScheme::build(g, p);
  for (Vertex u = 0; u < g.n(); u += 9) {
    for (Vertex v = 3; v < g.n(); v += 13) {
      if (u == v) continue;
      const auto d = core::simulate_packet(g, s, u, v);
      const auto r = s.route(u, v);
      ASSERT_TRUE(d.ok) << "u=" << u << " v=" << v;
      // The simulated packet walks exactly the path route() computes.
      EXPECT_EQ(d.hops, r.hops);
      EXPECT_EQ(d.length, r.length);
      // Per-hop latency = header words / message words, so total delivery
      // rounds are hops · ceil(header/words) (±1 for the send round).
      const std::int64_t per_hop =
          (d.header_words + congest::kMaxWords - 1) / congest::kMaxWords;
      EXPECT_LE(d.rounds, (per_hop + 1) * (r.hops + 1) + 2);
      EXPECT_GE(d.rounds, static_cast<std::int64_t>(r.hops));
    }
  }
}

TEST(PacketSim, SelfDeliveryIsFree) {
  util::Rng rng(802);
  const auto g = graph::connected_gnm(40, 100, graph::WeightSpec::unit(), rng);
  core::SchemeParams p;
  p.k = 2;
  p.seed = 5;
  const auto s = core::RoutingScheme::build(g, p);
  const auto d = core::simulate_packet(g, s, 7, 7);
  EXPECT_TRUE(d.ok);
  EXPECT_EQ(d.hops, 0);
  EXPECT_EQ(d.rounds, 0);
}

TEST(PacketSim, HeaderSizeIsLabelSize) {
  util::Rng rng(803);
  const auto g = graph::connected_gnm(120, 300, graph::WeightSpec::uniform(1, 9), rng);
  core::SchemeParams p;
  p.k = 4;
  p.seed = 6;
  const auto s = core::RoutingScheme::build(g, p);
  const auto d = core::simulate_packet(g, s, 0, 77);
  EXPECT_EQ(d.header_words, 2 + s.label_words(77));
}

}  // namespace
}  // namespace nors
