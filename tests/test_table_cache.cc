#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "graph/generators.h"
#include "serve/frozen.h"
#include "serve/table_cache.h"

// Direct tests of the two-way set-associative TableCache — until now it
// was only covered indirectly through RouteServer equivalence. The batch
// engine calls the probe()/insert() halves separately, so aliasing and
// eviction bugs would corrupt routes through a *stale index*, which the
// engine trusts without re-searching; these tests pin the contract.

namespace nors {
namespace {

using graph::Vertex;

serve::FrozenScheme make_frozen(int n, int k, std::uint64_t seed) {
  util::Rng rng(seed);
  const auto g = graph::connected_gnm(
      n, 3LL * n, graph::WeightSpec::uniform(1, 16), rng);
  core::SchemeParams p;
  p.k = k;
  p.seed = seed + 1;
  return serve::FrozenScheme::freeze(core::RoutingScheme::build(g, p));
}

TEST(TableCache, LookupAnswersMatchDirectSearchForEveryPair) {
  // Tiny cache (2 sets = 4 entries) over every (vertex, tree) pair: heavy
  // set aliasing, constant eviction — every answer must still equal the
  // uncached slab search, including the "not a member" nullptr case.
  const auto fs = make_frozen(60, 2, 3100);
  serve::TableCache cache(fs, 4);
  std::int64_t hits = 0, misses = 0;
  for (int pass = 0; pass < 2; ++pass) {
    for (Vertex x = 0; x < fs.n(); ++x) {
      for (std::int32_t t = 0; t < fs.num_trees(); ++t) {
        const auto* got = cache.lookup(x, t, hits, misses);
        const auto* expect = fs.table_slot(x, t);
        EXPECT_EQ(got, expect) << "x=" << x << " tree=" << t;
      }
    }
  }
  EXPECT_EQ(hits + misses,
            2ll * fs.n() * fs.num_trees());
}

TEST(TableCache, ProbeInsertRoundTripAndEvictionOrder) {
  const auto fs = make_frozen(40, 2, 3200);
  serve::TableCache cache(fs, 64);
  std::int32_t idx = -7;

  // Cold cache: nothing probes as present.
  EXPECT_FALSE(cache.probe(5, 0, idx));

  // insert() publishes; probe() returns the exact index, including the -1
  // "not a member" sentinel (a hit, not a miss!).
  cache.insert(5, 0, 123);
  EXPECT_TRUE(cache.probe(5, 0, idx));
  EXPECT_EQ(idx, 123);
  cache.insert(6, 0, -1);
  EXPECT_TRUE(cache.probe(6, 0, idx));
  EXPECT_EQ(idx, -1);

  // A re-insert overwrites rather than duplicating.
  cache.insert(5, 0, 456);
  EXPECT_TRUE(cache.probe(5, 0, idx));
  EXPECT_EQ(idx, 456);
}

TEST(TableCache, TwoWaySetKeepsBothRecentKeysAndEvictsTheLru) {
  // A direct-mapped cache would thrash on two aliasing keys; two ways must
  // hold both. With a single set (entries=2) *every* key aliases, so the
  // set behavior is fully observable: after inserting A, B, both hit;
  // after C, the LRU (A, not refreshed) is gone, B and C remain.
  const auto fs = make_frozen(40, 2, 3300);
  serve::TableCache cache(fs, 2);
  std::int32_t idx = 0;
  cache.insert(1, 0, 10);  // A
  cache.insert(2, 0, 20);  // B — A demoted to way 1
  EXPECT_TRUE(cache.probe(1, 0, idx));
  EXPECT_EQ(idx, 10);  // way-1 hit promotes A back to MRU
  EXPECT_TRUE(cache.probe(2, 0, idx));
  EXPECT_EQ(idx, 20);
  cache.insert(3, 0, 30);  // C evicts the LRU
  EXPECT_TRUE(cache.probe(3, 0, idx));
  EXPECT_TRUE(cache.probe(2, 0, idx));  // B was MRU-adjacent, survives
  EXPECT_FALSE(cache.probe(1, 0, idx));  // A is gone
}

TEST(TableCache, ZipfianStreamHitRateAccountingIsExact) {
  // Seeded Zipf-ish stream (rank ~ floor(exp(u))) over (vertex, tree)
  // pairs: hits + misses must equal the stream length, the re-reference
  // heavy head must push the hit rate well past a uniform stream's, and
  // every answer must stay equal to the direct search.
  const auto fs = make_frozen(80, 3, 3400);
  serve::TableCache cache(fs, 256);
  util::Rng rng(3401);
  const std::int64_t kStream = 20000;
  std::int64_t hits = 0, misses = 0;
  // Skewed rank on both axes: most draws land on a few hot (vertex, tree)
  // pairs, like real traffic concentrating on top-level trees.
  auto zipfish = [&](int limit) {
    const double u = static_cast<double>(rng.uniform(1000000)) / 1000000.0;
    return static_cast<std::int32_t>(std::min<double>(
        std::floor(std::exp(u * std::log(limit))) - 1, limit - 1));
  };
  for (std::int64_t i = 0; i < kStream; ++i) {
    const auto rank = static_cast<Vertex>(zipfish(fs.n()));
    const auto tree = zipfish(fs.num_trees());
    const auto* got = cache.lookup(rank, tree, hits, misses);
    EXPECT_EQ(got, fs.table_slot(rank, tree));
  }
  EXPECT_EQ(hits + misses, kStream);
  EXPECT_GT(hits, kStream / 4) << "skewed stream should re-reference";
  EXPECT_GT(misses, 0) << "tail must overflow a 256-entry cache";
}

}  // namespace
}  // namespace nors
