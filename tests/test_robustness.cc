#include <gtest/gtest.h>

#include "core/distance_estimation.h"
#include "core/scheme.h"
#include "graph/generators.h"
#include "graph/shortest_paths.h"

namespace nors {
namespace {

using graph::Dist;
using graph::Vertex;

// ---- Failure injection: the whp events of Claim 3 are driven by the
// "4·ln n" constants. Shrinking them makes hop bounds too small, so the
// hitting events can fail — the construction must survive via pruning and
// coverage retries, and routing must still succeed for every pair (the
// stretch *bound* may no longer hold; correctness must).

class FailureInjection : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FailureInjection, RoutingSurvivesWeakHittingConstants) {
  util::Rng rng(GetParam());
  const auto g =
      graph::connected_gnm(150, 380, graph::WeightSpec::uniform(1, 25), rng);
  core::SchemeParams p;
  p.k = 4;
  p.seed = GetParam();
  p.hit_constant = 0.25;  // far below the paper's 4: hitting often fails
  p.max_b_retries = 8;
  const auto s = core::RoutingScheme::build(g, p);
  // The construction may have pruned or retried — but every pair routes.
  for (Vertex u = 0; u < g.n(); u += 5) {
    const auto sp = graph::dijkstra(g, u);
    for (Vertex v = 2; v < g.n(); v += 7) {
      if (u == v) continue;
      const auto r = s.route(u, v);
      ASSERT_TRUE(r.ok) << "u=" << u << " v=" << v;
      EXPECT_GE(r.length, sp.dist[static_cast<std::size_t>(v)]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FailureInjection,
                         ::testing::Values(1001, 1002, 1003, 1004, 1005));

TEST(Robustness, RetryEnlargesHopBoundUntilCovered) {
  // A high-hop-diameter graph with a tiny hit constant forces at least one
  // coverage retry; the builder must converge and report it.
  util::Rng rng(1011);
  const auto g = graph::lollipop(150, 12, graph::WeightSpec::unit(), rng);
  core::SchemeParams p;
  p.k = 3;
  p.seed = 19;
  p.hit_constant = 0.05;
  p.max_b_retries = 10;
  const auto s = core::RoutingScheme::build(g, p);
  for (Vertex u = 0; u < g.n(); u += 11) {
    for (Vertex v = 1; v < g.n(); v += 13) {
      EXPECT_TRUE(s.route(u, v).ok);
    }
  }
  // With B cut 80x below the paper value on a diameter-~140 graph, the
  // builder must have retried (B starts far below the hop diameter).
  EXPECT_GT(s.coverage_retries(), 0);
}

TEST(Robustness, RetryDoublesHopBoundOnPathGraph) {
  // Second deterministic adversarial instance (beyond the lollipop above):
  // a pure path has hop diameter n-1, so a starved initial B cannot let the
  // V'-source detection reach everyone and top-level coverage fails until
  // the retry loop has doubled B enough times. This pins the doubled-B
  // branch structurally — not probabilistically — and checks the repaired
  // scheme still routes every sampled pair over real edges.
  util::Rng rng(1013);
  const auto g = graph::path(180, graph::WeightSpec::unit(), rng);
  core::SchemeParams p;
  p.k = 2;
  p.seed = 23;
  p.hit_constant = 0.02;
  p.max_b_retries = 12;
  const auto s = core::RoutingScheme::build(g, p);
  EXPECT_GE(s.coverage_retries(), 2);
  for (Vertex u = 0; u < g.n(); u += 13) {
    const auto sp = graph::dijkstra(g, u);
    for (Vertex v = 1; v < g.n(); v += 17) {
      if (u == v) continue;
      const auto r = s.route(u, v);
      ASSERT_TRUE(r.ok) << "u=" << u << " v=" << v;
      EXPECT_GE(r.length, sp.dist[static_cast<std::size_t>(v)]);
    }
  }
}

TEST(Robustness, PaperConstantsNeedNoRepair) {
  // Regression guard for the Phase-2 min-semantics fix: across seeds and
  // weight scales, zero pruned members and zero retries.
  for (std::uint64_t seed : {21u, 22u, 23u}) {
    for (graph::Weight w : {graph::Weight{10}, graph::Weight{50000}}) {
      util::Rng rng(seed);
      const auto g =
          graph::connected_gnm(130, 320, graph::WeightSpec::uniform(1, w), rng);
      core::SchemeParams p;
      p.k = 3;
      p.seed = seed;
      p.eps = util::Epsilon(1, 4);  // coarse eps stresses the inequalities
      const auto s = core::RoutingScheme::build(g, p);
      EXPECT_EQ(s.pruned_members(), 0) << "seed=" << seed << " w=" << w;
      EXPECT_EQ(s.coverage_retries(), 0) << "seed=" << seed << " w=" << w;
    }
  }
}

// ---- CONGEST capacity ablation: more bandwidth per edge can only speed up
// the simulated phases.

TEST(Robustness, HigherEdgeCapacityNeverSlowsSimulatedPhases) {
  util::Rng rng(1021);
  const auto g =
      graph::connected_gnm(140, 350, graph::WeightSpec::uniform(1, 15), rng);
  std::int64_t prev = -1;
  for (int cap : {1, 2, 4}) {
    core::SchemeParams p;
    p.k = 3;
    p.seed = 33;
    p.edge_capacity = cap;
    const auto s = core::RoutingScheme::build(g, p);
    const std::int64_t sim = s.ledger().simulated_rounds();
    if (prev >= 0) {
      EXPECT_LE(sim, prev) << "cap=" << cap;
    }
    prev = sim;
  }
}

// ---- Odd parameter shapes.

TEST(Robustness, LargeKOnSmallGraph) {
  util::Rng rng(1031);
  const auto g = graph::connected_gnm(64, 160, graph::WeightSpec::uniform(1, 9), rng);
  core::SchemeParams p;
  p.k = 8;  // k close to log n
  p.seed = 44;
  const auto s = core::RoutingScheme::build(g, p);
  const auto de = core::DistanceEstimation::build(s);
  for (Vertex u = 0; u < g.n(); u += 3) {
    const auto sp = graph::dijkstra(g, u);
    for (Vertex v = 1; v < g.n(); v += 5) {
      if (u == v) continue;
      EXPECT_TRUE(s.route(u, v).ok);
      EXPECT_GE(de.estimate(u, v).estimate,
                sp.dist[static_cast<std::size_t>(v)]);
    }
  }
}

TEST(Robustness, TinyGraphs) {
  for (int n : {2, 3, 5}) {
    util::Rng rng(1041 + static_cast<std::uint64_t>(n));
    const auto g = graph::connected_gnm(n, 1, graph::WeightSpec::unit(), rng);
    core::SchemeParams p;
    p.k = 2;
    p.seed = 3;
    const auto s = core::RoutingScheme::build(g, p);
    for (Vertex u = 0; u < n; ++u) {
      for (Vertex v = 0; v < n; ++v) {
        EXPECT_TRUE(s.route(u, v).ok);
      }
    }
  }
}

}  // namespace
}  // namespace nors
