// Durability + replication tests (DESIGN.md §14): the WAL wired through
// the serving daemon, checkpoint compaction, the kSubscribe/kRepl stream,
// read-only replicas that follow a primary, and client endpoint failover.
// The recurring assertion shape: two daemons (a rebooted one and its
// never-crashed twin, or a replica and its primary) must answer every
// route query bit-identically.

#include <gtest/gtest.h>

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/scheme.h"
#include "graph/generators.h"
#include "net/client.h"
#include "net/server.h"
#include "net/wire.h"
#include "serve/delta.h"
#include "serve/frozen.h"
#include "util/failpoint.h"
#include "util/random.h"

namespace nors {
namespace {

using graph::Vertex;
using serve::Decision;
using serve::EdgeUpdate;
using serve::Query;

struct FailpointGuard {
  explicit FailpointGuard(const std::string& spec) {
    util::Failpoints::configure(spec);
  }
  ~FailpointGuard() { util::Failpoints::clear(); }
};

void remove_tree(const std::string& path) {
  if (DIR* d = ::opendir(path.c_str())) {
    while (struct dirent* e = ::readdir(d)) {
      const std::string name = e->d_name;
      if (name == "." || name == "..") continue;
      const std::string child = path + "/" + name;
      if (::unlink(child.c_str()) != 0) remove_tree(child);
    }
    ::closedir(d);
    ::rmdir(path.c_str());
  } else {
    ::unlink(path.c_str());
  }
}

struct TempDir {
  std::string path;
  TempDir() {
    char tmpl[] = "/tmp/nors_repl_XXXXXX";
    char* p = ::mkdtemp(tmpl);
    if (p == nullptr) throw std::runtime_error("mkdtemp failed");
    path = p;
  }
  ~TempDir() { remove_tree(path); }
  std::string sub(const std::string& name) const { return path + "/" + name; }
};

graph::WeightedGraph test_graph(int n, std::uint64_t seed) {
  util::Rng rng(seed);
  return graph::connected_gnm(n, 3LL * n, graph::WeightSpec::uniform(1, 16),
                              rng);
}

serve::FrozenScheme build_frozen(const graph::WeightedGraph& g, int k,
                                 std::uint64_t seed) {
  core::SchemeParams p;
  p.k = k;
  p.seed = seed;
  return serve::FrozenScheme::freeze(core::RoutingScheme::build(g, p));
}

std::vector<Query> random_queries(int n, std::size_t count,
                                  std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<Query> qs;
  qs.reserve(count);
  while (qs.size() < count) {
    const auto u = static_cast<Vertex>(
        rng.uniform(static_cast<std::uint64_t>(n)));
    const auto v = static_cast<Vertex>(
        rng.uniform(static_cast<std::uint64_t>(n)));
    if (u != v) qs.push_back({u, v});
  }
  return qs;
}

std::vector<std::pair<Vertex, Vertex>> all_edges(
    const graph::WeightedGraph& g) {
  std::vector<std::pair<Vertex, Vertex>> out;
  for (Vertex u = 0; u < g.n(); ++u) {
    for (const auto& he : g.neighbors(u)) {
      if (he.to > u) out.push_back({u, he.to});
    }
  }
  return out;
}

/// A batch of real-edge events: mostly reweights, some failures.
std::vector<EdgeUpdate> edge_batch(
    const std::vector<std::pair<Vertex, Vertex>>& edges, util::Rng& rng,
    std::size_t count) {
  std::vector<EdgeUpdate> b;
  for (std::size_t i = 0; i < count; ++i) {
    const auto& [u, v] = edges[rng.uniform(edges.size())];
    if (rng.uniform(4) == 0) {
      b.push_back(EdgeUpdate::fail(u, v));
    } else {
      b.push_back(EdgeUpdate::weight(
          u, v, static_cast<graph::Dist>(1 + rng.uniform(30))));
    }
  }
  return b;
}

void expect_decisions_identical(const std::vector<Decision>& a,
                                const std::vector<Decision>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].ok, b[i].ok) << "query " << i;
    ASSERT_EQ(a[i].length, b[i].length) << "query " << i;
    ASSERT_EQ(a[i].hops, b[i].hops) << "query " << i;
    ASSERT_EQ(a[i].via_trick, b[i].via_trick) << "query " << i;
    ASSERT_EQ(a[i].tree_level, b[i].tree_level) << "query " << i;
    ASSERT_EQ(a[i].tree_root, b[i].tree_root) << "query " << i;
  }
}

template <typename Pred>
bool wait_until(Pred p, int timeout_ms = 15000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (p()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return p();
}

// ---- the subscription stream ------------------------------------------

TEST(Replication, SubscribeStreamsEveryAppliedBatch) {
  const auto g = test_graph(140, 41);
  net::Server server(build_frozen(g, 3, 7), {});
  const auto edges = all_edges(g);
  util::Rng rng(43);

  net::ClientOptions copt;
  copt.port = server.port();
  copt.request_timeout_ms = 10000;
  net::Client sub(copt);
  EXPECT_EQ(sub.subscribe(0), 0u);
  EXPECT_TRUE(wait_until([&] { return server.stats().subscribers == 1; }));

  const auto b1 = edge_batch(edges, rng, 6);
  const auto ack = server.apply_updates(b1);
  EXPECT_EQ(ack.seq, 1u);

  const auto f = sub.recv_frame();
  ASSERT_EQ(f.type, net::FrameType::kRepl);
  const auto rf = net::decode_repl(f.body);
  EXPECT_EQ(rf.seq, 1u);
  EXPECT_EQ(rf.head_seq, 1u);
  EXPECT_FALSE(rf.snapshot);
  EXPECT_FALSE(rf.more);
  ASSERT_EQ(rf.events.size(), b1.size());
  for (std::size_t i = 0; i < b1.size(); ++i) {
    EXPECT_EQ(rf.events[i].u, b1[i].u);
    EXPECT_EQ(rf.events[i].v, b1[i].v);
    EXPECT_EQ(rf.events[i].w, b1[i].w);
  }
}

TEST(Replication, SubscribeRequiresADedicatedConnection) {
  const auto g = test_graph(140, 47);
  net::Server server(build_frozen(g, 3, 7), {});
  net::ClientOptions copt;
  copt.port = server.port();
  copt.request_timeout_ms = 10000;
  net::Client client(copt);

  // A route frame is in flight when the subscribe arrives: the server
  // must refuse (recoverably) instead of interleaving pushed frames
  // into an ordered request/response pipeline.
  const auto qs = random_queries(g.n(), 16, 3);
  client.send_route(qs.data(), qs.size());
  std::vector<std::uint8_t> body;
  net::encode_subscribe(body, 0);
  client.send_frame(net::FrameType::kSubscribe, body);

  EXPECT_EQ(client.recv_route().size(), qs.size());
  const auto f = client.recv_frame();
  ASSERT_EQ(f.type, net::FrameType::kError);
  EXPECT_EQ(net::decode_error(f.body).code, net::ErrorCode::kBadQuery);

  // The connection survived; a now-quiet pipeline may subscribe.
  EXPECT_EQ(client.subscribe(0), 0u);
}

TEST(Replication, LateSubscriberCatchesUpViaSnapshot) {
  const auto g = test_graph(140, 53);
  auto frozen = build_frozen(g, 3, 7);
  const auto reference = serve::FrozenScheme::load(frozen.save());
  net::Server server(std::move(frozen), {});
  const auto edges = all_edges(g);
  util::Rng rng(59);

  server.apply_updates(edge_batch(edges, rng, 8));
  server.apply_updates(edge_batch(edges, rng, 8));

  net::ClientOptions copt;
  copt.port = server.port();
  copt.request_timeout_ms = 10000;
  net::Client sub(copt);
  EXPECT_EQ(sub.subscribe(0), 2u);

  const auto f = sub.recv_frame();
  ASSERT_EQ(f.type, net::FrameType::kRepl);
  const auto rf = net::decode_repl(f.body);
  EXPECT_EQ(rf.seq, 2u);
  EXPECT_TRUE(rf.snapshot);
  EXPECT_FALSE(rf.more);

  // The snapshot rebases a blank replica: applied against the *base*
  // image it must reproduce the primary's served tables exactly.
  const auto local = serve::DeltaSet::apply(reference, nullptr, rf.events);
  const auto qs = random_queries(g.n(), 400, 61);
  net::Client query_client("127.0.0.1", server.port());
  const auto over_wire = query_client.route(qs);
  for (std::size_t i = 0; i < qs.size(); ++i) {
    const auto d = reference.route_overlay(qs[i].u, qs[i].v, *local);
    ASSERT_EQ(over_wire[i].ok, d.ok) << i;
    ASSERT_EQ(over_wire[i].length, d.length) << i;
    ASSERT_EQ(over_wire[i].hops, d.hops) << i;
  }

  // In-sync subscribers get no catch-up, just the next live push.
  net::Client sub2(copt);
  EXPECT_EQ(sub2.subscribe(2), 2u);
  server.apply_updates(edge_batch(edges, rng, 4));
  const auto live = sub2.recv_frame();
  ASSERT_EQ(live.type, net::FrameType::kRepl);
  const auto lf = net::decode_repl(live.body);
  EXPECT_EQ(lf.seq, 3u);
  EXPECT_FALSE(lf.snapshot);
}

// ---- replicas ----------------------------------------------------------

TEST(Replication, ReplicaFollowsPrimaryAndServesIdenticalReads) {
  const auto g = test_graph(150, 67);
  auto frozen = build_frozen(g, 3, 9);
  const auto image = frozen.save();
  const auto edges = all_edges(g);
  util::Rng rng(71);

  net::Server primary(std::move(frozen), {});
  net::Client pclient("127.0.0.1", primary.port());

  // Updates applied *before* the replica exists arrive via catch-up...
  pclient.update(edge_batch(edges, rng, 10));

  net::NetServerOptions ropt;
  ropt.replica_of = "127.0.0.1:" + std::to_string(primary.port());
  net::Server replica(serve::FrozenScheme::load(image), ropt);

  // ...and updates applied after it via the live stream.
  pclient.update(edge_batch(edges, rng, 10));
  pclient.update(edge_batch(edges, rng, 10));

  ASSERT_TRUE(wait_until([&] { return replica.stats().update_seq == 3; }))
      << "replica stuck at seq " << replica.stats().update_seq;
  EXPECT_GE(replica.stats().repl_applied, 1);
  EXPECT_EQ(primary.stats().subscribers, 1);
  EXPECT_EQ(replica.stats().repl_lag, 0);

  const auto qs = random_queries(g.n(), 500, 73);
  net::Client rclient("127.0.0.1", replica.port());
  expect_decisions_identical(rclient.route(qs), pclient.route(qs));

  // A replica is read-only: client writes are refused, recoverably.
  try {
    rclient.update(edge_batch(edges, rng, 2));
    FAIL() << "update on a replica should be refused";
  } catch (const net::ProtocolError& e) {
    EXPECT_EQ(e.code, net::ErrorCode::kReadOnly);
  }
  EXPECT_EQ(rclient.route(qs).size(), qs.size());  // connection survived
}

TEST(Replication, StreamGapForcesResubscribeWithSnapshot) {
  const auto g = test_graph(140, 79);
  auto frozen = build_frozen(g, 3, 9);
  const auto image = frozen.save();
  const auto edges = all_edges(g);
  util::Rng rng(83);

  net::Server primary(std::move(frozen), {});
  net::NetServerOptions ropt;
  ropt.replica_of = "127.0.0.1:" + std::to_string(primary.port());
  net::Server replica(serve::FrozenScheme::load(image), ropt);

  primary.apply_updates(edge_batch(edges, rng, 6));
  ASSERT_TRUE(wait_until([&] { return replica.stats().update_seq == 1; }));

  {
    // Drop exactly one pushed batch on the primary side: the replica
    // sees seq 3 after seq 1, detects the gap, and resubscribes — the
    // catch-up snapshot repairs it. Updates are never applied out of
    // order or with a hole.
    FailpointGuard fp("repl.stream:oneshot:1");
    primary.apply_updates(edge_batch(edges, rng, 6));  // push dropped
    primary.apply_updates(edge_batch(edges, rng, 6));  // arrives: gap
    ASSERT_TRUE(wait_until([&] { return replica.stats().update_seq == 3; }))
        << "replica stuck at seq " << replica.stats().update_seq;
  }

  const auto qs = random_queries(g.n(), 400, 89);
  net::Client pclient("127.0.0.1", primary.port());
  net::Client rclient("127.0.0.1", replica.port());
  expect_decisions_identical(rclient.route(qs), pclient.route(qs));
}

// ---- WAL recovery and checkpoint, through the daemon ------------------

TEST(Replication, RebootReplaysWalBitIdentically) {
  TempDir td;
  const auto g = test_graph(150, 97);
  const std::string img = td.sub("image.frozen");
  build_frozen(g, 3, 11).save_file(img);
  const auto edges = all_edges(g);
  util::Rng rng(101);
  const auto qs = random_queries(g.n(), 500, 103);

  net::NetServerOptions opt;
  opt.wal_dir = td.sub("wal");

  std::vector<Decision> before;
  {
    net::Server server(serve::FrozenScheme::map(img), opt);
    net::Client client("127.0.0.1", server.port());
    client.update(edge_batch(edges, rng, 12));
    client.update(edge_batch(edges, rng, 12));
    before = client.route(qs);
    EXPECT_EQ(server.stats().update_seq, 2);
    EXPECT_EQ(server.stats().wal_records, 2);
    // No checkpoint, no clean handoff: the destructor is the "crash".
  }
  {
    net::Server server(serve::FrozenScheme::map(img), opt);
    EXPECT_EQ(server.stats().update_seq, 2);
    net::Client client("127.0.0.1", server.port());
    expect_decisions_identical(client.route(qs), before);
  }
}

TEST(Replication, CheckpointCompactsLogAndImageAndRecovers) {
  TempDir td;
  const auto g = test_graph(150, 107);
  const std::string img = td.sub("image.frozen");
  build_frozen(g, 3, 11).save_file(img);
  const auto edges = all_edges(g);
  util::Rng rng(109);
  const auto qs = random_queries(g.n(), 500, 113);

  net::NetServerOptions opt;
  opt.wal_dir = td.sub("wal");
  opt.image_path = img;

  std::vector<Decision> before;
  {
    net::Server server(serve::FrozenScheme::map(img), opt);
    net::Client client("127.0.0.1", server.port());
    for (int i = 0; i < 3; ++i) client.update(edge_batch(edges, rng, 10));

    const auto ck = client.checkpoint();
    EXPECT_EQ(ck.seq, 3u);
    EXPECT_GT(ck.squashed, 0);
    EXPECT_EQ(ck.image_rebuilt, 1);
    EXPECT_EQ(ck.wal_segments, 1);
    EXPECT_EQ(server.stats().checkpoints, 1);

    // The log keeps moving after the checkpoint.
    client.update(edge_batch(edges, rng, 10));
    before = client.route(qs);
    EXPECT_EQ(server.stats().update_seq, 4);
  }
  {
    // Reboot from the *rebuilt* image + truncated WAL: same seq, same
    // answers as the daemon that never went down.
    net::Server server(serve::FrozenScheme::map(img), opt);
    EXPECT_EQ(server.stats().update_seq, 4);
    net::Client client("127.0.0.1", server.port());
    expect_decisions_identical(client.route(qs), before);
  }
}

TEST(Replication, AutoCheckpointRunsOnCadence) {
  TempDir td;
  const auto g = test_graph(140, 127);
  const auto edges = all_edges(g);
  util::Rng rng(131);

  net::NetServerOptions opt;
  opt.wal_dir = td.sub("wal");
  opt.checkpoint_every = 2;
  net::Server server(build_frozen(g, 3, 7), opt);
  server.apply_updates(edge_batch(edges, rng, 4));
  EXPECT_EQ(server.stats().checkpoints, 0);
  server.apply_updates(edge_batch(edges, rng, 4));
  EXPECT_EQ(server.stats().checkpoints, 1);
}

// ---- client failover ---------------------------------------------------

TEST(Replication, ClientFailsOverToTheNextEndpoint) {
  const auto g = test_graph(140, 137);
  auto frozen = build_frozen(g, 3, 7);
  const auto image = frozen.save();
  auto a = std::make_unique<net::Server>(std::move(frozen),
                                         net::NetServerOptions{});
  net::Server b(serve::FrozenScheme::load(image), {});

  net::ClientOptions copt;
  copt.endpoints = {{"127.0.0.1", a->port()}, {"127.0.0.1", b.port()}};
  copt.request_timeout_ms = 10000;
  net::Client client(copt);
  EXPECT_EQ(client.active_endpoint().port, a->port());
  const auto qs = random_queries(g.n(), 200, 139);
  const auto on_a = client.route(qs);

  // Kill the active endpoint: the next read-only call lands on b and
  // answers identically — the caller never sees the outage.
  const int a_port = a->port();
  a.reset();
  const auto on_b = client.route(qs);
  expect_decisions_identical(on_b, on_a);
  EXPECT_EQ(client.active_endpoint().port, b.port());
  EXPECT_NE(client.active_endpoint().port, a_port);

  // A *served* error is not a transport failure: no failover, the
  // active endpoint stays put.
  try {
    client.label(static_cast<Vertex>(g.n() + 1000));
    FAIL() << "out-of-range label should be refused";
  } catch (const net::ProtocolError& e) {
    EXPECT_EQ(e.code, net::ErrorCode::kBadQuery);
  }
  EXPECT_EQ(client.active_endpoint().port, b.port());
}

}  // namespace
}  // namespace nors
