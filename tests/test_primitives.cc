#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.h"
#include "graph/properties.h"
#include "graph/shortest_paths.h"
#include "primitives/cluster_bf.h"
#include "primitives/hierarchy.h"
#include "primitives/set_bf.h"
#include "primitives/source_detection.h"

namespace nors {
namespace {

using graph::Dist;
using graph::Vertex;

TEST(Hierarchy, ShapeAndNesting) {
  util::Rng rng(31);
  const auto h = primitives::Hierarchy::sample(500, 4, rng);
  EXPECT_EQ(h.k(), 4);
  EXPECT_EQ(h.set_at(0).size(), 500u);
  EXPECT_TRUE(h.set_at(4).empty());
  EXPECT_FALSE(h.set_at(3).empty());
  // Nesting: A_3 ⊆ A_2 ⊆ A_1 ⊆ A_0, and sizes shrink.
  for (int i = 1; i < 4; ++i) {
    EXPECT_LE(h.set_at(i).size(), h.set_at(i - 1).size());
    for (Vertex v : h.set_at(i)) EXPECT_TRUE(h.in_set(v, i - 1));
  }
  // exactly_at partitions A_0.
  std::size_t total = 0;
  for (int i = 0; i < 4; ++i) total += h.exactly_at(i).size();
  EXPECT_EQ(total, 500u);
}

TEST(Hierarchy, ExpectedSizes) {
  // E|A_1| = n^{1-1/k}; check within a loose factor.
  util::Rng rng(32);
  const int n = 2000, k = 2;
  const auto h = primitives::Hierarchy::sample(n, k, rng);
  const double expected = std::pow(n, 0.5);
  EXPECT_GT(h.set_at(1).size(), expected / 3);
  EXPECT_LT(h.set_at(1).size(), expected * 3);
}

TEST(Hierarchy, KOneHasOnlyLevelZero) {
  util::Rng rng(33);
  const auto h = primitives::Hierarchy::sample(50, 1, rng);
  EXPECT_EQ(h.set_at(0).size(), 50u);
  EXPECT_TRUE(h.set_at(1).empty());
}

TEST(SetBf, MatchesMultiSourceDijkstra) {
  util::Rng rng(34);
  const auto g =
      graph::connected_gnm(120, 260, graph::WeightSpec::uniform(1, 30), rng);
  const std::vector<Vertex> set{5, 60, 110};
  const auto bf = primitives::distributed_set_bellman_ford(g, set);
  const auto dj = graph::multi_source_dijkstra(g, set);
  for (Vertex v = 0; v < g.n(); ++v) {
    EXPECT_EQ(bf.dist[static_cast<std::size_t>(v)],
              dj.dist[static_cast<std::size_t>(v)])
        << "v=" << v;
  }
  // Parents are real edges pointing strictly closer to the set.
  for (Vertex v = 0; v < g.n(); ++v) {
    if (bf.dist[static_cast<std::size_t>(v)] == 0) continue;
    const auto port = bf.parent_port[static_cast<std::size_t>(v)];
    ASSERT_NE(port, graph::kNoPort);
    const auto& e = g.edge(v, port);
    EXPECT_EQ(bf.dist[static_cast<std::size_t>(v)],
              bf.dist[static_cast<std::size_t>(e.to)] + e.w);
  }
}

TEST(SetBf, RoundsTrackDistanceNotSize) {
  util::Rng rng(35);
  // Dense graph, sources everywhere: few rounds.
  const auto g = graph::connected_gnm(400, 3000, graph::WeightSpec::unit(), rng);
  std::vector<Vertex> many;
  for (Vertex v = 0; v < g.n(); v += 4) many.push_back(v);
  const auto r = primitives::distributed_set_bellman_ford(g, many);
  EXPECT_LT(r.rounds, 60);
}

TEST(ClusterBf, ComputesExactClustersUnderLimit) {
  util::Rng rng(36);
  const auto g =
      graph::connected_gnm(90, 200, graph::WeightSpec::uniform(1, 12), rng);
  // Limit: distance to a sampled set (mimicking d(v, A_{i+1})).
  const std::vector<Vertex> limit_set{7, 33, 71};
  const auto lim = graph::multi_source_dijkstra(g, limit_set);
  const std::vector<Vertex> roots{0, 20, 50, 88};
  const auto admit = [&](Vertex v, Vertex, Dist b) {
    return b < lim.dist[static_cast<std::size_t>(v)];
  };
  const auto res = primitives::distributed_cluster_bellman_ford(g, roots, admit);
  // Entries name roots by dense slot; scan a vertex's CSR window for one.
  const auto entry_of = [&](Vertex v,
                            int slot) -> const primitives::ClusterEntry* {
    for (std::size_t e = res.off[static_cast<std::size_t>(v)];
         e < res.off[static_cast<std::size_t>(v) + 1]; ++e) {
      if (res.slot[e] == slot) return &res.rec[e];
    }
    return nullptr;
  };

  // Ground truth: v ∈ C(u) iff d(u,v) < lim(v), with exact distance; the
  // cluster-BF tree must find exactly those members at exact distances
  // (every prefix vertex of the shortest path is itself admitted, so the
  // exploration cannot be blocked).
  for (std::size_t slot = 0; slot < roots.size(); ++slot) {
    const Vertex u = res.roots[slot];
    EXPECT_EQ(u, roots[slot]);
    const auto sp = graph::dijkstra(g, u);
    for (Vertex v = 0; v < g.n(); ++v) {
      const bool in_cluster =
          sp.dist[static_cast<std::size_t>(v)] <
          lim.dist[static_cast<std::size_t>(v)];
      const auto* e = entry_of(v, static_cast<int>(slot));
      if (in_cluster) {
        ASSERT_TRUE(e != nullptr) << "u=" << u << " v=" << v;
        EXPECT_EQ(e->dist, sp.dist[static_cast<std::size_t>(v)]);
      } else if (e != nullptr) {
        // A member may exist only if its own shortest-path prefix admitted
        // it; with exact BF this should coincide with the definition.
        ADD_FAILURE() << "vertex " << v << " wrongly joined cluster of " << u;
      }
    }
  }

  // Tree property: parents are members with consistent distances.
  for (Vertex v = 0; v < g.n(); ++v) {
    for (std::size_t ei = res.off[static_cast<std::size_t>(v)];
         ei < res.off[static_cast<std::size_t>(v) + 1]; ++ei) {
      const int slot = res.slot[ei];
      const auto& e = res.rec[ei];
      if (v == res.roots[static_cast<std::size_t>(slot)]) continue;
      ASSERT_NE(e.parent_port, graph::kNoPort);
      const auto& edge = g.edge(v, e.parent_port);
      EXPECT_EQ(edge.to, e.parent);
      const auto* pe = entry_of(e.parent, slot);
      ASSERT_TRUE(pe != nullptr);
      EXPECT_EQ(e.dist, pe->dist + edge.w);
    }
  }
}

TEST(SourceDetection, DialFastPathBitIdenticalToReferenceSweep) {
  // The exact-scale fast path (Dial Dijkstra + first-writer reconstruction)
  // is *defined* as bit-identical to the reference Bellman–Ford sweep —
  // distances, parent-port tie-breaks, iteration counts and round charges.
  // Pin the equivalence by diffing complete results across the
  // NORS_SD_DISABLE_FAST escape hatch, on regimes where the fast path
  // engages (small weights, generous hop bound), where it must fall back
  // (huge weights break the margin), and across thread counts.
  struct Regime {
    int n;
    std::int64_t extra;
    graph::Weight max_w;
    std::int64_t hop_bound;
    std::uint64_t seed;
  };
  for (const Regime r : {Regime{400, 900, 6, 400, 91},
                         Regime{300, 700, 50000, 300, 92},
                         Regime{250, 500, 12, 7, 93}}) {
    util::Rng rng(r.seed);
    const auto g = graph::connected_gnm(
        r.n, r.extra, graph::WeightSpec::uniform(1, r.max_w), rng);
    std::vector<Vertex> sources;
    for (Vertex v = 0; v < g.n(); v += 17) sources.push_back(v);
    const util::Epsilon eps(1, 6);

    setenv("NORS_SD_DISABLE_FAST", "1", 1);
    const auto ref =
        primitives::source_detection(g, sources, r.hop_bound, eps, 5);
    setenv("NORS_SD_DISABLE_FAST", "0", 1);
    const auto fast =
        primitives::source_detection(g, sources, r.hop_bound, eps, 5);
    const auto threaded = primitives::source_detection(
        g, sources, r.hop_bound, eps, 5, /*threads=*/3);
    unsetenv("NORS_SD_DISABLE_FAST");

    EXPECT_EQ(ref.dist, fast.dist) << "seed=" << r.seed;
    EXPECT_EQ(ref.parent_port, fast.parent_port) << "seed=" << r.seed;
    EXPECT_EQ(ref.round_cost, fast.round_cost) << "seed=" << r.seed;
    EXPECT_EQ(ref.max_iterations, fast.max_iterations) << "seed=" << r.seed;
    EXPECT_EQ(ref.executed_scales, fast.executed_scales) << "seed=" << r.seed;
    EXPECT_EQ(ref.dist, threaded.dist) << "seed=" << r.seed;
    EXPECT_EQ(ref.parent_port, threaded.parent_port) << "seed=" << r.seed;
    EXPECT_EQ(ref.round_cost, threaded.round_cost) << "seed=" << r.seed;
    EXPECT_EQ(ref.max_iterations, threaded.max_iterations)
        << "seed=" << r.seed;
  }
}

TEST(SourceDetection, ExactWhenQuantumOne) {
  util::Rng rng(37);
  const auto g =
      graph::connected_gnm(100, 220, graph::WeightSpec::uniform(1, 8), rng);
  const std::vector<Vertex> sources{0, 10, 55};
  // Small weights ⇒ all quanta are 1 ⇒ values are exactly d^(B).
  const util::Epsilon eps(1, 4);
  const auto sd = primitives::source_detection(g, sources, g.n(), eps, 5);
  for (std::size_t si = 0; si < sources.size(); ++si) {
    const auto exact = graph::dijkstra(g, sources[si]);
    for (Vertex v = 0; v < g.n(); ++v) {
      EXPECT_EQ(sd.d(static_cast<int>(si), v),
                exact.dist[static_cast<std::size_t>(v)]);
    }
  }
}

TEST(SourceDetection, GuaranteeTwoAndParentProperty) {
  util::Rng rng(38);
  // Large weights force quanta > 1 at high scales: genuine approximation.
  const auto g = graph::connected_gnm(
      80, 170, graph::WeightSpec::uniform(1000, 90000), rng);
  const std::vector<Vertex> sources{1, 2, 40, 79};
  const std::int64_t b = 12;
  const util::Epsilon eps(1, 8);
  const auto sd = primitives::source_detection(g, sources, b, eps, 4);
  EXPECT_GT(sd.distinct_scales, 1);

  for (std::size_t si = 0; si < sources.size(); ++si) {
    const auto hb = graph::hop_bounded_sssp(g, sources[si], b);
    for (Vertex v = 0; v < g.n(); ++v) {
      const Dist truth = hb.dist[static_cast<std::size_t>(v)];
      const Dist est = sd.d(static_cast<int>(si), v);
      if (graph::is_inf(truth)) {
        EXPECT_TRUE(graph::is_inf(est));
        continue;
      }
      // (2): d^(B) ≤ d_uv ≤ (1+ε) d^(B).
      EXPECT_GE(est, truth);
      EXPECT_TRUE(eps.leq_mul(est, truth, 1))
          << "est=" << est << " truth=" << truth;
      // (3): d_uv ≥ w(u,p) + d_pv for the reported parent.
      if (v == sources[si]) continue;
      const auto port = sd.port(static_cast<int>(si), v);
      ASSERT_NE(port, graph::kNoPort);
      const auto& e = g.edge(v, port);
      EXPECT_GE(est, e.w + sd.d(static_cast<int>(si), e.to));
    }
  }
}

TEST(SourceDetection, SymmetricBetweenSources) {
  util::Rng rng(39);
  const auto g = graph::connected_gnm(
      70, 150, graph::WeightSpec::uniform(500, 40000), rng);
  const std::vector<Vertex> sources{3, 30, 66};
  const auto sd = primitives::source_detection(g, sources, 15,
                                               util::Epsilon(1, 6), 4);
  for (std::size_t a = 0; a < sources.size(); ++a) {
    for (std::size_t b = 0; b < sources.size(); ++b) {
      EXPECT_EQ(sd.d(static_cast<int>(a), sources[b]),
                sd.d(static_cast<int>(b), sources[a]));
    }
  }
}

TEST(SourceDetection, RoundCostFormula) {
  util::Rng rng(40);
  const auto g = graph::connected_gnm(60, 120, graph::WeightSpec::unit(), rng);
  const std::vector<Vertex> sources{0, 1, 2};
  const auto sd = primitives::source_detection(g, sources, 10,
                                               util::Epsilon(1, 4), 7);
  // Per executed scale: |S| + hop layers + 2·height. Bounds bracket the
  // exact charge without exposing per-scale iteration counts.
  EXPECT_GE(sd.executed_scales, 1);
  EXPECT_LE(sd.executed_scales, sd.distinct_scales);
  EXPECT_GE(sd.round_cost,
            static_cast<std::int64_t>(sd.executed_scales) * (3 + 1 + 14));
  EXPECT_LE(sd.round_cost,
            static_cast<std::int64_t>(sd.executed_scales) * (3 + 10 + 14));
}

TEST(SourceDetection, EarlyExitOnUnitWeights) {
  // Unit weights: the first scale that covers the diameter is exact and
  // untruncated, so only a logarithmic prefix of scales runs.
  util::Rng rng(41);
  const auto g = graph::connected_gnm(80, 200, graph::WeightSpec::unit(), rng);
  const auto sd = primitives::source_detection(g, {0, 5}, g.n(),
                                               util::Epsilon(1, 4), 3);
  EXPECT_LT(sd.executed_scales, sd.distinct_scales);
  // And the values are simply exact.
  const auto exact = graph::dijkstra(g, 0);
  for (Vertex v = 0; v < g.n(); ++v) {
    EXPECT_EQ(sd.d(0, v), exact.dist[static_cast<std::size_t>(v)]);
  }
}

TEST(SourceDetection, LargeDistancesAreGenuinelyApproximate) {
  // With heavy weights the covering scale has quantum > 1; at least one
  // value must differ from the exact hop-bounded distance (otherwise the
  // approximation machinery is dead code).
  util::Rng rng(42);
  const auto g = graph::connected_gnm(
      120, 260, graph::WeightSpec::uniform(50000, 100000), rng);
  const util::Epsilon eps(1, 5);
  const auto sd = primitives::source_detection(g, {0}, 16, eps, 3);
  const auto hb = graph::hop_bounded_sssp(g, 0, 16);
  int inflated = 0;
  for (Vertex v = 0; v < g.n(); ++v) {
    const Dist truth = hb.dist[static_cast<std::size_t>(v)];
    if (graph::is_inf(truth)) continue;
    EXPECT_GE(sd.d(0, v), truth);
    EXPECT_TRUE(eps.leq_mul(sd.d(0, v), truth, 1));
    if (sd.d(0, v) > truth) ++inflated;
  }
  EXPECT_GT(inflated, 0);
}

}  // namespace
}  // namespace nors
