#include <gtest/gtest.h>

#include "core/spt.h"
#include "graph/generators.h"
#include "graph/shortest_paths.h"

namespace nors {
namespace {

using graph::Dist;
using graph::Vertex;

struct Case {
  std::uint64_t seed;
  int n;
  int roots;
  std::int64_t num, den;  // epsilon
};

class ApproxSptTest : public ::testing::TestWithParam<Case> {};

TEST_P(ApproxSptTest, SatisfiesGuaranteeFive) {
  const auto c = GetParam();
  util::Rng rng(c.seed);
  const auto g = graph::connected_gnm(c.n, 3LL * c.n,
                                      graph::WeightSpec::uniform(1, 30), rng);
  std::vector<Vertex> roots;
  for (int i = 0; i < c.roots; ++i) {
    roots.push_back(static_cast<Vertex>((i * 37) % c.n));
  }
  core::ApproxSptParams p;
  p.eps = util::Epsilon(c.num, c.den);
  p.seed = c.seed + 1;
  const auto spt = core::approximate_spt(g, roots, p, 6);
  const auto exact = graph::multi_source_dijkstra(g, roots);

  for (Vertex u = 0; u < g.n(); ++u) {
    const Dist truth = exact.dist[static_cast<std::size_t>(u)];
    const Dist est = spt.dist[static_cast<std::size_t>(u)];
    // (5): d(u,A) ≤ d̂(u) ≤ (1+ε)·d(u,A).
    EXPECT_GE(est, truth) << "u=" << u;
    EXPECT_TRUE(p.eps.leq_mul(est, truth, 1))
        << "u=" << u << " est=" << est << " truth=" << truth;
    // The witness is a root within d̂ of u.
    const Vertex z = spt.pivot[static_cast<std::size_t>(u)];
    ASSERT_NE(z, graph::kNoVertex);
    EXPECT_TRUE(std::find(roots.begin(), roots.end(), z) != roots.end());
    EXPECT_LE(graph::pair_distance(g, u, z), est);
  }
  EXPECT_GT(spt.ledger.total_rounds(), 0);
  EXPECT_GE(spt.vprime_size, static_cast<std::int64_t>(roots.size()));
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ApproxSptTest,
    ::testing::Values(Case{701, 120, 3, 1, 16}, Case{702, 150, 8, 1, 8},
                      Case{703, 100, 1, 1, 32}, Case{704, 180, 12, 1, 4}));

TEST(ApproxSpt, RootSetDistanceZeroAtRoots) {
  util::Rng rng(711);
  const auto g = graph::connected_gnm(80, 200, graph::WeightSpec::uniform(1, 9), rng);
  const std::vector<Vertex> roots{5, 50};
  const auto spt = core::approximate_spt(g, roots, {}, 4);
  for (Vertex r : roots) {
    EXPECT_EQ(spt.dist[static_cast<std::size_t>(r)], 0);
    EXPECT_EQ(spt.pivot[static_cast<std::size_t>(r)], r);
  }
}

TEST(ApproxSpt, LedgerPhasesPresent) {
  util::Rng rng(712);
  const auto g = graph::connected_gnm(90, 200, graph::WeightSpec::uniform(1, 9), rng);
  const auto spt = core::approximate_spt(g, {0}, {}, 4);
  const std::string rep = spt.ledger.report();
  EXPECT_NE(rep.find("spt/source detection"), std::string::npos);
  EXPECT_NE(rep.find("spt/hopset"), std::string::npos);
  EXPECT_NE(rep.find("spt/bellman-ford"), std::string::npos);
}

}  // namespace
}  // namespace nors
