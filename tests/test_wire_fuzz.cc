// Network-frame fuzzing (DESIGN.md §11's failure taxonomy, the wire
// sibling of test_frozen_fuzz): every malformed byte sequence a client
// can send — noise, bad envelope fields, oversized length prefixes,
// truncations, checksum-repatched garbage bodies, version skew, seeded
// bit flips — must produce a clean kError frame (and, for recoverable
// body errors, a connection that keeps serving). No input may ever
// terminate the server's connection loop. CI runs this under
// ASan+UBSan, where a single over-read or uninitialized decode aborts.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/scheme.h"
#include "graph/generators.h"
#include "net/client.h"
#include "net/server.h"
#include "serve/delta.h"
#include "serve/frozen.h"
#include "util/failpoint.h"
#include "util/random.h"

namespace nors {
namespace {

using net::ErrorCode;
using net::Frame;
using net::FrameType;

/// One server for the whole file — the point is precisely that no fuzz
/// case below can kill it (gtest runs our TESTs in declaration order
/// within the file, and the final test re-validates serving).
struct Fixture {
  serve::FrozenScheme reference;
  net::Server server;
  int n;

  static Fixture& get() {
    static Fixture* f = [] {
      util::Rng rng(3);
      const auto g = graph::connected_gnm(
          150, 450, graph::WeightSpec::uniform(1, 16), rng);
      core::SchemeParams p;
      p.k = 2;
      p.seed = 5;
      auto frozen =
          serve::FrozenScheme::freeze(core::RoutingScheme::build(g, p));
      auto ref = serve::FrozenScheme::load(frozen.save());
      return new Fixture{std::move(ref), net::Server(std::move(frozen), {}),
                         0};
    }();
    f->n = f->reference.n();
    return *f;
  }
};

net::Client connect() {
  return net::Client("127.0.0.1", Fixture::get().server.port());
}

/// Proves the connection still serves: a valid route frame answered
/// bit-identically to the in-process image.
void expect_still_serving(net::Client& client) {
  auto& f = Fixture::get();
  const std::vector<serve::Query> qs = {{1, f.n - 2}, {f.n / 2, 3}};
  const auto got = client.route(qs);
  ASSERT_EQ(got.size(), qs.size());
  for (std::size_t i = 0; i < qs.size(); ++i) {
    const auto local = f.reference.route(qs[i].u, qs[i].v);
    ASSERT_EQ(got[i].ok, local.ok);
    ASSERT_EQ(got[i].length, local.length);
    ASSERT_EQ(got[i].hops, local.hops);
  }
}

/// The server is alive if a brand-new connection serves correctly.
void expect_server_alive() {
  auto client = connect();
  expect_still_serving(client);
}

/// Sends raw bytes, expects exactly one kError frame with `code`, then —
/// for fatal codes — a close; for recoverable codes the same connection
/// must keep serving.
void expect_error_for(const std::vector<std::uint8_t>& bytes,
                      ErrorCode code) {
  auto client = connect();
  client.send_bytes(bytes.data(), bytes.size());
  const Frame f = client.recv_frame();
  ASSERT_EQ(f.type, FrameType::kError);
  const auto err = net::decode_error(f.body);
  EXPECT_EQ(err.code, code) << err.message;
  if (net::is_fatal(code)) {
    Frame more;
    EXPECT_FALSE(client.recv_frame_or_eof(more))
        << "fatal protocol error must close the connection";
  } else {
    expect_still_serving(client);
  }
  expect_server_alive();
}

/// A well-formed envelope (magic, version, checksum all valid) around an
/// arbitrary — typically garbage — body.
std::vector<std::uint8_t> checksummed(FrameType type,
                                      const std::vector<std::uint8_t>& body) {
  std::vector<std::uint8_t> out;
  net::append_frame(out, type, /*request_id=*/77, body);
  return out;
}

std::vector<std::uint8_t> valid_route_frame() {
  const std::vector<serve::Query> qs = {{2, 9}, {11, 4}};
  std::vector<std::uint8_t> body;
  net::encode_route_request(body, qs.data(), qs.size());
  return checksummed(FrameType::kRoute, body);
}

// ---- envelope (fatal) cases --------------------------------------------

TEST(WireFuzz, PureNoiseIsBadMagic) {
  util::Rng rng(99);
  std::vector<std::uint8_t> noise(64);
  for (auto& b : noise) b = static_cast<std::uint8_t>(rng.uniform(256));
  noise[0] = 'X';  // guarantee the magic really is wrong
  expect_error_for(noise, ErrorCode::kBadMagic);
}

TEST(WireFuzz, VersionSkewIsBadVersion) {
  auto frame = valid_route_frame();
  frame[4] = net::kProtoVersion + 1;  // a future client
  expect_error_for(frame, ErrorCode::kBadVersion);
  frame[4] = 0;  // an ancient one
  expect_error_for(frame, ErrorCode::kBadVersion);
}

TEST(WireFuzz, ReservedFlagsAreBadFlags) {
  auto frame = valid_route_frame();
  frame[6] = 0x01;
  expect_error_for(frame, ErrorCode::kBadFlags);
}

TEST(WireFuzz, OversizedLengthPrefixRejectedFromHeaderAlone) {
  // Only 16 header bytes advertising a ~2 GiB body: the server must
  // reject from the prefix without ever buffering toward that length.
  std::vector<std::uint8_t> header(net::kHeaderBytes, 0);
  const std::uint32_t magic = net::kMagic;
  std::memcpy(header.data(), &magic, 4);
  header[4] = net::kProtoVersion;
  header[5] = static_cast<std::uint8_t>(FrameType::kRoute);
  const std::uint32_t huge = 0x7fffffffu;
  std::memcpy(header.data() + 12, &huge, 4);
  expect_error_for(header, ErrorCode::kBadLength);
}

TEST(WireFuzz, ChecksumMismatchIsFatal) {
  auto frame = valid_route_frame();
  frame[net::kHeaderBytes] ^= 0x40;  // flip a body bit, keep stale checksum
  expect_error_for(frame, ErrorCode::kBadChecksum);
}

TEST(WireFuzz, TruncatedFramesNeverAnsweredNeverCrash) {
  const auto frame = valid_route_frame();
  // Every proper prefix: the server waits for more, we hang up instead.
  for (std::size_t cut = 1; cut + 1 < frame.size(); cut += 3) {
    auto client = connect();
    client.send_bytes(frame.data(), cut);
    client.shutdown_send();
    Frame f;
    EXPECT_FALSE(client.recv_frame_or_eof(f))
        << "a truncated frame must not be answered (cut=" << cut << ")";
  }
  expect_server_alive();
}

// ---- body (recoverable) cases ------------------------------------------

TEST(WireFuzz, RepatchedGarbageBodiesAreBadBodyAndSurvivable) {
  // Valid envelope + checksum, deliberately undecodable bodies: the
  // connection must answer kError(kBadBody) and keep serving.
  const std::vector<std::vector<std::uint8_t>> bodies = {
      {0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80},
      {0x05},                    // count 5, zero queries follow
      {0x01, 0x02, 0x04, 0xff},  // one query + trailing byte
      {0x00, 0x00},              // count 0 + trailing byte
      {0x80, 0x00},              // non-minimal varint (codec rejects)
  };
  for (const auto& body : bodies) {
    expect_error_for(checksummed(FrameType::kRoute, body),
                     ErrorCode::kBadBody);
  }
  // Same discipline on the label body decoder.
  expect_error_for(checksummed(FrameType::kLabel, {0x02, 0x02}),
                   ErrorCode::kBadBody);
}

TEST(WireFuzz, OutOfRangeVerticesAreBadQueryAndSurvivable) {
  auto& f = Fixture::get();
  const std::vector<serve::Query> beyond = {{0, f.n + 5}};
  std::vector<std::uint8_t> body;
  net::encode_route_request(body, beyond.data(), beyond.size());
  expect_error_for(checksummed(FrameType::kRoute, body),
                   ErrorCode::kBadQuery);

  const std::vector<serve::Query> negative = {{-3, 1}};
  body.clear();
  net::encode_route_request(body, negative.data(), negative.size());
  expect_error_for(checksummed(FrameType::kRoute, body),
                   ErrorCode::kBadQuery);

  expect_error_for(checksummed(FrameType::kLabel, {0x09}),  // v = -5
                   ErrorCode::kBadQuery);
}

TEST(WireFuzz, UnknownAndResponseOnlyTypesAreBadTypeAndSurvivable) {
  // 0x11 is past every assigned frame type (0x0b–0x10 became the
  // replication/checkpoint frames in DESIGN.md §14).
  expect_error_for(checksummed(static_cast<FrameType>(0x11), {}),
                   ErrorCode::kBadType);
  // A client "responding" to the server: well-formed, wrong direction.
  expect_error_for(checksummed(FrameType::kRouteAck, {0x00}),
                   ErrorCode::kBadType);
  expect_error_for(checksummed(FrameType::kHelloAck, {}),
                   ErrorCode::kBadType);
}

// ---- the kOverloaded frame (retry-after hint layout) --------------------

TEST(WireFuzz, OverloadedFrameRoundTripsWithHint) {
  std::vector<std::uint8_t> body;
  net::encode_overloaded(body, 125, "busy");
  const auto err = net::decode_error(body);
  EXPECT_EQ(err.code, ErrorCode::kOverloaded);
  EXPECT_EQ(err.retry_after_ms, 125u);
  EXPECT_EQ(err.message, "busy");
  // Recoverable by design: shedding must not cost the connection.
  EXPECT_FALSE(net::is_fatal(ErrorCode::kOverloaded));
}

TEST(WireFuzz, MalformedOverloadHintsAreRejectedByTheCodec) {
  const auto reject = [](std::vector<std::uint8_t> bytes) {
    EXPECT_THROW(net::decode_error(bytes), std::logic_error);
  };
  // code 11 (kOverloaded) with no hint field at all.
  reject({0x0b});
  // Hint varint overlong / unterminated.
  reject({0x0b, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80,
          0x80, 0x80});
  // Hint beyond 32 bits (0x1_0000_0000).
  reject({0x0b, 0x80, 0x80, 0x80, 0x80, 0x10, 0x00});
  // Valid hint, message length lies past the body end.
  reject({0x0b, 0x19, 0x05, 'h', 'i'});
  // Trailing bytes after a well-formed overload body.
  std::vector<std::uint8_t> body;
  net::encode_overloaded(body, 1, "x");
  body.push_back(0x00);
  EXPECT_THROW(net::decode_error(body), std::logic_error);
  // And the ordinary two-field layout must NOT carry a hint: a plain
  // error body reinterpreted as kOverloaded (first byte patched) is
  // torn apart by the exact-consumption discipline, not misread.
  std::vector<std::uint8_t> plain;
  net::encode_error(plain, ErrorCode::kBadBody, "zz");
  plain[0] = 0x0b;
  EXPECT_THROW(net::decode_error(plain), std::logic_error);
}

TEST(WireFuzz, ForcedOverloadSurfacesTypedErrorAndConnectionSurvives) {
  // The net.overload failpoint forces one admission rejection on the
  // live fixture server; the client must surface the typed error with
  // the server's configured hint (default retry_after_ms = 25) and the
  // connection must keep serving afterwards.
  util::Failpoints::configure("net.overload:oneshot:1");
  auto client = connect();
  try {
    const std::vector<serve::Query> qs = {{1, 2}};
    client.route(qs);
    util::Failpoints::clear();
    FAIL() << "forced overload must surface as OverloadedError";
  } catch (const net::OverloadedError& e) {
    util::Failpoints::clear();
    EXPECT_EQ(e.code, ErrorCode::kOverloaded);
    EXPECT_EQ(e.retry_after_ms, 25u);
  }
  expect_still_serving(client);
  expect_server_alive();
}

TEST(WireFuzz, MaximalHintRoundTripsThroughTheCodecUnclamped) {
  // The codec carries the full uint32 range verbatim — clamping a
  // hostile hint is *client* policy (ClientOptions::retry_hint_cap_ms),
  // not a wire concern, so a server-side cap change can never be
  // confused with a decode quirk.
  std::vector<std::uint8_t> body;
  net::encode_overloaded(body, 0xFFFFFFFFu, "hostile");
  const auto err = net::decode_error(body);
  EXPECT_EQ(err.code, ErrorCode::kOverloaded);
  EXPECT_EQ(err.retry_after_ms, 0xFFFFFFFFu);
}

// ---- the kUpdate admin frame (DESIGN.md §13) ----------------------------

TEST(WireFuzz, UpdateBodyRoundTrips) {
  const std::vector<serve::EdgeUpdate> updates = {
      serve::EdgeUpdate::weight(3, 9, 12),
      serve::EdgeUpdate::fail(4, 7),
      serve::EdgeUpdate::weight(0, 1, 1),
  };
  std::vector<std::uint8_t> body;
  net::encode_update_request(body, updates);
  const auto back = net::decode_update_request(body);
  ASSERT_EQ(back.size(), updates.size());
  for (std::size_t i = 0; i < updates.size(); ++i) {
    EXPECT_EQ(back[i].u, updates[i].u);
    EXPECT_EQ(back[i].v, updates[i].v);
    EXPECT_EQ(back[i].w, updates[i].w);
  }

  net::UpdateAck ack;
  ack.seq = 7;
  ack.applied = 3;
  ack.unknown_edges = 1;
  ack.overrides = 4;
  ack.failed_links = 2;
  ack.masked_trees = 5;
  body.clear();
  net::encode_update_ack(body, ack);
  const auto aback = net::decode_update_ack(body);
  EXPECT_EQ(aback.seq, 7u);
  EXPECT_EQ(aback.applied, 3);
  EXPECT_EQ(aback.unknown_edges, 1);
  EXPECT_EQ(aback.overrides, 4);
  EXPECT_EQ(aback.failed_links, 2);
  EXPECT_EQ(aback.masked_trees, 5);
}

TEST(WireFuzz, MalformedUpdateBodiesAreBadBodyAndSurvivable) {
  const std::vector<std::vector<std::uint8_t>> bodies = {
      {0x05},              // count 5, zero events follow
      {0x01, 0x02},        // flag 2: neither weight nor fail
      {0x01, 0x00, 0x06},  // weight event truncated before v/w
      {0x01, 0x01, 0x06, 0x08, 0x00},  // fail event + trailing byte
      {0x01, 0x00, 0x06, 0x08, 0x03},  // weight = -2 (zigzag 3)
      {0x80, 0x00},                    // non-minimal count varint
  };
  for (const auto& body : bodies) {
    expect_error_for(checksummed(FrameType::kUpdate, body),
                     ErrorCode::kBadBody);
  }
}

TEST(WireFuzz, OutOfRangeUpdateVerticesAreBadQueryAndSurvivable) {
  auto& f = Fixture::get();
  const std::vector<serve::EdgeUpdate> beyond = {
      serve::EdgeUpdate::fail(0, f.n + 3)};
  std::vector<std::uint8_t> body;
  net::encode_update_request(body, beyond);
  expect_error_for(checksummed(FrameType::kUpdate, body),
                   ErrorCode::kBadQuery);

  const std::vector<serve::EdgeUpdate> negative = {
      serve::EdgeUpdate::weight(-2, 1, 4)};
  body.clear();
  net::encode_update_request(body, negative);
  expect_error_for(checksummed(FrameType::kUpdate, body),
                   ErrorCode::kBadQuery);
}

TEST(WireFuzz, UpdateAckFromAClientIsBadType) {
  expect_error_for(checksummed(FrameType::kUpdateAck, {0x00}),
                   ErrorCode::kBadType);
}

TEST(WireFuzz, ValidUpdateFramePublishesAGenerationAndServingContinues) {
  // In-range vertices that are NOT an edge of the fixture image: the
  // batch is accepted (kUpdateAck, a fresh generation) but applies
  // nothing, so the bit-identical serving checks of every later test in
  // this file stay valid.
  auto& f = Fixture::get();
  graph::Vertex a = 0, b = -1;
  for (graph::Vertex v = 1; v < f.n; ++v) {
    if (f.reference.find_port(0, v) < 0) {
      b = v;
      break;
    }
  }
  ASSERT_GE(b, 0) << "fixture vertex 0 is adjacent to everything?";

  auto client = connect();
  const std::vector<serve::EdgeUpdate> batch = {
      serve::EdgeUpdate::weight(a, b, 9), serve::EdgeUpdate::fail(a, b)};
  const auto ack = client.update(batch);
  EXPECT_GE(ack.seq, 1u);
  EXPECT_EQ(ack.applied, 0);
  EXPECT_EQ(ack.unknown_edges, 2);
  EXPECT_EQ(ack.overrides, 0);
  EXPECT_EQ(ack.masked_trees, 0);
  expect_still_serving(client);
  expect_server_alive();
}

// ---- seeded bit flips ---------------------------------------------------

TEST(WireFuzz, TwoHundredSeededBitFlipsNeverKillTheServer) {
  const auto pristine = valid_route_frame();
  util::Rng rng(20260808);
  int errors = 0, acks = 0, closes = 0;
  for (int iter = 0; iter < 200; ++iter) {
    auto frame = pristine;
    const int flips = 1 + static_cast<int>(rng.uniform(3));
    for (int b = 0; b < flips; ++b) {
      const auto bit = rng.uniform(frame.size() * 8);
      frame[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    }
    auto client = connect();
    client.send_bytes(frame.data(), frame.size());
    client.shutdown_send();
    // Whatever happened — error frame, miraculous valid ack, silent
    // close on a truncation-like mutation — the stream must end cleanly
    // and the server must keep running.
    try {
      Frame f;
      while (client.recv_frame_or_eof(f)) {
        if (f.type == FrameType::kError) ++errors;
        if (f.type == FrameType::kRouteAck) ++acks;
      }
    } catch (const std::exception&) {
      ++closes;  // broken response stream == connection torn down hard
    }
  }
  // The distribution is seed-dependent but bit flips overwhelmingly land
  // in checksummed bytes: most mutations must have been *answered*.
  EXPECT_GT(errors, 100) << "errors=" << errors << " acks=" << acks
                         << " closes=" << closes;
  expect_server_alive();
}

// ---- epilogue -----------------------------------------------------------

TEST(WireFuzz, ServerStillServesBitIdenticallyAfterAllOfTheAbove) {
  auto& f = Fixture::get();
  expect_server_alive();
  const auto stats = f.server.stats();
  EXPECT_GT(stats.protocol_errors, 0);
  // Fuzzing never leaks into accounting: every connection above was
  // accepted and every valid probe answered.
  EXPECT_GT(stats.conns_accepted, 200);
  EXPECT_EQ(stats.reloads, 0);
}

}  // namespace
}  // namespace nors
