// Property sweep: the full pipeline (scheme + estimation + one-sided
// estimation) across a grid of topologies × k. Every case asserts the
// paper's end-to-end guarantees; topology-specific quirks (high diameter,
// heavy hubs, locality, unit weights) each stress different phases.

#include <gtest/gtest.h>

#include <cmath>

#include "core/distance_estimation.h"
#include "core/scheme.h"
#include "graph/generators.h"
#include "graph/properties.h"
#include "graph/shortest_paths.h"

namespace nors {
namespace {

using graph::Dist;
using graph::Vertex;

struct SweepCase {
  const char* topology;
  int k;
  std::uint64_t seed;
};

std::string case_name(const ::testing::TestParamInfo<SweepCase>& info) {
  return std::string(info.param.topology) + "_k" +
         std::to_string(info.param.k);
}

graph::WeightedGraph build_topology(const char* name, std::uint64_t seed) {
  util::Rng rng(seed);
  const std::string t = name;
  if (t == "gnm") {
    return graph::connected_gnm(140, 360, graph::WeightSpec::uniform(1, 25),
                                rng);
  }
  if (t == "torus") {
    return graph::torus(10, 14, graph::WeightSpec::uniform(1, 50), rng);
  }
  if (t == "hypercube") {
    return graph::hypercube(7, graph::WeightSpec::uniform(1, 12), rng);
  }
  if (t == "barabasi") {
    return graph::barabasi_albert(140, 3, graph::WeightSpec::uniform(1, 9),
                                  rng);
  }
  if (t == "geometric") {
    return graph::random_geometric(130, 0.13, 400, rng);
  }
  if (t == "clustered") {
    return graph::clustered(140, 7, 0.3, 80, graph::WeightSpec::uniform(1, 8),
                            rng);
  }
  if (t == "lollipop") {
    return graph::lollipop(120, 30, graph::WeightSpec::uniform(1, 6), rng);
  }
  if (t == "fat_tree") {
    return graph::fat_tree(6, 3, 4, 3, graph::WeightSpec::unit(), rng);
  }
  NORS_CHECK_MSG(false, "unknown topology " << name);
}

class PipelineSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(PipelineSweep, AllGuaranteesHold) {
  const auto c = GetParam();
  const auto g = build_topology(c.topology, c.seed);
  core::SchemeParams p;
  p.k = c.k;
  p.seed = c.seed;
  const auto s = core::RoutingScheme::build(g, p);
  const auto de = core::DistanceEstimation::build(s);

  EXPECT_EQ(s.pruned_members(), 0);
  const double route_bound = s.stretch_bound() + 1e-9;
  const double est_bound = de.stretch_bound() + 1e-9;
  // One-sided estimation takes the routing path, so the routing bound
  // (without the trick's head start — level 0 may be skipped) applies.
  const double label_bound =
      core::stretch_bound(c.k, p.epsilon(), /*label_trick=*/false) + 1e-9;

  for (Vertex u = 0; u < g.n(); u += 6) {
    const auto sp = graph::dijkstra(g, u);
    for (Vertex v = 2; v < g.n(); v += 9) {
      if (u == v) continue;
      const Dist d = sp.dist[static_cast<std::size_t>(v)];
      ASSERT_GT(d, 0);

      const auto r = s.route(u, v);
      ASSERT_TRUE(r.ok) << c.topology << " u=" << u << " v=" << v;
      EXPECT_GE(r.length, d);
      EXPECT_LE(static_cast<double>(r.length), route_bound * d)
          << c.topology << " u=" << u << " v=" << v;

      const auto e = de.estimate(u, v);
      EXPECT_GE(e.estimate, d);
      EXPECT_LE(static_cast<double>(e.estimate), est_bound * d)
          << c.topology << " u=" << u << " v=" << v;
      EXPECT_LE(e.iterations, c.k);

      const auto le = de.estimate_from_label(u, v);
      EXPECT_GE(le.estimate, d);
      EXPECT_LE(static_cast<double>(le.estimate), label_bound * d)
          << c.topology << " u=" << u << " v=" << v;
    }
  }

  // Claim-2 overlap bound holds on every topology.
  const double claim2 =
      4.0 * std::pow(g.n(), 1.0 / c.k) * std::log(std::max(2, g.n()));
  for (Vertex v = 0; v < g.n(); v += 4) {
    EXPECT_LE(s.overlap(v), claim2);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, PipelineSweep,
    ::testing::Values(
        SweepCase{"gnm", 2, 1101}, SweepCase{"gnm", 3, 1102},
        SweepCase{"gnm", 4, 1103}, SweepCase{"torus", 2, 1104},
        SweepCase{"torus", 3, 1105}, SweepCase{"torus", 5, 1106},
        SweepCase{"hypercube", 3, 1107}, SweepCase{"hypercube", 4, 1108},
        SweepCase{"barabasi", 2, 1109}, SweepCase{"barabasi", 3, 1110},
        SweepCase{"geometric", 3, 1111}, SweepCase{"geometric", 4, 1112},
        SweepCase{"clustered", 2, 1113}, SweepCase{"clustered", 4, 1114},
        SweepCase{"lollipop", 3, 1115}, SweepCase{"lollipop", 4, 1116},
        SweepCase{"fat_tree", 2, 1117}, SweepCase{"fat_tree", 3, 1118}),
    case_name);

}  // namespace
}  // namespace nors
