#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.h"
#include "graph/shortest_paths.h"
#include "hopset/hopset.h"

namespace nors {
namespace {

using graph::Dist;
using graph::Vertex;

hopset::HopsetParams params(std::int64_t num, std::int64_t den, int levels,
                            std::uint64_t seed) {
  return hopset::HopsetParams{util::Epsilon(num, den), levels, seed, 0.5};
}

TEST(Hopset, BetaGuaranteeHolds) {
  util::Rng rng(51);
  const auto g =
      graph::connected_gnm(80, 160, graph::WeightSpec::uniform(1, 40), rng);
  const auto p = params(1, 10, 2, 7);
  const auto hs = hopset::build_hopset(g, p, 3);
  ASSERT_GE(hs.beta, 1);
  // Verify: β-hop distances over G ∪ F within (1+ε) of exact, all pairs.
  for (Vertex src = 0; src < g.n(); ++src) {
    const auto exact = graph::dijkstra(g, src);
    const auto bounded =
        hopset::bounded_hop_distances_with_hopset(g, hs.edges, src, hs.beta);
    for (Vertex v = 0; v < g.n(); ++v) {
      const Dist t = exact.dist[static_cast<std::size_t>(v)];
      if (graph::is_inf(t)) continue;
      EXPECT_GE(bounded[static_cast<std::size_t>(v)], t);
      EXPECT_TRUE(p.eps.leq_mul(bounded[static_cast<std::size_t>(v)], t, 1))
          << "src=" << src << " v=" << v;
    }
  }
}

TEST(Hopset, BetaIsMinimal) {
  // beta-1 hops must violate the guarantee for at least one pair (otherwise
  // the measured beta would have been smaller).
  util::Rng rng(52);
  const auto g = graph::connected_gnm(60, 110, graph::WeightSpec::uniform(1, 25), rng);
  const auto p = params(1, 12, 2, 9);
  const auto hs = hopset::build_hopset(g, p, 3);
  if (hs.beta <= 1) GTEST_SKIP() << "graph too easy; nothing to check";
  bool violated = false;
  for (Vertex src = 0; src < g.n() && !violated; ++src) {
    const auto exact = graph::dijkstra(g, src);
    const auto bounded = hopset::bounded_hop_distances_with_hopset(
        g, hs.edges, src, hs.beta - 1);
    for (Vertex v = 0; v < g.n(); ++v) {
      const Dist t = exact.dist[static_cast<std::size_t>(v)];
      if (graph::is_inf(t)) continue;
      if (!p.eps.leq_mul(bounded[static_cast<std::size_t>(v)], t, 1)) {
        violated = true;
        break;
      }
    }
  }
  EXPECT_TRUE(violated);
}

TEST(Hopset, PathReportingProperty) {
  util::Rng rng(53);
  const auto g =
      graph::connected_gnm(70, 150, graph::WeightSpec::uniform(1, 30), rng);
  const auto hs = hopset::build_hopset(g, params(1, 8, 3, 11), 3);
  // Property 1: every hopset edge is realized by a real path whose prefix
  // sums match — checked edge by edge inside.
  EXPECT_NO_THROW(hs.check_path_reporting(g));
  EXPECT_GT(hs.edges.size(), 0u);
  // Hopset edge weights equal exact distances between their endpoints.
  for (std::size_t i = 0; i < std::min<std::size_t>(hs.edges.size(), 25); ++i) {
    const auto& e = hs.edges[i];
    EXPECT_EQ(e.w, graph::pair_distance(g, e.u, e.v));
  }
}

TEST(Hopset, SmallerEpsilonNeedsMoreHops) {
  util::Rng rng(54);
  const auto g = graph::connected_gnm(70, 130, graph::WeightSpec::uniform(1, 50), rng);
  const auto loose = hopset::build_hopset(g, params(1, 2, 2, 13), 3);
  const auto tight = hopset::build_hopset(g, params(1, 1000, 2, 13), 3);
  EXPECT_LE(loose.beta, tight.beta);
}

TEST(Hopset, TrivialGraphs) {
  graph::WeightedGraph g1(1);
  g1.freeze();
  const auto h1 = hopset::build_hopset(g1, params(1, 4, 2, 1), 0);
  EXPECT_GE(h1.beta, 1);

  graph::WeightedGraph g2(2);
  g2.add_edge(0, 1, 3);
  g2.freeze();
  const auto h2 = hopset::build_hopset(g2, params(1, 4, 2, 1), 0);
  EXPECT_GE(h2.beta, 1);
}

TEST(Hopset, RoundCostGrowsWithBeta) {
  util::Rng rng(55);
  const auto g = graph::connected_gnm(50, 90, graph::WeightSpec::uniform(1, 20), rng);
  const auto hs = hopset::build_hopset(g, params(1, 6, 2, 17), 4);
  EXPECT_GT(hs.round_cost, 0);
  // Charge formula: (m^{1+rho} + 2D)·β².
  const double expected =
      (std::pow(50.0, 1.5) + 8.0) * hs.beta * hs.beta;
  EXPECT_NEAR(static_cast<double>(hs.round_cost), expected, expected * 0.01);
}

}  // namespace
}  // namespace nors
