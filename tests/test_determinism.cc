#include <gtest/gtest.h>

#include "core/scheme.h"
#include "graph/generators.h"
#include "serve/frozen.h"

// Determinism suite for the threaded construction pipeline (DESIGN.md §7):
// any worker-pool size must produce byte-identical schemes and identical
// ledgers, because workers own disjoint output slots and every fold runs
// serially in a fixed order. The serialized FrozenScheme image is the
// canonical byte-level fingerprint — it covers tables, labels, trick slabs,
// tree directories and the link map in one checksummed blob.

namespace nors {
namespace {

using graph::Vertex;

// resolve_threads clamps pool sizes to the hardware concurrency (a perf
// guard — oversubscription only loses on small containers). This suite's
// whole point is exercising *real* 2- and 8-worker pools, so opt out before
// the first build; determinism must hold for any pool size regardless.
const int kForceRealPools = [] {
  setenv("NORS_THREADS_OVERSUBSCRIBE", "1", 1);
  return 1;
}();

graph::WeightedGraph make_graph(int family, std::uint64_t seed) {
  util::Rng rng(seed);
  switch (family) {
    case 0:
      return graph::connected_gnm(150, 400, graph::WeightSpec::uniform(1, 24),
                                  rng);
    case 1:
      return graph::torus(12, 13, graph::WeightSpec::uniform(1, 9), rng);
    default:
      return graph::clustered(160, 5, 0.35, 40,
                              graph::WeightSpec::uniform(1, 12), rng);
  }
}

void expect_same_ledger(const congest::RoundLedger& a,
                        const congest::RoundLedger& b) {
  ASSERT_EQ(a.entries().size(), b.entries().size());
  for (std::size_t i = 0; i < a.entries().size(); ++i) {
    const auto& ea = a.entries()[i];
    const auto& eb = b.entries()[i];
    EXPECT_EQ(ea.phase, eb.phase) << "entry " << i;
    EXPECT_EQ(static_cast<int>(ea.kind), static_cast<int>(eb.kind))
        << "entry " << i;
    EXPECT_EQ(ea.rounds, eb.rounds) << "entry " << i << " (" << ea.phase << ")";
    EXPECT_EQ(ea.messages, eb.messages)
        << "entry " << i << " (" << ea.phase << ")";
    EXPECT_EQ(ea.note, eb.note) << "entry " << i << " (" << ea.phase << ")";
  }
}

struct Case {
  int family;
  int k;
};

class ThreadedDeterminism : public ::testing::TestWithParam<Case> {};

TEST_P(ThreadedDeterminism, PoolSizeNeverChangesAnyOutput) {
  const auto c = GetParam();
  const auto g = make_graph(c.family, 900 + static_cast<std::uint64_t>(c.k));
  core::SchemeParams p;
  p.k = c.k;
  p.seed = 77 + static_cast<std::uint64_t>(c.family);

  p.threads = 1;
  const auto serial = core::RoutingScheme::build(g, p);
  const auto serial_bytes = serve::FrozenScheme::freeze(serial).save();

  for (int threads : {2, 8}) {
    p.threads = threads;
    const auto threaded = core::RoutingScheme::build(g, p);
    // Byte-identical serialized scheme: same tables, labels, trick slabs,
    // tree directory, link map — everything the serving layer consumes.
    EXPECT_EQ(serial_bytes, serve::FrozenScheme::freeze(threaded).save())
        << "threads=" << threads;
    // Identical ledgers entry by entry (phases, kinds, rounds, messages,
    // notes) — the round-accounting contract of the paper reproduction.
    expect_same_ledger(serial.ledger(), threaded.ledger());
    EXPECT_EQ(serial.total_rounds(), threaded.total_rounds());
    EXPECT_EQ(serial.pruned_members(), threaded.pruned_members());
    EXPECT_EQ(serial.coverage_retries(), threaded.coverage_retries());
    EXPECT_EQ(serial.beta(), threaded.beta());
  }
}

INSTANTIATE_TEST_SUITE_P(
    FamiliesAndK, ThreadedDeterminism,
    ::testing::Values(Case{0, 2}, Case{0, 3}, Case{0, 4}, Case{1, 2},
                      Case{1, 3}, Case{1, 4}, Case{2, 2}, Case{2, 3},
                      Case{2, 4}));

// Golden round counts, pinned from the committed BENCH_rounds_scaling.json
// snapshot (bench/results/): the same graphs (bench_graph seeds 911+n /
// the E1 path series) and build parameters must reproduce the committed
// `rounds` column bit-for-bit. This is the regression net for the arena /
// scheduler work — an engine or allocation change that perturbs even one
// delivery order shows up here as a round-count drift long before anything
// else notices. Update these values ONLY alongside a deliberate,
// documented change to the simulation itself.
TEST(GoldenRounds, MatchesCommittedRoundsScalingSnapshot) {
  struct Row {
    bool path;
    int k;
    int n;
    std::int64_t rounds;
  };
  // Subset of the committed snapshot chosen to keep this test under a
  // second while covering both series, both k values and 8× size range.
  const Row rows[] = {
      {false, 3, 256, 65284},   {false, 3, 512, 125770},
      {false, 3, 1024, 226936}, {false, 3, 2048, 468644},
      {false, 4, 256, 53368},   {false, 4, 512, 123744},
      {false, 4, 1024, 191608}, {true, 3, 256, 66515},
      {true, 3, 512, 145280},   {true, 3, 1024, 248325},
  };
  for (const Row& row : rows) {
    util::Rng rng(911 + static_cast<std::uint64_t>(row.n));
    const graph::WeightedGraph g =
        row.path
            ? graph::path(row.n, graph::WeightSpec::uniform(1, 8), rng)
            : graph::connected_gnm(row.n, 3LL * row.n,
                                   graph::WeightSpec::uniform(1, 32), rng);
    core::SchemeParams p;
    p.k = row.k;
    p.seed = 7;
    const auto s = core::RoutingScheme::build(g, p);
    EXPECT_EQ(s.total_rounds(), row.rounds)
        << (row.path ? "path" : "gnm") << " n=" << row.n << " k=" << row.k;
  }
}

TEST(ThreadedDeterminism, CoverageRetryPathIsPoolSizeInvariant) {
  // The doubled-hop-bound retry loop (RoutingScheme::build) interacts with
  // every threaded phase: force it deterministically with a high-hop-
  // diameter lollipop and a starved hit constant, then require the threaded
  // builds to reproduce the serial retry count and the serialized scheme.
  util::Rng rng(1011);
  const auto g = graph::lollipop(150, 12, graph::WeightSpec::unit(), rng);
  core::SchemeParams p;
  p.k = 3;
  p.seed = 19;
  p.hit_constant = 0.05;
  p.max_b_retries = 10;

  p.threads = 1;
  const auto serial = core::RoutingScheme::build(g, p);
  ASSERT_GT(serial.coverage_retries(), 0);
  const auto serial_bytes = serve::FrozenScheme::freeze(serial).save();

  for (int threads : {2, 8}) {
    p.threads = threads;
    const auto threaded = core::RoutingScheme::build(g, p);
    EXPECT_EQ(threaded.coverage_retries(), serial.coverage_retries());
    EXPECT_EQ(serial_bytes, serve::FrozenScheme::freeze(threaded).save())
        << "threads=" << threads;
    expect_same_ledger(serial.ledger(), threaded.ledger());
  }
}

}  // namespace
}  // namespace nors
