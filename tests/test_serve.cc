#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "core/serialize.h"
#include "graph/generators.h"
#include "serve/frozen.h"
#include "serve/frozen_tz.h"
#include "serve/server.h"

namespace nors {
namespace {

using graph::Vertex;

graph::WeightedGraph test_graph(int n, std::uint64_t seed) {
  util::Rng rng(seed);
  return graph::connected_gnm(n, 3LL * n, graph::WeightSpec::uniform(1, 16),
                             rng);
}

core::RoutingScheme build_scheme(const graph::WeightedGraph& g, int k,
                                 bool label_trick, std::uint64_t seed) {
  core::SchemeParams p;
  p.k = k;
  p.seed = seed;
  p.label_trick = label_trick;
  return core::RoutingScheme::build(g, p);
}

void expect_same_decision(const core::RoutingScheme::RouteResult& live,
                          const serve::Decision& frozen, Vertex u, Vertex v) {
  EXPECT_EQ(live.ok, frozen.ok) << "u=" << u << " v=" << v;
  EXPECT_EQ(live.length, frozen.length) << "u=" << u << " v=" << v;
  EXPECT_EQ(live.hops, frozen.hops) << "u=" << u << " v=" << v;
  EXPECT_EQ(live.via_trick, frozen.via_trick) << "u=" << u << " v=" << v;
  EXPECT_EQ(live.tree_root, frozen.tree_root) << "u=" << u << " v=" << v;
  EXPECT_EQ(live.tree_level, frozen.tree_level) << "u=" << u << " v=" << v;
}

class FrozenSchemeTest : public ::testing::TestWithParam<int> {};

TEST_P(FrozenSchemeTest, RouteMatchesLiveSchemeOnRandomQueries) {
  const int k = GetParam();
  const auto g = test_graph(130, 4000 + static_cast<std::uint64_t>(k));
  const auto s = build_scheme(g, k, /*label_trick=*/true, 11);
  const auto f = serve::FrozenScheme::freeze(s);
  EXPECT_EQ(f.n(), g.n());
  EXPECT_EQ(f.k(), k);

  std::vector<Vertex> frozen_path;
  for (Vertex u = 0; u < g.n(); u += 3) {
    for (Vertex v = 1; v < g.n(); v += 5) {
      const auto live = s.route(u, v);
      const auto frozen = f.route(u, v, &frozen_path);
      expect_same_decision(live, frozen, u, v);
      EXPECT_EQ(live.path, frozen_path) << "u=" << u << " v=" << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, FrozenSchemeTest, ::testing::Values(2, 3, 4));

TEST(FrozenScheme, RouteMatchesLiveWithoutLabelTrick) {
  const auto g = test_graph(120, 4100);
  const auto s = build_scheme(g, 3, /*label_trick=*/false, 13);
  const auto f = serve::FrozenScheme::freeze(s);
  for (Vertex u = 0; u < g.n(); u += 7) {
    for (Vertex v = 2; v < g.n(); v += 3) {
      expect_same_decision(s.route(u, v), f.route(u, v), u, v);
    }
  }
}

TEST(FrozenScheme, LabelBlobMatchesWireEncoding) {
  const auto g = test_graph(90, 4200);
  const auto s = build_scheme(g, 3, true, 17);
  const auto f = serve::FrozenScheme::freeze(s);
  for (Vertex v = 0; v < g.n(); v += 11) {
    const auto expect = core::encode_vertex_label(s, v);
    const auto blob = f.label_blob(v);
    ASSERT_EQ(blob.size(), expect.size());
    EXPECT_TRUE(std::equal(blob.begin(), blob.end(), expect.begin()));
  }
}

TEST(FrozenScheme, SaveLoadRoundTripIsByteIdentical) {
  const auto g = test_graph(110, 4300);
  const auto s = build_scheme(g, 3, true, 19);
  const auto f = serve::FrozenScheme::freeze(s);

  const auto bytes = f.save();
  const auto loaded = serve::FrozenScheme::load(bytes);
  const auto bytes2 = loaded.save();
  ASSERT_EQ(bytes.size(), bytes2.size());
  EXPECT_EQ(bytes, bytes2);

  // The reloaded snapshot serves the same decisions as the live scheme.
  for (Vertex u = 0; u < g.n(); u += 9) {
    for (Vertex v = 1; v < g.n(); v += 8) {
      expect_same_decision(s.route(u, v), loaded.route(u, v), u, v);
    }
  }
}

TEST(FrozenScheme, FileRoundTrip) {
  const auto g = test_graph(80, 4400);
  const auto s = build_scheme(g, 2, true, 23);
  const auto f = serve::FrozenScheme::freeze(s);
  const std::string path = ::testing::TempDir() + "/nors_frozen_test.bin";
  f.save_file(path);
  const auto loaded = serve::FrozenScheme::load_file(path);
  EXPECT_EQ(f.save(), loaded.save());
  std::remove(path.c_str());
}

TEST(FrozenScheme, CorruptImagesAreRejected) {
  const auto g = test_graph(70, 4500);
  const auto s = build_scheme(g, 2, true, 29);
  const auto bytes = serve::FrozenScheme::freeze(s).save();

  // Bad magic.
  auto bad = bytes;
  bad[0] ^= 0xff;
  EXPECT_THROW(serve::FrozenScheme::load(bad), std::logic_error);

  // Unsupported version (bytes 8..11 hold the version).
  bad = bytes;
  bad[8] = 0x7f;
  EXPECT_THROW(serve::FrozenScheme::load(bad), std::logic_error);

  // Foreign endianness tag (bytes 12..15).
  bad = bytes;
  std::swap(bad[12], bad[15]);
  std::swap(bad[13], bad[14]);
  EXPECT_THROW(serve::FrozenScheme::load(bad), std::logic_error);

  // Truncation, both mid-header and mid-payload.
  bad.assign(bytes.begin(), bytes.begin() + 10);
  EXPECT_THROW(serve::FrozenScheme::load(bad), std::logic_error);
  bad.assign(bytes.begin(), bytes.begin() + bytes.size() / 2);
  EXPECT_THROW(serve::FrozenScheme::load(bad), std::logic_error);

  // A single flipped payload byte trips the checksum.
  bad = bytes;
  bad[bytes.size() / 2] ^= 0x01;
  EXPECT_THROW(serve::FrozenScheme::load(bad), std::logic_error);

  // Trailing garbage breaks the framing.
  bad = bytes;
  bad.push_back(0);
  EXPECT_THROW(serve::FrozenScheme::load(bad), std::logic_error);

  // The pristine image still loads.
  EXPECT_NO_THROW(serve::FrozenScheme::load(bytes));
}

TEST(RouteServer, ThreadedAndCachedBatchesMatchDirectRoutes) {
  const auto g = test_graph(140, 4600);
  const auto s = build_scheme(g, 3, true, 31);
  const auto f = serve::FrozenScheme::freeze(s);

  std::vector<serve::Query> queries;
  util::Rng rng(99);
  for (int i = 0; i < 4000; ++i) {
    const auto u = static_cast<Vertex>(rng.uniform(
        static_cast<std::uint64_t>(g.n())));
    const auto v = static_cast<Vertex>(rng.uniform(
        static_cast<std::uint64_t>(g.n())));
    queries.push_back({u, v});
  }

  serve::ServerOptions opt;
  opt.threads = 4;
  opt.cache_entries = 256;
  const serve::RouteServer server(f, opt);
  std::vector<serve::Decision> got;
  server.serve(queries, got);

  ASSERT_EQ(got.size(), queries.size());
  std::int64_t hops = 0;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    expect_same_decision(s.route(queries[i].u, queries[i].v), got[i],
                         queries[i].u, queries[i].v);
    hops += got[i].hops;
  }
  const auto stats = server.stats();
  EXPECT_EQ(stats.queries, static_cast<std::int64_t>(queries.size()));
  EXPECT_EQ(stats.hops, hops);
  EXPECT_GT(stats.cache_hits, 0);
  EXPECT_EQ(stats.cache_hits + stats.cache_misses > 0, true);

  // An uncached single-thread pass answers identically.
  const serve::RouteServer plain(f);
  std::vector<serve::Decision> got2;
  plain.serve(queries, got2);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(got[i].length, got2[i].length);
    EXPECT_EQ(got[i].hops, got2[i].hops);
  }
}

TEST(RouteServer, WorkerExceptionsPropagateToCaller) {
  const auto g = test_graph(60, 4800);
  const auto s = build_scheme(g, 2, true, 37);
  const auto f = serve::FrozenScheme::freeze(s);
  serve::ServerOptions opt;
  opt.threads = 4;
  const serve::RouteServer server(f, opt);
  // A default Query holds kNoVertex endpoints; the throw happens inside a
  // worker thread and must surface on the caller, not std::terminate.
  std::vector<serve::Query> queries(100);
  std::vector<serve::Decision> out;
  EXPECT_THROW(server.serve(queries, out), std::logic_error);
}

TEST(FrozenTzOracle, EstimatesMatchLiveOracle) {
  const auto g = test_graph(150, 4700);
  tz::TzDistanceOracle::Params p;
  p.k = 3;
  p.seed = 5;
  const auto oracle = tz::TzDistanceOracle::build(g, p);
  const auto frozen = serve::FrozenTzOracle::freeze(oracle, g.n());
  for (Vertex u = 0; u < g.n(); u += 4) {
    for (Vertex v = 1; v < g.n(); v += 6) {
      const auto live = oracle.query(u, v);
      const auto snap = frozen.query(u, v);
      EXPECT_EQ(live.estimate, snap.estimate) << "u=" << u << " v=" << v;
      EXPECT_EQ(live.iterations, snap.iterations) << "u=" << u << " v=" << v;
    }
  }
}

}  // namespace
}  // namespace nors
