#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "core/serialize.h"
#include "graph/generators.h"
#include "serve/frozen.h"
#include "serve/frozen_tz.h"
#include "serve/server.h"
#include "serve/shard.h"
#include "serve/table_cache.h"

namespace nors {
namespace {

using graph::Vertex;

graph::WeightedGraph test_graph(int n, std::uint64_t seed) {
  util::Rng rng(seed);
  return graph::connected_gnm(n, 3LL * n, graph::WeightSpec::uniform(1, 16),
                             rng);
}

/// The three generator families of the equivalence sweep (same trio as
/// test_determinism): sparse random, regular torus, clustered.
graph::WeightedGraph family_graph(int family, std::uint64_t seed) {
  util::Rng rng(seed);
  switch (family) {
    case 0:
      return graph::connected_gnm(120, 330, graph::WeightSpec::uniform(1, 24),
                                  rng);
    case 1:
      return graph::torus(10, 11, graph::WeightSpec::uniform(1, 9), rng);
    default:
      return graph::clustered(120, 5, 0.35, 40,
                              graph::WeightSpec::uniform(1, 12), rng);
  }
}

/// Saves `f`, maps the file, and hands the mapping to `body`; removes the
/// file afterwards. The mapping must outlive all views into it, so the
/// callback shape keeps lifetimes honest.
template <typename Body>
void with_mapped(const serve::FrozenScheme& f, const std::string& tag,
                 Body&& body) {
  const std::string path = ::testing::TempDir() + "/nors_map_" + tag + ".bin";
  f.save_file(path);
  {
    const auto mapped = serve::FrozenScheme::map(path);
    ASSERT_TRUE(mapped.is_mapped());
    body(mapped);
  }
  std::remove(path.c_str());
}

core::RoutingScheme build_scheme(const graph::WeightedGraph& g, int k,
                                 bool label_trick, std::uint64_t seed) {
  core::SchemeParams p;
  p.k = k;
  p.seed = seed;
  p.label_trick = label_trick;
  return core::RoutingScheme::build(g, p);
}

void expect_same_decision(const core::RoutingScheme::RouteResult& live,
                          const serve::Decision& frozen, Vertex u, Vertex v) {
  EXPECT_EQ(live.ok, frozen.ok) << "u=" << u << " v=" << v;
  EXPECT_EQ(live.length, frozen.length) << "u=" << u << " v=" << v;
  EXPECT_EQ(live.hops, frozen.hops) << "u=" << u << " v=" << v;
  EXPECT_EQ(live.via_trick, frozen.via_trick) << "u=" << u << " v=" << v;
  EXPECT_EQ(live.tree_root, frozen.tree_root) << "u=" << u << " v=" << v;
  EXPECT_EQ(live.tree_level, frozen.tree_level) << "u=" << u << " v=" << v;
}

class FrozenSchemeTest : public ::testing::TestWithParam<int> {};

TEST_P(FrozenSchemeTest, RouteMatchesLiveSchemeOnRandomQueries) {
  const int k = GetParam();
  const auto g = test_graph(130, 4000 + static_cast<std::uint64_t>(k));
  const auto s = build_scheme(g, k, /*label_trick=*/true, 11);
  const auto f = serve::FrozenScheme::freeze(s);
  EXPECT_EQ(f.n(), g.n());
  EXPECT_EQ(f.k(), k);

  std::vector<Vertex> frozen_path;
  for (Vertex u = 0; u < g.n(); u += 3) {
    for (Vertex v = 1; v < g.n(); v += 5) {
      const auto live = s.route(u, v);
      const auto frozen = f.route(u, v, &frozen_path);
      expect_same_decision(live, frozen, u, v);
      EXPECT_EQ(live.path, frozen_path) << "u=" << u << " v=" << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, FrozenSchemeTest, ::testing::Values(2, 3, 4));

TEST(FrozenScheme, RouteMatchesLiveWithoutLabelTrick) {
  const auto g = test_graph(120, 4100);
  const auto s = build_scheme(g, 3, /*label_trick=*/false, 13);
  const auto f = serve::FrozenScheme::freeze(s);
  for (Vertex u = 0; u < g.n(); u += 7) {
    for (Vertex v = 2; v < g.n(); v += 3) {
      expect_same_decision(s.route(u, v), f.route(u, v), u, v);
    }
  }
}

TEST(FrozenScheme, LabelBlobMatchesWireEncoding) {
  const auto g = test_graph(90, 4200);
  const auto s = build_scheme(g, 3, true, 17);
  const auto f = serve::FrozenScheme::freeze(s);
  for (Vertex v = 0; v < g.n(); v += 11) {
    const auto expect = core::encode_vertex_label(s, v);
    const auto blob = f.label_blob(v);
    ASSERT_EQ(blob.size(), expect.size());
    EXPECT_TRUE(std::equal(blob.begin(), blob.end(), expect.begin()));
  }
}

TEST(FrozenScheme, SaveLoadRoundTripIsByteIdentical) {
  const auto g = test_graph(110, 4300);
  const auto s = build_scheme(g, 3, true, 19);
  const auto f = serve::FrozenScheme::freeze(s);

  const auto bytes = f.save();
  const auto loaded = serve::FrozenScheme::load(bytes);
  const auto bytes2 = loaded.save();
  ASSERT_EQ(bytes.size(), bytes2.size());
  EXPECT_EQ(bytes, bytes2);

  // The reloaded snapshot serves the same decisions as the live scheme.
  for (Vertex u = 0; u < g.n(); u += 9) {
    for (Vertex v = 1; v < g.n(); v += 8) {
      expect_same_decision(s.route(u, v), loaded.route(u, v), u, v);
    }
  }
}

TEST(FrozenScheme, FileRoundTrip) {
  const auto g = test_graph(80, 4400);
  const auto s = build_scheme(g, 2, true, 23);
  const auto f = serve::FrozenScheme::freeze(s);
  const std::string path = ::testing::TempDir() + "/nors_frozen_test.bin";
  f.save_file(path);
  const auto loaded = serve::FrozenScheme::load_file(path);
  EXPECT_EQ(f.save(), loaded.save());
  std::remove(path.c_str());
}

TEST(FrozenScheme, CorruptImagesAreRejected) {
  const auto g = test_graph(70, 4500);
  const auto s = build_scheme(g, 2, true, 29);
  const auto bytes = serve::FrozenScheme::freeze(s).save();

  // Bad magic.
  auto bad = bytes;
  bad[0] ^= 0xff;
  EXPECT_THROW(serve::FrozenScheme::load(bad), std::logic_error);

  // Unsupported version (bytes 8..11 hold the version).
  bad = bytes;
  bad[8] = 0x7f;
  EXPECT_THROW(serve::FrozenScheme::load(bad), std::logic_error);

  // Foreign endianness tag (bytes 12..15).
  bad = bytes;
  std::swap(bad[12], bad[15]);
  std::swap(bad[13], bad[14]);
  EXPECT_THROW(serve::FrozenScheme::load(bad), std::logic_error);

  // Truncation, both mid-header and mid-payload.
  bad.assign(bytes.begin(), bytes.begin() + 10);
  EXPECT_THROW(serve::FrozenScheme::load(bad), std::logic_error);
  bad.assign(bytes.begin(), bytes.begin() + bytes.size() / 2);
  EXPECT_THROW(serve::FrozenScheme::load(bad), std::logic_error);

  // A single flipped payload byte trips the checksum.
  bad = bytes;
  bad[bytes.size() / 2] ^= 0x01;
  EXPECT_THROW(serve::FrozenScheme::load(bad), std::logic_error);

  // Trailing garbage breaks the framing.
  bad = bytes;
  bad.push_back(0);
  EXPECT_THROW(serve::FrozenScheme::load(bad), std::logic_error);

  // The pristine image still loads.
  EXPECT_NO_THROW(serve::FrozenScheme::load(bytes));
}

TEST(RouteServer, ThreadedAndCachedBatchesMatchDirectRoutes) {
  const auto g = test_graph(140, 4600);
  const auto s = build_scheme(g, 3, true, 31);
  const auto f = serve::FrozenScheme::freeze(s);

  std::vector<serve::Query> queries;
  util::Rng rng(99);
  for (int i = 0; i < 4000; ++i) {
    const auto u = static_cast<Vertex>(rng.uniform(
        static_cast<std::uint64_t>(g.n())));
    const auto v = static_cast<Vertex>(rng.uniform(
        static_cast<std::uint64_t>(g.n())));
    queries.push_back({u, v});
  }

  serve::ServerOptions opt;
  opt.threads = 4;
  opt.cache_entries = 256;
  const serve::RouteServer server(f, opt);
  std::vector<serve::Decision> got;
  server.serve(queries, got);

  ASSERT_EQ(got.size(), queries.size());
  std::int64_t hops = 0;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    expect_same_decision(s.route(queries[i].u, queries[i].v), got[i],
                         queries[i].u, queries[i].v);
    hops += got[i].hops;
  }
  const auto stats = server.stats();
  EXPECT_EQ(stats.queries, static_cast<std::int64_t>(queries.size()));
  EXPECT_EQ(stats.hops, hops);
  EXPECT_GT(stats.cache_hits, 0);
  EXPECT_EQ(stats.cache_hits + stats.cache_misses > 0, true);

  // An uncached single-thread pass answers identically.
  const serve::RouteServer plain(f);
  std::vector<serve::Decision> got2;
  plain.serve(queries, got2);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(got[i].length, got2[i].length);
    EXPECT_EQ(got[i].hops, got2[i].hops);
  }
}

TEST(RouteServer, WorkerExceptionsPropagateToCaller) {
  const auto g = test_graph(60, 4800);
  const auto s = build_scheme(g, 2, true, 37);
  const auto f = serve::FrozenScheme::freeze(s);
  serve::ServerOptions opt;
  opt.threads = 4;
  const serve::RouteServer server(f, opt);
  // A default Query holds kNoVertex endpoints; the throw happens inside a
  // worker thread and must surface on the caller, not std::terminate.
  std::vector<serve::Query> queries(100);
  std::vector<serve::Decision> out;
  EXPECT_THROW(server.serve(queries, out), std::logic_error);
}

TEST(FrozenSchemeMap, MappedImageIsBitIdenticalToOwningLoad) {
  const auto g = test_graph(110, 5100);
  const auto s = build_scheme(g, 3, true, 41);
  const auto f = serve::FrozenScheme::freeze(s);
  const auto bytes = f.save();
  const auto owned = serve::FrozenScheme::load(bytes);
  ASSERT_FALSE(owned.is_mapped());

  with_mapped(f, "bitident", [&](const serve::FrozenScheme& mapped) {
    // save→map→save reproduces the image byte-for-byte, like load().
    EXPECT_EQ(mapped.save(), bytes);
    EXPECT_EQ(mapped.byte_size(), owned.byte_size());
    // And the mapped snapshot serves decision-for-decision like both the
    // owning load and the live scheme, including recorded paths.
    std::vector<Vertex> mp, op;
    for (Vertex u = 0; u < g.n(); u += 2) {
      for (Vertex v = 1; v < g.n(); v += 3) {
        const auto dm = mapped.route(u, v, &mp);
        const auto dw = owned.route(u, v, &op);
        expect_same_decision(s.route(u, v), dm, u, v);
        EXPECT_EQ(dm.length, dw.length);
        EXPECT_EQ(mp, op) << "u=" << u << " v=" << v;
      }
    }
  });
}

TEST(FrozenSchemeMap, MappedLabelBlobsMatch) {
  const auto g = test_graph(90, 5200);
  const auto s = build_scheme(g, 2, true, 43);
  const auto f = serve::FrozenScheme::freeze(s);
  with_mapped(f, "blobs", [&](const serve::FrozenScheme& mapped) {
    for (Vertex v = 0; v < g.n(); v += 5) {
      const auto expect = core::encode_vertex_label(s, v);
      const auto blob = mapped.label_blob(v);
      ASSERT_EQ(blob.size(), expect.size());
      EXPECT_TRUE(std::equal(blob.begin(), blob.end(), expect.begin()));
    }
  });
}

// ---------------------------------------------------------------------------
// Randomized route-equivalence sweep: for every generator family × k, the
// sharded server (4 shards, caches on) and the mmap-loaded FrozenScheme
// must be decision-for-decision identical to the live scheme over the full
// (s, t) matrix — these n are small enough to afford all pairs.

struct SweepCase {
  int family;
  int k;
};

class ServingEquivalenceSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(ServingEquivalenceSweep, ShardedAndMappedMatchLiveOnAllPairs) {
  const auto c = GetParam();
  const auto g = family_graph(c.family, 6100 + static_cast<std::uint64_t>(
                                                  c.family * 10 + c.k));
  const auto s = build_scheme(g, c.k, /*label_trick=*/true,
                              61 + static_cast<std::uint64_t>(c.k));
  const auto f = serve::FrozenScheme::freeze(s);

  with_mapped(f, "sweep", [&](const serve::FrozenScheme& mapped) {
    serve::ShardedOptions opt;
    opt.shards = 4;
    opt.cache_entries = 128;
    serve::ShardedRouteServer server(mapped, opt);
    ASSERT_EQ(server.shards(), 4);

    std::vector<serve::Query> queries;
    queries.reserve(static_cast<std::size_t>(g.n()) *
                    static_cast<std::size_t>(g.n()));
    for (Vertex u = 0; u < g.n(); ++u) {
      for (Vertex v = 0; v < g.n(); ++v) queries.push_back({u, v});
    }
    std::vector<serve::Decision> got;
    server.serve(queries, got);
    ASSERT_EQ(got.size(), queries.size());

    for (std::size_t i = 0; i < queries.size(); ++i) {
      const auto [u, v] = queries[i];
      expect_same_decision(s.route(u, v), got[i], u, v);
      // Spot-stride the direct mapped route (it is the same code path the
      // shard workers run; full coverage of it lives in the loop above).
      if (i % 17 == 0) {
        expect_same_decision(s.route(u, v), mapped.route(u, v), u, v);
      }
    }
    const auto totals = server.totals();
    EXPECT_EQ(totals.queries, static_cast<std::int64_t>(queries.size()));
  });
}

INSTANTIATE_TEST_SUITE_P(
    FamiliesAndKs, ServingEquivalenceSweep,
    ::testing::Values(SweepCase{0, 2}, SweepCase{0, 3}, SweepCase{0, 4},
                      SweepCase{1, 2}, SweepCase{1, 3}, SweepCase{1, 4},
                      SweepCase{2, 2}, SweepCase{2, 3}, SweepCase{2, 4}));

// ---------------------------------------------------------------------------
// ShardedRouteServer behavior beyond equivalence.

TEST(ShardedRouteServer, AnswersLandInSubmissionOrder) {
  const auto g = test_graph(140, 6500);
  const auto s = build_scheme(g, 3, true, 47);
  const auto f = serve::FrozenScheme::freeze(s);
  serve::ShardedOptions opt;
  opt.shards = 4;
  serve::ShardedRouteServer server(f, opt);

  // Queries deliberately ping-pong across shard ranges so consecutive
  // answers come from different workers; out[i] must still match
  // queries[i] exactly.
  std::vector<serve::Query> queries;
  for (int rep = 0; rep < 500; ++rep) {
    const auto u = static_cast<Vertex>((rep * 37) % g.n());
    const auto v = static_cast<Vertex>((rep * 53 + 11) % g.n());
    queries.push_back({u, v});
  }
  std::vector<serve::Decision> got;
  server.serve(queries, got);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    expect_same_decision(s.route(queries[i].u, queries[i].v), got[i],
                         queries[i].u, queries[i].v);
  }
}

TEST(ShardedRouteServer, AsyncBatchesCompleteInAnyWaitOrder) {
  const auto g = test_graph(120, 6600);
  const auto s = build_scheme(g, 2, true, 53);
  const auto f = serve::FrozenScheme::freeze(s);
  serve::ShardedOptions opt;
  opt.shards = 3;
  opt.cache_entries = 64;
  serve::ShardedRouteServer server(f, opt);

  constexpr int kBatches = 6;
  std::vector<std::vector<serve::Query>> queries(kBatches);
  std::vector<std::vector<serve::Decision>> out(kBatches);
  std::vector<serve::ShardedRouteServer::Batch> tickets;
  util::Rng rng(606);
  for (int b = 0; b < kBatches; ++b) {
    for (int i = 0; i < 200 + 40 * b; ++i) {
      queries[static_cast<std::size_t>(b)].push_back(
          {static_cast<Vertex>(rng.uniform(
               static_cast<std::uint64_t>(g.n()))),
           static_cast<Vertex>(rng.uniform(
               static_cast<std::uint64_t>(g.n())))});
    }
    auto& q = queries[static_cast<std::size_t>(b)];
    out[static_cast<std::size_t>(b)].resize(q.size());
    tickets.push_back(server.submit(q.data(), q.size(),
                                    out[static_cast<std::size_t>(b)].data()));
  }
  // Wait newest-first: completion must not depend on wait order.
  for (int b = kBatches - 1; b >= 0; --b) {
    tickets[static_cast<std::size_t>(b)].wait();
    EXPECT_TRUE(tickets[static_cast<std::size_t>(b)].done());
    const auto& q = queries[static_cast<std::size_t>(b)];
    for (std::size_t i = 0; i < q.size(); ++i) {
      expect_same_decision(s.route(q[i].u, q[i].v),
                           out[static_cast<std::size_t>(b)][i], q[i].u,
                           q[i].v);
    }
  }
  const auto totals = server.totals();
  std::int64_t expected = 0;
  for (const auto& q : queries) {
    expected += static_cast<std::int64_t>(q.size());
  }
  EXPECT_EQ(totals.queries, expected);
  EXPECT_GT(totals.cache_hits, 0);
}

TEST(ShardedRouteServer, WorkerExceptionsSurfaceAtWaitAndServerSurvives) {
  const auto g = test_graph(80, 6700);
  const auto s = build_scheme(g, 2, true, 59);
  const auto f = serve::FrozenScheme::freeze(s);
  serve::ShardedOptions opt;
  opt.shards = 2;
  serve::ShardedRouteServer server(f, opt);

  // A default Query holds kNoVertex endpoints: the worker's route() throws
  // and wait() rethrows on the submitting thread.
  std::vector<serve::Query> poison(50);
  std::vector<serve::Decision> out(poison.size());
  EXPECT_THROW(server.serve(poison.data(), poison.size(), out.data()),
               std::logic_error);

  // The server must stay fully serviceable afterwards.
  std::vector<serve::Query> good;
  for (Vertex u = 0; u < g.n(); u += 3) good.push_back({u, 1});
  std::vector<serve::Decision> got;
  server.serve(good, got);
  for (std::size_t i = 0; i < good.size(); ++i) {
    expect_same_decision(s.route(good[i].u, good[i].v), got[i], good[i].u,
                         good[i].v);
  }
}

TEST(ShardedRouteServer, ConcurrentProducersMatchSerialReplayAndStatsSum) {
  const auto g = test_graph(150, 6800);
  const auto s = build_scheme(g, 3, true, 67);
  const auto f = serve::FrozenScheme::freeze(s);
  serve::ShardedOptions opt;
  opt.shards = 4;
  opt.cache_entries = 128;
  serve::ShardedRouteServer server(f, opt);

  constexpr int kProducers = 8;
  constexpr int kBatchesPerProducer = 20;
  std::vector<std::vector<serve::Query>> queries(kProducers);
  std::vector<std::vector<serve::Decision>> out(kProducers);

  // Pre-generate every producer's interleaved cross-shard batches, with
  // batch boundaries recorded so workers see many concurrent tickets.
  std::vector<std::vector<std::size_t>> bounds(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    util::Rng rng(9000 + static_cast<std::uint64_t>(p));
    auto& q = queries[static_cast<std::size_t>(p)];
    auto& cut = bounds[static_cast<std::size_t>(p)];
    for (int b = 0; b < kBatchesPerProducer; ++b) {
      cut.push_back(q.size());
      const auto len = 50 + rng.uniform(300);
      for (std::uint64_t i = 0; i < len; ++i) {
        q.push_back({static_cast<Vertex>(rng.uniform(
                         static_cast<std::uint64_t>(g.n()))),
                     static_cast<Vertex>(rng.uniform(
                         static_cast<std::uint64_t>(g.n())))});
      }
    }
    cut.push_back(q.size());
    out[static_cast<std::size_t>(p)].resize(q.size());
  }

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([p, &server, &queries, &out, &bounds] {
      const auto& q = queries[static_cast<std::size_t>(p)];
      const auto& cut = bounds[static_cast<std::size_t>(p)];
      auto* o = out[static_cast<std::size_t>(p)].data();
      // Alternate async pairs and blocking calls to interleave harder.
      for (std::size_t b = 0; b + 1 < cut.size(); b += 2) {
        const std::size_t lo = cut[b], hi = cut[b + 1];
        if (b + 2 < cut.size()) {
          const std::size_t hi2 = cut[b + 2];
          auto t1 = server.submit(q.data() + lo, hi - lo, o + lo);
          auto t2 = server.submit(q.data() + hi, hi2 - hi, o + hi);
          t2.wait();
          t1.wait();
        } else {
          server.serve(q.data() + lo, hi - lo, o + lo);
        }
      }
    });
  }
  for (auto& t : producers) t.join();

  // Serial replay: every answer equals the single-threaded frozen route.
  std::int64_t issued = 0, hops = 0;
  for (int p = 0; p < kProducers; ++p) {
    const auto& q = queries[static_cast<std::size_t>(p)];
    for (std::size_t i = 0; i < q.size(); ++i) {
      const auto expect = f.route(q[i].u, q[i].v);
      const auto& got = out[static_cast<std::size_t>(p)][i];
      ASSERT_EQ(expect.length, got.length) << "p=" << p << " i=" << i;
      ASSERT_EQ(expect.hops, got.hops) << "p=" << p << " i=" << i;
      ASSERT_EQ(expect.tree_root, got.tree_root) << "p=" << p << " i=" << i;
      ++issued;
      hops += got.hops;
    }
  }

  // Stat counters must sum exactly: per-shard → totals → issued queries.
  const auto totals = server.totals();
  EXPECT_EQ(totals.queries, issued);
  EXPECT_EQ(totals.hops, hops);
  std::int64_t by_shard_queries = 0, by_shard_hops = 0, by_shard_batches = 0;
  for (int sh = 0; sh < server.shards(); ++sh) {
    const auto st = server.shard_stats(sh);
    by_shard_queries += st.queries;
    by_shard_hops += st.hops;
    by_shard_batches += st.batches;
    EXPECT_GE(st.p99_us, st.p50_us);
  }
  EXPECT_EQ(by_shard_queries, issued);
  EXPECT_EQ(by_shard_hops, hops);
  EXPECT_EQ(by_shard_batches, totals.batches);
}

TEST(ShardedRouteServer, ShardRangesPartitionTheVertexSpace) {
  const auto g = test_graph(97, 6900);  // odd n: uneven last shard
  const auto s = build_scheme(g, 2, true, 71);
  const auto f = serve::FrozenScheme::freeze(s);
  for (const int k : {1, 2, 4, 5}) {
    serve::ShardedOptions opt;
    opt.shards = k;
    serve::ShardedRouteServer server(f, opt);
    EXPECT_EQ(server.shards(), k);
    int last = 0;
    for (Vertex u = 0; u < g.n(); ++u) {
      const int sh = server.shard_of(u);
      ASSERT_GE(sh, last);  // contiguous, monotone ranges
      ASSERT_LT(sh, k);
      last = sh;
    }
    EXPECT_EQ(last, k - 1);  // every shard owns at least one vertex
  }
}

TEST(FrozenScheme, RouteBatchMatchesSerialRoutes) {
  // The pipelined engine must answer exactly like the serial route() for
  // every lane-count shape: empty, shorter than the lane ring, a
  // non-multiple tail, and u==v self-queries mixed in.
  const auto g = test_graph(130, 6100);
  const auto s = build_scheme(g, 3, true, 83);
  const auto f = serve::FrozenScheme::freeze(s);

  util::Rng rng(6101);
  std::vector<serve::Query> queries;
  for (int i = 0; i < 997; ++i) {  // odd count: partial final lanes
    serve::Query q;
    q.u = static_cast<Vertex>(rng.uniform(static_cast<std::uint64_t>(g.n())));
    q.v = i % 17 == 0
              ? q.u  // self-query retires in the admit stage
              : static_cast<Vertex>(
                    rng.uniform(static_cast<std::uint64_t>(g.n())));
    queries.push_back(q);
  }
  for (const std::size_t count :
       {std::size_t{0}, std::size_t{1}, std::size_t{7},
        static_cast<std::size_t>(serve::FrozenScheme::kBatchLanes),
        queries.size()}) {
    std::vector<serve::Decision> out(count + 1);
    out[count].hops = -7;  // canary: the engine must not write past count
    serve::BatchStats bs;
    f.route_batch(queries.data(), count, out.data(), &bs);
    EXPECT_EQ(bs.completed, static_cast<std::int64_t>(count));
    std::int64_t hops = 0;
    for (std::size_t i = 0; i < count; ++i) {
      const auto expect = f.route(queries[i].u, queries[i].v);
      EXPECT_EQ(expect.ok, out[i].ok);
      EXPECT_EQ(expect.length, out[i].length);
      EXPECT_EQ(expect.hops, out[i].hops);
      EXPECT_EQ(expect.via_trick, out[i].via_trick);
      EXPECT_EQ(expect.tree_root, out[i].tree_root);
      hops += expect.hops;
    }
    EXPECT_EQ(bs.hops, hops);
    EXPECT_EQ(out[count].hops, -7);
  }

  // The cached engine agrees too, and its hit/miss accounting is total.
  serve::TableCache cache(f, 512);
  std::vector<serve::Decision> out(queries.size());
  serve::BatchStats bs;
  f.route_batch_cached(queries.data(), queries.size(), out.data(), cache,
                       &bs);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const auto expect = f.route(queries[i].u, queries[i].v);
    EXPECT_EQ(expect.length, out[i].length) << "i=" << i;
    EXPECT_EQ(expect.hops, out[i].hops) << "i=" << i;
  }
  EXPECT_GT(bs.cache_hits, 0);
  EXPECT_GT(bs.cache_misses, 0);
}

TEST(FrozenScheme, BothImageVersionsRoundTripByteIdentically) {
  const auto g = test_graph(110, 6200);
  const auto s = build_scheme(g, 3, true, 89);
  const auto f = serve::FrozenScheme::freeze(s);
  EXPECT_EQ(f.format_version(), 3u);

  const auto v3 = f.save_as(3);
  const auto v2 = f.save_as(2);
  EXPECT_EQ(f.save(), v3);  // latest is the default
  EXPECT_LT(v3.size(), v2.size()) << "varint columns should shrink the image";

  // Each version survives load()→save() byte-for-byte — load remembers
  // which version it decoded and save() re-emits it.
  const auto l3 = serve::FrozenScheme::load(v3);
  EXPECT_EQ(l3.format_version(), 3u);
  EXPECT_EQ(l3.save(), v3);
  const auto l2 = serve::FrozenScheme::load(v2);
  EXPECT_EQ(l2.format_version(), 2u);
  EXPECT_EQ(l2.save(), v2);

  // Cross-version: a v2 load re-encodes to the exact v3 bytes and back.
  EXPECT_EQ(l2.save_as(3), v3);
  EXPECT_EQ(l3.save_as(2), v2);

  // And both serve identical decisions.
  for (Vertex u = 0; u < g.n(); u += 9) {
    for (Vertex v = 1; v < g.n(); v += 8) {
      expect_same_decision(s.route(u, v), l2.route(u, v), u, v);
      expect_same_decision(s.route(u, v), l3.route(u, v), u, v);
    }
  }

  // The mmap path round-trips both versions too (save→map→save).
  for (const std::uint32_t version : {2u, 3u}) {
    const auto bytes = f.save_as(version);
    const std::string path = ::testing::TempDir() + "/nors_ver_" +
                             std::to_string(version) + ".bin";
    std::FILE* fp = std::fopen(path.c_str(), "wb");
    ASSERT_NE(fp, nullptr);
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), fp), bytes.size());
    std::fclose(fp);
    const auto mapped = serve::FrozenScheme::map(path);
    EXPECT_EQ(mapped.format_version(), version);
    EXPECT_EQ(mapped.save(), bytes);
    std::remove(path.c_str());
  }

  EXPECT_THROW(f.save_as(1), std::logic_error);
  EXPECT_THROW(f.save_as(4), std::logic_error);
}

TEST(FrozenSchemeMap, HugepageEnvSmoke) {
  // NORS_HUGEPAGES=1 must never change behavior — only the backing. On
  // machines without a hugepage pool the copy falls back to a regular
  // anonymous mapping (or plain file mmap), so this runs everywhere.
  const auto g = test_graph(90, 6300);
  const auto s = build_scheme(g, 2, true, 97);
  const auto f = serve::FrozenScheme::freeze(s);
  ::setenv("NORS_HUGEPAGES", "1", 1);
  with_mapped(f, "huge", [&](const serve::FrozenScheme& mapped) {
    EXPECT_EQ(mapped.save(), f.save());
    for (Vertex u = 0; u < g.n(); u += 13) {
      for (Vertex v = 3; v < g.n(); v += 11) {
        expect_same_decision(s.route(u, v), mapped.route(u, v), u, v);
      }
    }
  });
  ::unsetenv("NORS_HUGEPAGES");
}

TEST(ShardedRouteServer, WorkerCountIsClampedToHardware) {
  const auto g = test_graph(64, 6400);
  const auto s = build_scheme(g, 2, true, 101);
  const auto f = serve::FrozenScheme::freeze(s);
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  for (const int k : {1, 2, 8}) {
    serve::ShardedOptions opt;
    opt.shards = k;
    serve::ShardedRouteServer server(f, opt);
    EXPECT_EQ(server.shards(), k) << "shard count must stay as requested";
    EXPECT_EQ(server.workers(), std::min(k, std::max(1, hw)));
    EXPECT_GE(server.workers(), 1);
    EXPECT_LE(server.workers(), server.shards());
  }
  // Oversubscription opt-out restores one worker per shard.
  ::setenv("NORS_THREADS_OVERSUBSCRIBE", "1", 1);
  {
    serve::ShardedOptions opt;
    opt.shards = 8;
    serve::ShardedRouteServer server(f, opt);
    EXPECT_EQ(server.workers(), 8);
    // Still correct with many shards per core — spot-check the answers.
    std::vector<serve::Query> queries;
    for (Vertex u = 0; u < g.n(); u += 5) {
      for (Vertex v = 1; v < g.n(); v += 7) queries.push_back({u, v});
    }
    std::vector<serve::Decision> out;
    server.serve(queries, out);
    for (std::size_t i = 0; i < queries.size(); ++i) {
      expect_same_decision(s.route(queries[i].u, queries[i].v), out[i],
                           queries[i].u, queries[i].v);
    }
  }
  ::unsetenv("NORS_THREADS_OVERSUBSCRIBE");
}

TEST(FrozenTzOracle, QueryBatchMatchesSerialQueries) {
  const auto g = test_graph(140, 6500);
  tz::TzDistanceOracle::Params p;
  p.k = 3;
  p.seed = 7;
  const auto oracle = tz::TzDistanceOracle::build(g, p);
  const auto frozen = serve::FrozenTzOracle::freeze(oracle, g.n());
  util::Rng rng(6501);
  std::vector<serve::Query> queries;
  for (int i = 0; i < 731; ++i) {  // partial final lane ring
    queries.push_back(
        {static_cast<Vertex>(rng.uniform(static_cast<std::uint64_t>(g.n()))),
         static_cast<Vertex>(rng.uniform(static_cast<std::uint64_t>(g.n())))});
  }
  std::vector<serve::FrozenTzOracle::Result> results(queries.size());
  frozen.query_batch(queries.data(), queries.size(), results.data());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const auto expect = frozen.query(queries[i].u, queries[i].v);
    EXPECT_EQ(results[i].estimate, expect.estimate) << "i=" << i;
    EXPECT_EQ(results[i].iterations, expect.iterations) << "i=" << i;
  }
}

TEST(FrozenTzOracle, EstimatesMatchLiveOracle) {
  const auto g = test_graph(150, 4700);
  tz::TzDistanceOracle::Params p;
  p.k = 3;
  p.seed = 5;
  const auto oracle = tz::TzDistanceOracle::build(g, p);
  const auto frozen = serve::FrozenTzOracle::freeze(oracle, g.n());
  for (Vertex u = 0; u < g.n(); u += 4) {
    for (Vertex v = 1; v < g.n(); v += 6) {
      const auto live = oracle.query(u, v);
      const auto snap = frozen.query(u, v);
      EXPECT_EQ(live.estimate, snap.estimate) << "u=" << u << " v=" << v;
      EXPECT_EQ(live.iterations, snap.iterations) << "u=" << u << " v=" << v;
    }
  }
}

}  // namespace
}  // namespace nors
