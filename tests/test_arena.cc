#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>

#include "util/arena.h"

// util/arena.h (DESIGN.md §9): the size-bucketed slab pool, the flat
// PooledBuf and the bump Arena. The properties pinned here are the ones the
// construction pipeline relies on: recycling (a released slab serves the
// next same-class request without new OS memory), high-water reuse after
// Arena::reset, alignment of bump allocations, trim actually releasing, and
// stat counters that account every byte — plus enough pointer traffic that
// the NORS_SANITIZE CI leg would catch any lifetime or bounds mistake.

namespace nors {
namespace {

TEST(SlabPool, RoundsUpToPowerOfTwoClasses) {
  util::SlabPool pool;
  const auto a = pool.acquire(1);
  EXPECT_EQ(a.bytes, util::SlabPool::kMinSlabBytes);
  const auto b = pool.acquire(util::SlabPool::kMinSlabBytes + 1);
  EXPECT_EQ(b.bytes, 2 * util::SlabPool::kMinSlabBytes);
  pool.recycle(a);
  pool.recycle(b);
}

TEST(SlabPool, RecyclesExactClassAndCountsReuse) {
  util::SlabPool pool;
  auto s = pool.acquire(3 * util::SlabPool::kMinSlabBytes);  // 256 KiB class
  void* const p = s.p;
  const std::size_t bytes = s.bytes;
  pool.recycle(s);
  EXPECT_EQ(pool.pooled_bytes(), bytes);

  // Same class: served by the pooled slab, same pointer, no fresh mapping.
  const auto before = pool.stats();
  auto again = pool.acquire(bytes);
  const auto after = pool.stats();
  EXPECT_EQ(again.p, p);
  EXPECT_EQ(after.slabs_mapped, before.slabs_mapped);
  EXPECT_EQ(after.slabs_reused, before.slabs_reused + 1);
  EXPECT_EQ(after.bytes_reused - before.bytes_reused, bytes);

  // Different class: pooled slab does not satisfy it.
  auto bigger = pool.acquire(2 * bytes);
  EXPECT_NE(bigger.p, nullptr);
  EXPECT_EQ(pool.stats().slabs_mapped, before.slabs_mapped + 1);
  pool.recycle(again);
  pool.recycle(bigger);
}

TEST(SlabPool, TrimReleasesAllPooledBytes) {
  util::SlabPool pool;
  auto a = pool.acquire(util::SlabPool::kMinSlabBytes);
  auto b = pool.acquire(4 * util::SlabPool::kMinSlabBytes);
  const std::size_t total = a.bytes + b.bytes;
  pool.recycle(a);
  pool.recycle(b);
  EXPECT_EQ(pool.pooled_bytes(), total);
  EXPECT_EQ(pool.trim(), total);
  EXPECT_EQ(pool.pooled_bytes(), 0u);
  EXPECT_EQ(pool.stats().bytes_trimmed, total);
  // The pool still works after a trim.
  auto c = pool.acquire(1);
  EXPECT_NE(c.p, nullptr);
  std::memset(c.p, 0xAB, c.bytes);  // and the memory is writable
  pool.recycle(c);
}

TEST(PooledBuf, EnsureDiscardsAndGrowPreserves) {
  util::SlabPool pool;
  util::PooledBuf<std::int64_t> buf(pool);
  std::int64_t* p = buf.ensure(100);
  for (int i = 0; i < 100; ++i) p[i] = i;
  ASSERT_EQ(buf.size(), 100u);

  // grow_preserve keeps the prefix across a slab change.
  const std::size_t grow_to = 2 * util::SlabPool::kMinSlabBytes;  // elements
  buf.grow_preserve(grow_to);
  ASSERT_EQ(buf.size(), grow_to);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(buf[static_cast<std::size_t>(i)], i) << i;
  }

  // assign_fill overwrites everything.
  buf.assign_fill(64, std::int64_t{7});
  ASSERT_EQ(buf.size(), 64u);
  for (std::size_t i = 0; i < 64; ++i) ASSERT_EQ(buf[i], 7);

  // release returns the slab; the next ensure reuses it from the pool.
  const std::size_t pooled_before = pool.pooled_bytes();
  buf.release();
  EXPECT_GT(pool.pooled_bytes(), pooled_before);
  const auto stats_before = pool.stats();
  buf.ensure(32);
  EXPECT_EQ(pool.stats().slabs_mapped, stats_before.slabs_mapped);
}

TEST(PooledBuf, MoveTransfersOwnership) {
  util::SlabPool pool;
  util::PooledBuf<int> a(pool);
  a.assign_fill(10, 3);
  util::PooledBuf<int> b(std::move(a));
  ASSERT_EQ(b.size(), 10u);
  EXPECT_EQ(b[9], 3);
  EXPECT_EQ(a.size(), 0u);  // NOLINT(bugprone-use-after-move): spec'd empty
  util::PooledBuf<int> c(pool);
  c = std::move(b);
  ASSERT_EQ(c.size(), 10u);
  EXPECT_EQ(c[0], 3);
}

TEST(Arena, AlignsEveryAllocation) {
  util::SlabPool pool;
  util::Arena arena(pool);
  char* c = arena.alloc<char>(3);
  std::memset(c, 1, 3);
  double* d = arena.alloc<double>(4);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(d) % alignof(double), 0u);
  char* c2 = arena.alloc<char>(1);
  *c2 = 9;
  std::int64_t* q = arena.alloc<std::int64_t>(2);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(q) % alignof(std::int64_t), 0u);
  q[0] = 1;
  q[1] = 2;
  EXPECT_EQ(c[0], 1);
  EXPECT_EQ(*c2, 9);
}

TEST(Arena, ResetHighWaterReuse) {
  util::SlabPool pool;
  util::Arena arena(pool);
  // Run 1 discovers its size across several doubling slabs.
  const std::size_t chunk = util::SlabPool::kMinSlabBytes / 2;
  const auto one_run = [&] {
    for (int i = 0; i < 9; ++i) {
      char* p = arena.alloc<char>(chunk);
      std::memset(p, i, chunk);
    }
  };
  one_run();
  const std::size_t used = arena.used_bytes();
  EXPECT_GE(used, 9 * chunk);
  arena.reset();
  EXPECT_EQ(arena.used_bytes(), 0u);

  // Run 2 consolidates: the first slab is sized to the high-water mark, so
  // the whole run fits in one slab (its class may be freshly mapped once).
  const auto before2 = pool.stats();
  one_run();
  EXPECT_EQ(pool.stats().slabs_mapped + pool.stats().slabs_reused,
            before2.slabs_mapped + before2.slabs_reused + 1);
  arena.reset();

  // Steady state from run 3: one slab acquisition, served from the pool —
  // no fresh OS memory.
  const auto before3 = pool.stats();
  one_run();
  const auto after3 = pool.stats();
  EXPECT_EQ(after3.slabs_mapped, before3.slabs_mapped);
  EXPECT_EQ(after3.slabs_reused, before3.slabs_reused + 1);
  arena.reset();
}

TEST(Arena, DestructorRecyclesIntoPool) {
  util::SlabPool pool;
  {
    util::Arena arena(pool);
    arena.alloc<int>(1000);
    EXPECT_EQ(pool.pooled_bytes(), 0u);
  }
  EXPECT_GT(pool.pooled_bytes(), 0u);
  pool.trim();
}

TEST(ArenaStats, ReusePctAccountsServedBytes) {
  util::ArenaStats s;
  EXPECT_EQ(s.reuse_pct(), 0.0);
  s.bytes_reused = 300;
  s.bytes_mapped = 100;
  EXPECT_DOUBLE_EQ(s.reuse_pct(), 75.0);
}

TEST(GlobalPool, IsSharedAndUsable) {
  auto& pool = util::SlabPool::global();
  util::PooledBuf<int> buf;  // defaults to the global pool
  buf.assign_fill(17, 42);
  EXPECT_EQ(buf[16], 42);
  buf.release();
  EXPECT_GE(pool.stats().bytes_requested, 17 * sizeof(int));
}

}  // namespace
}  // namespace nors
