#include <gtest/gtest.h>

#include <cmath>

#include "core/distance_estimation.h"
#include "graph/generators.h"
#include "graph/shortest_paths.h"

namespace nors {
namespace {

using graph::Dist;
using graph::Vertex;

struct Case {
  int k;
  std::uint64_t seed;
};

class EstimationTest : public ::testing::TestWithParam<Case> {};

TEST_P(EstimationTest, NeverUnderestimatesAndWithinBound) {
  const auto [k, seed] = GetParam();
  util::Rng rng(seed);
  const auto g =
      graph::connected_gnm(120, 300, graph::WeightSpec::uniform(1, 25), rng);
  core::SchemeParams p;
  p.k = k;
  p.seed = seed;
  const auto scheme = core::RoutingScheme::build(g, p);
  const auto de = core::DistanceEstimation::build(scheme);
  const double bound = de.stretch_bound() + 1e-9;

  for (Vertex u = 0; u < g.n(); u += 4) {
    const auto sp = graph::dijkstra(g, u);
    for (Vertex v = 0; v < g.n(); v += 6) {
      const auto q = de.estimate(u, v);
      const Dist d = sp.dist[static_cast<std::size_t>(v)];
      if (u == v) {
        EXPECT_EQ(q.estimate, 0);
        continue;
      }
      EXPECT_GE(q.estimate, d) << "u=" << u << " v=" << v;
      EXPECT_LE(static_cast<double>(q.estimate),
                bound * static_cast<double>(d))
          << "u=" << u << " v=" << v;
      EXPECT_LE(q.iterations, k);
      EXPECT_GE(q.iterations, 1);
    }
  }
  // Bound is in the 2k-1+o(1) regime.
  EXPECT_LE(de.stretch_bound(), 2 * k - 1 + 0.6);
}

INSTANTIATE_TEST_SUITE_P(Ks, EstimationTest,
                         ::testing::Values(Case{1, 601}, Case{2, 602},
                                           Case{3, 603}, Case{4, 604},
                                           Case{5, 605}));

TEST(Estimation, SketchSizesShrinkWithK) {
  util::Rng rng(611);
  const auto g =
      graph::connected_gnm(300, 750, graph::WeightSpec::uniform(1, 9), rng);
  double avg2 = 0, avg5 = 0;
  {
    core::SchemeParams p;
    p.k = 2;
    p.seed = 5;
    const auto de =
        core::DistanceEstimation::build(core::RoutingScheme::build(g, p));
    for (Vertex v = 0; v < g.n(); ++v) {
      avg2 += static_cast<double>(de.sketch_words(v));
    }
  }
  {
    core::SchemeParams p;
    p.k = 5;
    p.seed = 5;
    const auto de =
        core::DistanceEstimation::build(core::RoutingScheme::build(g, p));
    for (Vertex v = 0; v < g.n(); ++v) {
      avg5 += static_cast<double>(de.sketch_words(v));
    }
  }
  // k=2 sketches carry ~n^{1/2}-size memberships; k=5 ~n^{1/5}: the average
  // must clearly shrink.
  EXPECT_LT(avg5, avg2);
}

TEST(Estimation, SymmetricInputsAgreeOnDiagonal) {
  util::Rng rng(612);
  const auto g = graph::connected_gnm(80, 200, graph::WeightSpec::uniform(1, 9), rng);
  core::SchemeParams p;
  p.k = 3;
  p.seed = 8;
  const auto de =
      core::DistanceEstimation::build(core::RoutingScheme::build(g, p));
  for (Vertex v = 0; v < g.n(); v += 5) {
    EXPECT_EQ(de.estimate(v, v).estimate, 0);
  }
}

TEST(Estimation, AlgorithmTwoSwapsRoles) {
  // Algorithm 2 alternates the roles of u and v between iterations; on
  // graphs where the first pivot's cluster misses v, the estimate must be
  // produced from a later, swapped iteration — verify multi-iteration
  // queries occur and still satisfy the bound.
  util::Rng rng(621);
  const auto g =
      graph::connected_gnm(150, 360, graph::WeightSpec::uniform(1, 40), rng);
  core::SchemeParams p;
  p.k = 4;
  p.seed = 29;
  const auto de =
      core::DistanceEstimation::build(core::RoutingScheme::build(g, p));
  int multi_iter = 0;
  for (Vertex u = 0; u < g.n(); u += 4) {
    for (Vertex v = 1; v < g.n(); v += 7) {
      if (u == v) continue;
      if (de.estimate(u, v).iterations >= 2) ++multi_iter;
    }
  }
  EXPECT_GT(multi_iter, 0) << "every query ended at iteration 1 — the swap "
                              "logic of Algorithm 2 is never exercised";
}

TEST(Estimation, OneSidedLabelEstimateBounds) {
  // Footnote-6 property: sketch of u + O(k log n) label of v suffice; the
  // guarantee is the routing-stretch class.
  util::Rng rng(622);
  const auto g =
      graph::connected_gnm(130, 330, graph::WeightSpec::uniform(1, 20), rng);
  core::SchemeParams p;
  p.k = 3;
  p.seed = 30;
  const auto s = core::RoutingScheme::build(g, p);
  const auto de = core::DistanceEstimation::build(s);
  const double bound =
      core::stretch_bound(3, p.epsilon(), /*label_trick=*/false) + 1e-9;
  for (Vertex u = 0; u < g.n(); u += 5) {
    const auto sp = graph::dijkstra(g, u);
    for (Vertex v = 2; v < g.n(); v += 8) {
      if (u == v) continue;
      const auto q = de.estimate_from_label(u, v);
      const Dist d = sp.dist[static_cast<std::size_t>(v)];
      EXPECT_GE(q.estimate, d);
      EXPECT_LE(static_cast<double>(q.estimate), bound * d);
      EXPECT_LE(q.iterations, 3);
    }
  }
  EXPECT_EQ(de.label_words(0), 9);  // 3 words per level
}

TEST(Estimation, QueryIsOKTime) {
  // Algorithm 2 touches only sketches: iterations ≤ k regardless of n.
  util::Rng rng(613);
  const auto g = graph::connected_gnm(200, 500, graph::WeightSpec::uniform(1, 9), rng);
  core::SchemeParams p;
  p.k = 4;
  p.seed = 13;
  const auto de =
      core::DistanceEstimation::build(core::RoutingScheme::build(g, p));
  int max_iters = 0;
  for (Vertex u = 0; u < g.n(); u += 3) {
    for (Vertex v = 1; v < g.n(); v += 7) {
      max_iters = std::max(max_iters, de.estimate(u, v).iterations);
    }
  }
  EXPECT_LE(max_iters, 4);
}

}  // namespace
}  // namespace nors
