#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.h"
#include "graph/shortest_paths.h"
#include "tz/tz_oracle.h"
#include "tz/tz_routing.h"

namespace nors {
namespace {

using graph::Dist;
using graph::Vertex;

struct Case {
  int k;
  std::uint64_t seed;
};

class TzRoutingTest : public ::testing::TestWithParam<Case> {};

TEST_P(TzRoutingTest, RoutesAllPairsWithinStretchBound) {
  const auto [k, seed] = GetParam();
  util::Rng rng(seed);
  const auto g =
      graph::connected_gnm(140, 420, graph::WeightSpec::uniform(1, 20), rng);
  const auto s = tz::TzRoutingScheme::build(g, {k, seed, true});
  const double bound = std::max(1, 4 * k - 5);
  double worst = 0;
  for (Vertex u = 0; u < g.n(); u += 4) {
    const auto sp = graph::dijkstra(g, u);
    for (Vertex v = 1; v < g.n(); v += 7) {
      if (u == v) continue;
      const auto r = s.route(u, v);
      ASSERT_TRUE(r.ok) << "u=" << u << " v=" << v;
      const Dist d = sp.dist[static_cast<std::size_t>(v)];
      ASSERT_GT(d, 0);
      const double stretch =
          static_cast<double>(r.length) / static_cast<double>(d);
      EXPECT_GE(stretch, 1.0);
      EXPECT_LE(stretch, bound) << "u=" << u << " v=" << v;
      worst = std::max(worst, stretch);
    }
  }
  // The scheme must actually route (not just fail fast).
  EXPECT_GE(worst, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Ks, TzRoutingTest,
    ::testing::Values(Case{1, 101}, Case{2, 102}, Case{3, 103}, Case{4, 104}));

TEST(TzRouting, StretchOneForKOne) {
  // k=1: every cluster spans V, routing is exact shortest-path-in-tree from
  // the destination's own cluster.
  util::Rng rng(111);
  const auto g = graph::connected_gnm(60, 150, graph::WeightSpec::uniform(1, 9), rng);
  const auto s = tz::TzRoutingScheme::build(g, {1, 5, true});
  for (Vertex u = 0; u < g.n(); u += 3) {
    const auto sp = graph::dijkstra(g, u);
    for (Vertex v = 1; v < g.n(); v += 5) {
      if (u == v) continue;
      const auto r = s.route(u, v);
      ASSERT_TRUE(r.ok);
      EXPECT_EQ(r.length, sp.dist[static_cast<std::size_t>(v)]);
    }
  }
}

TEST(TzRouting, OverlapBoundClaim2) {
  util::Rng rng(112);
  const int n = 300, k = 3;
  const auto g = graph::connected_gnm(n, 900, graph::WeightSpec::uniform(1, 30), rng);
  const auto s = tz::TzRoutingScheme::build(g, {k, 7, false});
  const double bound = 4.0 * std::pow(n, 1.0 / k) * std::log(n);
  for (Vertex v = 0; v < n; v += 11) {
    EXPECT_LE(s.overlap(v), bound);
  }
}

TEST(TzRouting, LabelSizeIsOkLogN) {
  util::Rng rng(113);
  const auto g = graph::connected_gnm(200, 500, graph::WeightSpec::uniform(1, 10), rng);
  const auto s = tz::TzRoutingScheme::build(g, {4, 9, false});
  for (Vertex v = 0; v < g.n(); v += 13) {
    // k·(2 + O(log n)) words.
    EXPECT_LE(s.label_words(v), 4 * (2 + 1 + 2 * 9));
  }
}

TEST(TzRouting, TrickReducesWorstStretchOrEqual) {
  util::Rng rng(114);
  const auto g = graph::connected_gnm(120, 300, graph::WeightSpec::uniform(1, 25), rng);
  const auto with = tz::TzRoutingScheme::build(g, {3, 21, true});
  const auto without = tz::TzRoutingScheme::build(g, {3, 21, false});
  double worst_with = 0, worst_without = 0;
  for (Vertex u = 0; u < g.n(); u += 5) {
    const auto sp = graph::dijkstra(g, u);
    for (Vertex v = 2; v < g.n(); v += 9) {
      if (u == v) continue;
      const Dist d = sp.dist[static_cast<std::size_t>(v)];
      worst_with = std::max(
          worst_with, static_cast<double>(with.route(u, v).length) / d);
      worst_without = std::max(
          worst_without, static_cast<double>(without.route(u, v).length) / d);
    }
  }
  // Same seed ⇒ same hierarchy/trees; the trick can only help.
  EXPECT_LE(worst_with, worst_without + 1e-12);
}

class TzOracleTest : public ::testing::TestWithParam<Case> {};

TEST_P(TzOracleTest, EstimatesWithin2kMinus1) {
  const auto [k, seed] = GetParam();
  util::Rng rng(seed);
  const auto g =
      graph::connected_gnm(150, 400, graph::WeightSpec::uniform(1, 15), rng);
  const auto o = tz::TzDistanceOracle::build(g, {k, seed});
  for (Vertex u = 0; u < g.n(); u += 6) {
    const auto sp = graph::dijkstra(g, u);
    for (Vertex v = 3; v < g.n(); v += 8) {
      if (u == v) continue;
      const auto q = o.query(u, v);
      const Dist d = sp.dist[static_cast<std::size_t>(v)];
      EXPECT_GE(q.estimate, d);
      EXPECT_LE(q.estimate, static_cast<Dist>(2 * k - 1) * d);
      EXPECT_LE(q.iterations, k);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Ks, TzOracleTest,
    ::testing::Values(Case{1, 201}, Case{2, 202}, Case{3, 203}, Case{4, 204}));

TEST(TzOracle, SketchSizeScalesDown) {
  util::Rng rng(211);
  const auto g = graph::connected_gnm(400, 1200, graph::WeightSpec::uniform(1, 9), rng);
  const auto o2 = tz::TzDistanceOracle::build(g, {2, 31});
  const auto o4 = tz::TzDistanceOracle::build(g, {4, 31});
  double avg2 = 0, avg4 = 0;
  for (Vertex v = 0; v < g.n(); ++v) {
    avg2 += static_cast<double>(o2.sketch_words(v));
    avg4 += static_cast<double>(o4.sketch_words(v));
  }
  // Larger k ⇒ smaller bunches on average (n^{1/4} vs n^{1/2} per level).
  EXPECT_LT(avg4 / g.n(), avg2 / g.n() * 1.5);
}

}  // namespace
}  // namespace nors
