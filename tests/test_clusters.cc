#include <gtest/gtest.h>

#include <cmath>

#include "core/scheme.h"
#include "graph/generators.h"
#include "graph/shortest_paths.h"

namespace nors {
namespace {

using graph::Dist;
using graph::Vertex;

struct Case {
  int k;
  std::uint64_t seed;
  int n;
  std::int64_t extra_edges;
};

/// Fixture building one scheme and the exact quantities the paper's
/// invariants are stated against.
class ClusterInvariants : public ::testing::TestWithParam<Case> {
 protected:
  void SetUp() override {
    const auto c = GetParam();
    util::Rng rng(c.seed);
    g_ = graph::connected_gnm(c.n, c.extra_edges,
                              graph::WeightSpec::uniform(1, 16), rng);
    core::SchemeParams p;
    p.k = c.k;
    p.seed = c.seed;
    scheme_ = std::make_unique<core::RoutingScheme>(
        core::RoutingScheme::build(g_, p));
    // Reconstruct A_i from the exposed levels and compute exact d(v, A_i).
    dist_to_set_.assign(static_cast<std::size_t>(c.k) + 1, {});
    for (int i = 0; i <= c.k; ++i) {
      std::vector<Vertex> set;
      for (Vertex v = 0; v < g_.n(); ++v) {
        if (scheme_->vertex_level(v) >= i) set.push_back(v);
      }
      if (set.empty()) {
        dist_to_set_[static_cast<std::size_t>(i)].assign(
            static_cast<std::size_t>(g_.n()), graph::kDistInf);
      } else {
        dist_to_set_[static_cast<std::size_t>(i)] =
            graph::multi_source_dijkstra(g_, set).dist;
      }
    }
  }

  graph::WeightedGraph g_;
  std::unique_ptr<core::RoutingScheme> scheme_;
  std::vector<std::vector<Dist>> dist_to_set_;
};

TEST_P(ClusterInvariants, Claim7ParentsAndNoPruning) {
  EXPECT_EQ(scheme_->pruned_members(), 0);
  for (const auto& t : scheme_->trees()) {
    for (std::size_t i = 0; i < t.size(); ++i) {
      const Vertex v = t.members[i];
      const auto& mem = t.info[i];
      if (v == t.root) {
        EXPECT_EQ(mem.b, 0);
        continue;
      }
      // Parent is a member over a real edge, with b_v ≥ w(v,p) + b_p.
      ASSERT_NE(mem.parent_port, graph::kNoPort);
      const auto& e = g_.edge(v, mem.parent_port);
      ASSERT_EQ(e.to, mem.parent);
      const int pi = t.find(mem.parent);
      ASSERT_GE(pi, 0) << "root=" << t.root << " v=" << v
                       << " parent not member";
      EXPECT_GE(mem.b, e.w + t.info[static_cast<std::size_t>(pi)].b);
    }
  }
}

TEST_P(ClusterInvariants, SandwichNine) {
  const auto eps = scheme_->params().epsilon();
  for (const auto& t : scheme_->trees()) {
    const auto sp = graph::dijkstra(g_, t.root);
    const auto& limit = dist_to_set_[static_cast<std::size_t>(t.level) + 1];
    for (Vertex v = 0; v < g_.n(); ++v) {
      const Dist duv = sp.dist[static_cast<std::size_t>(v)];
      const Dist lim = limit[static_cast<std::size_t>(v)];
      const bool member = t.contains(v);
      // Right inclusion C̃(u) ⊆ C(u): members satisfy d(u,v) < d(v,A_{i+1}).
      if (member && !graph::is_inf(lim)) {
        EXPECT_LT(duv, lim) << "root=" << t.root << " v=" << v;
      }
      // Left inclusion C_{6ε}(u) ⊆ C̃(u):
      // (1+6ε)·d(u,v) < d(v,A_{i+1}) ⇒ member. Exact integer check.
      if (!member && !graph::is_inf(duv)) {
        const __int128 lhs =
            static_cast<__int128>(duv) * (eps.den() + 6 * eps.num());
        const __int128 rhs = graph::is_inf(lim)
                                 ? static_cast<__int128>(graph::kDistInf) *
                                       eps.den()
                                 : static_cast<__int128>(lim) * eps.den();
        EXPECT_FALSE(lhs < rhs)
            << "vertex " << v << " in C_6eps(" << t.root << ") but excluded";
      }
    }
  }
}

TEST_P(ClusterInvariants, TreeDistancePreservationTen) {
  const auto eps = scheme_->params().epsilon();
  for (const auto& t : scheme_->trees()) {
    const auto sp = graph::dijkstra(g_, t.root);
    for (std::size_t i = 0; i < t.size(); ++i) {
      const Vertex v = t.members[i];
      const auto& mem = t.info[i];
      if (v == t.root) continue;
      // Walk the parent chain to the root, summing real edge weights.
      Dist chain = 0;
      Vertex x = v;
      int guard = 0;
      while (x != t.root) {
        const auto& m = t.member(x);
        const auto& e = g_.edge(x, m.parent_port);
        chain += e.w;
        x = e.to;
        ASSERT_LE(++guard, g_.n());
      }
      const Dist d = sp.dist[static_cast<std::size_t>(v)];
      EXPECT_GE(chain, d);
      // d_{C̃(u)}(u,v) ≤ b_v(u) ≤ (1+ε)^4 d_G(u,v)  — (10) + Lemma 5.
      EXPECT_LE(chain, mem.b);
      EXPECT_TRUE(eps.leq_mul(mem.b, d, 4))
          << "root=" << t.root << " v=" << v << " b=" << mem.b
          << " d=" << d;
      EXPECT_GE(mem.b, d);  // Lemma 5 left side
    }
  }
}

TEST_P(ClusterInvariants, PivotPropertySeven) {
  const auto eps = scheme_->params().epsilon();
  const int k = scheme_->params().k;
  for (int i = 0; i < k; ++i) {
    const auto& exact = dist_to_set_[static_cast<std::size_t>(i)];
    for (Vertex v = 0; v < g_.n(); ++v) {
      const Vertex z = scheme_->pivots().z(i, v);
      const Dist dhat = scheme_->pivots().d(i, v);
      ASSERT_NE(z, graph::kNoVertex) << "level " << i << " v=" << v;
      EXPECT_GE(scheme_->vertex_level(z), i);  // ẑ_i(v) ∈ A_i
      // d(v,A_i) ≤ d̂_i(v) ≤ (1+ε)·d(v,A_i).
      EXPECT_GE(dhat, exact[static_cast<std::size_t>(v)]);
      EXPECT_TRUE(eps.leq_mul(dhat, exact[static_cast<std::size_t>(v)], 1))
          << "level " << i << " v=" << v << " dhat=" << dhat
          << " exact=" << exact[static_cast<std::size_t>(v)];
      // The reported pivot is within d̂ of v.
      EXPECT_LE(graph::pair_distance(g_, v, z), dhat);
    }
  }
}

TEST_P(ClusterInvariants, TopLevelTreesSpanEverything) {
  const int k = scheme_->params().k;
  int top_trees = 0;
  for (const auto& t : scheme_->trees()) {
    if (t.level != k - 1) continue;
    ++top_trees;
    EXPECT_EQ(t.size(), static_cast<std::size_t>(g_.n()));
  }
  EXPECT_GE(top_trees, 1);
}

TEST_P(ClusterInvariants, OverlapClaim2) {
  const int n = g_.n();
  const int k = scheme_->params().k;
  const double bound = 4.0 * std::pow(n, 1.0 / k) * std::log(std::max(2, n));
  for (Vertex v = 0; v < n; ++v) {
    EXPECT_LE(scheme_->overlap(v), bound) << "v=" << v;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ClusterInvariants,
    ::testing::Values(Case{2, 401, 90, 200}, Case{3, 402, 110, 260},
                      Case{4, 403, 120, 300}, Case{5, 404, 130, 320},
                      Case{3, 405, 100, 1200}  // dense
                      ));

}  // namespace
}  // namespace nors
