#include <gtest/gtest.h>

#include <cmath>

#include "baselines/lp_baseline.h"
#include "baselines/sdp15_sketches.h"
#include "baselines/spanner.h"
#include "graph/generators.h"
#include "graph/properties.h"
#include "graph/shortest_paths.h"

namespace nors {
namespace {

using graph::Dist;
using graph::Vertex;

class SpannerTest : public ::testing::TestWithParam<int> {};

TEST_P(SpannerTest, StretchAndSizeBounds) {
  const int k = GetParam();
  util::Rng rng(300 + static_cast<std::uint64_t>(k));
  const auto g =
      graph::connected_gnm(120, 1200, graph::WeightSpec::uniform(1, 40), rng);
  util::Rng srng(7);
  const auto edges = baselines::baswana_sen_spanner(g, k, srng);
  const auto sp = baselines::spanner_graph(g.n(), edges);
  ASSERT_TRUE(graph::is_connected(sp));
  // Stretch ≤ 2k-1 on every edge of g (implies all pairs).
  for (Vertex u = 0; u < g.n(); u += 3) {
    const auto dg = graph::dijkstra(g, u);
    const auto ds = graph::dijkstra(sp, u);
    for (Vertex v = 0; v < g.n(); v += 5) {
      if (graph::is_inf(dg.dist[static_cast<std::size_t>(v)])) continue;
      EXPECT_GE(ds.dist[static_cast<std::size_t>(v)],
                dg.dist[static_cast<std::size_t>(v)]);
      EXPECT_LE(ds.dist[static_cast<std::size_t>(v)],
                (2 * k - 1) * dg.dist[static_cast<std::size_t>(v)])
          << "u=" << u << " v=" << v;
    }
  }
  // Size: expected O(k n^{1+1/k}); allow a loose constant.
  const double bound =
      8.0 * k * std::pow(g.n(), 1.0 + 1.0 / k) + 4.0 * g.n();
  EXPECT_LE(static_cast<double>(edges.size()), bound);
}

INSTANTIATE_TEST_SUITE_P(Ks, SpannerTest, ::testing::Values(1, 2, 3, 4));

TEST(Spanner, KOneKeepsDistancesExactly) {
  util::Rng rng(311);
  const auto g = graph::connected_gnm(60, 400, graph::WeightSpec::uniform(1, 20), rng);
  util::Rng srng(3);
  const auto edges = baselines::baswana_sen_spanner(g, 1, srng);
  const auto sp = baselines::spanner_graph(g.n(), edges);
  for (Vertex u = 0; u < g.n(); u += 7) {
    const auto dg = graph::dijkstra(g, u);
    const auto ds = graph::dijkstra(sp, u);
    for (Vertex v = 0; v < g.n(); ++v) {
      EXPECT_EQ(ds.dist[static_cast<std::size_t>(v)],
                dg.dist[static_cast<std::size_t>(v)]);
    }
  }
}

TEST(LpBaseline, RoutesEverywhere) {
  util::Rng rng(321);
  const auto g =
      graph::connected_gnm(150, 450, graph::WeightSpec::uniform(1, 12), rng);
  const auto s = baselines::LpBaselineScheme::build(g, {3, 5, 1.0}, 6);
  double worst = 0;
  for (Vertex u = 0; u < g.n(); u += 6) {
    const auto sp = graph::dijkstra(g, u);
    for (Vertex v = 2; v < g.n(); v += 9) {
      if (u == v) continue;
      const auto r = s.route(u, v);
      ASSERT_TRUE(r.ok) << "u=" << u << " v=" << v;
      const double stretch = static_cast<double>(r.length) /
                             static_cast<double>(
                                 sp.dist[static_cast<std::size_t>(v)]);
      EXPECT_GE(stretch, 1.0 - 1e-12);
      worst = std::max(worst, stretch);
    }
  }
  // LP13a-class guarantee is O(k·log k); sanity-cap the observed stretch.
  EXPECT_LE(worst, 40.0);
}

TEST(LpBaseline, TablesAreOmegaSqrtN) {
  util::Rng rng(322);
  const auto g =
      graph::connected_gnm(400, 1200, graph::WeightSpec::uniform(1, 9), rng);
  const auto s = baselines::LpBaselineScheme::build(g, {3, 11, 1.0}, 8);
  // The defining weakness: every vertex stores the whole skeleton spanner.
  EXPECT_GE(s.table_words(0), s.spanner_edges());
  EXPECT_GE(s.skeleton_size(), static_cast<std::int64_t>(
                                   std::sqrt(400.0)));  // ≈ √n·ln n sample
  EXPECT_GT(s.ledger().total_rounds(), 0);
}

TEST(Spanner, SizeShrinksWithK) {
  util::Rng rng(331);
  const auto g = graph::connected_gnm(200, 4000, graph::WeightSpec::uniform(1, 9), rng);
  std::size_t prev = 0;
  for (int k : {1, 2, 4}) {
    util::Rng srng(5);
    const auto edges = baselines::baswana_sen_spanner(g, k, srng);
    if (prev != 0) {
      // Larger k prunes more aggressively (allow slack for randomness).
      EXPECT_LT(edges.size(), prev + prev / 4) << "k=" << k;
    }
    prev = edges.size();
  }
}

TEST(Spanner, WorksOnTreesWithoutAddingEdges) {
  util::Rng rng(332);
  const auto g = graph::random_tree(80, graph::WeightSpec::uniform(1, 9), rng);
  util::Rng srng(6);
  const auto edges = baselines::baswana_sen_spanner(g, 3, srng);
  // A tree is its own unique spanner: all n-1 edges survive, none invented.
  EXPECT_EQ(static_cast<std::int64_t>(edges.size()), g.m());
}

TEST(LpBaseline, LabelsStaySmall) {
  util::Rng rng(323);
  const auto g = graph::connected_gnm(200, 600, graph::WeightSpec::uniform(1, 9), rng);
  const auto s = baselines::LpBaselineScheme::build(g, {3, 13, 1.0}, 8);
  for (Vertex v = 0; v < g.n(); v += 11) {
    EXPECT_LE(s.label_words(v), 2 + 1 + 2 * 10);  // O(log n) words
  }
}

TEST(Sdp15, ExactTwoKMinusOneStretch) {
  util::Rng rng(341);
  const auto g =
      graph::connected_gnm(130, 330, graph::WeightSpec::uniform(1, 20), rng);
  const int k = 3;
  const auto s = baselines::Sdp15Sketches::build(g, {k, 7, 1});
  for (Vertex u = 0; u < g.n(); u += 5) {
    const auto sp = graph::dijkstra(g, u);
    for (Vertex v = 2; v < g.n(); v += 7) {
      if (u == v) continue;
      const auto q = s.query(u, v);
      const Dist d = sp.dist[static_cast<std::size_t>(v)];
      EXPECT_GE(q.estimate, d);
      EXPECT_LE(q.estimate, (2 * k - 1) * d);
      EXPECT_LE(q.iterations, k);
    }
  }
  EXPECT_GT(s.ledger().simulated_rounds(), 0);
  EXPECT_EQ(s.ledger().accounted_rounds(), 0);  // everything ran for real
}

TEST(Sdp15, RoundsBlowUpWithShortestPathDiameter) {
  // The weakness Theorem 6 removes: on an S >> D graph (heavy star hub +
  // unit path), the exact explorations walk the whole path even though the
  // hop diameter is 2.
  const int n = 300;
  graph::WeightedGraph g(n);
  for (Vertex v = 0; v + 2 < n; ++v) g.add_edge(v, v + 1, 1);
  for (Vertex v = 0; v + 1 < n; ++v) {
    g.add_edge(v, static_cast<Vertex>(n - 1), 4LL * n);
  }
  g.freeze();
  const auto s = baselines::Sdp15Sketches::build(g, {2, 9, 1});
  // Exploration depth ≈ S ≈ n: rounds scale with n, not with D = 2.
  EXPECT_GT(s.ledger().simulated_rounds(), n / 2);
}

}  // namespace
}  // namespace nors
