#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "graph/generators.h"
#include "serve/frozen.h"

// Property/fuzz hardening pass over the NORSFRZ1 frozen-table format: take
// valid images, corrupt them (single-bit flips, truncations, multi-byte
// splats, garbage tails), and assert every corruption is rejected with a
// clean std::logic_error — never a crash, hang, or out-of-bounds read.
// CI runs this binary under ASan+UBSan, so "no UB" is machine-checked,
// not asserted. Both decode paths are covered: the owning load() and the
// zero-copy mmap path (map()), which parses the image in place and must
// therefore be exactly as strict.

namespace nors {
namespace {

std::vector<std::uint8_t> make_image(int n, int k, bool label_trick,
                                     std::uint64_t seed) {
  util::Rng rng(seed);
  const auto g = graph::connected_gnm(
      n, 3LL * n, graph::WeightSpec::uniform(1, 16), rng);
  core::SchemeParams p;
  p.k = k;
  p.seed = seed + 1;
  p.label_trick = label_trick;
  return serve::FrozenScheme::freeze(core::RoutingScheme::build(g, p)).save();
}

/// Writes bytes to a temp file, expects map() to reject them, cleans up.
void expect_map_rejects(const std::vector<std::uint8_t>& bytes,
                        const char* what) {
  const std::string path = ::testing::TempDir() + "/nors_fuzz_map.bin";
  std::FILE* fp = std::fopen(path.c_str(), "wb");
  ASSERT_NE(fp, nullptr);
  if (!bytes.empty()) {
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), fp), bytes.size());
  }
  std::fclose(fp);
  EXPECT_THROW(serve::FrozenScheme::map(path), std::logic_error) << what;
  std::remove(path.c_str());
}

class FrozenFuzz : public ::testing::Test {
 protected:
  // One modest image per fixture instantiation; the per-test loops below
  // drive hundreds of corruptions against it. A second image with
  // different shape parameters guards against "rejection only works for
  // one layout" bugs.
  static const std::vector<std::uint8_t>& image() {
    static const std::vector<std::uint8_t> img =
        make_image(70, 2, /*label_trick=*/true, 7001);
    return img;
  }
  static const std::vector<std::uint8_t>& image2() {
    static const std::vector<std::uint8_t> img =
        make_image(90, 3, /*label_trick=*/false, 7002);
    return img;
  }
};

TEST_F(FrozenFuzz, PristineImagesLoadOnBothPaths) {
  for (const auto* img : {&image(), &image2()}) {
    EXPECT_NO_THROW(serve::FrozenScheme::load(*img));
    const std::string path = ::testing::TempDir() + "/nors_fuzz_ok.bin";
    std::FILE* fp = std::fopen(path.c_str(), "wb");
    ASSERT_NE(fp, nullptr);
    ASSERT_EQ(std::fwrite(img->data(), 1, img->size(), fp), img->size());
    std::fclose(fp);
    EXPECT_NO_THROW(serve::FrozenScheme::map(path));
    std::remove(path.c_str());
  }
}

TEST_F(FrozenFuzz, EverySingleBitFlipIsRejected) {
  // Random positions across many seeds; the trailing-checksum bytes are
  // included on purpose (a flipped checksum must mismatch the payload).
  const auto& bytes = image();
  util::Rng rng(424242);
  int mapped_probes = 0;
  for (int trial = 0; trial < 400; ++trial) {
    auto bad = bytes;
    const auto pos = static_cast<std::size_t>(
        rng.uniform(static_cast<std::uint64_t>(bytes.size())));
    const auto bit = static_cast<int>(rng.uniform(8));
    bad[pos] ^= static_cast<std::uint8_t>(1u << bit);
    EXPECT_THROW(serve::FrozenScheme::load(bad), std::logic_error)
        << "bit " << bit << " at byte " << pos << " slipped through";
    // The mmap path must reject identically; probing a subset keeps the
    // test fast (file round-trip per probe).
    if (trial % 16 == 0) {
      expect_map_rejects(bad, "mapped bit flip");
      ++mapped_probes;
    }
  }
  EXPECT_GE(mapped_probes, 25);
}

TEST_F(FrozenFuzz, EverySingleBitFlipIsRejectedOnSecondLayout) {
  const auto& bytes = image2();
  util::Rng rng(434343);
  for (int trial = 0; trial < 200; ++trial) {
    auto bad = bytes;
    const auto pos = static_cast<std::size_t>(
        rng.uniform(static_cast<std::uint64_t>(bytes.size())));
    bad[pos] ^= static_cast<std::uint8_t>(
        1u << static_cast<int>(rng.uniform(8)));
    EXPECT_THROW(serve::FrozenScheme::load(bad), std::logic_error)
        << "byte " << pos;
  }
}

TEST_F(FrozenFuzz, EveryTruncationIsRejected) {
  const auto& bytes = image();
  util::Rng rng(555555);
  // Deterministic short prefixes (0..64 walks the whole header region
  // byte by byte), then random cuts across the payload.
  for (std::size_t len = 0; len < 64 && len < bytes.size(); ++len) {
    const std::vector<std::uint8_t> bad(bytes.begin(),
                                        bytes.begin() +
                                            static_cast<std::ptrdiff_t>(len));
    EXPECT_THROW(serve::FrozenScheme::load(bad), std::logic_error)
        << "prefix " << len;
  }
  for (int trial = 0; trial < 200; ++trial) {
    const auto len = static_cast<std::size_t>(
        rng.uniform(static_cast<std::uint64_t>(bytes.size())));
    const std::vector<std::uint8_t> bad(bytes.begin(),
                                        bytes.begin() +
                                            static_cast<std::ptrdiff_t>(len));
    EXPECT_THROW(serve::FrozenScheme::load(bad), std::logic_error)
        << "cut at " << len;
    if (trial % 16 == 0) expect_map_rejects(bad, "mapped truncation");
  }
  expect_map_rejects({}, "empty file");
}

TEST_F(FrozenFuzz, MultiByteSplatsAreRejected) {
  // Overwrite a random 8-byte window with random bytes — the shape of a
  // corrupted section length or a forged offset. The checksum catches it
  // before any length is believed; this test pins that ordering (no
  // allocation-of-2^60-elements on the way to the rejection).
  const auto& bytes = image();
  util::Rng rng(777777);
  for (int trial = 0; trial < 200; ++trial) {
    auto bad = bytes;
    const auto pos = static_cast<std::size_t>(rng.uniform(
        static_cast<std::uint64_t>(bytes.size() - 8)));
    bool changed = false;
    for (int j = 0; j < 8; ++j) {
      const auto b = static_cast<std::uint8_t>(rng.uniform(256));
      changed |= bad[pos + static_cast<std::size_t>(j)] != b;
      bad[pos + static_cast<std::size_t>(j)] = b;
    }
    if (!changed) continue;
    EXPECT_THROW(serve::FrozenScheme::load(bad), std::logic_error)
        << "splat at " << pos;
    if (trial % 16 == 0) expect_map_rejects(bad, "mapped splat");
  }
}

TEST_F(FrozenFuzz, GarbageTailsAndForeignFilesAreRejected) {
  const auto& bytes = image();
  util::Rng rng(888888);

  // Appended garbage breaks the framing even when the prefix is intact.
  for (const std::size_t extra : {std::size_t{1}, std::size_t{7},
                                  std::size_t{64}}) {
    auto bad = bytes;
    for (std::size_t i = 0; i < extra; ++i) {
      bad.push_back(static_cast<std::uint8_t>(rng.uniform(256)));
    }
    EXPECT_THROW(serve::FrozenScheme::load(bad), std::logic_error)
        << "tail of " << extra;
  }

  // Pure noise of various sizes — not even a magic number.
  for (const std::size_t len : {std::size_t{16}, std::size_t{100},
                                std::size_t{4096}}) {
    std::vector<std::uint8_t> noise(len);
    for (auto& b : noise) b = static_cast<std::uint8_t>(rng.uniform(256));
    EXPECT_THROW(serve::FrozenScheme::load(noise), std::logic_error)
        << "noise of " << len;
    expect_map_rejects(noise, "mapped noise");
  }

  // Noise that *starts* with a valid header prefix but decays into junk.
  {
    auto bad = bytes;
    for (std::size_t i = 48; i < bad.size(); ++i) {
      bad[i] = static_cast<std::uint8_t>(rng.uniform(256));
    }
    EXPECT_THROW(serve::FrozenScheme::load(bad), std::logic_error);
    expect_map_rejects(bad, "mapped junk body");
  }
}

TEST_F(FrozenFuzz, RejectionsLeaveNoPartiallyConstructedState) {
  // A rejected image must not poison later loads — decode into fresh
  // state each time (regression guard for static/global scratch).
  const auto& bytes = image();
  auto bad = bytes;
  bad[bytes.size() / 3] ^= 0x10;
  for (int i = 0; i < 3; ++i) {
    EXPECT_THROW(serve::FrozenScheme::load(bad), std::logic_error);
    const auto ok = serve::FrozenScheme::load(bytes);
    EXPECT_EQ(ok.save(), bytes);
  }
}

}  // namespace
}  // namespace nors
