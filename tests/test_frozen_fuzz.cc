#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "graph/generators.h"
#include "serve/frozen.h"

// Property/fuzz hardening pass over the NORSFRZ1 frozen-table format: take
// valid images, corrupt them (single-bit flips, truncations, multi-byte
// splats, garbage tails), and assert every corruption is rejected with a
// clean std::logic_error — never a crash, hang, or out-of-bounds read.
// CI runs this binary under ASan+UBSan, so "no UB" is machine-checked,
// not asserted. Both decode paths are covered: the owning load() and the
// zero-copy mmap path (map()), which parses the image in place and must
// therefore be exactly as strict.

namespace nors {
namespace {

std::vector<std::uint8_t> make_image(int n, int k, bool label_trick,
                                     std::uint64_t seed) {
  util::Rng rng(seed);
  const auto g = graph::connected_gnm(
      n, 3LL * n, graph::WeightSpec::uniform(1, 16), rng);
  core::SchemeParams p;
  p.k = k;
  p.seed = seed + 1;
  p.label_trick = label_trick;
  return serve::FrozenScheme::freeze(core::RoutingScheme::build(g, p)).save();
}

/// Writes bytes to a temp file, expects map() to reject them, cleans up.
void expect_map_rejects(const std::vector<std::uint8_t>& bytes,
                        const char* what) {
  const std::string path = ::testing::TempDir() + "/nors_fuzz_map.bin";
  std::FILE* fp = std::fopen(path.c_str(), "wb");
  ASSERT_NE(fp, nullptr);
  if (!bytes.empty()) {
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), fp), bytes.size());
  }
  std::fclose(fp);
  EXPECT_THROW(serve::FrozenScheme::map(path), std::logic_error) << what;
  std::remove(path.c_str());
}

class FrozenFuzz : public ::testing::Test {
 protected:
  // One modest image per fixture instantiation; the per-test loops below
  // drive hundreds of corruptions against it. A second image with
  // different shape parameters guards against "rejection only works for
  // one layout" bugs.
  static const std::vector<std::uint8_t>& image() {
    static const std::vector<std::uint8_t> img =
        make_image(70, 2, /*label_trick=*/true, 7001);
    return img;
  }
  static const std::vector<std::uint8_t>& image2() {
    static const std::vector<std::uint8_t> img =
        make_image(90, 3, /*label_trick=*/false, 7002);
    return img;
  }
};

TEST_F(FrozenFuzz, PristineImagesLoadOnBothPaths) {
  for (const auto* img : {&image(), &image2()}) {
    EXPECT_NO_THROW(serve::FrozenScheme::load(*img));
    const std::string path = ::testing::TempDir() + "/nors_fuzz_ok.bin";
    std::FILE* fp = std::fopen(path.c_str(), "wb");
    ASSERT_NE(fp, nullptr);
    ASSERT_EQ(std::fwrite(img->data(), 1, img->size(), fp), img->size());
    std::fclose(fp);
    EXPECT_NO_THROW(serve::FrozenScheme::map(path));
    std::remove(path.c_str());
  }
}

TEST_F(FrozenFuzz, EverySingleBitFlipIsRejected) {
  // Random positions across many seeds; the trailing-checksum bytes are
  // included on purpose (a flipped checksum must mismatch the payload).
  const auto& bytes = image();
  util::Rng rng(424242);
  int mapped_probes = 0;
  for (int trial = 0; trial < 400; ++trial) {
    auto bad = bytes;
    const auto pos = static_cast<std::size_t>(
        rng.uniform(static_cast<std::uint64_t>(bytes.size())));
    const auto bit = static_cast<int>(rng.uniform(8));
    bad[pos] ^= static_cast<std::uint8_t>(1u << bit);
    EXPECT_THROW(serve::FrozenScheme::load(bad), std::logic_error)
        << "bit " << bit << " at byte " << pos << " slipped through";
    // The mmap path must reject identically; probing a subset keeps the
    // test fast (file round-trip per probe).
    if (trial % 16 == 0) {
      expect_map_rejects(bad, "mapped bit flip");
      ++mapped_probes;
    }
  }
  EXPECT_GE(mapped_probes, 25);
}

TEST_F(FrozenFuzz, EverySingleBitFlipIsRejectedOnSecondLayout) {
  const auto& bytes = image2();
  util::Rng rng(434343);
  for (int trial = 0; trial < 200; ++trial) {
    auto bad = bytes;
    const auto pos = static_cast<std::size_t>(
        rng.uniform(static_cast<std::uint64_t>(bytes.size())));
    bad[pos] ^= static_cast<std::uint8_t>(
        1u << static_cast<int>(rng.uniform(8)));
    EXPECT_THROW(serve::FrozenScheme::load(bad), std::logic_error)
        << "byte " << pos;
  }
}

TEST_F(FrozenFuzz, EveryTruncationIsRejected) {
  const auto& bytes = image();
  util::Rng rng(555555);
  // Deterministic short prefixes (0..64 walks the whole header region
  // byte by byte), then random cuts across the payload.
  for (std::size_t len = 0; len < 64 && len < bytes.size(); ++len) {
    const std::vector<std::uint8_t> bad(bytes.begin(),
                                        bytes.begin() +
                                            static_cast<std::ptrdiff_t>(len));
    EXPECT_THROW(serve::FrozenScheme::load(bad), std::logic_error)
        << "prefix " << len;
  }
  for (int trial = 0; trial < 200; ++trial) {
    const auto len = static_cast<std::size_t>(
        rng.uniform(static_cast<std::uint64_t>(bytes.size())));
    const std::vector<std::uint8_t> bad(bytes.begin(),
                                        bytes.begin() +
                                            static_cast<std::ptrdiff_t>(len));
    EXPECT_THROW(serve::FrozenScheme::load(bad), std::logic_error)
        << "cut at " << len;
    if (trial % 16 == 0) expect_map_rejects(bad, "mapped truncation");
  }
  expect_map_rejects({}, "empty file");
}

TEST_F(FrozenFuzz, MultiByteSplatsAreRejected) {
  // Overwrite a random 8-byte window with random bytes — the shape of a
  // corrupted section length or a forged offset. The checksum catches it
  // before any length is believed; this test pins that ordering (no
  // allocation-of-2^60-elements on the way to the rejection).
  const auto& bytes = image();
  util::Rng rng(777777);
  for (int trial = 0; trial < 200; ++trial) {
    auto bad = bytes;
    const auto pos = static_cast<std::size_t>(rng.uniform(
        static_cast<std::uint64_t>(bytes.size() - 8)));
    bool changed = false;
    for (int j = 0; j < 8; ++j) {
      const auto b = static_cast<std::uint8_t>(rng.uniform(256));
      changed |= bad[pos + static_cast<std::size_t>(j)] != b;
      bad[pos + static_cast<std::size_t>(j)] = b;
    }
    if (!changed) continue;
    EXPECT_THROW(serve::FrozenScheme::load(bad), std::logic_error)
        << "splat at " << pos;
    if (trial % 16 == 0) expect_map_rejects(bad, "mapped splat");
  }
}

TEST_F(FrozenFuzz, GarbageTailsAndForeignFilesAreRejected) {
  const auto& bytes = image();
  util::Rng rng(888888);

  // Appended garbage breaks the framing even when the prefix is intact.
  for (const std::size_t extra : {std::size_t{1}, std::size_t{7},
                                  std::size_t{64}}) {
    auto bad = bytes;
    for (std::size_t i = 0; i < extra; ++i) {
      bad.push_back(static_cast<std::uint8_t>(rng.uniform(256)));
    }
    EXPECT_THROW(serve::FrozenScheme::load(bad), std::logic_error)
        << "tail of " << extra;
  }

  // Pure noise of various sizes — not even a magic number.
  for (const std::size_t len : {std::size_t{16}, std::size_t{100},
                                std::size_t{4096}}) {
    std::vector<std::uint8_t> noise(len);
    for (auto& b : noise) b = static_cast<std::uint8_t>(rng.uniform(256));
    EXPECT_THROW(serve::FrozenScheme::load(noise), std::logic_error)
        << "noise of " << len;
    expect_map_rejects(noise, "mapped noise");
  }

  // Noise that *starts* with a valid header prefix but decays into junk.
  {
    auto bad = bytes;
    for (std::size_t i = 48; i < bad.size(); ++i) {
      bad[i] = static_cast<std::uint8_t>(rng.uniform(256));
    }
    EXPECT_THROW(serve::FrozenScheme::load(bad), std::logic_error);
    expect_map_rejects(bad, "mapped junk body");
  }
}

// ---- v3 varint-section corruption ---------------------------------------
// The blind corruptions above are caught by the trailing FNV-1a checksum
// before the varint decoder ever runs. These cases re-patch the checksum
// after corrupting, so the *decoder's own* guards (truncated varints,
// over-long encodings, section-length mismatches) are what must reject —
// the threat model is a forged image, not an accidental flip.

std::uint64_t fnv1a(const std::uint8_t* p, std::size_t len) {
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

void repatch_checksum(std::vector<std::uint8_t>& bytes) {
  ASSERT_GE(bytes.size(), 8u);
  const std::uint64_t sum = fnv1a(bytes.data(), bytes.size() - 8);
  std::memcpy(bytes.data() + bytes.size() - 8, &sum, 8);
}

/// Offsets of the v3 varint blob section's payload ([begin, end)) and of
/// its u64 count field, found by walking the section chain: 32-byte
/// header, then (count, padded payload) sections of known element sizes —
/// level i32, tree_root i32, tree_level i32, table_off i64, table_tree
/// i32 — with the blob next.
struct BlobRange {
  std::size_t count_at = 0;
  std::size_t begin = 0;
  std::size_t end = 0;
};

BlobRange locate_varint_blob(const std::vector<std::uint8_t>& bytes) {
  auto count_of = [&](std::size_t pos) {
    std::uint64_t c = 0;
    std::memcpy(&c, bytes.data() + pos, 8);
    return c;
  };
  std::size_t pos = 32;
  for (const std::size_t elem : {std::size_t{4}, std::size_t{4},
                                 std::size_t{4}, std::size_t{8},
                                 std::size_t{4}}) {
    pos += 8 + (count_of(pos) * elem + 7) / 8 * 8;
  }
  BlobRange r;
  r.count_at = pos;
  r.begin = pos + 8;
  r.end = r.begin + count_of(pos);
  return r;
}

void expect_both_paths_reject(const std::vector<std::uint8_t>& bad,
                              const char* what) {
  EXPECT_THROW(serve::FrozenScheme::load(bad), std::logic_error) << what;
  expect_map_rejects(bad, what);
}

TEST_F(FrozenFuzz, VarintSectionTruncatedTailIsRejected) {
  const auto& bytes = image();
  const auto blob = locate_varint_blob(bytes);
  ASSERT_GT(blob.end, blob.begin + 16) << "expected a non-trivial blob";
  ASSERT_LE(blob.end + 8, bytes.size());

  // Continuation bit forced onto the final blob byte: the last varint
  // never terminates inside the section.
  {
    auto bad = bytes;
    bad[blob.end - 1] |= 0x80;
    repatch_checksum(bad);
    expect_both_paths_reject(bad, "unterminated final varint");
  }
  // 0xff splat over the tail: a run of continuation bytes racing off the
  // section end (and past the 10-byte varint cap if the run is long).
  {
    auto bad = bytes;
    for (std::size_t i = blob.end - 12; i < blob.end; ++i) bad[i] = 0xff;
    repatch_checksum(bad);
    expect_both_paths_reject(bad, "continuation splat tail");
  }
}

TEST_F(FrozenFuzz, VarintSectionOverlongEncodingIsRejected) {
  // Turn a terminal byte b (0 < b < 0x80) plus its successor into
  // {b | 0x80, 0x00}: the same value encoded with a trailing zero byte —
  // exactly the over-long shape the canonical decoder must refuse.
  const auto& bytes = image();
  const auto blob = locate_varint_blob(bytes);
  int patched = 0;
  for (std::size_t at = blob.begin; at + 1 < blob.end && patched < 8; ++at) {
    const std::uint8_t b = bytes[at];
    if (b == 0 || b >= 0x80) continue;
    auto bad = bytes;
    bad[at] = static_cast<std::uint8_t>(b | 0x80);
    bad[at + 1] = 0x00;
    repatch_checksum(bad);
    expect_both_paths_reject(bad, "over-long encoding");
    ++patched;
    at += 16;  // spread probes across the section
  }
  EXPECT_GE(patched, 4);
}

TEST_F(FrozenFuzz, VarintSectionLengthMismatchIsRejected) {
  // Shrink/grow the blob's count field by an amount that keeps the padded
  // section size identical, so every later section still parses at its
  // old offset and the checksum (re-patched) passes — only the exact-
  // consumption check in the varint decoder can catch the lie.
  const auto& bytes = image();
  const auto blob = locate_varint_blob(bytes);
  const std::uint64_t len =
      static_cast<std::uint64_t>(blob.end - blob.begin);
  auto padded = [](std::uint64_t c) { return (c + 7) / 8 * 8; };
  int tested = 0;
  for (const std::int64_t delta : {-1, 1, -3, 3, -7, 7}) {
    const std::uint64_t forged = len + static_cast<std::uint64_t>(delta);
    if (delta < 0 && len < static_cast<std::uint64_t>(-delta)) continue;
    if (padded(forged) != padded(len)) continue;
    auto bad = bytes;
    std::memcpy(bad.data() + blob.count_at, &forged, 8);
    repatch_checksum(bad);
    expect_both_paths_reject(bad, "forged blob length");
    ++tested;
  }
  EXPECT_GE(tested, 2) << "padding math should admit both directions";
}

TEST_F(FrozenFuzz, VarintBodyBitFlipsAreRejectedOrDecodeToRejectedTables) {
  // Checksum-repatched bit flips inside the blob body: the decoder either
  // trips a varint guard, a narrowing check, the exact-consumption check,
  // or — when the flip decodes to in-range but wrong values — validate()'s
  // structural checks (sorted slabs, port ranges). None may crash, and a
  // flip that slips through *all* of those must still produce an image
  // whose save() differs (no silent canonical collision).
  const auto& bytes = image();
  const auto blob = locate_varint_blob(bytes);
  util::Rng rng(999999);
  int rejected = 0, survived = 0;
  for (int trial = 0; trial < 120; ++trial) {
    auto bad = bytes;
    const auto pos =
        blob.begin + static_cast<std::size_t>(rng.uniform(
                         static_cast<std::uint64_t>(blob.end - blob.begin)));
    bad[pos] ^= static_cast<std::uint8_t>(
        1u << static_cast<int>(rng.uniform(8)));
    repatch_checksum(bad);
    try {
      const auto f = serve::FrozenScheme::load(bad);
      EXPECT_NE(f.save(), bytes) << "flip at " << pos << " vanished";
      ++survived;
    } catch (const std::logic_error&) {
      ++rejected;
    }
    if (trial % 24 == 0) {
      // The mapped path must agree (reject or accept; never crash).
      const std::string path =
          ::testing::TempDir() + "/nors_fuzz_varint.bin";
      std::FILE* fp = std::fopen(path.c_str(), "wb");
      ASSERT_NE(fp, nullptr);
      ASSERT_EQ(std::fwrite(bad.data(), 1, bad.size(), fp), bad.size());
      std::fclose(fp);
      try {
        const auto m = serve::FrozenScheme::map(path);
        EXPECT_NE(m.save(), bytes);
      } catch (const std::logic_error&) {
      }
      std::remove(path.c_str());
    }
  }
  EXPECT_GT(rejected, 0) << "no flip tripped any decoder guard?";
  EXPECT_EQ(rejected + survived, 120);
}

TEST_F(FrozenFuzz, RejectionsLeaveNoPartiallyConstructedState) {
  // A rejected image must not poison later loads — decode into fresh
  // state each time (regression guard for static/global scratch).
  const auto& bytes = image();
  auto bad = bytes;
  bad[bytes.size() / 3] ^= 0x10;
  for (int i = 0; i < 3; ++i) {
    EXPECT_THROW(serve::FrozenScheme::load(bad), std::logic_error);
    const auto ok = serve::FrozenScheme::load(bytes);
    EXPECT_EQ(ok.save(), bytes);
  }
}

}  // namespace
}  // namespace nors
