#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/shortest_paths.h"
#include "treeroute/dist_tree.h"
#include "treeroute/tz_tree.h"

namespace nors {
namespace {

using graph::Dist;
using graph::Vertex;

/// Builds a TreeSpec from the SSSP tree of `g` rooted at `root`, and the
/// parent/dist arrays for ground-truth tree distances.
struct TreeFixture {
  treeroute::TreeSpec spec;
  std::vector<Vertex> parent;
  std::vector<Dist> dist_to_root;
};

TreeFixture sssp_tree(const graph::WeightedGraph& g, Vertex root) {
  const auto sp = graph::dijkstra(g, root);
  TreeFixture f;
  f.spec.root = root;
  f.parent = sp.parent;
  f.dist_to_root = sp.dist;
  f.spec.parent.assign(static_cast<std::size_t>(g.n()), graph::kNoVertex);
  f.spec.parent_port.assign(static_cast<std::size_t>(g.n()), graph::kNoPort);
  for (Vertex v = 0; v < g.n(); ++v) {
    f.spec.members.push_back(v);
    if (v == root) continue;
    f.spec.parent[v] = sp.parent[static_cast<std::size_t>(v)];
    f.spec.parent_port[v] = sp.parent_port[static_cast<std::size_t>(v)];
  }
  return f;
}

/// Walks the TZ tree router from u to v; returns total weight.
Dist walk_tz(const graph::WeightedGraph& g, const treeroute::TzTreeScheme& s,
             Vertex u, Vertex v) {
  Dist len = 0;
  Vertex x = u;
  int guard = 0;
  while (x != v) {
    const auto port = treeroute::TzTreeScheme::next_hop(s.table(x),
                                                        s.label(v));
    EXPECT_NE(port, graph::kNoPort);
    const auto& e = g.edge(x, port);
    len += e.w;
    x = e.to;
    if (++guard > 4 * g.n()) ADD_FAILURE() << "loop";
  }
  return len;
}

TEST(TzTree, ExactRoutingOnRandomTree) {
  util::Rng rng(61);
  const auto g = graph::random_tree(60, graph::WeightSpec::uniform(1, 15), rng);
  const auto f = sssp_tree(g, 0);
  const auto s = treeroute::TzTreeScheme::build(g, f.spec.members, f.spec.parent,
                                                f.spec.parent_port, 0);
  for (Vertex u = 0; u < g.n(); u += 3) {
    for (Vertex v = 1; v < g.n(); v += 5) {
      const Dist expect =
          graph::tree_distance(f.parent, f.dist_to_root, u, v);
      EXPECT_EQ(walk_tz(g, s, u, v), expect) << "u=" << u << " v=" << v;
    }
  }
}

TEST(TzTree, ExactRoutingOnSsspSubtreeOfGraph) {
  util::Rng rng(62);
  const auto g =
      graph::connected_gnm(80, 200, graph::WeightSpec::uniform(1, 9), rng);
  const auto f = sssp_tree(g, 5);
  const auto s = treeroute::TzTreeScheme::build(g, f.spec.members, f.spec.parent,
                                                f.spec.parent_port, 5);
  for (Vertex u = 0; u < g.n(); u += 7) {
    for (Vertex v = 2; v < g.n(); v += 11) {
      const Dist expect =
          graph::tree_distance(f.parent, f.dist_to_root, u, v);
      EXPECT_EQ(walk_tz(g, s, u, v), expect);
    }
  }
}

TEST(TzTree, SizesAreLogarithmic) {
  util::Rng rng(63);
  const auto g = graph::random_tree(512, graph::WeightSpec::unit(), rng);
  const auto f = sssp_tree(g, 0);
  const auto s = treeroute::TzTreeScheme::build(g, f.spec.members, f.spec.parent,
                                                f.spec.parent_port, 0);
  for (Vertex v = 0; v < g.n(); ++v) {
    EXPECT_EQ(s.table(v).words(), 6);
    // Light edges ≤ log2(n): subtree size halves at each light edge.
    EXPECT_LE(s.label(v).light.size(), 9u);
  }
}

TEST(TzTree, IntervalInvariants) {
  util::Rng rng(64);
  const auto g = graph::random_tree(100, graph::WeightSpec::unit(), rng);
  const auto f = sssp_tree(g, 0);
  const auto s = treeroute::TzTreeScheme::build(g, f.spec.members, f.spec.parent,
                                                f.spec.parent_port, 0);
  // Child intervals nest strictly inside parent intervals.
  for (Vertex v = 1; v < g.n(); ++v) {
    const auto& tv = s.table(v);
    const auto& tp = s.table(f.parent[static_cast<std::size_t>(v)]);
    EXPECT_GT(tv.a, tp.a);
    EXPECT_LE(tv.b, tp.b);
    EXPECT_LT(tv.a, tv.b);
  }
}

class DistTreeTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DistTreeTest, ExactRoutingMatchesTreeDistance) {
  util::Rng rng(GetParam());
  const auto g =
      graph::connected_gnm(90, 220, graph::WeightSpec::uniform(1, 12), rng);
  const auto f = sssp_tree(g, 3);
  // Sample U at various densities, including empty and everything.
  for (double p : {0.0, 0.1, 0.4, 1.0}) {
    std::vector<char> in_u(static_cast<std::size_t>(g.n()), 0);
    util::Rng urng(GetParam() + 100);
    for (Vertex v = 0; v < g.n(); ++v) {
      in_u[static_cast<std::size_t>(v)] = urng.bernoulli(p) ? 1 : 0;
    }
    const auto s = treeroute::DistTreeScheme::build(g, f.spec, in_u);
    for (Vertex u = 0; u < g.n(); u += 5) {
      for (Vertex v = 1; v < g.n(); v += 7) {
        const Dist expect =
            graph::tree_distance(f.parent, f.dist_to_root, u, v);
        Dist len = 0;
        Vertex x = u;
        int guard = 0;
        while (x != v) {
          const auto port = s.next_hop(x, s.label(v));
          ASSERT_NE(port, graph::kNoPort) << "stalled at " << x;
          const auto& e = g.edge(x, port);
          len += e.w;
          x = e.to;
          ASSERT_LE(++guard, 4 * g.n()) << "loop";
        }
        EXPECT_EQ(len, expect) << "u=" << u << " v=" << v << " p=" << p;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DistTreeTest,
                         ::testing::Values(71, 72, 73, 74, 75));

TEST(DistTree, RouteToRootFollowsParents) {
  util::Rng rng(81);
  const auto g = graph::connected_gnm(60, 130, graph::WeightSpec::uniform(1, 5), rng);
  const auto f = sssp_tree(g, 0);
  std::vector<char> in_u(static_cast<std::size_t>(g.n()), 0);
  for (Vertex v = 0; v < g.n(); v += 4) in_u[static_cast<std::size_t>(v)] = 1;
  const auto s = treeroute::DistTreeScheme::build(g, f.spec, in_u);
  for (Vertex u = 1; u < g.n(); u += 3) {
    Vertex x = u;
    Dist len = 0;
    int guard = 0;
    while (x != 0) {
      const auto port = s.next_hop_to_root(x);
      ASSERT_NE(port, graph::kNoPort);
      const auto& e = g.edge(x, port);
      len += e.w;
      x = e.to;
      ASSERT_LE(++guard, g.n());
    }
    EXPECT_EQ(len, f.dist_to_root[static_cast<std::size_t>(u)]);
  }
}

TEST(DistTree, SingletonTree) {
  graph::WeightedGraph g(3);
  g.add_edge(0, 1, 1);
  g.add_edge(1, 2, 1);
  g.freeze();
  treeroute::TreeSpec spec;
  spec.root = 1;
  spec.members = {1};
  spec.parent = {graph::kNoVertex};
  spec.parent_port = {graph::kNoPort};
  std::vector<char> in_u(3, 0);
  const auto s = treeroute::DistTreeScheme::build(g, spec, in_u);
  EXPECT_TRUE(s.contains(1));
  EXPECT_FALSE(s.contains(0));
  EXPECT_EQ(s.next_hop(1, s.label(1)), graph::kNoPort);
}

TEST(DistTree, SubtreeDepthShrinksWithDenserU) {
  util::Rng rng(82);
  const auto g = graph::path(200, graph::WeightSpec::unit(), rng);
  const auto f = sssp_tree(g, 0);
  std::vector<char> none(static_cast<std::size_t>(g.n()), 0);
  std::vector<char> dense(static_cast<std::size_t>(g.n()), 0);
  for (Vertex v = 0; v < g.n(); v += 10) dense[static_cast<std::size_t>(v)] = 1;
  const auto s_none = treeroute::DistTreeScheme::build(g, f.spec, none);
  const auto s_dense = treeroute::DistTreeScheme::build(g, f.spec, dense);
  EXPECT_EQ(s_none.max_subtree_depth(), 199);
  EXPECT_LE(s_dense.max_subtree_depth(), 10);
  EXPECT_GT(s_dense.u_count(), 15);
}

TEST(DistTree, LabelAndTableWordBounds) {
  // Theorem 7: tables O(log n) words, labels O(log² n) words. Check the
  // concrete constants on a large random tree with Remark-3 γ density.
  util::Rng rng(84);
  const int n = 1024;
  const auto g = graph::random_tree(n, graph::WeightSpec::uniform(1, 5), rng);
  const auto f = sssp_tree(g, 0);
  std::vector<char> in_u(static_cast<std::size_t>(n), 0);
  util::Rng urng(85);
  for (Vertex v = 0; v < n; ++v) {
    in_u[static_cast<std::size_t>(v)] =
        urng.bernoulli(1.0 / 32.0) ? 1 : 0;  // γ = n/32
  }
  const auto s = treeroute::DistTreeScheme::build(g, f.spec, in_u);
  const double log2n = 10.0;  // log2(1024)
  for (Vertex v = 0; v < n; ++v) {
    EXPECT_LE(s.table_words_at(static_cast<std::size_t>(s.find(v))),
              15 + 2 * log2n)
        << "v=" << v;
    EXPECT_LE(s.label(v).words(), 2 + 5 * log2n * log2n) << "v=" << v;
  }
}

TEST(DistTree, UCountTracksSampleDensity) {
  util::Rng rng(86);
  const auto g = graph::path(500, graph::WeightSpec::unit(), rng);
  const auto f = sssp_tree(g, 0);
  for (double p : {0.05, 0.2}) {
    std::vector<char> in_u(static_cast<std::size_t>(g.n()), 0);
    util::Rng urng(87);
    int expect = 1;  // the root
    for (Vertex v = 0; v < g.n(); ++v) {
      if (urng.bernoulli(p)) {
        in_u[static_cast<std::size_t>(v)] = 1;
        if (v != 0) ++expect;
      }
    }
    const auto s = treeroute::DistTreeScheme::build(g, f.spec, in_u);
    EXPECT_EQ(s.u_count(), expect);
  }
}

TEST(DistTreeBatch, BuildsAllTreesAndChargesRounds) {
  util::Rng rng(83);
  const auto g =
      graph::connected_gnm(100, 240, graph::WeightSpec::uniform(1, 6), rng);
  std::vector<treeroute::TreeSpec> specs;
  for (Vertex root : {0, 17, 42, 77}) {
    specs.push_back(sssp_tree(g, root).spec);
  }
  util::Rng batch_rng(99);
  const auto batch = treeroute::build_dist_tree_batch(g, specs, {}, 6, batch_rng);
  ASSERT_EQ(batch.schemes.size(), 4u);
  EXPECT_EQ(batch.max_overlap, 4);  // all trees span everything
  EXPECT_GT(batch.ledger.total_rounds(), 0);
  // Spot-check exactness on one tree.
  const auto f = sssp_tree(g, 17);
  const auto& s = batch.schemes[1];
  for (Vertex u = 0; u < g.n(); u += 13) {
    Vertex x = u;
    Dist len = 0;
    while (x != 60) {
      const auto port = s.next_hop(x, s.label(60));
      ASSERT_NE(port, graph::kNoPort);
      const auto& e = g.edge(x, port);
      len += e.w;
      x = e.to;
    }
    EXPECT_EQ(len, graph::tree_distance(f.parent, f.dist_to_root, u, 60));
  }
}

}  // namespace
}  // namespace nors
