// Failure-domain tests (DESIGN.md §12): the fault-injection registry
// itself, a live server under injected read/write/compute faults and
// adversarial peers (slowloris writers, never-reading clients, mid-frame
// disconnect storms), overload admission control with client backoff, and
// the request-deadline / write-stall force-close timers. The invariant
// throughout: the server keeps serving correct, bit-identical answers to
// well-behaved clients no matter what the failure domain does, and every
// query is accounted exactly once.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <dirent.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/scheme.h"
#include "graph/generators.h"
#include "net/client.h"
#include "net/server.h"
#include "serve/delta.h"
#include "serve/frozen.h"
#include "serve/wal.h"
#include "util/failpoint.h"
#include "util/random.h"

namespace nors {
namespace {

using serve::Decision;
using serve::Query;

/// Scoped failpoint activation: the registry is process-global, so every
/// test clears it on exit (including assertion-failure exits) to keep the
/// suite order-independent.
struct FailpointGuard {
  explicit FailpointGuard(const std::string& spec) {
    util::Failpoints::configure(spec);
  }
  ~FailpointGuard() { util::Failpoints::clear(); }
};

graph::WeightedGraph small_graph(std::uint64_t seed) {
  util::Rng rng(seed);
  return graph::connected_gnm(120, 360, graph::WeightSpec::uniform(1, 20),
                              rng);
}

serve::FrozenScheme build_frozen(const graph::WeightedGraph& g, int k,
                                 std::uint64_t seed) {
  core::SchemeParams p;
  p.k = k;
  p.seed = seed;
  return serve::FrozenScheme::freeze(core::RoutingScheme::build(g, p));
}

std::vector<Query> random_queries(int n, std::size_t count,
                                  std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<Query> qs;
  qs.reserve(count);
  while (qs.size() < count) {
    const auto u = static_cast<graph::Vertex>(
        rng.uniform(static_cast<std::uint64_t>(n)));
    const auto v = static_cast<graph::Vertex>(
        rng.uniform(static_cast<std::uint64_t>(n)));
    qs.push_back({u, v});
  }
  return qs;
}

void expect_identical(const Decision& wire, const Decision& local,
                      const Query& q) {
  ASSERT_EQ(wire.ok, local.ok) << q.u << "->" << q.v;
  ASSERT_EQ(wire.via_trick, local.via_trick) << q.u << "->" << q.v;
  ASSERT_EQ(wire.hops, local.hops) << q.u << "->" << q.v;
  ASSERT_EQ(wire.tree_level, local.tree_level) << q.u << "->" << q.v;
  ASSERT_EQ(wire.tree_root, local.tree_root) << q.u << "->" << q.v;
  ASSERT_EQ(wire.length, local.length) << q.u << "->" << q.v;
}

/// A raw TCP connection with a deliberately tiny receive buffer — the
/// adversarial peer of the stall/drain tests. SO_RCVBUF must be set
/// before connect() so the small window is what the server negotiates.
int raw_connect(int port, int rcvbuf) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  EXPECT_GE(fd, 0);
  if (rcvbuf > 0) {
    ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  return fd;
}

void raw_send_all(int fd, const std::vector<std::uint8_t>& bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const auto wr =
        ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (wr <= 0) break;  // server may have force-closed us already
    off += static_cast<std::size_t>(wr);
  }
}

std::vector<std::uint8_t> route_frame_bytes(const std::vector<Query>& qs,
                                            std::uint32_t id) {
  std::vector<std::uint8_t> body, frame;
  net::encode_route_request(body, qs.data(), qs.size());
  net::append_frame(frame, net::FrameType::kRoute, id, body);
  return frame;
}

// ---- the registry itself ------------------------------------------------

TEST(Failpoints, DisarmedIsFreeAndMissesReturnNone) {
  util::Failpoints::clear();
  EXPECT_FALSE(util::Failpoints::armed());
  EXPECT_EQ(util::failpoint("anything"), util::FpAction::kNone);
  {
    FailpointGuard g("some.point:error:1");
    EXPECT_TRUE(util::Failpoints::armed());
    EXPECT_EQ(util::failpoint("other.point"), util::FpAction::kNone);
    EXPECT_EQ(util::failpoint("some.point"), util::FpAction::kError);
  }
  EXPECT_FALSE(util::Failpoints::armed());
  EXPECT_EQ(util::failpoint("some.point"), util::FpAction::kNone);
}

TEST(Failpoints, ParsesMultiSpecAndCountsTrips) {
  FailpointGuard g("a:error:1,b:partial:1,c:delay:1:5");
  const auto before = util::Failpoints::trips();
  EXPECT_EQ(util::failpoint("a"), util::FpAction::kError);
  EXPECT_EQ(util::failpoint("b"), util::FpAction::kPartial);
  EXPECT_EQ(util::failpoint("c"), util::FpAction::kNone);  // delay: no act
  EXPECT_EQ(util::Failpoints::trips(), before + 3);
}

TEST(Failpoints, OneshotFiresExactlyOnceAtTheConfiguredHit) {
  FailpointGuard g("x:oneshot:3");
  EXPECT_EQ(util::failpoint("x"), util::FpAction::kNone);
  EXPECT_EQ(util::failpoint("x"), util::FpAction::kNone);
  EXPECT_EQ(util::failpoint("x"), util::FpAction::kError);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(util::failpoint("x"), util::FpAction::kNone);
  }
}

TEST(Failpoints, DelayModeSleepsForTheConfiguredMs) {
  FailpointGuard g("d:delay:1:40");
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_EQ(util::failpoint("d"), util::FpAction::kNone);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  EXPECT_GE(ms, 40);
}

TEST(Failpoints, ProbabilisticRateFiresProportionally) {
  FailpointGuard g("p:error:0.5");
  int fired = 0;
  for (int i = 0; i < 1000; ++i) {
    fired += util::failpoint("p") == util::FpAction::kError ? 1 : 0;
  }
  // splitmix64 stream seeded from the name: deterministic, near 500.
  EXPECT_GT(fired, 350);
  EXPECT_LT(fired, 650);
}

TEST(Failpoints, MalformedSpecsAreRejectedLoudly) {
  util::Failpoints::clear();
  EXPECT_THROW(util::Failpoints::configure("noname"), std::logic_error);
  EXPECT_THROW(util::Failpoints::configure("a:badmode:1"), std::logic_error);
  EXPECT_THROW(util::Failpoints::configure("a:error:zzz"), std::logic_error);
  util::Failpoints::clear();
}

// ---- injected I/O faults under live serving -----------------------------

TEST(Chaos, PartialIoKeepsAnswersBitIdentical) {
  const auto g = small_graph(71);
  auto frozen = build_frozen(g, 2, 5);
  const auto reference = serve::FrozenScheme::load(frozen.save());
  net::Server server(std::move(frozen), {});

  // Every server read delivers one byte; every write flushes one byte.
  // The stream arrives maximally fragmented and leaves the same way —
  // nothing about framing or ordering may depend on I/O granularity.
  FailpointGuard fp("net.read:partial:1,net.write:partial:1");
  net::Client client("127.0.0.1", server.port());
  const auto qs = random_queries(reference.n(), 48, 9);
  const auto wire = client.route(qs);
  ASSERT_EQ(wire.size(), qs.size());
  for (std::size_t i = 0; i < qs.size(); ++i) {
    expect_identical(wire[i], reference.route(qs[i].u, qs[i].v), qs[i]);
  }
}

TEST(Chaos, InjectedReadAndAcceptErrorsNeverKillTheServer) {
  const auto g = small_graph(73);
  auto frozen = build_frozen(g, 2, 7);
  const auto reference = serve::FrozenScheme::load(frozen.save());
  net::Server server(std::move(frozen), {});
  const auto qs = random_queries(reference.n(), 16, 11);

  {
    // 30% of reads and accepts fail abruptly: clients see dropped
    // connections (that's the injected fault), the server sees churn.
    FailpointGuard fp("net.read:error:0.3,net.accept:error:0.3");
    for (int round = 0; round < 30; ++round) {
      try {
        net::ClientOptions copt;
        copt.host = "127.0.0.1";
        copt.port = server.port();
        copt.connect_retries = 10;
        copt.backoff_base_ms = 1;
        net::Client client(copt);
        client.route(qs);
      } catch (const std::exception&) {
        // injected: connection died mid-call
      }
    }
  }

  // Faults off: full service, correct answers.
  net::Client client("127.0.0.1", server.port());
  const auto wire = client.route(qs);
  for (std::size_t i = 0; i < qs.size(); ++i) {
    expect_identical(wire[i], reference.route(qs[i].u, qs[i].v), qs[i]);
  }
}

TEST(Chaos, InjectedBatchFailureIsAServerErrorNotACrash) {
  const auto g = small_graph(79);
  auto frozen = build_frozen(g, 2, 13);
  const auto reference = serve::FrozenScheme::load(frozen.save());
  net::Server server(std::move(frozen), {});
  const auto qs = random_queries(reference.n(), 8, 17);

  {
    FailpointGuard fp("serve.batch:error:1");
    net::Client client("127.0.0.1", server.port());
    try {
      client.route(qs);
      FAIL() << "injected batch failure must surface";
    } catch (const net::ProtocolError& e) {
      EXPECT_EQ(e.code, net::ErrorCode::kServerError);
    }
  }

  net::Client client("127.0.0.1", server.port());
  const auto wire = client.route(qs);
  for (std::size_t i = 0; i < qs.size(); ++i) {
    expect_identical(wire[i], reference.route(qs[i].u, qs[i].v), qs[i]);
  }
}

TEST(Chaos, QueueDelayOnlySlowsServiceDown) {
  const auto g = small_graph(83);
  auto frozen = build_frozen(g, 2, 19);
  const auto reference = serve::FrozenScheme::load(frozen.save());
  net::Server server(std::move(frozen), {});
  const auto qs = random_queries(reference.n(), 4, 23);

  FailpointGuard fp("serve.queue:delay:1:30");
  const auto trips_before = util::Failpoints::trips();
  const auto t0 = std::chrono::steady_clock::now();
  net::Client client("127.0.0.1", server.port());
  const auto wire = client.route(qs);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  EXPECT_GE(ms, 30);
  EXPECT_GT(util::Failpoints::trips(), trips_before);
  for (std::size_t i = 0; i < qs.size(); ++i) {
    expect_identical(wire[i], reference.route(qs[i].u, qs[i].v), qs[i]);
  }
}

TEST(Chaos, FrozenLoadAndMapFailpointsInjectThrows) {
  const auto g = small_graph(89);
  const auto frozen = build_frozen(g, 2, 29);
  const auto bytes = frozen.save();
  {
    FailpointGuard fp("frozen.load:error:1");
    EXPECT_THROW(serve::FrozenScheme::load(bytes), std::runtime_error);
  }
  // Clean again once disarmed.
  const auto reloaded = serve::FrozenScheme::load(bytes);
  EXPECT_EQ(reloaded.n(), frozen.n());
}

TEST(Chaos, ReloadFailureKeepsTheOldImageServing) {
  const auto g = small_graph(97);
  auto frozen = build_frozen(g, 2, 31);
  const auto reference = serve::FrozenScheme::load(frozen.save());
  const std::string path =
      "chaos_reload_" + std::to_string(::getpid()) + ".frozen";
  reference.save_file(path);

  net::Server server(std::move(frozen), {});
  const auto qs = random_queries(reference.n(), 16, 37);

  {
    // The SIGHUP path of route_serviced: a failing re-map must not take
    // serving down — the daemon catches and keeps the old generation.
    FailpointGuard fp("frozen.map:error:1");
    EXPECT_THROW(server.reload_file(path), std::runtime_error);
  }
  EXPECT_EQ(server.stats().reloads, 0);

  net::Client client("127.0.0.1", server.port());
  const auto wire = client.route(qs);
  for (std::size_t i = 0; i < qs.size(); ++i) {
    expect_identical(wire[i], reference.route(qs[i].u, qs[i].v), qs[i]);
  }

  // And once the fault clears, the reload goes through.
  server.reload_file(path);
  EXPECT_EQ(server.stats().reloads, 1);
  ::unlink(path.c_str());
}

// ---- adversarial peers --------------------------------------------------

TEST(Chaos, SlowlorisAndNeverReaderDoNotBlockOthers) {
  const auto g = small_graph(101);
  auto frozen = build_frozen(g, 2, 41);
  const auto reference = serve::FrozenScheme::load(frozen.save());
  const int n = reference.n();

  net::NetServerOptions opt;
  opt.loops = 2;
  net::Server server(std::move(frozen), opt);

  // Slowloris: dribbles one byte of a valid frame every few ms, never
  // completing it. Never-reader: pipelines requests and reads nothing,
  // pinning its responses in the server's outbuf. Neither may slow a
  // well-behaved client beyond its own work.
  std::atomic<bool> stop{false};
  const auto frame = route_frame_bytes(random_queries(n, 32, 43), 7);
  std::thread slowloris([&] {
    const int fd = raw_connect(server.port(), 0);
    std::size_t at = 0;
    while (!stop.load(std::memory_order_acquire) && at < frame.size()) {
      [[maybe_unused]] const auto r =
          ::send(fd, frame.data() + at, 1, MSG_NOSIGNAL);
      ++at;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    ::close(fd);
  });
  std::thread never_reader([&] {
    const int fd = raw_connect(server.port(), 4096);
    for (int f = 0; f < 8 && !stop.load(std::memory_order_acquire); ++f) {
      raw_send_all(fd, frame);
    }
    while (!stop.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    ::close(fd);
  });

  const auto qs = random_queries(n, 64, 47);
  net::Client client("127.0.0.1", server.port());
  for (int round = 0; round < 10; ++round) {
    const auto wire = client.route(qs);
    ASSERT_EQ(wire.size(), qs.size());
    for (std::size_t i = 0; i < qs.size(); ++i) {
      expect_identical(wire[i], reference.route(qs[i].u, qs[i].v), qs[i]);
    }
  }
  stop.store(true, std::memory_order_release);
  slowloris.join();
  never_reader.join();
}

TEST(Chaos, MidFrameDisconnectStormIsHarmless) {
  const auto g = small_graph(103);
  auto frozen = build_frozen(g, 2, 53);
  const auto reference = serve::FrozenScheme::load(frozen.save());
  const int n = reference.n();
  net::Server server(std::move(frozen), {});

  const auto qs = random_queries(n, 32, 59);
  const auto frame = route_frame_bytes(qs, 3);
  for (int round = 0; round < 50; ++round) {
    const int fd = raw_connect(server.port(), 0);
    // A complete frame, then a torn prefix of another, then vanish.
    std::vector<std::uint8_t> bytes = frame;
    bytes.insert(bytes.end(), frame.begin(),
                 frame.begin() + 1 + round % (frame.size() - 1));
    raw_send_all(fd, bytes);
    ::close(fd);
  }

  net::Client client("127.0.0.1", server.port());
  const auto wire = client.route(qs);
  for (std::size_t i = 0; i < qs.size(); ++i) {
    expect_identical(wire[i], reference.route(qs[i].u, qs[i].v), qs[i]);
  }
}

// ---- overload admission + client backoff --------------------------------

TEST(Chaos, OverloadShedsAndBackoffClientsCompleteExactly) {
  const auto g = small_graph(107);
  auto frozen = build_frozen(g, 2, 61);
  const auto reference = serve::FrozenScheme::load(frozen.save());
  const int n = reference.n();

  net::NetServerOptions opt;
  // A budget far below the offered load: 4 clients × 50-query frames can
  // put 200 queries in flight against a budget of 64 (any one frame still
  // fits, so no frame is unservable — a frame larger than the budget
  // would livelock its sender).
  opt.max_inflight_queries = 64;
  opt.retry_after_ms = 1;
  opt.loops = 2;
  opt.shards = 2;
  net::Server server(std::move(frozen), opt);

  constexpr int kClients = 4;
  constexpr int kCalls = 30;
  constexpr std::size_t kPerCall = 50;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      try {
        net::ClientOptions copt;
        copt.host = "127.0.0.1";
        copt.port = server.port();
        copt.overload_retries = 1000;
        copt.backoff_base_ms = 1;
        copt.backoff_cap_ms = 16;
        net::Client client(copt);
        for (int call = 0; call < kCalls; ++call) {
          const auto qs = random_queries(
              n, kPerCall, 500 + static_cast<unsigned>(c * kCalls + call));
          const auto wire = client.route(qs);
          if (wire.size() != qs.size()) {
            ++failures;
            return;
          }
          for (std::size_t i = 0; i < qs.size(); ++i) {
            const auto local = reference.route(qs[i].u, qs[i].v);
            if (wire[i].length != local.length || wire[i].ok != local.ok ||
                wire[i].hops != local.hops) {
              ++failures;
              return;
            }
          }
        }
      } catch (...) {
        ++failures;
      }
    });
  }
  for (auto& t : threads) t.join();
  ASSERT_EQ(failures.load(), 0);

  // Exactly-once accounting: every query was answered once — shed frames
  // were rejected *before* dispatch, so retries never double-count.
  const auto stats = server.stats();
  EXPECT_EQ(stats.queries,
            static_cast<std::int64_t>(kClients * kCalls * kPerCall));
  EXPECT_GT(stats.shed, 0) << "2x-budget offered load must shed";
  EXPECT_EQ(stats.protocol_errors, 0)
      << "kOverloaded is shed load, not a protocol error";
}

TEST(Chaos, ForcedOverloadSurfacesTypedErrorWithHint) {
  const auto g = small_graph(109);
  auto frozen = build_frozen(g, 2, 67);
  const auto reference = serve::FrozenScheme::load(frozen.save());
  net::NetServerOptions opt;
  opt.retry_after_ms = 40;
  net::Server server(std::move(frozen), opt);
  const auto qs = random_queries(reference.n(), 8, 71);

  net::Client client("127.0.0.1", server.port());
  {
    // The oneshot fires on the first admission check only: the client's
    // very next retry (without any retry budget here) must succeed.
    FailpointGuard fp("net.overload:oneshot:1");
    try {
      client.route(qs);
      FAIL() << "forced overload must surface without retries";
    } catch (const net::OverloadedError& e) {
      EXPECT_EQ(e.code, net::ErrorCode::kOverloaded);
      EXPECT_EQ(e.retry_after_ms, 40u);
    }
  }
  // Same connection: recoverable means still usable.
  const auto wire = client.route(qs);
  for (std::size_t i = 0; i < qs.size(); ++i) {
    expect_identical(wire[i], reference.route(qs[i].u, qs[i].v), qs[i]);
  }
  EXPECT_EQ(server.stats().shed, 1);
}

TEST(Chaos, RouteRetriesShedFramesTransparently) {
  const auto g = small_graph(113);
  auto frozen = build_frozen(g, 2, 73);
  const auto reference = serve::FrozenScheme::load(frozen.save());
  net::Server server(std::move(frozen), {});
  const auto qs = random_queries(reference.n(), 24, 79);

  // Every third admission sheds; a client with retry budget never sees it.
  FailpointGuard fp("net.overload:error:0.33");
  net::ClientOptions copt;
  copt.host = "127.0.0.1";
  copt.port = server.port();
  copt.overload_retries = 100;
  copt.backoff_base_ms = 1;
  copt.backoff_cap_ms = 8;
  net::Client client(copt);
  for (int round = 0; round < 10; ++round) {
    const auto wire = client.route(qs);
    ASSERT_EQ(wire.size(), qs.size());
    for (std::size_t i = 0; i < qs.size(); ++i) {
      expect_identical(wire[i], reference.route(qs[i].u, qs[i].v), qs[i]);
    }
  }
}

// ---- deadlines and stall timers -----------------------------------------

TEST(Chaos, ClientDeadlineRaisesTimeoutErrorAgainstAHungServer) {
  const auto g = small_graph(127);
  auto frozen = build_frozen(g, 2, 83);
  const auto reference = serve::FrozenScheme::load(frozen.save());
  net::Server server(std::move(frozen), {});
  const auto qs = random_queries(reference.n(), 4, 89);

  // Wedge the compute path for ~1s; the client's 150ms deadline must fire
  // well before the answer could exist.
  FailpointGuard fp("serve.batch:delay:1:1000");
  net::ClientOptions copt;
  copt.host = "127.0.0.1";
  copt.port = server.port();
  copt.request_timeout_ms = 150;
  net::Client client(copt);
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_THROW(client.route(qs), net::TimeoutError);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  EXPECT_GE(ms, 100);  // poll timeout truncation can undershoot by ~1ms
  EXPECT_LT(ms, 900) << "TimeoutError must fire at the deadline, not "
                        "when the server finally answers";
}

TEST(Chaos, RequestDeadlineForceClosesWedgedConnections) {
  const auto g = small_graph(131);
  auto frozen = build_frozen(g, 2, 97);
  const auto reference = serve::FrozenScheme::load(frozen.save());
  net::NetServerOptions opt;
  opt.request_deadline_ms = 120;
  net::Server server(std::move(frozen), opt);
  const auto qs = random_queries(reference.n(), 4, 101);

  {
    // The shard wedges for 800ms; the server must cut the connection at
    // the 120ms deadline instead of holding it hostage.
    FailpointGuard fp("serve.batch:delay:1:800");
    net::Client client("127.0.0.1", server.port());
    client.send_route(qs.data(), qs.size());
    net::Frame f;
    EXPECT_FALSE(client.recv_frame_or_eof(f))
        << "deadline must close the connection, not answer late";
  }
  for (int spin = 0; server.stats().timeouts == 0 && spin < 5000; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(server.stats().timeouts, 1);

  // The wedged worker is still sleeping out its injected 800ms; let it
  // drain, or the fresh batch below would queue behind it and trip the
  // same deadline.
  std::this_thread::sleep_for(std::chrono::milliseconds(900));

  // New connection, fault cleared: full service.
  net::Client client("127.0.0.1", server.port());
  const auto wire = client.route(qs);
  for (std::size_t i = 0; i < qs.size(); ++i) {
    expect_identical(wire[i], reference.route(qs[i].u, qs[i].v), qs[i]);
  }
}

TEST(Chaos, WriteStallTimerForceClosesPeersThatStoppedReading) {
  const auto g = small_graph(137);
  auto frozen = build_frozen(g, 2, 103);
  const auto reference = serve::FrozenScheme::load(frozen.save());
  const int n = reference.n();

  net::NetServerOptions opt;
  opt.stall_timeout_ms = 200;
  // Small kernel buffers on both sides make the non-reading peer wedge
  // the flush within a few frames instead of hiding behind megabytes of
  // autotuned TCP buffering.
  opt.sndbuf_bytes = 8192;
  net::Server server(std::move(frozen), opt);

  const int fd = raw_connect(server.port(), 4096);
  const auto frame = route_frame_bytes(random_queries(n, 4096, 107), 5);
  // Pipeline plenty of work, read nothing. Responses (~24KB each) overrun
  // sndbuf + rcvbuf quickly; the stall timer must cut us loose.
  for (int f = 0; f < 8; ++f) raw_send_all(fd, frame);

  for (int spin = 0; server.stats().stalls == 0 && spin < 5000; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(server.stats().stalls, 1)
      << "a peer that stopped reading must be force-closed";
  ::close(fd);

  // The stalled peer cost a connection, nothing else.
  net::Client client("127.0.0.1", server.port());
  const auto qs = random_queries(n, 16, 109);
  const auto wire = client.route(qs);
  for (std::size_t i = 0; i < qs.size(); ++i) {
    expect_identical(wire[i], reference.route(qs[i].u, qs[i].v), qs[i]);
  }
}

// ---- client retry/backoff bug pins --------------------------------------

TEST(ClientBackoff, OverloadSleepClampsHostileHints) {
  // The bug: static_cast<int>(hint) before std::max — a hint ≥ 2^31 went
  // negative, lost the max(), and the overload sleep degenerated to bare
  // backoff. The clamp must narrow only *after* capping.
  EXPECT_EQ(net::Client::overload_sleep_ms(0xFFFFFFFFu, 10000, 37), 10000);
  EXPECT_EQ(net::Client::overload_sleep_ms(0x80000000u, 10000, 37), 10000);
  EXPECT_EQ(net::Client::overload_sleep_ms(0x7FFFFFFFu, 10000, 37), 10000);
  // Honest hints below the cap pass through; the backoff still floors.
  EXPECT_EQ(net::Client::overload_sleep_ms(25, 10000, 37), 37);
  EXPECT_EQ(net::Client::overload_sleep_ms(500, 10000, 37), 500);
  // Degenerate cap configs stay sane.
  EXPECT_EQ(net::Client::overload_sleep_ms(0xFFFFFFFFu, 0, 37), 37);
  EXPECT_EQ(net::Client::overload_sleep_ms(0xFFFFFFFFu, -5, 37), 37);
}

TEST(ClientBackoff, HugeWireHintSleepsTheCapNotNothingNotForever) {
  // A hand-rolled server that sheds every route frame with the largest
  // possible retry-after hint. With the old narrowing bug the client
  // would sleep only its tiny backoff (~1-2ms); without any cap it would
  // park for ~49 days. The clamp makes it sleep exactly the configured
  // ceiling per retry round.
  const int lfd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  ASSERT_GE(lfd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = 0;
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::bind(lfd, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  ASSERT_EQ(::listen(lfd, 4), 0);
  socklen_t alen = sizeof(addr);
  ASSERT_EQ(::getsockname(lfd, reinterpret_cast<sockaddr*>(&addr), &alen), 0);
  const int port = ntohs(addr.sin_port);

  std::thread shedder([lfd] {
    const int fd = ::accept(lfd, nullptr, nullptr);
    if (fd < 0) return;
    std::vector<std::uint8_t> buf, reply, body;
    std::uint8_t chunk[4096];
    for (;;) {
      const auto rd = ::recv(fd, chunk, sizeof(chunk), 0);
      if (rd <= 0) break;
      buf.insert(buf.end(), chunk, chunk + rd);
      for (;;) {
        const auto pr = net::parse_frame(buf.data(), buf.size());
        if (pr.status != net::ParseResult::Status::kFrame) break;
        body.clear();
        net::encode_overloaded(body, 0xFFFFFFFFu, "always busy");
        reply.clear();
        net::append_frame(reply, net::FrameType::kError,
                          pr.frame.request_id, body);
        raw_send_all(fd, reply);
        buf.erase(buf.begin(),
                  buf.begin() + static_cast<std::ptrdiff_t>(pr.consumed));
      }
    }
    ::close(fd);
  });

  net::ClientOptions copt;
  copt.host = "127.0.0.1";
  copt.port = port;
  copt.overload_retries = 2;
  copt.retry_hint_cap_ms = 80;
  copt.backoff_base_ms = 1;
  copt.backoff_cap_ms = 2;
  net::Client client(copt);

  const std::vector<Query> qs = {{0, 1}};
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_THROW(client.route(qs), net::OverloadedError);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  // Two retry rounds at the 80ms cap each: ≥160ms proves the hint was
  // not negative-skipped; well under a second proves it was clamped.
  EXPECT_GE(ms, 160);
  EXPECT_LT(ms, 2000);

  client.close();
  ::close(lfd);
  shedder.join();
}

TEST(ClientBackoff, ConcurrentClientsDrawDivergingJitterSchedules) {
  // The bug: a seed of constant ^ (pid << 32) ^ this put two clients in
  // identical backoff streams whenever the allocator reused an address
  // (and gave near-identical streams either way) — a reconnect herd then
  // retried in lockstep. Seeds must differ even for clients constructed
  // back to back at the same address, and the schedules they draw must
  // diverge.
  const auto g = small_graph(211);
  net::Server server(build_frozen(g, 2, 113), {});

  auto a = std::make_unique<net::Client>("127.0.0.1", server.port());
  const std::uint64_t seed_a = a->jitter_seed();
  a.reset();  // free the address so the next client may land on it
  auto b = std::make_unique<net::Client>("127.0.0.1", server.port());
  const std::uint64_t seed_b = b->jitter_seed();
  EXPECT_NE(seed_a, seed_b);

  // Replay both schedules from the captured seeds: 20 draws over the
  // jittered range must not coincide everywhere (probability ~0 with
  // distinct streams, certainty of failure with the old shared stream).
  std::uint64_t rng_a = seed_a, rng_b = seed_b;
  net::Backoff ba(20, 1000, rng_a), bb(20, 1000, rng_b);
  bool diverged = false;
  for (int i = 0; i < 20; ++i) {
    diverged = diverged || ba.next() != bb.next();
  }
  EXPECT_TRUE(diverged);
}

// ---- stats coherence under concurrent load ------------------------------

TEST(Chaos, StatsInvariantsHoldUnderConcurrentLoadAndShed) {
  // net::Server::stats() used to read its counters as independent relaxed
  // loads, so a snapshot could transiently report more answers than
  // frames, or more shed queries than admitted ones. The fixed snapshot
  // orders its loads (late counters acquire-first), making these
  // invariants assertable *while* the counters move.
  const auto g = small_graph(223);
  auto frozen = build_frozen(g, 2, 127);
  const int n = frozen.n();
  net::NetServerOptions opt;
  opt.loops = 2;
  opt.max_inflight_queries = 512;  // force shedding under the load below
  net::Server server(std::move(frozen), opt);

  std::atomic<bool> stop{false};
  std::atomic<int> violations{0};
  std::vector<std::thread> load;
  for (int c = 0; c < 4; ++c) {
    load.emplace_back([&, c] {
      net::ClientOptions copt;
      copt.host = "127.0.0.1";
      copt.port = server.port();
      copt.overload_retries = 1000000;
      copt.backoff_base_ms = 1;
      copt.backoff_cap_ms = 4;
      net::Client client(copt);
      // Frames small enough to be admitted alone, big enough that four
      // concurrent clients overrun the 512-query budget and get shed.
      const auto qs = random_queries(n, 256, 131 + static_cast<unsigned>(c));
      while (!stop.load(std::memory_order_relaxed)) {
        client.route(qs);
      }
    });
  }

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(400);
  std::int64_t snapshots = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    const auto s = server.stats();
    ++snapshots;
    const auto cap = static_cast<std::int64_t>(net::kMaxQueriesPerFrame);
    if (s.frames_out > s.frames_in) violations.fetch_add(1);
    if (s.queries > s.frames_in * cap) violations.fetch_add(1);
    if (s.shed > s.frames_in) violations.fetch_add(1);
    if (s.conns_active > s.conns_accepted) violations.fetch_add(1);
    if (s.frames_in < 0 || s.frames_out < 0 || s.queries < 0 || s.shed < 0 ||
        s.conns_active < 0) {
      violations.fetch_add(1);
    }
  }
  stop.store(true);
  for (auto& t : load) t.join();

  EXPECT_EQ(violations.load(), 0);
  EXPECT_GT(snapshots, 100);
  EXPECT_GT(server.stats().shed, 0)
      << "the load must actually exercise admission control";
}

// ---- disk full under the WAL (DESIGN.md §14) ---------------------------
// The `partial` mode on wal.append is the ENOSPC shape: a torn prefix
// lands on disk and the write reports no space. The server must shed the
// update with a recoverable kWalError — never publish an unlogged
// generation — and keep serving reads from the old generation throughout.

TEST(Chaos, DiskFullShedsUpdatesButReadsKeepServing) {
  char tmpl[] = "/tmp/nors_chaos_wal_XXXXXX";
  char* wal_dir = ::mkdtemp(tmpl);
  ASSERT_NE(wal_dir, nullptr);

  const auto g = small_graph(211);
  auto frozen = build_frozen(g, 2, 83);
  std::vector<serve::EdgeUpdate> batch;
  for (const auto& he : g.neighbors(0)) {
    batch.push_back(serve::EdgeUpdate::weight(0, he.to, 2));
  }
  ASSERT_FALSE(batch.empty());

  net::NetServerOptions opt;
  opt.wal_dir = wal_dir;
  net::Server server(std::move(frozen), opt);
  net::Client client("127.0.0.1", server.port());
  EXPECT_EQ(client.update(batch).seq, 1u);

  const auto qs = [&] {
    util::Rng rng(223);
    const auto n = static_cast<std::uint64_t>(g.n());
    std::vector<Query> out;
    for (int i = 0; i < 200; ++i) {
      out.push_back({static_cast<graph::Vertex>(rng.uniform(n)),
                     static_cast<graph::Vertex>(rng.uniform(n))});
    }
    return out;
  }();
  const auto before = client.route(qs);

  {
    FailpointGuard fp("wal.append:partial:1");
    for (int round = 0; round < 3; ++round) {
      try {
        client.update(batch);
        FAIL() << "disk-full update should be shed";
      } catch (const net::ProtocolError& e) {
        EXPECT_EQ(e.code, net::ErrorCode::kWalError);
      }
      // The shed is recoverable and reads are untouched: the same
      // connection keeps getting bit-identical answers from the
      // generation published before the disk filled.
      const auto during = client.route(qs);
      for (std::size_t i = 0; i < qs.size(); ++i) {
        ASSERT_EQ(during[i].ok, before[i].ok) << i;
        ASSERT_EQ(during[i].length, before[i].length) << i;
        ASSERT_EQ(during[i].hops, before[i].hops) << i;
      }
    }
  }
  const auto s = server.stats();
  EXPECT_EQ(s.wal_errors, 3);
  EXPECT_EQ(s.update_seq, 1);  // nothing unlogged was ever published
  EXPECT_EQ(s.updates, 1);

  // The disk "drained": the next update lands at the next seq, and the
  // log is whole — a reboot replays both acked batches, no torn bytes.
  EXPECT_EQ(client.update(batch).seq, 2u);
  EXPECT_EQ(server.stats().update_seq, 2);

  {
    std::vector<serve::WalRecord> recovered;
    serve::Wal check(
        wal_dir, {},
        [&](const serve::WalRecord& r) { recovered.push_back(r); });
    EXPECT_EQ(recovered.size(), 2u);
    EXPECT_EQ(check.stats().torn_bytes_dropped, 0u);
  }
  if (DIR* d = ::opendir(wal_dir)) {
    while (struct dirent* e = ::readdir(d)) {
      const std::string name = e->d_name;
      if (name != "." && name != "..") {
        ::unlink((std::string(wal_dir) + "/" + name).c_str());
      }
    }
    ::closedir(d);
  }
  ::rmdir(wal_dir);
}

}  // namespace
}  // namespace nors
