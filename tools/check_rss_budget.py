#!/usr/bin/env python3
"""CI peak-RSS budget check (DESIGN.md §9).

Compares the peak_rss_mb column of a fresh BENCH_construction.json against
the committed budget in bench/results/rss_budget.json, so construction
memory regressions fail CI exactly like correctness regressions.

Usage: check_rss_budget.py <BENCH_construction.json> <rss_budget.json>
"""

import json
import sys


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    with open(sys.argv[1]) as f:
        bench = json.load(f)
    with open(sys.argv[2]) as f:
        budget = json.load(f)

    n = budget["n"]
    limit = budget["budget_peak_rss_mb"]
    rows = [r for r in bench.get("rows", []) if r.get("n") == n]
    if not rows:
        print(f"FAIL: no construction rows at n={n} in {sys.argv[1]} — "
              "was the smoke run executed with the expected NORS_BENCH_N?",
              file=sys.stderr)
        return 1

    # peak_rss_mb is process-monotonic, so the last row at the budgeted n is
    # the honest high-water mark of the smoke run.
    worst = max(float(r["peak_rss_mb"]) for r in rows)
    status = "OK" if worst <= limit else "FAIL"
    print(f"{status}: peak_rss_mb {worst:.1f} MB vs budget {limit} MB "
          f"(n={n}, {len(rows)} rows)")
    if worst > limit:
        print("Construction peak RSS exceeded the committed budget. If the "
              "increase is intentional, bump bench/results/rss_budget.json "
              "in the same PR and document why.", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
