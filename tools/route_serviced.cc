// route_serviced — the network daemon over the frozen serving stack
// (DESIGN.md §11): mmap (or generate) a NORSFRZ1 image, serve the wire
// protocol of net/wire.h on TCP, and speak the usual daemon signal
// language:
//
//   SIGTERM / SIGINT   graceful drain: stop accepting, answer every frame
//                      already parsed, flush, close, exit 0
//   SIGHUP             reload: re-map the image file and atomically swap
//                      it under serving; in-flight batches finish on the
//                      old image, no response is dropped
//
// Live tables (DESIGN.md §13): edge updates reach a running daemon two
// ways. --updates=FILE replays a journal of `commit`-separated batches at
// boot (each batch is published as one delta generation, its DeltaStats
// logged), and the serving socket itself accepts kUpdate admin frames at
// any time (net::Client::update / route_client --fail-edge), so the
// update path and the query path share one port, one protocol, and one
// generation mechanism. SIGHUP re-maps the image file and *drops* the
// accumulated deltas — a reload is the "new ground truth" event.
//
// Flags:
//   --image=PATH       serve this frozen image (reloaded on SIGHUP)
//   --generate-n=N     no image? generate a connected G(n, 3n) workload,
//   --generate-k=K     build the scheme, freeze it, and save the image to
//   --seed=S           route_serviced_<pid>.frozen so SIGHUP still works
//   --host= --port=    bind address (default 127.0.0.1:0 = ephemeral)
//   --loops=L          epoll event loops   (default 1)
//   --shards=K         route shards        (default 1)
//   --cache=C          per-worker table-cache entries (default 4096)
//   --window=W         per-connection in-flight frame window (default 64)
//   --updates=FILE     replay this edge-update journal at boot (see
//                      serve/delta.h for the line format); alias:
//                      --import-updates=FILE — with --wal the imported
//                      batches are logged like any other update
//
// Durability + replication (DESIGN.md §14):
//   --wal=DIR            write-ahead-log directory: admitted updates are
//                        appended + synced before they are published, and
//                        boot replays the log so a rebooted (even
//                        SIGKILLed) daemon serves exactly what it
//                        acknowledged
//   --fsync=POLICY       always | interval | off   (default always)
//   --fsync-interval-ms=N  sync cadence for --fsync=interval (default 100)
//   --checkpoint-every=N checkpoint after every N applied batches:
//                        squash the delta chain into one snapshot WAL
//                        record, rebuild the image file with the weight
//                        overrides baked in, truncate the log (also
//                        triggerable any time via route_client
//                        --checkpoint)
//   --replica-of=H:P     follow the primary at H:P as a read-only
//                        replica: subscribe, apply its stream, serve
//                        reads, reject kUpdate with kReadOnly
//
// Overload / failure-domain knobs (DESIGN.md §12):
//   --budget=Q         global in-flight query budget (default 262144;
//                      0 = unlimited) — excess kRoute frames are shed
//                      with a recoverable kOverloaded + retry hint
//   --pending=P        per-loop pending-response cap (default 4096)
//   --deadline-ms=D    per-connection request deadline (default 30000)
//   --stall-ms=S       slow-peer write-stall timeout (default 10000)
//   --retry-after-ms=R retry hint carried by kOverloaded (default 25)
//
// Fault injection: set NORS_FAILPOINTS=name:mode:rate[:arg][,...] in the
// environment (util/failpoint.h) to exercise the failure paths end to end
// — CI's chaos smoke leg boots the daemon this way.
//
// Prints exactly one "route_serviced listening on HOST:PORT" line once
// the socket is bound — scripts (CI's smoke leg) wait for it.

#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/scheme.h"
#include "graph/generators.h"
#include "net/server.h"
#include "serve/delta.h"
#include "serve/frozen.h"
#include "util/random.h"

namespace {

using namespace nors;

struct Flags {
  std::string image;
  std::string updates;
  std::string wal;
  std::string fsync = "always";
  std::string replica_of;
  int fsync_interval_ms = 100;
  long long checkpoint_every = 0;
  std::string host = "127.0.0.1";
  int port = 0;
  int generate_n = 0;
  int generate_k = 2;
  std::uint64_t seed = 17;
  int loops = 1;
  int shards = 1;
  int cache = 4096;
  int window = 64;
  // Daemon defaults are protective (unlike the library's opt-in zeros): a
  // long-lived service should shed rather than queue without bound.
  long long budget = 262144;
  int pending = 4096;
  int deadline_ms = 30000;
  int stall_ms = 10000;
  int retry_after_ms = 25;
};

[[noreturn]] void usage(const char* bad) {
  std::fprintf(stderr,
               "unknown flag %s\nusage: route_serviced [--image=PATH | "
               "--generate-n=N --generate-k=K --seed=S] [--host=H] "
               "[--port=P] [--loops=L] [--shards=K] [--cache=C] "
               "[--window=W] [--updates=FILE | --import-updates=FILE] "
               "[--wal=DIR] [--fsync=always|interval|off] "
               "[--fsync-interval-ms=N] [--checkpoint-every=N] "
               "[--replica-of=HOST:PORT] [--budget=Q] [--pending=P] "
               "[--deadline-ms=D] [--stall-ms=S] [--retry-after-ms=R]\n",
               bad);
  std::exit(2);
}

Flags parse(int argc, char** argv) {
  Flags f;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto val = [&a](const char* key) -> const char* {
      const std::size_t len = std::strlen(key);
      return a.compare(0, len, key) == 0 ? a.c_str() + len : nullptr;
    };
    if (const char* v = val("--image=")) {
      f.image = v;
    } else if (const char* v = val("--updates=")) {
      f.updates = v;
    } else if (const char* v = val("--import-updates=")) {
      f.updates = v;  // the text journal is the WAL's import door
    } else if (const char* v = val("--wal=")) {
      f.wal = v;
    } else if (const char* v = val("--fsync=")) {
      f.fsync = v;
    } else if (const char* v = val("--fsync-interval-ms=")) {
      f.fsync_interval_ms = std::atoi(v);
    } else if (const char* v = val("--checkpoint-every=")) {
      f.checkpoint_every = std::atoll(v);
    } else if (const char* v = val("--replica-of=")) {
      f.replica_of = v;
    } else if (const char* v = val("--host=")) {
      f.host = v;
    } else if (const char* v = val("--port=")) {
      f.port = std::atoi(v);
    } else if (const char* v = val("--generate-n=")) {
      f.generate_n = std::atoi(v);
    } else if (const char* v = val("--generate-k=")) {
      f.generate_k = std::atoi(v);
    } else if (const char* v = val("--seed=")) {
      f.seed = std::strtoull(v, nullptr, 10);
    } else if (const char* v = val("--loops=")) {
      f.loops = std::atoi(v);
    } else if (const char* v = val("--shards=")) {
      f.shards = std::atoi(v);
    } else if (const char* v = val("--cache=")) {
      f.cache = std::atoi(v);
    } else if (const char* v = val("--window=")) {
      f.window = std::atoi(v);
    } else if (const char* v = val("--budget=")) {
      f.budget = std::atoll(v);
    } else if (const char* v = val("--pending=")) {
      f.pending = std::atoi(v);
    } else if (const char* v = val("--deadline-ms=")) {
      f.deadline_ms = std::atoi(v);
    } else if (const char* v = val("--stall-ms=")) {
      f.stall_ms = std::atoi(v);
    } else if (const char* v = val("--retry-after-ms=")) {
      f.retry_after_ms = std::atoi(v);
    } else {
      usage(a.c_str());
    }
  }
  if (f.image.empty() && f.generate_n < 4) {
    std::fprintf(stderr,
                 "need --image=PATH or --generate-n=N (N >= 4)\n");
    std::exit(2);
  }
  if (!f.replica_of.empty() && !f.updates.empty()) {
    std::fprintf(stderr,
                 "--replica-of excludes --updates/--import-updates: a "
                 "replica's state comes from its primary\n");
    std::exit(2);
  }
  return f;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags = parse(argc, argv);

  // Block the control signals process-wide *before* the server spawns its
  // threads, so every thread inherits the mask and sigwait below is the
  // only consumer.
  sigset_t sigs;
  sigemptyset(&sigs);
  sigaddset(&sigs, SIGTERM);
  sigaddset(&sigs, SIGINT);
  sigaddset(&sigs, SIGHUP);
  pthread_sigmask(SIG_BLOCK, &sigs, nullptr);

  try {
    if (flags.image.empty()) {
      // Generated mode: build → freeze → save, then serve the *file* so
      // SIGHUP has something to re-map.
      std::fprintf(stderr,
                   "generating n=%d k=%d seed=%llu workload...\n",
                   flags.generate_n, flags.generate_k,
                   static_cast<unsigned long long>(flags.seed));
      util::Rng rng(flags.seed);
      const auto g = graph::connected_gnm(
          flags.generate_n, 3LL * flags.generate_n,
          graph::WeightSpec::uniform(1, 32), rng);
      core::SchemeParams params;
      params.k = flags.generate_k;
      params.seed = flags.seed + 1;
      const auto scheme = core::RoutingScheme::build(g, params);
      flags.image = "route_serviced_" + std::to_string(::getpid()) +
                    ".frozen";
      serve::FrozenScheme::freeze(scheme).save_file(flags.image);
      std::fprintf(stderr, "image saved to %s\n", flags.image.c_str());
    }

    net::NetServerOptions opt;
    opt.host = flags.host;
    opt.port = flags.port;
    opt.loops = flags.loops;
    opt.shards = flags.shards;
    opt.cache_entries = flags.cache;
    opt.window = flags.window;
    opt.max_inflight_queries = flags.budget;
    opt.max_pending_per_loop = flags.pending;
    opt.request_deadline_ms = flags.deadline_ms;
    opt.stall_timeout_ms = flags.stall_ms;
    opt.retry_after_ms = flags.retry_after_ms;
    opt.wal_dir = flags.wal;
    opt.fsync = serve::parse_fsync_policy(flags.fsync);
    opt.fsync_interval_ms =
        static_cast<std::uint32_t>(std::max(1, flags.fsync_interval_ms));
    opt.checkpoint_every = flags.checkpoint_every;
    opt.image_path = flags.image;  // checkpoint rebuilds the served file
    opt.replica_of = flags.replica_of;
    net::Server server(serve::FrozenScheme::map(flags.image), opt);

    if (!flags.updates.empty() && !flags.wal.empty() &&
        server.stats().update_seq > 0) {
      // The WAL already holds recovered state: importing the journal
      // again would re-apply (and re-log) it on every reboot. The
      // import is a one-time seeding door, not a boot ritual.
      std::fprintf(stderr,
                   "skipping --updates import: WAL recovered to seq %lld\n",
                   static_cast<long long>(server.stats().update_seq));
      flags.updates.clear();
    }
    if (!flags.updates.empty()) {
      // Replay before announcing the port, so scripts that wait for the
      // listening line observe a daemon already on the journal's head
      // generation.
      const auto batches = serve::load_update_journal(flags.updates);
      for (const auto& batch : batches) {
        const auto ack = server.apply_updates(batch);
        std::fprintf(stderr,
                     "updates: gen %llu — %lld applied, %lld unknown, "
                     "%lld overrides, %lld failed links, %lld masked "
                     "trees\n",
                     static_cast<unsigned long long>(ack.seq),
                     static_cast<long long>(ack.applied),
                     static_cast<long long>(ack.unknown_edges),
                     static_cast<long long>(ack.overrides),
                     static_cast<long long>(ack.failed_links),
                     static_cast<long long>(ack.masked_trees));
      }
    }

    std::printf("route_serviced listening on %s:%d\n", flags.host.c_str(),
                server.port());
    std::fflush(stdout);

    for (;;) {
      int sig = 0;
      if (sigwait(&sigs, &sig) != 0) continue;
      if (sig == SIGHUP) {
        try {
          server.reload_file(flags.image);
          std::fprintf(stderr, "reloaded %s\n", flags.image.c_str());
        } catch (const std::exception& e) {
          // A broken image on disk must not take serving down; keep the
          // current generation and say why.
          std::fprintf(stderr, "reload failed, keeping old image: %s\n",
                       e.what());
        }
        continue;
      }
      std::fprintf(stderr, "signal %d: draining...\n", sig);
      server.drain();
      break;
    }
    const auto s = server.stats();
    std::fprintf(stderr,
                 "drained: %lld conns, %lld frames in, %lld queries, "
                 "%lld protocol errors, %lld shed, %lld timeouts, "
                 "%lld stalls, %lld updates, %lld masked, %lld repaired, "
                 "seq %lld, %lld wal records, %lld wal errors, "
                 "%lld checkpoints, %lld repl applied\n",
                 static_cast<long long>(s.conns_accepted),
                 static_cast<long long>(s.frames_in),
                 static_cast<long long>(s.queries),
                 static_cast<long long>(s.protocol_errors),
                 static_cast<long long>(s.shed),
                 static_cast<long long>(s.timeouts),
                 static_cast<long long>(s.stalls),
                 static_cast<long long>(s.updates),
                 static_cast<long long>(s.masked),
                 static_cast<long long>(s.repaired),
                 static_cast<long long>(s.update_seq),
                 static_cast<long long>(s.wal_records),
                 static_cast<long long>(s.wal_errors),
                 static_cast<long long>(s.checkpoints),
                 static_cast<long long>(s.repl_applied));
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "route_serviced: fatal: %s\n", e.what());
    return 1;
  }
}
