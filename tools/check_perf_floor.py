#!/usr/bin/env python3
"""CI throughput floor check (DESIGN.md §10, §11).

Compares fresh BENCH_*.json reports against the committed floors in
bench/results/perf_floor.json, so hot-path performance regressions fail
CI exactly like correctness regressions.

The floor file holds a list of checks:

    {"checks": [
        {"file":   "BENCH_serving.json",     # which report to look in
         "row":    "serve",                  # row type to select
         "match":  {"n": 2048, "threads": 1},  # fields rows must equal
         "metric": "decisions_per_sec",      # value compared to the floor
         "floor":  3800000,                  # minimum acceptable best row
         "note":   "why this floor"},
        ...]}

Every check must find at least one matching row in its report, and the
best (max) value of the metric across matching rows must reach the floor.
Floors are deliberately loose (~2x below a healthy run) to absorb runner
jitter; a failure therefore means the path got *severely* slower.

Usage: check_perf_floor.py <perf_floor.json> <BENCH_*.json> [more...]
"""

import json
import os
import sys


def run_check(check, reports):
    name = check["file"]
    if name not in reports:
        print(
            f"FAIL: {name} not among the provided reports "
            f"({', '.join(sorted(reports))}) — was its bench smoke run?",
            file=sys.stderr,
        )
        return False

    want = dict(check.get("match", {}))
    want["row"] = check["row"]
    rows = [
        r
        for r in reports[name].get("rows", [])
        if all(r.get(k) == v for k, v in want.items())
    ]
    if not rows:
        print(
            f"FAIL: no row matching {want} in {name} — was the smoke run "
            "executed with the expected size flags?",
            file=sys.stderr,
        )
        return False

    metric = check["metric"]
    floor = float(check["floor"])
    best = max(float(r[metric]) for r in rows)
    ok = best >= floor
    label = ", ".join(f"{k}={v}" for k, v in sorted(want.items()))
    print(
        f"{'OK' if ok else 'FAIL'}: {name} {metric} {best:,.0f} vs floor "
        f"{floor:,.0f} ({label})"
    )
    if not ok:
        print(
            f"{metric} fell below the committed floor. If a slowdown is "
            "intentional, lower bench/results/perf_floor.json in the same "
            "PR and document why.",
            file=sys.stderr,
        )
    return ok


def main() -> int:
    if len(sys.argv) < 3:
        print(__doc__, file=sys.stderr)
        return 2
    with open(sys.argv[1]) as f:
        floors = json.load(f)

    reports = {}
    for path in sys.argv[2:]:
        with open(path) as f:
            reports[os.path.basename(path)] = json.load(f)

    checks = floors["checks"]
    failed = [c for c in checks if not run_check(c, reports)]
    print(f"{len(checks) - len(failed)}/{len(checks)} floor checks passed")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
