#!/usr/bin/env python3
"""CI serving-throughput floor check (DESIGN.md §10).

Compares the single-thread *uncached* decisions_per_sec of a fresh
BENCH_serving.json against the committed floor in
bench/results/perf_floor.json, so decision-path performance regressions
fail CI exactly like correctness regressions. The uncached row is the one
checked because it exercises the whole pipeline — label decode, slab
prefetch, SIMD table search, port emit — with no cache masking a
slowdown.

The floor is deliberately loose (~2x below a healthy run) to absorb
runner jitter; a failure therefore means the hot path got *severely*
slower, not noisy.

Usage: check_perf_floor.py <BENCH_serving.json> <perf_floor.json>
"""

import json
import sys


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    with open(sys.argv[1]) as f:
        bench = json.load(f)
    with open(sys.argv[2]) as f:
        floor = json.load(f)

    n = floor["n"]
    limit = floor["floor_decisions_per_sec"]
    rows = [
        r
        for r in bench.get("rows", [])
        if r.get("row") == "serve"
        and r.get("n") == n
        and r.get("threads") == 1
        and r.get("cache_entries") == 0
    ]
    if not rows:
        print(
            f"FAIL: no threads=1 uncached serve row at n={n} in "
            f"{sys.argv[1]} — was the smoke run executed with the expected "
            "NORS_BENCH_N?",
            file=sys.stderr,
        )
        return 1

    best = max(float(r["decisions_per_sec"]) for r in rows)
    status = "OK" if best >= limit else "FAIL"
    print(
        f"{status}: decisions_per_sec {best:,.0f} vs floor {limit:,.0f} "
        f"(n={n}, threads=1, uncached)"
    )
    if best < limit:
        print(
            "Single-thread serving throughput fell below the committed "
            "floor. If a slowdown is intentional, lower "
            "bench/results/perf_floor.json in the same PR and document why.",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
