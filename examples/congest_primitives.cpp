// Substrate tour: the CONGEST-model building blocks the paper's algorithm
// stands on, run for real on the simulator — BFS tree construction,
// multi-source Bellman–Ford, pipelined broadcast (Lemma 1), and the
// hop-bounded approximate source detection of [Nan14] (Theorem 1).
//
//   $ ./examples/congest_primitives

#include <cstdio>

#include "graph/generators.h"
#include "graph/properties.h"
#include "primitives/bfs_tree.h"
#include "primitives/pipelined.h"
#include "primitives/set_bf.h"
#include "primitives/source_detection.h"

int main() {
  using namespace nors;

  util::Rng rng(3);
  const auto g =
      graph::connected_gnm(200, 520, graph::WeightSpec::uniform(1, 25), rng);
  std::printf("network: n=%d m=%lld hop-diameter D=%d\n\n", g.n(),
              static_cast<long long>(g.m()), graph::hop_diameter(g));

  // 1. BFS tree: Θ(D) rounds of real message passing.
  const auto tree = primitives::distributed_bfs_tree(g, 0);
  std::printf("[1] BFS tree from 0: height %d, built in %lld rounds\n",
              tree.height, static_cast<long long>(tree.construction_rounds));

  // 2. Pipelined broadcast (paper Lemma 1): M messages reach everyone in
  //    O(M + D) rounds, not M·D.
  std::vector<int> tokens(static_cast<std::size_t>(g.n()), 0);
  int total = 0;
  for (graph::Vertex v = 0; v < g.n(); v += 9) {
    tokens[static_cast<std::size_t>(v)] = 2;
    total += 2;
  }
  const auto rounds = primitives::simulate_pipelined_broadcast(g, tree, tokens);
  std::printf("[2] pipelined broadcast of %d messages: %lld rounds "
              "(Lemma-1 charge %lld)\n",
              total, static_cast<long long>(rounds),
              static_cast<long long>(
                  primitives::pipelined_broadcast_rounds(total, tree.height)));

  // 3. Set Bellman–Ford: every vertex learns its distance to a vertex set —
  //    the exact-pivot computation of the routing scheme.
  const std::vector<graph::Vertex> landmarks{10, 80, 150};
  const auto bf = primitives::distributed_set_bellman_ford(g, landmarks);
  std::printf("[3] set Bellman-Ford from %zu landmarks: %lld rounds, "
              "%lld messages; e.g. d(5, set) = %lld via landmark %d\n",
              landmarks.size(), static_cast<long long>(bf.rounds),
              static_cast<long long>(bf.messages),
              static_cast<long long>(bf.dist[5]), bf.source[5]);

  // 4. Source detection ([Nan14]): hop-bounded (1+ε)-approximate distances
  //    from many sources at once.
  const auto sd = primitives::source_detection(g, landmarks, /*hop_bound=*/8,
                                               util::Epsilon(1, 10),
                                               tree.height);
  std::printf("[4] source detection (B=8, eps=1/10): %d scales executed, "
              "round charge %lld; d^B(5 -> landmark0) ~ %lld\n",
              sd.executed_scales, static_cast<long long>(sd.round_cost),
              static_cast<long long>(sd.d(0, 5)));
  return 0;
}
