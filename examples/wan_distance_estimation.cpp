// WAN scenario: distance estimation from sketches (paper §5, Theorem 6).
//
// A planet-scale overlay wants every node to estimate its latency to any
// other node from two small sketches — no probing, no global map. We build
// the scheme on a random geometric graph (a standard WAN model: nodes in
// the plane, links between close pairs, weight = distance), extract the
// sketches, and compare estimates against true latencies.
//
//   $ ./examples/wan_distance_estimation

#include <cstdio>

#include "core/distance_estimation.h"
#include "core/scheme.h"
#include "graph/generators.h"
#include "graph/shortest_paths.h"
#include "util/stats.h"

int main() {
  using namespace nors;

  util::Rng rng(2026);
  const auto g = graph::random_geometric(/*n=*/300, /*radius=*/0.09,
                                         /*w_scale=*/1000, rng);
  std::printf("WAN overlay: %d nodes, %lld links (geometric, weight = "
              "distance in ms/10)\n",
              g.n(), static_cast<long long>(g.m()));

  core::SchemeParams params;
  params.k = 4;  // small sketches, 2k-1 = 7 worst-case stretch class
  params.seed = 11;
  const auto scheme = core::RoutingScheme::build(g, params);
  const auto sketches = core::DistanceEstimation::build(scheme);

  std::int64_t sketch_total = 0, sketch_max = 0;
  for (graph::Vertex v = 0; v < g.n(); ++v) {
    sketch_total += sketches.sketch_words(v);
    sketch_max = std::max(sketch_max, sketches.sketch_words(v));
  }
  std::printf("sketches: avg %lld words, max %lld words per node "
              "(vs %d words for a full distance vector)\n",
              static_cast<long long>(sketch_total / g.n()),
              static_cast<long long>(sketch_max), 2 * g.n());

  // Estimate all-pairs latencies from sketches alone.
  util::Accumulator ratio;
  int within_2x = 0, total = 0;
  for (graph::Vertex u = 0; u < g.n(); u += 3) {
    const auto sp = graph::dijkstra(g, u);
    for (graph::Vertex v = 1; v < g.n(); v += 5) {
      if (u == v) continue;
      const auto est = sketches.estimate(u, v);
      const double r = static_cast<double>(est.estimate) /
                       static_cast<double>(sp.dist[static_cast<std::size_t>(v)]);
      ratio.add(r);
      ++total;
      if (r <= 2.0) ++within_2x;
    }
  }
  std::printf("estimates over %d pairs: avg ratio %.3f, max %.2f "
              "(guarantee %.2f); %.1f%% within 2x of truth\n",
              total, ratio.mean(), ratio.max(), sketches.stretch_bound(),
              100.0 * within_2x / total);
  std::printf("every query used at most %d sketch lookups (O(k) time, "
              "no network traffic)\n",
              sketches.k());
  return 0;
}
