// Datacenter scenario: compact routing on growing fat-tree fabrics.
//
// A classic motivation for compact routing (paper §1): per-switch
// forwarding state must scale sublinearly in the fabric size. A full
// shortest-path table costs Θ(n) words per node; the paper's scheme costs
// Õ(n^{1/k}). A single small fabric cannot show an asymptotic win, so this
// example grows the fabric and tracks how both kinds of state scale —
// while verifying that every host-to-host flow still routes within the
// stretch bound.
//
//   $ ./examples/datacenter_routing

#include <cstdio>

#include "core/scheme.h"
#include "graph/generators.h"
#include "graph/properties.h"
#include "graph/shortest_paths.h"
#include "util/stats.h"

namespace {

struct FabricResult {
  int n = 0;
  double stretch_avg = 0;
  double stretch_max = 0;
  double bound = 0;
  std::int64_t compact_median = 0;
  std::int64_t full_words = 0;
  std::int64_t rounds = 0;
};

FabricResult run_fabric(int pods, int tors, int hosts, int cores) {
  using namespace nors;
  util::Rng rng(1);
  const auto g = graph::fat_tree(pods, tors, hosts, cores,
                                 graph::WeightSpec::unit(), rng);
  const int hosts_start = cores + pods + pods * tors;

  core::SchemeParams params;
  params.k = 3;
  params.seed = 99;
  params.label_trick = false;  // keep per-node state uniform for the trend
  const auto scheme = core::RoutingScheme::build(g, params);

  FabricResult r;
  r.n = g.n();
  r.bound = scheme.stretch_bound();
  r.rounds = scheme.total_rounds();

  util::Accumulator stretch;
  for (graph::Vertex u = hosts_start; u < g.n(); u += 7) {
    const auto sp = graph::dijkstra(g, u);
    for (graph::Vertex v = hosts_start + 2; v < g.n(); v += 11) {
      if (u == v) continue;
      const auto rt = scheme.route(u, v);
      stretch.add(static_cast<double>(rt.length) /
                  static_cast<double>(sp.dist[static_cast<std::size_t>(v)]));
    }
  }
  r.stretch_avg = stretch.mean();
  r.stretch_max = stretch.max();

  std::vector<double> words;
  for (graph::Vertex v = 0; v < g.n(); ++v) {
    words.push_back(static_cast<double>(scheme.table_words(v)));
  }
  r.compact_median = static_cast<std::int64_t>(util::percentile(words, 0.5));
  r.full_words = 2LL * (g.n() - 1);
  return r;
}

}  // namespace

int main() {
  std::printf("fat-tree fabrics, k=3 compact routing vs full tables\n\n");
  std::printf("%8s %12s %12s %8s %14s %12s %12s\n", "nodes", "stretch avg",
              "stretch max", "bound", "compact (p50)", "full table",
              "full/compact");
  FabricResult prev{};
  for (const auto& [pods, tors, hosts, cores] :
       {std::tuple{4, 2, 4, 2}, std::tuple{6, 4, 6, 4},
        std::tuple{8, 6, 8, 4}, std::tuple{12, 8, 10, 8}}) {
    const auto r = run_fabric(pods, tors, hosts, cores);
    std::printf("%8d %12.3f %12.2f %8.2f %14lld %12lld %12.1f\n", r.n,
                r.stretch_avg, r.stretch_max, r.bound,
                static_cast<long long>(r.compact_median),
                static_cast<long long>(r.full_words),
                static_cast<double>(r.full_words) /
                    static_cast<double>(r.compact_median));
    if (prev.n > 0) {
      std::printf("%8s state growth: compact x%.2f vs full x%.2f for x%.2f "
                  "more nodes\n",
                  "", static_cast<double>(r.compact_median) / prev.compact_median,
                  static_cast<double>(r.full_words) / prev.full_words,
                  static_cast<double>(r.n) / prev.n);
    }
    prev = r;
  }
  std::printf(
      "\nthe full-table column grows linearly with the fabric; the compact\n"
      "column grows like n^{1/3} polylog — the gap widens with scale, while\n"
      "every flow stays within the stretch bound.\n");
  return 0;
}
