// Quickstart: build the Elkin–Neiman routing scheme on a small weighted
// network, route a packet, and inspect the costs — the 60-second tour of
// the library.
//
//   $ ./examples/quickstart

#include <cstdio>

#include "core/distance_estimation.h"
#include "core/scheme.h"
#include "graph/generators.h"
#include "graph/shortest_paths.h"

int main() {
  using namespace nors;

  // 1. A weighted network: 64 routers, random connected topology.
  util::Rng rng(7);
  const auto g =
      graph::connected_gnm(64, 160, graph::WeightSpec::uniform(1, 20), rng);
  std::printf("network: %d vertices, %lld edges\n", g.n(),
              static_cast<long long>(g.m()));

  // 2. Build the routing scheme (k = 3: tables Õ(n^{1/3}), stretch ≤ 7+o(1)).
  core::SchemeParams params;
  params.k = 3;
  params.seed = 42;
  const auto scheme = core::RoutingScheme::build(g, params);
  std::printf("construction: %lld CONGEST rounds (stretch bound %.3f)\n",
              static_cast<long long>(scheme.total_rounds()),
              scheme.stretch_bound());

  // 3. Route a packet from 3 to 58 using only tables and the destination
  //    label — no global state.
  const graph::Vertex src = 3, dst = 58;
  const auto route = scheme.route(src, dst);
  const auto exact = graph::pair_distance(g, src, dst);
  std::printf("route %d -> %d: length %lld over %d hops (shortest %lld, "
              "stretch %.2f), via the level-%d cluster tree of %d\n",
              src, dst, static_cast<long long>(route.length), route.hops,
              static_cast<long long>(exact),
              static_cast<double>(route.length) / static_cast<double>(exact),
              route.tree_level, route.tree_root);
  std::printf("path:");
  for (graph::Vertex v : route.path) std::printf(" %d", v);
  std::printf("\n");

  // 4. What each node stores.
  std::printf("node %d: table %lld words, label %lld words, member of %d "
              "cluster trees\n",
              src, static_cast<long long>(scheme.table_words(src)),
              static_cast<long long>(scheme.label_words(src)),
              scheme.overlap(src));

  // 5. The same clusters double as distance sketches (paper Theorem 6).
  const auto de = core::DistanceEstimation::build(scheme);
  const auto est = de.estimate(src, dst);
  std::printf("sketch estimate d(%d,%d) ~ %lld (true %lld) in %d iterations\n",
              src, dst, static_cast<long long>(est.estimate),
              static_cast<long long>(exact), est.iterations);

  // 6. Where the rounds went.
  std::printf("\nround breakdown:\n%s", scheme.ledger().report().c_str());
  return 0;
}
