// route_client — the wire protocol end to end (DESIGN.md §11).
//
// Two modes:
//
//   ./route_client                      self-contained demo: build a small
//                                       scheme, freeze it, start an
//                                       in-process net::Server on an
//                                       ephemeral loopback port, and query
//                                       it through net::Client — checking
//                                       every answer against the in-process
//                                       FrozenScheme::route().
//
//   ./route_client --port=P [--host=H]  connect to a running route_serviced
//       [--queries=Q] [--seed=S]        (CI's daemon smoke leg), stream Q
//                                       random route queries in pipelined
//                                       batches, and report throughput plus
//                                       the server's own stats frame.
//
// Live-update flags (daemon mode, DESIGN.md §13) — applied as one kUpdate
// admin frame *before* the query stream, so the answers exercise the
// published delta generation:
//   --fail-edge=U,V        journal a link failure
//   --update-weight=U,V,W  journal a weight change
//   --updates-file=PATH    replay a whole journal file (serve/delta.h
//                          format), one kUpdate frame per commit batch
//
// Durability / replication flags (daemon mode, DESIGN.md §14):
//   --checkpoint           send a kCheckpoint admin frame (after any
//                          updates): compact the daemon's delta chain and
//                          truncate its WAL; prints the ack
//   --digest               instead of the throughput run, print one
//                          deterministic FNV-1a digest over every route
//                          decision (ok/length/hops in query order) — two
//                          daemons serve identical tables iff their
//                          digests match (CI's crash-recovery smoke diffs
//                          a pre-kill digest against the rebooted one)

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/scheme.h"
#include "graph/generators.h"
#include "net/client.h"
#include "net/server.h"
#include "serve/delta.h"
#include "serve/frozen.h"
#include "util/random.h"

using namespace nors;

namespace {

std::vector<serve::Query> random_queries(int n, std::size_t count,
                                         std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<serve::Query> qs;
  qs.reserve(count);
  while (qs.size() < count) {
    const auto u = static_cast<graph::Vertex>(
        rng.uniform(static_cast<std::uint64_t>(n)));
    const auto v = static_cast<graph::Vertex>(
        rng.uniform(static_cast<std::uint64_t>(n)));
    if (u != v) qs.push_back({u, v});
  }
  return qs;
}

/// Deterministic identity probe: route `total` seeded queries and fold
/// every decision — plus the server's update sequence — into one
/// FNV-1a digest. No timing, no counters that drift across restarts:
/// the output depends only on the served tables and how many update
/// batches produced them, so equal digests across a daemon kill -9 +
/// reboot pin crash recovery (a daemon that silently failed to replay
/// its WAL reports seq 0 and can't match even if no sampled query
/// crosses an updated edge), and across a primary and its replica pin
/// replication.
int run_digest(net::Client& client, std::size_t total, std::uint64_t seed) {
  const auto info = client.hello();
  const auto qs = random_queries(info.n, total, seed);
  const auto ds = client.route(qs);
  const auto seq = client.stats().update_seq;
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&h](std::uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      h ^= (v >> (8 * b)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  for (const auto& d : ds) {
    mix(d.ok ? 1 : 0);
    mix(static_cast<std::uint64_t>(d.length));
    mix(static_cast<std::uint64_t>(d.hops));
  }
  mix(static_cast<std::uint64_t>(seq));
  std::printf("digest: %016llx over %zu queries at seq %llu\n",
              static_cast<unsigned long long>(h), ds.size(),
              static_cast<unsigned long long>(seq));
  return ds.size() == qs.size() ? 0 : 1;
}

int run_against(net::Client& client, std::size_t total,
                std::uint64_t seed) {
  const auto info = client.hello();
  std::printf("server: n=%d k=%d image v%u trees=%d window=%u\n", info.n,
              info.k, info.image_version, info.num_trees, info.window);

  const auto qs = random_queries(info.n, total, seed);
  const auto t0 = std::chrono::steady_clock::now();
  // Pipeline in frames of 256 queries, a window of 8 frames deep.
  const std::size_t per_frame = 256;
  std::size_t sent = 0, received = 0, in_flight = 0, ok = 0;
  std::int64_t length_sum = 0;
  while (received < qs.size()) {
    while (sent < qs.size() && in_flight < 8) {
      const std::size_t take = std::min(per_frame, qs.size() - sent);
      client.send_route(qs.data() + sent, take);
      sent += take;
      ++in_flight;
    }
    const auto part = client.recv_route();
    --in_flight;
    for (const auto& d : part) {
      if (d.ok) {
        ++ok;
        length_sum += d.length;
      }
    }
    received += part.size();
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  std::printf("%zu queries in %.3fs (%.0f q/s), %zu routable, "
              "mean length %.1f\n",
              received, secs, static_cast<double>(received) / secs, ok,
              ok == 0 ? 0.0
                      : static_cast<double>(length_sum) /
                            static_cast<double>(ok));

  const auto stats = client.stats();
  std::printf("server stats: %lld frames in, %lld queries answered, "
              "%lld protocol errors, p50 %.1fus p99 %.1fus\n",
              static_cast<long long>(stats.frames_in),
              static_cast<long long>(stats.queries),
              static_cast<long long>(stats.protocol_errors),
              static_cast<double>(stats.p50_ns) / 1000.0,
              static_cast<double>(stats.p99_ns) / 1000.0);
  return received == qs.size() ? 0 : 1;
}

// Parses "U,V" or "U,V,W" into ints; exits with a usage error otherwise.
std::vector<long long> parse_ints(const char* v, std::size_t want,
                                  const char* flag) {
  std::vector<long long> out;
  std::string s(v);
  std::size_t at = 0;
  while (at <= s.size()) {
    const std::size_t comma = s.find(',', at);
    const std::string tok =
        s.substr(at, comma == std::string::npos ? comma : comma - at);
    if (tok.empty()) break;
    out.push_back(std::atoll(tok.c_str()));
    if (comma == std::string::npos) break;
    at = comma + 1;
  }
  if (out.size() != want) {
    std::fprintf(stderr, "%s wants %zu comma-separated ints, got \"%s\"\n",
                 flag, want, v);
    std::exit(2);
  }
  return out;
}

void apply_updates(net::Client& client,
                   const std::vector<std::vector<serve::EdgeUpdate>>& batches) {
  for (const auto& batch : batches) {
    const auto ack = client.update(batch);
    std::printf("update ack: gen %llu — %lld applied, %lld unknown, "
                "%lld overrides, %lld failed links, %lld masked trees\n",
                static_cast<unsigned long long>(ack.seq),
                static_cast<long long>(ack.applied),
                static_cast<long long>(ack.unknown_edges),
                static_cast<long long>(ack.overrides),
                static_cast<long long>(ack.failed_links),
                static_cast<long long>(ack.masked_trees));
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int port = 0;
  std::size_t queries = 2000;
  std::uint64_t seed = 7;
  std::vector<std::vector<serve::EdgeUpdate>> update_batches;
  std::vector<serve::EdgeUpdate> flag_updates;
  bool digest = false;
  bool checkpoint = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto val = [&a](const char* key) -> const char* {
      const std::size_t len = std::strlen(key);
      return a.compare(0, len, key) == 0 ? a.c_str() + len : nullptr;
    };
    if (const char* v = val("--host=")) {
      host = v;
    } else if (const char* v = val("--port=")) {
      port = std::atoi(v);
    } else if (const char* v = val("--queries=")) {
      queries = std::strtoull(v, nullptr, 10);
    } else if (const char* v = val("--seed=")) {
      seed = std::strtoull(v, nullptr, 10);
    } else if (const char* v = val("--fail-edge=")) {
      const auto uv = parse_ints(v, 2, "--fail-edge");
      flag_updates.push_back(serve::EdgeUpdate::fail(
          static_cast<graph::Vertex>(uv[0]),
          static_cast<graph::Vertex>(uv[1])));
    } else if (const char* v = val("--update-weight=")) {
      const auto uvw = parse_ints(v, 3, "--update-weight");
      flag_updates.push_back(serve::EdgeUpdate::weight(
          static_cast<graph::Vertex>(uvw[0]),
          static_cast<graph::Vertex>(uvw[1]),
          static_cast<graph::Dist>(uvw[2])));
    } else if (const char* v = val("--updates-file=")) {
      try {
        auto file_batches = serve::load_update_journal(v);
        for (auto& b : file_batches) update_batches.push_back(std::move(b));
      } catch (const std::exception& e) {
        std::fprintf(stderr, "--updates-file: %s\n", e.what());
        return 2;
      }
    } else if (a == "--digest") {
      digest = true;
    } else if (a == "--checkpoint") {
      checkpoint = true;
    } else {
      std::fprintf(stderr,
                   "usage: route_client [--host=H --port=P] [--queries=Q] "
                   "[--seed=S] [--fail-edge=U,V] [--update-weight=U,V,W] "
                   "[--updates-file=PATH] [--checkpoint] [--digest]\n");
      return 2;
    }
  }
  if (!flag_updates.empty()) update_batches.push_back(std::move(flag_updates));

  try {
    if (port != 0) {
      // Daemon mode: outwait a route_serviced that is still starting.
      net::ClientOptions copt;
      copt.host = host;
      copt.port = port;
      copt.connect_retries = 50;
      net::Client client(copt);
      apply_updates(client, update_batches);
      if (checkpoint) {
        const auto a = client.checkpoint();
        std::printf("checkpoint ack: seq %llu — %lld squashed, image "
                    "rebuilt %lld, %lld wal segments\n",
                    static_cast<unsigned long long>(a.seq),
                    static_cast<long long>(a.squashed),
                    static_cast<long long>(a.image_rebuilt),
                    static_cast<long long>(a.wal_segments));
      }
      if (digest) return run_digest(client, queries, seed);
      return run_against(client, queries, seed);
    }

    // Self-contained demo: everything in one process, loopback sockets in
    // the middle, and every wire answer checked against the local image.
    std::printf("building a small scheme and serving it on loopback...\n");
    util::Rng rng(3);
    const auto g = graph::connected_gnm(
        600, 1800, graph::WeightSpec::uniform(1, 16), rng);
    core::SchemeParams params;
    params.k = 3;
    params.seed = 5;
    const auto scheme = core::RoutingScheme::build(g, params);
    auto frozen = serve::FrozenScheme::freeze(scheme);
    const auto reference = serve::FrozenScheme::load(frozen.save());

    net::Server server(std::move(frozen), {});
    net::Client client("127.0.0.1", server.port());
    const int rc = run_against(client, queries, seed);

    // The wire adds transport, never changes an answer.
    const auto qs = random_queries(reference.n(), 500, seed + 1);
    const auto wire = client.route(qs);
    std::size_t checked = 0;
    for (std::size_t i = 0; i < qs.size(); ++i) {
      const auto local = reference.route(qs[i].u, qs[i].v);
      if (wire[i].ok != local.ok || wire[i].length != local.length ||
          wire[i].hops != local.hops) {
        std::fprintf(stderr, "wire answer diverged at %d->%d\n", qs[i].u,
                     qs[i].v);
        return 1;
      }
      ++checked;
    }
    std::printf("%zu wire answers bit-identical to in-process route()\n",
                checked);
    return rc;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "route_client: %s\n", e.what());
    return 1;
  }
}
