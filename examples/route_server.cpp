// Serving walkthrough: build the routing scheme once, freeze it into flat
// tables, save them to disk, load them back (as a restarted server would —
// both the owning load and the zero-copy mmap), and answer batches of
// route queries from the frozen state alone — no graph object, no rebuild,
// finally through the sharded front-end that scales serving across cores.
//
//   $ ./examples/route_server
//
// The steps below are the whole serving life cycle (DESIGN.md §5, §8).

#include <cstdio>

#include "core/scheme.h"
#include "graph/generators.h"
#include "graph/shortest_paths.h"
#include "serve/frozen.h"
#include "serve/server.h"
#include "serve/shard.h"

int main() {
  using namespace nors;

  // 1. Construct: a 256-router network and the k=3 scheme on it. This is
  //    the expensive, run-once part.
  util::Rng rng(7);
  const auto g =
      graph::connected_gnm(256, 768, graph::WeightSpec::uniform(1, 20), rng);
  core::SchemeParams params;
  params.k = 3;
  params.seed = 42;
  const auto scheme = core::RoutingScheme::build(g, params);
  std::printf("built: n=%d, %zu cluster trees, %lld construction rounds\n",
              g.n(), scheme.trees().size(),
              static_cast<long long>(scheme.total_rounds()));

  // 2. Freeze: snapshot tables, labels, trick slabs and the link map into
  //    flat arrays. The scheme and graph could be destroyed after this.
  const auto frozen = serve::FrozenScheme::freeze(scheme);
  std::printf("frozen: %.1f KiB of flat serving state\n",
              static_cast<double>(frozen.byte_size()) / 1024.0);

  // 3. Save: versioned binary image (magic, version, endianness tag,
  //    checksum), so tables built once serve forever.
  const std::string path = "routing_tables.frozen";
  frozen.save_file(path);

  // 4. Load: what a freshly started server process does. Two ways:
  //    load_file() copies the slabs onto the heap (portable fallback);
  //    map() mmaps the image and serves straight from the page cache —
  //    zero-copy startup, ideal when many server processes share one
  //    table file.
  const auto tables = serve::FrozenScheme::load_file(path);
  const auto mapped = serve::FrozenScheme::map(path);
  std::printf("reloaded %s (byte-identical: %s; mmap byte-identical: %s)\n",
              path.c_str(), tables.save() == frozen.save() ? "yes" : "NO",
              mapped.save() == frozen.save() ? "yes" : "NO");

  // 5. Serve: batched decision queries, answered purely from the frozen
  //    tables — here 2 worker threads with a small (vertex, tree) cache.
  serve::ServerOptions opt;
  opt.threads = 2;
  opt.cache_entries = 1024;
  const serve::RouteServer server(tables, opt);
  std::vector<serve::Query> batch;
  util::Rng qrng(99);
  for (int i = 0; i < 10000; ++i) {
    batch.push_back({static_cast<graph::Vertex>(qrng.uniform(256)),
                     static_cast<graph::Vertex>(qrng.uniform(256))});
  }
  std::vector<serve::Decision> answers;
  server.serve(batch, answers);

  const auto stats = server.stats();
  std::printf("served %lld queries, %lld next-hop decisions, "
              "cache hit rate %.1f%%\n",
              static_cast<long long>(stats.queries),
              static_cast<long long>(stats.hops),
              100.0 * static_cast<double>(stats.cache_hits) /
                  static_cast<double>(stats.cache_hits + stats.cache_misses));

  // One decision in detail, checked against the true distance.
  const auto& q = batch[0];
  const auto exact = graph::pair_distance(g, q.u, q.v);
  std::printf("route %d -> %d: length %lld over %d hops "
              "(shortest %lld, stretch %.2f), level-%d tree of %d%s\n",
              q.u, q.v, static_cast<long long>(answers[0].length),
              answers[0].hops, static_cast<long long>(exact),
              static_cast<double>(answers[0].length) /
                  static_cast<double>(exact),
              answers[0].tree_level, answers[0].tree_root,
              answers[0].via_trick ? " (via 4k-5 trick)" : "");

  // What a connecting peer would receive: the destination's wire label.
  std::printf("wire label of %d: %zu bytes\n", q.v,
              tables.label_blob(q.v).size());

  // 6. Scale out: the sharded front-end partitions the vertex space into
  //    contiguous ranges, one worker thread per shard, all serving the
  //    same mmap'ed image. Answers are identical to step 5 and land in
  //    submission order; per-shard counters show the traffic split.
  serve::ShardedOptions sopt;
  sopt.shards = 2;
  sopt.cache_entries = 1024;
  serve::ShardedRouteServer sharded(mapped, sopt);
  std::vector<serve::Decision> sharded_answers;
  sharded.serve(batch, sharded_answers);
  bool same = sharded_answers.size() == answers.size();
  for (std::size_t i = 0; same && i < answers.size(); ++i) {
    same = sharded_answers[i].length == answers[i].length &&
           sharded_answers[i].hops == answers[i].hops;
  }
  std::printf("sharded x%d over mmap: identical answers: %s\n",
              sharded.shards(), same ? "yes" : "NO");
  for (int s = 0; s < sharded.shards(); ++s) {
    const auto st = sharded.shard_stats(s);
    std::printf("  shard %d: %lld queries, %lld decisions, p50 %.1fus "
                "p99 %.1fus\n",
                s, static_cast<long long>(st.queries),
                static_cast<long long>(st.hops), st.p50_us, st.p99_us);
  }

  std::remove(path.c_str());
  return 0;
}
