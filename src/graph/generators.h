#pragma once

#include "graph/graph.h"
#include "util/random.h"

namespace nors::graph {

/// Weight assignment policy for generators.
struct WeightSpec {
  Weight min_w = 1;
  Weight max_w = 1;

  static WeightSpec unit() { return {1, 1}; }
  static WeightSpec uniform(Weight lo, Weight hi) { return {lo, hi}; }

  Weight draw(util::Rng& rng) const {
    if (min_w == max_w) return min_w;
    return rng.uniform_int(min_w, max_w);
  }
};

// --- Deterministic topologies -------------------------------------------

/// Path 0-1-...-(n-1).
WeightedGraph path(int n, const WeightSpec& ws, util::Rng& rng);
/// Cycle on n >= 3 vertices.
WeightedGraph cycle(int n, const WeightSpec& ws, util::Rng& rng);
/// rows x cols grid.
WeightedGraph grid(int rows, int cols, const WeightSpec& ws, util::Rng& rng);
/// rows x cols torus (wrap-around grid); requires rows,cols >= 3.
WeightedGraph torus(int rows, int cols, const WeightSpec& ws, util::Rng& rng);
/// d-dimensional hypercube (n = 2^d vertices).
WeightedGraph hypercube(int d, const WeightSpec& ws, util::Rng& rng);
/// Complete graph on n vertices.
WeightedGraph complete(int n, const WeightSpec& ws, util::Rng& rng);
/// Three-layer fat-tree-like datacenter topology: `pods` pods, each with
/// `tors` top-of-rack switches and `hosts` hosts per ToR, plus `cores` core
/// switches connecting all pod aggregators. Unit core links, host links from
/// ws.
WeightedGraph fat_tree(int pods, int tors, int hosts, int cores,
                       const WeightSpec& ws, util::Rng& rng);

// --- Random topologies ----------------------------------------------------

/// Uniform random tree (random parent attachment over a random permutation).
WeightedGraph random_tree(int n, const WeightSpec& ws, util::Rng& rng);
/// G(n, m): m distinct uniform edges; connectivity NOT guaranteed.
WeightedGraph erdos_renyi_gnm(int n, std::int64_t m, const WeightSpec& ws,
                              util::Rng& rng);
/// G(n, m) plus a random spanning tree, guaranteeing connectivity. The
/// result has m_total = (n-1) + extra_edges edges.
WeightedGraph connected_gnm(int n, std::int64_t extra_edges,
                            const WeightSpec& ws, util::Rng& rng);
/// Random geometric graph on the unit square with connection radius r,
/// weights proportional to Euclidean distance scaled to [1, ws.max_w];
/// a spanning tree over nearest unconnected components is added to keep it
/// connected.
WeightedGraph random_geometric(int n, double radius, Weight w_scale,
                               util::Rng& rng);
/// Barabási–Albert preferential attachment; each new vertex attaches to
/// `attach` existing vertices.
WeightedGraph barabasi_albert(int n, int attach, const WeightSpec& ws,
                              util::Rng& rng);
/// `clusters` dense communities of size ~n/clusters (intra-cluster ER with
/// probability p_in) joined by a sparse random inter-cluster backbone with
/// heavy weights. Models ISP-like locality; guaranteed connected.
WeightedGraph clustered(int n, int clusters, double p_in, Weight inter_w,
                        const WeightSpec& ws, util::Rng& rng);
/// "Lollipop"-style high-hop-diameter graph: a clique of size c with a path
/// of length n-c attached. Stresses the D term in round bounds.
WeightedGraph lollipop(int n, int clique, const WeightSpec& ws,
                       util::Rng& rng);

}  // namespace nors::graph
