#include "graph/graph.h"

#include <algorithm>

namespace nors::graph {

std::int32_t WeightedGraph::add_edge(Vertex u, Vertex v, Weight w) {
  NORS_CHECK_MSG(!frozen_, "add_edge after freeze()");
  NORS_CHECK_MSG(u != v, "self-loop at " << u);
  NORS_CHECK_MSG(w >= 1, "non-positive weight " << w);
  NORS_CHECK(valid_vertex(u) && valid_vertex(v));
  const auto pu = deg_[static_cast<std::size_t>(u)]++;
  deg_[static_cast<std::size_t>(v)]++;
  pending_.push_back({u, v, w});
  ++m_;
  max_weight_ = std::max(max_weight_, w);
  return pu;
}

void WeightedGraph::freeze() {
  NORS_CHECK_MSG(!frozen_, "freeze() is one-shot");

  offsets_.assign(static_cast<std::size_t>(n_) + 1, 0);
  for (Vertex v = 0; v < n_; ++v) {
    offsets_[static_cast<std::size_t>(v) + 1] =
        offsets_[static_cast<std::size_t>(v)] +
        static_cast<std::size_t>(deg_[static_cast<std::size_t>(v)]);
  }

  // Scatter pass: pending edges are replayed in insertion order, so the slot
  // an edge lands in at each endpoint — and therefore every port number — is
  // identical to what per-vertex push_back construction produced.
  half_edges_.resize(offsets_.back());
  std::vector<std::size_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (const PendingEdge& e : pending_) {
    const std::size_t su = cursor[static_cast<std::size_t>(e.u)]++;
    const std::size_t sv = cursor[static_cast<std::size_t>(e.v)]++;
    half_edges_[su] = {
        e.v, e.w,
        static_cast<std::int32_t>(sv - offsets_[static_cast<std::size_t>(e.v)])};
    half_edges_[sv] = {
        e.u, e.w,
        static_cast<std::int32_t>(su - offsets_[static_cast<std::size_t>(e.u)])};
  }
  pending_.clear();
  pending_.shrink_to_fit();
  deg_.clear();
  deg_.shrink_to_fit();

  // Per-vertex port permutation ordered by (neighbor, port): the port_to
  // fast path binary-searches it, and ties (parallel edges) resolve to the
  // smallest port, matching the old linear scan.
  sorted_ports_.resize(half_edges_.size());
  for (Vertex v = 0; v < n_; ++v) {
    const std::size_t off = offsets_[static_cast<std::size_t>(v)];
    const auto deg =
        static_cast<std::int32_t>(offsets_[static_cast<std::size_t>(v) + 1] - off);
    std::int32_t* ports = sorted_ports_.data() + off;
    for (std::int32_t p = 0; p < deg; ++p) ports[p] = p;
    std::sort(ports, ports + deg, [&](std::int32_t a, std::int32_t b) {
      const Vertex ta = half_edges_[off + static_cast<std::size_t>(a)].to;
      const Vertex tb = half_edges_[off + static_cast<std::size_t>(b)].to;
      return ta != tb ? ta < tb : a < b;
    });
  }

  frozen_ = true;
}

std::int32_t WeightedGraph::port_to(Vertex u, Vertex v) const {
  NORS_CHECK(valid_vertex(u) && valid_vertex(v));
  NORS_CHECK_MSG(frozen_, "port_to() requires freeze()");
  const std::size_t off = offsets_[static_cast<std::size_t>(u)];
  const std::int32_t* first = sorted_ports_.data() + off;
  const std::int32_t* last =
      sorted_ports_.data() + offsets_[static_cast<std::size_t>(u) + 1];
  const std::int32_t* it =
      std::lower_bound(first, last, v, [&](std::int32_t p, Vertex target) {
        return half_edges_[off + static_cast<std::size_t>(p)].to < target;
      });
  if (it == last || half_edges_[off + static_cast<std::size_t>(*it)].to != v) {
    return kNoPort;
  }
  return *it;
}

}  // namespace nors::graph
