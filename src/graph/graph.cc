#include "graph/graph.h"

// Header-only for now; this translation unit anchors the module in the build
// and keeps a place for future out-of-line members.
