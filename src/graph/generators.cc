#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <utility>
#include <vector>

namespace nors::graph {

namespace {

// Canonical undirected key for dedup.
std::pair<Vertex, Vertex> key(Vertex u, Vertex v) {
  return u < v ? std::make_pair(u, v) : std::make_pair(v, u);
}

// Edge-adding helpers shared by generators that compose topologies (cycle =
// path + closing edge, torus = grid + wrap edges). The composite generator
// freezes once, at the end.
void add_path_edges(WeightedGraph& g, int n, const WeightSpec& ws,
                    util::Rng& rng) {
  for (Vertex v = 0; v + 1 < n; ++v) g.add_edge(v, v + 1, ws.draw(rng));
}

void add_grid_edges(WeightedGraph& g, int rows, int cols, const WeightSpec& ws,
                    util::Rng& rng) {
  auto id = [cols](int r, int c) { return r * cols + c; };
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (c + 1 < cols) g.add_edge(id(r, c), id(r, c + 1), ws.draw(rng));
      if (r + 1 < rows) g.add_edge(id(r, c), id(r + 1, c), ws.draw(rng));
    }
  }
}

}  // namespace

WeightedGraph path(int n, const WeightSpec& ws, util::Rng& rng) {
  NORS_CHECK(n >= 1);
  WeightedGraph g(n);
  add_path_edges(g, n, ws, rng);
  g.freeze();
  return g;
}

WeightedGraph cycle(int n, const WeightSpec& ws, util::Rng& rng) {
  NORS_CHECK(n >= 3);
  WeightedGraph g(n);
  add_path_edges(g, n, ws, rng);
  g.add_edge(n - 1, 0, ws.draw(rng));
  g.freeze();
  return g;
}

WeightedGraph grid(int rows, int cols, const WeightSpec& ws, util::Rng& rng) {
  NORS_CHECK(rows >= 1 && cols >= 1);
  WeightedGraph g(rows * cols);
  add_grid_edges(g, rows, cols, ws, rng);
  g.freeze();
  return g;
}

WeightedGraph torus(int rows, int cols, const WeightSpec& ws, util::Rng& rng) {
  NORS_CHECK(rows >= 3 && cols >= 3);
  WeightedGraph g(rows * cols);
  add_grid_edges(g, rows, cols, ws, rng);
  auto id = [cols](int r, int c) { return r * cols + c; };
  for (int r = 0; r < rows; ++r) g.add_edge(id(r, cols - 1), id(r, 0), ws.draw(rng));
  for (int c = 0; c < cols; ++c) g.add_edge(id(rows - 1, c), id(0, c), ws.draw(rng));
  g.freeze();
  return g;
}

WeightedGraph hypercube(int d, const WeightSpec& ws, util::Rng& rng) {
  NORS_CHECK(d >= 1 && d <= 20);
  const int n = 1 << d;
  WeightedGraph g(n);
  for (Vertex v = 0; v < n; ++v) {
    for (int b = 0; b < d; ++b) {
      const Vertex u = v ^ (1 << b);
      if (v < u) g.add_edge(v, u, ws.draw(rng));
    }
  }
  g.freeze();
  return g;
}

WeightedGraph complete(int n, const WeightSpec& ws, util::Rng& rng) {
  NORS_CHECK(n >= 2);
  WeightedGraph g(n);
  for (Vertex u = 0; u < n; ++u) {
    for (Vertex v = u + 1; v < n; ++v) g.add_edge(u, v, ws.draw(rng));
  }
  g.freeze();
  return g;
}

WeightedGraph fat_tree(int pods, int tors, int hosts, int cores,
                       const WeightSpec& ws, util::Rng& rng) {
  NORS_CHECK(pods >= 1 && tors >= 1 && hosts >= 0 && cores >= 1);
  // Layout: [cores][pods aggregators][pods*tors ToRs][pods*tors*hosts hosts]
  const int n = cores + pods + pods * tors + pods * tors * hosts;
  WeightedGraph g(n);
  const int agg0 = cores;
  const int tor0 = agg0 + pods;
  const int host0 = tor0 + pods * tors;
  for (int p = 0; p < pods; ++p) {
    for (int c = 0; c < cores; ++c) g.add_edge(c, agg0 + p, 1);
    for (int t = 0; t < tors; ++t) {
      const int tor = tor0 + p * tors + t;
      g.add_edge(agg0 + p, tor, 1);
      for (int h = 0; h < hosts; ++h) {
        const int host = host0 + (p * tors + t) * hosts + h;
        g.add_edge(tor, host, ws.draw(rng));
      }
    }
  }
  g.freeze();
  return g;
}

WeightedGraph random_tree(int n, const WeightSpec& ws, util::Rng& rng) {
  NORS_CHECK(n >= 1);
  WeightedGraph g(n);
  std::vector<Vertex> order(static_cast<std::size_t>(n));
  for (Vertex v = 0; v < n; ++v) order[static_cast<std::size_t>(v)] = v;
  rng.shuffle(order);
  for (int i = 1; i < n; ++i) {
    const Vertex child = order[static_cast<std::size_t>(i)];
    const Vertex parent =
        order[rng.uniform(static_cast<std::uint64_t>(i))];
    g.add_edge(parent, child, ws.draw(rng));
  }
  g.freeze();
  return g;
}

WeightedGraph erdos_renyi_gnm(int n, std::int64_t m, const WeightSpec& ws,
                              util::Rng& rng) {
  NORS_CHECK(n >= 2);
  const std::int64_t max_m = std::int64_t{n} * (n - 1) / 2;
  NORS_CHECK_MSG(m <= max_m, "too many edges requested");
  WeightedGraph g(n);
  std::set<std::pair<Vertex, Vertex>> used;
  while (static_cast<std::int64_t>(used.size()) < m) {
    const auto u = static_cast<Vertex>(rng.uniform(static_cast<std::uint64_t>(n)));
    const auto v = static_cast<Vertex>(rng.uniform(static_cast<std::uint64_t>(n)));
    if (u == v) continue;
    if (used.insert(key(u, v)).second) g.add_edge(u, v, ws.draw(rng));
  }
  g.freeze();
  return g;
}

WeightedGraph connected_gnm(int n, std::int64_t extra_edges,
                            const WeightSpec& ws, util::Rng& rng) {
  NORS_CHECK(n >= 2);
  WeightedGraph g(n);
  std::set<std::pair<Vertex, Vertex>> used;
  // Random spanning tree (uniform attachment over shuffled order).
  std::vector<Vertex> order(static_cast<std::size_t>(n));
  for (Vertex v = 0; v < n; ++v) order[static_cast<std::size_t>(v)] = v;
  rng.shuffle(order);
  for (int i = 1; i < n; ++i) {
    const Vertex child = order[static_cast<std::size_t>(i)];
    const Vertex parent = order[rng.uniform(static_cast<std::uint64_t>(i))];
    used.insert(key(parent, child));
    g.add_edge(parent, child, ws.draw(rng));
  }
  const std::int64_t max_m = std::int64_t{n} * (n - 1) / 2;
  const std::int64_t target =
      std::min(max_m, static_cast<std::int64_t>(used.size()) + extra_edges);
  while (static_cast<std::int64_t>(used.size()) < target) {
    const auto u = static_cast<Vertex>(rng.uniform(static_cast<std::uint64_t>(n)));
    const auto v = static_cast<Vertex>(rng.uniform(static_cast<std::uint64_t>(n)));
    if (u == v) continue;
    if (used.insert(key(u, v)).second) g.add_edge(u, v, ws.draw(rng));
  }
  g.freeze();
  return g;
}

WeightedGraph random_geometric(int n, double radius, Weight w_scale,
                               util::Rng& rng) {
  NORS_CHECK(n >= 2);
  NORS_CHECK(radius > 0.0 && w_scale >= 1);
  std::vector<std::pair<double, double>> pts(static_cast<std::size_t>(n));
  for (auto& p : pts) p = {rng.uniform01(), rng.uniform01()};
  auto euclid = [&](int a, int b) {
    const double dx = pts[static_cast<std::size_t>(a)].first -
                      pts[static_cast<std::size_t>(b)].first;
    const double dy = pts[static_cast<std::size_t>(a)].second -
                      pts[static_cast<std::size_t>(b)].second;
    return std::sqrt(dx * dx + dy * dy);
  };
  auto w_of = [&](double d) {
    return std::max<Weight>(
        1, static_cast<Weight>(std::llround(d * static_cast<double>(w_scale))));
  };
  // The stitching pass below needs adjacency before the graph is frozen, so
  // build a scratch neighbor list alongside the pending edges.
  WeightedGraph g(n);
  std::vector<std::vector<Vertex>> adj(static_cast<std::size_t>(n));
  auto link = [&](int a, int b, Weight w) {
    g.add_edge(a, b, w);
    adj[static_cast<std::size_t>(a)].push_back(b);
    adj[static_cast<std::size_t>(b)].push_back(a);
  };
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      const double d = euclid(a, b);
      if (d <= radius) link(a, b, w_of(d));
    }
  }
  // Stitch components together via nearest cross-component pairs so the
  // graph is usable even when the radius was chosen below the connectivity
  // threshold.
  std::vector<int> comp(static_cast<std::size_t>(n), -1);
  for (;;) {
    std::fill(comp.begin(), comp.end(), -1);
    int ncomp = 0;
    for (Vertex s = 0; s < n; ++s) {
      if (comp[static_cast<std::size_t>(s)] != -1) continue;
      std::vector<Vertex> stack{s};
      comp[static_cast<std::size_t>(s)] = ncomp;
      while (!stack.empty()) {
        const Vertex v = stack.back();
        stack.pop_back();
        for (const Vertex to : adj[static_cast<std::size_t>(v)]) {
          if (comp[static_cast<std::size_t>(to)] == -1) {
            comp[static_cast<std::size_t>(to)] = ncomp;
            stack.push_back(to);
          }
        }
      }
      ++ncomp;
    }
    if (ncomp == 1) break;
    // Join component 0 to the closest vertex in another component.
    double best = 1e18;
    int ba = -1, bb = -1;
    for (int a = 0; a < n; ++a) {
      if (comp[static_cast<std::size_t>(a)] != 0) continue;
      for (int b = 0; b < n; ++b) {
        if (comp[static_cast<std::size_t>(b)] == 0) continue;
        const double d = euclid(a, b);
        if (d < best) {
          best = d;
          ba = a;
          bb = b;
        }
      }
    }
    link(ba, bb, w_of(best));
  }
  g.freeze();
  return g;
}

WeightedGraph barabasi_albert(int n, int attach, const WeightSpec& ws,
                              util::Rng& rng) {
  NORS_CHECK(n >= 2 && attach >= 1 && attach < n);
  WeightedGraph g(n);
  // Repeated-endpoint list for preferential attachment.
  std::vector<Vertex> endpoints;
  // Seed: a small clique on attach+1 vertices.
  for (Vertex u = 0; u <= attach; ++u) {
    for (Vertex v = u + 1; v <= attach; ++v) {
      g.add_edge(u, v, ws.draw(rng));
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }
  for (Vertex v = static_cast<Vertex>(attach + 1); v < n; ++v) {
    std::set<Vertex> targets;
    while (static_cast<int>(targets.size()) < attach) {
      const Vertex t = endpoints[rng.uniform(endpoints.size())];
      if (t != v) targets.insert(t);
    }
    for (Vertex t : targets) {
      g.add_edge(v, t, ws.draw(rng));
      endpoints.push_back(v);
      endpoints.push_back(t);
    }
  }
  g.freeze();
  return g;
}

WeightedGraph clustered(int n, int clusters, double p_in, Weight inter_w,
                        const WeightSpec& ws, util::Rng& rng) {
  NORS_CHECK(n >= clusters && clusters >= 2);
  NORS_CHECK(inter_w >= 1);
  WeightedGraph g(n);
  std::vector<int> cluster_of(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) cluster_of[static_cast<std::size_t>(v)] = v % clusters;
  // Intra-cluster: spanning path + ER(p_in).
  std::vector<std::vector<Vertex>> members(static_cast<std::size_t>(clusters));
  for (Vertex v = 0; v < n; ++v) {
    members[static_cast<std::size_t>(cluster_of[static_cast<std::size_t>(v)])]
        .push_back(v);
  }
  for (const auto& mem : members) {
    for (std::size_t i = 1; i < mem.size(); ++i) {
      g.add_edge(mem[i - 1], mem[i], ws.draw(rng));
    }
    for (std::size_t i = 0; i < mem.size(); ++i) {
      for (std::size_t j = i + 2; j < mem.size(); ++j) {
        if (rng.bernoulli(p_in)) g.add_edge(mem[i], mem[j], ws.draw(rng));
      }
    }
  }
  // Inter-cluster backbone: ring over cluster representatives + a few chords.
  // Tracked in a local set (the graph is still in its builder phase, so
  // port_to is unavailable — and the ER pass above never links a's tail to
  // c+2's tail anyway, making the dedup a backbone-only concern).
  std::set<std::pair<Vertex, Vertex>> backbone;
  for (int c = 0; c < clusters; ++c) {
    const Vertex a = members[static_cast<std::size_t>(c)][0];
    const Vertex b = members[static_cast<std::size_t>((c + 1) % clusters)][0];
    backbone.insert(key(a, b));
    g.add_edge(a, b, inter_w);
  }
  for (int c = 0; c + 2 < clusters; c += 2) {
    const Vertex a = members[static_cast<std::size_t>(c)].back();
    const Vertex b = members[static_cast<std::size_t>(c + 2)].back();
    if (backbone.insert(key(a, b)).second) g.add_edge(a, b, inter_w);
  }
  g.freeze();
  return g;
}

WeightedGraph lollipop(int n, int clique, const WeightSpec& ws,
                       util::Rng& rng) {
  NORS_CHECK(n > clique && clique >= 2);
  WeightedGraph g(n);
  for (Vertex u = 0; u < clique; ++u) {
    for (Vertex v = u + 1; v < clique; ++v) g.add_edge(u, v, ws.draw(rng));
  }
  for (Vertex v = clique; v < n; ++v) g.add_edge(v - 1, v, ws.draw(rng));
  g.freeze();
  return g;
}

}  // namespace nors::graph
