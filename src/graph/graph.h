#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "util/check.h"

namespace nors::graph {

using Vertex = std::int32_t;
using Weight = std::int64_t;
using Dist = std::int64_t;

inline constexpr Vertex kNoVertex = -1;
inline constexpr std::int32_t kNoPort = -1;

/// Sentinel for "unreachable". Chosen far below int64 max so that sums of a
/// few finite distances with kDistInf never overflow, yet any sum involving
/// kDistInf still compares larger than every legitimate distance.
inline constexpr Dist kDistInf = std::int64_t{1} << 60;

inline bool is_inf(Dist d) { return d >= kDistInf; }

/// Saturating addition: inf absorbs.
inline Dist dist_add(Dist a, Dist b) {
  if (is_inf(a) || is_inf(b)) return kDistInf;
  return a + b;
}

/// One direction of an undirected edge as seen from its source vertex.
/// `rev` is the index (port) of the opposite direction inside adj[to]; it is
/// what lets a routing table name "the port I received this message on".
struct HalfEdge {
  Vertex to = kNoVertex;
  Weight w = 0;
  std::int32_t rev = kNoPort;
};

/// Weighted undirected graph with port-numbered adjacency lists.
///
/// Ports: the p-th entry of neighbors(v) is "port p of v" — the identifier a
/// routing scheme stores. The CONGEST simulator and every router in this
/// library address links by (vertex, port).
///
/// Invariants: no self-loops; weights are positive integers (the paper
/// assumes integral weights polynomial in n). Parallel edges are rejected in
/// debug-checked construction via add_edge_checked but allowed by add_edge
/// (generators deduplicate themselves where it matters).
class WeightedGraph {
 public:
  WeightedGraph() = default;
  explicit WeightedGraph(int n) : adj_(static_cast<std::size_t>(n)) {
    NORS_CHECK(n >= 0);
  }

  int n() const { return static_cast<int>(adj_.size()); }
  std::int64_t m() const { return m_; }

  /// Adds the undirected edge {u,v} with weight w; returns the port of the
  /// u->v direction at u.
  std::int32_t add_edge(Vertex u, Vertex v, Weight w) {
    NORS_CHECK_MSG(u != v, "self-loop at " << u);
    NORS_CHECK_MSG(w >= 1, "non-positive weight " << w);
    NORS_CHECK(valid_vertex(u) && valid_vertex(v));
    const auto pu = static_cast<std::int32_t>(adj_[u].size());
    const auto pv = static_cast<std::int32_t>(adj_[v].size());
    adj_[u].push_back({v, w, pv});
    adj_[v].push_back({u, w, pu});
    ++m_;
    max_weight_ = std::max(max_weight_, w);
    return pu;
  }

  int degree(Vertex v) const {
    NORS_CHECK(valid_vertex(v));
    return static_cast<int>(adj_[v].size());
  }

  std::span<const HalfEdge> neighbors(Vertex v) const {
    NORS_CHECK(valid_vertex(v));
    return adj_[v];
  }

  const HalfEdge& edge(Vertex v, std::int32_t port) const {
    NORS_CHECK(valid_vertex(v));
    NORS_CHECK_MSG(port >= 0 && port < degree(v),
                   "bad port " << port << " at vertex " << v);
    return adj_[v][static_cast<std::size_t>(port)];
  }

  Weight max_weight() const { return max_weight_; }

  bool valid_vertex(Vertex v) const { return v >= 0 && v < n(); }

  /// Finds the port at u leading to v, or kNoPort. Linear in degree(u);
  /// intended for tests and assembly, not routing hot paths.
  std::int32_t port_to(Vertex u, Vertex v) const {
    for (std::int32_t p = 0; p < degree(u); ++p) {
      if (adj_[u][static_cast<std::size_t>(p)].to == v) return p;
    }
    return kNoPort;
  }

 private:
  std::vector<std::vector<HalfEdge>> adj_;
  std::int64_t m_ = 0;
  Weight max_weight_ = 0;
};

}  // namespace nors::graph
