#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "util/check.h"

namespace nors::graph {

using Vertex = std::int32_t;
using Weight = std::int64_t;
using Dist = std::int64_t;

inline constexpr Vertex kNoVertex = -1;
inline constexpr std::int32_t kNoPort = -1;

/// Sentinel for "unreachable". Chosen far below int64 max so that sums of a
/// few finite distances with kDistInf never overflow, yet any sum involving
/// kDistInf still compares larger than every legitimate distance.
inline constexpr Dist kDistInf = std::int64_t{1} << 60;

inline bool is_inf(Dist d) { return d >= kDistInf; }

/// Saturating addition: inf absorbs.
inline Dist dist_add(Dist a, Dist b) {
  if (is_inf(a) || is_inf(b)) return kDistInf;
  return a + b;
}

/// One direction of an undirected edge as seen from its source vertex.
/// `rev` is the index (port) of the opposite direction inside the adjacency
/// of `to`; it is what lets a routing table name "the port I received this
/// message on".
struct HalfEdge {
  Vertex to = kNoVertex;
  Weight w = 0;
  std::int32_t rev = kNoPort;
};

/// Weighted undirected graph with port-numbered adjacency, stored in CSR
/// (compressed sparse row) form: all HalfEdges live in one contiguous array
/// with per-vertex offsets, so a full adjacency sweep is a single linear
/// scan and neighbors(v) is a span into the flat array.
///
/// The graph has two phases:
///   1. Builder phase — add_edge() appends to a pending edge list. Only
///      n(), m(), degree(), max_weight() and add_edge() are valid.
///   2. Frozen phase — after the one-shot freeze(), the adjacency is packed
///      and immutable; neighbors()/edge()/port_to() become valid and
///      add_edge() is an error.
///
/// Ports: the p-th entry of neighbors(v) is "port p of v" — the identifier a
/// routing scheme stores. Ports number the edges of v in add_edge insertion
/// order, exactly as in the historical nested-vector representation, so
/// frozen port assignments are bit-identical to the old ones. The CONGEST
/// simulator and every router in this library address links by
/// (vertex, port).
///
/// Invariants: no self-loops; weights are positive integers (the paper
/// assumes integral weights polynomial in n). Parallel edges are allowed by
/// add_edge (generators deduplicate themselves where it matters).
class WeightedGraph {
 public:
  WeightedGraph() = default;
  explicit WeightedGraph(int n) : n_(n), deg_(static_cast<std::size_t>(n), 0) {
    NORS_CHECK(n >= 0);
  }

  int n() const { return n_; }
  std::int64_t m() const { return m_; }

  /// Builder phase: adds the undirected edge {u,v} with weight w; returns
  /// the port of the u->v direction at u.
  std::int32_t add_edge(Vertex u, Vertex v, Weight w);

  /// One-shot transition to the frozen phase: packs every HalfEdge into one
  /// contiguous CSR array and releases the builder storage. Must be called
  /// exactly once, after which the topology is immutable.
  void freeze();

  bool frozen() const { return frozen_; }

  /// Valid in both phases.
  int degree(Vertex v) const {
    NORS_CHECK(valid_vertex(v));
    return frozen_ ? static_cast<int>(offsets_[static_cast<std::size_t>(v) + 1] -
                                      offsets_[static_cast<std::size_t>(v)])
                   : static_cast<int>(deg_[static_cast<std::size_t>(v)]);
  }

  /// Frozen phase: the adjacency of v as a span into the flat CSR array.
  std::span<const HalfEdge> neighbors(Vertex v) const {
    NORS_CHECK(valid_vertex(v));
    NORS_CHECK_MSG(frozen_, "neighbors() requires freeze()");
    return {half_edges_.data() + offsets_[static_cast<std::size_t>(v)],
            half_edges_.data() + offsets_[static_cast<std::size_t>(v) + 1]};
  }

  /// Frozen phase: the HalfEdge behind (v, port).
  const HalfEdge& edge(Vertex v, std::int32_t port) const {
    NORS_CHECK(valid_vertex(v));
    NORS_CHECK_MSG(frozen_, "edge() requires freeze()");
    const std::size_t off = offsets_[static_cast<std::size_t>(v)];
    NORS_CHECK_MSG(
        port >= 0 && off + static_cast<std::size_t>(port) <
                         offsets_[static_cast<std::size_t>(v) + 1],
        "bad port " << port << " at vertex " << v);
    return half_edges_[off + static_cast<std::size_t>(port)];
  }

  /// Frozen phase: flat CSR index of (v, port 0); neighbors(v)[p] lives at
  /// flat index edge_base(v) + p. Lets consumers keep per-half-edge side
  /// tables (quantized weights, link state, …) in arrays parallel to the
  /// adjacency, and total_half_edges() sizes them.
  std::size_t edge_base(Vertex v) const {
    NORS_CHECK(valid_vertex(v));
    NORS_CHECK_MSG(frozen_, "edge_base() requires freeze()");
    return offsets_[static_cast<std::size_t>(v)];
  }

  std::size_t total_half_edges() const {
    NORS_CHECK_MSG(frozen_, "total_half_edges() requires freeze()");
    return half_edges_.size();
  }

  Weight max_weight() const { return max_weight_; }

  bool valid_vertex(Vertex v) const { return v >= 0 && v < n_; }

  /// Frozen phase: the port at u leading to v, or kNoPort; the smallest such
  /// port when parallel edges exist. O(log degree(u)) via a per-vertex
  /// neighbor-sorted port permutation built at freeze() time.
  std::int32_t port_to(Vertex u, Vertex v) const;

 private:
  struct PendingEdge {
    Vertex u;
    Vertex v;
    Weight w;
  };

  int n_ = 0;
  std::int64_t m_ = 0;
  Weight max_weight_ = 0;
  bool frozen_ = false;

  // Builder phase.
  std::vector<PendingEdge> pending_;
  std::vector<std::int32_t> deg_;

  // Frozen phase (CSR).
  std::vector<std::size_t> offsets_;       // n+1 entries into half_edges_
  std::vector<HalfEdge> half_edges_;       // 2m, grouped by source vertex
  std::vector<std::int32_t> sorted_ports_; // 2m, per-vertex ports by (to, port)
};

}  // namespace nors::graph
