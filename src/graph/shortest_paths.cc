#include "graph/shortest_paths.h"

#include <algorithm>
#include <queue>
#include <tuple>

namespace nors::graph {

namespace {

SsspResult init_result(int n) {
  SsspResult r;
  r.dist.assign(static_cast<std::size_t>(n), kDistInf);
  r.parent.assign(static_cast<std::size_t>(n), kNoVertex);
  r.parent_port.assign(static_cast<std::size_t>(n), kNoPort);
  r.hops.assign(static_cast<std::size_t>(n), -1);
  r.source.assign(static_cast<std::size_t>(n), kNoVertex);
  return r;
}

SsspResult run_dijkstra(const WeightedGraph& g,
                        const std::vector<Vertex>& sources) {
  SsspResult r = init_result(g.n());
  // (dist, source-id, vertex): including the source id in the key makes the
  // nearest-source assignment deterministic under ties.
  using Item = std::tuple<Dist, Vertex, Vertex>;
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> pq;
  for (Vertex s : sources) {
    NORS_CHECK(g.valid_vertex(s));
    if (r.dist[static_cast<std::size_t>(s)] == 0) continue;
    r.dist[static_cast<std::size_t>(s)] = 0;
    r.hops[static_cast<std::size_t>(s)] = 0;
    r.source[static_cast<std::size_t>(s)] = s;
    pq.emplace(0, s, s);
  }
  while (!pq.empty()) {
    const auto [d, src, v] = pq.top();
    pq.pop();
    if (d != r.dist[static_cast<std::size_t>(v)] ||
        src != r.source[static_cast<std::size_t>(v)]) {
      continue;
    }
    for (const auto& e : g.neighbors(v)) {
      const Dist nd = d + e.w;
      auto& du = r.dist[static_cast<std::size_t>(e.to)];
      auto& su = r.source[static_cast<std::size_t>(e.to)];
      if (nd < du || (nd == du && src < su)) {
        du = nd;
        su = src;
        r.parent[static_cast<std::size_t>(e.to)] = v;
        r.parent_port[static_cast<std::size_t>(e.to)] = e.rev;
        r.hops[static_cast<std::size_t>(e.to)] =
            r.hops[static_cast<std::size_t>(v)] + 1;
        pq.emplace(nd, src, e.to);
      }
    }
  }
  return r;
}

}  // namespace

SsspResult dijkstra(const WeightedGraph& g, Vertex src) {
  return run_dijkstra(g, {src});
}

SsspResult multi_source_dijkstra(const WeightedGraph& g,
                                 const std::vector<Vertex>& sources) {
  NORS_CHECK(!sources.empty());
  return run_dijkstra(g, sources);
}

HopBoundedResult hop_bounded_sssp(const WeightedGraph& g, Vertex src,
                                  std::int64_t hop_bound) {
  NORS_CHECK(g.valid_vertex(src));
  NORS_CHECK(hop_bound >= 0);
  const auto n = static_cast<std::size_t>(g.n());
  HopBoundedResult r;
  r.dist.assign(n, kDistInf);
  r.parent_port.assign(n, kNoPort);
  r.dist[static_cast<std::size_t>(src)] = 0;
  std::vector<Dist> next = r.dist;
  std::vector<std::int32_t> next_port = r.parent_port;
  std::vector<Vertex> frontier{src};
  for (std::int64_t it = 0; it < hop_bound && !frontier.empty(); ++it) {
    std::vector<Vertex> changed;
    for (Vertex v : frontier) {
      const Dist dv = r.dist[static_cast<std::size_t>(v)];
      for (const auto& e : g.neighbors(v)) {
        const Dist nd = dv + e.w;
        if (nd < next[static_cast<std::size_t>(e.to)]) {
          if (next[static_cast<std::size_t>(e.to)] ==
              r.dist[static_cast<std::size_t>(e.to)]) {
            changed.push_back(e.to);
          }
          next[static_cast<std::size_t>(e.to)] = nd;
          next_port[static_cast<std::size_t>(e.to)] = e.rev;
        }
      }
    }
    if (changed.empty()) break;
    for (Vertex v : changed) {
      r.dist[static_cast<std::size_t>(v)] = next[static_cast<std::size_t>(v)];
      r.parent_port[static_cast<std::size_t>(v)] =
          next_port[static_cast<std::size_t>(v)];
    }
    std::sort(changed.begin(), changed.end());
    changed.erase(std::unique(changed.begin(), changed.end()), changed.end());
    frontier = std::move(changed);
    r.iterations_used = static_cast<int>(it) + 1;
  }
  return r;
}

Dist pair_distance(const WeightedGraph& g, Vertex src, Vertex dst) {
  const SsspResult r = dijkstra(g, src);
  return r.dist[static_cast<std::size_t>(dst)];
}

Dist tree_distance(const std::vector<Vertex>& parent,
                   const std::vector<Dist>& dist_to_root, Vertex u, Vertex v) {
  // Walk both vertices to the root, recording ancestors of u, then find the
  // first ancestor of v that is also an ancestor of u.
  std::vector<char> on_u_path(parent.size(), 0);
  for (Vertex x = u; x != kNoVertex; x = parent[static_cast<std::size_t>(x)]) {
    on_u_path[static_cast<std::size_t>(x)] = 1;
  }
  Vertex lca = v;
  while (lca != kNoVertex && !on_u_path[static_cast<std::size_t>(lca)]) {
    lca = parent[static_cast<std::size_t>(lca)];
  }
  NORS_CHECK_MSG(lca != kNoVertex, "vertices in different trees");
  return (dist_to_root[static_cast<std::size_t>(u)] -
          dist_to_root[static_cast<std::size_t>(lca)]) +
         (dist_to_root[static_cast<std::size_t>(v)] -
          dist_to_root[static_cast<std::size_t>(lca)]);
}

}  // namespace nors::graph
