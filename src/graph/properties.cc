#include "graph/properties.h"

#include <algorithm>
#include <queue>

#include "graph/shortest_paths.h"

namespace nors::graph {

Components connected_components(const WeightedGraph& g) {
  Components c;
  c.comp.assign(static_cast<std::size_t>(g.n()), -1);
  for (Vertex s = 0; s < g.n(); ++s) {
    if (c.comp[static_cast<std::size_t>(s)] != -1) continue;
    std::vector<Vertex> stack{s};
    c.comp[static_cast<std::size_t>(s)] = c.count;
    while (!stack.empty()) {
      const Vertex v = stack.back();
      stack.pop_back();
      for (const auto& e : g.neighbors(v)) {
        if (c.comp[static_cast<std::size_t>(e.to)] == -1) {
          c.comp[static_cast<std::size_t>(e.to)] = c.count;
          stack.push_back(e.to);
        }
      }
    }
    ++c.count;
  }
  return c;
}

bool is_connected(const WeightedGraph& g) {
  if (g.n() == 0) return true;
  return connected_components(g).count == 1;
}

int hop_eccentricity(const WeightedGraph& g, Vertex v) {
  std::vector<int> depth(static_cast<std::size_t>(g.n()), -1);
  std::queue<Vertex> q;
  depth[static_cast<std::size_t>(v)] = 0;
  q.push(v);
  int ecc = 0;
  while (!q.empty()) {
    const Vertex u = q.front();
    q.pop();
    ecc = std::max(ecc, depth[static_cast<std::size_t>(u)]);
    for (const auto& e : g.neighbors(u)) {
      if (depth[static_cast<std::size_t>(e.to)] == -1) {
        depth[static_cast<std::size_t>(e.to)] =
            depth[static_cast<std::size_t>(u)] + 1;
        q.push(e.to);
      }
    }
  }
  return ecc;
}

int hop_diameter(const WeightedGraph& g) {
  int d = 0;
  for (Vertex v = 0; v < g.n(); ++v) d = std::max(d, hop_eccentricity(g, v));
  return d;
}

int bfs_height(const WeightedGraph& g, Vertex root) {
  return hop_eccentricity(g, root);
}

int shortest_path_hop_diameter(const WeightedGraph& g, int sample_sources) {
  const int n = g.n();
  const int count = (sample_sources <= 0 || sample_sources >= n)
                        ? n
                        : sample_sources;
  int s_max = 0;
  for (int i = 0; i < count; ++i) {
    const Vertex src = static_cast<Vertex>(
        (static_cast<std::int64_t>(i) * n) / count);
    const SsspResult r = dijkstra(g, src);
    for (Vertex v = 0; v < n; ++v) {
      if (!is_inf(r.dist[static_cast<std::size_t>(v)])) {
        s_max = std::max(s_max, static_cast<int>(
                                    r.hops[static_cast<std::size_t>(v)]));
      }
    }
  }
  return s_max;
}

Dist weighted_diameter(const WeightedGraph& g, int sample_sources) {
  const int n = g.n();
  const int count = (sample_sources <= 0 || sample_sources >= n)
                        ? n
                        : sample_sources;
  Dist best = 0;
  for (int i = 0; i < count; ++i) {
    const Vertex src = static_cast<Vertex>(
        (static_cast<std::int64_t>(i) * n) / count);
    const SsspResult r = dijkstra(g, src);
    for (Vertex v = 0; v < n; ++v) {
      const Dist d = r.dist[static_cast<std::size_t>(v)];
      if (!is_inf(d)) best = std::max(best, d);
    }
  }
  return best;
}

}  // namespace nors::graph
