#pragma once

#include <vector>

#include "graph/graph.h"

namespace nors::graph {

/// Connected components; comp[v] in [0, count).
struct Components {
  std::vector<int> comp;
  int count = 0;
};
Components connected_components(const WeightedGraph& g);

bool is_connected(const WeightedGraph& g);

/// Unweighted (hop) eccentricity of a vertex.
int hop_eccentricity(const WeightedGraph& g, Vertex v);

/// Exact hop diameter D: max over vertices of hop eccentricity. O(n·m) —
/// fine at simulation scale; benches cache it per graph.
int hop_diameter(const WeightedGraph& g);

/// Height of a BFS tree rooted at `root` (hop eccentricity of root). This is
/// the `D`-like term entering pipelined-broadcast costs.
int bfs_height(const WeightedGraph& g, Vertex root);

/// Shortest-path (weighted) hop diameter S: the maximum number of hops used
/// by any shortest path, computed exactly from per-source Dijkstra. O(n·m
/// log n); use `sample` sources when exact cost is prohibitive (0 = exact).
int shortest_path_hop_diameter(const WeightedGraph& g, int sample_sources = 0);

/// Weighted diameter (max pairwise distance) computed from `sample` source
/// Dijkstras (0 = all sources, exact).
Dist weighted_diameter(const WeightedGraph& g, int sample_sources = 0);

}  // namespace nors::graph
