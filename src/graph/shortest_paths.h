#pragma once

#include <vector>

#include "graph/graph.h"

namespace nors::graph {

/// Result of a single-source (or multi-source) shortest-path computation.
/// parent[v] / parent_port[v] describe the last edge of a shortest path into
/// v (kNoVertex / kNoPort at sources and unreachable vertices); hops[v] is
/// the number of edges on that path.
struct SsspResult {
  std::vector<Dist> dist;
  std::vector<Vertex> parent;
  std::vector<std::int32_t> parent_port;  // port at v towards parent[v]
  std::vector<std::int32_t> hops;
  std::vector<Vertex> source;  // nearest source (multi-source runs)
};

/// Exact Dijkstra from a single source.
SsspResult dijkstra(const WeightedGraph& g, Vertex src);

/// Exact Dijkstra from a set of sources (distance to the nearest source;
/// source[v] records which one). Ties broken by smaller source id, so the
/// result is deterministic.
SsspResult multi_source_dijkstra(const WeightedGraph& g,
                                 const std::vector<Vertex>& sources);

/// Exact hop-bounded distances d^(B)(src, v): length of the shortest path
/// using at most B edges. Bellman–Ford over hop layers with early exit when
/// an iteration changes nothing. `iterations_used` reports how many hop
/// layers were actually needed.
struct HopBoundedResult {
  std::vector<Dist> dist;
  std::vector<std::int32_t> parent_port;  // port at v toward its BF parent
  int iterations_used = 0;
};
HopBoundedResult hop_bounded_sssp(const WeightedGraph& g, Vertex src,
                                  std::int64_t hop_bound);

/// Exact distance between two vertices (Dijkstra truncated at dst).
Dist pair_distance(const WeightedGraph& g, Vertex src, Vertex dst);

/// Distance from u to v inside a tree given as a parent-pointer forest over
/// the full vertex range (parent[root] == kNoVertex). dist_to_root must be
/// consistent with the parents. Walks to the LCA; O(depth).
Dist tree_distance(const std::vector<Vertex>& parent,
                   const std::vector<Dist>& dist_to_root, Vertex u, Vertex v);

}  // namespace nors::graph
