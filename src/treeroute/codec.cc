#include "treeroute/codec.h"

namespace nors::treeroute {

void encode(const TzTreeScheme::Label& label, util::WordWriter& w) {
  w.put(label.a);
  w.put(static_cast<std::int64_t>(label.light.size()));
  for (const auto& [v, port] : label.light) {
    w.put(v);
    w.put(port);
  }
}

TzTreeScheme::Label decode_label(util::WordReader& r) {
  TzTreeScheme::Label label;
  label.a = r.get();
  const auto count = r.get();
  NORS_CHECK_MSG(count >= 0 && count < (1 << 24), "corrupt label length");
  label.light.reserve(static_cast<std::size_t>(count));
  for (std::int64_t i = 0; i < count; ++i) {
    const auto v = static_cast<graph::Vertex>(r.get());
    const auto port = static_cast<std::int32_t>(r.get());
    label.light.emplace_back(v, port);
  }
  return label;
}

void encode(const TzTreeScheme::Table& table, util::WordWriter& w) {
  w.put(table.parent);
  w.put(table.parent_port);
  w.put(table.heavy);
  w.put(table.heavy_port);
  w.put(table.a);
  w.put(table.b);
}

TzTreeScheme::Table decode_table(graph::Vertex self, util::WordReader& r) {
  TzTreeScheme::Table t;
  t.self = self;
  t.parent = static_cast<graph::Vertex>(r.get());
  t.parent_port = static_cast<std::int32_t>(r.get());
  t.heavy = static_cast<graph::Vertex>(r.get());
  t.heavy_port = static_cast<std::int32_t>(r.get());
  t.a = r.get();
  t.b = r.get();
  return t;
}

std::int64_t vlabel_overhead_words(const DistTreeScheme::VLabel& l) {
  // Global-light list length + per-hop portal-label overhead + the local
  // label's own overhead.
  return 1 + static_cast<std::int64_t>(l.global_light.size()) *
                 kLabelOverheadWords +
         kLabelOverheadWords;
}

void encode(const DistTreeScheme::VLabel& label, util::WordWriter& w) {
  w.put(label.a_prime);
  w.put(static_cast<std::int64_t>(label.global_light.size()));
  for (const auto& hop : label.global_light) {
    w.put(hop.vi);
    w.put(hop.wi);
    w.put(hop.port);
    encode(hop.portal_label, w);
  }
  // GlobalHop::portal is recoverable (it is the last vertex of the portal
  // label's path inside T_{vi}); we carry it in the 3 counted words above
  // via vi/wi/port and re-derive nothing — the router never reads .portal.
  encode(label.local, w);
}

DistTreeScheme::VLabel decode_vlabel(util::WordReader& r) {
  DistTreeScheme::VLabel label;
  label.a_prime = r.get();
  const auto count = r.get();
  NORS_CHECK_MSG(count >= 0 && count < (1 << 20), "corrupt vlabel length");
  for (std::int64_t i = 0; i < count; ++i) {
    DistTreeScheme::GlobalHop hop;
    hop.vi = static_cast<graph::Vertex>(r.get());
    hop.wi = static_cast<graph::Vertex>(r.get());
    hop.port = static_cast<std::int32_t>(r.get());
    hop.portal_label = decode_label(r);
    label.global_light.push_back(std::move(hop));
  }
  label.local = decode_label(r);
  return label;
}

void encode(const DistTreeScheme::NodeInfo& info,
            const TzTreeScheme::Label& heavy_portal_label,
            util::WordWriter& w) {
  w.put(info.subtree_root);
  encode(info.local, w);
  w.put(info.a_prime);
  w.put(info.b_prime);
  w.put(info.heavy_prime);
  w.put(info.heavy_port);
  encode(heavy_portal_label, w);
  w.put(info.heavy_portal);
  w.put(info.up_port);
}

DistTreeScheme::NodeInfo decode_node_info(
    graph::Vertex self, util::WordReader& r,
    TzTreeScheme::Label& heavy_portal_label) {
  // The decoded info is standalone: subtree_slot stays -1 because slot ids
  // only mean something inside the scheme that owns the slot tables, so the
  // slot-indexed accessors (heavy_portal_label_at / table_words_at) must
  // not be fed a decoded info — the heavy-portal label travels through the
  // out-parameter instead.
  DistTreeScheme::NodeInfo info;
  info.subtree_root = static_cast<graph::Vertex>(r.get());
  info.local = decode_table(self, r);
  info.a_prime = static_cast<std::int32_t>(r.get());
  info.b_prime = static_cast<std::int32_t>(r.get());
  info.heavy_prime = static_cast<graph::Vertex>(r.get());
  info.heavy_port = static_cast<std::int32_t>(r.get());
  heavy_portal_label = decode_label(r);
  info.heavy_portal = static_cast<graph::Vertex>(r.get());
  info.up_port = static_cast<std::int32_t>(r.get());
  return info;
}

}  // namespace nors::treeroute
