#pragma once

#include "treeroute/dist_tree.h"
#include "treeroute/tz_tree.h"
#include "util/wire.h"

namespace nors::treeroute {

// Wire codecs for the tree-routing data structures. Every codec writes the
// structure's words() payload words plus an explicit, documented number of
// length words (lists need their sizes on the wire; the paper's O(·) word
// counts absorb them, our accounting keeps them separate and test_codec
// pins the exact relationship).

/// Length words added on the wire beyond Label::words().
inline constexpr std::int64_t kLabelOverheadWords = 1;  // light-list length
void encode(const TzTreeScheme::Label& label, util::WordWriter& w);
TzTreeScheme::Label decode_label(util::WordReader& r);

/// Table::words() covers the full payload (the owner's id is implicit).
void encode(const TzTreeScheme::Table& table, util::WordWriter& w);
TzTreeScheme::Table decode_table(graph::Vertex self, util::WordReader& r);

/// Overhead: the global-light list length plus one label overhead per hop
/// and one for the local label.
std::int64_t vlabel_overhead_words(const DistTreeScheme::VLabel& l);
void encode(const DistTreeScheme::VLabel& label, util::WordWriter& w);
DistTreeScheme::VLabel decode_vlabel(util::WordReader& r);

/// Overhead: one label overhead for the heavy-portal label. The label is
/// passed alongside the info (the scheme stores it once per subtree slot —
/// DistTreeScheme::heavy_portal_label_at); decode returns it through
/// `heavy_portal_label` so the wire format is unchanged.
inline constexpr std::int64_t kNodeInfoOverheadWords = kLabelOverheadWords;
void encode(const DistTreeScheme::NodeInfo& info,
            const TzTreeScheme::Label& heavy_portal_label,
            util::WordWriter& w);
DistTreeScheme::NodeInfo decode_node_info(
    graph::Vertex self, util::WordReader& r,
    TzTreeScheme::Label& heavy_portal_label);

}  // namespace nors::treeroute
