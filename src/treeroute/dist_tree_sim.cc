#include "treeroute/dist_tree_sim.h"

#include <algorithm>

#include "congest/network.h"

namespace nors::treeroute {

namespace {

using graph::Vertex;

class Phase1Program : public congest::NodeProgram {
 public:
  Phase1Program(const graph::WeightedGraph& g, const TreeSpec& tree,
                const std::vector<char>& in_u)
      : g_(g) {
    for (std::size_t i = 0; i < tree.members.size(); ++i) {
      const Vertex v = tree.members[i];
      auto& st = state_[v];
      st.is_subtree_root =
          (v == tree.root) || in_u[static_cast<std::size_t>(v)];
      if (v != tree.root) {
        st.parent = tree.parent[i];
        st.parent_port = tree.parent_port[i];
      }
    }
    // Forest children: tree children that are not subtree roots.
    for (Vertex v : tree.members) {
      if (v == tree.root) continue;
      if (!state_.at(v).is_subtree_root) {
        state_.at(state_.at(v).parent).children.push_back(v);
      }
    }
    for (auto& [v, st] : state_) {
      std::sort(st.children.begin(), st.children.end());
      st.pending_children = static_cast<int>(st.children.size());
    }
  }

  void begin(congest::Network& net) override {
    // Forest leaves start the size convergecast.
    for (auto& [v, st] : state_) {
      if (st.pending_children == 0) net.wake(v);
    }
  }

  void on_round(Vertex v, congest::MessageView inbox,
                congest::Sender& out) override {
    auto it = state_.find(v);
    if (it == state_.end()) return;  // not a tree member
    auto& st = it->second;
    for (const auto& m : inbox) {
      if (m.tag == kSize) {
        st.child_size[m.from] = m.w[0];
        --st.pending_children;
      } else if (m.tag == kInterval) {
        st.a = m.w[0];
        st.b = m.w[1];
        st.have_interval = true;
      }
    }

    // Pass 1: all children reported — report upward (or, at a subtree
    // root, seed the DFS pass).
    if (!st.size_done && st.pending_children == 0) {
      st.size_done = true;
      std::int64_t total = 1;
      for (const auto& [c, s] : st.child_size) total += s;
      st.size = total;
      if (st.is_subtree_root) {
        st.a = 0;
        st.b = total;
        st.have_interval = true;
      } else {
        out.send(st.parent_port, congest::Message::make(kSize, {total}));
      }
    }

    // Pass 2: interval known and sizes known — assign children intervals
    // (heavy child first, then ascending — the TzTreeScheme order).
    if (st.have_interval && st.size_done && !st.assigned) {
      st.assigned = true;
      std::vector<Vertex> order = st.children;
      if (!order.empty()) {
        Vertex heavy = order.front();
        for (Vertex c : order) {
          if (st.child_size.at(c) > st.child_size.at(heavy)) heavy = c;
        }
        auto hit = std::find(order.begin(), order.end(), heavy);
        std::iter_swap(order.begin(), hit);
      }
      std::int64_t next_a = st.a + 1;
      for (Vertex c : order) {
        const std::int64_t sz = st.child_size.at(c);
        const std::int32_t port = g_.port_to(v, c);
        out.send(port,
                 congest::Message::make(kInterval, {next_a, next_a + sz}));
        next_a += sz;
      }
    }
  }

  struct NodeState {
    bool is_subtree_root = false;
    Vertex parent = graph::kNoVertex;
    std::int32_t parent_port = graph::kNoPort;
    std::vector<Vertex> children;
    std::unordered_map<Vertex, std::int64_t> child_size;
    int pending_children = 0;
    bool size_done = false;
    bool have_interval = false;
    bool assigned = false;
    std::int64_t size = 0;
    std::int64_t a = -1, b = -1;
  };

  const graph::WeightedGraph& g_;
  std::unordered_map<Vertex, NodeState> state_;

 private:
  static constexpr std::uint16_t kSize = 1;
  static constexpr std::uint16_t kInterval = 2;
};

}  // namespace

Phase1SimResult simulate_phase1(const graph::WeightedGraph& g,
                                const TreeSpec& tree,
                                const std::vector<char>& in_u) {
  Phase1Program prog(g, tree, in_u);
  congest::Network net(g, {});
  const auto stats = net.run(prog);
  Phase1SimResult r;
  r.rounds = stats.rounds;
  r.messages = stats.messages_sent;
  for (const auto& [v, st] : prog.state_) {
    NORS_CHECK_MSG(st.size_done && st.have_interval,
                   "phase-1 simulation did not converge at vertex " << v);
    r.a[v] = st.a;
    r.b[v] = st.b;
    r.size[v] = st.size;
  }
  return r;
}

}  // namespace nors::treeroute
