#include "treeroute/dist_tree.h"

#include <algorithm>
#include <cmath>

#include "primitives/pipelined.h"

namespace nors::treeroute {

namespace {

using graph::Vertex;

/// Flat, position-indexed view of a TreeSpec: members in BFS order from the
/// root (parents precede children), with parent links as positions into
/// `order`. Built once per tree, it replaces per-member hash lookups in
/// every pass below.
struct IndexedTree {
  std::vector<Vertex> order;             // BFS order, order[0] == root
  std::vector<int> parent_pos;           // position of parent; -1 at root
  std::vector<std::int32_t> parent_port; // port toward parent; root: kNoPort
};

IndexedTree index_tree(const TreeSpec& t) {
  const std::size_t sz = t.members.size();
  NORS_CHECK_MSG(t.parent.size() == sz && t.parent_port.size() == sz,
                 "TreeSpec parent arrays must parallel members");
  std::unordered_map<Vertex, int> pos;
  pos.reserve(sz * 2);
  for (std::size_t i = 0; i < sz; ++i) {
    pos.emplace(t.members[i], static_cast<int>(i));
  }
  // Parent position + port per member position.
  std::vector<int> par(sz, -1);
  std::vector<std::int32_t> pport(sz, graph::kNoPort);
  for (std::size_t i = 0; i < sz; ++i) {
    const Vertex v = t.members[i];
    if (v == t.root) continue;
    auto it = pos.find(t.parent[i]);
    // A parent outside the members leaves v unreachable; the size check
    // after BFS reports it.
    if (it != pos.end()) par[i] = it->second;
    pport[i] = t.parent_port[i];
  }
  // Children in CSR layout, buckets sorted by child vertex id (the
  // deterministic order every traversal below inherits).
  std::vector<int> cnt(sz, 0);
  for (std::size_t i = 0; i < sz; ++i) {
    if (par[i] >= 0 && t.members[i] != t.root) ++cnt[static_cast<std::size_t>(par[i])];
  }
  std::vector<int> off(sz + 1, 0);
  for (std::size_t i = 0; i < sz; ++i) off[i + 1] = off[i] + cnt[i];
  std::vector<int> child(static_cast<std::size_t>(off.back()));
  {
    std::vector<int> cursor(off.begin(), off.end() - 1);
    for (std::size_t i = 0; i < sz; ++i) {
      if (par[i] >= 0 && t.members[i] != t.root) {
        child[static_cast<std::size_t>(
            cursor[static_cast<std::size_t>(par[i])]++)] = static_cast<int>(i);
      }
    }
  }
  for (std::size_t i = 0; i < sz; ++i) {
    std::sort(child.begin() + off[i], child.begin() + off[i + 1],
              [&](int a, int b) {
                return t.members[static_cast<std::size_t>(a)] <
                       t.members[static_cast<std::size_t>(b)];
              });
  }
  // BFS from the root over member positions.
  IndexedTree out;
  auto rit = pos.find(t.root);
  std::vector<int> bfs;
  bfs.reserve(sz);
  if (rit != pos.end()) {
    bfs.push_back(rit->second);
    for (std::size_t h = 0; h < bfs.size(); ++h) {
      const auto v = static_cast<std::size_t>(bfs[h]);
      for (int c = off[v]; c < off[v + 1]; ++c) {
        bfs.push_back(child[static_cast<std::size_t>(c)]);
      }
    }
  }
  NORS_CHECK_MSG(bfs.size() == sz,
                 "TreeSpec is not a single tree rooted at " << t.root);
  // Re-index from member positions to BFS positions.
  std::vector<int> bfs_pos(sz);
  for (std::size_t i = 0; i < sz; ++i) {
    bfs_pos[static_cast<std::size_t>(bfs[i])] = static_cast<int>(i);
  }
  out.order.resize(sz);
  out.parent_pos.resize(sz);
  out.parent_port.resize(sz);
  for (std::size_t i = 0; i < sz; ++i) {
    const auto m = static_cast<std::size_t>(bfs[i]);
    out.order[i] = t.members[m];
    out.parent_pos[i] =
        par[m] < 0 ? -1 : bfs_pos[static_cast<std::size_t>(par[m])];
    out.parent_port[i] = pport[m];
  }
  return out;
}

/// Subtree decomposition of an indexed tree under the sample U: w_pos[i] is
/// the position of the nearest root-or-U ancestor (inclusive) of member i,
/// depth[i] its distance below it. Returns the maximum depth.
int subtree_roots(const IndexedTree& it, graph::Vertex root,
                  const std::vector<char>& in_u, std::vector<int>& w_pos,
                  std::vector<int>& depth) {
  const std::size_t sz = it.order.size();
  w_pos.resize(sz);
  depth.assign(sz, 0);
  int max_depth = 0;
  for (std::size_t i = 0; i < sz; ++i) {
    const Vertex v = it.order[i];
    if (v == root || in_u[static_cast<std::size_t>(v)]) {
      w_pos[i] = static_cast<int>(i);
    } else {
      const auto p = static_cast<std::size_t>(it.parent_pos[i]);
      w_pos[i] = w_pos[p];
      depth[i] = depth[p] + 1;
      max_depth = std::max(max_depth, depth[i]);
    }
  }
  return max_depth;
}

}  // namespace

DistTreeScheme DistTreeScheme::build(const graph::WeightedGraph& g,
                                     const TreeSpec& tree,
                                     const std::vector<char>& in_u) {
  DistTreeScheme s;
  s.root_ = tree.root;
  const IndexedTree it = index_tree(tree);
  const std::size_t sz = it.order.size();

  // Subtree root w(v): nearest ancestor (inclusive) in U(T) = (U ∩ T) ∪ {z},
  // as a position into it.order; plus the depth below it.
  std::vector<int> w_pos, depth;
  s.max_subtree_depth_ = subtree_roots(it, tree.root, in_u, w_pos, depth);

  // Members of each subtree in BFS order (parents precede children), CSR
  // over the subtree-root positions.
  std::vector<int> sub_cnt(sz, 0);
  for (std::size_t i = 0; i < sz; ++i) ++sub_cnt[static_cast<std::size_t>(w_pos[i])];
  std::vector<int> roots;  // subtree-root positions, ascending (= BFS order)
  for (std::size_t i = 0; i < sz; ++i) {
    if (w_pos[i] == static_cast<int>(i)) roots.push_back(static_cast<int>(i));
  }
  s.u_count_ = static_cast<int>(roots.size());
  std::vector<int> sub_off(sz + 1, 0);
  for (std::size_t i = 0; i < sz; ++i) sub_off[i + 1] = sub_off[i] + sub_cnt[i];
  std::vector<int> sub_members(sz);
  {
    std::vector<int> cursor(sub_off.begin(), sub_off.end() - 1);
    for (std::size_t i = 0; i < sz; ++i) {
      sub_members[static_cast<std::size_t>(
          cursor[static_cast<std::size_t>(w_pos[i])]++)] = static_cast<int>(i);
    }
  }

  // Local TZ scheme per subtree, via the index-based overload (no map
  // marshalling).
  std::unordered_map<Vertex, TzTreeScheme> local;
  local.reserve(roots.size() * 2);
  {
    std::vector<Vertex> mem, mpar;
    std::vector<std::int32_t> mport;
    for (const int w : roots) {
      const auto wi = static_cast<std::size_t>(w);
      mem.clear();
      mpar.clear();
      mport.clear();
      for (int c = sub_off[wi]; c < sub_off[wi + 1]; ++c) {
        const auto i = static_cast<std::size_t>(
            sub_members[static_cast<std::size_t>(c)]);
        mem.push_back(it.order[i]);
        if (static_cast<int>(i) == w) {
          mpar.push_back(graph::kNoVertex);
          mport.push_back(graph::kNoPort);
        } else {
          mpar.push_back(it.order[static_cast<std::size_t>(it.parent_pos[i])]);
          mport.push_back(it.parent_port[i]);
        }
      }
      local.emplace(it.order[wi],
                    TzTreeScheme::build(g, mem, mpar, mport, it.order[wi]));
    }
  }

  // Virtual tree T' over subtree roots. parent'(u) = w(p_T(u)); the portal
  // of u is its T-parent.
  std::unordered_map<Vertex, std::vector<Vertex>> t_children;
  t_children.reserve(roots.size() * 2);
  for (const int w : roots) {
    const auto wi = static_cast<std::size_t>(w);
    const Vertex wv = it.order[wi];
    t_children[wv];
    if (wv == tree.root) continue;
    const auto portal_pos = static_cast<std::size_t>(it.parent_pos[wi]);
    const Vertex wp = it.order[static_cast<std::size_t>(w_pos[portal_pos])];
    t_children[wp].push_back(wv);
  }
  for (auto& [w, ch] : t_children) std::sort(ch.begin(), ch.end());

  // Per-root lookup helpers shared by the two T' walks below.
  std::unordered_map<Vertex, int> root_pos_of;  // root vertex -> position
  root_pos_of.reserve(roots.size() * 2);
  for (const int w : roots) root_pos_of.emplace(it.order[static_cast<std::size_t>(w)], w);
  auto portal_of = [&](Vertex w) {
    // p_T(w): w's tree parent, the portal into w's subtree.
    const auto wp = static_cast<std::size_t>(root_pos_of.at(w));
    return it.order[static_cast<std::size_t>(it.parent_pos[wp])];
  };
  auto up_port_of = [&](Vertex w) {
    return it.parent_port[static_cast<std::size_t>(root_pos_of.at(w))];
  };

  // Sizes, heavy child, DFS intervals on T'.
  std::unordered_map<Vertex, std::int64_t> t_size;
  std::unordered_map<Vertex, Vertex> t_heavy;
  t_size.reserve(roots.size() * 2);
  t_heavy.reserve(roots.size() * 2);
  {
    std::vector<std::pair<Vertex, std::size_t>> stack{{tree.root, 0}};
    while (!stack.empty()) {
      auto [v, idx] = stack.back();
      auto& ch = t_children[v];
      if (idx < ch.size()) {
        ++stack.back().second;
        stack.push_back({ch[idx], 0});
      } else {
        std::int64_t sz_v = 1;
        Vertex heavy = graph::kNoVertex;
        std::int64_t best = -1;
        for (Vertex c : ch) {
          sz_v += t_size[c];
          if (t_size[c] > best) {
            best = t_size[c];
            heavy = c;
          }
        }
        t_size[v] = sz_v;
        t_heavy[v] = heavy;
        stack.pop_back();
      }
    }
  }
  std::unordered_map<Vertex, std::int64_t> a_prime, b_prime;
  std::unordered_map<Vertex, std::vector<GlobalHop>> t_label;
  a_prime.reserve(roots.size() * 2);
  b_prime.reserve(roots.size() * 2);
  t_label.reserve(roots.size() * 2);
  {
    std::int64_t clock = 0;
    std::vector<std::pair<Vertex, std::size_t>> stack{{tree.root, 0}};
    t_label[tree.root] = {};
    while (!stack.empty()) {
      auto [v, idx] = stack.back();
      auto& ch = t_children[v];
      if (idx == 0) a_prime[v] = clock++;
      if (idx < ch.size()) {
        ++stack.back().second;
        const Vertex c = ch[idx];
        std::vector<GlobalHop> lbl = t_label[v];
        if (c != t_heavy[v]) {
          GlobalHop hop;
          hop.vi = v;
          hop.wi = c;
          hop.portal = portal_of(c);
          hop.portal_label = local.at(v).label(hop.portal);
          hop.port = g.edge(c, up_port_of(c)).rev;
          lbl.push_back(std::move(hop));
        }
        t_label[c] = std::move(lbl);
        stack.push_back({c, 0});
      } else {
        b_prime[v] = clock;
        stack.pop_back();
      }
    }
  }

  // Assemble per-member tables and labels.
  s.info_.reserve(sz * 2);
  s.labels_.reserve(sz * 2);
  for (std::size_t i = 0; i < sz; ++i) {
    const Vertex v = it.order[i];
    const Vertex w = it.order[static_cast<std::size_t>(w_pos[i])];
    const TzTreeScheme& loc = local.at(w);
    NodeInfo ni;
    ni.subtree_root = w;
    ni.local = loc.table(v);
    ni.a_prime = a_prime.at(w);
    ni.b_prime = b_prime.at(w);
    ni.heavy_prime = t_heavy.at(w);
    if (ni.heavy_prime != graph::kNoVertex) {
      ni.heavy_portal = portal_of(ni.heavy_prime);
      ni.heavy_portal_label = loc.label(ni.heavy_portal);
      ni.heavy_port = g.edge(ni.heavy_prime, up_port_of(ni.heavy_prime)).rev;
    }
    if (w != tree.root) {
      // At the subtree root, the way "up" in T leaves the subtree.
      ni.up_port = (v == w) ? it.parent_port[i] : graph::kNoPort;
    }
    s.info_[v] = std::move(ni);

    VLabel lbl;
    lbl.a_prime = a_prime.at(w);
    lbl.global_light = t_label.at(w);
    lbl.local = loc.label(v);
    s.labels_[v] = std::move(lbl);
  }
  return s;
}

std::int32_t DistTreeScheme::next_hop(Vertex x, const VLabel& dest) const {
  const NodeInfo& nx = info(x);
  if (dest.a_prime == nx.a_prime) {
    // Same subtree: pure local interval routing.
    return TzTreeScheme::next_hop(nx.local, dest.local);
  }
  if (dest.a_prime < nx.a_prime || dest.a_prime >= nx.b_prime) {
    // Destination subtree is not below w(x) in T': go up. Inside the
    // subtree that means toward w; at w it means crossing to w's T-parent.
    if (nx.local.parent_port != graph::kNoPort) return nx.local.parent_port;
    NORS_CHECK_MSG(nx.up_port != graph::kNoPort,
                   "route-up requested at the tree root");
    return nx.up_port;
  }
  // Destination subtree is strictly below w(x) in T': find the T'-edge to
  // take — a light entry recorded in the destination label, else heavy.
  for (const auto& hop : dest.global_light) {
    if (hop.vi == nx.subtree_root) {
      const std::int32_t p = TzTreeScheme::next_hop(nx.local, hop.portal_label);
      return p == graph::kNoPort ? hop.port : p;
    }
  }
  NORS_CHECK_MSG(nx.heavy_prime != graph::kNoVertex,
                 "descend requested but w(x) has no T' children");
  const std::int32_t p =
      TzTreeScheme::next_hop(nx.local, nx.heavy_portal_label);
  return p == graph::kNoPort ? nx.heavy_port : p;
}

std::int32_t DistTreeScheme::next_hop_to_root(Vertex x) const {
  const NodeInfo& nx = info(x);
  if (nx.local.parent_port != graph::kNoPort) return nx.local.parent_port;
  return nx.up_port;  // kNoPort at the global root
}

const DistTreeScheme::VLabel& DistTreeScheme::label(Vertex v) const {
  auto it = labels_.find(v);
  NORS_CHECK_MSG(it != labels_.end(), "vertex " << v << " not in tree");
  return it->second;
}

const DistTreeScheme::NodeInfo& DistTreeScheme::info(Vertex v) const {
  auto it = info_.find(v);
  NORS_CHECK_MSG(it != info_.end(), "vertex " << v << " not in tree");
  return it->second;
}

DistTreeBatch build_dist_tree_batch(const graph::WeightedGraph& g,
                                    const std::vector<TreeSpec>& specs,
                                    const DistTreeBatchParams& params,
                                    int bfs_height, util::Rng& rng) {
  DistTreeBatch out;
  const int n = g.n();

  // Overlap s: max number of trees containing a vertex.
  std::vector<int> overlap(static_cast<std::size_t>(n), 0);
  for (const auto& t : specs) {
    for (Vertex v : t.members) ++overlap[static_cast<std::size_t>(v)];
  }
  out.max_overlap = 1;
  for (int o : overlap) out.max_overlap = std::max(out.max_overlap, o);

  // γ = sqrt(n / s) per Remark 3 unless overridden; sample U once.
  const double gamma =
      params.gamma > 0
          ? params.gamma
          : std::sqrt(static_cast<double>(n) /
                      static_cast<double>(out.max_overlap));
  const double p_u = std::min(1.0, gamma / static_cast<double>(n));
  std::vector<char> in_u(static_cast<std::size_t>(n), 0);
  for (Vertex v = 0; v < n; ++v) in_u[static_cast<std::size_t>(v)] =
      rng.bernoulli(p_u) ? 1 : 0;

  out.schemes.reserve(specs.size());
  std::int64_t phase2_words = 0;
  std::int64_t max_label_words = 1;
  for (const auto& t : specs) {
    out.schemes.push_back(DistTreeScheme::build(g, t, in_u));
    const auto& s = out.schemes.back();
    out.max_subtree_depth =
        std::max(out.max_subtree_depth, s.max_subtree_depth());
    out.u_total += s.u_count();
    for (Vertex v : t.members) {
      max_label_words = std::max(max_label_words, s.label(v).words());
    }
    // Phase 2 broadcast: two messages per T' node (report edge + receive
    // table/label), each of O(log² n) words.
    phase2_words += 2LL * s.u_count() * max_label_words;
  }

  // Remark-3 schedule verification: each subtree broadcast occupies its
  // edges at stage start(w)+depth(edge); count collisions per (edge, stage).
  // The per-tree structure (BFS order, subtree roots, depths) does not
  // depend on the attempt, so index it once up front; an attempt only
  // redraws the start stages.
  struct TreeSchedule {
    std::vector<Vertex> order;   // BFS order
    std::vector<int> parent_pos;
    std::vector<int> w_pos;      // subtree-root position per member
    std::vector<int> depth;      // depth below the subtree root
  };
  std::vector<TreeSchedule> sched;
  sched.reserve(specs.size());
  for (const auto& t : specs) {
    IndexedTree it = index_tree(t);
    TreeSchedule ts;
    subtree_roots(it, t.root, in_u, ts.w_pos, ts.depth);
    ts.order = std::move(it.order);
    ts.parent_pos = std::move(it.parent_pos);
    sched.push_back(std::move(ts));
  }

  const std::int64_t ln_n = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(std::log(std::max(2, n))));
  std::int64_t range = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(std::sqrt(static_cast<double>(n) *
                                             out.max_overlap)) *
             ln_n);
  std::int64_t stages = 0;
  struct KeyHash {
    std::size_t operator()(const std::pair<std::int64_t, std::int64_t>& k) const {
      // splitmix-style combine; exact keys, so collisions only cost probes.
      std::uint64_t h = static_cast<std::uint64_t>(k.first) * 0x9E3779B97F4A7C15ull;
      h ^= static_cast<std::uint64_t>(k.second) + 0x9E3779B97F4A7C15ull +
           (h << 6) + (h >> 2);
      return static_cast<std::size_t>(h);
    }
  };
  std::unordered_map<std::pair<std::int64_t, std::int64_t>, int, KeyHash> load;
  std::vector<std::int64_t> start;
  for (int attempt = 0;; ++attempt) {
    NORS_CHECK_MSG(attempt < 20, "staged schedule failed to decongest");
    load.clear();
    bool ok = true;
    stages = 0;
    util::Rng sched_rng = rng.fork(static_cast<std::uint64_t>(attempt) + 99);
    for (const TreeSchedule& ts : sched) {
      const std::size_t sz = ts.order.size();
      start.assign(sz, 0);
      for (std::size_t i = 0; i < sz; ++i) {
        if (ts.w_pos[i] == static_cast<int>(i)) {
          start[i] = static_cast<std::int64_t>(
              sched_rng.uniform(static_cast<std::uint64_t>(range)));
        } else {
          const Vertex v = ts.order[i];
          const Vertex p =
              ts.order[static_cast<std::size_t>(ts.parent_pos[i])];
          const std::int64_t stage =
              start[static_cast<std::size_t>(ts.w_pos[i])] + ts.depth[i];
          stages = std::max(stages, stage + 1);
          // Edge identity: (child, parent) — the same child vertex can hang
          // off different parents in different trees.
          const auto key = std::make_pair(
              (static_cast<std::int64_t>(v) << 32) |
                  static_cast<std::uint32_t>(p),
              stage);
          if (++load[key] > params.alpha) {
            ok = false;
            break;
          }
        }
      }
      if (!ok) break;
    }
    if (ok) break;
    range *= 2;
  }

  // Phases 0+1 (start-time dissemination, size convergecast, parallel DFS,
  // local label distribution): four staged passes, the label pass carrying
  // O(log n)-word payloads.
  const std::int64_t label_factor =
      (max_label_words + congest::kMaxWords - 1) / congest::kMaxWords;
  const std::int64_t staged_rounds =
      static_cast<std::int64_t>(params.alpha) * stages * (3 + label_factor);
  out.ledger.add("treeroute/phase1 staged subtree passes",
                 congest::CostKind::kAccounted, staged_rounds, 0,
                 "alpha=" + std::to_string(params.alpha) +
                     " stages=" + std::to_string(stages));

  // Phase 2: global broadcasts over the BFS backbone (Lemma 1).
  const std::int64_t phase2_msgs =
      (phase2_words + congest::kMaxWords - 1) / congest::kMaxWords;
  out.ledger.add(
      "treeroute/phase2 global broadcast",
      congest::CostKind::kAccounted,
      primitives::pipelined_broadcast_rounds(phase2_msgs, bfs_height),
      phase2_msgs, "u_total=" + std::to_string(out.u_total));
  return out;
}

}  // namespace nors::treeroute
