#include "treeroute/dist_tree.h"

#include <algorithm>
#include <cmath>

#include "primitives/pipelined.h"
#include "util/threads.h"

namespace nors::treeroute {

namespace {

using graph::Vertex;

/// Flat, position-indexed view of a TreeSpec written into the scratch
/// arenas: members in BFS order from the root (parents precede children),
/// parent links as positions into `order`, and the (spec position → sorted
/// index) map the assembly pass uses. Replaces every per-member hash lookup
/// with a binary search over the sorted member permutation.
void index_tree(const TreeSpec& t, TreeBuildScratch& s) {
  const std::size_t sz = t.members.size();
  NORS_CHECK_MSG(t.parent.size() == sz && t.parent_port.size() == sz,
                 "TreeSpec parent arrays must parallel members");
  s.perm.resize(sz);
  for (std::size_t i = 0; i < sz; ++i) {
    s.perm[i] = static_cast<std::int32_t>(i);
  }
  // Specs straight off the cluster builders arrive vertex-sorted
  // (DESIGN.md §7), so the identity permutation usually survives as-is.
  if (!std::is_sorted(t.members.begin(), t.members.end())) {
    std::sort(s.perm.begin(), s.perm.end(),
              [&](std::int32_t a, std::int32_t b) {
                return t.members[static_cast<std::size_t>(a)] <
                       t.members[static_cast<std::size_t>(b)];
              });
  }
  for (std::size_t i = 1; i < sz; ++i) {
    NORS_CHECK_MSG(t.members[static_cast<std::size_t>(s.perm[i - 1])] !=
                       t.members[static_cast<std::size_t>(s.perm[i])],
                   "duplicate member in TreeSpec");
  }
  s.sorted_of_orig.resize(sz);
  for (std::size_t j = 0; j < sz; ++j) {
    s.sorted_of_orig[static_cast<std::size_t>(s.perm[j])] =
        static_cast<int>(j);
  }
  const auto find_pos = [&](Vertex v) -> int {
    const auto it = std::lower_bound(
        s.perm.begin(), s.perm.end(), v,
        [&](std::int32_t a, Vertex val) {
          return t.members[static_cast<std::size_t>(a)] < val;
        });
    if (it == s.perm.end() ||
        t.members[static_cast<std::size_t>(*it)] != v) {
      return -1;
    }
    return *it;
  };

  // Parent position + port per member position.
  s.par.assign(sz, -1);
  for (std::size_t i = 0; i < sz; ++i) {
    if (t.members[i] == t.root) continue;
    // A parent outside the members leaves v unreachable; the size check
    // after BFS reports it.
    s.par[i] = find_pos(t.parent[i]);
  }
  // Children in CSR layout; filling in sorted-vertex order leaves every
  // bucket sorted by child vertex id (the deterministic order every
  // traversal below inherits).
  s.cnt.assign(sz, 0);
  for (std::size_t i = 0; i < sz; ++i) {
    if (s.par[i] >= 0 && t.members[i] != t.root) {
      ++s.cnt[static_cast<std::size_t>(s.par[i])];
    }
  }
  s.off.assign(sz + 1, 0);
  for (std::size_t i = 0; i < sz; ++i) s.off[i + 1] = s.off[i] + s.cnt[i];
  s.child.resize(static_cast<std::size_t>(s.off[sz]));
  s.cursor.assign(s.off.begin(), s.off.end() - 1);
  for (std::size_t j = 0; j < sz; ++j) {
    const auto i = static_cast<std::size_t>(s.perm[j]);
    if (s.par[i] >= 0 && t.members[i] != t.root) {
      s.child[static_cast<std::size_t>(
          s.cursor[static_cast<std::size_t>(s.par[i])]++)] =
          static_cast<int>(i);
    }
  }
  // BFS from the root over member positions.
  const int root_pos = find_pos(t.root);
  s.bfs.clear();
  s.bfs.reserve(sz);
  if (root_pos >= 0) {
    s.bfs.push_back(root_pos);
    for (std::size_t h = 0; h < s.bfs.size(); ++h) {
      const auto v = static_cast<std::size_t>(s.bfs[h]);
      for (int c = s.off[v]; c < s.off[v + 1]; ++c) {
        s.bfs.push_back(s.child[static_cast<std::size_t>(c)]);
      }
    }
  }
  NORS_CHECK_MSG(s.bfs.size() == sz,
                 "TreeSpec is not a single tree rooted at " << t.root);
  // Re-index from member positions to BFS positions.
  s.bfs_pos.resize(sz);
  for (std::size_t i = 0; i < sz; ++i) {
    s.bfs_pos[static_cast<std::size_t>(s.bfs[i])] = static_cast<int>(i);
  }
  s.order.resize(sz);
  s.parent_pos.resize(sz);
  s.parent_port.resize(sz);
  s.orig_pos.resize(sz);
  for (std::size_t i = 0; i < sz; ++i) {
    const auto m = static_cast<std::size_t>(s.bfs[i]);
    s.order[i] = t.members[m];
    s.parent_pos[i] =
        s.par[m] < 0 ? -1 : s.bfs_pos[static_cast<std::size_t>(s.par[m])];
    s.parent_port[i] =
        s.order[i] == t.root ? graph::kNoPort : t.parent_port[m];
    s.orig_pos[i] = static_cast<int>(m);
  }
}

/// Subtree decomposition under the sample U: w_pos[i] is the position of
/// the nearest root-or-U ancestor (inclusive) of member i, depth[i] its
/// distance below it. Returns the maximum depth.
int subtree_roots(const TreeBuildScratch& s, graph::Vertex root,
                  const std::vector<char>& in_u, std::vector<int>& w_pos,
                  std::vector<int>& depth) {
  const std::size_t sz = s.order.size();
  w_pos.resize(sz);
  depth.assign(sz, 0);
  int max_depth = 0;
  for (std::size_t i = 0; i < sz; ++i) {
    const Vertex v = s.order[i];
    if (v == root || in_u[static_cast<std::size_t>(v)]) {
      w_pos[i] = static_cast<int>(i);
    } else {
      const auto p = static_cast<std::size_t>(s.parent_pos[i]);
      w_pos[i] = w_pos[p];
      depth[i] = depth[p] + 1;
      max_depth = std::max(max_depth, depth[i]);
    }
  }
  return max_depth;
}

}  // namespace

DistTreeScheme DistTreeScheme::build(const graph::WeightedGraph& g,
                                     const TreeSpec& tree,
                                     const std::vector<char>& in_u) {
  TreeBuildScratch scratch;
  return build(g, tree, in_u, scratch, nullptr);
}

DistTreeScheme DistTreeScheme::build(const graph::WeightedGraph& g,
                                     const TreeSpec& tree,
                                     const std::vector<char>& in_u,
                                     TreeBuildScratch& s,
                                     TreeSchedule* sched_out) {
  DistTreeScheme out;
  out.root_ = tree.root;
  index_tree(tree, s);
  const std::size_t sz = s.order.size();

  // Subtree root w(v): nearest ancestor (inclusive) in U(T) = (U ∩ T) ∪ {z},
  // as a position into s.order; plus the depth below it.
  out.max_subtree_depth_ = subtree_roots(s, tree.root, in_u, s.w_pos, s.depth);

  // Members of each subtree in BFS order (parents precede children), CSR
  // over the subtree-root positions; member_rank is the position of each
  // member inside its own subtree (= its index in the local TZ scheme).
  s.sub_cnt.assign(sz, 0);
  for (std::size_t i = 0; i < sz; ++i) {
    ++s.sub_cnt[static_cast<std::size_t>(s.w_pos[i])];
  }
  s.roots.clear();  // subtree-root positions, ascending (= BFS order)
  s.slot_of_pos.assign(sz, -1);
  for (std::size_t i = 0; i < sz; ++i) {
    if (s.w_pos[i] == static_cast<int>(i)) {
      s.slot_of_pos[i] = static_cast<int>(s.roots.size());
      s.roots.push_back(static_cast<int>(i));
    }
  }
  const int r = static_cast<int>(s.roots.size());
  out.u_count_ = r;
  s.sub_off.assign(sz + 1, 0);
  for (std::size_t i = 0; i < sz; ++i) {
    s.sub_off[i + 1] = s.sub_off[i] + s.sub_cnt[i];
  }
  s.sub_members.resize(sz);
  s.member_rank.resize(sz);
  s.cursor.assign(s.sub_off.begin(), s.sub_off.end() - 1);
  for (std::size_t i = 0; i < sz; ++i) {
    const int at = s.cursor[static_cast<std::size_t>(s.w_pos[i])]++;
    s.sub_members[static_cast<std::size_t>(at)] = static_cast<int>(i);
    s.member_rank[i] = at - s.sub_off[static_cast<std::size_t>(s.w_pos[i])];
  }

  // Local TZ schemes per subtree slot, built straight into flat tree-sized
  // arrays aligned with the subtree CSR (DESIGN.md §7): member vertices,
  // parent ranks and ports per flat index, plus the in-subtree rank lists
  // in ascending vertex order — one pass over the global sorted permutation
  // fills all of them, because sorted order restricted to a subtree is that
  // subtree's sorted order.
  s.sub_mem.resize(sz);
  s.sub_par.resize(sz);
  s.sub_port.resize(sz);
  s.sub_sorted.resize(sz);
  s.sorted_to_pos.resize(sz);
  for (std::size_t i = 0; i < sz; ++i) {
    s.sorted_to_pos[static_cast<std::size_t>(
        s.sorted_of_orig[static_cast<std::size_t>(s.orig_pos[i])])] =
        static_cast<int>(i);
  }
  for (std::size_t i = 0; i < sz; ++i) {
    const auto wpos = static_cast<std::size_t>(s.w_pos[i]);
    const int at = s.sub_off[wpos] + s.member_rank[i];
    s.sub_mem[static_cast<std::size_t>(at)] = s.order[i];
    if (i == wpos) {
      s.sub_par[static_cast<std::size_t>(at)] = -1;
      s.sub_port[static_cast<std::size_t>(at)] = graph::kNoPort;
    } else {
      s.sub_par[static_cast<std::size_t>(at)] =
          s.member_rank[static_cast<std::size_t>(s.parent_pos[i])];
      s.sub_port[static_cast<std::size_t>(at)] = s.parent_port[i];
    }
  }
  s.cursor.assign(s.sub_off.begin(), s.sub_off.end() - 1);
  for (std::size_t j = 0; j < sz; ++j) {
    const auto i = static_cast<std::size_t>(s.sorted_to_pos[j]);
    s.sub_sorted[static_cast<std::size_t>(
        s.cursor[static_cast<std::size_t>(s.w_pos[i])]++)] =
        s.member_rank[i];
  }
  s.tz_tables.assign(sz, TzTreeScheme::Table{});
  s.tz_labels.assign(sz, TzTreeScheme::Label{});
  for (int slot = 0; slot < r; ++slot) {
    const auto wi = static_cast<std::size_t>(s.roots[static_cast<std::size_t>(slot)]);
    const int off = s.sub_off[wi];
    const int cnt = s.sub_off[wi + 1] - off;
    NORS_CHECK(s.sub_par[static_cast<std::size_t>(off)] == -1);
    TzTreeScheme::build_core(
        g, s.sub_mem.data() + off, s.sub_par.data() + off,
        s.sub_port.data() + off, cnt, /*root_pos=*/0,
        s.sub_sorted.data() + off, s.tz, s.tz_tables.data() + off,
        s.tz_labels.data() + off);
  }

  // Virtual tree T' over subtree slots. parent'(u) = w(p_T(u)); the portal
  // of u is its T-parent. Buckets sorted by child root vertex id (the
  // historical deterministic order; slot 0 is always the tree root).
  s.t_parent_slot.assign(static_cast<std::size_t>(r), -1);
  for (int slot = 1; slot < r; ++slot) {
    const auto wi = static_cast<std::size_t>(s.roots[static_cast<std::size_t>(slot)]);
    const auto portal_pos = static_cast<std::size_t>(s.parent_pos[wi]);
    s.t_parent_slot[static_cast<std::size_t>(slot)] =
        s.slot_of_pos[static_cast<std::size_t>(s.w_pos[portal_pos])];
  }
  s.t_child_off.assign(static_cast<std::size_t>(r) + 1, 0);
  for (int slot = 1; slot < r; ++slot) {
    ++s.t_child_off[static_cast<std::size_t>(
        s.t_parent_slot[static_cast<std::size_t>(slot)]) + 1];
  }
  for (int i = 0; i < r; ++i) {
    s.t_child_off[static_cast<std::size_t>(i) + 1] +=
        s.t_child_off[static_cast<std::size_t>(i)];
  }
  s.t_child_list.resize(static_cast<std::size_t>(r > 0 ? r - 1 : 0));
  s.t_child_cursor.assign(s.t_child_off.begin(), s.t_child_off.end() - 1);
  for (int slot = 1; slot < r; ++slot) {
    const int p = s.t_parent_slot[static_cast<std::size_t>(slot)];
    s.t_child_list[static_cast<std::size_t>(
        s.t_child_cursor[static_cast<std::size_t>(p)]++)] = slot;
  }
  for (int i = 0; i < r; ++i) {
    std::sort(s.t_child_list.begin() + s.t_child_off[static_cast<std::size_t>(i)],
              s.t_child_list.begin() +
                  s.t_child_off[static_cast<std::size_t>(i) + 1],
              [&](int a, int b) {
                return s.order[static_cast<std::size_t>(
                           s.roots[static_cast<std::size_t>(a)])] <
                       s.order[static_cast<std::size_t>(
                           s.roots[static_cast<std::size_t>(b)])];
              });
  }

  // Sizes, heavy child, DFS intervals on T' (all keyed by slot).
  s.t_size.assign(static_cast<std::size_t>(r), 0);
  s.t_heavy.assign(static_cast<std::size_t>(r), -1);
  s.stack.clear();
  if (r > 0) s.stack.push_back({0, 0});
  while (!s.stack.empty()) {
    auto& [v, idx] = s.stack.back();
    const auto vi = static_cast<std::size_t>(v);
    if (idx < s.t_child_off[vi + 1] - s.t_child_off[vi]) {
      ++idx;
      s.stack.push_back(
          {s.t_child_list[static_cast<std::size_t>(s.t_child_off[vi]) +
                          static_cast<std::size_t>(idx) - 1],
           0});
    } else {
      std::int64_t sz_v = 1;
      int heavy = -1;
      std::int64_t best = -1;
      for (int c = s.t_child_off[vi]; c < s.t_child_off[vi + 1]; ++c) {
        const int ch = s.t_child_list[static_cast<std::size_t>(c)];
        sz_v += s.t_size[static_cast<std::size_t>(ch)];
        if (s.t_size[static_cast<std::size_t>(ch)] > best) {
          best = s.t_size[static_cast<std::size_t>(ch)];
          heavy = ch;
        }
      }
      s.t_size[vi] = sz_v;
      s.t_heavy[vi] = heavy;
      s.stack.pop_back();
    }
  }
  s.a_prime.assign(static_cast<std::size_t>(r), 0);
  s.b_prime.assign(static_cast<std::size_t>(r), 0);
  s.t_label.assign(static_cast<std::size_t>(r), {});
  {
    std::int64_t clock = 0;
    s.stack.clear();
    if (r > 0) s.stack.push_back({0, 0});
    while (!s.stack.empty()) {
      auto& [v, idx] = s.stack.back();
      const auto vi = static_cast<std::size_t>(v);
      if (idx == 0) s.a_prime[vi] = clock++;
      if (idx < s.t_child_off[vi + 1] - s.t_child_off[vi]) {
        ++idx;
        const int c =
            s.t_child_list[static_cast<std::size_t>(s.t_child_off[vi]) +
                           static_cast<std::size_t>(idx) - 1];
        const auto ci = static_cast<std::size_t>(c);
        std::vector<GlobalHop> lbl = s.t_label[vi];
        if (c != s.t_heavy[vi]) {
          const auto c_pos =
              static_cast<std::size_t>(s.roots[ci]);  // position of w_i
          const auto portal_pos = static_cast<std::size_t>(s.parent_pos[c_pos]);
          GlobalHop hop;
          hop.vi = s.order[static_cast<std::size_t>(s.roots[vi])];
          hop.wi = s.order[c_pos];
          hop.portal = s.order[portal_pos];
          hop.portal_label = s.tz_labels[static_cast<std::size_t>(
              s.sub_off[static_cast<std::size_t>(s.roots[vi])] +
              s.member_rank[portal_pos])];
          hop.port = g.edge(hop.wi, s.parent_port[c_pos]).rev;
          lbl.push_back(std::move(hop));
        }
        s.t_label[ci] = std::move(lbl);
        s.stack.push_back({c, 0});
      } else {
        s.b_prime[vi] = clock;
        s.stack.pop_back();
      }
    }
  }

  // Per-slot heavy-portal labels, copied out *before* assembly: assembly
  // moves each member's own local label out of the flat arena, and the
  // heavy portal is itself a member. These are the scheme's shared labels
  // (one per slot, not per member — DESIGN.md §9).
  out.slot_heavy_label_.assign(static_cast<std::size_t>(r),
                               TzTreeScheme::Label{});
  for (int slot = 0; slot < r; ++slot) {
    const int heavy_slot = s.t_heavy[static_cast<std::size_t>(slot)];
    if (heavy_slot < 0) continue;
    const auto h_pos =
        static_cast<std::size_t>(s.roots[static_cast<std::size_t>(heavy_slot)]);
    const auto portal_pos = static_cast<std::size_t>(s.parent_pos[h_pos]);
    out.slot_heavy_label_[static_cast<std::size_t>(slot)] =
        s.tz_labels[static_cast<std::size_t>(
            s.sub_off[static_cast<std::size_t>(
                s.roots[static_cast<std::size_t>(slot)])] +
            s.member_rank[portal_pos])];
  }

  // Assemble per-member tables and labels into the vertex-sorted arrays.
  // Each member's local label is consumed exactly once, so it moves out of
  // the flat arena instead of being copied.
  out.members_.resize(sz);
  for (std::size_t j = 0; j < sz; ++j) {
    out.members_[j] = tree.members[static_cast<std::size_t>(s.perm[j])];
  }
  out.info_.assign(sz, NodeInfo{});
  out.labels_.assign(sz, VLabel{});
  for (std::size_t i = 0; i < sz; ++i) {
    const auto wpos = static_cast<std::size_t>(s.w_pos[i]);
    const auto wslot = static_cast<std::size_t>(s.slot_of_pos[wpos]);
    const auto flat =
        static_cast<std::size_t>(s.sub_off[wpos] + s.member_rank[i]);
    NodeInfo ni;
    ni.subtree_root = s.order[wpos];
    ni.local = s.tz_tables[flat];
    ni.a_prime = static_cast<std::int32_t>(s.a_prime[wslot]);
    ni.b_prime = static_cast<std::int32_t>(s.b_prime[wslot]);
    ni.subtree_slot = static_cast<std::int32_t>(wslot);
    const int heavy_slot = s.t_heavy[wslot];
    if (heavy_slot >= 0) {
      const auto h_pos =
          static_cast<std::size_t>(s.roots[static_cast<std::size_t>(heavy_slot)]);
      const auto portal_pos = static_cast<std::size_t>(s.parent_pos[h_pos]);
      ni.heavy_prime = s.order[h_pos];
      ni.heavy_portal = s.order[portal_pos];
      ni.heavy_port = g.edge(ni.heavy_prime, s.parent_port[h_pos]).rev;
    }
    if (s.order[wpos] != tree.root) {
      // At the subtree root, the way "up" in T leaves the subtree.
      ni.up_port = (i == wpos) ? s.parent_port[i] : graph::kNoPort;
    }
    VLabel lbl;
    lbl.a_prime = s.a_prime[wslot];
    lbl.global_light = s.t_label[wslot];
    lbl.local = std::move(s.tz_labels[flat]);
    // The light list was built by appends (capacity ≈ 2× size for any
    // label that extended its parent's); these labels stay resident for
    // the scheme's lifetime, so trade one exact-fit copy for the slack.
    lbl.local.light.shrink_to_fit();
    out.max_label_words_ = std::max(out.max_label_words_, lbl.words());
    const auto sidx =
        static_cast<std::size_t>(s.sorted_of_orig[static_cast<std::size_t>(
            s.orig_pos[i])]);
    out.info_[sidx] = std::move(ni);
    out.labels_[sidx] = std::move(lbl);
  }

  if (sched_out != nullptr) {
    sched_out->order = s.order;
    sched_out->parent_pos = s.parent_pos;
    sched_out->w_pos = s.w_pos;
    sched_out->depth = s.depth;
  }
  return out;
}

std::int32_t DistTreeScheme::next_hop(Vertex x, const VLabel& dest) const {
  const NodeInfo& nx = info(x);
  if (dest.a_prime == nx.a_prime) {
    // Same subtree: pure local interval routing.
    return TzTreeScheme::next_hop(nx.local, dest.local);
  }
  if (dest.a_prime < nx.a_prime || dest.a_prime >= nx.b_prime) {
    // Destination subtree is not below w(x) in T': go up. Inside the
    // subtree that means toward w; at w it means crossing to w's T-parent.
    if (nx.local.parent_port != graph::kNoPort) return nx.local.parent_port;
    NORS_CHECK_MSG(nx.up_port != graph::kNoPort,
                   "route-up requested at the tree root");
    return nx.up_port;
  }
  // Destination subtree is strictly below w(x) in T': find the T'-edge to
  // take — a light entry recorded in the destination label, else heavy.
  for (const auto& hop : dest.global_light) {
    if (hop.vi == nx.subtree_root) {
      const std::int32_t p = TzTreeScheme::next_hop(nx.local, hop.portal_label);
      return p == graph::kNoPort ? hop.port : p;
    }
  }
  NORS_CHECK_MSG(nx.heavy_prime != graph::kNoVertex,
                 "descend requested but w(x) has no T' children");
  const std::int32_t p = TzTreeScheme::next_hop(
      nx.local,
      slot_heavy_label_[static_cast<std::size_t>(nx.subtree_slot)]);
  return p == graph::kNoPort ? nx.heavy_port : p;
}

std::int32_t DistTreeScheme::next_hop_to_root(Vertex x) const {
  const NodeInfo& nx = info(x);
  if (nx.local.parent_port != graph::kNoPort) return nx.local.parent_port;
  return nx.up_port;  // kNoPort at the global root
}

int DistTreeScheme::find(Vertex v) const {
  const auto it = std::lower_bound(members_.begin(), members_.end(), v);
  if (it == members_.end() || *it != v) return -1;
  return static_cast<int>(it - members_.begin());
}

const DistTreeScheme::VLabel& DistTreeScheme::label(Vertex v) const {
  const int i = find(v);
  NORS_CHECK_MSG(i >= 0, "vertex " << v << " not in tree");
  return labels_[static_cast<std::size_t>(i)];
}

const DistTreeScheme::NodeInfo& DistTreeScheme::info(Vertex v) const {
  const int i = find(v);
  NORS_CHECK_MSG(i >= 0, "vertex " << v << " not in tree");
  return info_[static_cast<std::size_t>(i)];
}

const TzTreeScheme::Label& DistTreeScheme::heavy_portal_label(
    Vertex v) const {
  const int i = find(v);
  NORS_CHECK_MSG(i >= 0, "vertex " << v << " not in tree");
  return heavy_portal_label_at(static_cast<std::size_t>(i));
}

DistTreeBatch build_dist_tree_batch(const graph::WeightedGraph& g,
                                    std::vector<TreeSpec> specs,
                                    const DistTreeBatchParams& params,
                                    int bfs_height, util::Rng& rng) {
  DistTreeBatch out;
  const int n = g.n();

  // Overlap s: max number of trees containing a vertex.
  std::vector<int> overlap(static_cast<std::size_t>(n), 0);
  for (const auto& t : specs) {
    for (Vertex v : t.members) ++overlap[static_cast<std::size_t>(v)];
  }
  out.max_overlap = 1;
  for (int o : overlap) out.max_overlap = std::max(out.max_overlap, o);

  // γ = sqrt(n / s) per Remark 3 unless overridden; sample U once.
  const double gamma =
      params.gamma > 0
          ? params.gamma
          : std::sqrt(static_cast<double>(n) /
                      static_cast<double>(out.max_overlap));
  const double p_u = std::min(1.0, gamma / static_cast<double>(n));
  std::vector<char> in_u(static_cast<std::size_t>(n), 0);
  for (Vertex v = 0; v < n; ++v) in_u[static_cast<std::size_t>(v)] =
      rng.bernoulli(p_u) ? 1 : 0;

  // Per-tree builds: independent, so they run on the worker pool with one
  // scratch arena per thread. Every result lands in its spec's slot and all
  // folds below run serially in spec order, so schemes, stats and ledger
  // are bit-identical for any pool size (DESIGN.md §7).
  out.schemes.resize(specs.size());
  std::vector<TreeSchedule> sched(specs.size());
  const int nthreads = static_cast<int>(std::min<std::size_t>(
      static_cast<std::size_t>(util::resolve_threads(params.threads)),
      std::max<std::size_t>(specs.size(), 1)));
  std::vector<TreeBuildScratch> scratches(
      static_cast<std::size_t>(std::max(1, nthreads)));
  util::parallel_for(nthreads, specs.size(), [&](int t, std::size_t i) {
    out.schemes[i] = DistTreeScheme::build(
        g, specs[i], in_u, scratches[static_cast<std::size_t>(t)], &sched[i]);
    // The spec is consumed: release its storage now so the spec arrays and
    // the finished schemes never coexist at the batch's RSS peak.
    specs[i] = TreeSpec{};
  });

  // Serial fold in spec order: the running max_label_words enters each
  // tree's phase-2 charge, so the order is part of the ledger contract.
  std::int64_t phase2_words = 0;
  std::int64_t max_label_words = 1;
  for (const auto& s : out.schemes) {
    out.max_subtree_depth =
        std::max(out.max_subtree_depth, s.max_subtree_depth());
    out.u_total += s.u_count();
    max_label_words = std::max(max_label_words, s.max_label_words());
    // Phase 2 broadcast: two messages per T' node (report edge + receive
    // table/label), each of O(log² n) words.
    phase2_words += 2LL * s.u_count() * max_label_words;
  }

  // Remark-3 schedule verification: each subtree broadcast occupies its
  // edges at stage start(w)+depth(edge); count collisions per (edge, stage).
  // The per-tree structure (BFS order, subtree roots, depths) came out of
  // the builds above; an attempt only redraws the start stages.
  const std::int64_t ln_n = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(std::log(std::max(2, n))));
  std::int64_t range = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(std::sqrt(static_cast<double>(n) *
                                             out.max_overlap)) *
             ln_n);
  std::int64_t stages = 0;
  // Open-addressed (edge, stage) collision counter: exact keys with linear
  // probing over a power-of-two table at ≤ 50% load — the verifier inserts
  // one key per forest edge per attempt, so probe cost dominates, not
  // rehash/allocation (this loop used to be the batch's hash hotspot).
  struct LoadSlot {
    std::int64_t edge = 0;  // (child << 32) | parent; 0 is impossible
    std::int64_t stage = 0;
    std::int32_t cnt = 0;
  };
  std::size_t total_edges = 0;
  for (const TreeSchedule& ts : sched) total_edges += ts.order.size();
  std::size_t table_sz = 64;
  while (table_sz < 2 * total_edges + 1) table_sz *= 2;
  std::vector<LoadSlot> load(table_sz);
  const auto probe_count = [&](std::int64_t edge, std::int64_t stage) {
    std::uint64_t h = static_cast<std::uint64_t>(edge) * 0x9E3779B97F4A7C15ull;
    h ^= static_cast<std::uint64_t>(stage) + 0x9E3779B97F4A7C15ull +
         (h << 6) + (h >> 2);
    std::size_t at = static_cast<std::size_t>(h) & (table_sz - 1);
    for (;;) {
      LoadSlot& s = load[at];
      if (s.cnt == 0) {
        s.edge = edge;
        s.stage = stage;
        s.cnt = 1;
        return 1;
      }
      if (s.edge == edge && s.stage == stage) return ++s.cnt;
      at = (at + 1) & (table_sz - 1);
    }
  };
  std::vector<std::int64_t> start;
  for (int attempt = 0;; ++attempt) {
    NORS_CHECK_MSG(attempt < 20, "staged schedule failed to decongest");
    if (attempt > 0) std::fill(load.begin(), load.end(), LoadSlot{});
    bool ok = true;
    stages = 0;
    util::Rng sched_rng = rng.fork(static_cast<std::uint64_t>(attempt) + 99);
    for (const TreeSchedule& ts : sched) {
      const std::size_t sz = ts.order.size();
      start.assign(sz, 0);
      for (std::size_t i = 0; i < sz; ++i) {
        if (ts.w_pos[i] == static_cast<int>(i)) {
          start[i] = static_cast<std::int64_t>(
              sched_rng.uniform(static_cast<std::uint64_t>(range)));
        } else {
          const Vertex v = ts.order[i];
          const Vertex p =
              ts.order[static_cast<std::size_t>(ts.parent_pos[i])];
          const std::int64_t stage =
              start[static_cast<std::size_t>(ts.w_pos[i])] + ts.depth[i];
          stages = std::max(stages, stage + 1);
          // Edge identity: (child, parent) — the same child vertex can hang
          // off different parents in different trees.
          const std::int64_t edge =
              (static_cast<std::int64_t>(v) << 32) |
              static_cast<std::uint32_t>(p);
          if (probe_count(edge, stage) > params.alpha) {
            ok = false;
            break;
          }
        }
      }
      if (!ok) break;
    }
    if (ok) break;
    range *= 2;
  }

  // Phases 0+1 (start-time dissemination, size convergecast, parallel DFS,
  // local label distribution): four staged passes, the label pass carrying
  // O(log n)-word payloads.
  const std::int64_t label_factor =
      (max_label_words + congest::kMaxWords - 1) / congest::kMaxWords;
  const std::int64_t staged_rounds =
      static_cast<std::int64_t>(params.alpha) * stages * (3 + label_factor);
  out.ledger.add("treeroute/phase1 staged subtree passes",
                 congest::CostKind::kAccounted, staged_rounds, 0,
                 "alpha=" + std::to_string(params.alpha) +
                     " stages=" + std::to_string(stages));

  // Phase 2: global broadcasts over the BFS backbone (Lemma 1).
  const std::int64_t phase2_msgs =
      (phase2_words + congest::kMaxWords - 1) / congest::kMaxWords;
  out.ledger.add(
      "treeroute/phase2 global broadcast",
      congest::CostKind::kAccounted,
      primitives::pipelined_broadcast_rounds(phase2_msgs, bfs_height),
      phase2_msgs, "u_total=" + std::to_string(out.u_total));
  return out;
}

}  // namespace nors::treeroute
