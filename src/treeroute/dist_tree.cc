#include "treeroute/dist_tree.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <queue>

#include "primitives/pipelined.h"

namespace nors::treeroute {

namespace {

using graph::Vertex;

/// BFS order of a TreeSpec from its root (parents point rootward).
std::vector<Vertex> bfs_order(const TreeSpec& t) {
  std::unordered_map<Vertex, std::vector<Vertex>> children;
  children.reserve(t.members.size());
  for (Vertex v : t.members) children[v];
  for (Vertex v : t.members) {
    if (v == t.root) continue;
    children[t.parent.at(v)].push_back(v);
  }
  for (auto& [v, ch] : children) std::sort(ch.begin(), ch.end());
  std::vector<Vertex> order;
  order.reserve(t.members.size());
  std::queue<Vertex> q;
  q.push(t.root);
  while (!q.empty()) {
    const Vertex v = q.front();
    q.pop();
    order.push_back(v);
    for (Vertex c : children[v]) q.push(c);
  }
  NORS_CHECK_MSG(order.size() == t.members.size(),
                 "TreeSpec is not a single tree rooted at " << t.root);
  return order;
}

}  // namespace

DistTreeScheme DistTreeScheme::build(const graph::WeightedGraph& g,
                                     const TreeSpec& tree,
                                     const std::vector<char>& in_u) {
  DistTreeScheme s;
  s.root_ = tree.root;
  const std::vector<Vertex> order = bfs_order(tree);

  // Subtree root w(v): nearest ancestor (inclusive) in U(T) = (U ∩ T) ∪ {z}.
  std::unordered_map<Vertex, Vertex> w_of;
  std::unordered_map<Vertex, int> depth_in_subtree;
  w_of.reserve(order.size());
  for (Vertex v : order) {
    if (v == tree.root || in_u[static_cast<std::size_t>(v)]) {
      w_of[v] = v;
      depth_in_subtree[v] = 0;
    } else {
      const Vertex p = tree.parent.at(v);
      w_of[v] = w_of.at(p);
      depth_in_subtree[v] = depth_in_subtree.at(p) + 1;
      s.max_subtree_depth_ =
          std::max(s.max_subtree_depth_, depth_in_subtree[v]);
    }
  }

  // Members of each subtree, in BFS order (so parents precede children).
  std::map<Vertex, std::vector<Vertex>> subtree_members;
  for (Vertex v : order) subtree_members[w_of.at(v)].push_back(v);
  s.u_count_ = static_cast<int>(subtree_members.size());

  // Local TZ scheme per subtree.
  std::unordered_map<Vertex, TzTreeScheme> local;
  for (const auto& [w, mem] : subtree_members) {
    std::unordered_map<Vertex, Vertex> par;
    std::unordered_map<Vertex, std::int32_t> ports;
    for (Vertex v : mem) {
      if (v == w) continue;
      par[v] = tree.parent.at(v);
      ports[v] = tree.parent_port.at(v);
    }
    local.emplace(w, TzTreeScheme::build(g, mem, par, ports, w));
  }

  // Virtual tree T' over subtree roots. parent'(u) = w(p_T(u)); the portal
  // of u is its T-parent.
  std::unordered_map<Vertex, std::vector<Vertex>> t_children;
  std::unordered_map<Vertex, Vertex> t_parent;
  for (const auto& [w, mem] : subtree_members) {
    t_children[w];
    if (w == tree.root) continue;
    const Vertex portal = tree.parent.at(w);
    t_parent[w] = w_of.at(portal);
    t_children[w_of.at(portal)].push_back(w);
  }
  for (auto& [w, ch] : t_children) std::sort(ch.begin(), ch.end());

  // Sizes, heavy child, DFS intervals on T'.
  std::unordered_map<Vertex, std::int64_t> t_size;
  std::unordered_map<Vertex, Vertex> t_heavy;
  {
    std::vector<std::pair<Vertex, std::size_t>> stack{{tree.root, 0}};
    while (!stack.empty()) {
      auto [v, idx] = stack.back();
      auto& ch = t_children[v];
      if (idx < ch.size()) {
        ++stack.back().second;
        stack.push_back({ch[idx], 0});
      } else {
        std::int64_t sz = 1;
        Vertex heavy = graph::kNoVertex;
        std::int64_t best = -1;
        for (Vertex c : ch) {
          sz += t_size[c];
          if (t_size[c] > best) {
            best = t_size[c];
            heavy = c;
          }
        }
        t_size[v] = sz;
        t_heavy[v] = heavy;
        stack.pop_back();
      }
    }
  }
  std::unordered_map<Vertex, std::int64_t> a_prime, b_prime;
  std::unordered_map<Vertex, std::vector<GlobalHop>> t_label;
  {
    std::int64_t clock = 0;
    std::vector<std::pair<Vertex, std::size_t>> stack{{tree.root, 0}};
    t_label[tree.root] = {};
    while (!stack.empty()) {
      auto [v, idx] = stack.back();
      auto& ch = t_children[v];
      if (idx == 0) a_prime[v] = clock++;
      if (idx < ch.size()) {
        ++stack.back().second;
        const Vertex c = ch[idx];
        std::vector<GlobalHop> lbl = t_label[v];
        if (c != t_heavy[v]) {
          GlobalHop hop;
          hop.vi = v;
          hop.wi = c;
          hop.portal = tree.parent.at(c);
          hop.portal_label = local.at(v).label(hop.portal);
          hop.port = g.edge(c, tree.parent_port.at(c)).rev;
          lbl.push_back(std::move(hop));
        }
        t_label[c] = std::move(lbl);
        stack.push_back({c, 0});
      } else {
        b_prime[v] = clock;
        stack.pop_back();
      }
    }
  }

  // Assemble per-member tables and labels.
  for (Vertex v : order) {
    const Vertex w = w_of.at(v);
    NodeInfo ni;
    ni.subtree_root = w;
    ni.local = local.at(w).table(v);
    ni.a_prime = a_prime.at(w);
    ni.b_prime = b_prime.at(w);
    ni.heavy_prime = t_heavy.at(w);
    if (ni.heavy_prime != graph::kNoVertex) {
      ni.heavy_portal = tree.parent.at(ni.heavy_prime);
      ni.heavy_portal_label = local.at(w).label(ni.heavy_portal);
      ni.heavy_port =
          g.edge(ni.heavy_prime, tree.parent_port.at(ni.heavy_prime)).rev;
    }
    if (w != tree.root) {
      // At the subtree root, the way "up" in T leaves the subtree.
      ni.up_port = (v == w) ? tree.parent_port.at(w) : graph::kNoPort;
    }
    s.info_[v] = std::move(ni);

    VLabel lbl;
    lbl.a_prime = a_prime.at(w);
    lbl.global_light = t_label.at(w);
    lbl.local = local.at(w).label(v);
    s.labels_[v] = std::move(lbl);
  }
  return s;
}

std::int32_t DistTreeScheme::next_hop(Vertex x, const VLabel& dest) const {
  const NodeInfo& nx = info(x);
  if (dest.a_prime == nx.a_prime) {
    // Same subtree: pure local interval routing.
    return TzTreeScheme::next_hop(nx.local, dest.local);
  }
  if (dest.a_prime < nx.a_prime || dest.a_prime >= nx.b_prime) {
    // Destination subtree is not below w(x) in T': go up. Inside the
    // subtree that means toward w; at w it means crossing to w's T-parent.
    if (nx.local.parent_port != graph::kNoPort) return nx.local.parent_port;
    NORS_CHECK_MSG(nx.up_port != graph::kNoPort,
                   "route-up requested at the tree root");
    return nx.up_port;
  }
  // Destination subtree is strictly below w(x) in T': find the T'-edge to
  // take — a light entry recorded in the destination label, else heavy.
  for (const auto& hop : dest.global_light) {
    if (hop.vi == nx.subtree_root) {
      const std::int32_t p = TzTreeScheme::next_hop(nx.local, hop.portal_label);
      return p == graph::kNoPort ? hop.port : p;
    }
  }
  NORS_CHECK_MSG(nx.heavy_prime != graph::kNoVertex,
                 "descend requested but w(x) has no T' children");
  const std::int32_t p =
      TzTreeScheme::next_hop(nx.local, nx.heavy_portal_label);
  return p == graph::kNoPort ? nx.heavy_port : p;
}

std::int32_t DistTreeScheme::next_hop_to_root(Vertex x) const {
  const NodeInfo& nx = info(x);
  if (nx.local.parent_port != graph::kNoPort) return nx.local.parent_port;
  return nx.up_port;  // kNoPort at the global root
}

const DistTreeScheme::VLabel& DistTreeScheme::label(Vertex v) const {
  auto it = labels_.find(v);
  NORS_CHECK_MSG(it != labels_.end(), "vertex " << v << " not in tree");
  return it->second;
}

const DistTreeScheme::NodeInfo& DistTreeScheme::info(Vertex v) const {
  auto it = info_.find(v);
  NORS_CHECK_MSG(it != info_.end(), "vertex " << v << " not in tree");
  return it->second;
}

DistTreeBatch build_dist_tree_batch(const graph::WeightedGraph& g,
                                    const std::vector<TreeSpec>& specs,
                                    const DistTreeBatchParams& params,
                                    int bfs_height, util::Rng& rng) {
  DistTreeBatch out;
  const int n = g.n();

  // Overlap s: max number of trees containing a vertex.
  std::vector<int> overlap(static_cast<std::size_t>(n), 0);
  for (const auto& t : specs) {
    for (Vertex v : t.members) ++overlap[static_cast<std::size_t>(v)];
  }
  out.max_overlap = 1;
  for (int o : overlap) out.max_overlap = std::max(out.max_overlap, o);

  // γ = sqrt(n / s) per Remark 3 unless overridden; sample U once.
  const double gamma =
      params.gamma > 0
          ? params.gamma
          : std::sqrt(static_cast<double>(n) /
                      static_cast<double>(out.max_overlap));
  const double p_u = std::min(1.0, gamma / static_cast<double>(n));
  std::vector<char> in_u(static_cast<std::size_t>(n), 0);
  for (Vertex v = 0; v < n; ++v) in_u[static_cast<std::size_t>(v)] =
      rng.bernoulli(p_u) ? 1 : 0;

  out.schemes.reserve(specs.size());
  std::int64_t phase2_words = 0;
  std::int64_t max_label_words = 1;
  for (const auto& t : specs) {
    out.schemes.push_back(DistTreeScheme::build(g, t, in_u));
    const auto& s = out.schemes.back();
    out.max_subtree_depth =
        std::max(out.max_subtree_depth, s.max_subtree_depth());
    out.u_total += s.u_count();
    for (Vertex v : t.members) {
      max_label_words = std::max(max_label_words, s.label(v).words());
    }
    // Phase 2 broadcast: two messages per T' node (report edge + receive
    // table/label), each of O(log² n) words.
    phase2_words += 2LL * s.u_count() * max_label_words;
  }

  // Remark-3 schedule verification: each subtree broadcast occupies its
  // edges at stage start(w)+depth(edge); count collisions per (edge, stage).
  const std::int64_t ln_n = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(std::log(std::max(2, n))));
  std::int64_t range = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(std::sqrt(static_cast<double>(n) *
                                             out.max_overlap)) *
             ln_n);
  std::int64_t stages = 0;
  for (int attempt = 0;; ++attempt) {
    NORS_CHECK_MSG(attempt < 20, "staged schedule failed to decongest");
    std::map<std::pair<std::int64_t, std::int64_t>, int> load;  // (edge,stage)
    bool ok = true;
    stages = 0;
    util::Rng sched_rng = rng.fork(static_cast<std::uint64_t>(attempt) + 99);
    for (const auto& t : specs) {
      // Recompute subtree membership/depths for scheduling.
      const std::vector<Vertex> order = bfs_order(t);
      std::unordered_map<Vertex, Vertex> w_of;
      std::unordered_map<Vertex, std::int64_t> depth;
      std::unordered_map<Vertex, std::int64_t> start;
      for (Vertex v : order) {
        if (v == t.root || in_u[static_cast<std::size_t>(v)]) {
          w_of[v] = v;
          depth[v] = 0;
          start[v] = static_cast<std::int64_t>(
              sched_rng.uniform(static_cast<std::uint64_t>(range)));
        } else {
          const Vertex p = t.parent.at(v);
          w_of[v] = w_of.at(p);
          depth[v] = depth.at(p) + 1;
          const std::int64_t stage = start.at(w_of.at(v)) + depth.at(v);
          stages = std::max(stages, stage + 1);
          // Edge identity: (child, parent) — the same child vertex can hang
          // off different parents in different trees.
          const auto key = std::make_pair(
              (static_cast<std::int64_t>(v) << 32) |
                  static_cast<std::uint32_t>(p),
              stage);
          if (++load[key] > params.alpha) {
            ok = false;
            break;
          }
        }
      }
      if (!ok) break;
    }
    if (ok) break;
    range *= 2;
  }

  // Phases 0+1 (start-time dissemination, size convergecast, parallel DFS,
  // local label distribution): four staged passes, the label pass carrying
  // O(log n)-word payloads.
  const std::int64_t label_factor =
      (max_label_words + congest::kMaxWords - 1) / congest::kMaxWords;
  const std::int64_t staged_rounds =
      static_cast<std::int64_t>(params.alpha) * stages * (3 + label_factor);
  out.ledger.add("treeroute/phase1 staged subtree passes",
                 congest::CostKind::kAccounted, staged_rounds, 0,
                 "alpha=" + std::to_string(params.alpha) +
                     " stages=" + std::to_string(stages));

  // Phase 2: global broadcasts over the BFS backbone (Lemma 1).
  const std::int64_t phase2_msgs =
      (phase2_words + congest::kMaxWords - 1) / congest::kMaxWords;
  out.ledger.add(
      "treeroute/phase2 global broadcast",
      congest::CostKind::kAccounted,
      primitives::pipelined_broadcast_rounds(phase2_msgs, bfs_height),
      phase2_msgs, "u_total=" + std::to_string(out.u_total));
  return out;
}

}  // namespace nors::treeroute
