#pragma once

#include <unordered_map>

#include "treeroute/dist_tree.h"

namespace nors::treeroute {

/// Message-level execution of the paper's §6 Phase 1 on the CONGEST
/// simulator: (a) subtree-size convergecast inside every forest subtree
/// T_w in parallel, (b) parallel DFS — each vertex, knowing its children's
/// sizes, hands every child its [a,b) interval in one round.
///
/// The interval assignment replicates the centralized TzTreeScheme order
/// (heavy child first, then ascending), so the simulated intervals must
/// equal the ones DistTreeScheme::build computes — the test for the
/// accounted Phase-1 charge.
struct Phase1SimResult {
  std::int64_t rounds = 0;       // total simulated rounds (both passes)
  std::int64_t messages = 0;
  std::unordered_map<graph::Vertex, std::int64_t> a;  // DFS entry times
  std::unordered_map<graph::Vertex, std::int64_t> b;  // DFS exit times
  std::unordered_map<graph::Vertex, std::int64_t> size;  // subtree sizes
};

Phase1SimResult simulate_phase1(const graph::WeightedGraph& g,
                                const TreeSpec& tree,
                                const std::vector<char>& in_u);

}  // namespace nors::treeroute
