#include "treeroute/tz_tree.h"

#include <algorithm>

namespace nors::treeroute {

namespace {

using graph::Vertex;

}  // namespace

TzTreeScheme TzTreeScheme::build(
    const graph::WeightedGraph& g, const std::vector<Vertex>& members,
    const std::unordered_map<Vertex, Vertex>& parent,
    const std::unordered_map<Vertex, std::int32_t>& parent_port,
    Vertex root) {
  const std::size_t sz = members.size();
  std::vector<Vertex> parent_of(sz, graph::kNoVertex);
  std::vector<std::int32_t> port_of(sz, graph::kNoPort);
  for (std::size_t i = 0; i < sz; ++i) {
    const Vertex v = members[i];
    if (v == root) continue;
    auto it = parent.find(v);
    NORS_CHECK_MSG(it != parent.end(), "member " << v << " has no parent");
    parent_of[i] = it->second;
    auto pit = parent_port.find(v);
    NORS_CHECK_MSG(pit != parent_port.end(),
                   "member " << v << " has no parent port");
    port_of[i] = pit->second;
  }
  return build(g, members, parent_of, port_of, root);
}

TzTreeScheme TzTreeScheme::build(const graph::WeightedGraph& g,
                                 const std::vector<Vertex>& members,
                                 const std::vector<Vertex>& parent_of,
                                 const std::vector<std::int32_t>& port_of,
                                 Vertex root) {
  NORS_CHECK(!members.empty());
  NORS_CHECK(members.size() == parent_of.size() &&
             members.size() == port_of.size());
  TzTreeScheme s;
  s.root_ = root;
  s.members_ = members;
  const auto sz = static_cast<int>(members.size());

  // Local indexing: everything below works on positions into `members`.
  std::unordered_map<Vertex, int> pos;
  pos.reserve(members.size() * 2);
  for (int i = 0; i < sz; ++i) pos.emplace(members[i], i);
  int root_pos = -1;
  {
    auto it = pos.find(root);
    if (it != pos.end()) root_pos = it->second;
  }
  std::vector<int> par(static_cast<std::size_t>(sz), -1);
  for (int i = 0; i < sz; ++i) {
    if (members[static_cast<std::size_t>(i)] == root) continue;
    auto it = pos.find(parent_of[static_cast<std::size_t>(i)]);
    // A parent outside the member set leaves this node unreachable from the
    // root; the reachability check below reports it.
    par[static_cast<std::size_t>(i)] =
        it == pos.end() ? -1 : it->second;
  }

  // Children in CSR layout, each bucket sorted by child vertex id (the
  // historical deterministic order).
  std::vector<int> child_cnt(static_cast<std::size_t>(sz), 0);
  for (int i = 0; i < sz; ++i) {
    if (i != root_pos && par[static_cast<std::size_t>(i)] >= 0) {
      ++child_cnt[static_cast<std::size_t>(par[static_cast<std::size_t>(i)])];
    }
  }
  std::vector<int> child_off(static_cast<std::size_t>(sz) + 1, 0);
  for (int i = 0; i < sz; ++i) {
    child_off[static_cast<std::size_t>(i) + 1] =
        child_off[static_cast<std::size_t>(i)] +
        child_cnt[static_cast<std::size_t>(i)];
  }
  std::vector<int> child_list(static_cast<std::size_t>(child_off.back()));
  {
    std::vector<int> cursor(child_off.begin(), child_off.end() - 1);
    for (int i = 0; i < sz; ++i) {
      const int p = par[static_cast<std::size_t>(i)];
      if (i != root_pos && p >= 0) {
        child_list[static_cast<std::size_t>(cursor[static_cast<std::size_t>(p)]++)] = i;
      }
    }
  }
  for (int i = 0; i < sz; ++i) {
    std::sort(child_list.begin() + child_off[static_cast<std::size_t>(i)],
              child_list.begin() + child_off[static_cast<std::size_t>(i) + 1],
              [&](int a, int b) {
                return members[static_cast<std::size_t>(a)] <
                       members[static_cast<std::size_t>(b)];
              });
  }

  // BFS reachability + order from the root; doubles as the tree check.
  std::vector<int> bfs;
  bfs.reserve(static_cast<std::size_t>(sz));
  if (root_pos >= 0) {
    bfs.push_back(root_pos);
    for (std::size_t h = 0; h < bfs.size(); ++h) {
      const int v = bfs[h];
      for (int c = child_off[static_cast<std::size_t>(v)];
           c < child_off[static_cast<std::size_t>(v) + 1]; ++c) {
        bfs.push_back(child_list[static_cast<std::size_t>(c)]);
      }
    }
  }
  NORS_CHECK_MSG(static_cast<int>(bfs.size()) == sz,
                 "parent pointers do not form one tree rooted at " << root);

  // Subtree sizes (children precede parents in reverse BFS order), then the
  // heavy child: the smallest-id child of maximal size, moved to the front
  // of its bucket by a single swap — the historical order the DFS visits.
  std::vector<std::int64_t> size(static_cast<std::size_t>(sz), 1);
  for (std::size_t h = bfs.size(); h-- > 1;) {
    const int v = bfs[h];
    size[static_cast<std::size_t>(par[static_cast<std::size_t>(v)])] +=
        size[static_cast<std::size_t>(v)];
  }
  std::vector<int> heavy(static_cast<std::size_t>(sz), -1);
  for (int i = 0; i < sz; ++i) {
    std::int64_t best = -1;
    int at = -1;
    for (int c = child_off[static_cast<std::size_t>(i)];
         c < child_off[static_cast<std::size_t>(i) + 1]; ++c) {
      const int ch = child_list[static_cast<std::size_t>(c)];
      if (size[static_cast<std::size_t>(ch)] > best) {
        best = size[static_cast<std::size_t>(ch)];
        heavy[static_cast<std::size_t>(i)] = ch;
        at = c;
      }
    }
    if (at >= 0) {
      std::swap(child_list[static_cast<std::size_t>(
                    child_off[static_cast<std::size_t>(i)])],
                child_list[static_cast<std::size_t>(at)]);
    }
  }

  // DFS entry/exit times and label construction (iterative pre-order; the
  // label of a child extends the parent's label by one light entry unless
  // the child is heavy).
  std::vector<Table> tables(static_cast<std::size_t>(sz));
  std::vector<Label> labels(static_cast<std::size_t>(sz));
  std::int64_t clock = 0;
  {
    std::vector<std::pair<int, int>> stack{{root_pos, 0}};
    while (!stack.empty()) {
      auto& [v, idx] = stack.back();
      const std::size_t vi = static_cast<std::size_t>(v);
      if (idx == 0) {
        Table t;
        t.self = members[vi];
        if (v != root_pos) {
          t.parent = parent_of[vi];
          t.parent_port = port_of[vi];
        }
        t.a = clock++;
        tables[vi] = t;
      }
      const int ci = child_off[vi] + idx;
      if (ci < child_off[vi + 1]) {
        ++idx;
        const int c = child_list[static_cast<std::size_t>(ci)];
        Label lc = labels[vi];
        if (c != heavy[vi]) {
          // Port at v toward c: reverse of c's parent_port.
          lc.light.emplace_back(
              members[vi],
              g.edge(members[static_cast<std::size_t>(c)],
                     port_of[static_cast<std::size_t>(c)])
                  .rev);
        }
        labels[static_cast<std::size_t>(c)] = std::move(lc);
        stack.push_back({c, 0});
      } else {
        tables[vi].b = clock;
        stack.pop_back();
      }
    }
  }
  for (int i = 0; i < sz; ++i) {
    const std::size_t vi = static_cast<std::size_t>(i);
    labels[vi].a = tables[vi].a;
    const int h = heavy[vi];
    if (h >= 0) {
      tables[vi].heavy = members[static_cast<std::size_t>(h)];
      tables[vi].heavy_port =
          g.edge(members[static_cast<std::size_t>(h)],
                 port_of[static_cast<std::size_t>(h)])
              .rev;
    }
  }

  s.tables_.reserve(members.size() * 2);
  s.labels_.reserve(members.size() * 2);
  for (int i = 0; i < sz; ++i) {
    const std::size_t vi = static_cast<std::size_t>(i);
    s.tables_.emplace(members[vi], std::move(tables[vi]));
    s.labels_.emplace(members[vi], std::move(labels[vi]));
  }
  return s;
}

std::int32_t TzTreeScheme::next_hop(const Table& tx, const Label& dest) {
  if (dest.a == tx.a) return graph::kNoPort;  // arrived
  if (dest.a < tx.a || dest.a >= tx.b) {
    NORS_CHECK_MSG(tx.parent_port != graph::kNoPort,
                   "destination is outside this tree");
    return tx.parent_port;
  }
  // Destination is in our subtree: take the light edge recorded at us, or
  // fall through to the heavy child.
  for (const auto& [w, port] : dest.light) {
    if (w == tx.self) return port;
  }
  NORS_CHECK_MSG(tx.heavy_port != graph::kNoPort,
                 "interval claims a descendant but no child exists");
  return tx.heavy_port;
}

const TzTreeScheme::Table& TzTreeScheme::table(Vertex v) const {
  auto it = tables_.find(v);
  NORS_CHECK_MSG(it != tables_.end(), "vertex " << v << " not in tree");
  return it->second;
}

const TzTreeScheme::Label& TzTreeScheme::label(Vertex v) const {
  auto it = labels_.find(v);
  NORS_CHECK_MSG(it != labels_.end(), "vertex " << v << " not in tree");
  return it->second;
}

}  // namespace nors::treeroute
