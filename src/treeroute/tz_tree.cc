#include "treeroute/tz_tree.h"

#include <algorithm>

namespace nors::treeroute {

namespace {

using graph::Vertex;

}  // namespace

TzTreeScheme TzTreeScheme::build(
    const graph::WeightedGraph& g, const std::vector<Vertex>& members,
    const std::unordered_map<Vertex, Vertex>& parent,
    const std::unordered_map<Vertex, std::int32_t>& parent_port,
    Vertex root) {
  const std::size_t sz = members.size();
  std::vector<Vertex> parent_of(sz, graph::kNoVertex);
  std::vector<std::int32_t> port_of(sz, graph::kNoPort);
  for (std::size_t i = 0; i < sz; ++i) {
    const Vertex v = members[i];
    if (v == root) continue;
    auto it = parent.find(v);
    NORS_CHECK_MSG(it != parent.end(), "member " << v << " has no parent");
    parent_of[i] = it->second;
    auto pit = parent_port.find(v);
    NORS_CHECK_MSG(pit != parent_port.end(),
                   "member " << v << " has no parent port");
    port_of[i] = pit->second;
  }
  return build(g, members, parent_of, port_of, root);
}

void TzTreeScheme::build_core(const graph::WeightedGraph& g,
                              const Vertex* members, const int* par_pos,
                              const std::int32_t* port_of, int sz,
                              int root_pos, const int* sorted_pos,
                              BuildScratch& s, Table* tables, Label* labels) {
  // Children in CSR layout; filling positions in sorted-vertex order leaves
  // every bucket sorted by child vertex id (the historical deterministic
  // order).
  s.child_cnt.assign(static_cast<std::size_t>(sz), 0);
  for (int i = 0; i < sz; ++i) {
    if (i != root_pos && par_pos[i] >= 0) {
      ++s.child_cnt[static_cast<std::size_t>(par_pos[i])];
    }
  }
  s.child_off.assign(static_cast<std::size_t>(sz) + 1, 0);
  for (int i = 0; i < sz; ++i) {
    s.child_off[static_cast<std::size_t>(i) + 1] =
        s.child_off[static_cast<std::size_t>(i)] +
        s.child_cnt[static_cast<std::size_t>(i)];
  }
  s.child_list.resize(static_cast<std::size_t>(
      s.child_off[static_cast<std::size_t>(sz)]));
  s.cursor.assign(s.child_off.begin(), s.child_off.end() - 1);
  for (int si = 0; si < sz; ++si) {
    const int i = sorted_pos[si];
    const int p = par_pos[i];
    if (i != root_pos && p >= 0) {
      s.child_list[static_cast<std::size_t>(
          s.cursor[static_cast<std::size_t>(p)]++)] = i;
    }
  }

  // BFS reachability + order from the root; doubles as the tree check.
  s.bfs.clear();
  s.bfs.reserve(static_cast<std::size_t>(sz));
  if (root_pos >= 0) {
    s.bfs.push_back(root_pos);
    for (std::size_t h = 0; h < s.bfs.size(); ++h) {
      const int v = s.bfs[h];
      for (int c = s.child_off[static_cast<std::size_t>(v)];
           c < s.child_off[static_cast<std::size_t>(v) + 1]; ++c) {
        s.bfs.push_back(s.child_list[static_cast<std::size_t>(c)]);
      }
    }
  }
  NORS_CHECK_MSG(static_cast<int>(s.bfs.size()) == sz,
                 "parent pointers do not form one tree rooted at position "
                     << root_pos);

  // Subtree sizes (children precede parents in reverse BFS order), then the
  // heavy child: the smallest-id child of maximal size, moved to the front
  // of its bucket by a single swap — the historical order the DFS visits.
  s.size.assign(static_cast<std::size_t>(sz), 1);
  for (std::size_t h = s.bfs.size(); h-- > 1;) {
    const int v = s.bfs[h];
    s.size[static_cast<std::size_t>(par_pos[v])] +=
        s.size[static_cast<std::size_t>(v)];
  }
  s.heavy.assign(static_cast<std::size_t>(sz), -1);
  for (int i = 0; i < sz; ++i) {
    std::int64_t best = -1;
    int at = -1;
    for (int c = s.child_off[static_cast<std::size_t>(i)];
         c < s.child_off[static_cast<std::size_t>(i) + 1]; ++c) {
      const int ch = s.child_list[static_cast<std::size_t>(c)];
      if (s.size[static_cast<std::size_t>(ch)] > best) {
        best = s.size[static_cast<std::size_t>(ch)];
        s.heavy[static_cast<std::size_t>(i)] = ch;
        at = c;
      }
    }
    if (at >= 0) {
      std::swap(s.child_list[static_cast<std::size_t>(
                    s.child_off[static_cast<std::size_t>(i)])],
                s.child_list[static_cast<std::size_t>(at)]);
    }
  }

  // DFS entry/exit times and label construction (iterative pre-order; the
  // label of a child extends the parent's label by one light entry unless
  // the child is heavy).
  std::int64_t clock = 0;
  s.stack.clear();
  s.stack.push_back({root_pos, 0});
  while (!s.stack.empty()) {
    auto& [v, idx] = s.stack.back();
    const std::size_t vi = static_cast<std::size_t>(v);
    if (idx == 0) {
      Table t;
      t.self = members[vi];
      if (v != root_pos) {
        t.parent = members[static_cast<std::size_t>(par_pos[vi])];
        t.parent_port = port_of[vi];
      }
      t.a = clock++;
      tables[vi] = t;
    }
    const int ci = s.child_off[vi] + idx;
    if (ci < s.child_off[vi + 1]) {
      ++idx;
      const int c = s.child_list[static_cast<std::size_t>(ci)];
      Label lc = labels[vi];
      if (c != s.heavy[vi]) {
        // Port at v toward c: reverse of c's parent_port.
        lc.light.emplace_back(
            members[vi],
            g.edge(members[static_cast<std::size_t>(c)],
                   port_of[static_cast<std::size_t>(c)])
                .rev);
      }
      labels[static_cast<std::size_t>(c)] = std::move(lc);
      s.stack.push_back({c, 0});
    } else {
      tables[vi].b = clock;
      s.stack.pop_back();
    }
  }
  for (int i = 0; i < sz; ++i) {
    const std::size_t vi = static_cast<std::size_t>(i);
    labels[vi].a = tables[vi].a;
    const int h = s.heavy[vi];
    if (h >= 0) {
      tables[vi].heavy = members[static_cast<std::size_t>(h)];
      tables[vi].heavy_port =
          g.edge(members[static_cast<std::size_t>(h)],
                 port_of[static_cast<std::size_t>(h)])
              .rev;
    }
  }
}

TzTreeScheme TzTreeScheme::build(const graph::WeightedGraph& g,
                                 const std::vector<Vertex>& members,
                                 const std::vector<Vertex>& parent_of,
                                 const std::vector<std::int32_t>& port_of,
                                 Vertex root) {
  NORS_CHECK(!members.empty());
  NORS_CHECK(members.size() == parent_of.size() &&
             members.size() == port_of.size());
  TzTreeScheme s;
  s.root_ = root;
  s.members_ = members;
  const auto sz = static_cast<int>(members.size());

  // Local indexing: everything below works on positions into `members`.
  // The sorted (vertex -> position) index doubles as the lookup structure
  // the finished scheme keeps.
  s.sorted_pos_.resize(static_cast<std::size_t>(sz));
  for (int i = 0; i < sz; ++i) s.sorted_pos_[static_cast<std::size_t>(i)] = i;
  std::sort(s.sorted_pos_.begin(), s.sorted_pos_.end(),
            [&](std::int32_t a, std::int32_t b) {
              return members[static_cast<std::size_t>(a)] <
                     members[static_cast<std::size_t>(b)];
            });
  s.sorted_v_.resize(static_cast<std::size_t>(sz));
  for (int i = 0; i < sz; ++i) {
    s.sorted_v_[static_cast<std::size_t>(i)] =
        members[static_cast<std::size_t>(s.sorted_pos_[static_cast<std::size_t>(i)])];
  }
  for (int i = 1; i < sz; ++i) {
    NORS_CHECK_MSG(s.sorted_v_[static_cast<std::size_t>(i - 1)] !=
                       s.sorted_v_[static_cast<std::size_t>(i)],
                   "duplicate member " << s.sorted_v_[static_cast<std::size_t>(i)]);
  }
  const int root_pos = s.find(root);
  std::vector<int> par(static_cast<std::size_t>(sz), -1);
  std::vector<int> sorted_pos_int(static_cast<std::size_t>(sz));
  for (int i = 0; i < sz; ++i) {
    sorted_pos_int[static_cast<std::size_t>(i)] =
        s.sorted_pos_[static_cast<std::size_t>(i)];
    if (members[static_cast<std::size_t>(i)] == root) continue;
    // A parent outside the member set leaves this node unreachable from the
    // root; the reachability check in build_core reports it.
    par[static_cast<std::size_t>(i)] =
        s.find(parent_of[static_cast<std::size_t>(i)]);
  }

  s.tables_.assign(static_cast<std::size_t>(sz), Table{});
  s.labels_.assign(static_cast<std::size_t>(sz), Label{});
  BuildScratch scratch;
  build_core(g, members.data(), par.data(), port_of.data(), sz, root_pos,
             sorted_pos_int.data(), scratch, s.tables_.data(),
             s.labels_.data());
  return s;
}

std::int32_t TzTreeScheme::next_hop(const Table& tx, const Label& dest) {
  if (dest.a == tx.a) return graph::kNoPort;  // arrived
  if (dest.a < tx.a || dest.a >= tx.b) {
    NORS_CHECK_MSG(tx.parent_port != graph::kNoPort,
                   "destination is outside this tree");
    return tx.parent_port;
  }
  // Destination is in our subtree: take the light edge recorded at us, or
  // fall through to the heavy child.
  for (const auto& [w, port] : dest.light) {
    if (w == tx.self) return port;
  }
  NORS_CHECK_MSG(tx.heavy_port != graph::kNoPort,
                 "interval claims a descendant but no child exists");
  return tx.heavy_port;
}

int TzTreeScheme::find(Vertex v) const {
  const auto it = std::lower_bound(sorted_v_.begin(), sorted_v_.end(), v);
  if (it == sorted_v_.end() || *it != v) return -1;
  return sorted_pos_[static_cast<std::size_t>(it - sorted_v_.begin())];
}

const TzTreeScheme::Table& TzTreeScheme::table(Vertex v) const {
  const int i = find(v);
  NORS_CHECK_MSG(i >= 0, "vertex " << v << " not in tree");
  return tables_[static_cast<std::size_t>(i)];
}

const TzTreeScheme::Label& TzTreeScheme::label(Vertex v) const {
  const int i = find(v);
  NORS_CHECK_MSG(i >= 0, "vertex " << v << " not in tree");
  return labels_[static_cast<std::size_t>(i)];
}

}  // namespace nors::treeroute
