#include "treeroute/tz_tree.h"

#include <algorithm>

namespace nors::treeroute {

namespace {

using graph::Vertex;

}  // namespace

TzTreeScheme TzTreeScheme::build(
    const graph::WeightedGraph& g, const std::vector<Vertex>& members,
    const std::unordered_map<Vertex, Vertex>& parent,
    const std::unordered_map<Vertex, std::int32_t>& parent_port,
    Vertex root) {
  NORS_CHECK(!members.empty());
  TzTreeScheme s;
  s.root_ = root;
  s.members_ = members;

  std::unordered_map<Vertex, std::vector<Vertex>> children;
  children.reserve(members.size());
  for (Vertex v : members) children[v];  // ensure every member has an entry
  for (Vertex v : members) {
    if (v == root) continue;
    auto it = parent.find(v);
    NORS_CHECK_MSG(it != parent.end(), "member " << v << " has no parent");
    children[it->second].push_back(v);
  }
  // Deterministic order.
  for (auto& [v, ch] : children) std::sort(ch.begin(), ch.end());

  // Subtree sizes (iterative post-order).
  std::unordered_map<Vertex, std::int64_t> size;
  size.reserve(members.size());
  {
    std::vector<std::pair<Vertex, std::size_t>> stack{{root, 0}};
    while (!stack.empty()) {
      auto& [v, idx] = stack.back();
      auto& ch = children[v];
      if (idx < ch.size()) {
        Vertex c = ch[idx];
        ++idx;
        stack.push_back({c, 0});
      } else {
        std::int64_t sz = 1;
        for (Vertex c : ch) sz += size[c];
        size[v] = sz;
        stack.pop_back();
      }
    }
  }
  NORS_CHECK_MSG(size.size() == members.size(),
                 "parent pointers do not form one tree rooted at " << root);

  // Heavy child and DFS intervals, heavy-first so the heavy path is a
  // contiguous interval prefix (not required for correctness, but keeps
  // intervals tight).
  std::unordered_map<Vertex, Vertex> heavy;
  for (Vertex v : members) {
    Vertex h = graph::kNoVertex;
    std::int64_t best = -1;
    for (Vertex c : children[v]) {
      if (size[c] > best) {
        best = size[c];
        h = c;
      }
    }
    heavy[v] = h;
    auto& ch = children[v];
    if (h != graph::kNoVertex) {
      auto it = std::find(ch.begin(), ch.end(), h);
      std::iter_swap(ch.begin(), it);
    }
  }

  // DFS entry/exit times and label construction (iterative pre-order; the
  // label of a child extends the parent's label by one light entry unless
  // the child is heavy).
  std::int64_t clock = 0;
  std::vector<Vertex> order;
  order.reserve(members.size());
  {
    std::vector<std::pair<Vertex, std::size_t>> stack{{root, 0}};
    s.labels_[root] = Label{};
    while (!stack.empty()) {
      auto& [v, idx] = stack.back();
      if (idx == 0) {
        Table t;
        t.self = v;
        if (v != root) {
          t.parent = parent.at(v);
          t.parent_port = parent_port.at(v);
        }
        t.a = clock++;
        order.push_back(v);
        s.tables_[v] = t;
      }
      auto& ch = children[v];
      if (idx < ch.size()) {
        Vertex c = ch[idx];
        ++idx;
        Label lc = s.labels_[v];
        if (c != heavy[v]) {
          // Port at v toward c: reverse of c's parent_port.
          const std::int32_t pp = parent_port.at(c);
          lc.light.emplace_back(v, g.edge(c, pp).rev);
        }
        s.labels_[c] = std::move(lc);
        stack.push_back({c, 0});
      } else {
        s.tables_[v].b = clock;
        stack.pop_back();
      }
    }
  }
  for (Vertex v : order) {
    s.labels_[v].a = s.tables_[v].a;
    const Vertex h = heavy[v];
    if (h != graph::kNoVertex) {
      s.tables_[v].heavy = h;
      s.tables_[v].heavy_port = g.edge(h, parent_port.at(h)).rev;
    }
  }
  return s;
}

std::int32_t TzTreeScheme::next_hop(const Table& tx, const Label& dest) {
  if (dest.a == tx.a) return graph::kNoPort;  // arrived
  if (dest.a < tx.a || dest.a >= tx.b) {
    NORS_CHECK_MSG(tx.parent_port != graph::kNoPort,
                   "destination is outside this tree");
    return tx.parent_port;
  }
  // Destination is in our subtree: take the light edge recorded at us, or
  // fall through to the heavy child.
  for (const auto& [w, port] : dest.light) {
    if (w == tx.self) return port;
  }
  NORS_CHECK_MSG(tx.heavy_port != graph::kNoPort,
                 "interval claims a descendant but no child exists");
  return tx.heavy_port;
}

const TzTreeScheme::Table& TzTreeScheme::table(Vertex v) const {
  auto it = tables_.find(v);
  NORS_CHECK_MSG(it != tables_.end(), "vertex " << v << " not in tree");
  return it->second;
}

const TzTreeScheme::Label& TzTreeScheme::label(Vertex v) const {
  auto it = labels_.find(v);
  NORS_CHECK_MSG(it != labels_.end(), "vertex " << v << " not in tree");
  return it->second;
}

}  // namespace nors::treeroute
