#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "graph/graph.h"

namespace nors::treeroute {

/// Thorup–Zwick interval routing on a tree (paper §6 recap): tables of O(1)
/// words (parent, heavy child, DFS entry/exit), labels of O(log n) words
/// (entry time + the ≤ log n light edges on the root path). Routing follows
/// the unique tree path, i.e. stretch 1 w.r.t. the tree metric.
///
/// The tree is an arbitrary subgraph of a WeightedGraph given by parent
/// pointers over a member subset; all ports refer to the underlying graph.
///
/// Storage is flat (DESIGN.md §7): tables and labels live in arrays
/// parallel to `members()`, and per-vertex lookups are a binary search over
/// a sorted (vertex → position) index — no hash map survives construction.
class TzTreeScheme {
 public:
  struct Table {
    graph::Vertex self = graph::kNoVertex;
    graph::Vertex parent = graph::kNoVertex;   // kNoVertex at the root
    std::int32_t parent_port = graph::kNoPort; // port at self toward parent
    graph::Vertex heavy = graph::kNoVertex;    // kNoVertex at leaves
    std::int32_t heavy_port = graph::kNoPort;  // port at self toward heavy
    // DFS entry/exit times: subtree is [a, b). Clocks count tree members,
    // so int32 holds them; millions of tables stay resident in a built
    // scheme, and the narrow fields cut its footprint (DESIGN.md §9).
    std::int32_t a = 0;
    std::int32_t b = 0;

    /// Words of routing state (paper: O(1)): ids+ports+times.
    std::int64_t words() const { return 6; }
  };

  struct Label {
    std::int64_t a = 0;  // destination's DFS entry time
    /// Light edges on the root→dest path: (vertex, port at vertex toward
    /// the next path vertex).
    std::vector<std::pair<graph::Vertex, std::int32_t>> light;

    std::int64_t words() const {
      return 1 + 2 * static_cast<std::int64_t>(light.size());
    }
  };

  /// Builds the scheme. `members` lists the tree's vertices; parent/port
  /// maps must cover every member except `root` and use real graph edges.
  static TzTreeScheme build(
      const graph::WeightedGraph& g, const std::vector<graph::Vertex>& members,
      const std::unordered_map<graph::Vertex, graph::Vertex>& parent,
      const std::unordered_map<graph::Vertex, std::int32_t>& parent_port,
      graph::Vertex root);

  /// Index-based overload for hot batch paths: parent_of[i] / port_of[i]
  /// are parallel to `members` (entries at the root's position are
  /// ignored), avoiding per-subtree map marshalling. Produces exactly the
  /// same scheme as the map overload.
  static TzTreeScheme build(const graph::WeightedGraph& g,
                            const std::vector<graph::Vertex>& members,
                            const std::vector<graph::Vertex>& parent_of,
                            const std::vector<std::int32_t>& port_of,
                            graph::Vertex root);

  /// Stateless routing decision: next port from the vertex owning `tx`
  /// toward the destination owning `dest`, or kNoPort if arrived.
  static std::int32_t next_hop(const Table& tx, const Label& dest);

  /// Reusable arenas for build_core (one per worker thread in batch paths).
  struct BuildScratch {
    std::vector<int> child_cnt, child_off, child_list, cursor, bfs, heavy;
    std::vector<std::int64_t> size;
    std::vector<std::pair<int, int>> stack;
  };

  /// Core of build(), exposed for hot batch paths (treeroute/dist_tree):
  /// position-parallel inputs — par_pos[i] is the position of i's parent
  /// (-1 at root_pos), sorted_pos lists positions in ascending
  /// member-vertex order — and tables/labels outputs parallel to members.
  /// Produces exactly what build() stores, with zero per-call allocation
  /// beyond the labels themselves.
  static void build_core(const graph::WeightedGraph& g,
                         const graph::Vertex* members, const int* par_pos,
                         const std::int32_t* port_of, int sz, int root_pos,
                         const int* sorted_pos, BuildScratch& s,
                         Table* tables, Label* labels);

  graph::Vertex root() const { return root_; }
  bool contains(graph::Vertex v) const { return find(v) >= 0; }
  const Table& table(graph::Vertex v) const;
  const Label& label(graph::Vertex v) const;
  const std::vector<graph::Vertex>& members() const { return members_; }

  /// Position of v in members() (the index of its table/label), or -1.
  int find(graph::Vertex v) const;

  /// Table/label of the member at position i in members().
  const Table& table_at(std::size_t i) const { return tables_[i]; }
  const Label& label_at(std::size_t i) const { return labels_[i]; }

 private:
  graph::Vertex root_ = graph::kNoVertex;
  std::vector<graph::Vertex> members_;     // caller's order
  std::vector<Table> tables_;              // parallel to members_
  std::vector<Label> labels_;              // parallel to members_
  std::vector<graph::Vertex> sorted_v_;    // members, ascending
  std::vector<std::int32_t> sorted_pos_;   // position in members_ per sorted_v_
};

}  // namespace nors::treeroute
