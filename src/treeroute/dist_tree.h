#pragma once

#include <cstdint>
#include <vector>

#include "congest/ledger.h"
#include "graph/graph.h"
#include "treeroute/tz_tree.h"
#include "util/random.h"

namespace nors::treeroute {

/// A tree to route on: a subgraph of g described by parent pointers over a
/// member subset (the cluster trees C̃(u) of the main scheme, or any other
/// tree). All edges must be real graph edges.
struct TreeSpec {
  graph::Vertex root = graph::kNoVertex;
  std::vector<graph::Vertex> members;  // includes root
  // Parallel to members: the tree parent of members[i] and the port toward
  // it; entries at the root's position hold kNoVertex / kNoPort.
  std::vector<graph::Vertex> parent;
  std::vector<std::int32_t> parent_port;
};

struct TreeBuildScratch;
struct TreeSchedule;

/// The paper's Section-6 tree routing scheme (Theorem 7): sampled vertices
/// U split the tree into depth-O(n/γ·log n) subtrees; a local TZ interval
/// scheme routes inside each subtree T_w, and a global TZ scheme over the
/// virtual tree T' (whose nodes are the subtree roots) stitches them
/// together through portal vertices. Routing is exact (stretch 1 on the
/// tree metric); tables are O(log n) words and labels O(log² n) words.
///
/// Storage is flat (DESIGN.md §7): tables and labels live in arrays
/// parallel to a vertex-sorted member list, per-vertex lookups are a binary
/// search, and construction keys every virtual-tree structure by a dense
/// subtree-root slot id instead of hashing vertices.
class DistTreeScheme {
 public:
  /// One light T'-edge on the path from the T'-root to w(v), together with
  /// the local routing information to reach its portal.
  struct GlobalHop {
    graph::Vertex vi = graph::kNoVertex;  // T' parent
    graph::Vertex wi = graph::kNoVertex;  // T' child (a subtree root)
    graph::Vertex portal = graph::kNoVertex;  // x_i = p_T(w_i) ∈ T_{v_i}
    TzTreeScheme::Label portal_label;          // ℓ(x_i) within T_{v_i}
    std::int32_t port = graph::kNoPort;        // e(x_i, w_i)
  };

  /// The label ℓ'(v) of a destination.
  struct VLabel {
    std::int64_t a_prime = 0;  // DFS entry time of w(v) in T'
    std::vector<GlobalHop> global_light;
    TzTreeScheme::Label local;  // ℓ(v) within T_{w(v)}

    std::int64_t words() const {
      std::int64_t w = 1 + local.words();
      for (const auto& h : global_light) w += 3 + h.portal_label.words();
      return w;
    }
  };

  /// The routing table stored at each member x. The heavy-portal label
  /// ℓ(y) is identical for every member of one subtree T_w, so it is
  /// stored once per subtree slot in the owning scheme
  /// (heavy_portal_label_at) and referenced here by `subtree_slot` —
  /// millions of resident per-member copies otherwise dominate a built
  /// scheme's footprint (DESIGN.md §9). Word accounting that includes the
  /// label lives in DistTreeScheme::table_words_at.
  struct NodeInfo {
    graph::Vertex subtree_root = graph::kNoVertex;  // w with x ∈ T_w
    TzTreeScheme::Table local;                      // table within T_w
    // Interval of w in T' (int32 for the same footprint reason as
    // TzTreeScheme::Table: T' has at most |T| nodes).
    std::int32_t a_prime = 0, b_prime = 0;
    std::int32_t subtree_slot = -1;                 // slot of w in T'
    graph::Vertex heavy_prime = graph::kNoVertex;   // h'(w)
    graph::Vertex heavy_portal = graph::kNoVertex;  // y = p_T(h'(w)) ∈ T_w
    std::int32_t heavy_port = graph::kNoPort;       // e(y, h'(w))
    std::int32_t up_port = graph::kNoPort;  // at w: port toward p_T(w)
  };

  /// Builds the scheme for one tree; in_u marks the globally sampled U.
  static DistTreeScheme build(const graph::WeightedGraph& g,
                              const TreeSpec& tree,
                              const std::vector<char>& in_u);

  /// Hot-path overload: reuses `scratch` across trees (one shared
  /// LCA/size/DFS allocation per worker thread) and, when `sched_out` is
  /// non-null, exports the per-tree data the batch's staged-schedule
  /// verifier needs so it never re-indexes the tree.
  static DistTreeScheme build(const graph::WeightedGraph& g,
                              const TreeSpec& tree,
                              const std::vector<char>& in_u,
                              TreeBuildScratch& scratch,
                              TreeSchedule* sched_out);

  /// Next port from x toward the destination labelled `dest`; kNoPort when
  /// x is the destination. The walk follows the unique tree path.
  std::int32_t next_hop(graph::Vertex x, const VLabel& dest) const;

  /// Next port from x toward the tree root (header-flag routing; needs no
  /// destination label). kNoPort when x is the root.
  std::int32_t next_hop_to_root(graph::Vertex x) const;

  bool contains(graph::Vertex v) const { return find(v) >= 0; }
  const VLabel& label(graph::Vertex v) const;
  const NodeInfo& info(graph::Vertex v) const;
  graph::Vertex root() const { return root_; }

  /// ℓ(p_T(h'(w))) within T_w for the member at position i — the label
  /// next_hop routes toward when descending via the heavy T'-child (an
  /// empty label when w has no T' children). Stored once per subtree slot.
  const TzTreeScheme::Label& heavy_portal_label_at(std::size_t i) const {
    return slot_heavy_label_[static_cast<std::size_t>(
        info_[i].subtree_slot)];
  }
  const TzTreeScheme::Label& heavy_portal_label(graph::Vertex v) const;

  /// Words of the member's routing table (paper accounting): ids, ports,
  /// intervals and the shared heavy-portal label.
  std::int64_t table_words_at(std::size_t i) const {
    return 1 + info_[i].local.words() + 2 + 1 + 1 +
           heavy_portal_label_at(i).words() + 2;
  }

  /// Vertex-sorted member list; tables/labels are parallel to it.
  const std::vector<graph::Vertex>& members() const { return members_; }
  /// Index of v in members(), or -1 (binary search).
  int find(graph::Vertex v) const;
  const VLabel& label_at(std::size_t i) const { return labels_[i]; }
  const NodeInfo& info_at(std::size_t i) const { return info_[i]; }

  // Measured construction quantities (consumed by the Remark-3 cost model).
  int max_subtree_depth() const { return max_subtree_depth_; }
  int u_count() const { return u_count_; }
  /// max over members of label(v).words(), ≥ 1 (batch phase-2 accounting).
  std::int64_t max_label_words() const { return max_label_words_; }

 private:
  graph::Vertex root_ = graph::kNoVertex;
  std::vector<graph::Vertex> members_;  // sorted ascending
  std::vector<NodeInfo> info_;          // parallel to members_
  std::vector<VLabel> labels_;          // parallel to members_
  // Per subtree slot: ℓ(heavy portal) within that subtree (empty when the
  // slot has no T' children); shared by all of the subtree's members.
  std::vector<TzTreeScheme::Label> slot_heavy_label_;
  int max_subtree_depth_ = 0;
  int u_count_ = 0;
  std::int64_t max_label_words_ = 1;
};

/// Per-tree construction view reused by the batch scheduler: members in BFS
/// order with parent positions, subtree-root positions and depths.
struct TreeSchedule {
  std::vector<graph::Vertex> order;  // BFS order, order[0] == root
  std::vector<int> parent_pos;       // position of parent; -1 at root
  std::vector<int> w_pos;            // subtree-root position per member
  std::vector<int> depth;            // depth below the subtree root
};

/// Reusable construction arenas: one instance per worker thread, reused
/// across every tree that worker builds (DESIGN.md §7). All vectors keep
/// their peak capacity between trees, so steady-state tree construction
/// performs no allocation beyond the finished scheme's own storage.
struct TreeBuildScratch {
  // Flat indexing of the TreeSpec (BFS order, children CSR).
  std::vector<std::int32_t> perm;  // spec positions sorted by vertex
  std::vector<int> sorted_of_orig;
  std::vector<int> par, cnt, off, cursor, child, bfs, bfs_pos;
  std::vector<graph::Vertex> order;
  std::vector<int> parent_pos, orig_pos;
  std::vector<std::int32_t> parent_port;
  // Subtree decomposition under U.
  std::vector<int> w_pos, depth;
  std::vector<int> sub_cnt, sub_off, sub_members, member_rank, slot_of_pos;
  std::vector<int> roots;  // subtree-root positions, ascending
  // Local TZ schemes, flattened: tables/labels of subtree slot `s` live at
  // [sub_off[roots[s]] + rank], so one pair of tree-sized arrays serves
  // every subtree (no temporary TzTreeScheme objects).
  TzTreeScheme::BuildScratch tz;
  std::vector<TzTreeScheme::Table> tz_tables;
  std::vector<TzTreeScheme::Label> tz_labels;
  std::vector<graph::Vertex> sub_mem;  // member vertex per flat index
  std::vector<int> sub_par, sub_sorted, sorted_to_pos;
  std::vector<std::int32_t> sub_port;
  // Virtual tree T' keyed by root slot.
  std::vector<int> t_parent_slot, t_child_off, t_child_list, t_child_cursor,
      t_heavy;
  std::vector<std::int64_t> t_size, a_prime, b_prime;
  std::vector<std::vector<DistTreeScheme::GlobalHop>> t_label;
  std::vector<std::pair<int, int>> stack;
};

/// Batched construction over many trees (paper Remark 3): one shared sample
/// U (probability γ/n per vertex), randomized staged broadcast schedule
/// whose collision bound is *verified* against the actual forest edges, and
/// a RoundLedger charging the measured cost.
struct DistTreeBatchParams {
  double gamma = 0;  // 0 ⇒ γ = sqrt(n / s) as in Remark 3
  int alpha = 20;    // stage length in rounds
  std::uint64_t seed = 7;
  /// Worker threads for the per-tree builds: independent trees build
  /// concurrently with per-thread scratch arenas and are merged in spec
  /// order, so every output (schemes, stats, ledger) is bit-identical for
  /// any value. 0 ⇒ the NORS_THREADS environment variable (default 1).
  int threads = 0;
};

struct DistTreeBatch {
  std::vector<DistTreeScheme> schemes;  // parallel to the input specs
  congest::RoundLedger ledger;
  int max_subtree_depth = 0;
  std::int64_t u_total = 0;
  int max_overlap = 0;  // s: max #trees sharing a vertex
};

/// `specs` is consumed: each spec's storage is released as soon as its tree
/// has been built (the spec arrays and the finished schemes would otherwise
/// overlap at the batch's RSS peak — DESIGN.md §9). Pass std::move(specs)
/// on hot paths; a copy is made otherwise.
DistTreeBatch build_dist_tree_batch(const graph::WeightedGraph& g,
                                    std::vector<TreeSpec> specs,
                                    const DistTreeBatchParams& params,
                                    int bfs_height, util::Rng& rng);

}  // namespace nors::treeroute
