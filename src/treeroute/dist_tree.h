#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "congest/ledger.h"
#include "graph/graph.h"
#include "treeroute/tz_tree.h"
#include "util/random.h"

namespace nors::treeroute {

/// A tree to route on: a subgraph of g described by parent pointers over a
/// member subset (the cluster trees C̃(u) of the main scheme, or any other
/// tree). All edges must be real graph edges.
struct TreeSpec {
  graph::Vertex root = graph::kNoVertex;
  std::vector<graph::Vertex> members;  // includes root
  // Parallel to members: the tree parent of members[i] and the port toward
  // it; entries at the root's position hold kNoVertex / kNoPort.
  std::vector<graph::Vertex> parent;
  std::vector<std::int32_t> parent_port;
};

/// The paper's Section-6 tree routing scheme (Theorem 7): sampled vertices
/// U split the tree into depth-O(n/γ·log n) subtrees; a local TZ interval
/// scheme routes inside each subtree T_w, and a global TZ scheme over the
/// virtual tree T' (whose nodes are the subtree roots) stitches them
/// together through portal vertices. Routing is exact (stretch 1 on the
/// tree metric); tables are O(log n) words and labels O(log² n) words.
class DistTreeScheme {
 public:
  /// One light T'-edge on the path from the T'-root to w(v), together with
  /// the local routing information to reach its portal.
  struct GlobalHop {
    graph::Vertex vi = graph::kNoVertex;  // T' parent
    graph::Vertex wi = graph::kNoVertex;  // T' child (a subtree root)
    graph::Vertex portal = graph::kNoVertex;  // x_i = p_T(w_i) ∈ T_{v_i}
    TzTreeScheme::Label portal_label;          // ℓ(x_i) within T_{v_i}
    std::int32_t port = graph::kNoPort;        // e(x_i, w_i)
  };

  /// The label ℓ'(v) of a destination.
  struct VLabel {
    std::int64_t a_prime = 0;  // DFS entry time of w(v) in T'
    std::vector<GlobalHop> global_light;
    TzTreeScheme::Label local;  // ℓ(v) within T_{w(v)}

    std::int64_t words() const {
      std::int64_t w = 1 + local.words();
      for (const auto& h : global_light) w += 3 + h.portal_label.words();
      return w;
    }
  };

  /// The routing table stored at each member x.
  struct NodeInfo {
    graph::Vertex subtree_root = graph::kNoVertex;  // w with x ∈ T_w
    TzTreeScheme::Table local;                      // table within T_w
    std::int64_t a_prime = 0, b_prime = 0;          // interval of w in T'
    graph::Vertex heavy_prime = graph::kNoVertex;   // h'(w)
    graph::Vertex heavy_portal = graph::kNoVertex;  // y = p_T(h'(w)) ∈ T_w
    TzTreeScheme::Label heavy_portal_label;         // ℓ(y) within T_w
    std::int32_t heavy_port = graph::kNoPort;       // e(y, h'(w))
    std::int32_t up_port = graph::kNoPort;  // at w: port toward p_T(w)

    std::int64_t words() const {
      return 1 + local.words() + 2 + 1 + 1 + heavy_portal_label.words() + 2;
    }
  };

  /// Builds the scheme for one tree; in_u marks the globally sampled U.
  static DistTreeScheme build(const graph::WeightedGraph& g,
                              const TreeSpec& tree,
                              const std::vector<char>& in_u);

  /// Next port from x toward the destination labelled `dest`; kNoPort when
  /// x is the destination. The walk follows the unique tree path.
  std::int32_t next_hop(graph::Vertex x, const VLabel& dest) const;

  /// Next port from x toward the tree root (header-flag routing; needs no
  /// destination label). kNoPort when x is the root.
  std::int32_t next_hop_to_root(graph::Vertex x) const;

  bool contains(graph::Vertex v) const { return info_.count(v) > 0; }
  const VLabel& label(graph::Vertex v) const;
  const NodeInfo& info(graph::Vertex v) const;
  graph::Vertex root() const { return root_; }

  // Measured construction quantities (consumed by the Remark-3 cost model).
  int max_subtree_depth() const { return max_subtree_depth_; }
  int u_count() const { return u_count_; }

 private:
  graph::Vertex root_ = graph::kNoVertex;
  std::unordered_map<graph::Vertex, NodeInfo> info_;
  std::unordered_map<graph::Vertex, VLabel> labels_;
  int max_subtree_depth_ = 0;
  int u_count_ = 0;
};

/// Batched construction over many trees (paper Remark 3): one shared sample
/// U (probability γ/n per vertex), randomized staged broadcast schedule
/// whose collision bound is *verified* against the actual forest edges, and
/// a RoundLedger charging the measured cost.
struct DistTreeBatchParams {
  double gamma = 0;  // 0 ⇒ γ = sqrt(n / s) as in Remark 3
  int alpha = 20;    // stage length in rounds
  std::uint64_t seed = 7;
};

struct DistTreeBatch {
  std::vector<DistTreeScheme> schemes;  // parallel to the input specs
  congest::RoundLedger ledger;
  int max_subtree_depth = 0;
  std::int64_t u_total = 0;
  int max_overlap = 0;  // s: max #trees sharing a vertex
};

DistTreeBatch build_dist_tree_batch(const graph::WeightedGraph& g,
                                    const std::vector<TreeSpec>& specs,
                                    const DistTreeBatchParams& params,
                                    int bfs_height, util::Rng& rng);

}  // namespace nors::treeroute
