#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>

namespace nors::util {

/// Fixed-footprint latency recorder: log₂-bucketed counts over nanosecond
/// samples (bucket b covers [2^(b-1), 2^b) ns), with linear interpolation
/// inside the quantile bucket. One writer per instance (a shard worker)
/// records with a relaxed atomic increment — ~no overhead on the serving
/// path and no allocation, ever; readers may snapshot from any thread.
/// Quantiles are estimates with sub-bucket (≪2×) resolution — the right
/// tool for p50/p99 stat counters, not for microbenchmark timing.
class LatencyHistogram {
 public:
  static constexpr int kBuckets = 48;  // 2^47 ns ≈ 39 h: saturating top
  using Counts = std::array<std::int64_t, kBuckets>;

  void record_ns(std::int64_t ns) {
    int b = ns <= 0 ? 0
                    : std::bit_width(static_cast<std::uint64_t>(ns));
    if (b >= kBuckets) b = kBuckets - 1;
    counts_[static_cast<std::size_t>(b)].fetch_add(
        1, std::memory_order_relaxed);
  }

  Counts snapshot() const {
    Counts c{};
    for (int b = 0; b < kBuckets; ++b) {
      c[static_cast<std::size_t>(b)] =
          counts_[static_cast<std::size_t>(b)].load(
              std::memory_order_relaxed);
    }
    return c;
  }

  double quantile_us(double q) const { return quantile_us(snapshot(), q); }

  /// Quantile over a (possibly merged) snapshot, in microseconds; 0 when
  /// empty. q is clamped to [0, 1].
  static double quantile_us(const Counts& c, double q) {
    std::int64_t total = 0;
    for (const auto x : c) total += x;
    if (total == 0) return 0.0;
    if (q < 0) q = 0;
    if (q > 1) q = 1;
    // The sample with (1-based) rank ceil(q * total), walked bucket by
    // bucket; inside the bucket, interpolate by rank fraction.
    const double target = q * static_cast<double>(total);
    std::int64_t seen = 0;
    for (int b = 0; b < kBuckets; ++b) {
      const std::int64_t in_bucket = c[static_cast<std::size_t>(b)];
      if (in_bucket == 0) continue;
      if (static_cast<double>(seen + in_bucket) >= target) {
        const double lo_ns = b == 0 ? 0.0 : static_cast<double>(1ll << (b - 1));
        const double hi_ns = b == 0 ? 1.0 : static_cast<double>(2ll << (b - 1));
        const double frac =
            (target - static_cast<double>(seen)) /
            static_cast<double>(in_bucket);
        return (lo_ns + (hi_ns - lo_ns) * frac) / 1000.0;
      }
      seen += in_bucket;
    }
    return static_cast<double>(1ll << (kBuckets - 1)) / 1000.0;
  }

 private:
  std::array<std::atomic<std::int64_t>, kBuckets> counts_{};
};

}  // namespace nors::util
