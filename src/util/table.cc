#include "util/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/check.h"

namespace nors::util {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  NORS_CHECK(!headers_.empty());
}

void TextTable::add_row(std::vector<std::string> cells) {
  NORS_CHECK_MSG(cells.size() == headers_.size(),
                 "row has " << cells.size() << " cells, expected "
                            << headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::render() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << " " << std::left << std::setw(static_cast<int>(width[c])) << row[c]
         << " |";
    }
    os << "\n";
  };
  auto emit_sep = [&] {
    os << "+";
    for (std::size_t c = 0; c < width.size(); ++c) {
      os << std::string(width[c] + 2, '-') << "+";
    }
    os << "\n";
  };
  emit_sep();
  emit_row(headers_);
  emit_sep();
  for (const auto& row : rows_) emit_row(row);
  emit_sep();
  return os.str();
}

std::string TextTable::fmt(std::int64_t v) { return std::to_string(v); }

std::string TextTable::fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

}  // namespace nors::util
