#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>

#include "util/check.h"
#include "util/failpoint.h"

namespace nors::util {

/// Blocking multi-producer work queue for the sharded serving front-end.
/// Lock-light by design: items are whole sub-batch descriptors, so the
/// mutex is taken once per batch (not per query) and every critical
/// section is an O(1) deque move. pop() blocks until an item arrives or
/// close() is called; after close() the consumer drains the remaining
/// items and then pop() returns false — no submitted work is dropped on
/// shutdown.
template <typename T>
class BatchQueue {
 public:
  void push(T item) {
    // Chaos hook: only the delay mode is meaningful here (a slow producer
    // handoff); error/partial evaluate but change nothing — push never
    // drops work.
    failpoint("serve.queue");
    {
      std::lock_guard<std::mutex> lk(m_);
      NORS_CHECK_MSG(!closed_, "push to a closed BatchQueue");
      q_.push_back(std::move(item));
    }
    cv_.notify_one();
  }

  /// Blocks for the next item. Returns false once the queue is closed and
  /// fully drained.
  bool pop(T& out) {
    std::unique_lock<std::mutex> lk(m_);
    cv_.wait(lk, [this] { return closed_ || !q_.empty(); });
    if (q_.empty()) return false;
    out = std::move(q_.front());
    q_.pop_front();
    return true;
  }

  void close() {
    {
      std::lock_guard<std::mutex> lk(m_);
      closed_ = true;
    }
    cv_.notify_all();
  }

 private:
  std::mutex m_;
  std::condition_variable cv_;
  std::deque<T> q_;
  bool closed_ = false;
};

}  // namespace nors::util
