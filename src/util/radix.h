#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <vector>

namespace nors::util {

/// Ascending LSD radix sort for non-negative 32-bit keys. Produces exactly
/// the order std::sort would (total order on ints), in O(passes · n) with
/// passes = bytes needed for `max_value`; falls back to std::sort for small
/// inputs where the counting overhead dominates. `scratch` is grown as
/// needed and reused across calls — the point of the routine is hot loops
/// that sort a frontier every iteration.
inline void radix_sort(std::vector<std::int32_t>& v,
                       std::vector<std::int32_t>& scratch,
                       std::int32_t max_value) {
  if (v.size() < 128) {
    std::sort(v.begin(), v.end());
    return;
  }
  int passes = 1;
  for (auto rest = static_cast<std::uint32_t>(max_value) >> 8; rest != 0;
       rest >>= 8) {
    ++passes;
  }
  scratch.resize(v.size());
  std::int32_t* a = v.data();
  std::int32_t* b = scratch.data();
  const std::size_t sz = v.size();
  for (int pass = 0; pass < passes; ++pass) {
    const int shift = 8 * pass;
    std::uint32_t count[256] = {};
    for (std::size_t i = 0; i < sz; ++i) {
      ++count[(static_cast<std::uint32_t>(a[i]) >> shift) & 0xFF];
    }
    std::uint32_t sum = 0;
    for (std::uint32_t& c : count) {
      const std::uint32_t tmp = c;
      c = sum;
      sum += tmp;
    }
    for (std::size_t i = 0; i < sz; ++i) {
      b[count[(static_cast<std::uint32_t>(a[i]) >> shift) & 0xFF]++] = a[i];
    }
    std::swap(a, b);
  }
  if (a != v.data()) {
    std::memcpy(v.data(), a, sz * sizeof(std::int32_t));
  }
}

}  // namespace nors::util
