#pragma once

#include <cstdint>
#include <vector>

namespace nors::util {

/// Streaming min/max/mean/variance accumulator (Welford).
class Accumulator {
 public:
  void add(double x);
  std::int64_t count() const { return count_; }
  double min() const;
  double max() const;
  double mean() const;
  double variance() const;
  double stddev() const;
  double sum() const { return sum_; }

 private:
  std::int64_t count_ = 0;
  double min_ = 0, max_ = 0, mean_ = 0, m2_ = 0, sum_ = 0;
};

/// Exact percentile of a sample (q in [0,1]); sorts a copy.
double percentile(std::vector<double> values, double q);

}  // namespace nors::util
