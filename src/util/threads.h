#pragma once

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <thread>
#include <vector>

// Thread-count resolution and the shared worker-pool shape for the opt-in
// construction thread pools. Every parallel phase in this library is
// deterministic by construction (workers own disjoint output slots; folds
// over worker results run serially in a fixed order), so the pool size
// affects wall-clock only — never a table, label, round count, or ledger
// entry.

namespace nors::util {

/// Resolves a `threads` parameter: a positive request is taken as-is up to
/// the hardware clamp below; 0 consults the NORS_THREADS environment
/// variable; unset or unparsable means 1 (serial).
///
/// The resolved count is clamped to the hardware concurrency: requesting 8
/// workers on a 1-core container makes every pooled phase *slower* than
/// serial (context-switch churn plus eight cold scratch arenas thrashing
/// one cache), and because determinism is structural — pool size never
/// changes a table, label, round count, or ledger entry — the clamp is
/// unobservable except in wall-clock. Set NORS_THREADS_OVERSUBSCRIBE=1 to
/// restore exact pool sizes (the determinism suite does, so real 8-worker
/// pools are exercised even on small machines).
inline int resolve_threads(int requested) {
  int t = requested;
  if (t <= 0) {
    const char* e = std::getenv("NORS_THREADS");
    t = e == nullptr ? 1 : std::max(1, std::atoi(e));
  }
  const char* oversub = std::getenv("NORS_THREADS_OVERSUBSCRIBE");
  if (oversub != nullptr && std::atoi(oversub) != 0) return t;
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw > 0) t = std::min(t, static_cast<int>(hw));
  return std::max(1, t);
}

/// Runs `body(worker, index)` for every index in [0, count) across
/// `nthreads` workers claiming indices from one atomic counter. `worker`
/// is the dense worker id (0..nthreads-1) for per-worker scratch; the
/// first exception any worker throws is rethrown after all have joined.
/// nthreads <= 1 runs inline with worker id 0. Callers are responsible
/// for determinism: body(., i) must write only state owned by index i.
template <typename Body>
void parallel_for(int nthreads, std::size_t count, Body&& body) {
  if (nthreads <= 1 || count < 2) {
    for (std::size_t i = 0; i < count; ++i) body(0, i);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(nthreads));
  auto worker = [&](int t) {
    try {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) break;
        body(t, i);
      }
    } catch (...) {
      errors[static_cast<std::size_t>(t)] = std::current_exception();
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(nthreads) - 1);
  for (int t = 1; t < nthreads; ++t) pool.emplace_back(worker, t);
  worker(0);
  for (auto& th : pool) th.join();
  for (const auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

}  // namespace nors::util
