#include "util/failpoint.h"

#include <chrono>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "util/check.h"

namespace nors::util {

std::atomic<int> Failpoints::active_{0};

namespace {

enum class Mode : std::uint8_t { kError, kDelay, kPartial, kOneshot };

struct Fp {
  Mode mode = Mode::kError;
  double rate = 1.0;        // probability; for oneshot: the firing hit index
  int delay_ms = 10;        // delay mode only
  std::int64_t hits = 0;    // evaluations so far
  bool fired = false;       // oneshot latch
  std::uint64_t rng = 0;    // per-failpoint stream, seeded from the name
};

struct Registry {
  std::mutex m;
  std::unordered_map<std::string, Fp> map;
  std::atomic<std::int64_t> trips{0};
};

Registry& registry() {
  static Registry r;
  return r;
}

/// splitmix64 step → uniform double in [0, 1). Deterministic per
/// failpoint given its seed, so a chaos run is reproducible modulo
/// thread interleaving.
double roll(std::uint64_t& s) {
  s += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = s;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  return static_cast<double>(z >> 11) * 0x1.0p-53;
}

std::uint64_t fnv1a_str(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}

Fp parse_one(const std::string& name, const std::string& mode,
             const std::string& rate, const std::string& arg) {
  Fp fp;
  if (mode == "error") {
    fp.mode = Mode::kError;
  } else if (mode == "delay") {
    fp.mode = Mode::kDelay;
  } else if (mode == "partial") {
    fp.mode = Mode::kPartial;
  } else if (mode == "oneshot") {
    fp.mode = Mode::kOneshot;
  } else {
    NORS_CHECK_MSG(false, "unknown failpoint mode '" << mode << "' for '"
                                                     << name << "'");
  }
  if (!rate.empty()) {
    char* end = nullptr;
    fp.rate = std::strtod(rate.c_str(), &end);
    NORS_CHECK_MSG(end != nullptr && *end == '\0' && fp.rate >= 0,
                   "bad failpoint rate '" << rate << "' for '" << name
                                          << "'");
  } else if (fp.mode == Mode::kOneshot) {
    fp.rate = 1;  // fire on the first evaluation
  }
  if (!arg.empty()) {
    fp.delay_ms = std::atoi(arg.c_str());
    NORS_CHECK_MSG(fp.delay_ms >= 0,
                   "bad failpoint arg '" << arg << "' for '" << name << "'");
  }
  fp.rng = fnv1a_str(name);
  return fp;
}

/// Installs NORS_FAILPOINTS at static-init time, before main() spawns
/// any server thread (the registry is a function-local static, so the
/// order against other globals is immaterial).
struct EnvInit {
  EnvInit() {
    if (const char* e = std::getenv("NORS_FAILPOINTS")) {
      if (*e != '\0') Failpoints::configure(e);
    }
  }
} env_init;

}  // namespace

void Failpoints::configure(const std::string& spec) {
  Registry& r = registry();
  std::unordered_map<std::string, Fp> next;
  std::size_t at = 0;
  while (at < spec.size()) {
    std::size_t end = spec.find(',', at);
    if (end == std::string::npos) end = spec.size();
    const std::string one = spec.substr(at, end - at);
    at = end + 1;
    if (one.empty()) continue;
    // name:mode[:rate[:arg]]
    std::string parts[4];
    std::size_t p = 0, field = 0;
    while (field < 4) {
      std::size_t colon = one.find(':', p);
      if (colon == std::string::npos || field == 3) {
        parts[field++] = one.substr(p);
        break;
      }
      parts[field++] = one.substr(p, colon - p);
      p = colon + 1;
    }
    NORS_CHECK_MSG(!parts[0].empty() && !parts[1].empty(),
                   "failpoint spec needs name:mode — got '" << one << "'");
    next.emplace(parts[0],
                 parse_one(parts[0], parts[1], parts[2], parts[3]));
  }
  {
    std::lock_guard<std::mutex> lk(r.m);
    r.map = std::move(next);
    active_.store(static_cast<int>(r.map.size()),
                  std::memory_order_relaxed);
  }
}

void Failpoints::clear() { configure(""); }

std::int64_t Failpoints::trips() {
  return registry().trips.load(std::memory_order_relaxed);
}

FpAction Failpoints::eval(const char* name) {
  Registry& r = registry();
  FpAction act = FpAction::kNone;
  int delay_ms = 0;
  {
    std::lock_guard<std::mutex> lk(r.m);
    const auto it = r.map.find(name);
    if (it == r.map.end()) return FpAction::kNone;
    Fp& fp = it->second;
    ++fp.hits;
    switch (fp.mode) {
      case Mode::kError:
        if (roll(fp.rng) < fp.rate) act = FpAction::kError;
        break;
      case Mode::kPartial:
        if (roll(fp.rng) < fp.rate) act = FpAction::kPartial;
        break;
      case Mode::kDelay:
        if (roll(fp.rng) < fp.rate) delay_ms = fp.delay_ms;
        break;
      case Mode::kOneshot:
        if (!fp.fired &&
            fp.hits >= static_cast<std::int64_t>(fp.rate)) {
          fp.fired = true;
          act = FpAction::kError;
        }
        break;
    }
    if (act != FpAction::kNone || delay_ms > 0) {
      r.trips.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (delay_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
  }
  return act;
}

}  // namespace nors::util
