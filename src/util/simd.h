#pragma once

#include <cstdint>

// Portable branch-light SIMD helpers for the serving hot path (DESIGN.md
// §10). Only small, flat primitives live here — wide enough to matter on
// the decision path, narrow enough that the scalar fallback is obviously
// equivalent. SSE2 is baseline on x86-64 and NEON on aarch64, so in
// practice one of the vector paths is always compiled in; the scalar
// branch-free fallback keeps other targets correct (and is what the
// sanitizers exercise when vector extensions are off).

#if defined(__SSE2__)
#include <emmintrin.h>
#define NORS_SIMD_SSE2 1
#elif defined(__ARM_NEON) || defined(__ARM_NEON__)
#include <arm_neon.h>
#define NORS_SIMD_NEON 1
#endif

namespace nors::util::simd {

/// Number of elements of a sorted i32 run that compare < key — i.e. the
/// lower-bound index — computed by a branchless counting scan: every
/// element is compared, compare masks are accumulated, and no
/// data-dependent branch is issued. For the short runs this is built for
/// (frozen table slabs, tens of entries), the predictable full scan beats
/// a binary search whose every probe is a potential mispredict + cache
/// miss. Reads exactly [keys, keys + count); count == 0 returns 0.
inline std::int32_t count_less_i32(const std::int32_t* keys,
                                   std::int32_t count, std::int32_t key) {
  std::int32_t i = 0;
  std::int32_t less = 0;
#if defined(NORS_SIMD_SSE2)
  const __m128i needle = _mm_set1_epi32(key);
  __m128i acc = _mm_setzero_si128();
  for (; i + 4 <= count; i += 4) {
    const __m128i v = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(keys + i));
    // cmplt lanes are 0 or -1; subtracting accumulates a per-lane count.
    acc = _mm_sub_epi32(acc, _mm_cmplt_epi32(v, needle));
  }
  alignas(16) std::int32_t lanes[4];
  _mm_store_si128(reinterpret_cast<__m128i*>(lanes), acc);
  less = lanes[0] + lanes[1] + lanes[2] + lanes[3];
#elif defined(NORS_SIMD_NEON)
  const int32x4_t needle = vdupq_n_s32(key);
  int32x4_t acc = vdupq_n_s32(0);
  for (; i + 4 <= count; i += 4) {
    const int32x4_t v = vld1q_s32(keys + i);
    acc = vsubq_s32(acc, vreinterpretq_s32_u32(vcltq_s32(v, needle)));
  }
  less = vaddvq_s32(acc);
#endif
  for (; i < count; ++i) {
    // Branch-free tail (and the whole scalar fallback).
    less += keys[i] < key ? 1 : 0;
  }
  return less;
}

/// Lower bound over a sorted i32 run: the first index whose element is
/// >= key, count if none. Equivalent to std::lower_bound(keys, keys +
/// count, key) - keys for every input (pinned in test_util). Long runs
/// are first narrowed by a branchless binary search so the counting scan
/// touches at most ~64 contiguous elements (4 cache lines) — table slabs
/// are usually far below the threshold and take the pure scan.
inline std::int32_t lower_bound_i32(const std::int32_t* keys,
                                    std::int32_t count, std::int32_t key) {
  std::int32_t lo = 0;
  std::int32_t n = count;
  while (n > 64) {
    const std::int32_t half = n / 2;
    // Conditional-move shaped: no unpredictable branch on the comparison.
    lo = keys[lo + half - 1] < key ? lo + half : lo;
    n -= half;
  }
  return lo + count_less_i32(keys + lo, n, key);
}

}  // namespace nors::util::simd
