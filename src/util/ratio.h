#pragma once

#include <cstdint>
#include <numeric>
#include <string>

#include "util/check.h"

namespace nors::util {

/// Exact rational ε used throughout the scheme. The paper fixes
/// ε = 1/(48 k^4); we keep it as an explicit rational so every inequality of
/// the form  a < c / (1+ε)^p  can be decided exactly in integers:
///
///   a < c / (1+ε)^p   ⟺   a · P^p < c · Q^p     with  1+ε = P/Q.
///
/// All distances are int64 (weights are integers ≤ poly(n), as the paper
/// assumes), so with p ≤ 4 and the magnitudes used in this library the
/// products fit in __int128; the constructor checks the headroom.
class Epsilon {
 public:
  /// ε = num/den. Requires 0 < num ≤ den (so 0 < ε ≤ 1).
  Epsilon(std::int64_t num, std::int64_t den) : num_(num), den_(den) {
    NORS_CHECK_MSG(num > 0 && den > 0 && num <= den,
                   "epsilon must satisfy 0 < eps <= 1, got " << num << "/"
                                                             << den);
    const std::int64_t g = std::gcd(num, den);
    num_ /= g;
    den_ /= g;
    // (1+eps)^4 = P^4/Q^4 must leave room for distances up to ~2^40.
    NORS_CHECK_MSG(den_ + num_ < (std::int64_t{1} << 21),
                   "epsilon denominator too large for exact arithmetic");
  }

  /// The paper's choice ε = 1/(48 k^4).
  static Epsilon paper_value(int k) {
    NORS_CHECK(k >= 1);
    const std::int64_t k4 = std::int64_t{k} * k * k * k;
    return Epsilon(1, 48 * k4);
  }

  std::int64_t num() const { return num_; }
  std::int64_t den() const { return den_; }
  double value() const { return static_cast<double>(num_) / den_; }

  /// Decide  a < c / (1+ε)^p  exactly. Infinite c (see kDistInf in graph.h)
  /// must be handled by the caller; this function assumes finite operands.
  bool less_than_div(std::int64_t a, std::int64_t c, int p) const {
    NORS_CHECK(p >= 0 && p <= 8);
    __int128 lhs = a;
    __int128 rhs = c;
    for (int i = 0; i < p; ++i) {
      lhs *= (num_ + den_);  // a * P^p
      rhs *= den_;           // c * Q^p
    }
    return lhs < rhs;
  }

  /// Decide  a ≤ (1+ε)^p · c  exactly.
  bool leq_mul(std::int64_t a, std::int64_t c, int p) const {
    NORS_CHECK(p >= 0 && p <= 8);
    __int128 lhs = a;
    __int128 rhs = c;
    for (int i = 0; i < p; ++i) {
      lhs *= den_;
      rhs *= (num_ + den_);
    }
    return lhs <= rhs;
  }

  /// ceil(c · (1+ε)^p) — used only for reporting bounds, not for decisions.
  std::int64_t mul_pow_ceil(std::int64_t c, int p) const {
    __int128 numer = c;
    __int128 denom = 1;
    for (int i = 0; i < p; ++i) {
      numer *= (num_ + den_);
      denom *= den_;
    }
    return static_cast<std::int64_t>((numer + denom - 1) / denom);
  }

  std::string to_string() const {
    return std::to_string(num_) + "/" + std::to_string(den_);
  }

 private:
  std::int64_t num_;
  std::int64_t den_;
};

}  // namespace nors::util
