#pragma once

// Reusable pooled arenas for the construction pipeline (DESIGN.md §9).
//
// The construction's dominant allocations are short-lived slabs that recur
// with the same shape every tree / level / attempt / bench row: source-
// detection rows, CONGEST message slabs, per-root cluster entry lists, the
// large-level phase-1 state. Routing them through malloc has two costs at
// production sizes: the glibc heap never returns fragmented small-object
// memory to the OS (so peak RSS accumulates across phases), and every phase
// pays its allocation churn again.
//
// SlabPool is a process-wide, size-bucketed free pool of mmap'd slabs:
// `acquire` reuses a pooled slab of the right power-of-two class or maps a
// fresh one, `recycle` returns a slab to its bucket, and `trim` hands every
// pooled (free) slab back to the OS — the eager-release point between
// phases or rows. Because slabs are mmap'd, trimmed memory leaves RSS
// immediately instead of lingering in the heap.
//
// On top of the pool:
//   * PooledBuf<T> — a flat, movable buffer of trivially-copyable T with
//     discard-on-grow semantics (`ensure`), for the recurring slabs whose
//     contents are rewritten every round/run.
//   * Arena — a bump allocator with high-water reuse: after `reset()` the
//     next run's first slab covers the previous run's total footprint, so
//     steady state performs one pool acquisition per run and no mmap.
//
// All pool operations take one global mutex; callers acquire per phase or
// per growth step, never per element, so contention is negligible. The
// stats counters feed bench_construction's alloc_mb / arena_reuse_pct
// columns (bench/results/README.md).

#include <sys/mman.h>

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <mutex>
#include <new>
#include <span>
#include <vector>

#include "util/check.h"

namespace nors::util {

/// Cumulative pool counters (monotone; diff two snapshots to scope a row).
struct ArenaStats {
  std::uint64_t bytes_requested = 0;  // sum of acquire() request sizes
  std::uint64_t bytes_reused = 0;     // served by recycling a pooled slab
  std::uint64_t bytes_mapped = 0;     // fresh memory obtained from the OS
  std::uint64_t bytes_trimmed = 0;    // returned to the OS by trim()
  std::uint64_t slabs_reused = 0;
  std::uint64_t slabs_mapped = 0;

  /// Fraction of requested bytes served from the pool, in [0, 100].
  double reuse_pct() const {
    const double denom = static_cast<double>(bytes_reused + bytes_mapped);
    if (denom <= 0) return 0.0;
    return 100.0 * static_cast<double>(bytes_reused) / denom;
  }
};

/// Size-bucketed free pool of anonymous mmap slabs. Thread-safe.
class SlabPool {
 public:
  struct Slab {
    void* p = nullptr;
    std::size_t bytes = 0;  // always a power of two ≥ kMinSlabBytes (or 0)
  };

  static constexpr std::size_t kMinSlabBytes = std::size_t{1} << 16;  // 64 KiB

  SlabPool() = default;
  SlabPool(const SlabPool&) = delete;
  SlabPool& operator=(const SlabPool&) = delete;
  ~SlabPool() { trim(); }

  /// The process-wide pool every arena defaults to.
  static SlabPool& global() {
    static SlabPool pool;
    return pool;
  }

  /// A slab of at least `min_bytes`: the exact power-of-two class is reused
  /// from the pool when available, otherwise freshly mapped.
  Slab acquire(std::size_t min_bytes) {
    const std::size_t bytes = slab_bytes(min_bytes);
    const std::size_t b = bucket_of(bytes);
    {
      const std::lock_guard<std::mutex> lock(mu_);
      stats_.bytes_requested += min_bytes;
      if (b < buckets_.size() && !buckets_[b].empty()) {
        void* p = buckets_[b].back();
        buckets_[b].pop_back();
        pooled_bytes_ -= bytes;
        stats_.bytes_reused += bytes;
        ++stats_.slabs_reused;
        return {p, bytes};
      }
      stats_.bytes_mapped += bytes;
      ++stats_.slabs_mapped;
    }
    void* p = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    NORS_CHECK_MSG(p != MAP_FAILED, "SlabPool: mmap of " << bytes
                                                         << " bytes failed");
    return {p, bytes};
  }

  /// Returns a slab to its size bucket (kept mapped until trim()).
  void recycle(Slab s) {
    if (s.p == nullptr) return;
    const std::size_t b = bucket_of(s.bytes);
    const std::lock_guard<std::mutex> lock(mu_);
    if (buckets_.size() <= b) buckets_.resize(b + 1);
    buckets_[b].push_back(s.p);
    pooled_bytes_ += s.bytes;
  }

  /// Unmaps every pooled (free) slab — the eager-release point between
  /// phases or bench rows. Returns the number of bytes handed back.
  std::size_t trim() {
    std::vector<std::vector<void*>> taken;
    std::size_t freed = 0;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      taken.swap(buckets_);
      freed = pooled_bytes_;
      pooled_bytes_ = 0;
      stats_.bytes_trimmed += freed;
    }
    for (std::size_t b = 0; b < taken.size(); ++b) {
      for (void* p : taken[b]) {
        ::munmap(p, kMinSlabBytes << b);
      }
    }
    return freed;
  }

  ArenaStats stats() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }

  /// Bytes currently held in free buckets (mapped but unused).
  std::size_t pooled_bytes() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return pooled_bytes_;
  }

 private:
  static std::size_t slab_bytes(std::size_t min_bytes) {
    std::size_t bytes = kMinSlabBytes;
    while (bytes < min_bytes) bytes <<= 1;
    return bytes;
  }
  static std::size_t bucket_of(std::size_t bytes) {
    std::size_t b = 0;
    while ((kMinSlabBytes << b) < bytes) ++b;
    return b;
  }

  mutable std::mutex mu_;
  std::vector<std::vector<void*>> buckets_;  // buckets_[b]: 64KiB << b slabs
  std::size_t pooled_bytes_ = 0;
  ArenaStats stats_;
};

/// A flat buffer of trivially-copyable T over one pool slab. Move-only.
/// `ensure(n)` discards contents (the recurring-slab pattern: every round or
/// run rewrites the buffer in full); `grow_preserve` keeps a prefix. The
/// slab returns to the pool on release/destruction.
template <typename T>
class PooledBuf {
  static_assert(std::is_trivially_copyable_v<T> &&
                    std::is_trivially_destructible_v<T>,
                "PooledBuf requires trivially copyable contents");

 public:
  PooledBuf() : pool_(&SlabPool::global()) {}
  explicit PooledBuf(SlabPool& pool) : pool_(&pool) {}
  PooledBuf(const PooledBuf&) = delete;
  PooledBuf& operator=(const PooledBuf&) = delete;
  PooledBuf(PooledBuf&& o) noexcept
      : pool_(o.pool_), slab_(o.slab_), size_(o.size_) {
    o.slab_ = {};
    o.size_ = 0;
  }
  PooledBuf& operator=(PooledBuf&& o) noexcept {
    if (this != &o) {
      release();
      pool_ = o.pool_;
      slab_ = o.slab_;
      size_ = o.size_;
      o.slab_ = {};
      o.size_ = 0;
    }
    return *this;
  }
  ~PooledBuf() { release(); }

  T* data() { return static_cast<T*>(slab_.p); }
  const T* data() const { return static_cast<const T*>(slab_.p); }
  std::size_t size() const { return size_; }
  std::size_t capacity() const { return slab_.bytes / sizeof(T); }
  bool empty() const { return size_ == 0; }
  T& operator[](std::size_t i) { return data()[i]; }
  const T& operator[](std::size_t i) const { return data()[i]; }
  std::span<T> span() { return {data(), size_}; }
  std::span<const T> span() const { return {data(), size_}; }

  /// Capacity for n elements, contents unspecified; size becomes n.
  T* ensure(std::size_t n) {
    if (capacity() < n) {
      pool_->recycle(slab_);
      slab_ = pool_->acquire(n * sizeof(T));
    }
    size_ = n;
    return data();
  }

  /// Capacity for n, preserving the first min(size, n) elements.
  T* grow_preserve(std::size_t n) {
    if (capacity() < n) {
      SlabPool::Slab bigger = pool_->acquire(n * sizeof(T));
      if (size_ > 0) {
        std::memcpy(bigger.p, slab_.p, size_ * sizeof(T));
      }
      pool_->recycle(slab_);
      slab_ = bigger;
    }
    size_ = n;
    return data();
  }

  /// ensure(n) then fill with `value` (the assign(n, v) pattern).
  T* assign_fill(std::size_t n, const T& value) {
    T* p = ensure(n);
    for (std::size_t i = 0; i < n; ++i) p[i] = value;
    return p;
  }

  void clear() { size_ = 0; }

  void swap(PooledBuf& o) noexcept {
    std::swap(pool_, o.pool_);
    std::swap(slab_, o.slab_);
    std::swap(size_, o.size_);
  }

  /// Returns the slab to the pool (the buffer becomes empty).
  void release() {
    pool_->recycle(slab_);
    slab_ = {};
    size_ = 0;
  }

 private:
  SlabPool* pool_;
  SlabPool::Slab slab_;
  std::size_t size_ = 0;
};

/// Bump allocator over pool slabs for many small allocations with one
/// lifetime (e.g. the per-vertex cluster entry chunks of one CONGEST run).
/// Not thread-safe; alignment up to alignof(std::max_align_t). reset()
/// recycles every slab and remembers the high-water footprint, so the next
/// run starts with a single slab that covers it — steady state costs one
/// pool acquisition per run.
class Arena {
 public:
  explicit Arena(SlabPool& pool = SlabPool::global()) : pool_(&pool) {}
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  ~Arena() { reset(); }

  /// Uninitialized storage for n objects of T, aligned to alignof(T).
  template <typename T>
  T* alloc(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena memory is reclaimed without destructors");
    static_assert(alignof(T) <= alignof(std::max_align_t));
    const std::size_t bytes = n * sizeof(T);
    std::size_t pad = cur_ % alignof(T);
    if (pad != 0) pad = alignof(T) - pad;
    if (cur_ + pad + bytes > end_) {
      new_slab(bytes);
      pad = 0;  // fresh slabs are page-aligned
    }
    T* p = reinterpret_cast<T*>(cur_ + pad);
    cur_ += pad + bytes;
    used_ += pad + bytes;
    return p;
  }

  /// Recycles every slab into the pool; the high-water total is remembered
  /// so the next allocation acquires one slab covering it.
  void reset() {
    for (const SlabPool::Slab& s : slabs_) pool_->recycle(s);
    slabs_.clear();
    high_water_ = std::max(high_water_, used_);
    used_ = 0;
    cur_ = end_ = 0;
  }

  /// Bytes handed out since the last reset (excluding slab slack).
  std::size_t used_bytes() const { return used_; }

 private:
  void new_slab(std::size_t min_bytes) {
    // First slab after a reset covers the high-water mark; growth beyond it
    // doubles so a run allocates O(log) slabs while it discovers its size.
    std::size_t want = slabs_.empty()
                           ? std::max(high_water_, min_bytes)
                           : std::max(used_ , min_bytes);
    slabs_.push_back(pool_->acquire(std::max(want, min_bytes)));
    cur_ = reinterpret_cast<std::uintptr_t>(slabs_.back().p);
    end_ = cur_ + slabs_.back().bytes;
  }

  SlabPool* pool_;
  std::vector<SlabPool::Slab> slabs_;
  std::uintptr_t cur_ = 0, end_ = 0;
  std::size_t used_ = 0;
  std::size_t high_water_ = 0;
};

}  // namespace nors::util
