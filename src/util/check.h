#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

// Lightweight runtime contract checking. NORS_CHECK is always on (these guard
// algorithmic invariants and interface preconditions, not hot inner loops);
// violations throw std::logic_error with a file:line message so tests can
// assert on them and callers can't silently continue with a broken invariant.

namespace nors::util {

[[noreturn]] inline void check_failed(const char* file, int line,
                                      const char* expr,
                                      const std::string& message) {
  std::ostringstream os;
  os << file << ":" << line << ": check failed: " << expr;
  if (!message.empty()) os << " — " << message;
  throw std::logic_error(os.str());
}

}  // namespace nors::util

#define NORS_CHECK(cond)                                              \
  do {                                                                \
    if (!(cond)) ::nors::util::check_failed(__FILE__, __LINE__, #cond, ""); \
  } while (0)

#define NORS_CHECK_MSG(cond, msg)                                     \
  do {                                                                \
    if (!(cond)) {                                                    \
      std::ostringstream nors_check_os_;                              \
      nors_check_os_ << msg;                                          \
      ::nors::util::check_failed(__FILE__, __LINE__, #cond,           \
                                 nors_check_os_.str());               \
    }                                                                 \
  } while (0)
