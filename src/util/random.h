#pragma once

#include <cstdint>
#include <vector>

#include "util/check.h"

namespace nors::util {

/// Deterministic, fast PRNG (xoshiro256++) seeded via splitmix64.
///
/// All randomized algorithms in the library take an explicit Rng so that
/// every construction is reproducible from a single seed. `fork` derives an
/// independent stream, which lets parallel phases draw from disjoint streams
/// without coupling their consumption order.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    std::uint64_t x = seed;
    for (auto& si : s_) si = splitmix64(x);
  }

  /// Uniform 64-bit value.
  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be positive.
  std::uint64_t uniform(std::uint64_t bound) {
    NORS_CHECK(bound > 0);
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
      const std::uint64_t r = next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    NORS_CHECK(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    uniform(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double uniform01() { return (next() >> 11) * 0x1.0p-53; }

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform01() < p;
  }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[uniform(i)]);
    }
  }

  /// Derive an independent stream for a sub-phase.
  Rng fork(std::uint64_t stream) {
    return Rng(next() ^ (0x9e3779b97f4a7c15ULL * (stream + 1)));
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  static std::uint64_t splitmix64(std::uint64_t& x) {
    std::uint64_t z = (x += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  std::uint64_t s_[4];
};

}  // namespace nors::util
