#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

#include "util/check.h"

namespace nors::util {

/// Word-oriented binary encoder. The paper measures every data structure in
/// O(log n)-bit words; serializing each such word as one int64 makes the
/// byte size of a blob exactly 8× its word count, so the codec doubles as a
/// check that the library's words() accounting is honest (test_codec).
class WordWriter {
 public:
  void put(std::int64_t w) { words_.push_back(w); }

  std::size_t word_count() const { return words_.size(); }

  /// The raw words, for callers that pack many blobs into one pool (the
  /// frozen serving layer) without the bytes() copy.
  const std::vector<std::int64_t>& words() const { return words_; }

  /// Resets to empty, keeping capacity — one writer can serve a whole
  /// freeze loop without reallocating.
  void clear() { words_.clear(); }

  std::vector<std::uint8_t> bytes() const {
    std::vector<std::uint8_t> out(words_.size() * 8);
    std::memcpy(out.data(), words_.data(), out.size());
    return out;
  }

 private:
  std::vector<std::int64_t> words_;
};

/// Matching decoder; throws on under/overrun.
class WordReader {
 public:
  explicit WordReader(const std::vector<std::uint8_t>& bytes) {
    NORS_CHECK_MSG(bytes.size() % 8 == 0, "blob is not word-aligned");
    words_.resize(bytes.size() / 8);
    std::memcpy(words_.data(), bytes.data(), bytes.size());
  }

  std::int64_t get() {
    NORS_CHECK_MSG(pos_ < words_.size(), "decode past end of blob");
    return words_[pos_++];
  }

  bool exhausted() const { return pos_ == words_.size(); }

 private:
  std::vector<std::int64_t> words_;
  std::size_t pos_ = 0;
};

}  // namespace nors::util
