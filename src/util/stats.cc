#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace nors::util {

void Accumulator::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double Accumulator::min() const {
  NORS_CHECK(count_ > 0);
  return min_;
}
double Accumulator::max() const {
  NORS_CHECK(count_ > 0);
  return max_;
}
double Accumulator::mean() const {
  NORS_CHECK(count_ > 0);
  return mean_;
}
double Accumulator::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}
double Accumulator::stddev() const { return std::sqrt(variance()); }

double percentile(std::vector<double> values, double q) {
  NORS_CHECK(!values.empty());
  NORS_CHECK(q >= 0.0 && q <= 1.0);
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

}  // namespace nors::util
