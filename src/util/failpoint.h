#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace nors::util {

// Fault-injection registry (DESIGN.md §12): named failpoints threaded
// through the serving stack's I/O and compute paths so tests — and
// operators chasing a production incident — can *provoke* the failures
// the code claims to survive, instead of waiting for the network to
// oblige.
//
// Activation is environmental or programmatic:
//
//   NORS_FAILPOINTS=name:mode:rate[:arg][,name:mode:rate[:arg]...]
//   util::Failpoints::configure("net.read:partial:0.5");  // tests
//
// Modes (`rate` is a firing probability in [0, 1] unless noted):
//
//   error     error-return: the caller injects its natural failure
//             (close the connection, throw, refuse the accept)
//   delay     sleep `arg` milliseconds inside the evaluation (arg
//             defaults to 10); the caller sees kNone
//   partial   partial I/O: the caller truncates the operation to a
//             single byte, maximally fragmenting the stream
//   oneshot   error-return exactly once, on the `rate`-th evaluation
//             (1-based integer; fires once, then disarms)
//
// The catalog of instrumented sites lives in DESIGN.md §12; unknown
// names are legal and simply never fire, so a spec can outlive the code
// it targets without breaking startup.
//
// Cost model: when nothing is configured, util::failpoint() is a single
// relaxed atomic load and a predicted-not-taken branch — cheap enough
// for per-syscall hot paths. Armed evaluation takes a registry mutex
// (failure injection is not a throughput feature).

enum class FpAction : std::uint8_t {
  kNone = 0,     // proceed normally
  kError = 1,    // inject the caller's error path
  kPartial = 2,  // truncate the I/O to one byte
};

class Failpoints {
 public:
  /// Replaces the active set with `spec` (the NORS_FAILPOINTS grammar
  /// above). An empty spec clears. Throws std::logic_error on a
  /// malformed spec — a typo'd chaos run must fail loudly, not silently
  /// test nothing.
  static void configure(const std::string& spec);

  /// Disarms every failpoint (tests call this in teardown).
  static void clear();

  /// True when any failpoint is configured — the fast-path gate.
  static bool armed() {
    return active_.load(std::memory_order_relaxed) > 0;
  }

  /// Slow path: roll the named failpoint. Executes delay modes inline
  /// (sleeps, then returns kNone); returns the action for error/partial
  /// modes. Unknown names return kNone. Thread-safe.
  static FpAction eval(const char* name);

  /// Total fires (any mode) since process start — chaos tests assert
  /// the injection actually happened.
  static std::int64_t trips();

 private:
  static std::atomic<int> active_;
};

/// The instrumentation macro-in-function-clothing: zero overhead when
/// disarmed, one registry roll when armed.
inline FpAction failpoint(const char* name) {
  if (!Failpoints::armed()) return FpAction::kNone;
  return Failpoints::eval(name);
}

}  // namespace nors::util
