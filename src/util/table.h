#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace nors::util {

/// Minimal ASCII table renderer used by the benchmark harness to print
/// paper-style tables (Table 1 rows, scaling series, ...).
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  std::string render() const;

  // Formatting helpers for cells.
  static std::string fmt(std::int64_t v);
  static std::string fmt(double v, int precision = 2);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace nors::util
