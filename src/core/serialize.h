#pragma once

#include <vector>

#include "core/scheme.h"
#include "treeroute/codec.h"

namespace nors::core {

/// Wire labels are emitted in whole little-endian 8-byte words (one per
/// O(log n)-bit word the paper counts). This is also an alignment
/// contract with the frozen serving layer: every per-vertex blob is a
/// multiple of kWireWordBytes, so the byte offsets of FrozenScheme's
/// packed blob pool stay word-aligned and a memory-mapped image can hand
/// out label views without copying or re-aligning (DESIGN.md §8.2).
/// WordReader enforces the invariant on decode.
inline constexpr std::size_t kWireWordBytes = sizeof(std::int64_t);

/// Wire form of a vertex's complete routing label — what a packet header
/// carries and what a node hands to peers at connection setup. Decoding
/// recovers everything a router needs from the destination side; the
/// round-trip is validated in test_codec, including that the byte size
/// matches the scheme's label_words() accounting exactly. The label entries
/// are read from the scheme's flat label arena (core/scheme.h); the frozen
/// serving snapshot (serve/frozen.h) packs all n blobs into one pool with
/// the writer-append overload below.
std::vector<std::uint8_t> encode_vertex_label(const RoutingScheme& scheme,
                                              graph::Vertex v);

/// Same encoding, appended to an existing writer (no per-vertex allocation
/// when packing many labels into one blob pool).
void encode_vertex_label(const RoutingScheme& scheme, graph::Vertex v,
                         util::WordWriter& w);

struct DecodedVertexLabel {
  struct Entry {
    graph::Vertex pivot = graph::kNoVertex;
    graph::Dist pivot_dist = graph::kDistInf;
    bool member = false;
    treeroute::DistTreeScheme::VLabel tree_label;
  };
  std::vector<Entry> levels;
};

DecodedVertexLabel decode_vertex_label(const std::vector<std::uint8_t>& bytes);

/// Wire words beyond label_words(): per-level list/length overheads.
std::int64_t vertex_label_overhead_words(const RoutingScheme& scheme,
                                         graph::Vertex v);

// ---------------------------------------------------------------- varint --
// LEB128-style varint + zigzag codec for the frozen-table v3 port-column
// sections (DESIGN.md §10). The encoding is canonical — exactly one byte
// sequence per value, enforced on decode — which is what lets a decoded
// image re-encode byte-identically (save→load→save and save→map→save stay
// byte-for-byte equal per format version). Pinned by test_codec.

/// Appends x as a little-endian base-128 varint: 7 value bits per byte,
/// high bit = continuation. At most 10 bytes for 64-bit values.
inline void put_uvarint(std::vector<std::uint8_t>& out, std::uint64_t x) {
  while (x >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(x) | 0x80u);
    x >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(x));
}

/// Decodes one canonical varint from [p, end); returns the cursor after
/// it. Throws std::logic_error on truncation, on 64-bit overflow, and on
/// any non-minimal (over-long) encoding — e.g. {0x80, 0x00} for 0.
const std::uint8_t* get_uvarint(const std::uint8_t* p,
                                const std::uint8_t* end, std::uint64_t& x);

/// Zigzag mapping: small-magnitude signed values (ports, deltas) become
/// small unsigned varints. 0→0, -1→1, 1→2, -2→3, ...
inline std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}
inline std::int64_t unzigzag(std::uint64_t u) {
  return static_cast<std::int64_t>(u >> 1) ^
         -static_cast<std::int64_t>(u & 1);
}

}  // namespace nors::core
