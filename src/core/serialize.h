#pragma once

#include <vector>

#include "core/scheme.h"
#include "treeroute/codec.h"

namespace nors::core {

/// Wire labels are emitted in whole little-endian 8-byte words (one per
/// O(log n)-bit word the paper counts). This is also an alignment
/// contract with the frozen serving layer: every per-vertex blob is a
/// multiple of kWireWordBytes, so the byte offsets of FrozenScheme's
/// packed blob pool stay word-aligned and a memory-mapped image can hand
/// out label views without copying or re-aligning (DESIGN.md §8.2).
/// WordReader enforces the invariant on decode.
inline constexpr std::size_t kWireWordBytes = sizeof(std::int64_t);

/// Wire form of a vertex's complete routing label — what a packet header
/// carries and what a node hands to peers at connection setup. Decoding
/// recovers everything a router needs from the destination side; the
/// round-trip is validated in test_codec, including that the byte size
/// matches the scheme's label_words() accounting exactly. The label entries
/// are read from the scheme's flat label arena (core/scheme.h); the frozen
/// serving snapshot (serve/frozen.h) packs all n blobs into one pool with
/// the writer-append overload below.
std::vector<std::uint8_t> encode_vertex_label(const RoutingScheme& scheme,
                                              graph::Vertex v);

/// Same encoding, appended to an existing writer (no per-vertex allocation
/// when packing many labels into one blob pool).
void encode_vertex_label(const RoutingScheme& scheme, graph::Vertex v,
                         util::WordWriter& w);

struct DecodedVertexLabel {
  struct Entry {
    graph::Vertex pivot = graph::kNoVertex;
    graph::Dist pivot_dist = graph::kDistInf;
    bool member = false;
    treeroute::DistTreeScheme::VLabel tree_label;
  };
  std::vector<Entry> levels;
};

DecodedVertexLabel decode_vertex_label(const std::vector<std::uint8_t>& bytes);

/// Wire words beyond label_words(): per-level list/length overheads.
std::int64_t vertex_label_overhead_words(const RoutingScheme& scheme,
                                         graph::Vertex v);

}  // namespace nors::core
