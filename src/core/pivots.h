#pragma once

#include <vector>

#include "congest/ledger.h"
#include "core/params.h"
#include "graph/graph.h"
#include "primitives/hierarchy.h"

namespace nors::core {

/// Per-vertex pivots ẑ_i(v) and distances d̂_i(v) for every level (paper
/// §3.1). Levels ≤ ⌈k/2⌉ are exact (computed by simulated set-Bellman–Ford);
/// higher levels are (1+ε)-approximate (Theorem 3 on the preprocessed
/// virtual graph G''). Row k is d(v, A_k) = ∞ by convention.
struct PivotTable {
  int k = 0;
  int n = 0;
  std::vector<graph::Vertex> pivot;  // [i*n + v], i in 0..k-1
  std::vector<graph::Dist> dist;     // [i*n + v], i in 0..k
  std::vector<char> exact;           // per level i in 0..k-1

  graph::Vertex z(int i, graph::Vertex v) const {
    NORS_CHECK(i >= 0 && i < k);
    return pivot[static_cast<std::size_t>(i) * n + static_cast<std::size_t>(v)];
  }
  graph::Dist d(int i, graph::Vertex v) const {
    NORS_CHECK(i >= 0 && i <= k);
    return dist[static_cast<std::size_t>(i) * n + static_cast<std::size_t>(v)];
  }
  bool level_exact(int i) const {
    return exact[static_cast<std::size_t>(i)] != 0;
  }
};

/// Highest level whose pivots are computed exactly: ⌈k/2⌉ (capped at k-1).
int last_exact_pivot_level(int k);

/// Allocates the table and fills the exact levels 0..last_exact_pivot_level
/// by running set-Bellman–Ford on the CONGEST simulator per level (level 0
/// is trivial: every vertex is its own pivot). Appends simulated costs to
/// the ledger.
PivotTable compute_exact_pivots(const graph::WeightedGraph& g,
                                const primitives::Hierarchy& h,
                                const SchemeParams& params,
                                congest::RoundLedger& ledger);

}  // namespace nors::core
