#include "core/distance_estimation.h"

namespace nors::core {

using graph::Dist;
using graph::Vertex;

DistanceEstimation DistanceEstimation::build(const RoutingScheme& scheme) {
  DistanceEstimation de;
  de.k_ = scheme.params().k;
  de.bound_ =
      estimation_stretch_bound(de.k_, scheme.params().epsilon());
  const int n = scheme.pivots_.n;
  de.sketches_.assign(static_cast<std::size_t>(n), {});
  for (const auto& t : scheme.trees()) {
    for (std::size_t i = 0; i < t.size(); ++i) {
      de.sketches_[static_cast<std::size_t>(t.members[i])]
          .clusters[t.root] = t.info[i].b;
    }
  }
  for (Vertex v = 0; v < n; ++v) {
    auto& sk = de.sketches_[static_cast<std::size_t>(v)];
    sk.pivots.reserve(static_cast<std::size_t>(de.k_));
    for (int i = 0; i < de.k_; ++i) {
      sk.pivots.push_back({scheme.pivots_.z(i, v), scheme.pivots_.d(i, v)});
    }
  }
  return de;
}

DistanceEstimation::QueryResult DistanceEstimation::estimate(Vertex u,
                                                             Vertex v) const {
  QueryResult r;
  if (u == v) {
    r.estimate = 0;
    return r;
  }
  // Algorithm 2: w ← u (the 0-pivot of u); while v ∉ C̃(w): swap roles and
  // take the next-level pivot. Terminates by level k-1 (C̃ spans V there).
  Vertex w = u;
  Dist d_uw = 0;
  for (int i = 0;; ++i) {
    NORS_CHECK_MSG(i < k_, "Algorithm 2 exceeded k iterations");
    ++r.iterations;
    const auto& sk_v = sketches_[static_cast<std::size_t>(v)].clusters;
    auto it = sk_v.find(w);
    if (it != sk_v.end()) {
      r.estimate = d_uw + it->second;
      return r;
    }
    std::swap(u, v);
    const auto& piv = sketches_[static_cast<std::size_t>(u)].pivots;
    w = piv[static_cast<std::size_t>(i) + 1].first;
    d_uw = piv[static_cast<std::size_t>(i) + 1].second;
    NORS_CHECK_MSG(w != graph::kNoVertex, "missing pivot in sketch");
  }
}

DistanceEstimation::QueryResult DistanceEstimation::estimate_from_label(
    Vertex u, Vertex v) const {
  QueryResult r;
  if (u == v) {
    r.estimate = 0;
    return r;
  }
  // v's one-sided label: for each level i, (ẑ_i(v), b_v(ẑ_i(v)) if member).
  // u's side: its own cluster memberships. The first level whose pivot
  // tree contains both gives the estimate b_u(w) + b_v(w) — exactly the
  // path the routing scheme would use.
  const auto& sk_u = sketches_[static_cast<std::size_t>(u)].clusters;
  const auto& sk_v = sketches_[static_cast<std::size_t>(v)];
  for (int i = 0; i < k_; ++i) {
    ++r.iterations;
    const Vertex w = sk_v.pivots[static_cast<std::size_t>(i)].first;
    if (w == graph::kNoVertex) continue;
    const auto iv = sk_v.clusters.find(w);
    if (iv == sk_v.clusters.end()) continue;  // v ∉ C̃(ẑ_i(v))
    const auto iu = sk_u.find(w);
    if (iu == sk_u.end()) continue;  // u ∉ C̃(ẑ_i(v))
    r.estimate = iu->second + iv->second;
    return r;
  }
  NORS_CHECK_MSG(false, "find-tree failed in one-sided estimation");
}

std::int64_t DistanceEstimation::sketch_words(Vertex v) const {
  const auto& sk = sketches_[static_cast<std::size_t>(v)];
  return 2LL * static_cast<std::int64_t>(sk.clusters.size()) +
         2LL * static_cast<std::int64_t>(sk.pivots.size());
}

}  // namespace nors::core
