#include "core/packet_sim.h"

#include "congest/network.h"

namespace nors::core {

namespace {

using graph::Vertex;

/// The forwarding program: the packet is a token that hops along the route
/// the scheme's tables dictate; its header (root + destination label) is
/// streamed over each edge in O(1)-word messages, one per round.
class PacketProgram : public congest::NodeProgram {
 public:
  static constexpr std::uint16_t kChunk = 1;

  PacketProgram(const graph::WeightedGraph& g, const RoutingScheme& scheme,
                Vertex src, Vertex dst, std::int64_t header_words)
      : g_(g),
        scheme_(scheme),
        src_(src),
        dst_(dst),
        chunks_per_hop_(
            (header_words + congest::kMaxWords - 1) / congest::kMaxWords) {}

  void begin(congest::Network& net) override {
    holder_ = src_;
    if (holder_ == dst_) {
      arrived_ = true;
      return;
    }
    net.wake(src_);
  }

  void on_round(Vertex v, congest::MessageView inbox,
                congest::Sender& out) override {
    for (const auto& m : inbox) {
      if (m.tag != kChunk) continue;
      // Last chunk of the header hands the packet over.
      if (m.w[0] + 1 == chunks_per_hop_) {
        holder_ = v;
        if (v == dst_) {
          arrived_ = true;
          return;
        }
        pending_chunk_ = 0;
        out.wake_self();
      }
    }
    if (v != holder_ || arrived_) return;
    // Forward decision: purely local (table of v + destination label from
    // the header this program models).
    const auto route = next_port(v);
    if (route == graph::kNoPort) return;  // shouldn't happen pre-arrival
    out.send(route, congest::Message::make(kChunk, {pending_chunk_}));
    ++hops_weight_ready_;
    if (pending_chunk_ == 0) {
      length_ += g_.edge(v, route).w;
      ++hops_;
    }
    if (++pending_chunk_ < chunks_per_hop_) {
      out.wake_self();
    }
  }

  std::int32_t next_port(Vertex x) const {
    // Re-derive the forwarding decision the scheme's route() makes; the
    // header pins (tree, dest label) at the source, so intermediate hops
    // consult only their own NodeInfo.
    if (cached_tree_ == nullptr) {
      const auto probe = scheme_.route(src_, dst_);
      NORS_CHECK(probe.ok);
      const int idx = scheme_.tree_index(probe.tree_root);
      NORS_CHECK(idx >= 0);
      cached_tree_ = &scheme_.tree_scheme(static_cast<std::size_t>(idx));
      if (probe.via_trick) {
        cached_label_ = &scheme_.trick_label(probe.tree_root, dst_);
      } else {
        cached_label_ =
            &scheme_.label_entry(dst_, probe.tree_level).tree_label;
      }
    }
    return cached_tree_->next_hop(x, *cached_label_);
  }

  const graph::WeightedGraph& g_;
  const RoutingScheme& scheme_;
  Vertex src_, dst_;
  std::int64_t chunks_per_hop_;
  Vertex holder_ = graph::kNoVertex;
  std::int64_t pending_chunk_ = 0;
  bool arrived_ = false;
  int hops_ = 0;
  graph::Dist length_ = 0;
  std::int64_t hops_weight_ready_ = 0;
  mutable const treeroute::DistTreeScheme* cached_tree_ = nullptr;
  mutable const treeroute::DistTreeScheme::VLabel* cached_label_ = nullptr;
};

}  // namespace

PacketDelivery simulate_packet(const graph::WeightedGraph& g,
                               const RoutingScheme& scheme, Vertex u,
                               Vertex v) {
  PacketDelivery d;
  d.header_words = 2 + scheme.label_words(v);  // tree root + dest label
  PacketProgram prog(g, scheme, u, v, d.header_words);
  congest::Network net(g, {});
  const auto stats = net.run(prog);
  d.ok = prog.arrived_;
  d.hops = prog.hops_;
  d.length = prog.length_;
  d.rounds = stats.rounds;
  return d;
}

}  // namespace nors::core
