#pragma once

#include "core/scheme.h"

namespace nors::core {

/// Message-level simulation of the routing phase: delivers one packet from
/// u to v through the CONGEST simulator, with every forwarding decision
/// made locally from the current vertex's routing table and the header.
///
/// The header is what the paper's model allows a packet to carry: the
/// chosen tree root plus the destination's O(k log² n)-word label. A single
/// CONGEST message holds O(1) words, so each hop costs
/// ceil(header_words / kMaxWords) rounds of real transmission — this is the
/// per-hop latency the label-size claim buys.
struct PacketDelivery {
  bool ok = false;
  int hops = 0;
  graph::Dist length = 0;
  std::int64_t rounds = 0;        // simulated rounds to deliver
  std::int64_t header_words = 0;  // words carried by the packet
};

PacketDelivery simulate_packet(const graph::WeightedGraph& g,
                               const RoutingScheme& scheme, graph::Vertex u,
                               graph::Vertex v);

}  // namespace nors::core
