#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "util/ratio.h"

namespace nors::core {

/// Configuration of the distributed routing-scheme construction (paper §3-4).
struct SchemeParams {
  /// Stretch/size parameter k ≥ 1: tables Õ(n^{1/k}), stretch 4k-5+o(1).
  int k = 3;

  /// ε of §3.1. Defaults to the paper's 1/(48 k⁴); benches may use larger
  /// practical values (E7 ablation). Always an exact rational.
  std::optional<util::Epsilon> eps;

  std::uint64_t seed = 1;

  /// Multiplier of the "4·…·ln n" hitting-set constants (Claim 3). 1.0 is
  /// the paper value; smaller values shrink hop bounds / BF depths at the
  /// cost of a higher (measured) failure probability — used in robustness
  /// tests only.
  double hit_constant = 4.0;

  /// Store the labels of every member of level-0 clusters at the cluster
  /// root (the TZ01 trick) — improves stretch 4k-3 → 4k-5.
  bool label_trick = true;

  /// Hierarchy levels of the hopset's internal TZ sampling.
  int hopset_levels = 2;

  /// CONGEST per-edge capacity (1 = the standard model).
  int edge_capacity = 1;

  /// Worker threads for the construction-side batch phases (the Section-6
  /// per-tree builds). 0 consults the NORS_THREADS environment variable;
  /// 1 is serial. Every value yields bit-identical schemes, labels, round
  /// counts and ledgers — the pool only changes wall-clock (DESIGN.md §7).
  int threads = 0;

  /// Retries with doubled hop bound B if top-level tree coverage fails
  /// (possible when the whp hitting event of Claim 3 does not materialize).
  int max_b_retries = 3;

  /// γ override for the Section-6 tree-routing batch (0 = Remark 3 choice).
  double tree_gamma = 0;

  /// §3.2 "The middle level": for odd k, build level (k-1)/2 via Theorem-1
  /// source detection instead of plain Bellman–Ford. Disable to measure the
  /// ablation (bench_middle_level, experiment E8).
  bool middle_level_opt = true;

  /// §3.3 hopsets: the paper's key device — Phase 1 explores β hops of
  /// G'' = G' ∪ F instead of up to |V'| hops of G'. Disabling emulates the
  /// hopset-less approach (the [LP15] regime the paper improves on): the
  /// exploration range, and with it the Phase-1 round cost, grows with the
  /// virtual graph's shortest-path hop diameter (bench_ablation_hopset).
  bool use_hopset = true;

  util::Epsilon epsilon() const {
    return eps ? *eps : util::Epsilon::paper_value(k);
  }

  std::string describe() const;
};

/// The paper's analytic stretch bound for these parameters, from the
/// recursion of §4 (equations (33)–(39)) with the exact ε: routing cost ≤
/// bound · d_G(u,v). With the label trick the recursion starts from
/// x₁ ≤ (1+ε)(1+6ε)·y₀ instead of x₁ ≈ 2y₀, giving 4k-5+o(1) instead of
/// 4k-3+o(1).
double stretch_bound(int k, const util::Epsilon& eps, bool label_trick);

/// Analytic bound for the distance-estimation scheme (§5): 2k-1+o(1).
double estimation_stretch_bound(int k, const util::Epsilon& eps);

}  // namespace nors::core
