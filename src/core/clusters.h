#pragma once

#include <algorithm>
#include <vector>

#include "congest/ledger.h"
#include "core/params.h"
#include "core/pivots.h"
#include "graph/graph.h"
#include "hopset/hopset.h"
#include "primitives/hierarchy.h"
#include "primitives/source_detection.h"
#include "util/random.h"

namespace nors::core {

/// How a hierarchy level is constructed (paper §3.2–3.3).
enum class LevelKind { kSmall, kMiddle, kLarge };
LevelKind classify_level(int i, int k);

/// §3.3.1 preprocessing shared by all large levels and the approximate SPTs
/// (Theorem 3): V' = A_{⌈k/2⌉}, B-hop source detection from V', the virtual
/// graph G' on V', a path-reporting hopset F for G', and the combined G''.
struct Preprocess {
  std::vector<graph::Vertex> vprime;  // ascending; source order of `sd`
  std::vector<int> vp_index;          // graph vertex -> V' index or -1
  primitives::SourceDetectionResult sd;
  graph::WeightedGraph gprime;  // on V' indices
  hopset::Hopset hs;            // on gprime
  std::int64_t b_hops = 0;

  /// One adjacency over G'' = G' ∪ F: hopset_id ≥ 0 marks a hopset edge
  /// (indexing hs.edges) whose realizing path Phase 1.5 must walk.
  struct GppEdge {
    int to = -1;
    graph::Dist w = 0;
    int hopset_id = -1;
  };
  std::vector<std::vector<GppEdge>> gpp_adj;

  int beta() const { return hs.beta; }
};

Preprocess build_preprocess(const graph::WeightedGraph& g,
                            const primitives::Hierarchy& h,
                            const SchemeParams& params, int bfs_height,
                            congest::RoundLedger& ledger, util::Rng& rng);

/// Fills the approximate pivot rows (levels > last_exact_pivot_level) of
/// `pivots` via Theorem 3: β Bellman–Ford iterations over G'' rooted at A_i,
/// then extension to all of V through the source-detection values (40).
void compute_approx_pivots(const graph::WeightedGraph& g,
                           const primitives::Hierarchy& h,
                           const Preprocess& pre, PivotTable& pivots,
                           int bfs_height, congest::RoundLedger& ledger);

/// One member of a cluster tree C̃(u).
struct ClusterMember {
  graph::Dist b = graph::kDistInf;          // b_v(u)
  graph::Vertex parent = graph::kNoVertex;  // real graph edge to the tree
  std::int32_t parent_port = graph::kNoPort;
};

/// A cluster tree: root u at `level`, members with approximate distances
/// satisfying (10) and parents satisfying Claim 7.
///
/// Flat memory (DESIGN.md §7): `members` is vertex-sorted and `info` is
/// parallel to it, so iteration is a linear scan, membership is a binary
/// search, and converting to a TreeSpec is a straight copy — no hash map
/// and no re-sort anywhere on the build path.
struct ClusterTree {
  graph::Vertex root = graph::kNoVertex;
  int level = -1;
  std::vector<graph::Vertex> members;  // sorted ascending, includes root
  std::vector<ClusterMember> info;     // parallel to members

  std::size_t size() const { return members.size(); }

  /// Index of v in members, or -1 (binary search).
  int find(graph::Vertex v) const {
    const auto it = std::lower_bound(members.begin(), members.end(), v);
    if (it == members.end() || *it != v) return -1;
    return static_cast<int>(it - members.begin());
  }
  bool contains(graph::Vertex v) const { return find(v) >= 0; }
  const ClusterMember& member(graph::Vertex v) const {
    const int i = find(v);
    NORS_CHECK_MSG(i >= 0, "vertex " << v << " not in cluster tree");
    return info[static_cast<std::size_t>(i)];
  }

  /// Appends (v, m); callers must append in ascending vertex order.
  void add(graph::Vertex v, const ClusterMember& m) {
    NORS_CHECK_MSG(members.empty() || members.back() < v,
                   "cluster members must be added in ascending order");
    members.push_back(v);
    info.push_back(m);
  }
};

/// §3.2 small levels: exact clusters via simulated multi-root Bellman–Ford,
/// join condition (11) b < d(v, A_{i+1}) with the exact pivot distances.
std::vector<ClusterTree> build_small_level_trees(
    const graph::WeightedGraph& g, const primitives::Hierarchy& h, int level,
    const PivotTable& pivots, const SchemeParams& params,
    congest::RoundLedger& ledger);

/// §3.2 middle level (odd k only): Theorem-1 source detection from
/// S = A_i \ A_{i+1}, join iff b_v(u) < d(v, A_{i+1}), parents via Remark 1.
std::vector<ClusterTree> build_middle_level_trees(
    const graph::WeightedGraph& g, const primitives::Hierarchy& h, int level,
    const PivotTable& pivots, const SchemeParams& params, int bfs_height,
    congest::RoundLedger& ledger);

/// §3.3.2 large levels: Phase 1 (β-iteration bounded Bellman–Ford on G''
/// with condition (14)), Phase 1.5 (path-reporting fix-up of hopset-edge
/// parents), Phase 2 (extension to V with condition (15)). Per-root state
/// lives in one dense |V'| × |roots| slot arena (root slot = index into the
/// level's root list), so every sweep is a linear scan.
std::vector<ClusterTree> build_large_level_trees(
    const graph::WeightedGraph& g, const primitives::Hierarchy& h, int level,
    const PivotTable& pivots, const Preprocess& pre,
    const SchemeParams& params, int bfs_height, congest::RoundLedger& ledger);

/// Validates Claim 7 on every tree (parent is a member over a real edge and
/// b_v ≥ w(v,p) + b_p), pruning any member whose parent chain is broken
/// (possible only when a whp sampling event failed). Returns the number of
/// pruned members — 0 in every healthy construction.
std::int64_t sanitize_trees(const graph::WeightedGraph& g,
                            std::vector<ClusterTree>& trees);

}  // namespace nors::core
