#include "core/pivots.h"

#include "primitives/set_bf.h"

namespace nors::core {

int last_exact_pivot_level(int k) {
  const int ceil_half = (k + 1) / 2;
  return std::min(ceil_half, k - 1);
}

PivotTable compute_exact_pivots(const graph::WeightedGraph& g,
                                const primitives::Hierarchy& h,
                                const SchemeParams& params,
                                congest::RoundLedger& ledger) {
  const int n = g.n();
  const int k = params.k;
  PivotTable t;
  t.k = k;
  t.n = n;
  t.pivot.assign(static_cast<std::size_t>(k) * n, graph::kNoVertex);
  t.dist.assign(static_cast<std::size_t>(k + 1) * n, graph::kDistInf);
  t.exact.assign(static_cast<std::size_t>(k), 0);

  // Level 0: ẑ_0(v) = v, d = 0 — no communication needed.
  for (graph::Vertex v = 0; v < n; ++v) {
    t.pivot[static_cast<std::size_t>(v)] = v;
    t.dist[static_cast<std::size_t>(v)] = 0;
  }
  t.exact[0] = 1;

  const int last = last_exact_pivot_level(k);
  for (int i = 1; i <= last; ++i) {
    const auto r = primitives::distributed_set_bellman_ford(
        g, h.set_at(i), params.edge_capacity);
    if (i < k) {
      t.exact[static_cast<std::size_t>(i)] = 1;
      for (graph::Vertex v = 0; v < n; ++v) {
        t.pivot[static_cast<std::size_t>(i) * n + v] =
            r.source[static_cast<std::size_t>(v)];
      }
    }
    for (graph::Vertex v = 0; v < n; ++v) {
      t.dist[static_cast<std::size_t>(i) * n + v] =
          r.dist[static_cast<std::size_t>(v)];
    }
    ledger.add("pivots/exact level " + std::to_string(i),
               congest::CostKind::kSimulated, r.rounds, r.messages,
               "|A_i|=" + std::to_string(h.set_at(i).size()));
  }
  return t;
}

}  // namespace nors::core
