#pragma once

#include <memory>
#include <vector>

#include "congest/ledger.h"
#include "core/clusters.h"
#include "core/params.h"
#include "core/pivots.h"
#include "graph/graph.h"
#include "treeroute/dist_tree.h"

namespace nors::core {

/// The paper's main artifact (Theorem 5): a compact routing scheme with
/// tables Õ(n^{1/k}), labels O(k log² n), stretch 4k-5+o(1), constructed by
/// a distributed algorithm whose round cost is tracked on a ledger
/// (simulated phases measured, accounted phases charged — DESIGN.md §3).
///
/// This class is the *construction-side* view: it holds the frozen CSR
/// graph by reference and routes by walking real edges. For serving-side
/// use (answer route queries fast, without the builder state or the graph
/// object), snapshot it with serve::FrozenScheme::freeze() — DESIGN.md §5.
class RoutingScheme {
 public:
  struct RouteResult {
    bool ok = false;
    graph::Dist length = 0;
    int hops = 0;
    graph::Vertex tree_root = graph::kNoVertex;
    int tree_level = -1;
    bool via_trick = false;
    std::vector<graph::Vertex> path;  // visited vertices, including u and v
  };

  /// One per-level entry of a vertex label: the pivot ẑ_i(v), the
  /// (approximate) distance to it, and — when v ∈ C̃(ẑ_i(v)) — v's tree
  /// label in that cluster tree.
  struct LabelEntry {
    graph::Vertex pivot = graph::kNoVertex;
    graph::Dist pivot_dist = graph::kDistInf;
    bool member = false;
    treeroute::DistTreeScheme::VLabel tree_label;
  };

  /// Runs the full distributed construction. `g` must be frozen (CSR
  /// phase); the returned scheme keeps a reference to it (routing walks its
  /// edges), so the graph must outlive the scheme and keep a stable
  /// address.
  static RoutingScheme build(const graph::WeightedGraph& g,
                             const SchemeParams& params);

  /// The frozen CSR graph the scheme was built on.
  const graph::WeightedGraph& graph() const { return *g_; }

  /// Routes a packet from u to v over real edges, using only u's table,
  /// intermediate routing tables, and v's label (no handshaking).
  RouteResult route(graph::Vertex u, graph::Vertex v) const;

  std::int64_t table_words(graph::Vertex v) const;
  std::int64_t label_words(graph::Vertex v) const;
  /// Number of cluster trees containing v (Claim 2: Õ(n^{1/k}) whp).
  int overlap(graph::Vertex v) const;

  const congest::RoundLedger& ledger() const { return ledger_; }
  std::int64_t total_rounds() const { return ledger_.total_rounds(); }
  /// The analytic stretch guarantee for these parameters.
  double stretch_bound() const;
  const SchemeParams& params() const { return params_; }
  const PivotTable& pivots() const { return pivots_; }
  const std::vector<ClusterTree>& trees() const { return trees_; }
  const treeroute::DistTreeScheme& tree_scheme(std::size_t idx) const {
    return tree_schemes_->schemes[idx];
  }
  int tree_index(graph::Vertex root) const;
  std::int64_t pruned_members() const { return pruned_; }
  int coverage_retries() const { return coverage_retries_; }
  int beta() const { return beta_; }

  /// The label of v at level i — what the packet header carries.
  const LabelEntry& label_entry(graph::Vertex v, int i) const {
    return labels_[static_cast<std::size_t>(v) *
                       static_cast<std::size_t>(params_.k) +
                   static_cast<std::size_t>(i)];
  }

  /// Hierarchy level of v (max i with v ∈ A_i); exposes the sampled
  /// hierarchy so tests can reconstruct the sets A_i.
  int vertex_level(graph::Vertex v) const {
    return level_[static_cast<std::size_t>(v)];
  }

  /// The 4k-5 trick label stored at a level-0 root for one of its cluster
  /// members (throws if absent). Trick labels are exactly the member labels
  /// of the root's own cluster tree, so they are served straight from the
  /// tree scheme — no separate label store survives construction.
  const treeroute::DistTreeScheme::VLabel& trick_label(
      graph::Vertex root, graph::Vertex dest) const {
    const int ti = tree_index(root);
    NORS_CHECK_MSG(params_.label_trick && ti >= 0 &&
                       trees_[static_cast<std::size_t>(ti)].level == 0,
                   "no trick labels at vertex " << root);
    return tree_schemes_->schemes[static_cast<std::size_t>(ti)].label(dest);
  }

 private:
  friend class DistanceEstimation;

  const graph::WeightedGraph* g_ = nullptr;
  SchemeParams params_;
  congest::RoundLedger ledger_;
  PivotTable pivots_;
  std::vector<ClusterTree> trees_;
  std::vector<int> tree_of_root_;  // per vertex: index into trees_, or -1
  std::shared_ptr<treeroute::DistTreeBatch> tree_schemes_;
  // Flat label arena, one k-entry stride per vertex: entry (v, i) lives at
  // labels_[v*k + i] — same layout serve::FrozenScheme snapshots.
  std::vector<LabelEntry> labels_;
  std::vector<int> level_;  // hierarchy level per vertex
  std::int64_t pruned_ = 0;
  int coverage_retries_ = 0;
  int beta_ = 0;
};

}  // namespace nors::core
