#include "core/params.h"

#include <sstream>

namespace nors::core {

std::string SchemeParams::describe() const {
  std::ostringstream os;
  os << "k=" << k << " eps=" << epsilon().to_string()
     << " seed=" << seed << " trick=" << (label_trick ? "on" : "off");
  return os.str();
}

double stretch_bound(int k, const util::Epsilon& eps, bool label_trick) {
  const double e = eps.value();
  // Recursion of §4 with y0 = 1: x_i bounds d(v, ẑ_i(v)), y_i bounds
  // d(u, ẑ_i(u)). Loop exit at i' ≤ k-1; route ≤ (1+ε)^4 (y0 + 2 x_{i'}).
  double x = 0.0;  // x_0
  for (int i = 1; i <= k - 1; ++i) {
    if (i == 1 && label_trick) {
      // v ∉ C̃(u) for the level-0 root u ⇒ d(v,A_1) ≤ (1+6ε)·y0 ⇒
      // x_1 ≤ (1+ε)(1+6ε)·y0.
      x = (1.0 + e) * (1.0 + 6.0 * e);
    } else {
      const double y = (1.0 + 10.0 * e) * (1.0 + x);
      x = (1.0 + e) * (1.0 + y);
    }
  }
  const double lift = (1.0 + e) * (1.0 + e) * (1.0 + e) * (1.0 + e);
  return lift * (1.0 + 2.0 * x);
}

double estimation_stretch_bound(int k, const util::Epsilon& eps) {
  const double e = eps.value();
  // a_i bounds d(u_i, w_i) in Algorithm 2: a_{i+1} ≤ (1+8ε)(y0 + a_i);
  // the returned estimate is ≤ (1+ε)·a_{i'} + (1+ε)^4 (y0 + a_{i'}).
  double a = 0.0;
  for (int i = 1; i <= k - 1; ++i) a = (1.0 + 8.0 * e) * (1.0 + a);
  const double lift = (1.0 + e) * (1.0 + e) * (1.0 + e) * (1.0 + e);
  return (1.0 + e) * a + lift * (1.0 + a);
}

}  // namespace nors::core
