#include "core/serialize.h"

namespace nors::core {

void encode_vertex_label(const RoutingScheme& scheme, graph::Vertex v,
                         util::WordWriter& w) {
  const int k = scheme.params().k;
  for (int i = 0; i < k; ++i) {
    const auto& le = scheme.label_entry(v, i);
    w.put(le.pivot);
    w.put(le.pivot_dist);
    w.put(le.member ? 1 : 0);
    if (le.member) treeroute::encode(le.tree_label, w);
  }
}

std::vector<std::uint8_t> encode_vertex_label(const RoutingScheme& scheme,
                                              graph::Vertex v) {
  util::WordWriter w;
  encode_vertex_label(scheme, v, w);
  return w.bytes();
}

DecodedVertexLabel decode_vertex_label(
    const std::vector<std::uint8_t>& bytes) {
  util::WordReader r(bytes);
  DecodedVertexLabel out;
  while (!r.exhausted()) {
    DecodedVertexLabel::Entry e;
    e.pivot = static_cast<graph::Vertex>(r.get());
    e.pivot_dist = r.get();
    e.member = r.get() != 0;
    if (e.member) e.tree_label = treeroute::decode_vlabel(r);
    out.levels.push_back(std::move(e));
  }
  return out;
}

std::int64_t vertex_label_overhead_words(const RoutingScheme& scheme,
                                         graph::Vertex v) {
  std::int64_t overhead = 0;
  const int k = scheme.params().k;
  for (int i = 0; i < k; ++i) {
    const auto& le = scheme.label_entry(v, i);
    if (le.member) {
      overhead += treeroute::vlabel_overhead_words(le.tree_label);
    }
  }
  return overhead;
}

}  // namespace nors::core
