#include "core/serialize.h"

namespace nors::core {

void encode_vertex_label(const RoutingScheme& scheme, graph::Vertex v,
                         util::WordWriter& w) {
  const int k = scheme.params().k;
  for (int i = 0; i < k; ++i) {
    const auto& le = scheme.label_entry(v, i);
    w.put(le.pivot);
    w.put(le.pivot_dist);
    w.put(le.member ? 1 : 0);
    if (le.member) treeroute::encode(le.tree_label, w);
  }
}

std::vector<std::uint8_t> encode_vertex_label(const RoutingScheme& scheme,
                                              graph::Vertex v) {
  util::WordWriter w;
  encode_vertex_label(scheme, v, w);
  return w.bytes();
}

DecodedVertexLabel decode_vertex_label(
    const std::vector<std::uint8_t>& bytes) {
  util::WordReader r(bytes);
  DecodedVertexLabel out;
  while (!r.exhausted()) {
    DecodedVertexLabel::Entry e;
    e.pivot = static_cast<graph::Vertex>(r.get());
    e.pivot_dist = r.get();
    e.member = r.get() != 0;
    if (e.member) e.tree_label = treeroute::decode_vlabel(r);
    out.levels.push_back(std::move(e));
  }
  return out;
}

std::int64_t vertex_label_overhead_words(const RoutingScheme& scheme,
                                         graph::Vertex v) {
  std::int64_t overhead = 0;
  const int k = scheme.params().k;
  for (int i = 0; i < k; ++i) {
    const auto& le = scheme.label_entry(v, i);
    if (le.member) {
      overhead += treeroute::vlabel_overhead_words(le.tree_label);
    }
  }
  return overhead;
}

const std::uint8_t* get_uvarint(const std::uint8_t* p,
                                const std::uint8_t* end, std::uint64_t& x) {
  std::uint64_t v = 0;
  int shift = 0;
  for (int i = 0; i < 10; ++i) {
    NORS_CHECK_MSG(p != end, "truncated varint");
    const std::uint8_t b = *p++;
    if (i == 9) {
      // Tenth byte: only one value bit may remain for a 64-bit payload.
      NORS_CHECK_MSG(b <= 1, "varint overflows 64 bits");
    }
    v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) {
      // Canonical form: a multi-byte encoding must need its last byte.
      NORS_CHECK_MSG(i == 0 || b != 0, "over-long varint encoding");
      x = v;
      return p;
    }
    shift += 7;
  }
  NORS_CHECK_MSG(false, "unterminated varint");
  return p;  // unreachable
}

}  // namespace nors::core
