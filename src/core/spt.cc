#include "core/spt.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "hopset/hopset.h"
#include "primitives/pipelined.h"
#include "primitives/source_detection.h"

namespace nors::core {

namespace {

using graph::Dist;
using graph::Vertex;

}  // namespace

ApproxSptResult approximate_spt(const graph::WeightedGraph& g,
                                const std::vector<Vertex>& roots,
                                const ApproxSptParams& params,
                                int bfs_height) {
  NORS_CHECK(!roots.empty());
  const int n = g.n();
  ApproxSptResult out;
  util::Rng rng(params.seed);

  // V' = A ∪ X with X sampled at rate 1/√n.
  std::unordered_set<Vertex> vp_set(roots.begin(), roots.end());
  const double p = 1.0 / std::sqrt(static_cast<double>(std::max(2, n)));
  for (Vertex v = 0; v < n; ++v) {
    if (rng.bernoulli(p)) vp_set.insert(v);
  }
  std::vector<Vertex> vprime(vp_set.begin(), vp_set.end());
  std::sort(vprime.begin(), vprime.end());
  out.vprime_size = static_cast<std::int64_t>(vprime.size());

  // B = hit_constant·√n·ln n, capped at n.
  const std::int64_t ln_n = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(std::ceil(std::log(std::max(2, n)))));
  const std::int64_t b = std::min<std::int64_t>(
      n, std::max<std::int64_t>(
             1, static_cast<std::int64_t>(
                    params.hit_constant *
                    std::sqrt(static_cast<double>(n)) *
                    static_cast<double>(ln_n))));

  const util::Epsilon eps_half(params.eps.num(), 2 * params.eps.den());
  const auto sd =
      primitives::source_detection(g, vprime, b, eps_half, bfs_height);
  out.ledger.add("spt/source detection", congest::CostKind::kAccounted,
                 sd.round_cost, 0,
                 "|V'|=" + std::to_string(vprime.size()) +
                     " B=" + std::to_string(b));

  // Virtual graph G' on V' indices.
  const int m = static_cast<int>(vprime.size());
  graph::WeightedGraph gprime(m);
  for (int i = 0; i < m; ++i) {
    for (int j = i + 1; j < m; ++j) {
      const Dist d = sd.d(i, vprime[static_cast<std::size_t>(j)]);
      if (!graph::is_inf(d)) gprime.add_edge(i, j, std::max<Dist>(1, d));
    }
  }
  gprime.freeze();
  hopset::HopsetParams hp{util::Epsilon(params.eps.num(),
                                        3 * params.eps.den()),
                          params.hopset_levels, rng.next(), 0.5};
  const auto hs = hopset::build_hopset(gprime, hp, bfs_height);
  out.beta = hs.beta;
  out.ledger.add("spt/hopset", congest::CostKind::kAccounted, hs.round_cost,
                 0, "beta=" + std::to_string(hs.beta));

  // β Bellman–Ford iterations from A over G'' (adjacency = G' ∪ F).
  std::vector<std::vector<std::pair<int, Dist>>> adj(
      static_cast<std::size_t>(m));
  for (int v = 0; v < m; ++v) {
    for (const auto& e : gprime.neighbors(v)) {
      adj[static_cast<std::size_t>(v)].push_back({e.to, e.w});
    }
  }
  for (const auto& he : hs.edges) {
    adj[static_cast<std::size_t>(he.u)].push_back({he.v, he.w});
    adj[static_cast<std::size_t>(he.v)].push_back({he.u, he.w});
  }
  std::vector<int> vp_index(static_cast<std::size_t>(n), -1);
  for (int i = 0; i < m; ++i) {
    vp_index[static_cast<std::size_t>(vprime[static_cast<std::size_t>(i)])] =
        i;
  }
  std::vector<Dist> dist(static_cast<std::size_t>(m), graph::kDistInf);
  std::vector<Vertex> piv(static_cast<std::size_t>(m), graph::kNoVertex);
  std::vector<char> frontier(static_cast<std::size_t>(m), 0);
  for (Vertex a : roots) {
    const int idx = vp_index[static_cast<std::size_t>(a)];
    dist[static_cast<std::size_t>(idx)] = 0;
    piv[static_cast<std::size_t>(idx)] = a;
    frontier[static_cast<std::size_t>(idx)] = 1;
  }
  std::int64_t messages = 0;
  for (int it = 0; it < hs.beta; ++it) {
    const auto snap = dist;
    const auto snap_piv = piv;
    std::vector<char> next(static_cast<std::size_t>(m), 0);
    bool any = false;
    for (int v = 0; v < m; ++v) {
      if (!frontier[static_cast<std::size_t>(v)]) continue;
      ++messages;
      for (const auto& [to, w] : adj[static_cast<std::size_t>(v)]) {
        const Dist nd = snap[static_cast<std::size_t>(v)] + w;
        if (nd < dist[static_cast<std::size_t>(to)]) {
          dist[static_cast<std::size_t>(to)] = nd;
          piv[static_cast<std::size_t>(to)] =
              snap_piv[static_cast<std::size_t>(v)];
          next[static_cast<std::size_t>(to)] = 1;
          any = true;
        }
      }
    }
    frontier = std::move(next);
    if (!any) break;
  }
  out.ledger.add("spt/bellman-ford on G''", congest::CostKind::kAccounted,
                 primitives::pipelined_broadcast_rounds(
                     std::max<std::int64_t>(1, messages), bfs_height),
                 messages);

  // Extension (40): d̂(u) = min over v ∈ V' of d_uv + d̂(v).
  out.dist.assign(static_cast<std::size_t>(n), graph::kDistInf);
  out.pivot.assign(static_cast<std::size_t>(n), graph::kNoVertex);
  for (Vertex u = 0; u < n; ++u) {
    for (int v = 0; v < m; ++v) {
      if (graph::is_inf(dist[static_cast<std::size_t>(v)])) continue;
      const Dist duv = sd.d(v, u);
      if (graph::is_inf(duv)) continue;
      const Dist cand = duv + dist[static_cast<std::size_t>(v)];
      if (cand < out.dist[static_cast<std::size_t>(u)]) {
        out.dist[static_cast<std::size_t>(u)] = cand;
        out.pivot[static_cast<std::size_t>(u)] =
            piv[static_cast<std::size_t>(v)];
      }
    }
  }
  return out;
}

}  // namespace nors::core
