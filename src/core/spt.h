#pragma once

#include <vector>

#include "congest/ledger.h"
#include "graph/graph.h"
#include "util/random.h"
#include "util/ratio.h"

namespace nors::core {

/// The paper's Theorem 3 / Appendix A as a standalone primitive: a
/// (1+ε)-approximate shortest-path tree rooted at a vertex *set* A with
/// |A| ≤ O(√n log n), computable in (n^{1/2+1/(2k)}+D)·n^{o(1)} rounds.
/// Every vertex u learns
///
///   d_G(u,A) ≤ d̂(u) ≤ (1+ε)·d_G(u,A)        (whp)
///
/// and a witness ẑ(u) ∈ A with d_G(u, ẑ(u)) ≤ d̂(u).
///
/// Construction (Appendix A): sample X with probability 1/√n, set
/// V' = A ∪ X, run B-hop source detection from V' (B = 4√n·ln n), build the
/// virtual graph G' and a path-reporting hopset, run β Bellman–Ford
/// iterations from A over G'' = G' ∪ F, then extend to all of V through the
/// detection values (equation (40)).
struct ApproxSptResult {
  std::vector<graph::Dist> dist;     // d̂(u)
  std::vector<graph::Vertex> pivot;  // ẑ(u) ∈ A (kNoVertex if unreachable)
  int beta = 0;
  std::int64_t vprime_size = 0;
  congest::RoundLedger ledger;
};

struct ApproxSptParams {
  util::Epsilon eps{1, 16};
  std::uint64_t seed = 1;
  double hit_constant = 4.0;  // the 4·ln n multiplier of B
  int hopset_levels = 2;
};

ApproxSptResult approximate_spt(const graph::WeightedGraph& g,
                                const std::vector<graph::Vertex>& roots,
                                const ApproxSptParams& params,
                                int bfs_height);

}  // namespace nors::core
