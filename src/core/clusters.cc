#include "core/clusters.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "graph/properties.h"
#include "primitives/cluster_bf.h"
#include "primitives/pipelined.h"
#include "util/arena.h"

namespace nors::core {

namespace {

using graph::Dist;
using graph::Vertex;

std::int64_t ln_ceil(int n) {
  return std::max<std::int64_t>(
      1, static_cast<std::int64_t>(std::ceil(std::log(std::max(2, n)))));
}

}  // namespace

LevelKind classify_level(int i, int k) {
  NORS_CHECK(i >= 0 && i < k);
  if (k == 1) return LevelKind::kSmall;
  if (k % 2 == 0) {
    return i < k / 2 ? LevelKind::kSmall : LevelKind::kLarge;
  }
  if (i < (k - 1) / 2) return LevelKind::kSmall;
  if (i == (k - 1) / 2 && k >= 3) return LevelKind::kMiddle;
  return LevelKind::kLarge;
}

Preprocess build_preprocess(const graph::WeightedGraph& g,
                            const primitives::Hierarchy& h,
                            const SchemeParams& params, int bfs_height,
                            congest::RoundLedger& ledger, util::Rng& rng) {
  const int n = g.n();
  const int k = params.k;
  NORS_CHECK_MSG(k >= 2, "preprocessing is only defined for k >= 2");
  Preprocess pre;

  // V' = A_{⌈k/2⌉}.
  const int ceil_half = (k + 1) / 2;
  pre.vprime = h.set_at(ceil_half);
  NORS_CHECK_MSG(!pre.vprime.empty(), "V' must be non-empty");
  pre.vp_index.assign(static_cast<std::size_t>(n), -1);
  for (std::size_t i = 0; i < pre.vprime.size(); ++i) {
    pre.vp_index[static_cast<std::size_t>(pre.vprime[i])] =
        static_cast<int>(i);
  }

  // B = hit_constant · n / E[|V'|] · ln n  =  c · n^{⌈k/2⌉/k} · ln n.
  const double expected_vp =
      std::pow(static_cast<double>(n),
               1.0 - static_cast<double>(ceil_half) / k);
  std::int64_t b = static_cast<std::int64_t>(
      params.hit_constant * (static_cast<double>(n) / expected_vp) *
      static_cast<double>(ln_ceil(n)));
  b = std::min<std::int64_t>(std::max<std::int64_t>(1, b), n);
  pre.b_hops = b;

  // Theorem 1 with parameter ε/2.
  const util::Epsilon eps = params.epsilon();
  const util::Epsilon eps_half(eps.num(), 2 * eps.den());
  pre.sd = primitives::source_detection(g, pre.vprime, b, eps_half,
                                        bfs_height, params.threads);
  ledger.add("preprocess/source detection", congest::CostKind::kAccounted,
             pre.sd.round_cost, 0,
             "|V'|=" + std::to_string(pre.vprime.size()) +
                 " B=" + std::to_string(b));

  // Virtual graph G' on V': u ~ v iff d_uv < ∞ (weights d_uv, symmetric).
  const int m = static_cast<int>(pre.vprime.size());
  pre.gprime = graph::WeightedGraph(m);
  for (int i = 0; i < m; ++i) {
    for (int j = i + 1; j < m; ++j) {
      const Dist d = pre.sd.d(i, pre.vprime[static_cast<std::size_t>(j)]);
      if (!graph::is_inf(d)) {
        pre.gprime.add_edge(i, j, std::max<Dist>(1, d));
      }
    }
  }
  pre.gprime.freeze();

  // Path-reporting hopset for G' with parameter ε/3 (Theorem 2). The
  // hopset-less ablation (use_hopset = false) instead explores G' directly:
  // the effective β becomes G''s shortest-path hop diameter (up to m), the
  // exploration regime of [LP15] that the paper's hopsets shorten.
  if (params.use_hopset) {
    hopset::HopsetParams hp{util::Epsilon(eps.num(), 3 * eps.den()),
                            params.hopset_levels, rng.next(),
                            std::max(1.0 / k, 0.25)};
    pre.hs = hopset::build_hopset(pre.gprime, hp, bfs_height);
    ledger.add("preprocess/hopset", congest::CostKind::kAccounted,
               pre.hs.round_cost, 0,
               "beta=" + std::to_string(pre.hs.beta) +
                   " edges=" + std::to_string(pre.hs.edges.size()));
  } else {
    pre.hs = hopset::Hopset{};
    pre.hs.beta =
        std::max(1, graph::shortest_path_hop_diameter(pre.gprime));
    ledger.add("preprocess/hopset", congest::CostKind::kAccounted, 0, 0,
               "disabled; beta=S(G')=" + std::to_string(pre.hs.beta));
  }

  // G'' adjacency = G' edges ∪ hopset edges.
  pre.gpp_adj.assign(static_cast<std::size_t>(m), {});
  for (int v = 0; v < m; ++v) {
    for (const auto& e : pre.gprime.neighbors(v)) {
      pre.gpp_adj[static_cast<std::size_t>(v)].push_back({e.to, e.w, -1});
    }
  }
  for (std::size_t id = 0; id < pre.hs.edges.size(); ++id) {
    const auto& he = pre.hs.edges[id];
    pre.gpp_adj[static_cast<std::size_t>(he.u)].push_back(
        {he.v, he.w, static_cast<int>(id)});
    pre.gpp_adj[static_cast<std::size_t>(he.v)].push_back(
        {he.u, he.w, static_cast<int>(id)});
  }
  return pre;
}

void compute_approx_pivots(const graph::WeightedGraph& g,
                           const primitives::Hierarchy& h,
                           const Preprocess& pre, PivotTable& pivots,
                           int bfs_height, congest::RoundLedger& ledger) {
  const int n = g.n();
  const int k = pivots.k;
  const int m = static_cast<int>(pre.vprime.size());
  const int beta = pre.beta();
  const int first = last_exact_pivot_level(k) + 1;

  for (int i = first; i <= k - 1; ++i) {
    // β Bellman–Ford iterations on G'' rooted at A_i ⊆ V'.
    std::vector<Dist> dist(static_cast<std::size_t>(m), graph::kDistInf);
    std::vector<Vertex> src(static_cast<std::size_t>(m), graph::kNoVertex);
    std::vector<char> frontier(static_cast<std::size_t>(m), 0);
    for (Vertex a : h.set_at(i)) {
      const int idx = pre.vp_index[static_cast<std::size_t>(a)];
      NORS_CHECK_MSG(idx >= 0, "A_i must be contained in V'");
      dist[static_cast<std::size_t>(idx)] = 0;
      src[static_cast<std::size_t>(idx)] = a;
      frontier[static_cast<std::size_t>(idx)] = 1;
    }
    std::int64_t messages = 0;
    for (int it = 0; it < beta; ++it) {
      std::vector<char> next_frontier(static_cast<std::size_t>(m), 0);
      bool any = false;
      // Snapshot relaxation (synchronous rounds).
      const std::vector<Dist> snap = dist;
      const std::vector<Vertex> snap_src = src;
      for (int v = 0; v < m; ++v) {
        if (!frontier[static_cast<std::size_t>(v)]) continue;
        ++messages;  // v broadcasts its (dist, src) pair
        for (const auto& e : pre.gpp_adj[static_cast<std::size_t>(v)]) {
          const Dist nd = snap[static_cast<std::size_t>(v)] + e.w;
          if (nd < dist[static_cast<std::size_t>(e.to)]) {
            dist[static_cast<std::size_t>(e.to)] = nd;
            src[static_cast<std::size_t>(e.to)] =
                snap_src[static_cast<std::size_t>(v)];
            next_frontier[static_cast<std::size_t>(e.to)] = 1;
            any = true;
          }
        }
      }
      frontier = std::move(next_frontier);
      if (!any) break;
    }
    // Extension (40): every vertex minimizes d_yv + d̂(v) over v ∈ V'.
    for (Vertex y = 0; y < n; ++y) {
      Dist best = graph::kDistInf;
      Vertex best_src = graph::kNoVertex;
      for (int v = 0; v < m; ++v) {
        if (graph::is_inf(dist[static_cast<std::size_t>(v)])) continue;
        const Dist dyv = pre.sd.d(v, y);
        if (graph::is_inf(dyv)) continue;
        const Dist cand = dyv + dist[static_cast<std::size_t>(v)];
        if (cand < best) {
          best = cand;
          best_src = src[static_cast<std::size_t>(v)];
        }
      }
      pivots.dist[static_cast<std::size_t>(i) * n + y] = best;
      pivots.pivot[static_cast<std::size_t>(i) * n + y] = best_src;
    }
    ledger.add(
        "pivots/approx level " + std::to_string(i),
        congest::CostKind::kAccounted,
        primitives::pipelined_broadcast_rounds(std::max<std::int64_t>(1, messages),
                                               bfs_height),
        messages, "beta=" + std::to_string(beta));
  }
  (void)g;
}

std::vector<ClusterTree> build_small_level_trees(
    const graph::WeightedGraph& g, const primitives::Hierarchy& h, int level,
    const PivotTable& pivots, const SchemeParams& params,
    congest::RoundLedger& ledger) {
  const int n = g.n();
  const std::vector<Vertex> roots = h.exactly_at(level);
  std::vector<ClusterTree> trees;
  if (roots.empty()) return trees;
  // The join condition needs the exact d(v, A_{level+1}); row k is ∞.
  NORS_CHECK(level + 1 >= pivots.k || pivots.level_exact(level + 1));

  // Join condition (11): b < d_G(v, A_{i+1}) (exact distances).
  const std::size_t row = static_cast<std::size_t>(level + 1) * n;
  const auto admit = [&](Vertex v, Vertex, Dist b) {
    return b < pivots.dist[row + static_cast<std::size_t>(v)];
  };
  auto result = primitives::distributed_cluster_bellman_ford(
      g, roots, admit, params.edge_capacity);
  ledger.add("clusters/small level " + std::to_string(level),
             congest::CostKind::kSimulated, result.rounds, result.messages,
             "roots=" + std::to_string(roots.size()));

  // Re-shape per root slot; scanning vertices in ascending order leaves
  // every tree's member array sorted without any re-sort.
  trees.resize(roots.size());
  for (std::size_t s = 0; s < roots.size(); ++s) {
    trees[s].root = roots[s];
    trees[s].level = level;
  }
  for (Vertex v = 0; v < n; ++v) {
    for (std::size_t e = result.off[static_cast<std::size_t>(v)];
         e < result.off[static_cast<std::size_t>(v) + 1]; ++e) {
      const auto& entry = result.rec[e];
      ClusterMember mem;
      mem.b = entry.dist;
      mem.parent = entry.parent;
      mem.parent_port = entry.parent_port;
      trees[static_cast<std::size_t>(result.slot[e])].add(v, mem);
    }
  }
  return trees;
}

std::vector<ClusterTree> build_middle_level_trees(
    const graph::WeightedGraph& g, const primitives::Hierarchy& h, int level,
    const PivotTable& pivots, const SchemeParams& params, int bfs_height,
    congest::RoundLedger& ledger) {
  const int n = g.n();
  const std::vector<Vertex> roots = h.exactly_at(level);
  std::vector<ClusterTree> trees;
  if (roots.empty()) return trees;

  // B = hit_constant · n^{(i+1)/k} · ln n (Corollary 4 depth bound).
  std::int64_t b = static_cast<std::int64_t>(
      params.hit_constant *
      std::pow(static_cast<double>(n),
               static_cast<double>(level + 1) / params.k) *
      static_cast<double>(ln_ceil(n)));
  b = std::min<std::int64_t>(std::max<std::int64_t>(1, b), n);

  // Streaming source detection (DESIGN.md §9): rows arrive source-major and
  // each root's tree is built straight from its row — the |S| × n distance
  // slab that used to dominate peak RSS at this level never exists. Every
  // root owns its tree slot, so the sink is safe under any pool size and
  // the trees come out bit-identical to the slab-based construction.
  const std::size_t row = static_cast<std::size_t>(level + 1) * n;
  trees.resize(roots.size());
  const auto stats = primitives::source_detection_stream(
      g, roots, b, params.epsilon(), bfs_height, params.threads,
      [&](int si, std::span<const Dist> dist,
          std::span<const std::int32_t> port) {
        const Vertex u = roots[static_cast<std::size_t>(si)];
        ClusterTree t;
        t.root = u;
        t.level = level;
        for (Vertex v = 0; v < n; ++v) {
          const Dist bv = dist[static_cast<std::size_t>(v)];
          if (graph::is_inf(bv)) continue;
          const bool is_root = (v == u);
          if (!is_root &&
              bv >= pivots.dist[row + static_cast<std::size_t>(v)]) {
            continue;  // join condition b_v(u) < d(v, A_{i+1})
          }
          ClusterMember mem;
          mem.b = bv;
          if (!is_root) {
            mem.parent_port = port[static_cast<std::size_t>(v)];
            NORS_CHECK(mem.parent_port != graph::kNoPort);
            mem.parent = g.edge(v, mem.parent_port).to;
          }
          t.add(v, mem);
        }
        trees[static_cast<std::size_t>(si)] = std::move(t);
      });
  ledger.add("clusters/middle level " + std::to_string(level),
             congest::CostKind::kAccounted, stats.round_cost, 0,
             "|S|=" + std::to_string(roots.size()) + " B=" + std::to_string(b));
  return trees;
}

std::vector<ClusterTree> build_large_level_trees(
    const graph::WeightedGraph& g, const primitives::Hierarchy& h, int level,
    const PivotTable& pivots, const Preprocess& pre,
    const SchemeParams& params, int bfs_height, congest::RoundLedger& ledger) {
  const int n = g.n();
  const int m = static_cast<int>(pre.vprime.size());
  const int beta = pre.beta();
  const util::Epsilon eps = params.epsilon();
  const std::vector<Vertex> roots = h.exactly_at(level);
  std::vector<ClusterTree> trees;
  if (roots.empty()) return trees;

  const std::size_t row = static_cast<std::size_t>(level + 1) * n;
  // Condition (14): b < d̂_{i+1}(v) / (1+ε)^3 (∞ admits everything).
  const auto cond14 = [&](Vertex graph_v, Dist b) {
    const Dist dhat = pivots.dist[row + static_cast<std::size_t>(graph_v)];
    if (graph::is_inf(dhat)) return true;
    return eps.less_than_div(b, dhat, 3);
  };
  // Condition (15): b < d̂_{i+1}(y) / (1+ε).
  const auto cond15 = [&](Vertex graph_y, Dist b) {
    const Dist dhat = pivots.dist[row + static_cast<std::size_t>(graph_y)];
    if (graph::is_inf(dhat)) return true;
    return eps.less_than_div(b, dhat, 1);
  };

  // Phase-1 state per (V' index, root slot): b value and virtual parent,
  // in one dense m × r slot arena (b == kDistInf marks "absent"; real b
  // values are finite). Large-level roots lie in V', so r ≤ m and the
  // arena is O(|V'|²). The slab draws from the arena pool and recycles
  // across levels and attempts (DESIGN.md §9).
  struct VState {
    Dist b = graph::kDistInf;
    int vparent = -1;    // V' index of the virtual parent
    int hopset_id = -1;  // the hopset edge used, if any
  };
  const int r = static_cast<int>(roots.size());
  const auto cell = [r](int v, int s) {
    return static_cast<std::size_t>(v) * static_cast<std::size_t>(r) +
           static_cast<std::size_t>(s);
  };
  util::PooledBuf<VState> state;
  state.assign_fill(
      static_cast<std::size_t>(m) * static_cast<std::size_t>(r), VState{});
  std::vector<std::pair<int, int>> frontier;  // (V' index, root slot)
  for (int s = 0; s < r; ++s) {
    const int idx = pre.vp_index[static_cast<std::size_t>(roots[s])];
    NORS_CHECK_MSG(idx >= 0, "large-level roots must lie in V'");
    state[cell(idx, s)] = {0, -1, -1};
    frontier.push_back({idx, s});
  }

  // Phase 1: β synchronous Bellman–Ford iterations over G''.
  std::int64_t messages = 0;
  for (int it = 0; it < beta && !frontier.empty(); ++it) {
    // Snapshot the frontier values (synchronous semantics).
    std::vector<std::tuple<int, int, Dist>> sends;
    sends.reserve(frontier.size());
    for (const auto& [v, s] : frontier) {
      sends.emplace_back(v, s, state[cell(v, s)].b);
    }
    messages += static_cast<std::int64_t>(sends.size());
    std::vector<std::pair<int, int>> next;
    for (const auto& [v, s, bv] : sends) {
      for (const auto& e : pre.gpp_adj[static_cast<std::size_t>(v)]) {
        const Dist nb = bv + e.w;
        const Vertex gz = pre.vprime[static_cast<std::size_t>(e.to)];
        VState& z = state[cell(e.to, s)];
        if (nb >= z.b) continue;
        if (gz != roots[static_cast<std::size_t>(s)] && !cond14(gz, nb)) {
          continue;
        }
        z = {nb, v, e.hopset_id};
        next.push_back({e.to, s});
      }
    }
    std::sort(next.begin(), next.end());
    next.erase(std::unique(next.begin(), next.end()), next.end());
    frontier = std::move(next);
  }
  ledger.add("clusters/large level " + std::to_string(level) + " phase1",
             congest::CostKind::kAccounted,
             primitives::pipelined_broadcast_rounds(
                 std::max<std::int64_t>(1, messages), bfs_height),
             messages, "beta=" + std::to_string(beta));

  // Phase 1.5: re-anchor hopset-edge parents along their realizing paths.
  // Candidates are computed from a snapshot of the phase-1 values, applied
  // with min, so the set of final b values is order-independent (paper
  // semantics); tied candidates resolve in the canonical (V' index, slot)
  // scan order. The snapshot is scoped to this phase: it returns to the
  // pool before the phase-2 extension allocates, so the two never overlap
  // in RSS.
  std::int64_t fixups = 0;
  {
  util::PooledBuf<VState> snapshot;
  std::memcpy(snapshot.ensure(state.size()), state.data(),
              state.size() * sizeof(VState));
  for (int v = 0; v < m; ++v) {
    for (int s = 0; s < r; ++s) {
      const VState& st = snapshot[cell(v, s)];
      if (graph::is_inf(st.b) || st.hopset_id < 0) continue;
      const auto& he = pre.hs.edges[static_cast<std::size_t>(st.hopset_id)];
      // Orient the path from the virtual parent x toward v.
      const bool forward = (he.u == st.vparent);
      NORS_CHECK(forward || he.v == st.vparent);
      const int x = st.vparent;
      const Dist bx = snapshot[cell(x, s)].b;
      NORS_CHECK(!graph::is_inf(bx));
      const auto path_len = static_cast<int>(he.path.size());
      for (int pos = 0; pos < path_len; ++pos) {
        const int z = forward ? he.path[static_cast<std::size_t>(pos)]
                              : he.path[static_cast<std::size_t>(
                                    path_len - 1 - pos)];
        if (z == x) continue;
        const Dist d_xz =
            forward ? he.prefix[static_cast<std::size_t>(pos)]
                    : he.w - he.prefix[static_cast<std::size_t>(
                                 path_len - 1 - pos)];
        // The path neighbor of z closer to x.
        const int z_prev_pos = forward ? pos - 1 : path_len - pos;
        const int z_prev = he.path[static_cast<std::size_t>(z_prev_pos)];
        const Dist cand = bx + d_xz;
        VState& zs = state[cell(z, s)];
        if (cand <= zs.b) {
          zs = {cand, z_prev, -1};
          ++fixups;
        }
      }
    }
  }
  }  // snapshot released to the pool here
  ledger.add("clusters/large level " + std::to_string(level) + " phase1.5",
             congest::CostKind::kAccounted,
             primitives::pipelined_broadcast_rounds(
                 std::max<std::int64_t>(1, fixups), bfs_height),
             fixups);

  // All virtual parents must now be G' neighbors (or roots).
  for (int v = 0; v < m; ++v) {
    for (int s = 0; s < r; ++s) {
      const VState& st = state[cell(v, s)];
      if (graph::is_inf(st.b)) continue;
      NORS_CHECK_MSG(st.hopset_id < 0,
                     "hopset parent survived phase 1.5 at V' index " << v);
    }
  }

  // Phase 2: members broadcast (root, b); every vertex extends via the
  // source-detection distances. Members of C̃'(u) keep their phase-1 values
  // and get real parents from Remark 1 toward their virtual parent.
  trees.resize(static_cast<std::size_t>(r));
  for (int s = 0; s < r; ++s) {
    trees[static_cast<std::size_t>(s)].root = roots[static_cast<std::size_t>(s)];
    trees[static_cast<std::size_t>(s)].level = level;
  }
  // Per root slot, the broadcasting members (V' index, b) in CSR layout,
  // V'-ascending within each slot (the historical tie-break order).
  std::vector<int> bc_cnt(static_cast<std::size_t>(r), 0);
  std::int64_t phase2_msgs = 0;
  for (int v = 0; v < m; ++v) {
    for (int s = 0; s < r; ++s) {
      if (!graph::is_inf(state[cell(v, s)].b)) {
        ++bc_cnt[static_cast<std::size_t>(s)];
        ++phase2_msgs;
      }
    }
  }
  std::vector<int> bc_off(static_cast<std::size_t>(r) + 1, 0);
  for (int s = 0; s < r; ++s) {
    bc_off[static_cast<std::size_t>(s) + 1] =
        bc_off[static_cast<std::size_t>(s)] + bc_cnt[static_cast<std::size_t>(s)];
  }
  std::vector<std::pair<int, Dist>> bc(
      static_cast<std::size_t>(phase2_msgs));
  {
    std::vector<int> cursor(bc_off.begin(), bc_off.end() - 1);
    for (int v = 0; v < m; ++v) {
      for (int s = 0; s < r; ++s) {
        const Dist bv = state[cell(v, s)].b;
        if (graph::is_inf(bv)) continue;
        bc[static_cast<std::size_t>(cursor[static_cast<std::size_t>(s)]++)] = {
            v, bv};
      }
    }
  }

  for (int s = 0; s < r; ++s) {
    auto& tree = trees[static_cast<std::size_t>(s)];
    const Vertex u = roots[static_cast<std::size_t>(s)];
    const auto* bc_begin = bc.data() + bc_off[static_cast<std::size_t>(s)];
    const auto* bc_end = bc.data() + bc_off[static_cast<std::size_t>(s) + 1];
    for (Vertex y = 0; y < n; ++y) {
      // Extension value from the broadcast (the single synchronous round of
      // phase 2): min over members of d_yv + b_v(u).
      Dist ext = graph::kDistInf;
      int witness = -1;
      for (const auto* it = bc_begin; it != bc_end; ++it) {
        const Dist dyv = pre.sd.d(it->first, y);
        if (graph::is_inf(dyv)) continue;
        const Dist cand = dyv + it->second;
        if (cand < ext) {
          ext = cand;
          witness = it->first;
        }
      }
      const int y_vp = pre.vp_index[static_cast<std::size_t>(y)];
      const VState* y_state =
          y_vp >= 0 ? &state[cell(y_vp, s)] : nullptr;
      const bool in_phase1 = y_state != nullptr && !graph::is_inf(y_state->b);
      if (y == u) {
        tree.add(y, ClusterMember{0, graph::kNoVertex, graph::kNoPort});
        continue;
      }
      ClusterMember mem;
      if (in_phase1) {
        // Members of C̃'(u) stay members, but take the better of their
        // phase-1 value and the broadcast extension — the paper's Claim 7
        // proof needs parents to adopt the phase-2 improvement (28).
        if (ext < y_state->b) {
          mem.b = ext;
          mem.parent_port = pre.sd.port(witness, y);
        } else {
          mem.b = y_state->b;
          const int vp = y_state->vparent;
          NORS_CHECK(vp >= 0);
          mem.parent_port = pre.sd.port(vp, y);
        }
        NORS_CHECK_MSG(mem.parent_port != graph::kNoPort,
                       "missing Remark-1 parent");
        mem.parent = g.edge(y, mem.parent_port).to;
        tree.add(y, mem);
        continue;
      }
      // Everyone else joins iff (15) holds for the extension value.
      if (witness < 0 || !cond15(y, ext)) continue;
      mem.b = ext;
      mem.parent_port = pre.sd.port(witness, y);
      NORS_CHECK(mem.parent_port != graph::kNoPort);
      mem.parent = g.edge(y, mem.parent_port).to;
      tree.add(y, mem);
    }
  }
  ledger.add("clusters/large level " + std::to_string(level) + " phase2",
             congest::CostKind::kAccounted,
             primitives::pipelined_broadcast_rounds(
                 std::max<std::int64_t>(1, phase2_msgs), bfs_height),
             phase2_msgs);
  return trees;
}

std::int64_t sanitize_trees(const graph::WeightedGraph& g,
                            std::vector<ClusterTree>& trees) {
  std::int64_t pruned = 0;
  std::vector<int> par, cnt, off, child, queue;
  std::vector<char> keep;
  // Vertex → member-index map shared across trees: filled and cleared per
  // tree through the member list, so lookups are O(1) without hashing.
  std::vector<int> pos_of(static_cast<std::size_t>(g.n()), -1);
  for (auto& t : trees) {
    // Keep exactly the members reachable from the root through parent
    // pointers that are consistent: parent is a member, the edge is real,
    // and b_v ≥ w(v,p) + b_p (Claim 7). All index-based over the sorted
    // member array — one linear BFS, no hashing.
    const std::size_t sz = t.size();
    for (std::size_t i = 0; i < sz; ++i) {
      pos_of[static_cast<std::size_t>(t.members[i])] = static_cast<int>(i);
    }
    par.assign(sz, -1);
    cnt.assign(sz, 0);
    for (std::size_t i = 0; i < sz; ++i) {
      if (t.members[i] == t.root) continue;
      // A parent outside the vertex range (e.g. kNoVertex from a failed whp
      // event) is simply "not a member": the vertex gets pruned below.
      const graph::Vertex parent = t.info[i].parent;
      const int p = parent >= 0 && parent < g.n()
                        ? pos_of[static_cast<std::size_t>(parent)]
                        : -1;
      par[i] = p;
      if (p >= 0) ++cnt[static_cast<std::size_t>(p)];
    }
    off.assign(sz + 1, 0);
    for (std::size_t i = 0; i < sz; ++i) off[i + 1] = off[i] + cnt[i];
    child.resize(sz);
    {
      std::vector<int> cursor(off.begin(), off.end() - 1);
      for (std::size_t i = 0; i < sz; ++i) {
        if (t.members[i] == t.root || par[i] < 0) continue;
        child[static_cast<std::size_t>(
            cursor[static_cast<std::size_t>(par[i])]++)] =
            static_cast<int>(i);
      }
    }
    keep.assign(sz, 0);
    queue.clear();
    const int root_idx = pos_of[static_cast<std::size_t>(t.root)];
    if (root_idx >= 0) {
      keep[static_cast<std::size_t>(root_idx)] = 1;
      queue.push_back(root_idx);
    }
    std::size_t head = 0;
    std::size_t kept = root_idx >= 0 ? 1 : 0;
    while (head < queue.size()) {
      const auto p = static_cast<std::size_t>(queue[head++]);
      const Dist bp = t.info[p].b;
      for (int c = off[p]; c < off[p + 1]; ++c) {
        const auto i = static_cast<std::size_t>(
            child[static_cast<std::size_t>(c)]);
        const auto& mem = t.info[i];
        const auto& e = g.edge(t.members[i], mem.parent_port);
        if (e.to != t.members[p]) continue;
        if (mem.b < bp + e.w) continue;  // Claim 7 violated
        keep[i] = 1;
        ++kept;
        queue.push_back(static_cast<int>(i));
      }
    }
    for (std::size_t i = 0; i < sz; ++i) {
      pos_of[static_cast<std::size_t>(t.members[i])] = -1;
    }
    if (kept != sz) {
      pruned += static_cast<std::int64_t>(sz - kept);
      std::size_t w = 0;
      for (std::size_t i = 0; i < sz; ++i) {
        if (!keep[i]) continue;
        t.members[w] = t.members[i];
        t.info[w] = t.info[i];
        ++w;
      }
      t.members.resize(w);
      t.info.resize(w);
    }
  }
  return pruned;
}

}  // namespace nors::core
