#include "core/scheme.h"
#if defined(__GLIBC__)
#include <malloc.h>
#endif

#include <algorithm>

#include "graph/properties.h"
#include "primitives/bfs_tree.h"
#include "util/arena.h"

namespace nors::core {

namespace {

using graph::Dist;
using graph::Vertex;

/// Converts a ClusterTree into the TreeSpec consumed by the Section-6 tree
/// routing. Flat cluster trees are already vertex-sorted, so the spec is a
/// straight column copy — no re-sort (the specs-stay-sorted regression test
/// in test_scheme pins this invariant).
treeroute::TreeSpec to_spec(const ClusterTree& t) {
  const std::size_t sz = t.size();
  treeroute::TreeSpec spec;
  spec.root = t.root;
  spec.members = t.members;
  spec.parent.resize(sz);
  spec.parent_port.resize(sz);
  for (std::size_t i = 0; i < sz; ++i) {
    if (t.members[i] == t.root) {
      spec.parent[i] = graph::kNoVertex;
      spec.parent_port[i] = graph::kNoPort;
    } else {
      spec.parent[i] = t.info[i].parent;
      spec.parent_port[i] = t.info[i].parent_port;
    }
  }
  return spec;
}

}  // namespace

RoutingScheme RoutingScheme::build(const graph::WeightedGraph& g,
                                   const SchemeParams& params) {
  NORS_CHECK(params.k >= 1);
  NORS_CHECK_MSG(graph::is_connected(g), "graph must be connected");
  RoutingScheme s;
  s.g_ = &g;
  s.params_ = params;
  const int n = g.n();
  const int k = params.k;
  util::Rng rng(params.seed);

  // Broadcast backbone: the paper assumes a BFS tree for Lemma-1 pipelines;
  // we build it for real and measure its rounds.
  const auto bfs = primitives::distributed_bfs_tree(g, 0);
  s.ledger_.add("infra/BFS tree", congest::CostKind::kSimulated,
                bfs.construction_rounds, 0,
                "height=" + std::to_string(bfs.height));
  const int height = bfs.height;

  const primitives::Hierarchy h = primitives::Hierarchy::sample(n, k, rng);
  s.level_.resize(static_cast<std::size_t>(n));
  for (Vertex v = 0; v < n; ++v) {
    s.level_[static_cast<std::size_t>(v)] = h.level(v);
  }

  // Exact pivots (levels ≤ ⌈k/2⌉), simulated.
  s.pivots_ = compute_exact_pivots(g, h, params, s.ledger_);

  // Preprocess + approximate pivots + all cluster trees, with a coverage
  // retry loop: if the whp hitting event fails and some vertex is missing
  // from a top-level tree, rebuild with doubled hop bound B.
  SchemeParams attempt_params = params;
  for (int attempt = 0;; ++attempt) {
    NORS_CHECK_MSG(attempt <= params.max_b_retries,
                   "top-level coverage failed after retries");
    s.trees_.clear();
    congest::RoundLedger attempt_ledger;

    Preprocess pre;
    if (k >= 2) {
      pre = build_preprocess(g, h, attempt_params, height, attempt_ledger,
                             rng);
      s.beta_ = pre.beta();
      compute_approx_pivots(g, h, pre, s.pivots_, height, attempt_ledger);
    }

    for (int i = 0; i < k; ++i) {
      std::vector<ClusterTree> level_trees;
      LevelKind kind = classify_level(i, k);
      if (kind == LevelKind::kMiddle && !params.middle_level_opt) {
        // E8 ablation: the middle level can also run the small-level
        // Bellman–Ford (its i+1 pivots are exact) at a higher round cost.
        kind = LevelKind::kSmall;
      }
      switch (kind) {
        case LevelKind::kSmall:
          level_trees = build_small_level_trees(g, h, i, s.pivots_,
                                                attempt_params,
                                                attempt_ledger);
          break;
        case LevelKind::kMiddle:
          level_trees = build_middle_level_trees(
              g, h, i, s.pivots_, attempt_params, height, attempt_ledger);
          break;
        case LevelKind::kLarge:
          level_trees = build_large_level_trees(g, h, i, s.pivots_, pre,
                                                attempt_params, height,
                                                attempt_ledger);
          break;
      }
      for (auto& t : level_trees) s.trees_.push_back(std::move(t));
    }

    s.pruned_ = sanitize_trees(g, s.trees_);
    // The member/info columns were grown by push_back; give back the
    // geometric-growth slack now — the trees stay resident for the
    // scheme's lifetime and the batch peak sits on top of them (§9.2).
    for (auto& t : s.trees_) {
      t.members.shrink_to_fit();
      t.info.shrink_to_fit();
    }

    // Coverage: every top-level tree must span all of V (the find-tree loop
    // terminates at level k-1 only then).
    bool covered = true;
    for (const auto& t : s.trees_) {
      if (t.level == k - 1 && t.size() != static_cast<std::size_t>(n)) {
        covered = false;
        break;
      }
    }
    if (covered) {
      s.ledger_.merge(attempt_ledger);
      break;
    }
    s.coverage_retries_ = attempt + 1;
    attempt_params.hit_constant *= 2.0;  // doubles every hop bound B
  }

  // Section-6 tree routing over every cluster tree (batched, Remark 3).
  std::vector<treeroute::TreeSpec> specs;
  specs.reserve(s.trees_.size());
  s.tree_of_root_.assign(static_cast<std::size_t>(n), -1);
  for (std::size_t i = 0; i < s.trees_.size(); ++i) {
    s.tree_of_root_[static_cast<std::size_t>(s.trees_[i].root)] =
        static_cast<int>(i);
    specs.push_back(to_spec(s.trees_[i]));
  }
  treeroute::DistTreeBatchParams tp;
  tp.gamma = params.tree_gamma;
  tp.seed = rng.next();
  tp.threads = params.threads;
  util::Rng tree_rng(tp.seed);
  // Construction scratch (network slabs, detection rows, cluster chains) is
  // done: hand the pooled slabs back to the OS before the Section-6 batch
  // grows the scheme to its resident peak (DESIGN.md §9). malloc_trim
  // returns what the heap itself can release (e.g. growth churn from the
  // cluster-tree columns) — without it the freed pages stay resident under
  // the batch's peak.
  util::SlabPool::global().trim();
#if defined(__GLIBC__)
  ::malloc_trim(0);
#endif
  s.tree_schemes_ = std::make_shared<treeroute::DistTreeBatch>(
      treeroute::build_dist_tree_batch(g, std::move(specs), tp, height,
                                       tree_rng));
  s.ledger_.merge(s.tree_schemes_->ledger);

  // Labels: per vertex, per level, the pivot and the tree label (if the
  // vertex belongs to its pivot's cluster tree). One flat arena, stride k.
  s.labels_.assign(static_cast<std::size_t>(n) * static_cast<std::size_t>(k),
                   {});
  for (Vertex v = 0; v < n; ++v) {
    LabelEntry* lv =
        s.labels_.data() + static_cast<std::size_t>(v) * static_cast<std::size_t>(k);
    for (int i = 0; i < k; ++i) {
      LabelEntry& le = lv[static_cast<std::size_t>(i)];
      le.pivot = s.pivots_.z(i, v);
      le.pivot_dist = s.pivots_.d(i, v);
      if (le.pivot == graph::kNoVertex) continue;
      const int ti = s.tree_of_root_[static_cast<std::size_t>(le.pivot)];
      if (ti < 0) continue;
      const auto& scheme =
          s.tree_schemes_->schemes[static_cast<std::size_t>(ti)];
      const int pos = scheme.find(v);
      if (pos >= 0) {
        le.member = true;
        le.tree_label = scheme.label_at(static_cast<std::size_t>(pos));
      }
    }
  }

  // The 4k-5 trick labels (level-0 roots holding their members' tree
  // labels) need no build step: they are exactly the member labels of the
  // root's own tree scheme, served via trick_label().

  // Release any remaining pooled construction slabs: the finished scheme
  // owns its own storage, and a serving process should not keep the
  // builder's high-water arenas (or the heap's construction churn)
  // resident.
  util::SlabPool::global().trim();
#if defined(__GLIBC__)
  ::malloc_trim(0);
#endif
  return s;
}

RoutingScheme::RouteResult RoutingScheme::route(Vertex u, Vertex v) const {
  RouteResult r;
  r.path.push_back(u);
  if (u == v) {
    r.ok = true;
    return r;
  }

  // Find the tree (Algorithm 1, plus the 4k-5 trick: if v is in u's own
  // level-0 cluster, u holds v's tree label locally and routes in C̃(u)).
  const treeroute::DistTreeScheme* tree = nullptr;
  const treeroute::DistTreeScheme::VLabel* dest = nullptr;
  if (params_.label_trick && level_[static_cast<std::size_t>(u)] == 0) {
    const int ti = tree_of_root_[static_cast<std::size_t>(u)];
    if (ti >= 0) {
      const auto& scheme = tree_schemes_->schemes[static_cast<std::size_t>(ti)];
      const int pos = scheme.find(v);
      if (pos >= 0) {
        tree = &scheme;
        dest = &scheme.label_at(static_cast<std::size_t>(pos));
        r.tree_root = u;
        r.tree_level = 0;
        r.via_trick = true;
      }
    }
  }
  if (tree == nullptr) {
    for (int i = 0; i < params_.k; ++i) {
      const LabelEntry& le = label_entry(v, i);
      if (!le.member) continue;  // v ∉ C̃(ẑ_i(v)): keep searching
      const int ti = tree_of_root_[static_cast<std::size_t>(le.pivot)];
      if (ti < 0) continue;
      const auto& scheme =
          tree_schemes_->schemes[static_cast<std::size_t>(ti)];
      if (!scheme.contains(u)) continue;  // u ∉ C̃(ẑ_i(v))
      tree = &scheme;
      dest = &le.tree_label;
      r.tree_root = le.pivot;
      r.tree_level = i;
      break;
    }
  }
  if (tree == nullptr) return r;  // coverage failure (prevented by build)

  // Walk the unique tree path over real edges.
  Vertex x = u;
  while (x != v) {
    const std::int32_t port = tree->next_hop(x, *dest);
    NORS_CHECK_MSG(port != graph::kNoPort, "router stalled before arrival");
    const auto& e = g_->edge(x, port);
    r.length += e.w;
    ++r.hops;
    x = e.to;
    r.path.push_back(x);
    NORS_CHECK_MSG(r.hops <= 4 * g_->n(), "routing loop detected");
  }
  r.ok = true;
  return r;
}

std::int64_t RoutingScheme::table_words(Vertex v) const {
  // Pivot list (id + dist per level) + one tree-routing table per cluster
  // tree containing v (+ root id and b value), + trick labels at level-0
  // roots.
  std::int64_t words = 2LL * params_.k;
  for (std::size_t ti = 0; ti < trees_.size(); ++ti) {
    const auto& scheme = tree_schemes_->schemes[ti];
    const int pos = scheme.find(v);
    if (pos >= 0) {
      words += 2 + scheme.table_words_at(static_cast<std::size_t>(pos));
    }
  }
  if (params_.label_trick && level_[static_cast<std::size_t>(v)] == 0) {
    const int ti = tree_of_root_[static_cast<std::size_t>(v)];
    if (ti >= 0 && trees_[static_cast<std::size_t>(ti)].level == 0) {
      const auto& scheme = tree_schemes_->schemes[static_cast<std::size_t>(ti)];
      for (std::size_t i = 0; i < scheme.members().size(); ++i) {
        words += 1 + scheme.label_at(i).words();
      }
    }
  }
  return words;
}

std::int64_t RoutingScheme::label_words(Vertex v) const {
  std::int64_t words = 0;
  for (int i = 0; i < params_.k; ++i) {
    const LabelEntry& le = label_entry(v, i);
    words += 3 + (le.member ? le.tree_label.words() : 0);
  }
  return words;
}

int RoutingScheme::overlap(Vertex v) const {
  int c = 0;
  for (const auto& t : trees_) c += t.contains(v) ? 1 : 0;
  return c;
}

double RoutingScheme::stretch_bound() const {
  return core::stretch_bound(params_.k, params_.epsilon(),
                             params_.label_trick);
}

int RoutingScheme::tree_index(Vertex root) const {
  if (root < 0 || static_cast<std::size_t>(root) >= tree_of_root_.size()) {
    return -1;
  }
  return tree_of_root_[static_cast<std::size_t>(root)];
}

}  // namespace nors::core
