#pragma once

#include <unordered_map>
#include <vector>

#include "core/scheme.h"

namespace nors::core {

/// The paper's distance-estimation scheme (§5, Theorem 6): every vertex
/// carries a sketch of size O(n^{1/k} log n) — its cluster memberships with
/// the b_v(u) values plus its k approximate pivots — and any two sketches
/// yield a 2k-1+o(1) approximate distance in O(k) time (Algorithm 2).
class DistanceEstimation {
 public:
  /// Extracts the sketches from a built routing scheme (the paper derives
  /// both from the same approximate clusters/pivots).
  static DistanceEstimation build(const RoutingScheme& scheme);

  struct QueryResult {
    graph::Dist estimate = graph::kDistInf;
    int iterations = 0;  // while-loop iterations of Algorithm 2, ≤ k
  };

  /// Algorithm 2: purely sketch-local computation, no graph access.
  QueryResult estimate(graph::Vertex u, graph::Vertex v) const;

  /// One-sided estimation (the paper's footnote-6 property, shared with
  /// [LP13a]): the full sketch of u plus only the O(k log n)-word *label*
  /// of v — v's pivots and its distances to them — suffice. Scans the k
  /// pivot trees of v for one containing u (the find-tree argument), so the
  /// guarantee is the routing stretch 4k-3+o(1) rather than 2k-1+o(1).
  QueryResult estimate_from_label(graph::Vertex u, graph::Vertex v) const;

  /// Words of the one-sided label (pivot ids, distances, membership b's);
  /// uniform across vertices.
  std::int64_t label_words(graph::Vertex /*v*/) const { return 3LL * k_; }

  std::int64_t sketch_words(graph::Vertex v) const;
  int k() const { return k_; }

  /// Analytic bound on estimate/d_G for these parameters (2k-1+o(1)).
  double stretch_bound() const { return bound_; }

 private:
  struct Sketch {
    // Cluster memberships: root u -> b_v(u).
    std::unordered_map<graph::Vertex, graph::Dist> clusters;
    // Approximate pivots (ẑ_i(v), d̂_i(v)) for i = 0..k-1.
    std::vector<std::pair<graph::Vertex, graph::Dist>> pivots;
  };

  int k_ = 0;
  double bound_ = 0;
  std::vector<Sketch> sketches_;
};

}  // namespace nors::core
