#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "graph/graph.h"
#include "primitives/hierarchy.h"
#include "treeroute/tz_tree.h"

namespace nors::tz {

/// The sequential Thorup–Zwick compact routing scheme (TZ01) — the paper's
/// Table 1 baseline row. Built centrally with exact clusters and pivots:
/// tables Õ(n^{1/k}) words, labels O(k log n) words, stretch 4k-5 with the
/// cluster-label trick (4k-3 without).
class TzRoutingScheme {
 public:
  struct Params {
    int k = 3;
    std::uint64_t seed = 1;
    bool label_trick = true;
  };

  /// One entry of a vertex label: the level-i pivot and, when the vertex
  /// belongs to that pivot's cluster, its tree label there.
  struct LabelEntry {
    graph::Vertex pivot = graph::kNoVertex;
    bool member = false;
    treeroute::TzTreeScheme::Label tree_label;
  };

  struct RouteResult {
    bool ok = false;
    graph::Dist length = 0;
    int hops = 0;
    graph::Vertex tree_root = graph::kNoVertex;
    int tree_level = -1;
  };

  /// Builds the scheme centrally. Keeps a reference to `g`; the graph must
  /// outlive the scheme and keep a stable address.
  static TzRoutingScheme build(const graph::WeightedGraph& g,
                               const Params& params);

  /// Simulates routing a packet from u to v over real graph edges using
  /// only u's table, intermediate tables, and v's label.
  RouteResult route(graph::Vertex u, graph::Vertex v) const;

  std::int64_t table_words(graph::Vertex v) const;
  std::int64_t label_words(graph::Vertex v) const;
  /// Number of clusters containing v (Claim 2 overlap).
  int overlap(graph::Vertex v) const;
  int k() const { return params_.k; }

 private:
  const graph::WeightedGraph* g_ = nullptr;
  Params params_;
  // Exact pivots: pivot_[i*n+v], pivot_dist_[i*n+v].
  std::vector<graph::Vertex> pivot_;
  std::vector<graph::Dist> pivot_dist_;
  // Cluster trees keyed by root.
  std::unordered_map<graph::Vertex, treeroute::TzTreeScheme> trees_;
  // Per-vertex label: k entries.
  std::vector<std::vector<LabelEntry>> labels_;
  // Level of each vertex in the hierarchy (for the trick + stats).
  std::vector<int> level_;
  // Label trick: at roots of level-0 clusters, destination labels of every
  // cluster member.
  std::unordered_map<graph::Vertex,
                     std::unordered_map<graph::Vertex,
                                        treeroute::TzTreeScheme::Label>>
      trick_labels_;

  graph::Vertex pivot_at(int i, graph::Vertex v) const {
    return pivot_[static_cast<std::size_t>(i) *
                      static_cast<std::size_t>(g_->n()) +
                  static_cast<std::size_t>(v)];
  }
};

}  // namespace nors::tz
