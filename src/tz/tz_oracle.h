#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "graph/graph.h"

namespace nors::tz {

/// The Thorup–Zwick approximate distance oracle (TZ05): bunches of expected
/// size O(k n^{1/k}), query stretch ≤ 2k-1 in O(k) time. Serves as the
/// sequential baseline for the paper's Theorem 6 (distance estimation).
class TzDistanceOracle {
 public:
  struct Params {
    int k = 3;
    std::uint64_t seed = 1;
  };

  static TzDistanceOracle build(const graph::WeightedGraph& g,
                                const Params& params);

  struct QueryResult {
    graph::Dist estimate = graph::kDistInf;
    int iterations = 0;  // ≤ k
  };
  QueryResult query(graph::Vertex u, graph::Vertex v) const;

  std::int64_t sketch_words(graph::Vertex v) const;
  int k() const { return k_; }

  /// Level-(i) pivot of v and the distance to it (i ≤ k; level k distance
  /// is +inf padding). Exposed for the frozen serving snapshot.
  graph::Vertex pivot(int i, graph::Vertex v) const {
    return pivot_[static_cast<std::size_t>(i) * n_ +
                  static_cast<std::size_t>(v)];
  }
  graph::Dist pivot_dist(int i, graph::Vertex v) const {
    return pivot_dist_[static_cast<std::size_t>(i) * n_ +
                       static_cast<std::size_t>(v)];
  }

  /// The bunch B(v) as built (w -> d(v,w)); enumeration order is
  /// unspecified — snapshotting code must sort (serve/frozen_tz.cc does).
  const std::unordered_map<graph::Vertex, graph::Dist>& bunch(
      graph::Vertex v) const {
    return bunch_[static_cast<std::size_t>(v)];
  }

 private:
  int k_ = 0;
  std::size_t n_ = 0;
  // pivots_[i*n+v] / pivot_dist_[i*n+v]; bunch_[v]: w -> d(v,w).
  std::vector<graph::Vertex> pivot_;
  std::vector<graph::Dist> pivot_dist_;
  std::vector<std::unordered_map<graph::Vertex, graph::Dist>> bunch_;
};

}  // namespace nors::tz
