#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "graph/graph.h"

namespace nors::tz {

/// The Thorup–Zwick approximate distance oracle (TZ05): bunches of expected
/// size O(k n^{1/k}), query stretch ≤ 2k-1 in O(k) time. Serves as the
/// sequential baseline for the paper's Theorem 6 (distance estimation).
class TzDistanceOracle {
 public:
  struct Params {
    int k = 3;
    std::uint64_t seed = 1;
  };

  static TzDistanceOracle build(const graph::WeightedGraph& g,
                                const Params& params);

  struct QueryResult {
    graph::Dist estimate = graph::kDistInf;
    int iterations = 0;  // ≤ k
  };
  QueryResult query(graph::Vertex u, graph::Vertex v) const;

  std::int64_t sketch_words(graph::Vertex v) const;
  int k() const { return k_; }

 private:
  int k_ = 0;
  std::size_t n_ = 0;
  // pivots_[i*n+v] / pivot_dist_[i*n+v]; bunch_[v]: w -> d(v,w).
  std::vector<graph::Vertex> pivot_;
  std::vector<graph::Dist> pivot_dist_;
  std::vector<std::unordered_map<graph::Vertex, graph::Dist>> bunch_;
};

}  // namespace nors::tz
