#include "tz/tz_routing.h"

#include <queue>
#include <tuple>

#include "graph/shortest_paths.h"

namespace nors::tz {

namespace {

using graph::Dist;
using graph::Vertex;

/// Truncated Dijkstra from u admitting exactly the cluster
/// C(u) = { v : d(u,v) < limit(v) } (paper (6)). Because every prefix of a
/// shortest path to a cluster member is itself in the cluster, the returned
/// parent pointers form a tree on C(u) made of real graph edges.
struct ClusterGrow {
  std::vector<Vertex> members;
  std::unordered_map<Vertex, Vertex> parent;
  std::unordered_map<Vertex, std::int32_t> parent_port;
  std::unordered_map<Vertex, Dist> dist;
};

ClusterGrow grow_cluster(const graph::WeightedGraph& g, Vertex u,
                         const std::vector<Dist>& limit) {
  ClusterGrow c;
  using Item = std::tuple<Dist, Vertex>;
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> pq;
  c.dist[u] = 0;
  pq.emplace(0, u);
  while (!pq.empty()) {
    const auto [d, v] = pq.top();
    pq.pop();
    auto it = c.dist.find(v);
    if (it == c.dist.end() || it->second != d) continue;
    c.members.push_back(v);
    for (std::int32_t p = 0; p < g.degree(v); ++p) {
      const auto& e = g.edge(v, p);
      const Dist nd = d + e.w;
      if (nd >= limit[static_cast<std::size_t>(e.to)]) continue;
      auto jt = c.dist.find(e.to);
      if (jt == c.dist.end() || nd < jt->second) {
        c.dist[e.to] = nd;
        c.parent[e.to] = v;
        c.parent_port[e.to] = e.rev;
        pq.emplace(nd, e.to);
      }
    }
  }
  return c;
}

}  // namespace

TzRoutingScheme TzRoutingScheme::build(const graph::WeightedGraph& g,
                                       const Params& params) {
  NORS_CHECK(params.k >= 1);
  TzRoutingScheme s;
  s.g_ = &g;
  s.params_ = params;
  const int n = g.n();
  const int k = params.k;

  util::Rng rng(params.seed);
  const primitives::Hierarchy h = primitives::Hierarchy::sample(n, k, rng);
  s.level_.resize(static_cast<std::size_t>(n));
  for (Vertex v = 0; v < n; ++v) s.level_[static_cast<std::size_t>(v)] =
      h.level(v);

  // Exact pivots per level, plus d(v, A_{i}) arrays (d(v, A_k) = inf).
  s.pivot_.assign(static_cast<std::size_t>(k) * n, graph::kNoVertex);
  s.pivot_dist_.assign(static_cast<std::size_t>(k + 1) * n, graph::kDistInf);
  for (int i = 0; i < k; ++i) {
    const auto r = graph::multi_source_dijkstra(g, h.set_at(i));
    for (Vertex v = 0; v < n; ++v) {
      s.pivot_[static_cast<std::size_t>(i) * n + v] =
          r.source[static_cast<std::size_t>(v)];
      s.pivot_dist_[static_cast<std::size_t>(i) * n + v] =
          r.dist[static_cast<std::size_t>(v)];
    }
  }

  // Clusters: C(u) for u at level i, bounded by d(v, A_{i+1}).
  s.labels_.assign(static_cast<std::size_t>(n), {});
  for (Vertex v = 0; v < n; ++v) {
    s.labels_[static_cast<std::size_t>(v)].resize(static_cast<std::size_t>(k));
  }
  for (Vertex u = 0; u < n; ++u) {
    const int i = h.level(u);
    std::vector<Dist> limit(static_cast<std::size_t>(n));
    for (Vertex v = 0; v < n; ++v) {
      limit[static_cast<std::size_t>(v)] =
          s.pivot_dist_[static_cast<std::size_t>(i + 1) * n + v];
    }
    ClusterGrow c = grow_cluster(g, u, limit);
    s.trees_.emplace(
        u, treeroute::TzTreeScheme::build(g, c.members, c.parent,
                                          c.parent_port, u));
    if (params.label_trick && i == 0) {
      auto& tl = s.trick_labels_[u];
      const auto& tree = s.trees_.at(u);
      for (Vertex v : c.members) tl[v] = tree.label(v);
    }
  }

  // Labels: for each level i, the pivot and (if member) the tree label.
  for (Vertex v = 0; v < n; ++v) {
    for (int i = 0; i < k; ++i) {
      LabelEntry& le =
          s.labels_[static_cast<std::size_t>(v)][static_cast<std::size_t>(i)];
      le.pivot = s.pivot_at(i, v);
      const auto it = s.trees_.find(le.pivot);
      if (it != s.trees_.end() && it->second.contains(v)) {
        le.member = true;
        le.tree_label = it->second.label(v);
      }
    }
  }
  return s;
}

TzRoutingScheme::RouteResult TzRoutingScheme::route(Vertex u, Vertex v) const {
  RouteResult r;
  if (u == v) {
    r.ok = true;
    return r;
  }
  const auto& vlabel = labels_[static_cast<std::size_t>(v)];

  // Find the tree (Algorithm 1 shape, plus the 4k-5 trick: if v lies in u's
  // own level-0 cluster, u holds v's tree label locally and routes in C(u)).
  const treeroute::TzTreeScheme* tree = nullptr;
  const treeroute::TzTreeScheme::Label* dest = nullptr;
  if (params_.label_trick && level_[static_cast<std::size_t>(u)] == 0) {
    auto it = trick_labels_.find(u);
    if (it != trick_labels_.end()) {
      auto jt = it->second.find(v);
      if (jt != it->second.end()) {
        tree = &trees_.at(u);
        dest = &jt->second;
        r.tree_root = u;
        r.tree_level = 0;
      }
    }
  }
  if (tree == nullptr) {
    for (int i = 0; i < params_.k; ++i) {
      const LabelEntry& le = vlabel[static_cast<std::size_t>(i)];
      if (!le.member) continue;
      const auto it = trees_.find(le.pivot);
      if (it == trees_.end() || !it->second.contains(u)) continue;
      tree = &it->second;
      dest = &le.tree_label;
      r.tree_root = le.pivot;
      r.tree_level = i;
      break;
    }
  }
  if (tree == nullptr) return r;  // cannot happen with a valid hierarchy

  // Walk the tree path over real edges.
  Vertex x = u;
  while (x != v) {
    const std::int32_t port = treeroute::TzTreeScheme::next_hop(
        tree->table(x), *dest);
    NORS_CHECK_MSG(port != graph::kNoPort, "router stalled before arrival");
    const auto& e = g_->edge(x, port);
    r.length += e.w;
    ++r.hops;
    x = e.to;
    NORS_CHECK_MSG(r.hops <= 4 * g_->n(), "routing loop detected");
  }
  r.ok = true;
  return r;
}

std::int64_t TzRoutingScheme::table_words(Vertex v) const {
  // Pivots (id+dist per level) + one tree table per cluster containing v.
  std::int64_t words = 2LL * params_.k;
  for (const auto& [root, tree] : trees_) {
    if (tree.contains(v)) words += 2 + tree.table(v).words();
  }
  if (params_.label_trick) {
    auto it = trick_labels_.find(v);
    if (it != trick_labels_.end()) {
      for (const auto& [dst, lbl] : it->second) words += 1 + lbl.words();
    }
  }
  return words;
}

std::int64_t TzRoutingScheme::label_words(Vertex v) const {
  std::int64_t words = 0;
  for (const auto& le : labels_[static_cast<std::size_t>(v)]) {
    words += 2 + (le.member ? le.tree_label.words() : 0);
  }
  return words;
}

int TzRoutingScheme::overlap(Vertex v) const {
  int c = 0;
  for (const auto& [root, tree] : trees_) {
    if (tree.contains(v)) ++c;
  }
  return c;
}

}  // namespace nors::tz
