#include "tz/tz_oracle.h"

#include <queue>
#include <tuple>

#include "graph/shortest_paths.h"
#include "primitives/hierarchy.h"
#include "util/random.h"

namespace nors::tz {

namespace {

using graph::Dist;
using graph::Vertex;

}  // namespace

TzDistanceOracle TzDistanceOracle::build(const graph::WeightedGraph& g,
                                         const Params& params) {
  NORS_CHECK(params.k >= 1);
  TzDistanceOracle o;
  o.k_ = params.k;
  o.n_ = static_cast<std::size_t>(g.n());
  const int n = g.n();
  const int k = params.k;

  util::Rng rng(params.seed);
  const primitives::Hierarchy h = primitives::Hierarchy::sample(n, k, rng);

  o.pivot_.assign(static_cast<std::size_t>(k) * o.n_, graph::kNoVertex);
  o.pivot_dist_.assign(static_cast<std::size_t>(k + 1) * o.n_,
                       graph::kDistInf);
  for (int i = 0; i < k; ++i) {
    const auto r = graph::multi_source_dijkstra(g, h.set_at(i));
    for (Vertex v = 0; v < n; ++v) {
      o.pivot_[static_cast<std::size_t>(i) * o.n_ + v] =
          r.source[static_cast<std::size_t>(v)];
      o.pivot_dist_[static_cast<std::size_t>(i) * o.n_ + v] =
          r.dist[static_cast<std::size_t>(v)];
    }
  }

  // Bunch of v: w ∈ A_i with d(v,w) < d(v, A_{i+1}) — computed by growing
  // the cluster C(w) of every w (v ∈ C(w) ⟺ w ∈ B(v)) via truncated
  // Dijkstra, mirroring the routing construction.
  o.bunch_.assign(o.n_, {});
  for (Vertex w = 0; w < n; ++w) {
    const int i = h.level(w);
    using Item = std::tuple<Dist, Vertex>;
    std::priority_queue<Item, std::vector<Item>, std::greater<Item>> pq;
    std::unordered_map<Vertex, Dist> dist;
    dist[w] = 0;
    pq.emplace(0, w);
    while (!pq.empty()) {
      const auto [d, v] = pq.top();
      pq.pop();
      auto it = dist.find(v);
      if (it == dist.end() || it->second != d) continue;
      o.bunch_[static_cast<std::size_t>(v)][w] = d;
      for (std::int32_t p = 0; p < g.degree(v); ++p) {
        const auto& e = g.edge(v, p);
        const Dist nd = d + e.w;
        if (nd >= o.pivot_dist_[static_cast<std::size_t>(i + 1) * o.n_ +
                                static_cast<std::size_t>(e.to)]) {
          continue;
        }
        auto jt = dist.find(e.to);
        if (jt == dist.end() || nd < jt->second) {
          dist[e.to] = nd;
          pq.emplace(nd, e.to);
        }
      }
    }
  }
  return o;
}

TzDistanceOracle::QueryResult TzDistanceOracle::query(Vertex u,
                                                      Vertex v) const {
  QueryResult r;
  Vertex w = u;
  Dist d_uw = 0;
  for (int i = 0;; ++i) {
    const auto& bunch_v = bunch_[static_cast<std::size_t>(v)];
    auto it = bunch_v.find(w);
    if (it != bunch_v.end()) {
      r.estimate = d_uw + it->second;
      r.iterations = i + 1;
      return r;
    }
    // Guard before the pivot access: pivot_ has k levels, and a miss on
    // the top-level pivot (in every bunch on a connected graph) must fail
    // loudly instead of reading past the array.
    NORS_CHECK_MSG(i + 1 < k_, "oracle loop exceeded k iterations");
    std::swap(u, v);
    w = pivot_[static_cast<std::size_t>(i + 1) * n_ +
               static_cast<std::size_t>(u)];
    d_uw = pivot_dist_[static_cast<std::size_t>(i + 1) * n_ +
                       static_cast<std::size_t>(u)];
  }
}

std::int64_t TzDistanceOracle::sketch_words(Vertex v) const {
  return 2LL * k_ +
         2LL * static_cast<std::int64_t>(
                   bunch_[static_cast<std::size_t>(v)].size());
}

}  // namespace nors::tz
