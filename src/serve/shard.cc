#include "serve/shard.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "serve/delta.h"
#include "serve/table_cache.h"
#include "util/failpoint.h"
#include "util/latency.h"
#include "util/queue.h"
#include "util/threads.h"

namespace nors::serve {

/// Shared completion state of one submitted batch. Workers hold it via
/// shared_ptr (through their Task copies), so it outlives the ticket even
/// if the caller drops the Batch without waiting.
struct ShardedRouteServer::Batch::State {
  explicit State(std::size_t total) : remaining(total) {}
  std::atomic<std::size_t> remaining;
  std::mutex m;
  std::condition_variable cv;
  std::exception_ptr error;  // first worker failure; guarded by m
  // Completion hook of the callback submit() overload; guarded by m.
  // Swapped out (and thereby released) before it runs, so a callback that
  // captures the Batch ticket cannot form a State↔callback cycle.
  std::function<void()> on_complete;
  // Per-shard query indices (positions into the caller's arrays). Owned
  // here so the index lists live exactly as long as the slowest worker
  // needs them.
  std::vector<std::vector<std::uint32_t>> idx;
};

/// One enqueued sub-batch: the slice of a submit() owned by one shard.
/// Carries the shard so the serving worker (which may run several shards
/// on a low-core machine) attributes counters to the right range.
struct ShardedRouteServer::Task {
  std::shared_ptr<Batch::State> state;
  Shard* shard = nullptr;
  const Query* queries = nullptr;
  Decision* out = nullptr;
  const std::vector<std::uint32_t>* idx = nullptr;  // into state->idx
  // Delta overlay for this sub-batch (null = unpatched image). The Task's
  // shared_ptr pins the generation until the sub-batch retires.
  std::shared_ptr<const DeltaSet> delta;
};

/// A vertex-range partition and its accounting. Pure data — the threads
/// live in Worker, so the shard count (and with it ranges, dispatch and
/// per-range stats) is independent of how many cores serve them.
struct ShardedRouteServer::Shard {
  graph::Vertex lo = 0, hi = 0;  // owned source-vertex range [lo, hi)
  std::atomic<std::int64_t> queries{0};
  std::atomic<std::int64_t> batches{0};
  std::atomic<std::int64_t> hops{0};
  std::atomic<std::int64_t> cache_hits{0};
  std::atomic<std::int64_t> cache_misses{0};
  std::atomic<std::int64_t> masked{0};
  std::atomic<std::int64_t> repaired{0};
  util::LatencyHistogram latency;
};

/// One serving thread: pops tasks (possibly from several shards, mapped
/// round-robin) and answers them through the batch engine.
struct ShardedRouteServer::Worker {
  util::BatchQueue<Task> queue;
  std::thread thread;
};

void ShardedRouteServer::Batch::wait() {
  if (!state_) return;
  std::unique_lock<std::mutex> lk(state_->m);
  state_->cv.wait(lk, [this] {
    return state_->remaining.load(std::memory_order_acquire) == 0;
  });
  if (state_->error) {
    // Keep the error: every wait() on a failed batch must throw, or a
    // second waiter holding a copy of the ticket would read out[] slots
    // the aborted worker never wrote.
    std::rethrow_exception(state_->error);
  }
}

bool ShardedRouteServer::Batch::done() const {
  return !state_ ||
         state_->remaining.load(std::memory_order_acquire) == 0;
}

ShardedRouteServer::ShardedRouteServer(const FrozenScheme& fs,
                                       ShardedOptions opt)
    : fs_(&fs), opt_(opt) {
  NORS_CHECK_MSG(opt_.shards >= 1, "ShardedRouteServer needs >= 1 shard");
  NORS_CHECK(opt_.cache_entries >= 0);
  const int n = fs.n();
  const int k = std::max(1, std::min(opt_.shards, std::max(1, n)));
  opt_.shards = k;
  span_ = static_cast<std::size_t>(
      (std::max(1, n) + k - 1) / k);
  shards_.reserve(static_cast<std::size_t>(k));
  for (int s = 0; s < k; ++s) {
    auto sh = std::make_unique<Shard>();
    sh->lo = static_cast<graph::Vertex>(
        std::min<std::size_t>(static_cast<std::size_t>(s) * span_,
                              static_cast<std::size_t>(n)));
    sh->hi = s + 1 == k
                 ? static_cast<graph::Vertex>(n)
                 : static_cast<graph::Vertex>(std::min<std::size_t>(
                       static_cast<std::size_t>(s + 1) * span_,
                       static_cast<std::size_t>(n)));
    shards_.push_back(std::move(sh));
  }
  // Serving threads: one per shard up to the hardware clamp
  // (NORS_THREADS_OVERSUBSCRIBE=1 restores exact counts — the equivalence
  // sweep relies on shard *ranges*, never on thread count, so the clamp is
  // unobservable except in wall-clock and p99).
  const int w = std::min(k, util::resolve_threads(k));
  workers_.reserve(static_cast<std::size_t>(w));
  for (int i = 0; i < w; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  for (auto& wk : workers_) {
    wk->thread = std::thread([this, &ww = *wk] { worker(ww); });
  }
}

ShardedRouteServer::~ShardedRouteServer() {
  // close() lets workers drain queued batches before exiting, so tickets
  // still in flight complete; destroying the server before wait()ing on
  // outstanding batches is nevertheless a caller bug (out may dangle).
  for (auto& wk : workers_) wk->queue.close();
  for (auto& wk : workers_) {
    if (wk->thread.joinable()) wk->thread.join();
  }
}

void ShardedRouteServer::worker(Worker& w) {
  using clock = std::chrono::steady_clock;
  const bool cached = opt_.cache_entries > 0;
  std::unique_ptr<TableCache> cache;
  if (cached) cache = std::make_unique<TableCache>(*fs_, opt_.cache_entries);
  // Sub-batches run through the pipelined engine in blocks: gather up to
  // kBlock queries into a dense buffer, answer them with one route_batch
  // call (kBatchLanes in flight), scatter the decisions back to the
  // caller's submission-order slots. One clock pair per block feeds the
  // latency histogram with the block's per-query mean — per-query timing
  // inside an interleaved engine would measure the interleaving, not the
  // query (and two clock reads per ~µs route would tax the hot path).
  constexpr std::size_t kBlock = 128;
  std::vector<Query> qbuf(kBlock);
  std::vector<Decision> dbuf(kBlock);
  // Delta sequence the cache was last warmed under (0 = unpatched image):
  // a different sequence invalidates it before the first block.
  std::uint64_t cache_seq = 0;
  Task t;
  while (w.queue.pop(t)) {
    Shard& s = *t.shard;
    const std::size_t batch_queries = t.idx->size();
    const auto& idx = *t.idx;
    std::int64_t done = 0, hops = 0, hits = 0, misses = 0;
    std::int64_t masked = 0, repaired = 0;
    try {
      if (util::failpoint("serve.batch") == util::FpAction::kError) {
        throw std::runtime_error("injected failure: serve.batch failpoint");
      }
      const std::uint64_t seq = t.delta ? t.delta->seq() : 0;
      if (cached && seq != cache_seq) {
        cache->clear();
        cache_seq = seq;
      }
      for (std::size_t b = 0; b < idx.size(); b += kBlock) {
        const std::size_t m = std::min(kBlock, idx.size() - b);
        for (std::size_t j = 0; j < m; ++j) {
          qbuf[j] = t.queries[idx[b + j]];
        }
        BatchStats bs;
        const auto t0 = clock::now();
        if (t.delta) {
          if (cached) {
            fs_->route_batch_overlay(qbuf.data(), m, dbuf.data(), *cache,
                                     *t.delta, &bs);
          } else {
            NoTableCache none;
            fs_->route_batch_overlay(qbuf.data(), m, dbuf.data(), none,
                                     *t.delta, &bs);
          }
        } else if (cached) {
          fs_->route_batch_cached(qbuf.data(), m, dbuf.data(), *cache, &bs);
        } else {
          fs_->route_batch(qbuf.data(), m, dbuf.data(), &bs);
        }
        const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                            clock::now() - t0)
                            .count();
        for (std::size_t j = 0; j < m; ++j) {
          t.out[idx[b + j]] = dbuf[j];
        }
        done += static_cast<std::int64_t>(m);
        hops += bs.hops;
        masked += bs.masked;
        repaired += bs.repaired;
        if (cached) {
          hits += bs.cache_hits;
          misses += bs.cache_misses;
        }
        s.latency.record_ns(ns / static_cast<std::int64_t>(m));
      }
    } catch (...) {
      std::lock_guard<std::mutex> lk(t.state->m);
      if (!t.state->error) t.state->error = std::current_exception();
    }
    s.queries.fetch_add(done, std::memory_order_relaxed);
    s.hops.fetch_add(hops, std::memory_order_relaxed);
    s.batches.fetch_add(1, std::memory_order_relaxed);
    if (masked != 0) s.masked.fetch_add(masked, std::memory_order_relaxed);
    if (repaired != 0) {
      s.repaired.fetch_add(repaired, std::memory_order_relaxed);
    }
    if (cached) {
      s.cache_hits.fetch_add(hits, std::memory_order_relaxed);
      s.cache_misses.fetch_add(misses, std::memory_order_relaxed);
    }
    // Credit the whole sub-batch (answered or aborted by the exception);
    // the last task over the finish line wakes the waiters. notify under
    // the mutex so the State can't be destroyed mid-notify — the Task's
    // shared_ptr keeps it alive until this scope ends.
    if (t.state->remaining.fetch_sub(batch_queries,
                                     std::memory_order_acq_rel) ==
        batch_queries) {
      std::function<void()> cb;
      {
        std::lock_guard<std::mutex> lk(t.state->m);
        t.state->cv.notify_all();
        cb.swap(t.state->on_complete);
      }
      if (cb) cb();
    }
    t = Task{};  // release the State before blocking on the next pop
  }
}

ShardedRouteServer::Batch ShardedRouteServer::attach_hook(
    Batch ticket, std::function<void()> on_complete) {
  if (!ticket.state_) {
    // Nothing was enqueued: the completion contract ("exactly once") is
    // met inline, and the ticket is already done.
    if (on_complete) on_complete();
    return ticket;
  }
  bool already_done = false;
  {
    std::lock_guard<std::mutex> lk(ticket.state_->m);
    if (ticket.state_->remaining.load(std::memory_order_acquire) == 0) {
      already_done = true;  // workers beat us to it: run the hook here
    } else {
      ticket.state_->on_complete = std::move(on_complete);
    }
  }
  if (already_done && on_complete) on_complete();
  return ticket;
}

ShardedRouteServer::Batch ShardedRouteServer::submit(
    const Query* queries, std::size_t count, Decision* out,
    std::function<void()> on_complete) {
  return attach_hook(submit_impl(queries, count, out, nullptr),
                     std::move(on_complete));
}

ShardedRouteServer::Batch ShardedRouteServer::submit(const Query* queries,
                                                     std::size_t count,
                                                     Decision* out) {
  return submit_impl(queries, count, out, nullptr);
}

ShardedRouteServer::Batch ShardedRouteServer::submit(
    const Query* queries, std::size_t count, Decision* out,
    std::shared_ptr<const DeltaSet> delta) {
  return submit_impl(queries, count, out, std::move(delta));
}

ShardedRouteServer::Batch ShardedRouteServer::submit(
    const Query* queries, std::size_t count, Decision* out,
    std::shared_ptr<const DeltaSet> delta,
    std::function<void()> on_complete) {
  return attach_hook(submit_impl(queries, count, out, std::move(delta)),
                     std::move(on_complete));
}

ShardedRouteServer::Batch ShardedRouteServer::submit_impl(
    const Query* queries, std::size_t count, Decision* out,
    std::shared_ptr<const DeltaSet> delta) {
  auto state = std::make_shared<Batch::State>(count);
  Batch ticket;
  ticket.state_ = state;
  if (count == 0) return ticket;
  NORS_CHECK_MSG(queries != nullptr && out != nullptr,
                 "submit() needs query and output arrays");
  // Index lists are u32; a larger batch would wrap and silently corrupt
  // the answer placement, so refuse it loudly (split the batch instead).
  NORS_CHECK_MSG(count <= 0xffffffffull,
                 "batch too large: split submissions beyond 2^32 queries");
  state->idx.resize(shards_.size());
  for (auto& v : state->idx) {
    v.reserve(count / shards_.size() + 1);
  }
  for (std::size_t i = 0; i < count; ++i) {
    // Dispatch by source vertex. Out-of-range sources still go to *some*
    // shard (negative ones — including the kNoVertex sentinel — to shard
    // 0, too-large ones clamped to the last shard), so the worker raises
    // the same error the direct route() call would.
    const graph::Vertex u = queries[i].u;
    const int s = u < 0 ? 0 : shard_of(u);
    state->idx[static_cast<std::size_t>(s)].push_back(
        static_cast<std::uint32_t>(i));
  }
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (state->idx[s].empty()) continue;
    // Shard → worker round-robin; with one worker per shard this is the
    // identity, on a clamped machine several shards share a thread.
    Worker& w = *workers_[s % workers_.size()];
    w.queue.push(Task{state, shards_[s].get(), queries, out, &state->idx[s],
                      delta});
  }
  return ticket;
}

void ShardedRouteServer::serve(const Query* queries, std::size_t count,
                               Decision* out) {
  submit(queries, count, out).wait();
}

void ShardedRouteServer::serve(const std::vector<Query>& queries,
                               std::vector<Decision>& out) {
  out.resize(queries.size());
  serve(queries.data(), queries.size(), out.data());
}

ShardStats ShardedRouteServer::shard_stats(int shard) const {
  NORS_CHECK(shard >= 0 && shard < shards());
  const Shard& s = *shards_[static_cast<std::size_t>(shard)];
  ShardStats st;
  st.queries = s.queries.load(std::memory_order_relaxed);
  st.batches = s.batches.load(std::memory_order_relaxed);
  st.hops = s.hops.load(std::memory_order_relaxed);
  st.cache_hits = s.cache_hits.load(std::memory_order_relaxed);
  st.cache_misses = s.cache_misses.load(std::memory_order_relaxed);
  st.masked = s.masked.load(std::memory_order_relaxed);
  st.repaired = s.repaired.load(std::memory_order_relaxed);
  st.p50_us = s.latency.quantile_us(0.5);
  st.p99_us = s.latency.quantile_us(0.99);
  return st;
}

ShardStats ShardedRouteServer::totals() const {
  ShardStats t;
  util::LatencyHistogram::Counts merged{};
  for (const auto& sh : shards_) {
    t.queries += sh->queries.load(std::memory_order_relaxed);
    t.batches += sh->batches.load(std::memory_order_relaxed);
    t.hops += sh->hops.load(std::memory_order_relaxed);
    t.cache_hits += sh->cache_hits.load(std::memory_order_relaxed);
    t.cache_misses += sh->cache_misses.load(std::memory_order_relaxed);
    t.masked += sh->masked.load(std::memory_order_relaxed);
    t.repaired += sh->repaired.load(std::memory_order_relaxed);
    const auto c = sh->latency.snapshot();
    for (std::size_t b = 0; b < c.size(); ++b) merged[b] += c[b];
  }
  t.p50_us = util::LatencyHistogram::quantile_us(merged, 0.5);
  t.p99_us = util::LatencyHistogram::quantile_us(merged, 0.99);
  return t;
}

}  // namespace nors::serve
