#include "serve/server.h"

#include <exception>
#include <thread>

namespace nors::serve {

namespace {

/// Two-way set-associative LRU cache for (vertex, tree) → table-slot index.
/// Per worker, stack-owned: the frozen scheme stays untouched and shared.
/// A set's way 0 is the most recently used; a hit in way 1 swaps the ways.
class TableCache {
 public:
  TableCache(const FrozenScheme& fs, int entries) : fs_(&fs) {
    int sets = 1;
    while (2 * sets < entries) sets *= 2;
    mask_ = static_cast<std::uint64_t>(sets) - 1;
    slots_.assign(static_cast<std::size_t>(sets) * 2, {kEmpty, -1});
  }

  const FrozenScheme::TableSlot* lookup(graph::Vertex x, std::int32_t tree,
                                        std::int64_t& hits,
                                        std::int64_t& misses) {
    const std::uint64_t key =
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(x)) << 32) |
        static_cast<std::uint32_t>(tree);
    // Fibonacci hash of the packed key picks the set.
    const std::size_t set =
        static_cast<std::size_t>((key * 0x9e3779b97f4a7c15ull) >> 32 & mask_)
        * 2;
    Entry& e0 = slots_[set];
    Entry& e1 = slots_[set + 1];
    if (e0.key == key) {
      ++hits;
      return slot_ptr(e0.idx);
    }
    if (e1.key == key) {
      ++hits;
      std::swap(e0, e1);  // promote to MRU
      return slot_ptr(e0.idx);
    }
    ++misses;
    const std::int32_t idx = fs_->table_index(x, tree);
    e1 = e0;  // old MRU becomes LRU, old LRU is evicted
    e0 = {key, idx};
    return slot_ptr(idx);
  }

 private:
  static constexpr std::uint64_t kEmpty = ~0ull;

  struct Entry {
    std::uint64_t key;
    std::int32_t idx;  // -1 = cached "not a member"
  };

  const FrozenScheme::TableSlot* slot_ptr(std::int32_t idx) const {
    return idx < 0 ? nullptr
                   : fs_->tables().data() + static_cast<std::size_t>(idx);
  }

  const FrozenScheme* fs_;
  std::uint64_t mask_;
  std::vector<Entry> slots_;
};

}  // namespace

RouteServer::RouteServer(const FrozenScheme& fs, ServerOptions opt)
    : fs_(&fs), opt_(opt) {
  NORS_CHECK_MSG(opt_.threads >= 1, "RouteServer needs at least one thread");
  NORS_CHECK(opt_.cache_entries >= 0);
}

void RouteServer::serve_chunk(const Query* queries, std::size_t count,
                              Decision* out, ChunkStats& cs) const {
  const FrozenScheme& fs = *fs_;
  if (opt_.cache_entries > 0) {
    TableCache cache(fs, opt_.cache_entries);
    auto lookup = [&](graph::Vertex x, std::int32_t tree) {
      return cache.lookup(x, tree, cs.cache_hits, cs.cache_misses);
    };
    for (std::size_t i = 0; i < count; ++i) {
      out[i] = fs.route_with(queries[i].u, queries[i].v, lookup, nullptr);
      cs.hops += out[i].hops;
    }
  } else {
    for (std::size_t i = 0; i < count; ++i) {
      out[i] = fs.route(queries[i].u, queries[i].v);
      cs.hops += out[i].hops;
    }
  }
}

void RouteServer::serve(const Query* queries, std::size_t count,
                        Decision* out) const {
  const int threads =
      static_cast<int>(std::min<std::size_t>(
          static_cast<std::size_t>(opt_.threads), std::max<std::size_t>(count, 1)));
  std::vector<ChunkStats> stats(static_cast<std::size_t>(threads));
  if (threads <= 1) {
    serve_chunk(queries, count, out, stats[0]);
  } else {
    // A chunk that throws (bad query, corrupt state) must surface as an
    // exception on the calling thread, not std::terminate: every worker
    // catches into a per-thread slot, all threads are always joined, and
    // the first captured exception is rethrown afterwards.
    const std::size_t chunk =
        (count + static_cast<std::size_t>(threads) - 1) /
        static_cast<std::size_t>(threads);
    std::vector<std::exception_ptr> errors(static_cast<std::size_t>(threads));
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads) - 1);
    for (int t = 1; t < threads; ++t) {
      const std::size_t lo =
          std::min(count, static_cast<std::size_t>(t) * chunk);
      const std::size_t hi =
          std::min(count, lo + chunk);
      pool.emplace_back([this, queries, out, lo, hi,
                         &cs = stats[static_cast<std::size_t>(t)],
                         &err = errors[static_cast<std::size_t>(t)]] {
        try {
          serve_chunk(queries + lo, hi - lo, out + lo, cs);
        } catch (...) {
          err = std::current_exception();
        }
      });
    }
    try {
      serve_chunk(queries, std::min(count, chunk), out, stats[0]);
    } catch (...) {
      errors[0] = std::current_exception();
    }
    for (auto& th : pool) th.join();
    for (auto& err : errors) {
      if (err) std::rethrow_exception(err);
    }
  }
  ChunkStats total;
  for (const auto& cs : stats) {
    total.hops += cs.hops;
    total.cache_hits += cs.cache_hits;
    total.cache_misses += cs.cache_misses;
  }
  queries_.fetch_add(static_cast<std::int64_t>(count));
  hops_.fetch_add(total.hops);
  cache_hits_.fetch_add(total.cache_hits);
  cache_misses_.fetch_add(total.cache_misses);
}

}  // namespace nors::serve
