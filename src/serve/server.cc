#include "serve/server.h"

#include <exception>
#include <thread>

#include "serve/table_cache.h"

namespace nors::serve {

RouteServer::RouteServer(const FrozenScheme& fs, ServerOptions opt)
    : fs_(&fs), opt_(opt) {
  NORS_CHECK_MSG(opt_.threads >= 1, "RouteServer needs at least one thread");
  NORS_CHECK(opt_.cache_entries >= 0);
}

void RouteServer::serve_chunk(const Query* queries, std::size_t count,
                              Decision* out, ChunkStats& cs) const {
  const FrozenScheme& fs = *fs_;
  BatchStats bs;
  if (opt_.cache_entries > 0) {
    TableCache cache(fs, opt_.cache_entries);
    fs.route_batch_cached(queries, count, out, cache, &bs);
    cs.cache_hits += bs.cache_hits;
    cs.cache_misses += bs.cache_misses;
  } else {
    // The uncached engine still counts every slab search as a miss in its
    // own stats; the server reports cache counters only when a cache is
    // actually configured.
    fs.route_batch(queries, count, out, &bs);
  }
  cs.hops += bs.hops;
}

void RouteServer::serve(const Query* queries, std::size_t count,
                        Decision* out) const {
  const int threads =
      static_cast<int>(std::min<std::size_t>(
          static_cast<std::size_t>(opt_.threads), std::max<std::size_t>(count, 1)));
  std::vector<ChunkStats> stats(static_cast<std::size_t>(threads));
  if (threads <= 1) {
    serve_chunk(queries, count, out, stats[0]);
  } else {
    // A chunk that throws (bad query, corrupt state) must surface as an
    // exception on the calling thread, not std::terminate: every worker
    // catches into a per-thread slot, all threads are always joined, and
    // the first captured exception is rethrown afterwards.
    const std::size_t chunk =
        (count + static_cast<std::size_t>(threads) - 1) /
        static_cast<std::size_t>(threads);
    std::vector<std::exception_ptr> errors(static_cast<std::size_t>(threads));
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads) - 1);
    for (int t = 1; t < threads; ++t) {
      const std::size_t lo =
          std::min(count, static_cast<std::size_t>(t) * chunk);
      const std::size_t hi =
          std::min(count, lo + chunk);
      pool.emplace_back([this, queries, out, lo, hi,
                         &cs = stats[static_cast<std::size_t>(t)],
                         &err = errors[static_cast<std::size_t>(t)]] {
        try {
          serve_chunk(queries + lo, hi - lo, out + lo, cs);
        } catch (...) {
          err = std::current_exception();
        }
      });
    }
    try {
      serve_chunk(queries, std::min(count, chunk), out, stats[0]);
    } catch (...) {
      errors[0] = std::current_exception();
    }
    for (auto& th : pool) th.join();
    for (auto& err : errors) {
      if (err) std::rethrow_exception(err);
    }
  }
  ChunkStats total;
  for (const auto& cs : stats) {
    total.hops += cs.hops;
    total.cache_hits += cs.cache_hits;
    total.cache_misses += cs.cache_misses;
  }
  queries_.fetch_add(static_cast<std::int64_t>(count));
  hops_.fetch_add(total.hops);
  cache_hits_.fetch_add(total.cache_hits);
  cache_misses_.fetch_add(total.cache_misses);
}

}  // namespace nors::serve
