#pragma once

#include <cstdint>
#include <vector>

#include "serve/frozen.h"
#include "tz/tz_oracle.h"
#include "util/simd.h"

namespace nors::serve {

/// Flat snapshot of the Thorup–Zwick distance oracle (tz/tz_oracle.h) —
/// the sequential baseline served the same way FrozenScheme serves the
/// paper's scheme, so bench_serving compares like against like: the live
/// oracle answers from per-vertex hash maps, the frozen one from sorted
/// (w, d) bunch slabs with SIMD lower-bound membership tests, and
/// query_batch() runs the same software-pipelined lane engine
/// route_batch() uses (DESIGN.md §10) so the oracle-vs-scheme gap the
/// bench reports is algorithmic, not an engine artifact. Estimates are
/// identical to the live oracle's (same iteration, same pivots). Never
/// serialized — the in-memory layout is free to change.
class FrozenTzOracle {
 public:
  static FrozenTzOracle freeze(const tz::TzDistanceOracle& oracle, int n);

  struct Result {
    graph::Dist estimate = graph::kDistInf;
    int iterations = 0;  // ≤ k
  };
  Result query(graph::Vertex u, graph::Vertex v) const;

  /// Pipelined batch query: answers queries[i] into out[i], identical to
  /// query() per element, with up to kBatchLanes queries in flight so
  /// bunch-slab misses of different queries overlap.
  void query_batch(const Query* queries, std::size_t count,
                   Result* out) const;

  static constexpr int kBatchLanes = FrozenScheme::kBatchLanes;

  int k() const { return k_; }
  std::int64_t byte_size() const;

 private:
  graph::Dist bunch_dist(graph::Vertex v, graph::Vertex w) const {
    const std::int64_t lo = bunch_off_[static_cast<std::size_t>(v)];
    const std::int64_t hi = bunch_off_[static_cast<std::size_t>(v) + 1];
    const std::int32_t len = static_cast<std::int32_t>(hi - lo);
    const std::int32_t rel =
        util::simd::lower_bound_i32(bunch_w_.data() + lo, len, w);
    if (rel < len && bunch_w_[static_cast<std::size_t>(lo + rel)] == w) {
      return bunch_d_[static_cast<std::size_t>(lo + rel)];
    }
    return graph::kDistInf;
  }

  int k_ = 0;
  std::size_t n_ = 0;
  std::vector<graph::Vertex> pivot_;      // [i*n+v], i < k
  std::vector<graph::Dist> pivot_dist_;   // [i*n+v], i ≤ k (inf padding)
  std::vector<std::int64_t> bunch_off_;   // [n+1]
  std::vector<graph::Vertex> bunch_w_;    // sorted within each slab
  std::vector<graph::Dist> bunch_d_;      // parallel to bunch_w_
};

}  // namespace nors::serve
