#pragma once

#include <cstdint>
#include <vector>

#include "tz/tz_oracle.h"

namespace nors::serve {

/// Flat snapshot of the Thorup–Zwick distance oracle (tz/tz_oracle.h) —
/// the sequential baseline served the same way FrozenScheme serves the
/// paper's scheme, so bench_serving compares like against like: the live
/// oracle answers from per-vertex hash maps, the frozen one from sorted
/// (w, d) bunch slabs with binary-search membership tests. Estimates are
/// identical to the live oracle's (same iteration, same pivots).
class FrozenTzOracle {
 public:
  static FrozenTzOracle freeze(const tz::TzDistanceOracle& oracle, int n);

  struct Result {
    graph::Dist estimate = graph::kDistInf;
    int iterations = 0;  // ≤ k
  };
  Result query(graph::Vertex u, graph::Vertex v) const;

  int k() const { return k_; }
  std::int64_t byte_size() const;

 private:
  graph::Dist bunch_dist(graph::Vertex v, graph::Vertex w) const {
    std::int64_t lo = bunch_off_[static_cast<std::size_t>(v)];
    std::int64_t hi = bunch_off_[static_cast<std::size_t>(v) + 1];
    while (lo < hi) {
      const std::int64_t mid = (lo + hi) / 2;
      if (bunch_w_[static_cast<std::size_t>(mid)] < w) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    if (lo < bunch_off_[static_cast<std::size_t>(v) + 1] &&
        bunch_w_[static_cast<std::size_t>(lo)] == w) {
      return bunch_d_[static_cast<std::size_t>(lo)];
    }
    return graph::kDistInf;
  }

  int k_ = 0;
  std::size_t n_ = 0;
  std::vector<graph::Vertex> pivot_;      // [i*n+v], i < k
  std::vector<graph::Dist> pivot_dist_;   // [i*n+v], i ≤ k (inf padding)
  std::vector<std::int64_t> bunch_off_;   // [n+1]
  std::vector<graph::Vertex> bunch_w_;    // sorted within each slab
  std::vector<graph::Dist> bunch_d_;      // parallel to bunch_w_
};

}  // namespace nors::serve
