#include "serve/frozen.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "core/serialize.h"

namespace nors::serve {

namespace {

using graph::Vertex;

// ------------------------------------------------------------ wire format --
// DESIGN.md §5.2. Fixed header, then every array as (u64 count, raw
// elements), then a trailing FNV-1a64 checksum of all preceding bytes.
// Multi-byte values are stored in the host byte order and stamped with an
// endianness tag; load() rejects a foreign-endian image instead of
// byte-swapping (the format is defined as little-endian — every platform
// this repo targets).

constexpr char kMagic[8] = {'N', 'O', 'R', 'S', 'F', 'R', 'Z', '1'};
constexpr std::uint32_t kVersion = 1;
constexpr std::uint32_t kEndianTag = 0x01020304u;

std::uint64_t fnv1a(const std::uint8_t* p, std::size_t len) {
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

void put_raw(std::vector<std::uint8_t>& out, const void* p, std::size_t len) {
  // resize+memcpy instead of insert: same effect, and it sidesteps a
  // gcc-12 -Wstringop-overflow false positive on small fixed-size appends.
  const std::size_t old = out.size();
  out.resize(old + len);
  std::memcpy(out.data() + old, p, len);
}

template <typename T>
void put_vec(std::vector<std::uint8_t>& out, const std::vector<T>& v) {
  const std::uint64_t count = v.size();
  put_raw(out, &count, sizeof(count));
  if (count > 0) put_raw(out, v.data(), count * sizeof(T));
}

/// Bounds-checked cursor over a loaded image.
class Cursor {
 public:
  Cursor(const std::uint8_t* p, std::size_t len) : p_(p), len_(len) {}

  void read(void* dst, std::size_t len) {
    NORS_CHECK_MSG(pos_ + len <= len_, "truncated frozen-table image");
    std::memcpy(dst, p_ + pos_, len);
    pos_ += len;
  }

  template <typename T>
  void read_vec(std::vector<T>& v) {
    std::uint64_t count = 0;
    read(&count, sizeof(count));
    NORS_CHECK_MSG(count <= (len_ - pos_) / sizeof(T),
                   "corrupt frozen-table section length");
    v.resize(static_cast<std::size_t>(count));
    if (count > 0) read(v.data(), static_cast<std::size_t>(count) * sizeof(T));
  }

  std::size_t pos() const { return pos_; }

 private:
  const std::uint8_t* p_;
  std::size_t len_;
  std::size_t pos_ = 0;
};

template <typename Off>
void check_offsets(const std::vector<Off>& off, std::size_t n,
                   std::size_t pool, const char* what) {
  NORS_CHECK_MSG(off.size() == n + 1, what << ": offset array size");
  NORS_CHECK_MSG(off.front() == 0, what << ": offsets must start at 0");
  for (std::size_t i = 0; i + 1 < off.size(); ++i) {
    NORS_CHECK_MSG(off[i] <= off[i + 1], what << ": offsets not monotone");
  }
  NORS_CHECK_MSG(static_cast<std::size_t>(off.back()) == pool,
                 what << ": offsets do not cover the pool");
}

}  // namespace

FrozenScheme FrozenScheme::freeze(const core::RoutingScheme& scheme) {
  const graph::WeightedGraph& g = scheme.graph();
  NORS_CHECK_MSG(g.frozen(), "freeze() needs the CSR (frozen) graph");
  FrozenScheme f;
  const int n = g.n();
  const int k = scheme.params().k;
  f.n_ = n;
  f.k_ = k;
  f.label_trick_ = scheme.params().label_trick ? 1 : 0;
  const auto& trees = scheme.trees();
  f.num_trees_ = static_cast<std::int32_t>(trees.size());

  f.level_.resize(static_cast<std::size_t>(n));
  for (Vertex v = 0; v < n; ++v) {
    f.level_[static_cast<std::size_t>(v)] =
        static_cast<std::int32_t>(scheme.vertex_level(v));
  }
  f.tree_root_.reserve(trees.size());
  f.tree_level_.reserve(trees.size());
  for (const auto& t : trees) {
    f.tree_root_.push_back(t.root);
    f.tree_level_.push_back(t.level);
  }

  // Member list per tree: flat cluster trees are already vertex-sorted
  // (DESIGN.md §7), so every slab below is order-deterministic as-is.
  std::vector<std::vector<Vertex>> members(trees.size());
  for (std::size_t ti = 0; ti < trees.size(); ++ti) {
    members[ti] = trees[ti].members;
  }

  auto put_lights = [&f](const treeroute::TzTreeScheme::Label& l,
                         std::int32_t& off, std::int32_t& len) {
    NORS_CHECK(f.lights_.size() < 0x7fffffff);
    off = static_cast<std::int32_t>(f.lights_.size());
    len = static_cast<std::int32_t>(l.light.size());
    for (const auto& [v, p] : l.light) f.lights_.push_back({v, p});
  };
  auto put_vlabel = [&f, &put_lights](
                        const treeroute::DistTreeScheme::VLabel& l,
                        std::int64_t& a_prime, std::int64_t& local_a,
                        std::int32_t& lloff, std::int32_t& lllen,
                        std::int32_t& hoff, std::int32_t& hlen) {
    a_prime = l.a_prime;
    local_a = l.local.a;
    put_lights(l.local, lloff, lllen);
    NORS_CHECK(f.hops_.size() < 0x7fffffff);
    hoff = static_cast<std::int32_t>(f.hops_.size());
    hlen = static_cast<std::int32_t>(l.global_light.size());
    for (const auto& hop : l.global_light) {
      HopSlot h;
      h.portal_a = hop.portal_label.a;
      h.vi = hop.vi;
      h.port = hop.port;
      put_lights(hop.portal_label, h.light_off, h.light_len);
      f.hops_.push_back(h);
    }
  };

  // Per-vertex table slabs: one TableSlot per (vertex, tree) membership,
  // grouped by vertex and tree-sorted within the slab.
  {
    struct Ref {
      Vertex v;
      std::int32_t ti;
    };
    std::vector<Ref> refs;
    for (std::size_t ti = 0; ti < trees.size(); ++ti) {
      for (Vertex v : members[ti]) {
        refs.push_back({v, static_cast<std::int32_t>(ti)});
      }
    }
    std::sort(refs.begin(), refs.end(), [](const Ref& a, const Ref& b) {
      return a.v != b.v ? a.v < b.v : a.ti < b.ti;
    });
    NORS_CHECK_MSG(refs.size() < 0x7fffffff, "table slab index overflow");
    f.tables_.reserve(refs.size());
    f.table_off_.resize(static_cast<std::size_t>(n) + 1);
    std::size_t idx = 0;
    for (Vertex v = 0; v < n; ++v) {
      f.table_off_[static_cast<std::size_t>(v)] =
          static_cast<std::int64_t>(f.tables_.size());
      for (; idx < refs.size() && refs[idx].v == v; ++idx) {
        const auto ti = static_cast<std::size_t>(refs[idx].ti);
        const auto& info = scheme.tree_scheme(ti).info(v);
        TableSlot s;
        s.tree = refs[idx].ti;
        s.subtree_root = info.subtree_root;
        s.local_a = info.local.a;
        s.local_b = info.local.b;
        s.parent_port = info.local.parent_port;
        s.heavy_child_port = info.local.heavy_port;
        s.a_prime = info.a_prime;
        s.b_prime = info.b_prime;
        s.heavy_prime = info.heavy_prime;
        s.heavy_cross_port = info.heavy_port;
        s.heavy_portal_a = info.heavy_portal_label.a;
        put_lights(info.heavy_portal_label, s.heavy_light_off,
                   s.heavy_light_len);
        s.up_port = info.up_port;
        f.tables_.push_back(s);
      }
    }
    f.table_off_[static_cast<std::size_t>(n)] =
        static_cast<std::int64_t>(f.tables_.size());
  }

  // Destination labels, flat stride-k (mirrors the live label arena).
  f.labels_.resize(static_cast<std::size_t>(n) * static_cast<std::size_t>(k));
  for (Vertex v = 0; v < n; ++v) {
    for (int i = 0; i < k; ++i) {
      const auto& le = scheme.label_entry(v, i);
      LabelSlot s;
      s.pivot = le.pivot;
      s.pivot_dist = le.pivot_dist;
      s.member = le.member ? 1 : 0;
      s.tree = le.pivot == graph::kNoVertex
                   ? -1
                   : static_cast<std::int32_t>(scheme.tree_index(le.pivot));
      if (le.member) {
        put_vlabel(le.tree_label, s.a_prime, s.local_a, s.local_light_off,
                   s.local_light_len, s.hop_off, s.hop_len);
      }
      f.labels_[static_cast<std::size_t>(v) * static_cast<std::size_t>(k) +
                static_cast<std::size_t>(i)] = s;
    }
  }

  // 4k-5 trick slabs at level-0 cluster roots.
  if (f.label_trick_ != 0) {
    for (std::size_t ti = 0; ti < trees.size(); ++ti) {
      if (trees[ti].level != 0) continue;
      TrickRoot tr;
      tr.root = trees[ti].root;
      // The tree the live route() walks from this root: tree_index(root),
      // which may differ from ti if the same vertex roots several trees.
      tr.tree = static_cast<std::int32_t>(scheme.tree_index(trees[ti].root));
      tr.off = static_cast<std::int64_t>(f.tricks_.size());
      tr.len = static_cast<std::int64_t>(members[ti].size());
      for (Vertex v : members[ti]) {
        TrickSlot s;
        s.dest = v;
        put_vlabel(scheme.tree_scheme(ti).label(v), s.a_prime, s.local_a,
                   s.local_light_off, s.local_light_len, s.hop_off,
                   s.hop_len);
        f.tricks_.push_back(s);
      }
      f.trick_roots_.push_back(tr);
    }
    std::sort(f.trick_roots_.begin(), f.trick_roots_.end(),
              [](const TrickRoot& a, const TrickRoot& b) {
                return a.root < b.root;
              });
    for (std::size_t i = 0; i + 1 < f.trick_roots_.size(); ++i) {
      NORS_CHECK_MSG(f.trick_roots_[i].root != f.trick_roots_[i + 1].root,
                     "two level-0 trees share root "
                         << f.trick_roots_[i].root);
    }
  }

  // The link map: port p of v resolves to (adj_to_, adj_w_) at
  // adj_off_[v] + p — the router's physical interfaces, snapshotted so the
  // serving walk never touches the WeightedGraph.
  f.adj_off_.resize(static_cast<std::size_t>(n) + 1);
  f.adj_to_.reserve(g.total_half_edges());
  f.adj_w_.reserve(g.total_half_edges());
  for (Vertex v = 0; v < n; ++v) {
    f.adj_off_[static_cast<std::size_t>(v)] =
        static_cast<std::int64_t>(f.adj_to_.size());
    for (const auto& e : g.neighbors(v)) {
      f.adj_to_.push_back(e.to);
      f.adj_w_.push_back(e.w);
    }
  }
  f.adj_off_[static_cast<std::size_t>(n)] =
      static_cast<std::int64_t>(f.adj_to_.size());

  // Packed wire-label blobs (connection-setup handouts).
  f.blob_off_.resize(static_cast<std::size_t>(n) + 1);
  util::WordWriter w;
  for (Vertex v = 0; v < n; ++v) {
    f.blob_off_[static_cast<std::size_t>(v)] =
        static_cast<std::int64_t>(f.blobs_.size());
    w.clear();
    core::encode_vertex_label(scheme, v, w);
    const auto* b = reinterpret_cast<const std::uint8_t*>(w.words().data());
    f.blobs_.insert(f.blobs_.end(), b, b + w.word_count() * 8);
  }
  f.blob_off_[static_cast<std::size_t>(n)] =
      static_cast<std::int64_t>(f.blobs_.size());

  f.validate();
  return f;
}

void FrozenScheme::validate() const {
  NORS_CHECK_MSG(n_ >= 0 && k_ >= 1 && num_trees_ >= 0,
                 "frozen header out of range");
  const auto n = static_cast<std::size_t>(n_);
  NORS_CHECK_MSG(level_.size() == n, "level array size");
  NORS_CHECK_MSG(tree_root_.size() == static_cast<std::size_t>(num_trees_) &&
                     tree_level_.size() == static_cast<std::size_t>(num_trees_),
                 "tree directory size");
  NORS_CHECK_MSG(labels_.size() == n * static_cast<std::size_t>(k_),
                 "label arena size");
  check_offsets(table_off_, n, tables_.size(), "table slabs");
  check_offsets(adj_off_, n, adj_to_.size(), "link map");
  NORS_CHECK_MSG(adj_w_.size() == adj_to_.size(), "link map weight column");
  // Link targets feed back into every per-vertex array as the walk's next
  // x; range-check them here so serving never indexes out of bounds even
  // on a corrupt-but-checksummed image (ports are bounds-checked at the
  // single place they index the link map, in route_with).
  for (const auto to : adj_to_) {
    NORS_CHECK_MSG(to >= 0 && to < n_, "link map target out of range");
  }
  check_offsets(blob_off_, n, blobs_.size(), "label blobs");

  auto check_lights = [this](std::int32_t off, std::int32_t len,
                             const char* what) {
    NORS_CHECK_MSG(off >= 0 && len >= 0 &&
                       static_cast<std::size_t>(off) + len <= lights_.size(),
                   what << ": light range out of pool");
  };
  for (const auto& t : tables_) {
    NORS_CHECK_MSG(t.tree >= 0 && t.tree < num_trees_,
                   "table slot tree id out of range");
    check_lights(t.heavy_light_off, t.heavy_light_len, "table slot");
  }
  auto check_hops = [this](std::int32_t off, std::int32_t len,
                           const char* what) {
    NORS_CHECK_MSG(off >= 0 && len >= 0 &&
                       static_cast<std::size_t>(off) + len <= hops_.size(),
                   what << ": hop range out of pool");
  };
  for (const auto& l : labels_) {
    NORS_CHECK_MSG(l.tree >= -1 && l.tree < num_trees_,
                   "label slot tree id out of range");
    check_lights(l.local_light_off, l.local_light_len, "label slot");
    check_hops(l.hop_off, l.hop_len, "label slot");
  }
  for (const auto& h : hops_) check_lights(h.light_off, h.light_len, "hop");
  for (std::size_t i = 0; i < trick_roots_.size(); ++i) {
    const auto& tr = trick_roots_[i];
    NORS_CHECK_MSG(tr.root >= 0 && tr.root < n_, "trick root out of range");
    NORS_CHECK_MSG(i == 0 || trick_roots_[i - 1].root < tr.root,
                   "trick directory not sorted");
    NORS_CHECK_MSG(tr.tree >= 0 && tr.tree < num_trees_,
                   "trick tree id out of range");
    NORS_CHECK_MSG(tr.off >= 0 && tr.len >= 0 &&
                       static_cast<std::size_t>(tr.off + tr.len) <=
                           tricks_.size(),
                   "trick slab out of pool");
    for (std::int64_t j = tr.off; j < tr.off + tr.len; ++j) {
      const auto& ts = tricks_[static_cast<std::size_t>(j)];
      NORS_CHECK_MSG(ts.dest >= 0 && ts.dest < n_,
                     "trick destination out of range");
      NORS_CHECK_MSG(j == tr.off ||
                         tricks_[static_cast<std::size_t>(j - 1)].dest <
                             ts.dest,
                     "trick slab not dest-sorted");
      check_lights(ts.local_light_off, ts.local_light_len, "trick slot");
      check_hops(ts.hop_off, ts.hop_len, "trick slot");
    }
  }
}

std::vector<std::uint8_t> FrozenScheme::save() const {
  std::vector<std::uint8_t> out;
  out.reserve(static_cast<std::size_t>(byte_size()) + 256);
  put_raw(out, kMagic, sizeof(kMagic));
  put_raw(out, &kVersion, sizeof(kVersion));
  put_raw(out, &kEndianTag, sizeof(kEndianTag));
  put_raw(out, &n_, sizeof(n_));
  put_raw(out, &k_, sizeof(k_));
  put_raw(out, &label_trick_, sizeof(label_trick_));
  put_raw(out, &num_trees_, sizeof(num_trees_));
  put_vec(out, level_);
  put_vec(out, tree_root_);
  put_vec(out, tree_level_);
  put_vec(out, table_off_);
  put_vec(out, tables_);
  put_vec(out, labels_);
  put_vec(out, hops_);
  put_vec(out, lights_);
  put_vec(out, trick_roots_);
  put_vec(out, tricks_);
  put_vec(out, adj_off_);
  put_vec(out, adj_to_);
  put_vec(out, adj_w_);
  put_vec(out, blob_off_);
  put_vec(out, blobs_);
  const std::uint64_t checksum = fnv1a(out.data(), out.size());
  put_raw(out, &checksum, sizeof(checksum));
  return out;
}

FrozenScheme FrozenScheme::load(const std::vector<std::uint8_t>& bytes) {
  NORS_CHECK_MSG(bytes.size() >= sizeof(kMagic) + 2 * sizeof(std::uint32_t) +
                                     4 * sizeof(std::int32_t) +
                                     sizeof(std::uint64_t),
                 "frozen-table image too short for a header");
  char magic[8];
  std::uint32_t version = 0, endian = 0;
  Cursor c(bytes.data(), bytes.size() - sizeof(std::uint64_t));
  c.read(magic, sizeof(magic));
  NORS_CHECK_MSG(std::memcmp(magic, kMagic, sizeof(kMagic)) == 0,
                 "bad magic: not a frozen routing-table image");
  c.read(&version, sizeof(version));
  NORS_CHECK_MSG(version == kVersion,
                 "unsupported frozen-table version " << version);
  c.read(&endian, sizeof(endian));
  NORS_CHECK_MSG(endian == kEndianTag,
                 "endianness mismatch: image written on a foreign-endian "
                 "machine");
  std::uint64_t stored = 0;
  std::memcpy(&stored, bytes.data() + bytes.size() - sizeof(stored),
              sizeof(stored));
  NORS_CHECK_MSG(fnv1a(bytes.data(), bytes.size() - sizeof(stored)) == stored,
                 "checksum mismatch: corrupt frozen-table image");

  FrozenScheme f;
  c.read(&f.n_, sizeof(f.n_));
  c.read(&f.k_, sizeof(f.k_));
  c.read(&f.label_trick_, sizeof(f.label_trick_));
  c.read(&f.num_trees_, sizeof(f.num_trees_));
  c.read_vec(f.level_);
  c.read_vec(f.tree_root_);
  c.read_vec(f.tree_level_);
  c.read_vec(f.table_off_);
  c.read_vec(f.tables_);
  c.read_vec(f.labels_);
  c.read_vec(f.hops_);
  c.read_vec(f.lights_);
  c.read_vec(f.trick_roots_);
  c.read_vec(f.tricks_);
  c.read_vec(f.adj_off_);
  c.read_vec(f.adj_to_);
  c.read_vec(f.adj_w_);
  c.read_vec(f.blob_off_);
  c.read_vec(f.blobs_);
  NORS_CHECK_MSG(c.pos() == bytes.size() - sizeof(stored),
                 "trailing bytes after the last frozen-table section");
  f.validate();
  return f;
}

void FrozenScheme::save_file(const std::string& path) const {
  const auto bytes = save();
  std::FILE* fp = std::fopen(path.c_str(), "wb");
  NORS_CHECK_MSG(fp != nullptr, "cannot open " << path << " for writing");
  const std::size_t written = std::fwrite(bytes.data(), 1, bytes.size(), fp);
  std::fclose(fp);
  NORS_CHECK_MSG(written == bytes.size(), "short write to " << path);
}

FrozenScheme FrozenScheme::load_file(const std::string& path) {
  std::FILE* fp = std::fopen(path.c_str(), "rb");
  NORS_CHECK_MSG(fp != nullptr, "cannot open " << path);
  std::fseek(fp, 0, SEEK_END);
  const long size = std::ftell(fp);
  std::fseek(fp, 0, SEEK_SET);
  NORS_CHECK_MSG(size >= 0, "cannot stat " << path);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  const std::size_t got = std::fread(bytes.data(), 1, bytes.size(), fp);
  std::fclose(fp);
  NORS_CHECK_MSG(got == bytes.size(), "short read from " << path);
  return load(bytes);
}

std::int64_t FrozenScheme::byte_size() const {
  auto bytes = [](const auto& v) {
    return static_cast<std::int64_t>(
        v.size() * sizeof(typename std::decay_t<decltype(v)>::value_type));
  };
  return static_cast<std::int64_t>(4 * sizeof(std::int32_t)) + bytes(level_) +
         bytes(tree_root_) + bytes(tree_level_) + bytes(table_off_) +
         bytes(tables_) + bytes(labels_) + bytes(hops_) + bytes(lights_) +
         bytes(trick_roots_) + bytes(tricks_) + bytes(adj_off_) +
         bytes(adj_to_) + bytes(adj_w_) + bytes(blob_off_) + bytes(blobs_);
}

}  // namespace nors::serve
