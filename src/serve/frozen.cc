#include "serve/frozen.h"

#include <algorithm>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#define NORS_HAVE_MMAP 1
#else
#define NORS_HAVE_MMAP 0
#endif

#include "core/serialize.h"
#include "util/failpoint.h"

namespace nors::serve {

namespace {

using graph::Vertex;

// ------------------------------------------------------------ wire format --
// DESIGN.md §5.2/§10. Fixed 32-byte header, then every array as (u64 count,
// raw elements, zero padding to the next 8-byte boundary), then a trailing
// FNV-1a64 checksum of all preceding bytes. The per-section padding is what
// makes the image mappable: the header is 32 bytes and every count field is
// 8 bytes, so with padded payloads every section's elements start at a file
// offset that is a multiple of 8 — and mmap() returns page-aligned memory,
// so an in-place view of any section is correctly aligned for its element
// type (all slot types have alignment ≤ 8, asserted below). Multi-byte
// values are stored in the host byte order and stamped with an endianness
// tag; load() rejects a foreign-endian image instead of byte-swapping (the
// format is defined as little-endian — every platform this repo targets).
//
// Two format versions share this framing and differ only in the table
// sections (between table_off and labels):
//   v2: one section of fixed 80-byte TableSlotV2 records;
//   v3: the i32 tree-key column as a raw section (zero-copy on map, SIMD-
//       scannable in place), then the remaining slot fields as one
//       delta/varint byte section — canonical LEB128+zigzag per field
//       (core/serialize.h), interval widths and light-offset deltas instead
//       of absolutes, so the section is a fraction of the v2 size.
// Per version, save→load→save and save→map→save are byte-identical: the
// varint codec is canonical (exactly one encoding per value) and every
// transform below is bijective. Both loaders range-check the int64→int32
// narrowing — DFS clocks are bounded by n, itself an int32, so legitimate
// images always fit; a checksum-forged one is rejected.

constexpr char kMagic[8] = {'N', 'O', 'R', 'S', 'F', 'R', 'Z', '1'};
constexpr std::uint32_t kVersionV2 = 2;      // fixed 80-byte table slots
constexpr std::uint32_t kVersionLatest = 3;  // split + varint table sections
constexpr std::uint32_t kEndianTag = 0x01020304u;
constexpr std::size_t kPreambleBytes =
    sizeof(kMagic) + 2 * sizeof(std::uint32_t);  // magic, version, endian
constexpr std::size_t kHeaderBytes =
    kPreambleBytes + 4 * sizeof(std::int32_t);   // + n, k, trick, trees
static_assert(kHeaderBytes % 8 == 0, "sections must start 8-byte aligned");

// The in-place (mmap) reader casts section bytes to these types directly.
static_assert(alignof(FrozenScheme::LightSlot) <= 8);
static_assert(alignof(FrozenScheme::HopSlot) <= 8);
static_assert(alignof(FrozenScheme::TableSlot) <= 8);
static_assert(alignof(FrozenScheme::LabelSlot) <= 8);
static_assert(alignof(FrozenScheme::TrickRoot) <= 8);
static_assert(alignof(FrozenScheme::TrickSlot) <= 8);

/// The version-2 wire record of one table-slab entry: the in-memory packed
/// TableSlot plus its tree key, with the five DFS-interval fields widened
/// to int64 (the historical layout; kept so v2 images keep round-tripping
/// byte-identically).
struct TableSlotV2 {
  std::int64_t local_a = 0;
  std::int64_t local_b = 0;
  std::int64_t a_prime = 0;
  std::int64_t b_prime = 0;
  std::int64_t heavy_portal_a = 0;
  std::int32_t tree = -1;
  std::int32_t subtree_root = graph::kNoVertex;
  std::int32_t parent_port = graph::kNoPort;
  std::int32_t heavy_child_port = graph::kNoPort;
  std::int32_t heavy_prime = graph::kNoVertex;
  std::int32_t heavy_cross_port = graph::kNoPort;
  std::int32_t heavy_light_off = 0;
  std::int32_t heavy_light_len = 0;
  std::int32_t up_port = graph::kNoPort;
  std::int32_t pad = 0;
};
static_assert(sizeof(TableSlotV2) == 80);
static_assert(alignof(TableSlotV2) <= 8);

/// Zero bytes needed after a payload of `len` bytes to reach the next
/// 8-byte file offset (counts and payloads both start 8-aligned).
constexpr std::size_t pad8(std::size_t len) { return (8 - len % 8) % 8; }

std::uint64_t fnv1a(const std::uint8_t* p, std::size_t len) {
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

void put_raw(std::vector<std::uint8_t>& out, const void* p, std::size_t len) {
  // resize+memcpy instead of insert: same effect, and it sidesteps a
  // gcc-12 -Wstringop-overflow false positive on small fixed-size appends.
  const std::size_t old = out.size();
  out.resize(old + len);
  std::memcpy(out.data() + old, p, len);
}

template <typename T>
void put_span(std::vector<std::uint8_t>& out, std::span<const T> v) {
  const std::uint64_t count = v.size();
  put_raw(out, &count, sizeof(count));
  const std::size_t payload = static_cast<std::size_t>(count) * sizeof(T);
  if (count > 0) put_raw(out, v.data(), payload);
  out.resize(out.size() + pad8(payload));  // zero padding
}

// ------------------------------------------------- v3 table-entry codec --

std::int32_t narrow_i32(std::int64_t v) {
  NORS_CHECK_MSG(v >= INT32_MIN && v <= INT32_MAX,
                 "frozen table field out of int32 range");
  return static_cast<std::int32_t>(v);
}

/// Appends one packed slot to the v3 varint section. Field order and
/// transforms are part of the format: intervals as (start, width), light
/// offsets as deltas against the previous entry (they grow monotonically
/// in freeze order), everything zigzagged so sentinel -1s cost one byte.
void encode_table_entry(std::vector<std::uint8_t>& out,
                        const FrozenScheme::TableSlot& t,
                        std::int64_t& prev_light_off) {
  auto put = [&out](std::int64_t v) {
    core::put_uvarint(out, core::zigzag(v));
  };
  put(t.local_a);
  put(static_cast<std::int64_t>(t.local_b) - t.local_a);
  put(t.a_prime);
  put(static_cast<std::int64_t>(t.b_prime) - t.a_prime);
  put(t.heavy_portal_a);
  put(t.subtree_root);
  put(t.parent_port);
  put(t.heavy_child_port);
  put(t.heavy_prime);
  put(t.heavy_cross_port);
  put(static_cast<std::int64_t>(t.heavy_light_off) - prev_light_off);
  put(t.heavy_light_len);
  put(t.up_port);
  prev_light_off = t.heavy_light_off;
}

/// Decodes one entry; throws (core::get_uvarint / narrow_i32) on truncated
/// tails, over-long encodings and values outside int32. Delta sums are
/// computed in uint64 so a forged image cannot trigger signed overflow —
/// a wrapped sum lands outside int32 and is rejected.
const std::uint8_t* decode_table_entry(const std::uint8_t* p,
                                       const std::uint8_t* end,
                                       FrozenScheme::TableSlot& t,
                                       std::int64_t& prev_light_off) {
  auto get = [&p, end]() {
    std::uint64_t u = 0;
    p = core::get_uvarint(p, end, u);
    return core::unzigzag(u);
  };
  auto add = [](std::int64_t base, std::int64_t delta) {
    return static_cast<std::int64_t>(static_cast<std::uint64_t>(base) +
                                     static_cast<std::uint64_t>(delta));
  };
  t.local_a = narrow_i32(get());
  t.local_b = narrow_i32(add(t.local_a, get()));
  t.a_prime = narrow_i32(get());
  t.b_prime = narrow_i32(add(t.a_prime, get()));
  t.heavy_portal_a = narrow_i32(get());
  t.subtree_root = narrow_i32(get());
  t.parent_port = narrow_i32(get());
  t.heavy_child_port = narrow_i32(get());
  t.heavy_prime = narrow_i32(get());
  t.heavy_cross_port = narrow_i32(get());
  t.heavy_light_off = narrow_i32(add(prev_light_off, get()));
  t.heavy_light_len = narrow_i32(get());
  t.up_port = narrow_i32(get());
  t.pad = 0;
  prev_light_off = t.heavy_light_off;
  return p;
}

/// Inflates a whole v3 varint section (`entries` comes from the tree-key
/// column's count). The section must be consumed exactly.
void decode_table_blob(const std::uint8_t* p, std::size_t len,
                       std::size_t entries,
                       std::vector<FrozenScheme::TableSlot>& out) {
  const std::uint8_t* end = p + len;
  out.resize(entries);
  std::int64_t prev_light_off = 0;
  for (auto& t : out) p = decode_table_entry(p, end, t, prev_light_off);
  NORS_CHECK_MSG(p == end,
                 "frozen-table varint section length mismatch");
}

/// v2 → packed: splits the wide records into the tree-key column and the
/// int32 slot array, range-checking the narrowing.
void unzip_tables(std::span<const TableSlotV2> wide,
                  std::vector<std::int32_t>& keys,
                  std::vector<FrozenScheme::TableSlot>& slots) {
  keys.resize(wide.size());
  slots.resize(wide.size());
  for (std::size_t i = 0; i < wide.size(); ++i) {
    const TableSlotV2& w = wide[i];
    keys[i] = w.tree;
    FrozenScheme::TableSlot& t = slots[i];
    t.local_a = narrow_i32(w.local_a);
    t.local_b = narrow_i32(w.local_b);
    t.a_prime = narrow_i32(w.a_prime);
    t.b_prime = narrow_i32(w.b_prime);
    t.heavy_portal_a = narrow_i32(w.heavy_portal_a);
    t.subtree_root = w.subtree_root;
    t.parent_port = w.parent_port;
    t.heavy_child_port = w.heavy_child_port;
    t.heavy_prime = w.heavy_prime;
    t.heavy_cross_port = w.heavy_cross_port;
    t.heavy_light_off = w.heavy_light_off;
    t.heavy_light_len = w.heavy_light_len;
    t.up_port = w.up_port;
    t.pad = 0;
  }
}

/// Bounds-checked cursor core shared by both decode paths, so the owning
/// and mapped readers can never diverge on framing, bounds or padding
/// semantics (the property test_frozen_fuzz pins).
class CursorBase {
 public:
  CursorBase(const std::uint8_t* p, std::size_t len) : p_(p), len_(len) {}

  void read(void* dst, std::size_t len) {
    NORS_CHECK_MSG(pos_ + len <= len_, "truncated frozen-table image");
    std::memcpy(dst, p_ + pos_, len);
    pos_ += len;
  }

  /// Reads a section's u64 element count, bounds-checked against the
  /// remaining bytes.
  template <typename T>
  std::size_t read_count() {
    std::uint64_t count = 0;
    read(&count, sizeof(count));
    NORS_CHECK_MSG(count <= (len_ - pos_) / sizeof(T),
                   "corrupt frozen-table section length");
    return static_cast<std::size_t>(count);
  }

  void skip_pad(std::size_t payload) {
    for (std::size_t i = 0; i < pad8(payload); ++i) {
      std::uint8_t z = 0;
      read(&z, 1);
      NORS_CHECK_MSG(z == 0, "nonzero section padding");
    }
  }

  std::size_t pos() const { return pos_; }

 protected:
  const std::uint8_t* cursor() const { return p_ + pos_; }
  void advance(std::size_t len) { pos_ += len; }

 private:
  const std::uint8_t* p_;
  std::size_t len_;
  std::size_t pos_ = 0;
};

/// Copying decoder (the owning load path).
class Cursor : public CursorBase {
 public:
  using CursorBase::CursorBase;

  template <typename T>
  void read_vec(std::vector<T>& v) {
    const std::size_t count = read_count<T>();
    v.resize(count);
    const std::size_t payload = count * sizeof(T);
    if (count > 0) read(v.data(), payload);
    skip_pad(payload);
  }
};

/// In-place decoder over a mapped image: sections become views into the
/// mapping instead of copies.
class ViewCursor : public CursorBase {
 public:
  using CursorBase::CursorBase;

  template <typename T>
  void read_span(std::span<const T>& v) {
    const std::size_t count = read_count<T>();
    NORS_CHECK_MSG(
        reinterpret_cast<std::uintptr_t>(cursor()) % alignof(T) == 0,
        "misaligned frozen-table section");
    v = {reinterpret_cast<const T*>(cursor()), count};
    const std::size_t payload = count * sizeof(T);
    advance(payload);
    skip_pad(payload);
  }
};

/// Shared header framing check; returns the payload limit (bytes before
/// the trailing checksum) after verifying magic/version/endian/checksum,
/// and reports which supported format version the image carries.
std::size_t check_framing(const std::uint8_t* p, std::size_t size,
                          std::uint32_t& version_out) {
  NORS_CHECK_MSG(size >= kHeaderBytes + sizeof(std::uint64_t),
                 "frozen-table image too short for a header");
  NORS_CHECK_MSG(std::memcmp(p, kMagic, sizeof(kMagic)) == 0,
                 "bad magic: not a frozen routing-table image");
  std::uint32_t version = 0, endian = 0;
  std::memcpy(&version, p + sizeof(kMagic), sizeof(version));
  std::memcpy(&endian, p + sizeof(kMagic) + sizeof(version), sizeof(endian));
  NORS_CHECK_MSG(version == kVersionV2 || version == kVersionLatest,
                 "unsupported frozen-table version " << version);
  NORS_CHECK_MSG(endian == kEndianTag,
                 "endianness mismatch: image written on a foreign-endian "
                 "machine");
  std::uint64_t stored = 0;
  std::memcpy(&stored, p + size - sizeof(stored), sizeof(stored));
  NORS_CHECK_MSG(fnv1a(p, size - sizeof(stored)) == stored,
                 "checksum mismatch: corrupt frozen-table image");
  version_out = version;
  return size - sizeof(stored);
}

template <typename Off>
void check_offsets(std::span<const Off> off, std::size_t n, std::size_t pool,
                   const char* what) {
  NORS_CHECK_MSG(off.size() == n + 1, what << ": offset array size");
  NORS_CHECK_MSG(off.front() == 0, what << ": offsets must start at 0");
  for (std::size_t i = 0; i + 1 < off.size(); ++i) {
    NORS_CHECK_MSG(off[i] <= off[i + 1], what << ": offsets not monotone");
  }
  NORS_CHECK_MSG(static_cast<std::size_t>(off.back()) == pool,
                 what << ": offsets do not cover the pool");
}

// --------------------------------------------------------- hugepage copy --

/// NORS_HUGEPAGES opt-in: unset or "0" means off.
bool hugepages_requested() {
  const char* e = std::getenv("NORS_HUGEPAGES");
  return e != nullptr && e[0] != '\0' && !(e[0] == '0' && e[1] == '\0');
}

#if NORS_HAVE_MMAP

/// Bytes available from the kernel's reserved (pre-allocated) hugepage
/// pool, per /proc/meminfo — MAP_HUGETLB mmap can succeed with an empty
/// pool and then SIGBUS on first touch, so only try it when the pool
/// actually covers the image.
std::size_t hugetlb_free_bytes() {
  std::FILE* fp = std::fopen("/proc/meminfo", "r");
  if (fp == nullptr) return 0;
  std::size_t free_pages = 0, page_kb = 0;
  char line[256];
  while (std::fgets(line, sizeof(line), fp) != nullptr) {
    unsigned long long val = 0;
    if (std::sscanf(line, "HugePages_Free: %llu", &val) == 1) {
      free_pages = static_cast<std::size_t>(val);
    } else if (std::sscanf(line, "Hugepagesize: %llu kB", &val) == 1) {
      page_kb = static_cast<std::size_t>(val);
    }
  }
  std::fclose(fp);
  return free_pages * page_kb * 1024;
}

/// Copies the image into hugepage-backed anonymous memory (DESIGN.md
/// §10.4): explicit MAP_HUGETLB when the reserved pool covers the image,
/// else transparent-hugepage advice on a plain anonymous mapping. Returns
/// false — leaving the outputs untouched — when neither backing nor the
/// file read works; the caller falls back to the ordinary file mapping.
bool map_hugepage_copy(int fd, std::size_t size, void*& addr_out,
                       std::size_t& map_len_out, bool& huge_out) {
  constexpr std::size_t kHugeBytes = std::size_t{2} << 20;
  const std::size_t rounded =
      (size + kHugeBytes - 1) / kHugeBytes * kHugeBytes;
  void* addr = MAP_FAILED;
  bool huge = false;
#if defined(MAP_HUGETLB)
  if (hugetlb_free_bytes() >= rounded) {
    addr = ::mmap(nullptr, rounded, PROT_READ | PROT_WRITE,
                  MAP_PRIVATE | MAP_ANONYMOUS | MAP_HUGETLB, -1, 0);
    huge = addr != MAP_FAILED;
  }
#endif
  if (addr == MAP_FAILED) {
    addr = ::mmap(nullptr, rounded, PROT_READ | PROT_WRITE,
                  MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (addr == MAP_FAILED) return false;
#if defined(MADV_HUGEPAGE)
    huge = ::madvise(addr, rounded, MADV_HUGEPAGE) == 0;
#endif
  }
  auto* dst = static_cast<std::uint8_t*>(addr);
  std::size_t got = 0;
  while (got < size) {
    const ::ssize_t r =
        ::pread(fd, dst + got, size - got, static_cast<::off_t>(got));
    if (r <= 0) {
      ::munmap(addr, rounded);
      return false;
    }
    got += static_cast<std::size_t>(r);
  }
  ::mprotect(addr, rounded, PROT_READ);  // views are read-only from here
  addr_out = addr;
  map_len_out = rounded;
  huge_out = huge;
  return true;
}

#endif  // NORS_HAVE_MMAP

}  // namespace

FrozenScheme::Mapping::~Mapping() {
#if NORS_HAVE_MMAP
  if (addr != nullptr) ::munmap(addr, map_len != 0 ? map_len : len);
#endif
}

bool FrozenScheme::hugepage_backed() const {
  return mapping_ != nullptr && mapping_->huge;
}

void FrozenScheme::bind_owned() {
  const Storage& s = *storage_;
  level_ = s.level;
  tree_root_ = s.tree_root;
  tree_level_ = s.tree_level;
  table_off_ = s.table_off;
  table_tree_ = s.table_tree;
  tables_ = s.tables;
  labels_ = s.labels;
  hops_ = s.hops;
  lights_ = s.lights;
  trick_roots_ = s.trick_roots;
  tricks_ = s.tricks;
  adj_off_ = s.adj_off;
  adj_to_ = s.adj_to;
  adj_w_ = s.adj_w;
  blob_off_ = s.blob_off;
  blobs_ = s.blobs;
}

void FrozenScheme::build_derived() {
  // Fuse the serialized (to, weight) columns into 16-byte LinkSlots so the
  // walk reads one cache line per hop. Derived, never serialized — both
  // wire versions keep the split columns.
  links_.resize(adj_to_.size());
  for (std::size_t i = 0; i < links_.size(); ++i) {
    links_[i].w = adj_w_[i];
    links_[i].to = adj_to_[i];
    links_[i].pad = 0;
  }
}

FrozenScheme FrozenScheme::freeze(const core::RoutingScheme& scheme) {
  const graph::WeightedGraph& g = scheme.graph();
  NORS_CHECK_MSG(g.frozen(), "freeze() needs the CSR (frozen) graph");
  FrozenScheme f;
  f.format_version_ = kVersionLatest;
  f.storage_ = std::make_unique<Storage>();
  Storage& st = *f.storage_;
  const int n = g.n();
  const int k = scheme.params().k;
  f.n_ = n;
  f.k_ = k;
  f.label_trick_ = scheme.params().label_trick ? 1 : 0;
  const auto& trees = scheme.trees();
  f.num_trees_ = static_cast<std::int32_t>(trees.size());

  st.level.resize(static_cast<std::size_t>(n));
  for (Vertex v = 0; v < n; ++v) {
    st.level[static_cast<std::size_t>(v)] =
        static_cast<std::int32_t>(scheme.vertex_level(v));
  }
  st.tree_root.reserve(trees.size());
  st.tree_level.reserve(trees.size());
  for (const auto& t : trees) {
    st.tree_root.push_back(t.root);
    st.tree_level.push_back(t.level);
  }

  // Flat cluster trees keep their members vertex-sorted (DESIGN.md §7),
  // so every slab below is order-deterministic reading trees[ti].members
  // in place.

  auto put_lights = [&st](const treeroute::TzTreeScheme::Label& l,
                          std::int32_t& off, std::int32_t& len) {
    NORS_CHECK(st.lights.size() < 0x7fffffff);
    off = static_cast<std::int32_t>(st.lights.size());
    len = static_cast<std::int32_t>(l.light.size());
    for (const auto& [v, p] : l.light) st.lights.push_back({v, p});
  };
  auto put_vlabel = [&st, &put_lights](
                        const treeroute::DistTreeScheme::VLabel& l,
                        std::int64_t& a_prime, std::int64_t& local_a,
                        std::int32_t& lloff, std::int32_t& lllen,
                        std::int32_t& hoff, std::int32_t& hlen) {
    a_prime = l.a_prime;
    local_a = l.local.a;
    put_lights(l.local, lloff, lllen);
    NORS_CHECK(st.hops.size() < 0x7fffffff);
    hoff = static_cast<std::int32_t>(st.hops.size());
    hlen = static_cast<std::int32_t>(l.global_light.size());
    for (const auto& hop : l.global_light) {
      HopSlot h;
      h.portal_a = hop.portal_label.a;
      h.vi = hop.vi;
      h.port = hop.port;
      put_lights(hop.portal_label, h.light_off, h.light_len);
      st.hops.push_back(h);
    }
  };

  // Per-vertex table slabs: one packed TableSlot (+ its tree key in the
  // parallel column) per (vertex, tree) membership, grouped by vertex and
  // tree-sorted within the slab. Every DFS-interval field provably fits
  // int32 (clocks are bounded by the tree size ≤ n), checked as it lands.
  {
    struct Ref {
      Vertex v;
      std::int32_t ti;
    };
    std::vector<Ref> refs;
    for (std::size_t ti = 0; ti < trees.size(); ++ti) {
      for (Vertex v : trees[ti].members) {
        refs.push_back({v, static_cast<std::int32_t>(ti)});
      }
    }
    std::sort(refs.begin(), refs.end(), [](const Ref& a, const Ref& b) {
      return a.v != b.v ? a.v < b.v : a.ti < b.ti;
    });
    NORS_CHECK_MSG(refs.size() < 0x7fffffff, "table slab index overflow");
    st.tables.reserve(refs.size());
    st.table_tree.reserve(refs.size());
    st.table_off.resize(static_cast<std::size_t>(n) + 1);
    std::size_t idx = 0;
    for (Vertex v = 0; v < n; ++v) {
      st.table_off[static_cast<std::size_t>(v)] =
          static_cast<std::int64_t>(st.tables.size());
      for (; idx < refs.size() && refs[idx].v == v; ++idx) {
        const auto ti = static_cast<std::size_t>(refs[idx].ti);
        const auto& tree_scheme = scheme.tree_scheme(ti);
        const int pos = tree_scheme.find(v);
        NORS_CHECK(pos >= 0);
        const auto& info = tree_scheme.info_at(static_cast<std::size_t>(pos));
        const auto& heavy_label =
            tree_scheme.heavy_portal_label_at(static_cast<std::size_t>(pos));
        TableSlot s;
        s.subtree_root = info.subtree_root;
        s.local_a = narrow_i32(info.local.a);
        s.local_b = narrow_i32(info.local.b);
        s.parent_port = info.local.parent_port;
        s.heavy_child_port = info.local.heavy_port;
        s.a_prime = narrow_i32(info.a_prime);
        s.b_prime = narrow_i32(info.b_prime);
        s.heavy_prime = info.heavy_prime;
        s.heavy_cross_port = info.heavy_port;
        s.heavy_portal_a = narrow_i32(heavy_label.a);
        put_lights(heavy_label, s.heavy_light_off, s.heavy_light_len);
        s.up_port = info.up_port;
        st.table_tree.push_back(refs[idx].ti);
        st.tables.push_back(s);
      }
    }
    st.table_off[static_cast<std::size_t>(n)] =
        static_cast<std::int64_t>(st.tables.size());
  }

  // Destination labels, flat stride-k (mirrors the live label arena).
  st.labels.resize(static_cast<std::size_t>(n) * static_cast<std::size_t>(k));
  for (Vertex v = 0; v < n; ++v) {
    for (int i = 0; i < k; ++i) {
      const auto& le = scheme.label_entry(v, i);
      LabelSlot s;
      s.pivot = le.pivot;
      s.pivot_dist = le.pivot_dist;
      s.member = le.member ? 1 : 0;
      s.tree = le.pivot == graph::kNoVertex
                   ? -1
                   : static_cast<std::int32_t>(scheme.tree_index(le.pivot));
      if (le.member) {
        put_vlabel(le.tree_label, s.a_prime, s.local_a, s.local_light_off,
                   s.local_light_len, s.hop_off, s.hop_len);
      }
      st.labels[static_cast<std::size_t>(v) * static_cast<std::size_t>(k) +
                static_cast<std::size_t>(i)] = s;
    }
  }

  // 4k-5 trick slabs at level-0 cluster roots.
  if (f.label_trick_ != 0) {
    for (std::size_t ti = 0; ti < trees.size(); ++ti) {
      if (trees[ti].level != 0) continue;
      TrickRoot tr;
      tr.root = trees[ti].root;
      // The tree the live route() walks from this root: tree_index(root),
      // which may differ from ti if the same vertex roots several trees.
      tr.tree = static_cast<std::int32_t>(scheme.tree_index(trees[ti].root));
      tr.off = static_cast<std::int64_t>(st.tricks.size());
      tr.len = static_cast<std::int64_t>(trees[ti].members.size());
      for (Vertex v : trees[ti].members) {
        TrickSlot s;
        s.dest = v;
        put_vlabel(scheme.tree_scheme(ti).label(v), s.a_prime, s.local_a,
                   s.local_light_off, s.local_light_len, s.hop_off,
                   s.hop_len);
        st.tricks.push_back(s);
      }
      st.trick_roots.push_back(tr);
    }
    std::sort(st.trick_roots.begin(), st.trick_roots.end(),
              [](const TrickRoot& a, const TrickRoot& b) {
                return a.root < b.root;
              });
    for (std::size_t i = 0; i + 1 < st.trick_roots.size(); ++i) {
      NORS_CHECK_MSG(st.trick_roots[i].root != st.trick_roots[i + 1].root,
                     "two level-0 trees share root "
                         << st.trick_roots[i].root);
    }
  }

  // The link map: port p of v resolves to (adj_to_, adj_w_) at
  // adj_off_[v] + p — the router's physical interfaces, snapshotted so the
  // serving walk never touches the WeightedGraph.
  st.adj_off.resize(static_cast<std::size_t>(n) + 1);
  st.adj_to.reserve(g.total_half_edges());
  st.adj_w.reserve(g.total_half_edges());
  for (Vertex v = 0; v < n; ++v) {
    st.adj_off[static_cast<std::size_t>(v)] =
        static_cast<std::int64_t>(st.adj_to.size());
    for (const auto& e : g.neighbors(v)) {
      st.adj_to.push_back(e.to);
      st.adj_w.push_back(e.w);
    }
  }
  st.adj_off[static_cast<std::size_t>(n)] =
      static_cast<std::int64_t>(st.adj_to.size());

  // Packed wire-label blobs (connection-setup handouts).
  st.blob_off.resize(static_cast<std::size_t>(n) + 1);
  util::WordWriter w;
  for (Vertex v = 0; v < n; ++v) {
    st.blob_off[static_cast<std::size_t>(v)] =
        static_cast<std::int64_t>(st.blobs.size());
    w.clear();
    core::encode_vertex_label(scheme, v, w);
    const auto* b = reinterpret_cast<const std::uint8_t*>(w.words().data());
    st.blobs.insert(st.blobs.end(), b,
                    b + w.word_count() * core::kWireWordBytes);
  }
  st.blob_off[static_cast<std::size_t>(n)] =
      static_cast<std::int64_t>(st.blobs.size());

  f.bind_owned();
  f.build_derived();
  f.validate();
  return f;
}

void FrozenScheme::validate() const {
  NORS_CHECK_MSG(n_ >= 0 && k_ >= 1 && num_trees_ >= 0,
                 "frozen header out of range");
  const auto n = static_cast<std::size_t>(n_);
  NORS_CHECK_MSG(level_.size() == n, "level array size");
  NORS_CHECK_MSG(tree_root_.size() == static_cast<std::size_t>(num_trees_) &&
                     tree_level_.size() == static_cast<std::size_t>(num_trees_),
                 "tree directory size");
  NORS_CHECK_MSG(labels_.size() == n * static_cast<std::size_t>(k_),
                 "label arena size");
  check_offsets(table_off_, n, tables_.size(), "table slabs");
  // table_index() narrows slab indices to int32 (the cacheable key of the
  // serving-side table cache), so the table arena must fit.
  NORS_CHECK_MSG(tables_.size() <= 0x7fffffff, "table arena too large");
  NORS_CHECK_MSG(table_tree_.size() == tables_.size(),
                 "table key column size");
  check_offsets(adj_off_, n, adj_to_.size(), "link map");
  NORS_CHECK_MSG(adj_w_.size() == adj_to_.size(), "link map weight column");
  // Link targets feed back into every per-vertex array as the walk's next
  // x; range-check them here so serving never indexes out of bounds even
  // on a corrupt-but-checksummed image (ports are bounds-checked at the
  // single place they index the link map, in route_with).
  for (const auto to : adj_to_) {
    NORS_CHECK_MSG(to >= 0 && to < n_, "link map target out of range");
  }
  check_offsets(blob_off_, n, blobs_.size(), "label blobs");

  auto check_lights = [this](std::int32_t off, std::int32_t len,
                             const char* what) {
    NORS_CHECK_MSG(off >= 0 && len >= 0 &&
                       static_cast<std::size_t>(off) + len <= lights_.size(),
                   what << ": light range out of pool");
  };
  for (std::size_t i = 0; i < tables_.size(); ++i) {
    NORS_CHECK_MSG(table_tree_[i] >= 0 && table_tree_[i] < num_trees_,
                   "table slot tree id out of range");
    check_lights(tables_[i].heavy_light_off, tables_[i].heavy_light_len,
                 "table slot");
  }
  // The SIMD lower-bound lookup requires each slab's key run to be
  // strictly sorted — enforce it so a forged image degrades to a thrown
  // error, never to a wrong or divergent lookup.
  for (std::size_t v = 0; v < n; ++v) {
    const auto lo = static_cast<std::size_t>(table_off_[v]);
    const auto hi = static_cast<std::size_t>(table_off_[v + 1]);
    for (std::size_t i = lo + 1; i < hi; ++i) {
      NORS_CHECK_MSG(table_tree_[i - 1] < table_tree_[i],
                     "table slab not tree-sorted");
    }
  }
  auto check_hops = [this](std::int32_t off, std::int32_t len,
                           const char* what) {
    NORS_CHECK_MSG(off >= 0 && len >= 0 &&
                       static_cast<std::size_t>(off) + len <= hops_.size(),
                   what << ": hop range out of pool");
  };
  for (const auto& l : labels_) {
    NORS_CHECK_MSG(l.tree >= -1 && l.tree < num_trees_,
                   "label slot tree id out of range");
    check_lights(l.local_light_off, l.local_light_len, "label slot");
    check_hops(l.hop_off, l.hop_len, "label slot");
  }
  for (const auto& h : hops_) check_lights(h.light_off, h.light_len, "hop");
  for (std::size_t i = 0; i < trick_roots_.size(); ++i) {
    const auto& tr = trick_roots_[i];
    NORS_CHECK_MSG(tr.root >= 0 && tr.root < n_, "trick root out of range");
    NORS_CHECK_MSG(i == 0 || trick_roots_[i - 1].root < tr.root,
                   "trick directory not sorted");
    NORS_CHECK_MSG(tr.tree >= 0 && tr.tree < num_trees_,
                   "trick tree id out of range");
    // Overflow-safe form: tr.off + tr.len could wrap on an adversarial
    // (checksum-forged) image, which would be UB before the range check.
    NORS_CHECK_MSG(tr.off >= 0 && tr.len >= 0 &&
                       static_cast<std::size_t>(tr.len) <= tricks_.size() &&
                       static_cast<std::size_t>(tr.off) <=
                           tricks_.size() -
                               static_cast<std::size_t>(tr.len),
                   "trick slab out of pool");
    for (std::int64_t j = tr.off; j < tr.off + tr.len; ++j) {
      const auto& ts = tricks_[static_cast<std::size_t>(j)];
      NORS_CHECK_MSG(ts.dest >= 0 && ts.dest < n_,
                     "trick destination out of range");
      NORS_CHECK_MSG(j == tr.off ||
                         tricks_[static_cast<std::size_t>(j - 1)].dest <
                             ts.dest,
                     "trick slab not dest-sorted");
      check_lights(ts.local_light_off, ts.local_light_len, "trick slot");
      check_hops(ts.hop_off, ts.hop_len, "trick slot");
    }
  }
}

std::vector<std::uint8_t> FrozenScheme::save() const {
  return save_as(format_version_);
}

std::vector<std::uint8_t> FrozenScheme::save_as(std::uint32_t version) const {
  return save_impl(version, adj_w_);
}

std::vector<std::uint8_t> FrozenScheme::save_with_link_weights(
    std::span<const std::pair<std::int64_t, graph::Dist>> overrides) const {
  // Checkpoint compaction (DESIGN.md §14): bake the delta's *weight*
  // overrides into the link-map weight column and re-emit the image
  // through the ordinary save path. Failed links (w < 0) are skipped —
  // the image format has no failure notion, and the checkpoint squash
  // record re-applies them on every boot, so a rebuilt image plus its
  // squash serves bit-identically to the daemon that wrote them.
  std::vector<std::int64_t> patched(adj_w_.begin(), adj_w_.end());
  for (const auto& [link, w] : overrides) {
    NORS_CHECK_MSG(link >= 0 &&
                       link < static_cast<std::int64_t>(patched.size()),
                   "link override outside the link map");
    if (w >= 0) patched[static_cast<std::size_t>(link)] = w;
  }
  return save_impl(format_version_, patched);
}

std::vector<std::uint8_t> FrozenScheme::save_impl(
    std::uint32_t version, std::span<const std::int64_t> adj_w) const {
  NORS_CHECK_MSG(version == kVersionV2 || version == kVersionLatest,
                 "unsupported frozen-table version " << version);
  std::vector<std::uint8_t> out;
  out.reserve(static_cast<std::size_t>(byte_size()) + 512);
  put_raw(out, kMagic, sizeof(kMagic));
  put_raw(out, &version, sizeof(version));
  put_raw(out, &kEndianTag, sizeof(kEndianTag));
  put_raw(out, &n_, sizeof(n_));
  put_raw(out, &k_, sizeof(k_));
  put_raw(out, &label_trick_, sizeof(label_trick_));
  put_raw(out, &num_trees_, sizeof(num_trees_));
  put_span(out, level_);
  put_span(out, tree_root_);
  put_span(out, tree_level_);
  put_span(out, table_off_);
  if (version == kVersionV2) {
    // Re-zip the packed slots into the historical 80-byte wire records.
    std::vector<TableSlotV2> wide(tables_.size());
    for (std::size_t i = 0; i < tables_.size(); ++i) {
      const TableSlot& t = tables_[i];
      TableSlotV2& w = wide[i];
      w.local_a = t.local_a;
      w.local_b = t.local_b;
      w.a_prime = t.a_prime;
      w.b_prime = t.b_prime;
      w.heavy_portal_a = t.heavy_portal_a;
      w.tree = table_tree_[i];
      w.subtree_root = t.subtree_root;
      w.parent_port = t.parent_port;
      w.heavy_child_port = t.heavy_child_port;
      w.heavy_prime = t.heavy_prime;
      w.heavy_cross_port = t.heavy_cross_port;
      w.heavy_light_off = t.heavy_light_off;
      w.heavy_light_len = t.heavy_light_len;
      w.up_port = t.up_port;
      w.pad = 0;
    }
    put_span(out, std::span<const TableSlotV2>(wide));
  } else {
    put_span(out, table_tree_);
    std::vector<std::uint8_t> blob;
    blob.reserve(tables_.size() * 16);
    std::int64_t prev_light_off = 0;
    for (const auto& t : tables_) {
      encode_table_entry(blob, t, prev_light_off);
    }
    put_span(out, std::span<const std::uint8_t>(blob));
  }
  put_span(out, labels_);
  put_span(out, hops_);
  put_span(out, lights_);
  put_span(out, trick_roots_);
  put_span(out, tricks_);
  put_span(out, adj_off_);
  put_span(out, adj_to_);
  put_span(out, adj_w);
  put_span(out, blob_off_);
  put_span(out, blobs_);
  const std::uint64_t checksum = fnv1a(out.data(), out.size());
  put_raw(out, &checksum, sizeof(checksum));
  return out;
}

FrozenScheme FrozenScheme::load(const std::vector<std::uint8_t>& bytes) {
  if (util::failpoint("frozen.load") == util::FpAction::kError) {
    throw std::runtime_error("injected failure: frozen.load failpoint");
  }
  std::uint32_t version = 0;
  const std::size_t limit = check_framing(bytes.data(), bytes.size(), version);
  // check_framing verified the preamble (magic, version, endianness);
  // decoding starts at the i32 header fields right after it.
  Cursor c(bytes.data() + kPreambleBytes, limit - kPreambleBytes);

  FrozenScheme f;
  f.format_version_ = version;
  f.storage_ = std::make_unique<Storage>();
  Storage& st = *f.storage_;
  c.read(&f.n_, sizeof(f.n_));
  c.read(&f.k_, sizeof(f.k_));
  c.read(&f.label_trick_, sizeof(f.label_trick_));
  c.read(&f.num_trees_, sizeof(f.num_trees_));
  c.read_vec(st.level);
  c.read_vec(st.tree_root);
  c.read_vec(st.tree_level);
  c.read_vec(st.table_off);
  if (version == kVersionV2) {
    std::vector<TableSlotV2> wide;
    c.read_vec(wide);
    unzip_tables(wide, st.table_tree, st.tables);
  } else {
    c.read_vec(st.table_tree);
    std::vector<std::uint8_t> blob;
    c.read_vec(blob);
    decode_table_blob(blob.data(), blob.size(), st.table_tree.size(),
                      st.tables);
  }
  c.read_vec(st.labels);
  c.read_vec(st.hops);
  c.read_vec(st.lights);
  c.read_vec(st.trick_roots);
  c.read_vec(st.tricks);
  c.read_vec(st.adj_off);
  c.read_vec(st.adj_to);
  c.read_vec(st.adj_w);
  c.read_vec(st.blob_off);
  c.read_vec(st.blobs);
  NORS_CHECK_MSG(c.pos() == limit - kPreambleBytes,
                 "trailing bytes after the last frozen-table section");
  f.bind_owned();
  f.build_derived();
  f.validate();
  return f;
}

void FrozenScheme::save_file(const std::string& path) const {
  const auto bytes = save();
  std::FILE* fp = std::fopen(path.c_str(), "wb");
  NORS_CHECK_MSG(fp != nullptr, "cannot open " << path << " for writing");
  const std::size_t written = std::fwrite(bytes.data(), 1, bytes.size(), fp);
  std::fclose(fp);
  NORS_CHECK_MSG(written == bytes.size(), "short write to " << path);
}

FrozenScheme FrozenScheme::load_file(const std::string& path) {
  std::FILE* fp = std::fopen(path.c_str(), "rb");
  NORS_CHECK_MSG(fp != nullptr, "cannot open " << path);
  std::fseek(fp, 0, SEEK_END);
  const long size = std::ftell(fp);
  std::fseek(fp, 0, SEEK_SET);
  NORS_CHECK_MSG(size >= 0, "cannot stat " << path);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  const std::size_t got = std::fread(bytes.data(), 1, bytes.size(), fp);
  std::fclose(fp);
  NORS_CHECK_MSG(got == bytes.size(), "short read from " << path);
  return load(bytes);
}

FrozenScheme FrozenScheme::map(const std::string& path) {
  if (util::failpoint("frozen.map") == util::FpAction::kError) {
    throw std::runtime_error("injected failure: frozen.map failpoint");
  }
#if NORS_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  NORS_CHECK_MSG(fd >= 0, "cannot open " << path);
  struct stat sb {};
  if (::fstat(fd, &sb) != 0 || sb.st_size < 0) {
    ::close(fd);
    NORS_CHECK_MSG(false, "cannot stat " << path);
  }
  const auto size = static_cast<std::size_t>(sb.st_size);
  auto mapping = std::make_unique<Mapping>();
  if (size > 0) {
    bool bound = false;
    if (hugepages_requested()) {
      bound = map_hugepage_copy(fd, size, mapping->addr, mapping->map_len,
                                mapping->huge);
      if (bound) mapping->len = size;
    }
    if (!bound) {
      void* addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
      if (addr == MAP_FAILED) {
        ::close(fd);
        NORS_CHECK_MSG(false, "mmap failed for " << path);
      }
      mapping->addr = addr;
      mapping->len = size;
      mapping->map_len = size;
    }
  }
  ::close(fd);
  const std::uint8_t* p = mapping->data();
  std::uint32_t version = 0;
  const std::size_t limit = check_framing(p, size, version);

  FrozenScheme f;
  f.format_version_ = version;
  // As in load(): the preamble was verified by check_framing, so the
  // in-place cursor starts at the i32 header fields (absolute addresses
  // are preserved, which the alignment checks rely on).
  ViewCursor c(p + kPreambleBytes, limit - kPreambleBytes);
  c.read(&f.n_, sizeof(f.n_));
  c.read(&f.k_, sizeof(f.k_));
  c.read(&f.label_trick_, sizeof(f.label_trick_));
  c.read(&f.num_trees_, sizeof(f.num_trees_));
  c.read_span(f.level_);
  c.read_span(f.tree_root_);
  c.read_span(f.tree_level_);
  c.read_span(f.table_off_);
  // The table slots are the one piece the mapped path decodes into owned
  // memory on both versions (v2 narrows the wide records, v3 inflates the
  // varint section) — the packed in-memory form is what the hot path
  // wants, and re-deriving it beats paging 80-byte slots forever. The v3
  // tree-key column is served zero-copy straight from the image.
  f.storage_ = std::make_unique<Storage>();
  if (version == kVersionV2) {
    std::span<const TableSlotV2> wide;
    c.read_span(wide);
    unzip_tables(wide, f.storage_->table_tree, f.storage_->tables);
    f.table_tree_ = f.storage_->table_tree;
  } else {
    c.read_span(f.table_tree_);
    std::span<const std::uint8_t> blob;
    c.read_span(blob);
    decode_table_blob(blob.data(), blob.size(), f.table_tree_.size(),
                      f.storage_->tables);
  }
  f.tables_ = f.storage_->tables;
  c.read_span(f.labels_);
  c.read_span(f.hops_);
  c.read_span(f.lights_);
  c.read_span(f.trick_roots_);
  c.read_span(f.tricks_);
  c.read_span(f.adj_off_);
  c.read_span(f.adj_to_);
  c.read_span(f.adj_w_);
  c.read_span(f.blob_off_);
  c.read_span(f.blobs_);
  NORS_CHECK_MSG(c.pos() == limit - kPreambleBytes,
                 "trailing bytes after the last frozen-table section");
  f.mapping_ = std::move(mapping);
  f.build_derived();
  f.validate();
  return f;
#else
  NORS_CHECK_MSG(false, "FrozenScheme::map is not supported on this "
                        "platform; use load_file(" << path << ")");
#endif
}

std::int64_t FrozenScheme::byte_size() const {
  auto bytes = [](const auto& v) {
    return static_cast<std::int64_t>(
        v.size() * sizeof(typename std::decay_t<decltype(v)>::value_type));
  };
  return static_cast<std::int64_t>(4 * sizeof(std::int32_t)) + bytes(level_) +
         bytes(tree_root_) + bytes(tree_level_) + bytes(table_off_) +
         bytes(table_tree_) + bytes(tables_) + bytes(labels_) + bytes(hops_) +
         bytes(lights_) + bytes(trick_roots_) + bytes(tricks_) +
         bytes(adj_off_) + bytes(adj_to_) + bytes(adj_w_) + bytes(blob_off_) +
         bytes(blobs_);
}

}  // namespace nors::serve
