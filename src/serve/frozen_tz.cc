#include "serve/frozen_tz.h"

#include <algorithm>

namespace nors::serve {

using graph::Dist;
using graph::Vertex;

FrozenTzOracle FrozenTzOracle::freeze(const tz::TzDistanceOracle& oracle,
                                      int n) {
  FrozenTzOracle f;
  f.k_ = oracle.k();
  f.n_ = static_cast<std::size_t>(n);
  f.pivot_.resize(static_cast<std::size_t>(f.k_) * f.n_);
  f.pivot_dist_.resize(static_cast<std::size_t>(f.k_ + 1) * f.n_);
  for (int i = 0; i < f.k_; ++i) {
    for (Vertex v = 0; v < n; ++v) {
      f.pivot_[static_cast<std::size_t>(i) * f.n_ +
               static_cast<std::size_t>(v)] = oracle.pivot(i, v);
    }
  }
  for (int i = 0; i <= f.k_; ++i) {
    for (Vertex v = 0; v < n; ++v) {
      f.pivot_dist_[static_cast<std::size_t>(i) * f.n_ +
                    static_cast<std::size_t>(v)] = oracle.pivot_dist(i, v);
    }
  }
  f.bunch_off_.resize(f.n_ + 1);
  std::vector<std::pair<Vertex, Dist>> slab;
  for (Vertex v = 0; v < n; ++v) {
    f.bunch_off_[static_cast<std::size_t>(v)] =
        static_cast<std::int64_t>(f.bunch_w_.size());
    slab.assign(oracle.bunch(v).begin(), oracle.bunch(v).end());
    std::sort(slab.begin(), slab.end());
    for (const auto& [w, d] : slab) {
      f.bunch_w_.push_back(w);
      f.bunch_d_.push_back(d);
    }
  }
  f.bunch_off_[f.n_] = static_cast<std::int64_t>(f.bunch_w_.size());
  return f;
}

FrozenTzOracle::Result FrozenTzOracle::query(Vertex u, Vertex v) const {
  Result r;
  Vertex w = u;
  Dist d_uw = 0;
  for (int i = 0;; ++i) {
    const Dist d = bunch_dist(v, w);
    if (!graph::is_inf(d)) {
      r.estimate = d_uw + d;
      r.iterations = i + 1;
      return r;
    }
    // The level-(k-1) pivot is in every bunch on a connected graph, so a
    // miss there means broken input — checked *before* the pivot access
    // (level i+1 only exists for i+1 < k).
    NORS_CHECK_MSG(i + 1 < k_, "oracle loop exceeded k iterations");
    std::swap(u, v);
    w = pivot_[static_cast<std::size_t>(i + 1) * n_ +
               static_cast<std::size_t>(u)];
    d_uw = pivot_dist_[static_cast<std::size_t>(i + 1) * n_ +
                       static_cast<std::size_t>(u)];
  }
}

void FrozenTzOracle::query_batch(const Query* queries, std::size_t count,
                                 Result* out) const {
  // Same lane engine as FrozenScheme::route_batch (DESIGN.md §10), with a
  // two-stage iteration: kPrep reads v's slab bounds (prefetched one round
  // earlier) and warms the key/dist lines, kSearch scans and either
  // retires or swaps sides exactly like the serial query().
  auto touch = [](const void* p) { __builtin_prefetch(p, 0, 3); };

  struct Lane {
    enum class St : std::uint8_t { kIdle, kPrep, kSearch };
    St state = St::kIdle;
    Vertex u = 0, v = 0, w = 0;
    Dist d_uw = 0;
    std::int64_t lo = 0, hi = 0;
    int iter = 0;
    std::size_t pos = 0;
  };

  std::size_t next = 0;
  int active = 0;
  Lane lanes[kBatchLanes];

  auto admit = [&](Lane& L) {
    if (next >= count) {
      L.state = Lane::St::kIdle;
      return false;
    }
    const std::size_t i = next++;
    L.state = Lane::St::kPrep;
    L.u = queries[i].u;
    L.v = queries[i].v;
    L.w = L.u;
    L.d_uw = 0;
    L.iter = 0;
    L.pos = i;
    touch(&bunch_off_[static_cast<std::size_t>(L.v)]);
    return true;
  };

  auto step = [&](Lane& L) {
    // One engine round of one lane; returns false when the lane retired
    // and no query was left to admit.
    switch (L.state) {
      case Lane::St::kIdle:
        return true;
      case Lane::St::kPrep: {
        L.lo = bunch_off_[static_cast<std::size_t>(L.v)];
        L.hi = bunch_off_[static_cast<std::size_t>(L.v) + 1];
        const auto* keys =
            reinterpret_cast<const char*>(bunch_w_.data() + L.lo);
        const std::size_t kbytes =
            static_cast<std::size_t>(L.hi - L.lo) * sizeof(Vertex);
        for (std::size_t b = 0; b < kbytes && b < 256; b += 64) {
          touch(keys + b);
        }
        touch(bunch_d_.data() + L.lo);
        // The side-swap of a miss reads pivot row i+1 at the *current* v.
        if (L.iter + 1 < k_) {
          const std::size_t at =
              static_cast<std::size_t>(L.iter + 1) * n_ +
              static_cast<std::size_t>(L.v);
          touch(&pivot_[at]);
          touch(&pivot_dist_[at]);
        }
        L.state = Lane::St::kSearch;
        return true;
      }
      case Lane::St::kSearch: {
        const std::int32_t len = static_cast<std::int32_t>(L.hi - L.lo);
        const std::int32_t rel =
            util::simd::lower_bound_i32(bunch_w_.data() + L.lo, len, L.w);
        if (rel < len &&
            bunch_w_[static_cast<std::size_t>(L.lo + rel)] == L.w) {
          Result r;
          r.estimate =
              L.d_uw + bunch_d_[static_cast<std::size_t>(L.lo + rel)];
          r.iterations = L.iter + 1;
          out[L.pos] = r;
          return admit(L);
        }
        NORS_CHECK_MSG(L.iter + 1 < k_,
                       "oracle loop exceeded k iterations");
        std::swap(L.u, L.v);
        L.w = pivot_[static_cast<std::size_t>(L.iter + 1) * n_ +
                     static_cast<std::size_t>(L.u)];
        L.d_uw = pivot_dist_[static_cast<std::size_t>(L.iter + 1) * n_ +
                             static_cast<std::size_t>(L.u)];
        ++L.iter;
        touch(&bunch_off_[static_cast<std::size_t>(L.v)]);
        L.state = Lane::St::kPrep;
        return true;
      }
    }
    return true;
  };

  for (int l = 0; l < kBatchLanes; ++l) {
    if (admit(lanes[l])) ++active;
  }
  while (active > 0) {
    for (int l = 0; l < kBatchLanes; ++l) {
      if (!step(lanes[l])) --active;
    }
  }
}

std::int64_t FrozenTzOracle::byte_size() const {
  return static_cast<std::int64_t>(
      pivot_.size() * sizeof(Vertex) + pivot_dist_.size() * sizeof(Dist) +
      bunch_off_.size() * sizeof(std::int64_t) +
      bunch_w_.size() * sizeof(Vertex) + bunch_d_.size() * sizeof(Dist));
}

}  // namespace nors::serve
