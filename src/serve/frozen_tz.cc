#include "serve/frozen_tz.h"

#include <algorithm>

namespace nors::serve {

using graph::Dist;
using graph::Vertex;

FrozenTzOracle FrozenTzOracle::freeze(const tz::TzDistanceOracle& oracle,
                                      int n) {
  FrozenTzOracle f;
  f.k_ = oracle.k();
  f.n_ = static_cast<std::size_t>(n);
  f.pivot_.resize(static_cast<std::size_t>(f.k_) * f.n_);
  f.pivot_dist_.resize(static_cast<std::size_t>(f.k_ + 1) * f.n_);
  for (int i = 0; i < f.k_; ++i) {
    for (Vertex v = 0; v < n; ++v) {
      f.pivot_[static_cast<std::size_t>(i) * f.n_ +
               static_cast<std::size_t>(v)] = oracle.pivot(i, v);
    }
  }
  for (int i = 0; i <= f.k_; ++i) {
    for (Vertex v = 0; v < n; ++v) {
      f.pivot_dist_[static_cast<std::size_t>(i) * f.n_ +
                    static_cast<std::size_t>(v)] = oracle.pivot_dist(i, v);
    }
  }
  f.bunch_off_.resize(f.n_ + 1);
  std::vector<std::pair<Vertex, Dist>> slab;
  for (Vertex v = 0; v < n; ++v) {
    f.bunch_off_[static_cast<std::size_t>(v)] =
        static_cast<std::int64_t>(f.bunch_w_.size());
    slab.assign(oracle.bunch(v).begin(), oracle.bunch(v).end());
    std::sort(slab.begin(), slab.end());
    for (const auto& [w, d] : slab) {
      f.bunch_w_.push_back(w);
      f.bunch_d_.push_back(d);
    }
  }
  f.bunch_off_[f.n_] = static_cast<std::int64_t>(f.bunch_w_.size());
  return f;
}

FrozenTzOracle::Result FrozenTzOracle::query(Vertex u, Vertex v) const {
  Result r;
  Vertex w = u;
  Dist d_uw = 0;
  for (int i = 0;; ++i) {
    const Dist d = bunch_dist(v, w);
    if (!graph::is_inf(d)) {
      r.estimate = d_uw + d;
      r.iterations = i + 1;
      return r;
    }
    // The level-(k-1) pivot is in every bunch on a connected graph, so a
    // miss there means broken input — checked *before* the pivot access
    // (level i+1 only exists for i+1 < k).
    NORS_CHECK_MSG(i + 1 < k_, "oracle loop exceeded k iterations");
    std::swap(u, v);
    w = pivot_[static_cast<std::size_t>(i + 1) * n_ +
               static_cast<std::size_t>(u)];
    d_uw = pivot_dist_[static_cast<std::size_t>(i + 1) * n_ +
                       static_cast<std::size_t>(u)];
  }
}

std::int64_t FrozenTzOracle::byte_size() const {
  return static_cast<std::int64_t>(
      pivot_.size() * sizeof(Vertex) + pivot_dist_.size() * sizeof(Dist) +
      bunch_off_.size() * sizeof(std::int64_t) +
      bunch_w_.size() * sizeof(Vertex) + bunch_d_.size() * sizeof(Dist));
}

}  // namespace nors::serve
