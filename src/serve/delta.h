#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "serve/frozen.h"

namespace nors::serve {

/// One journaled edge event against the frozen base image. A non-negative
/// weight (re)sets both directions of edge {u, v} — including reviving a
/// previously failed link; w == kFail fails the link. Edges absent from
/// the image are counted and skipped (the journal may outlive a rebuild).
struct EdgeUpdate {
  static constexpr graph::Dist kFail = -1;

  graph::Vertex u = graph::kNoVertex;
  graph::Vertex v = graph::kNoVertex;
  graph::Dist w = kFail;

  bool is_fail() const { return w < 0; }

  static EdgeUpdate weight(graph::Vertex u, graph::Vertex v, graph::Dist w) {
    return {u, v, w};
  }
  static EdgeUpdate fail(graph::Vertex u, graph::Vertex v) {
    return {u, v, kFail};
  }
};

/// What one DeltaSet::apply() did, plus the cumulative shape of the
/// resulting set (the numbers route_serviced prints per applied batch).
struct DeltaStats {
  std::int64_t applied = 0;        // batch events accepted
  std::int64_t unknown_edges = 0;  // batch events naming absent edges
  std::int64_t overrides = 0;      // cumulative patched link directions
  std::int64_t failed_links = 0;   // cumulative failed link directions
  std::int64_t masked_trees = 0;   // trees unusable under the failures
};

/// An immutable set of link overrides + the tree mask they induce over one
/// FrozenScheme — the overlay the batch engine consults per hop
/// (FrozenScheme::route_batch_overlay; DESIGN.md §13). Built only through
/// apply(), which layers a batch of EdgeUpdates over a predecessor set and
/// returns a *new* DeltaSet: readers of the predecessor are never
/// disturbed, which is what lets net::Server publish each applied batch as
/// a refcounted generation while in-flight batches finish on the old one.
///
/// Policy (DESIGN.md §13):
///  - Weight changes are repaired in place: the walk still follows the
///    frozen tree route, but every crossing of an overridden link charges
///    the new weight. For weights within a factor α of the frozen ones the
///    served length is within α² of the frozen estimate, so stretch stays
///    ≤ α²·(4k−5).
///  - Failures mask: every cluster tree that routes across a failed link
///    is masked, and the tree scan falls back to the first *surviving*
///    tree covering the pair (Algorithm 1 order, so the fallback is
///    deterministic and its stretch bound is the scheme's own bound on
///    that tree). Masking is exact, not conservative: an edge {x, y} is an
///    edge of tree T iff the child endpoint's table slot in T points back
///    across it (parent_port, or up_port at subtree roots), so scanning
///    the two endpoints' table slabs finds exactly the trees that break.
///  - The mask is recomputed from the *full* failed-link set on every
///    apply, so reviving a link (re-weighting a failed edge) unmasks any
///    tree whose only failed edge it was.
class DeltaSet {
 public:
  // ---------------------------------------------------- overlay concept --
  static constexpr bool kActive = true;

  bool tree_masked(std::int32_t tree) const {
    return (masked_[static_cast<std::size_t>(tree) >> 6] >>
            (static_cast<unsigned>(tree) & 63)) &
           1u;
  }

  LinkPatch link_patch(std::int64_t link, graph::Dist& w) const {
    const std::uint64_t h = mix(static_cast<std::uint64_t>(link));
    for (std::uint64_t probe = h & probe_mask_;;
         probe = (probe + 1) & probe_mask_) {
      const Slot& s = slots_[probe];
      if (s.key == kEmpty) return LinkPatch::kNone;
      if (s.key == link) {
        if (s.w < 0) return LinkPatch::kFailed;
        w = s.w;
        return LinkPatch::kWeight;
      }
    }
  }

  // ------------------------------------------------------------ building --

  /// Layers `batch` over `prev` (nullptr ⟺ the unpatched base image) and
  /// returns the successor set; `prev` is left untouched. An override that
  /// restores a link's frozen weight is dropped entirely, so a journal
  /// that undoes itself converges back to an empty set. Throws on
  /// out-of-range vertices; unknown edges are skipped and counted.
  static std::shared_ptr<const DeltaSet> apply(
      const FrozenScheme& fs, const DeltaSet* prev,
      std::span<const EdgeUpdate> batch, DeltaStats* stats = nullptr);

  // -------------------------------------------------------- inspection --

  /// Monotonic generation sequence: base image = 0, each apply() +1.
  std::uint64_t seq() const { return seq_; }

  std::int64_t override_count() const { return override_count_; }
  std::int64_t failed_link_count() const { return failed_count_; }
  std::int64_t masked_tree_count() const { return masked_count_; }

  /// All overrides as (global link index, weight-or-kFail), key-sorted —
  /// apply/inspection path only (tests rebuild reference graphs from it).
  std::vector<std::pair<std::int64_t, graph::Dist>> sorted_overrides() const;

  /// The whole set re-expressed as one EdgeUpdate batch against `fs` (the
  /// image it was built over): every overridden edge once, u < v,
  /// link-index order. Applying the result against the unpatched base
  /// reproduces exactly this set's overrides and mask — the checkpoint
  /// squash record and the replication catch-up snapshot (DESIGN.md §14).
  std::vector<EdgeUpdate> as_edge_updates(const FrozenScheme& fs) const;

 private:
  struct Slot {
    std::int64_t key = kEmpty;  // global link index: adj_off()[x] + port
    graph::Dist w = 0;          // < 0 ⟺ failed
  };
  static constexpr std::int64_t kEmpty = -1;

  static std::uint64_t mix(std::uint64_t x) {
    // splitmix64 finalizer — link indices are dense smallish ints.
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }

  DeltaSet() = default;

  std::vector<Slot> slots_;       // open-addressed, power-of-2 size
  std::uint64_t probe_mask_ = 0;  // slots_.size() - 1
  std::vector<std::uint64_t> masked_;  // bit per cluster tree
  std::uint64_t seq_ = 0;
  std::int64_t override_count_ = 0;
  std::int64_t failed_count_ = 0;
  std::int64_t masked_count_ = 0;
};

// ------------------------------------------------------- batch codec --
// The canonical varint encoding of an EdgeUpdate batch — shared verbatim
// by the kUpdate wire frame (net/wire.cc) and the WAL record body
// (serve/wal.cc), so a logged batch is byte-identical to the frame that
// carried it: uvarint count, then per event a flag (0 = weight,
// 1 = fail), zigzag u, zigzag v, and — weight events only — the zigzag
// weight (≥ 0 enforced on decode).

/// Appends the batch encoding to `out`. Callers enforce their own count
/// caps (the wire caps at kMaxUpdatesPerFrame; the WAL body cap is what
/// bounds a checkpoint squash).
void encode_edge_updates(std::vector<std::uint8_t>& out,
                         std::span<const EdgeUpdate> updates);

/// Decodes one batch from [p, end) into `out` (replacing its contents)
/// and returns the cursor after it. Throws std::logic_error — the
/// codec's own guard — on truncation, non-minimal varints, a count above
/// `max_events`, unknown flags, out-of-int32-range vertices, or a
/// negative weight.
const std::uint8_t* decode_edge_updates(const std::uint8_t* p,
                                        const std::uint8_t* end,
                                        std::vector<EdgeUpdate>& out,
                                        std::uint64_t max_events);

/// Parses the plain-text update journal route_serviced replays
/// (`--updates=FILE` / `--import-updates=FILE`; DESIGN.md §13). One event
/// per line:
///
///   w U V WEIGHT   set edge {U, V} to WEIGHT (revives a failed link)
///   f U V          fail link {U, V}
///   commit         close the current batch (one generation per batch)
///
/// Blank lines and `#` comments are ignored. A trailing open batch is
/// returned as the last element. Throws std::runtime_error on malformed
/// lines, naming the 1-based batch and line number.
std::vector<std::vector<EdgeUpdate>> parse_update_journal(
    const std::string& text);

/// parse_update_journal() over the contents of `path`. A read error after
/// a successful open (EIO, a yanked disk) throws — it is never mistaken
/// for end-of-file.
std::vector<std::vector<EdgeUpdate>> load_update_journal(
    const std::string& path);

}  // namespace nors::serve
