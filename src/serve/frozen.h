#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/scheme.h"
#include "util/simd.h"

namespace nors::serve {

/// Answer of one frozen route(u, v) query: everything RouteResult reports
/// except the explicit path (route() has an overload that also records it).
/// One "decision" is one next-hop port evaluation, so decisions == hops on
/// a completed walk — the quantity bench_serving rates.
struct Decision {
  bool ok = false;
  bool via_trick = false;
  std::int32_t hops = 0;
  std::int32_t tree_level = -1;
  graph::Vertex tree_root = graph::kNoVertex;
  graph::Dist length = 0;
};

/// One route decision request (shared by every serving front-end).
struct Query {
  graph::Vertex u = graph::kNoVertex;
  graph::Vertex v = graph::kNoVertex;
};

/// Counters a batch engine run reports back (route_batch and the cached
/// variant). `completed`/`hops` cover queries answered so far, so on a
/// mid-batch exception they describe exactly the prefix that finished.
/// `masked`/`repaired` stay zero unless an overlay is interposed
/// (route_batch_overlay, serve/delta.h): masked counts queries whose
/// tree choice skipped at least one masked tree (the fallback re-route),
/// repaired counts queries that crossed at least one weight-patched link.
struct BatchStats {
  std::int64_t completed = 0;
  std::int64_t hops = 0;
  std::int64_t cache_hits = 0;
  std::int64_t cache_misses = 0;
  std::int64_t masked = 0;
  std::int64_t repaired = 0;
};

/// Verdict of an overlay's per-link probe (see RouteOverlay concept).
enum class LinkPatch : std::uint8_t {
  kNone = 0,    // link unchanged: serve the frozen weight
  kWeight = 1,  // weight overridden: the overlay wrote the new weight
  kFailed = 2,  // link failed: the walk must never cross it
};

/// What one overlay-routed query touched — the per-query view of the
/// BatchStats masked/repaired counters, reported by route_overlay() so
/// tests and repair policies can tell exactly which answers the delta
/// layer altered.
struct OverlayTouch {
  bool fell_back = false;  // skipped >= 1 masked tree in the tree scan
  bool repaired = false;   // crossed >= 1 weight-patched link
};

/// The null overlay: every route_* entry point without an explicit
/// overlay runs on this, and `kActive == false` compiles the overlay
/// probes out of the hot path entirely (pinned by the CI perf floor).
///
/// A real overlay (serve/delta.h's DeltaSet) models the *RouteOverlay
/// concept*: `kActive`, tree_masked(tree) — true when routing must not
/// use that cluster tree — and link_patch(link_idx, w) over the global
/// fused-link-map index adj_off()[x] + port, which may rewrite `w` and
/// returns what kind of patch applied. Overlays are immutable while any
/// walk reads them; generation swap, not mutation, is the update model.
struct NoOverlay {
  static constexpr bool kActive = false;
  bool tree_masked(std::int32_t) const { return false; }
  LinkPatch link_patch(std::int64_t, graph::Dist&) const {
    return LinkPatch::kNone;
  }
};

/// Cache stub for the uncached batch engine: never hits.
struct NoTableCache {
  bool probe(graph::Vertex, std::int32_t, std::int32_t&) const {
    return false;
  }
  void insert(graph::Vertex, std::int32_t, std::int32_t) const {}
};

/// An immutable, flat-memory snapshot of a constructed RoutingScheme — the
/// serving-side artifact (DESIGN.md §5, §10). freeze() packs everything a
/// router network needs to answer route(u, v) into arena-style slabs:
///
///   - per-vertex *table slabs*: one packed TableSlot per cluster tree
///     containing the vertex, tree-sorted, with the sort key split into a
///     parallel i32 key column (table_tree()) so membership tests are a
///     branch-light SIMD lower-bound scan over a few contiguous cache
///     lines instead of a pointer-chasing binary search over wide slots;
///   - per-vertex *label slots*: the k LabelEntry rows, stride-k flat, with
///     variable-length pieces (light lists, global hops) in shared pools;
///   - the 4k-5 trick slabs at level-0 cluster roots;
///   - the port→(neighbor, weight) link map (a router's physical
///     interfaces), so the walk simulation never touches WeightedGraph —
///     served from a fused {weight, neighbor} column (one cache line per
///     hop instead of two);
///   - packed wire-label blobs (core::encode_vertex_label bytes, one pool)
///     — what a node hands to connecting peers.
///
/// The hot path is allocation-free and graph-free: a query resolves the
/// destination's cluster tree from label/trick slots, then repeats
/// {search x's slab, evaluate next port, follow the link map} until
/// arrival. Decisions are bit-identical to RoutingScheme::route() — pinned
/// by test_serve. route_batch() answers many queries through a software
/// pipeline (stage machine per in-flight query with explicit prefetch one
/// stage ahead), so the table-lookup cache misses of different queries
/// overlap instead of serializing — the throughput path every serving
/// front-end (RouteServer, ShardedRouteServer) runs on.
///
/// Every slab is exposed as a std::span view; the bytes behind the views
/// are either *owned* (freeze()/load() fill heap vectors) or *mapped*
/// (map() mmaps a saved image and serves straight from the page cache).
/// The two load paths serve bit-identical decisions. FrozenScheme is
/// move-only: the views alias its own storage, so copies are forbidden by
/// construction.
///
/// save()/load()/map() share a versioned little-endian binary format
/// (magic NORSFRZ1, endianness tag, FNV-1a checksum; format spec in
/// DESIGN.md §5.2/§10). Two on-disk versions are supported: version 2
/// (fixed 80-byte table slots, fully mappable in place) and version 3
/// (split table sections: raw i32 tree-key column + delta/varint-
/// compressed slot columns — a substantially smaller image). load() and
/// map() accept both; save() re-emits the version the instance came from
/// (freeze() produces the latest), and save_as() converts. Per version,
/// save→load→save and save→map→save are byte-identical.
class FrozenScheme {
 public:
  // ---------------------------------------------------------- slot PODs --
  // Every slot is padding-free (static_asserted) with alignment ≤ 8 — the
  // format's section alignment — so sections of a mapped image can be read
  // in place (static_asserted in frozen.cc next to the section writer).

  /// One (vertex, port) pair of a TZ light list.
  struct LightSlot {
    std::int32_t v = graph::kNoVertex;
    std::int32_t port = graph::kNoPort;
  };

  /// One light T'-edge of a destination label (DistTreeScheme::GlobalHop
  /// minus fields the router never reads).
  struct HopSlot {
    std::int64_t portal_a = 0;      // ℓ(x_i).a within T_{v_i}
    std::int32_t vi = graph::kNoVertex;  // T' parent (subtree root id)
    std::int32_t port = graph::kNoPort;  // e(x_i, w_i)
    std::int32_t light_off = 0;     // ℓ(x_i).light in the light pool
    std::int32_t light_len = 0;
  };

  /// One entry of a vertex's table slab: the vertex's routing state inside
  /// one cluster tree (DistTreeScheme::NodeInfo, flattened and packed).
  /// The slab's sort key — the cluster-tree index — lives in the parallel
  /// table_tree() column, and all DFS-interval fields are int32: a DFS
  /// clock is bounded by the tree size, which is bounded by n, which is
  /// itself an int32 (the narrowing is range-checked when a version-2
  /// image, which stores these fields as int64, is decoded). 56 bytes =
  /// at most two cache lines per decision, usually one.
  struct TableSlot {
    std::int32_t local_a = 0;         // TZ interval of x in T_{w(x)}
    std::int32_t local_b = 0;
    std::int32_t a_prime = 0;         // interval of w(x) in T'
    std::int32_t b_prime = 0;
    std::int32_t heavy_portal_a = 0;  // ℓ(y).a, y = p_T(h'(w)) ∈ T_w
    std::int32_t subtree_root = graph::kNoVertex;  // w with x ∈ T_w
    std::int32_t parent_port = graph::kNoPort;  // toward subtree parent
    std::int32_t heavy_child_port = graph::kNoPort;  // local TZ heavy child
    std::int32_t heavy_prime = graph::kNoVertex;     // h'(w); kNoVertex ⇒ none
    std::int32_t heavy_cross_port = graph::kNoPort;  // e(y, h'(w))
    std::int32_t heavy_light_off = 0;  // ℓ(y).light in the light pool
    std::int32_t heavy_light_len = 0;
    std::int32_t up_port = graph::kNoPort;  // at w: port toward p_T(w)
    std::int32_t pad = 0;
  };

  /// One level of a destination label (RoutingScheme::LabelEntry,
  /// flattened): pivot + membership + the tree label ℓ'(v).
  struct LabelSlot {
    std::int64_t pivot_dist = graph::kDistInf;
    std::int64_t a_prime = 0;   // ℓ'(v).a' (DFS entry of w(v) in T')
    std::int64_t local_a = 0;   // ℓ(v).a within T_{w(v)}
    std::int32_t pivot = graph::kNoVertex;
    std::int32_t tree = -1;     // cluster tree of the pivot, -1 if none
    std::int32_t member = 0;    // v ∈ C̃(ẑ_i(v))
    std::int32_t local_light_off = 0;
    std::int32_t local_light_len = 0;
    std::int32_t hop_off = 0;   // global_light in the hop pool
    std::int32_t hop_len = 0;
    std::int32_t pad = 0;
  };

  /// Directory row of the 4k-5 trick slab of one level-0 cluster root.
  struct TrickRoot {
    std::int32_t root = graph::kNoVertex;
    std::int32_t tree = -1;       // the tree route() walks from this root
    std::int64_t off = 0;         // entries in tricks_, sorted by dest
    std::int64_t len = 0;
  };

  /// One member's tree label stored at its level-0 root.
  struct TrickSlot {
    std::int64_t a_prime = 0;
    std::int64_t local_a = 0;
    std::int32_t dest = graph::kNoVertex;  // slab sort key
    std::int32_t local_light_off = 0;
    std::int32_t local_light_len = 0;
    std::int32_t hop_off = 0;
    std::int32_t hop_len = 0;
    std::int32_t pad = 0;
  };

  /// Fused link-map entry: the weight and target of one (vertex, port)
  /// interface in a single 16-byte read. Derived at bind time from the
  /// serialized adj_to/adj_w columns (not itself a wire section) — the
  /// walk pays one cache line per hop for the link instead of two.
  struct LinkSlot {
    graph::Dist w = 0;
    graph::Vertex to = graph::kNoVertex;
    std::int32_t pad = 0;
  };

  static_assert(sizeof(LightSlot) == 8);
  static_assert(sizeof(HopSlot) == 24);
  static_assert(sizeof(TableSlot) == 56);
  static_assert(sizeof(LabelSlot) == 56);
  static_assert(sizeof(TrickRoot) == 24);
  static_assert(sizeof(TrickSlot) == 40);
  static_assert(sizeof(LinkSlot) == 16);

  // --------------------------------------------------------- life cycle --

  FrozenScheme() = default;
  FrozenScheme(FrozenScheme&&) = default;
  FrozenScheme& operator=(FrozenScheme&&) = default;
  FrozenScheme(const FrozenScheme&) = delete;
  FrozenScheme& operator=(const FrozenScheme&) = delete;

  /// Snapshots a constructed scheme (and its graph's link map) into flat
  /// slabs. The frozen scheme is self-contained: the RoutingScheme and the
  /// WeightedGraph may be destroyed afterwards.
  static FrozenScheme freeze(const core::RoutingScheme& scheme);

  /// Versioned binary image (format: DESIGN.md §5.2/§10). save() writes
  /// the instance's own format version — the one it was loaded from, or
  /// the latest for freeze() outputs; save_as() converts explicitly.
  std::vector<std::uint8_t> save() const;
  std::vector<std::uint8_t> save_as(std::uint32_t version) const;

  /// save() with the link-map weight column patched by `overrides`
  /// ((global link index, weight) pairs; negative weights — failures —
  /// are skipped, the image format has no failure notion). This is the
  /// checkpoint-compaction path (DESIGN.md §14): delta weight repairs are
  /// baked into a fresh image in the instance's own format version, and
  /// everything else is byte-identical to save().
  std::vector<std::uint8_t> save_with_link_weights(
      std::span<const std::pair<std::int64_t, graph::Dist>> overrides) const;
  static FrozenScheme load(const std::vector<std::uint8_t>& bytes);
  void save_file(const std::string& path) const;
  static FrozenScheme load_file(const std::string& path);

  /// Zero-copy load: mmaps the NORSFRZ1 image at `path` read-only,
  /// validates the checksum against the mapped bytes, and binds slab
  /// views directly into the mapping wherever the wire layout matches the
  /// in-memory one (labels, pools, tricks, link columns, blobs — and the
  /// v3 tree-key column). Table slots are decoded/packed into owned
  /// memory on both versions (v2 narrows 80-byte slots, v3 inflates the
  /// varint columns). Rejects corrupt images exactly like load().
  ///
  /// Opt-in hugepage backing: with NORS_HUGEPAGES=1 in the environment,
  /// the image is copied into hugepage-backed anonymous memory instead of
  /// being file-mapped (MAP_HUGETLB when the system has reserved huge
  /// pages, transparent-hugepage advice otherwise, plain pages as the
  /// last resort) — trading zero-copy startup for far fewer TLB misses on
  /// the ~100 MB serving working set. Serving behavior is identical.
  static FrozenScheme map(const std::string& path);

  /// True when the slabs alias an mmap'ed image rather than owned heap
  /// vectors (inspection/bench reporting only — serving is identical).
  bool is_mapped() const { return mapping_ != nullptr; }

  /// True when map() placed the image in hugepage-backed memory
  /// (NORS_HUGEPAGES=1 and at least the transparent-hugepage fallback
  /// succeeded).
  bool hugepage_backed() const;

  /// The on-disk format version save() will emit (2 or 3).
  std::uint32_t format_version() const { return format_version_; }

  // ------------------------------------------------------------ serving --

  /// Frozen route decision query; answers are identical to
  /// RoutingScheme::route() on the live scheme (length, hops, tree choice,
  /// via_trick). Throws like the live walk on impossible states.
  Decision route(graph::Vertex u, graph::Vertex v) const {
    return route_with(
        u, v,
        [this](graph::Vertex x, std::int32_t tree) {
          return table_slot(x, tree);
        },
        nullptr);
  }

  /// As route(), and also records the visited vertices (including u and v).
  Decision route(graph::Vertex u, graph::Vertex v,
                 std::vector<graph::Vertex>* path) const {
    return route_with(
        u, v,
        [this](graph::Vertex x, std::int32_t tree) {
          return table_slot(x, tree);
        },
        path);
  }

  /// Software-pipelined batch engine (DESIGN.md §10): answers queries[i]
  /// into out[i] with up to kBatchLanes queries in flight, each advanced
  /// one stage per engine round — label decode, slab prefetch, table
  /// lookup, port emit — with the next stage's cache lines prefetched one
  /// round ahead, so the lookup misses of different queries overlap.
  /// Decisions are identical to route() per query; exceptions (bad query,
  /// corrupt state) propagate like route()'s, leaving out[] slots of
  /// unfinished queries unspecified (`stats`, if given, describes exactly
  /// the completed prefix).
  void route_batch(const Query* queries, std::size_t count, Decision* out,
                   BatchStats* stats = nullptr) const {
    NoTableCache none;
    NoOverlay nov;
    route_batch_impl(queries, count, out, none, nov, stats);
  }

  /// As route_batch(), resolving (vertex, tree) slab lookups through a
  /// caller-owned cache first (serve/table_cache.h shape: probe()/
  /// insert()); hit/miss counts land in `stats`.
  template <typename Cache>
  void route_batch_cached(const Query* queries, std::size_t count,
                          Decision* out, Cache& cache,
                          BatchStats* stats = nullptr) const {
    NoOverlay none;
    route_batch_impl(queries, count, out, cache, none, stats);
  }

  /// The delta-serving batch engine (DESIGN.md §13): identical pipeline,
  /// but the tree scan skips trees the overlay masks (fallback re-route
  /// through the surviving tree set) and every link crossing consults
  /// link_patch() — failed links are never crossed (masking guarantees
  /// it; the engine checks), weight patches rewrite the hop's length
  /// contribution. With NoOverlay this is exactly route_batch_cached().
  template <typename Cache, typename Overlay>
  void route_batch_overlay(const Query* queries, std::size_t count,
                           Decision* out, Cache& cache, const Overlay& ov,
                           BatchStats* stats = nullptr) const {
    route_batch_impl(queries, count, out, cache, ov, stats);
  }

  /// Single-query overlay route; `touch`, if given, reports whether the
  /// answer fell back past a masked tree or crossed a patched link.
  template <typename Overlay>
  Decision route_overlay(graph::Vertex u, graph::Vertex v, const Overlay& ov,
                         OverlayTouch* touch = nullptr,
                         std::vector<graph::Vertex>* path = nullptr) const {
    return route_core(
        u, v,
        [this](graph::Vertex x, std::int32_t tree) {
          return table_slot(x, tree);
        },
        ov, touch, path);
  }

  /// Queries in flight per route_batch() engine round.
  static constexpr int kBatchLanes = 16;

  /// Index into tables() of x's slab entry for cluster tree `tree`, or -1
  /// when x is not in that tree — a SIMD lower-bound scan over the slab's
  /// run of the tree-key column (util/simd.h). This is the lookup
  /// RouteServer's (vertex, tree) cache memoizes.
  std::int32_t table_index(graph::Vertex x, std::int32_t tree) const {
    const std::int64_t lo = table_off_[static_cast<std::size_t>(x)];
    const std::int64_t hi = table_off_[static_cast<std::size_t>(x) + 1];
    const auto* keys = table_tree_.data() + lo;
    const auto len = static_cast<std::int32_t>(hi - lo);
    const std::int32_t rel = util::simd::lower_bound_i32(keys, len, tree);
    if (rel < len && keys[rel] == tree) {
      return static_cast<std::int32_t>(lo) + rel;
    }
    return -1;
  }

  const TableSlot* table_slot(graph::Vertex x, std::int32_t tree) const {
    const std::int32_t idx = table_index(x, tree);
    return idx < 0 ? nullptr : &tables_[static_cast<std::size_t>(idx)];
  }

  /// The core walk, parameterized over the (vertex, tree) → TableSlot*
  /// lookup so callers can interpose a cache. Lookup must return nullptr
  /// exactly when table_index() returns -1.
  template <typename TableLookup>
  Decision route_with(graph::Vertex u, graph::Vertex v, TableLookup&& lookup,
                      std::vector<graph::Vertex>* path) const {
    NoOverlay none;
    return route_core(u, v, std::forward<TableLookup>(lookup), none, nullptr,
                      path);
  }

  /// route_with() with an overlay interposed (see NoOverlay for the
  /// concept): the generalization every route entry point compiles down
  /// to.
  template <typename TableLookup, typename Overlay>
  Decision route_core(graph::Vertex u, graph::Vertex v, TableLookup&& lookup,
                      const Overlay& ov, OverlayTouch* touch,
                      std::vector<graph::Vertex>* path) const;

  // -------------------------------------------------------- inspection --

  int n() const { return n_; }
  int k() const { return k_; }
  bool label_trick() const { return label_trick_ != 0; }
  std::int32_t num_trees() const { return num_trees_; }
  int vertex_level(graph::Vertex v) const {
    return level_[static_cast<std::size_t>(v)];
  }
  std::span<const TableSlot> tables() const { return tables_; }

  /// The table-slab sort-key column, parallel to tables(): entry i of
  /// tables() describes the vertex's state in cluster tree
  /// table_tree()[i]; tree-sorted within each vertex's slab.
  std::span<const std::int32_t> table_tree() const { return table_tree_; }

  /// v's packed wire label (core::encode_vertex_label bytes) — what the
  /// serving layer hands to a peer at connection setup.
  std::span<const std::uint8_t> label_blob(graph::Vertex v) const {
    return {blobs_.data() + blob_off_[static_cast<std::size_t>(v)],
            blobs_.data() + blob_off_[static_cast<std::size_t>(v) + 1]};
  }

  /// Total bytes of in-memory frozen state behind the serving views
  /// (section payloads; framing and the derived fused link map excluded).
  std::int64_t byte_size() const;

  // ------------------------------------------------- link-map accessors --
  // The delta layer (serve/delta.h) reads these to journal edge updates
  // against the frozen image: link indices are adj_off()[x] + port — the
  // same index the walk hands an overlay's link_patch().

  /// [n+1] offsets bounding each vertex's run of the fused link map.
  std::span<const std::int64_t> adj_off() const { return adj_off_; }

  /// The fused link map: entry adj_off()[x] + port is the (weight,
  /// neighbor) behind x's interface `port`.
  std::span<const LinkSlot> link_map() const { return links_; }

  /// [n+1] offsets bounding each vertex's table slab (parallel to
  /// tables()/table_tree()).
  std::span<const std::int64_t> table_off() const { return table_off_; }

  /// x's port toward neighbor `to`, or kNoPort when no such link exists —
  /// a linear scan of x's link row (degree-bounded; update-apply only,
  /// never the serving path).
  std::int32_t find_port(graph::Vertex x, graph::Vertex to) const {
    const std::int64_t lo = adj_off_[static_cast<std::size_t>(x)];
    const std::int64_t hi = adj_off_[static_cast<std::size_t>(x) + 1];
    for (std::int64_t i = lo; i < hi; ++i) {
      if (links_[static_cast<std::size_t>(i)].to == to) {
        return static_cast<std::int32_t>(i - lo);
      }
    }
    return graph::kNoPort;
  }

 private:
  /// The destination's tree label as the walk consumes it — a view into
  /// the slot pools, no ownership.
  struct DestView {
    std::int64_t a_prime = 0;
    std::int64_t local_a = 0;
    std::int32_t local_light_off = 0;
    std::int32_t local_light_len = 0;
    std::int32_t hop_off = 0;
    std::int32_t hop_len = 0;
  };

  /// TzTreeScheme::next_hop over slab fields: next port within the subtree
  /// T_{w(x)} toward the local label (dest_a, lights). kNoPort == arrived
  /// at the labelled vertex.
  std::int32_t tz_next(const TableSlot& t, graph::Vertex x,
                       std::int64_t dest_a, std::int32_t light_off,
                       std::int32_t light_len) const {
    if (dest_a == t.local_a) return graph::kNoPort;  // arrived
    if (dest_a < t.local_a || dest_a >= t.local_b) {
      NORS_CHECK_MSG(t.parent_port != graph::kNoPort,
                     "destination is outside this tree");
      return t.parent_port;
    }
    const LightSlot* l = lights_.data() + light_off;
    for (std::int32_t j = 0; j < light_len; ++j) {
      if (l[j].v == x) return l[j].port;
    }
    NORS_CHECK_MSG(t.heavy_child_port != graph::kNoPort,
                   "interval claims a descendant but no child exists");
    return t.heavy_child_port;
  }

  /// DistTreeScheme::next_hop over slab fields.
  std::int32_t next_port(const TableSlot& t, graph::Vertex x,
                         const DestView& d) const {
    if (d.a_prime == t.a_prime) {
      // Same subtree: pure local interval routing.
      return tz_next(t, x, d.local_a, d.local_light_off, d.local_light_len);
    }
    if (d.a_prime < t.a_prime || d.a_prime >= t.b_prime) {
      // Destination subtree is not below w(x) in T': go up.
      if (t.parent_port != graph::kNoPort) return t.parent_port;
      NORS_CHECK_MSG(t.up_port != graph::kNoPort,
                     "route-up requested at the tree root");
      return t.up_port;
    }
    // Strictly below w(x) in T': a light hop recorded in the destination
    // label, else the heavy T'-child.
    const HopSlot* h = hops_.data() + d.hop_off;
    for (std::int32_t j = 0; j < d.hop_len; ++j) {
      if (h[j].vi == t.subtree_root) {
        const std::int32_t p =
            tz_next(t, x, h[j].portal_a, h[j].light_off, h[j].light_len);
        return p == graph::kNoPort ? h[j].port : p;
      }
    }
    NORS_CHECK_MSG(t.heavy_prime != graph::kNoVertex,
                   "descend requested but w(x) has no T' children");
    const std::int32_t p = tz_next(t, x, t.heavy_portal_a, t.heavy_light_off,
                                   t.heavy_light_len);
    return p == graph::kNoPort ? t.heavy_cross_port : p;
  }

  static DestView view_of(const LabelSlot& s) {
    return {s.a_prime,       s.local_a, s.local_light_off,
            s.local_light_len, s.hop_off, s.hop_len};
  }
  static DestView view_of(const TrickSlot& s) {
    return {s.a_prime,       s.local_a, s.local_light_off,
            s.local_light_len, s.hop_off, s.hop_len};
  }

  /// Finds the cluster tree a (u, v) walk uses — the 4k-5 trick slab at a
  /// level-0 u, else the label scan (Algorithm 1 order, exactly as the
  /// live route()). Returns the tree (or -1: coverage failure), fills
  /// `dest` and the decision's tree fields. `lookup` answers "is u in
  /// tree t" (index or -1), letting callers interpose a cache. Trees the
  /// overlay masks are skipped — the fallback re-route — with
  /// `fell_back` set when any skip happened for this query.
  template <typename IndexLookup, typename Overlay>
  std::int32_t find_tree(graph::Vertex u, graph::Vertex v,
                         IndexLookup&& lookup, const Overlay& ov,
                         bool& fell_back, DestView& dest, Decision& r) const;

  template <typename Cache, typename Overlay>
  void route_batch_impl(const Query* queries, std::size_t count,
                        Decision* out, Cache& cache, const Overlay& ov,
                        BatchStats* stats) const;

  /// Structural sanity of all offsets/ranges; throws on violation. Run
  /// after freeze() (cheap self-check) and after load()/map() (so a
  /// corrupt but checksum-valid image can never cause out-of-bounds
  /// serving reads).
  void validate() const;

  /// Shared body of save_as()/save_with_link_weights(): emits every
  /// section from the instance except the link-weight column, which the
  /// caller supplies (the unpatched adj_w_, or a patched copy).
  std::vector<std::uint8_t> save_impl(std::uint32_t version,
                                      std::span<const std::int64_t> adj_w)
      const;

  /// Heap storage behind the views on the owning paths (freeze, load) —
  /// and, on the map() path, behind the packed table slots, which are
  /// decoded out of the image rather than aliased. Held by pointer so
  /// moving the FrozenScheme never relocates the vectors the spans alias.
  struct Storage {
    std::vector<std::int32_t> level;
    std::vector<std::int32_t> tree_root;
    std::vector<std::int32_t> tree_level;
    std::vector<std::int64_t> table_off;
    std::vector<std::int32_t> table_tree;
    std::vector<TableSlot> tables;
    std::vector<LabelSlot> labels;
    std::vector<HopSlot> hops;
    std::vector<LightSlot> lights;
    std::vector<TrickRoot> trick_roots;
    std::vector<TrickSlot> tricks;
    std::vector<std::int64_t> adj_off;
    std::vector<std::int32_t> adj_to;
    std::vector<std::int64_t> adj_w;
    std::vector<std::int64_t> blob_off;
    std::vector<std::uint8_t> blobs;
  };

  /// RAII image memory of the map() path: a read-only file mapping, or —
  /// with NORS_HUGEPAGES=1 — an anonymous hugepage-backed copy of the
  /// file (DESIGN.md §10.4).
  struct Mapping {
    Mapping() = default;
    Mapping(const Mapping&) = delete;
    Mapping& operator=(const Mapping&) = delete;
    ~Mapping();
    const std::uint8_t* data() const {
      return static_cast<const std::uint8_t*>(addr);
    }
    void* addr = nullptr;
    std::size_t len = 0;        // image bytes
    std::size_t map_len = 0;    // mapped bytes (≥ len; hugepage rounding)
    bool huge = false;          // hugepage-backed (MAP_HUGETLB or THP)
  };

  /// Points every span at the owned vectors.
  void bind_owned();

  /// Builds the derived serving structures (the fused link map) from the
  /// bound adj views; called on every load path after binding.
  void build_derived();

  std::int32_t n_ = 0;
  std::int32_t k_ = 0;
  std::int32_t label_trick_ = 0;
  std::int32_t num_trees_ = 0;
  std::uint32_t format_version_ = 0;  // set by freeze()/load()/map()

  // Slab views — into storage_ (owning paths) or mapping_ (map()).
  std::span<const std::int32_t> level_;       // [n] hierarchy level
  std::span<const std::int32_t> tree_root_;   // [num_trees]
  std::span<const std::int32_t> tree_level_;  // [num_trees]
  std::span<const std::int64_t> table_off_;   // [n+1] bounds into tables_
  std::span<const std::int32_t> table_tree_;  // slab sort-key column
  std::span<const TableSlot> tables_;         // tree-sorted within each slab
  std::span<const LabelSlot> labels_;         // [n*k], stride k
  std::span<const HopSlot> hops_;             // global-hop pool
  std::span<const LightSlot> lights_;         // light-list pool
  std::span<const TrickRoot> trick_roots_;    // sorted by root
  std::span<const TrickSlot> tricks_;         // per root: sorted by dest
  std::span<const std::int64_t> adj_off_;     // [n+1] link-map offsets
  std::span<const std::int32_t> adj_to_;      // neighbor behind (v, port)
  std::span<const std::int64_t> adj_w_;       // weight of that link
  std::span<const std::int64_t> blob_off_;    // [n+1] byte offsets
  std::span<const std::uint8_t> blobs_;       // packed wire labels

  std::vector<LinkSlot> links_;  // derived fused link map (build_derived)

  std::unique_ptr<Storage> storage_;  // owned sections; null iff all mapped
  std::unique_ptr<Mapping> mapping_;  // map() path; null when owned
};

template <typename IndexLookup, typename Overlay>
std::int32_t FrozenScheme::find_tree(graph::Vertex u, graph::Vertex v,
                                     IndexLookup&& lookup, const Overlay& ov,
                                     bool& fell_back, DestView& dest,
                                     Decision& r) const {
  // Find the tree (Algorithm 1 + the 4k-5 trick), mirroring the live
  // RoutingScheme::route() decision order exactly. Masked trees are
  // skipped in the same order, so the fallback is deterministic: the
  // first *surviving* tree Algorithm 1 would pick.
  if (label_trick_ != 0 && level_[static_cast<std::size_t>(u)] == 0) {
    // Is u a level-0 cluster root holding v's tree label locally?
    std::size_t a = 0, b = trick_roots_.size();
    while (a < b) {
      const std::size_t mid = (a + b) / 2;
      if (trick_roots_[mid].root < u) {
        a = mid + 1;
      } else {
        b = mid;
      }
    }
    if (a < trick_roots_.size() && trick_roots_[a].root == u) {
      const TrickRoot& tr = trick_roots_[a];
      bool usable = true;
      if constexpr (Overlay::kActive) {
        if (ov.tree_masked(tr.tree)) {
          fell_back = true;  // trick tree masked: fall through to labels
          usable = false;
        }
      }
      if (usable) {
        std::int64_t lo = tr.off, hi = tr.off + tr.len;
        while (lo < hi) {
          const std::int64_t mid = (lo + hi) / 2;
          if (tricks_[static_cast<std::size_t>(mid)].dest < v) {
            lo = mid + 1;
          } else {
            hi = mid;
          }
        }
        if (lo < tr.off + tr.len &&
            tricks_[static_cast<std::size_t>(lo)].dest == v) {
          dest = view_of(tricks_[static_cast<std::size_t>(lo)]);
          r.tree_root = u;
          r.tree_level = 0;
          r.via_trick = true;
          return tr.tree;
        }
      }
    }
  }
  const LabelSlot* lv = labels_.data() +
                        static_cast<std::size_t>(v) *
                            static_cast<std::size_t>(k_);
  for (std::int32_t i = 0; i < k_; ++i) {
    const LabelSlot& ls = lv[i];
    if (ls.member == 0) continue;  // v ∉ C̃(ẑ_i(v)): keep searching
    if (ls.tree < 0) continue;     // pivot has no cluster tree
    if constexpr (Overlay::kActive) {
      if (ov.tree_masked(ls.tree)) {
        fell_back = true;  // tree damaged by a failure: re-route
        continue;
      }
    }
    if (lookup(u, ls.tree) < 0) continue;  // u ∉ C̃(ẑ_i(v))
    dest = view_of(ls);
    r.tree_root = ls.pivot;
    r.tree_level = i;
    return ls.tree;
  }
  return -1;  // coverage failure (prevented by build; possible under masks)
}

template <typename TableLookup, typename Overlay>
Decision FrozenScheme::route_core(graph::Vertex u, graph::Vertex v,
                                  TableLookup&& lookup, const Overlay& ov,
                                  OverlayTouch* touch,
                                  std::vector<graph::Vertex>* path) const {
  NORS_CHECK(u >= 0 && u < n_ && v >= 0 && v < n_);
  Decision r;
  if (path != nullptr) {
    path->clear();
    path->push_back(u);
  }
  if (u == v) {
    r.ok = true;
    return r;
  }

  bool fell_back = false;
  DestView dest;
  const std::int32_t tree = find_tree(
      u, v,
      [&lookup](graph::Vertex x, std::int32_t t) {
        // find_tree wants an index-or-negative probe; adapt the slot
        // lookup (nullptr ⟺ not a member, per the route_with contract).
        return lookup(x, t) == nullptr ? -1 : 0;
      },
      ov, fell_back, dest, r);
  if (touch != nullptr) touch->fell_back = fell_back;
  if (tree < 0) return r;  // coverage failure (prevented by build)

  // Walk the unique tree path over the frozen link map.
  graph::Vertex x = u;
  while (x != v) {
    const TableSlot* t = lookup(x, tree);
    NORS_CHECK_MSG(t != nullptr, "walk left cluster tree " << tree);
    const std::int32_t port = next_port(*t, x, dest);
    NORS_CHECK_MSG(port != graph::kNoPort, "router stalled before arrival");
    const std::int64_t base = adj_off_[static_cast<std::size_t>(x)];
    // Both bounds: a corrupt-but-checksummed image could carry any port
    // value, and this is the only place ports index the link map.
    NORS_CHECK_MSG(
        port >= 0 && base + port < adj_off_[static_cast<std::size_t>(x) + 1],
        "bad port " << port << " at vertex " << x);
    const LinkSlot& link = links_[static_cast<std::size_t>(base + port)];
    graph::Dist w = link.w;
    if constexpr (Overlay::kActive) {
      const LinkPatch lp = ov.link_patch(base + port, w);
      if (lp != LinkPatch::kNone) {
        // Masking is exact (every tree edge is some endpoint's parent
        // edge), so a surviving tree never crosses a failed link.
        NORS_CHECK_MSG(lp != LinkPatch::kFailed,
                       "walk crossed a failed link " << x << " port "
                                                     << port);
        if (touch != nullptr) touch->repaired = true;
      }
    }
    r.length += w;
    ++r.hops;
    x = link.to;
    if (path != nullptr) path->push_back(x);
    NORS_CHECK_MSG(r.hops <= 4 * n_, "routing loop detected");
  }
  r.ok = true;
  return r;
}

template <typename Cache, typename Overlay>
void FrozenScheme::route_batch_impl(const Query* queries, std::size_t count,
                                    Decision* out, Cache& cache,
                                    const Overlay& ov,
                                    BatchStats* stats) const {
  // Stage machine per in-flight query (DESIGN.md §10.2). A hop costs three
  // engine rounds — kPrep (slab bounds + key/link prefetch), kSearch (SIMD
  // key scan + slot prefetch), kDecide (port emit + link follow) — so the
  // DRAM misses of ~kBatchLanes/3 queries are outstanding at every point
  // instead of one query's miss chain serializing.
  auto touch = [](const void* p) { __builtin_prefetch(p, 0, 3); };

  struct Lane {
    enum class St : std::uint8_t { kIdle, kFind, kPrep, kSearch, kDecide };
    St state = St::kIdle;
    graph::Vertex u = 0, v = 0, x = 0;
    std::int32_t tree = -1;
    std::int64_t slab_lo = 0, slab_hi = 0;
    const TableSlot* slot = nullptr;
    DestView dest;
    Decision d;
    std::size_t pos = 0;
    bool fell_back = false;  // first-choice tree masked, re-routed
    bool repaired = false;   // walk crossed an overridden-weight link
  };

  BatchStats local;
  BatchStats& bs = stats != nullptr ? *stats : local;

  // Synchronous (vertex, tree) → index probe for the find-tree scan: the
  // scan's candidate trees are data-dependent, so it is not pipelined —
  // it costs one round per query, not per decision.
  auto lookup_idx = [&](graph::Vertex x, std::int32_t tree) {
    std::int32_t idx = 0;
    if (cache.probe(x, tree, idx)) {
      ++bs.cache_hits;
      return idx;
    }
    idx = table_index(x, tree);
    cache.insert(x, tree, idx);
    ++bs.cache_misses;
    return idx;
  };

  std::size_t next = 0;
  int active = 0;
  Lane lanes[kBatchLanes];

  // Admits queries into `L` until one needs the pipeline (u != v); trivial
  // u == v queries retire immediately, like route(). Returns false when
  // the query stream is exhausted.
  auto admit = [&](Lane& L) {
    while (next < count) {
      const std::size_t i = next++;
      const graph::Vertex u = queries[i].u;
      const graph::Vertex v = queries[i].v;
      NORS_CHECK(u >= 0 && u < n_ && v >= 0 && v < n_);
      if (u == v) {
        Decision r;
        r.ok = true;
        out[i] = r;
        ++bs.completed;
        continue;
      }
      L.state = Lane::St::kFind;
      L.u = u;
      L.v = v;
      L.x = u;
      L.d = Decision{};
      L.pos = i;
      L.fell_back = false;
      L.repaired = false;
      // One round of lead time for the find-tree reads: u's level and
      // slab bounds, v's label row (k slots ≤ 3 lines), u's link row
      // bounds.
      touch(&level_[static_cast<std::size_t>(u)]);
      touch(&table_off_[static_cast<std::size_t>(u)]);
      touch(&adj_off_[static_cast<std::size_t>(u)]);
      const auto* lv = labels_.data() + static_cast<std::size_t>(v) *
                                            static_cast<std::size_t>(k_);
      const auto* lb = reinterpret_cast<const char*>(lv);
      const std::size_t lbytes = static_cast<std::size_t>(k_) *
                                 sizeof(LabelSlot);
      for (std::size_t b = 0; b < lbytes; b += 64) touch(lb + b);
      return true;
    }
    L.state = Lane::St::kIdle;
    return false;
  };

  auto retire = [&](Lane& L) {
    L.d.ok = true;
    out[L.pos] = L.d;
    ++bs.completed;
    bs.hops += L.d.hops;
    if (L.fell_back) ++bs.masked;
    if (L.repaired) ++bs.repaired;
    if (!admit(L)) --active;
  };

  // Prefetches the first lines of x's link row and of the key run
  // [slab_lo, slab_hi) — issued as soon as the bounds are known.
  auto touch_row = [&](Lane& L) {
    const auto* keys = reinterpret_cast<const char*>(
        table_tree_.data() + L.slab_lo);
    const std::size_t kbytes =
        static_cast<std::size_t>(L.slab_hi - L.slab_lo) * sizeof(std::int32_t);
    for (std::size_t b = 0; b < kbytes && b < 256; b += 64) touch(keys + b);
    const std::int64_t base = adj_off_[static_cast<std::size_t>(L.x)];
    touch(links_.data() + base);
    touch(links_.data() + base + 4);
  };

  for (int l = 0; l < kBatchLanes; ++l) {
    if (admit(lanes[l])) ++active;
  }

  while (active > 0) {
    for (int l = 0; l < kBatchLanes; ++l) {
      Lane& L = lanes[l];
      switch (L.state) {
        case Lane::St::kIdle:
          break;

        case Lane::St::kFind: {
          L.tree =
              find_tree(L.u, L.v, lookup_idx, ov, L.fell_back, L.dest, L.d);
          if (L.tree < 0) {
            // Coverage failure: report !ok, exactly like route(). Under an
            // overlay this can also mean every covering tree was masked.
            out[L.pos] = L.d;
            ++bs.completed;
            if (L.fell_back) ++bs.masked;
            if (!admit(L)) --active;
            break;
          }
          // The walk's first lookup, (u, tree): the label scan just
          // searched u's slab (bounds prefetched at admit), so resolve it
          // synchronously and give the decide stage a round of lead time
          // on the slot, the destination's hop list and u's link row.
          const std::int32_t idx = lookup_idx(L.x, L.tree);
          NORS_CHECK_MSG(idx >= 0, "walk left cluster tree " << L.tree);
          L.slot = &tables_[static_cast<std::size_t>(idx)];
          touch(L.slot);
          touch(reinterpret_cast<const char*>(L.slot) + 55);
          touch(hops_.data() + L.dest.hop_off);
          const std::int64_t base = adj_off_[static_cast<std::size_t>(L.x)];
          touch(links_.data() + base);
          L.state = Lane::St::kDecide;
          break;
        }

        case Lane::St::kPrep: {
          // Bounds lines were prefetched when the hop landed on x.
          L.slab_lo = table_off_[static_cast<std::size_t>(L.x)];
          L.slab_hi = table_off_[static_cast<std::size_t>(L.x) + 1];
          touch_row(L);
          std::int32_t idx = 0;
          if (cache.probe(L.x, L.tree, idx)) {
            ++bs.cache_hits;
            NORS_CHECK_MSG(idx >= 0, "walk left cluster tree " << L.tree);
            L.slot = &tables_[static_cast<std::size_t>(idx)];
            touch(L.slot);
            touch(reinterpret_cast<const char*>(L.slot) + 55);
            L.state = Lane::St::kDecide;
            break;
          }
          L.state = Lane::St::kSearch;
          break;
        }

        case Lane::St::kSearch: {
          const auto* keys = table_tree_.data() + L.slab_lo;
          const auto len = static_cast<std::int32_t>(L.slab_hi - L.slab_lo);
          const std::int32_t rel =
              util::simd::lower_bound_i32(keys, len, L.tree);
          const bool found = rel < len && keys[rel] == L.tree;
          const std::int32_t idx =
              found ? static_cast<std::int32_t>(L.slab_lo) + rel : -1;
          cache.insert(L.x, L.tree, idx);
          ++bs.cache_misses;
          NORS_CHECK_MSG(found, "walk left cluster tree " << L.tree);
          L.slot = &tables_[static_cast<std::size_t>(idx)];
          touch(L.slot);
          touch(reinterpret_cast<const char*>(L.slot) + 55);
          L.state = Lane::St::kDecide;
          break;
        }

        case Lane::St::kDecide: {
          const TableSlot& t = *L.slot;
          const std::int32_t port = next_port(t, L.x, L.dest);
          NORS_CHECK_MSG(port != graph::kNoPort,
                         "router stalled before arrival");
          const std::int64_t base =
              adj_off_[static_cast<std::size_t>(L.x)];
          NORS_CHECK_MSG(
              port >= 0 &&
                  base + port <
                      adj_off_[static_cast<std::size_t>(L.x) + 1],
              "bad port " << port << " at vertex " << L.x);
          const LinkSlot& link =
              links_[static_cast<std::size_t>(base + port)];
          graph::Dist w = link.w;
          if constexpr (Overlay::kActive) {
            const LinkPatch lp = ov.link_patch(base + port, w);
            if (lp != LinkPatch::kNone) {
              // Masking is exact (every tree edge is some endpoint's
              // parent edge), so a surviving tree never crosses a failed
              // link.
              NORS_CHECK_MSG(lp != LinkPatch::kFailed,
                             "walk crossed a failed link " << L.x << " port "
                                                           << port);
              L.repaired = true;
            }
          }
          L.d.length += w;
          ++L.d.hops;
          L.x = link.to;
          NORS_CHECK_MSG(L.d.hops <= 4 * n_, "routing loop detected");
          if (L.x == L.v) {
            retire(L);
            break;
          }
          // Next hop: warm the new vertex's bounds lines one round early.
          touch(&table_off_[static_cast<std::size_t>(L.x)]);
          touch(&adj_off_[static_cast<std::size_t>(L.x)]);
          L.state = Lane::St::kPrep;
          break;
        }
      }
    }
  }
}

}  // namespace nors::serve
