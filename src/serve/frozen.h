#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/scheme.h"

namespace nors::serve {

/// Answer of one frozen route(u, v) query: everything RouteResult reports
/// except the explicit path (route() has an overload that also records it).
/// One "decision" is one next-hop port evaluation, so decisions == hops on
/// a completed walk — the quantity bench_serving rates.
struct Decision {
  bool ok = false;
  bool via_trick = false;
  std::int32_t hops = 0;
  std::int32_t tree_level = -1;
  graph::Vertex tree_root = graph::kNoVertex;
  graph::Dist length = 0;
};

/// An immutable, flat-memory snapshot of a constructed RoutingScheme — the
/// serving-side artifact (DESIGN.md §5). freeze() packs everything a router
/// network needs to answer route(u, v) into arena-style slabs:
///
///   - per-vertex *table slabs*: one fixed-width TableSlot per cluster tree
///     containing the vertex (its NodeInfo from treeroute/dist_tree.h),
///     tree-sorted so membership tests are a binary search over the slab;
///   - per-vertex *label slots*: the k LabelEntry rows, stride-k flat, with
///     variable-length pieces (light lists, global hops) in shared pools;
///   - the 4k-5 trick slabs at level-0 cluster roots;
///   - the port→(neighbor, weight) link map (a router's physical
///     interfaces), so the walk simulation never touches WeightedGraph;
///   - packed wire-label blobs (core::encode_vertex_label bytes, one pool)
///     — what a node hands to connecting peers.
///
/// The hot path is allocation-free and graph-free: a query resolves the
/// destination's cluster tree from label/trick slots, then repeats
/// {binary-search x's slab, evaluate next port, follow the link map} until
/// arrival. Decisions are bit-identical to RoutingScheme::route() — pinned
/// by test_serve.
///
/// Every slab is exposed as a std::span view; the bytes behind the views
/// are either *owned* (freeze()/load() fill heap vectors) or *mapped*
/// (map() mmaps a saved image and serves straight from the page cache —
/// zero-copy startup, DESIGN.md §8.2). The two load paths serve
/// bit-identical decisions; map() falls back to nothing — callers on
/// platforms without mmap use load_file(). FrozenScheme is move-only: the
/// views alias its own storage, so copies are forbidden by construction.
///
/// save()/load()/map() share a versioned little-endian binary format
/// (magic NORSFRZ1, version 2, endianness tag, FNV-1a checksum; every
/// section payload starts 8-byte aligned so the image can be mapped and
/// read in place; format spec in DESIGN.md §5.2). save→load→save is
/// byte-identical, and so is save→map→save.
class FrozenScheme {
 public:
  // ---------------------------------------------------------- slot PODs --
  // Every slot is padding-free (static_asserted), so the serialized image
  // is exactly the in-memory arrays and save→load→save is byte-identical.
  // All slots have 8-byte alignment at most — the format's section
  // alignment — so a mapped image can be read in place (static_asserted
  // in frozen.cc next to the section writer).

  /// One (vertex, port) pair of a TZ light list.
  struct LightSlot {
    std::int32_t v = graph::kNoVertex;
    std::int32_t port = graph::kNoPort;
  };

  /// One light T'-edge of a destination label (DistTreeScheme::GlobalHop
  /// minus fields the router never reads).
  struct HopSlot {
    std::int64_t portal_a = 0;      // ℓ(x_i).a within T_{v_i}
    std::int32_t vi = graph::kNoVertex;  // T' parent (subtree root id)
    std::int32_t port = graph::kNoPort;  // e(x_i, w_i)
    std::int32_t light_off = 0;     // ℓ(x_i).light in the light pool
    std::int32_t light_len = 0;
  };

  /// One entry of a vertex's table slab: the vertex's routing state inside
  /// cluster tree `tree` (DistTreeScheme::NodeInfo, flattened).
  struct TableSlot {
    std::int64_t local_a = 0;         // TZ interval of x in T_{w(x)}
    std::int64_t local_b = 0;
    std::int64_t a_prime = 0;         // interval of w(x) in T'
    std::int64_t b_prime = 0;
    std::int64_t heavy_portal_a = 0;  // ℓ(y).a, y = p_T(h'(w)) ∈ T_w
    std::int32_t tree = -1;           // cluster-tree index (slab sort key)
    std::int32_t subtree_root = graph::kNoVertex;  // w with x ∈ T_w
    std::int32_t parent_port = graph::kNoPort;  // toward subtree parent
    std::int32_t heavy_child_port = graph::kNoPort;  // local TZ heavy child
    std::int32_t heavy_prime = graph::kNoVertex;     // h'(w); kNoVertex ⇒ none
    std::int32_t heavy_cross_port = graph::kNoPort;  // e(y, h'(w))
    std::int32_t heavy_light_off = 0;  // ℓ(y).light in the light pool
    std::int32_t heavy_light_len = 0;
    std::int32_t up_port = graph::kNoPort;  // at w: port toward p_T(w)
    std::int32_t pad = 0;
  };

  /// One level of a destination label (RoutingScheme::LabelEntry,
  /// flattened): pivot + membership + the tree label ℓ'(v).
  struct LabelSlot {
    std::int64_t pivot_dist = graph::kDistInf;
    std::int64_t a_prime = 0;   // ℓ'(v).a' (DFS entry of w(v) in T')
    std::int64_t local_a = 0;   // ℓ(v).a within T_{w(v)}
    std::int32_t pivot = graph::kNoVertex;
    std::int32_t tree = -1;     // cluster tree of the pivot, -1 if none
    std::int32_t member = 0;    // v ∈ C̃(ẑ_i(v))
    std::int32_t local_light_off = 0;
    std::int32_t local_light_len = 0;
    std::int32_t hop_off = 0;   // global_light in the hop pool
    std::int32_t hop_len = 0;
    std::int32_t pad = 0;
  };

  /// Directory row of the 4k-5 trick slab of one level-0 cluster root.
  struct TrickRoot {
    std::int32_t root = graph::kNoVertex;
    std::int32_t tree = -1;       // the tree route() walks from this root
    std::int64_t off = 0;         // entries in tricks_, sorted by dest
    std::int64_t len = 0;
  };

  /// One member's tree label stored at its level-0 root.
  struct TrickSlot {
    std::int64_t a_prime = 0;
    std::int64_t local_a = 0;
    std::int32_t dest = graph::kNoVertex;  // slab sort key
    std::int32_t local_light_off = 0;
    std::int32_t local_light_len = 0;
    std::int32_t hop_off = 0;
    std::int32_t hop_len = 0;
    std::int32_t pad = 0;
  };

  static_assert(sizeof(LightSlot) == 8);
  static_assert(sizeof(HopSlot) == 24);
  static_assert(sizeof(TableSlot) == 80);
  static_assert(sizeof(LabelSlot) == 56);
  static_assert(sizeof(TrickRoot) == 24);
  static_assert(sizeof(TrickSlot) == 40);

  // --------------------------------------------------------- life cycle --

  FrozenScheme() = default;
  FrozenScheme(FrozenScheme&&) = default;
  FrozenScheme& operator=(FrozenScheme&&) = default;
  FrozenScheme(const FrozenScheme&) = delete;
  FrozenScheme& operator=(const FrozenScheme&) = delete;

  /// Snapshots a constructed scheme (and its graph's link map) into flat
  /// slabs. The frozen scheme is self-contained: the RoutingScheme and the
  /// WeightedGraph may be destroyed afterwards.
  static FrozenScheme freeze(const core::RoutingScheme& scheme);

  /// Versioned binary image (format: DESIGN.md §5.2).
  std::vector<std::uint8_t> save() const;
  static FrozenScheme load(const std::vector<std::uint8_t>& bytes);
  void save_file(const std::string& path) const;
  static FrozenScheme load_file(const std::string& path);

  /// Zero-copy load: mmaps the NORSFRZ1 image at `path` read-only,
  /// validates the checksum against the mapped bytes, and binds every slab
  /// view directly into the mapping — no slab copies, startup cost is one
  /// checksum pass and the structural validate(). The mapping lives as
  /// long as the FrozenScheme. Rejects corrupt images exactly like load().
  static FrozenScheme map(const std::string& path);

  /// True when the slabs alias an mmap'ed image rather than owned heap
  /// vectors (inspection/bench reporting only — serving is identical).
  bool is_mapped() const { return mapping_ != nullptr; }

  // ------------------------------------------------------------ serving --

  /// Frozen route decision query; answers are identical to
  /// RoutingScheme::route() on the live scheme (length, hops, tree choice,
  /// via_trick). Throws like the live walk on impossible states.
  Decision route(graph::Vertex u, graph::Vertex v) const {
    return route_with(
        u, v,
        [this](graph::Vertex x, std::int32_t tree) {
          return table_slot(x, tree);
        },
        nullptr);
  }

  /// As route(), and also records the visited vertices (including u and v).
  Decision route(graph::Vertex u, graph::Vertex v,
                 std::vector<graph::Vertex>* path) const {
    return route_with(
        u, v,
        [this](graph::Vertex x, std::int32_t tree) {
          return table_slot(x, tree);
        },
        path);
  }

  /// Index into tables() of x's slab entry for cluster tree `tree`, or -1
  /// when x is not in that tree. O(log slab) binary search — the lookup
  /// RouteServer's (vertex, tree) cache memoizes.
  std::int32_t table_index(graph::Vertex x, std::int32_t tree) const {
    const std::int64_t lo = table_off_[static_cast<std::size_t>(x)];
    const std::int64_t hi = table_off_[static_cast<std::size_t>(x) + 1];
    std::int64_t a = lo, b = hi;
    while (a < b) {
      const std::int64_t mid = (a + b) / 2;
      if (tables_[static_cast<std::size_t>(mid)].tree < tree) {
        a = mid + 1;
      } else {
        b = mid;
      }
    }
    if (a < hi && tables_[static_cast<std::size_t>(a)].tree == tree) {
      return static_cast<std::int32_t>(a);
    }
    return -1;
  }

  const TableSlot* table_slot(graph::Vertex x, std::int32_t tree) const {
    const std::int32_t idx = table_index(x, tree);
    return idx < 0 ? nullptr : &tables_[static_cast<std::size_t>(idx)];
  }

  /// The core walk, parameterized over the (vertex, tree) → TableSlot*
  /// lookup so RouteServer can interpose its cache. Lookup must return
  /// nullptr exactly when table_index() returns -1.
  template <typename TableLookup>
  Decision route_with(graph::Vertex u, graph::Vertex v, TableLookup&& lookup,
                      std::vector<graph::Vertex>* path) const;

  // -------------------------------------------------------- inspection --

  int n() const { return n_; }
  int k() const { return k_; }
  bool label_trick() const { return label_trick_ != 0; }
  std::int32_t num_trees() const { return num_trees_; }
  int vertex_level(graph::Vertex v) const {
    return level_[static_cast<std::size_t>(v)];
  }
  std::span<const TableSlot> tables() const { return tables_; }

  /// v's packed wire label (core::encode_vertex_label bytes) — what the
  /// serving layer hands to a peer at connection setup.
  std::span<const std::uint8_t> label_blob(graph::Vertex v) const {
    return {blobs_.data() + blob_off_[static_cast<std::size_t>(v)],
            blobs_.data() + blob_off_[static_cast<std::size_t>(v) + 1]};
  }

  /// Total bytes of frozen state (what save() writes, minus framing).
  std::int64_t byte_size() const;

 private:
  /// The destination's tree label as the walk consumes it — a view into
  /// the slot pools, no ownership.
  struct DestView {
    std::int64_t a_prime = 0;
    std::int64_t local_a = 0;
    std::int32_t local_light_off = 0;
    std::int32_t local_light_len = 0;
    std::int32_t hop_off = 0;
    std::int32_t hop_len = 0;
  };

  /// TzTreeScheme::next_hop over slab fields: next port within the subtree
  /// T_{w(x)} toward the local label (dest_a, lights). kNoPort == arrived
  /// at the labelled vertex.
  std::int32_t tz_next(const TableSlot& t, graph::Vertex x,
                       std::int64_t dest_a, std::int32_t light_off,
                       std::int32_t light_len) const {
    if (dest_a == t.local_a) return graph::kNoPort;  // arrived
    if (dest_a < t.local_a || dest_a >= t.local_b) {
      NORS_CHECK_MSG(t.parent_port != graph::kNoPort,
                     "destination is outside this tree");
      return t.parent_port;
    }
    const LightSlot* l = lights_.data() + light_off;
    for (std::int32_t j = 0; j < light_len; ++j) {
      if (l[j].v == x) return l[j].port;
    }
    NORS_CHECK_MSG(t.heavy_child_port != graph::kNoPort,
                   "interval claims a descendant but no child exists");
    return t.heavy_child_port;
  }

  /// DistTreeScheme::next_hop over slab fields.
  std::int32_t next_port(const TableSlot& t, graph::Vertex x,
                         const DestView& d) const {
    if (d.a_prime == t.a_prime) {
      // Same subtree: pure local interval routing.
      return tz_next(t, x, d.local_a, d.local_light_off, d.local_light_len);
    }
    if (d.a_prime < t.a_prime || d.a_prime >= t.b_prime) {
      // Destination subtree is not below w(x) in T': go up.
      if (t.parent_port != graph::kNoPort) return t.parent_port;
      NORS_CHECK_MSG(t.up_port != graph::kNoPort,
                     "route-up requested at the tree root");
      return t.up_port;
    }
    // Strictly below w(x) in T': a light hop recorded in the destination
    // label, else the heavy T'-child.
    const HopSlot* h = hops_.data() + d.hop_off;
    for (std::int32_t j = 0; j < d.hop_len; ++j) {
      if (h[j].vi == t.subtree_root) {
        const std::int32_t p =
            tz_next(t, x, h[j].portal_a, h[j].light_off, h[j].light_len);
        return p == graph::kNoPort ? h[j].port : p;
      }
    }
    NORS_CHECK_MSG(t.heavy_prime != graph::kNoVertex,
                   "descend requested but w(x) has no T' children");
    const std::int32_t p = tz_next(t, x, t.heavy_portal_a, t.heavy_light_off,
                                   t.heavy_light_len);
    return p == graph::kNoPort ? t.heavy_cross_port : p;
  }

  static DestView view_of(const LabelSlot& s) {
    return {s.a_prime,       s.local_a, s.local_light_off,
            s.local_light_len, s.hop_off, s.hop_len};
  }
  static DestView view_of(const TrickSlot& s) {
    return {s.a_prime,       s.local_a, s.local_light_off,
            s.local_light_len, s.hop_off, s.hop_len};
  }

  /// Structural sanity of all offsets/ranges; throws on violation. Run
  /// after freeze() (cheap self-check) and after load()/map() (so a
  /// corrupt but checksum-valid image can never cause out-of-bounds
  /// serving reads).
  void validate() const;

  /// Heap storage behind the views on the owning paths (freeze, load).
  /// Held by pointer so moving the FrozenScheme never relocates the
  /// vectors the spans alias.
  struct Storage {
    std::vector<std::int32_t> level;
    std::vector<std::int32_t> tree_root;
    std::vector<std::int32_t> tree_level;
    std::vector<std::int64_t> table_off;
    std::vector<TableSlot> tables;
    std::vector<LabelSlot> labels;
    std::vector<HopSlot> hops;
    std::vector<LightSlot> lights;
    std::vector<TrickRoot> trick_roots;
    std::vector<TrickSlot> tricks;
    std::vector<std::int64_t> adj_off;
    std::vector<std::int32_t> adj_to;
    std::vector<std::int64_t> adj_w;
    std::vector<std::int64_t> blob_off;
    std::vector<std::uint8_t> blobs;
  };

  /// RAII read-only mmap of a saved image (the map() path).
  struct Mapping {
    Mapping() = default;
    Mapping(const Mapping&) = delete;
    Mapping& operator=(const Mapping&) = delete;
    ~Mapping();
    const std::uint8_t* data() const {
      return static_cast<const std::uint8_t*>(addr);
    }
    void* addr = nullptr;
    std::size_t len = 0;
  };

  /// Points every span at the owned vectors.
  void bind_owned();

  std::int32_t n_ = 0;
  std::int32_t k_ = 0;
  std::int32_t label_trick_ = 0;
  std::int32_t num_trees_ = 0;

  // Slab views — into storage_ (owning paths) or mapping_ (map()).
  std::span<const std::int32_t> level_;       // [n] hierarchy level
  std::span<const std::int32_t> tree_root_;   // [num_trees]
  std::span<const std::int32_t> tree_level_;  // [num_trees]
  std::span<const std::int64_t> table_off_;   // [n+1] bounds into tables_
  std::span<const TableSlot> tables_;         // tree-sorted within each slab
  std::span<const LabelSlot> labels_;         // [n*k], stride k
  std::span<const HopSlot> hops_;             // global-hop pool
  std::span<const LightSlot> lights_;         // light-list pool
  std::span<const TrickRoot> trick_roots_;    // sorted by root
  std::span<const TrickSlot> tricks_;         // per root: sorted by dest
  std::span<const std::int64_t> adj_off_;     // [n+1] link-map offsets
  std::span<const std::int32_t> adj_to_;      // neighbor behind (v, port)
  std::span<const std::int64_t> adj_w_;       // weight of that link
  std::span<const std::int64_t> blob_off_;    // [n+1] byte offsets
  std::span<const std::uint8_t> blobs_;       // packed wire labels

  std::unique_ptr<Storage> storage_;  // owning paths; null when mapped
  std::unique_ptr<Mapping> mapping_;  // map() path; null when owned
};

template <typename TableLookup>
Decision FrozenScheme::route_with(graph::Vertex u, graph::Vertex v,
                                  TableLookup&& lookup,
                                  std::vector<graph::Vertex>* path) const {
  NORS_CHECK(u >= 0 && u < n_ && v >= 0 && v < n_);
  Decision r;
  if (path != nullptr) {
    path->clear();
    path->push_back(u);
  }
  if (u == v) {
    r.ok = true;
    return r;
  }

  // Find the tree (Algorithm 1 + the 4k-5 trick), mirroring the live
  // RoutingScheme::route() decision order exactly.
  std::int32_t tree = -1;
  DestView dest;
  if (label_trick_ != 0 && level_[static_cast<std::size_t>(u)] == 0) {
    // Is u a level-0 cluster root holding v's tree label locally?
    std::size_t a = 0, b = trick_roots_.size();
    while (a < b) {
      const std::size_t mid = (a + b) / 2;
      if (trick_roots_[mid].root < u) {
        a = mid + 1;
      } else {
        b = mid;
      }
    }
    if (a < trick_roots_.size() && trick_roots_[a].root == u) {
      const TrickRoot& tr = trick_roots_[a];
      std::int64_t lo = tr.off, hi = tr.off + tr.len;
      while (lo < hi) {
        const std::int64_t mid = (lo + hi) / 2;
        if (tricks_[static_cast<std::size_t>(mid)].dest < v) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      if (lo < tr.off + tr.len &&
          tricks_[static_cast<std::size_t>(lo)].dest == v) {
        tree = tr.tree;
        dest = view_of(tricks_[static_cast<std::size_t>(lo)]);
        r.tree_root = u;
        r.tree_level = 0;
        r.via_trick = true;
      }
    }
  }
  if (tree < 0) {
    const LabelSlot* lv = labels_.data() +
                          static_cast<std::size_t>(v) *
                              static_cast<std::size_t>(k_);
    for (std::int32_t i = 0; i < k_; ++i) {
      const LabelSlot& ls = lv[i];
      if (ls.member == 0) continue;  // v ∉ C̃(ẑ_i(v)): keep searching
      if (ls.tree < 0) continue;     // pivot has no cluster tree
      if (lookup(u, ls.tree) == nullptr) continue;  // u ∉ C̃(ẑ_i(v))
      tree = ls.tree;
      dest = view_of(ls);
      r.tree_root = ls.pivot;
      r.tree_level = i;
      break;
    }
  }
  if (tree < 0) return r;  // coverage failure (prevented by build)

  // Walk the unique tree path over the frozen link map.
  graph::Vertex x = u;
  while (x != v) {
    const TableSlot* t = lookup(x, tree);
    NORS_CHECK_MSG(t != nullptr, "walk left cluster tree " << tree);
    const std::int32_t port = next_port(*t, x, dest);
    NORS_CHECK_MSG(port != graph::kNoPort, "router stalled before arrival");
    const std::int64_t base = adj_off_[static_cast<std::size_t>(x)];
    // Both bounds: a corrupt-but-checksummed image could carry any port
    // value, and this is the only place ports index the link map.
    NORS_CHECK_MSG(
        port >= 0 && base + port < adj_off_[static_cast<std::size_t>(x) + 1],
        "bad port " << port << " at vertex " << x);
    r.length += adj_w_[static_cast<std::size_t>(base + port)];
    ++r.hops;
    x = adj_to_[static_cast<std::size_t>(base + port)];
    if (path != nullptr) path->push_back(x);
    NORS_CHECK_MSG(r.hops <= 4 * n_, "routing loop detected");
  }
  r.ok = true;
  return r;
}

}  // namespace nors::serve
