#pragma once

#include <cstdint>
#include <vector>

#include "serve/frozen.h"

namespace nors::serve {

/// Two-way set-associative LRU cache for (vertex, tree) → table-slot index
/// — the slab binary search is the serving walk's only non-constant step,
/// and hot cluster trees (the top-level trees contain all of V) resolve in
/// one probe once cached. Owned per worker (RouteServer chunk threads,
/// ShardedRouteServer shard workers): the frozen scheme stays untouched
/// and shared read-only. A set's way 0 is the most recently used; a hit in
/// way 1 swaps the ways. Caching is transparent: a cached "not a member"
/// (idx -1) answers exactly like FrozenScheme::table_index().
class TableCache {
 public:
  TableCache(const FrozenScheme& fs, int entries) : fs_(&fs) {
    int sets = 1;
    while (2 * sets < entries) sets *= 2;
    mask_ = static_cast<std::uint64_t>(sets) - 1;
    slots_.assign(static_cast<std::size_t>(sets) * 2, {kEmpty, -1});
  }

  const FrozenScheme::TableSlot* lookup(graph::Vertex x, std::int32_t tree,
                                        std::int64_t& hits,
                                        std::int64_t& misses) {
    std::int32_t idx = 0;
    if (probe(x, tree, idx)) {
      ++hits;
      return slot_ptr(idx);
    }
    ++misses;
    idx = fs_->table_index(x, tree);
    insert(x, tree, idx);
    return slot_ptr(idx);
  }

  /// Cache-only probe: true (and the cached index, -1 = cached "not a
  /// member") on a hit, false otherwise — no slab search, no insertion.
  /// This is the half the batch engine calls in its prefetch stage;
  /// insert() publishes the engine's own search result afterwards.
  bool probe(graph::Vertex x, std::int32_t tree, std::int32_t& idx) {
    const std::uint64_t key = pack(x, tree);
    const std::size_t set = set_of(key);
    Entry& e0 = slots_[set];
    Entry& e1 = slots_[set + 1];
    if (e0.key == key) {
      idx = e0.idx;
      return true;
    }
    if (e1.key == key) {
      std::swap(e0, e1);  // promote to MRU
      idx = e0.idx;
      return true;
    }
    return false;
  }

  /// Drops every entry — the generation-swap invalidation hook: shard
  /// workers clear when a batch arrives under a different delta sequence
  /// than the cache was warmed on (serve/shard.cc).
  void clear() {
    std::fill(slots_.begin(), slots_.end(), Entry{kEmpty, -1});
  }

  /// Publishes a search result into (x, tree)'s set as the MRU way; the
  /// set's LRU way is evicted.
  void insert(graph::Vertex x, std::int32_t tree, std::int32_t idx) {
    const std::uint64_t key = pack(x, tree);
    const std::size_t set = set_of(key);
    slots_[set + 1] = slots_[set];  // old MRU becomes LRU, LRU is evicted
    slots_[set] = {key, idx};
  }

 private:
  static constexpr std::uint64_t kEmpty = ~0ull;

  struct Entry {
    std::uint64_t key;
    std::int32_t idx;  // -1 = cached "not a member"
  };

  static std::uint64_t pack(graph::Vertex x, std::int32_t tree) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(x)) << 32) |
           static_cast<std::uint32_t>(tree);
  }

  // Fibonacci hash of the packed key picks the set.
  std::size_t set_of(std::uint64_t key) const {
    return static_cast<std::size_t>(
               (key * 0x9e3779b97f4a7c15ull) >> 32 & mask_) * 2;
  }

  const FrozenScheme::TableSlot* slot_ptr(std::int32_t idx) const {
    return idx < 0 ? nullptr
                   : fs_->tables().data() + static_cast<std::size_t>(idx);
  }

  const FrozenScheme* fs_;
  std::uint64_t mask_;
  std::vector<Entry> slots_;
};

}  // namespace nors::serve
