#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "serve/delta.h"

namespace nors::serve {

// Write-ahead log for live-table updates (DESIGN.md §14). A `Wal` is a
// directory of append-only segment files; every admitted kUpdate batch is
// appended — and, per the fsync policy, made durable — *before* the server
// publishes the generation it produces, so an acked batch survives SIGKILL
// and a reboot replays image + WAL into a daemon bit-identical to one that
// never crashed.
//
// On-disk format (all little-endian, like NORSFRZ1 and the wire framing):
//
//   segment file  wal-<16-hex base seq>.log
//     0   8   magic "NORSWAL1"
//     8   4   format version (kWalVersion)
//     12  4   reserved, zero
//     16  8   base sequence number (first seq this segment may carry)
//
//   record (repeated to EOF)
//     0   4   record magic "NWR1"
//     4   4   body length in bytes (≤ kMaxWalBody)
//     8   8   sequence number — strictly ascending within a segment
//     16  4   flags (bit 0: snapshot — apply against the base image,
//              replacing any accumulated delta, not layered over it)
//     20  4   reserved, zero
//     24  ..  body: the varint EdgeUpdate batch encoding shared with the
//              kUpdate wire frame (serve::encode_edge_updates)
//     ..  8   FNV-1a 64 over every preceding byte of the record
//
// Recovery discipline (pinned by test_wal's torn-tail matrix): a record
// that does not fit in the bytes remaining before EOF — or whose checksum
// fails exactly at EOF, or whose tail is all zero-fill — is a *torn tail*:
// the crash interrupted the final append, the file is truncated back to
// the last complete record, and exactly that record is dropped. Any other
// damage (bad magic or checksum with valid bytes after it, an undecodable
// body behind a valid checksum, a non-ascending sequence, torn bytes in a
// non-final segment) cannot be explained by a crashed append and recovery
// refuses the log with WalCorrupt rather than serve from silently wrong
// state. Records whose seq is ≤ the highest already replayed are skipped:
// that overlap is exactly the window a crash between "write the checkpoint
// squash" and "delete the old segments" leaves behind, and skipping makes
// checkpoint crash-safe at every intermediate state.

enum class FsyncPolicy : std::uint8_t {
  kAlways = 0,    // fdatasync after every append (ack ⇒ durable)
  kInterval = 1,  // fdatasync at most every fsync_interval_ms
  kOff = 2,       // never; the OS flushes (durability window = page cache)
};

/// Parses "always" / "interval" / "off" (the --fsync flag grammar).
/// Throws std::runtime_error on anything else.
FsyncPolicy parse_fsync_policy(const std::string& s);

/// A failed append/fsync: recoverable — the record was rolled back (or
/// never written), the log is still consistent, and the server sheds the
/// update with a typed error frame while reads keep serving.
class WalError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Unrecoverable log damage found during recovery: mid-log corruption,
/// which must refuse to boot rather than replay wrong state.
class WalCorrupt : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One durable record, as handed to the recovery callback in seq order.
struct WalRecord {
  std::uint64_t seq = 0;
  bool snapshot = false;  // replaces accumulated state instead of layering
  std::vector<EdgeUpdate> events;
};

struct WalOptions {
  FsyncPolicy fsync = FsyncPolicy::kAlways;
  std::uint32_t fsync_interval_ms = 100;     // kInterval cadence
  std::uint64_t segment_bytes = 64ull << 20; // rotate past this size
};

struct WalStats {
  std::uint64_t records_recovered = 0;  // replayed at open
  std::uint64_t records_skipped = 0;    // duplicate seq (checkpoint overlap)
  std::uint64_t torn_bytes_dropped = 0; // truncated torn tail, bytes
  std::uint64_t appends = 0;            // records appended this process
  std::uint64_t syncs = 0;              // fdatasync calls issued
};

class Wal {
 public:
  /// Opens (creating the directory if needed) and recovers the log:
  /// `replay` is invoked for every durable record in ascending seq order
  /// before the constructor returns. Throws WalCorrupt on mid-log damage
  /// and WalError if the directory itself cannot be opened. Failpoint:
  /// `wal.recover` (error mode injects a recovery failure).
  Wal(std::string dir, WalOptions opt,
      const std::function<void(const WalRecord&)>& replay);
  ~Wal();

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Durably appends one record; `seq` must exceed last_seq(). On any
  /// failure — ENOSPC, a short write, an fsync error, or the `wal.append`
  /// / `wal.fsync` failpoints — the file is truncated back to its
  /// pre-append size and WalError is thrown: the log never retains a
  /// record that was not acked and the caller never publishes a
  /// generation that was not logged. `partial` mode on `wal.append`
  /// simulates disk-full: a torn prefix is written, then rolled back.
  void append(std::uint64_t seq, bool snapshot,
              std::span<const EdgeUpdate> events);

  /// Checkpoint truncation: atomically replaces the whole log with one
  /// fresh segment — carrying a single snapshot record (`snapshot`
  /// non-null, written at seq `last_seq`) or nothing (`snapshot` null,
  /// base seq `last_seq + 1`). The new segment is fsynced before any old
  /// segment is unlinked, so a crash at any point leaves either the old
  /// log, both (the overlap recovery skips), or the new one.
  void reset(std::uint64_t last_seq,
             const std::vector<EdgeUpdate>* snapshot);

  /// Forces an fdatasync now (rotation/shutdown path). Throws WalError.
  void sync();

  std::uint64_t last_seq() const { return last_seq_; }
  const WalStats& stats() const { return stats_; }
  const std::string& dir() const { return dir_; }
  std::uint64_t segment_count() const { return segments_.size(); }

  // ---- exact on-disk encodings, exposed so tests can craft segments ----
  static std::vector<std::uint8_t> encode_segment_header(
      std::uint64_t base_seq);
  static std::vector<std::uint8_t> encode_record(
      std::uint64_t seq, bool snapshot, std::span<const EdgeUpdate> events);

  static constexpr std::size_t kSegHeaderBytes = 24;
  static constexpr std::size_t kRecHeaderBytes = 24;
  static constexpr std::size_t kRecTrailerBytes = 8;
  static constexpr std::size_t kMaxWalBody = 1u << 28;

 private:
  void recover(const std::function<void(const WalRecord&)>& replay);
  void open_fresh_segment(std::uint64_t base_seq);
  void maybe_rotate(std::size_t incoming_bytes);
  void maybe_sync();
  void do_sync();
  void rollback_to(std::uint64_t size, const char* why);
  std::string segment_path(std::uint64_t base_seq) const;

  std::string dir_;
  WalOptions opt_;
  std::vector<std::string> segments_;  // ascending base seq; back() is live
  int fd_ = -1;                        // live segment, positioned at its end
  std::uint64_t seg_size_ = 0;         // live segment size in bytes
  std::uint64_t last_seq_ = 0;
  std::int64_t last_sync_ms_ = 0;      // steady-clock ms of last fdatasync
  bool dirty_ = false;                 // bytes appended since last sync
  bool broken_ = false;                // rollback failed: refuse appends
  WalStats stats_;
};

}  // namespace nors::serve
