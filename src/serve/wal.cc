#include "serve/wal.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "core/serialize.h"
#include "util/check.h"
#include "util/failpoint.h"

namespace nors::serve {

namespace {

constexpr std::uint64_t kSegMagic = 0x314C415753524F4Eull;  // "NORSWAL1"
constexpr std::uint32_t kWalVersion = 1;
constexpr std::uint32_t kRecMagic = 0x3152574Eu;  // "NWR1"
constexpr std::uint32_t kFlagSnapshot = 1u;

template <typename T>
T read_le(const std::uint8_t* p) {
  T v;
  std::memcpy(&v, p, sizeof(T));
  return v;
}

template <typename T>
void write_le(std::uint8_t* p, T v) {
  std::memcpy(p, &v, sizeof(T));
}

std::uint64_t fnv1a64(const std::uint8_t* p, std::size_t len) {
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

std::int64_t steady_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

[[noreturn]] void throw_errno(const char* what, int err) {
  throw WalError(std::string(what) + ": " + std::strerror(err));
}

/// fsync the directory itself so segment creates/renames/unlinks are
/// durable — a WAL whose records are safe but whose *name* is not would
/// vanish wholesale on reboot.
void sync_dir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) throw_errno("wal: open dir for fsync", errno);
  const int rc = ::fsync(fd);
  const int err = errno;
  ::close(fd);
  if (rc != 0) throw_errno("wal: fsync dir", err);
}

bool parse_segment_name(const std::string& name, std::uint64_t& base) {
  if (name.size() != 4 + 16 + 4) return false;
  if (name.compare(0, 4, "wal-") != 0) return false;
  if (name.compare(20, 4, ".log") != 0) return false;
  base = 0;
  for (std::size_t i = 4; i < 20; ++i) {
    const char c = name[i];
    std::uint64_t digit;
    if (c >= '0' && c <= '9') digit = static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f') digit = static_cast<std::uint64_t>(c - 'a' + 10);
    else return false;
    base = (base << 4) | digit;
  }
  return true;
}

std::vector<std::uint8_t> read_whole_file(int fd, const std::string& path) {
  struct stat st{};
  if (::fstat(fd, &st) != 0) throw_errno("wal: fstat segment", errno);
  std::vector<std::uint8_t> buf(static_cast<std::size_t>(st.st_size));
  std::size_t got = 0;
  while (got < buf.size()) {
    const ssize_t k = ::read(fd, buf.data() + got, buf.size() - got);
    if (k < 0) {
      if (errno == EINTR) continue;
      throw WalError("wal: read " + path + ": " + std::strerror(errno));
    }
    if (k == 0) break;  // raced a concurrent truncate; take what we have
    got += static_cast<std::size_t>(k);
  }
  buf.resize(got);
  return buf;
}

}  // namespace

FsyncPolicy parse_fsync_policy(const std::string& s) {
  if (s == "always") return FsyncPolicy::kAlways;
  if (s == "interval") return FsyncPolicy::kInterval;
  if (s == "off") return FsyncPolicy::kOff;
  throw std::runtime_error("unknown fsync policy '" + s +
                           "' (want always/interval/off)");
}

std::vector<std::uint8_t> Wal::encode_segment_header(std::uint64_t base_seq) {
  std::vector<std::uint8_t> h(kSegHeaderBytes, 0);
  write_le<std::uint64_t>(h.data(), kSegMagic);
  write_le<std::uint32_t>(h.data() + 8, kWalVersion);
  write_le<std::uint32_t>(h.data() + 12, 0);
  write_le<std::uint64_t>(h.data() + 16, base_seq);
  return h;
}

std::vector<std::uint8_t> Wal::encode_record(
    std::uint64_t seq, bool snapshot, std::span<const EdgeUpdate> events) {
  std::vector<std::uint8_t> body;
  encode_edge_updates(body, events);
  NORS_CHECK_MSG(body.size() <= kMaxWalBody, "wal record body over cap");
  std::vector<std::uint8_t> rec(kRecHeaderBytes + body.size() +
                                kRecTrailerBytes);
  std::uint8_t* p = rec.data();
  write_le<std::uint32_t>(p, kRecMagic);
  write_le<std::uint32_t>(p + 4, static_cast<std::uint32_t>(body.size()));
  write_le<std::uint64_t>(p + 8, seq);
  write_le<std::uint32_t>(p + 16, snapshot ? kFlagSnapshot : 0u);
  write_le<std::uint32_t>(p + 20, 0);
  if (!body.empty()) std::memcpy(p + kRecHeaderBytes, body.data(), body.size());
  write_le<std::uint64_t>(p + kRecHeaderBytes + body.size(),
                          fnv1a64(p, kRecHeaderBytes + body.size()));
  return rec;
}

std::string Wal::segment_path(std::uint64_t base_seq) const {
  char name[32];
  std::snprintf(name, sizeof name, "wal-%016" PRIx64 ".log", base_seq);
  return dir_ + "/" + name;
}

Wal::Wal(std::string dir, WalOptions opt,
         const std::function<void(const WalRecord&)>& replay)
    : dir_(std::move(dir)), opt_(opt) {
  if (::mkdir(dir_.c_str(), 0755) != 0 && errno != EEXIST) {
    throw_errno(("wal: mkdir " + dir_).c_str(), errno);
  }
  if (util::failpoint("wal.recover") == util::FpAction::kError) {
    throw WalError("wal.recover failpoint: injected recovery failure");
  }
  last_sync_ms_ = steady_ms();
  try {
    recover(replay);
  } catch (...) {
    if (fd_ >= 0) ::close(fd_);
    throw;
  }
}

Wal::~Wal() {
  if (fd_ >= 0) {
    // Best-effort final flush; a destructor must not throw.
    if (dirty_ && opt_.fsync != FsyncPolicy::kOff) ::fdatasync(fd_);
    ::close(fd_);
  }
}

void Wal::recover(const std::function<void(const WalRecord&)>& replay) {
  // Collect wal-*.log segments, ascending base seq (hex names sort).
  std::vector<std::pair<std::uint64_t, std::string>> found;
  DIR* d = ::opendir(dir_.c_str());
  if (d == nullptr) throw_errno(("wal: opendir " + dir_).c_str(), errno);
  while (struct dirent* ent = ::readdir(d)) {
    std::uint64_t base = 0;
    if (parse_segment_name(ent->d_name, base)) {
      found.emplace_back(base, dir_ + "/" + ent->d_name);
    }
  }
  ::closedir(d);
  std::sort(found.begin(), found.end());

  for (std::size_t si = 0; si < found.size(); ++si) {
    const bool is_last = si + 1 == found.size();
    const std::string& path = found[si].second;
    const int fd = ::open(path.c_str(), O_RDWR | O_CLOEXEC);
    if (fd < 0) throw_errno(("wal: open " + path).c_str(), errno);
    std::vector<std::uint8_t> buf;
    try {
      buf = read_whole_file(fd, path);
    } catch (...) {
      ::close(fd);
      throw;
    }

    if (buf.size() < kSegHeaderBytes) {
      // A segment whose header never made it to disk: only explicable as
      // a crash during creation of the *newest* segment.
      if (!is_last) {
        ::close(fd);
        throw WalCorrupt("wal: truncated segment header mid-log: " + path);
      }
      ::close(fd);
      if (::unlink(path.c_str()) != 0) {
        throw_errno(("wal: unlink torn segment " + path).c_str(), errno);
      }
      found.pop_back();
      break;  // it was the last one
    }
    if (read_le<std::uint64_t>(buf.data()) != kSegMagic ||
        read_le<std::uint32_t>(buf.data() + 8) != kWalVersion) {
      ::close(fd);
      throw WalCorrupt("wal: bad segment magic/version: " + path);
    }
    const std::uint64_t base = read_le<std::uint64_t>(buf.data() + 16);
    if (base != found[si].first) {
      ::close(fd);
      throw WalCorrupt("wal: segment name disagrees with header: " + path);
    }
    // Even a record-less segment pins the sequence floor: its base says
    // every earlier seq was consumed — by appends in prior segments or by
    // the checkpoint/reload reset() that created it. Without this, a
    // reboot after an empty reset would restart seqs from zero and break
    // update_seq monotonicity.
    if (base > 0) last_seq_ = std::max(last_seq_, base - 1);

    std::size_t off = kSegHeaderBytes;
    std::uint64_t seg_prev_seq = 0;  // within-segment ascending check
    bool torn = false;
    std::string damage;
    while (off < buf.size()) {
      const std::size_t remaining = buf.size() - off;
      if (remaining < kRecHeaderBytes) {
        torn = true;
        break;
      }
      const std::uint8_t* p = buf.data() + off;
      if (read_le<std::uint32_t>(p) != kRecMagic) {
        // Zero-fill to EOF is a torn append on a zero-filling filesystem;
        // any other byte is damage a crash cannot produce.
        const bool all_zero = std::all_of(
            p, p + remaining, [](std::uint8_t b) { return b == 0; });
        if (all_zero) {
          torn = true;
          break;
        }
        damage = "bad record magic";
        break;
      }
      const std::uint32_t body_len = read_le<std::uint32_t>(p + 4);
      if (body_len > kMaxWalBody) {
        damage = "record body length over cap";
        break;
      }
      const std::size_t total =
          kRecHeaderBytes + body_len + kRecTrailerBytes;
      if (remaining < total) {
        torn = true;
        break;
      }
      const std::uint64_t want =
          read_le<std::uint64_t>(p + kRecHeaderBytes + body_len);
      if (fnv1a64(p, kRecHeaderBytes + body_len) != want) {
        if (remaining == total) {
          torn = true;  // checksum breaks exactly at EOF: interrupted append
          break;
        }
        damage = "record checksum mismatch";
        break;
      }
      WalRecord rec;
      rec.seq = read_le<std::uint64_t>(p + 8);
      const std::uint32_t flags = read_le<std::uint32_t>(p + 16);
      if ((flags & ~kFlagSnapshot) != 0 ||
          read_le<std::uint32_t>(p + 20) != 0) {
        damage = "unknown record flags";
        break;
      }
      rec.snapshot = (flags & kFlagSnapshot) != 0;
      if (rec.seq < base || rec.seq <= seg_prev_seq) {
        damage = "record sequence not ascending";
        break;
      }
      seg_prev_seq = rec.seq;
      try {
        const std::uint8_t* bp = p + kRecHeaderBytes;
        const std::uint8_t* bend = bp + body_len;
        bp = decode_edge_updates(bp, bend, rec.events,
                                 kMaxWalBody);  // effectively uncapped
        if (bp != bend) damage = "trailing bytes after record body";
      } catch (const std::logic_error& e) {
        damage = std::string("undecodable record body: ") + e.what();
      }
      if (!damage.empty()) break;
      if (rec.seq <= last_seq_) {
        // Checkpoint overlap: the squash summarizes this state already.
        ++stats_.records_skipped;
      } else {
        last_seq_ = rec.seq;
        ++stats_.records_recovered;
        if (replay) replay(rec);
      }
      off += total;
    }

    if (!damage.empty()) {
      ::close(fd);
      throw WalCorrupt("wal: " + damage + " at byte " + std::to_string(off) +
                       " of " + path);
    }
    if (torn) {
      if (!is_last) {
        ::close(fd);
        throw WalCorrupt("wal: torn record inside non-final segment " + path);
      }
      stats_.torn_bytes_dropped += buf.size() - off;
      if (::ftruncate(fd, static_cast<off_t>(off)) != 0) {
        const int err = errno;
        ::close(fd);
        throw_errno(("wal: truncate torn tail of " + path).c_str(), err);
      }
      if (opt_.fsync != FsyncPolicy::kOff && ::fdatasync(fd) != 0) {
        const int err = errno;
        ::close(fd);
        throw_errno(("wal: fsync truncated " + path).c_str(), err);
      }
      buf.resize(off);
    }

    segments_.push_back(path);
    if (is_last) {
      fd_ = fd;
      seg_size_ = buf.size();
      if (::lseek(fd_, static_cast<off_t>(seg_size_), SEEK_SET) < 0) {
        throw_errno("wal: seek to append position", errno);
      }
    } else {
      ::close(fd);
    }
  }

  if (segments_.empty()) open_fresh_segment(last_seq_ + 1);
}

void Wal::open_fresh_segment(std::uint64_t base_seq) {
  const std::string path = segment_path(base_seq);
  const int fd =
      ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY | O_CLOEXEC, 0644);
  if (fd < 0) throw_errno(("wal: create segment " + path).c_str(), errno);
  const auto header = encode_segment_header(base_seq);
  std::size_t wrote = 0;
  while (wrote < header.size()) {
    const ssize_t k = ::write(fd, header.data() + wrote,
                              header.size() - wrote);
    if (k < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      throw_errno("wal: write segment header", err);
    }
    wrote += static_cast<std::size_t>(k);
  }
  if (opt_.fsync != FsyncPolicy::kOff) {
    if (::fdatasync(fd) != 0) {
      const int err = errno;
      ::close(fd);
      throw_errno("wal: fsync new segment", err);
    }
    try {
      sync_dir(dir_);
    } catch (...) {
      ::close(fd);
      throw;
    }
  }
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
  seg_size_ = header.size();
  segments_.push_back(path);
}

void Wal::maybe_rotate(std::size_t incoming_bytes) {
  if (seg_size_ <= kSegHeaderBytes) return;  // never rotate an empty segment
  if (seg_size_ + incoming_bytes <= opt_.segment_bytes) return;
  // The outgoing segment must be durable before the new name appears, or
  // recovery could see a later segment whose predecessor tail is missing.
  if (dirty_) do_sync();
  open_fresh_segment(last_seq_ + 1);
}

void Wal::rollback_to(std::uint64_t size, const char* why) {
  if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) {
    // The torn record is still on disk and we cannot remove it; refuse
    // further appends so the in-memory seq and the file cannot diverge.
    // (Recovery would truncate the same bytes as a torn tail anyway.)
    broken_ = true;
    throw WalError(std::string(why) +
                   "; rollback ftruncate also failed: " +
                   std::strerror(errno));
  }
  if (::lseek(fd_, static_cast<off_t>(size), SEEK_SET) < 0) {
    broken_ = true;
    throw WalError(std::string(why) + "; rollback lseek also failed: " +
                   std::strerror(errno));
  }
  seg_size_ = size;
}

void Wal::append(std::uint64_t seq, bool snapshot,
                 std::span<const EdgeUpdate> events) {
  NORS_CHECK_MSG(!broken_, "wal is failed: reopen to recover");
  NORS_CHECK_MSG(fd_ >= 0, "wal has no live segment");
  NORS_CHECK_MSG(seq > last_seq_, "wal sequence must be ascending");
  const auto rec = encode_record(seq, snapshot, events);
  maybe_rotate(rec.size());
  const std::uint64_t at = seg_size_;

  const util::FpAction fp = util::failpoint("wal.append");
  if (fp == util::FpAction::kError) {
    throw WalError("wal.append failpoint: injected append failure");
  }
  // `partial` mode simulates the disk filling mid-record: a torn prefix
  // lands on disk, the write reports no space, and the append must roll
  // back and shed — exactly the ENOSPC shape (DESIGN.md §14).
  const std::size_t limit =
      fp == util::FpAction::kPartial ? rec.size() / 2 : rec.size();
  int err = 0;
  std::size_t wrote = 0;
  while (wrote < limit) {
    const ssize_t k = ::write(fd_, rec.data() + wrote, limit - wrote);
    if (k < 0) {
      if (errno == EINTR) continue;
      err = errno;
      break;
    }
    if (k == 0) {
      err = ENOSPC;
      break;
    }
    wrote += static_cast<std::size_t>(k);
  }
  seg_size_ += wrote;
  if (wrote < rec.size()) {
    if (err == 0) err = ENOSPC;  // the injected short write
    rollback_to(at, "wal append short write");
    throw WalError(std::string("wal append failed: ") + std::strerror(err) +
                   " (record rolled back)");
  }
  dirty_ = true;
  ++stats_.appends;
  try {
    maybe_sync();
  } catch (...) {
    // The bytes are written but not known durable: un-write them so the
    // caller's shed (no publish, no ack) matches the on-disk log.
    rollback_to(at, "wal fsync failed after append");
    throw;
  }
  last_seq_ = seq;
}

void Wal::maybe_sync() {
  switch (opt_.fsync) {
    case FsyncPolicy::kAlways:
      do_sync();
      break;
    case FsyncPolicy::kInterval: {
      const std::int64_t now = steady_ms();
      if (now - last_sync_ms_ >=
          static_cast<std::int64_t>(opt_.fsync_interval_ms)) {
        do_sync();
      }
      break;
    }
    case FsyncPolicy::kOff:
      break;
  }
}

void Wal::do_sync() {
  if (util::failpoint("wal.fsync") == util::FpAction::kError) {
    throw WalError("wal.fsync failpoint: injected fsync failure");
  }
  if (::fdatasync(fd_) != 0) throw_errno("wal: fdatasync", errno);
  ++stats_.syncs;
  dirty_ = false;
  last_sync_ms_ = steady_ms();
}

void Wal::sync() {
  NORS_CHECK_MSG(fd_ >= 0, "wal has no live segment");
  do_sync();
}

void Wal::reset(std::uint64_t last_seq,
                const std::vector<EdgeUpdate>* snapshot) {
  NORS_CHECK_MSG(snapshot == nullptr || last_seq >= 1,
                 "wal snapshot needs an applied sequence");
  const std::uint64_t base = snapshot != nullptr ? last_seq : last_seq + 1;
  const std::string tmp = dir_ + "/wal-reset.tmp";
  const std::string path = segment_path(base);
  const int fd =
      ::open(tmp.c_str(), O_CREAT | O_TRUNC | O_RDWR | O_CLOEXEC, 0644);
  if (fd < 0) throw_errno("wal: create reset segment", errno);
  try {
    std::vector<std::uint8_t> bytes = encode_segment_header(base);
    if (snapshot != nullptr) {
      const auto rec = encode_record(last_seq, /*snapshot=*/true, *snapshot);
      bytes.insert(bytes.end(), rec.begin(), rec.end());
    }
    std::size_t wrote = 0;
    while (wrote < bytes.size()) {
      const ssize_t k =
          ::write(fd, bytes.data() + wrote, bytes.size() - wrote);
      if (k < 0) {
        if (errno == EINTR) continue;
        throw_errno("wal: write reset segment", errno);
      }
      if (k == 0) throw_errno("wal: write reset segment", ENOSPC);
      wrote += static_cast<std::size_t>(k);
    }
    // The squash replaces history: it must be durable before history goes,
    // regardless of the append-path fsync policy.
    if (::fdatasync(fd) != 0) throw_errno("wal: fsync reset segment", errno);
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
      throw_errno("wal: rename reset segment", errno);
    }
    sync_dir(dir_);
    // Only now is the old history disposable.
    for (const std::string& old : segments_) {
      if (old == path) continue;
      if (::unlink(old.c_str()) != 0 && errno != ENOENT) {
        throw_errno(("wal: unlink " + old).c_str(), errno);
      }
    }
    sync_dir(dir_);
    if (fd_ >= 0) ::close(fd_);
    fd_ = fd;
    struct stat st{};
    NORS_CHECK(::fstat(fd_, &st) == 0);
    seg_size_ = static_cast<std::uint64_t>(st.st_size);
    segments_.assign(1, path);
    last_seq_ = last_seq;
    dirty_ = false;
    broken_ = false;
    last_sync_ms_ = steady_ms();
  } catch (...) {
    ::close(fd);
    ::unlink(tmp.c_str());
    throw;
  }
}

}  // namespace nors::serve
