#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "serve/frozen.h"
#include "serve/server.h"

namespace nors::serve {

class DeltaSet;

struct ShardedOptions {
  /// Number of shards K; each shard owns a contiguous vertex range
  /// (queries are dispatched by source vertex). Clamped to [1, n]. The
  /// number of *worker threads* serving the shards is resolved separately
  /// — util::resolve_threads clamps it to the hardware concurrency
  /// (NORS_THREADS_OVERSUBSCRIBE=1 restores one thread per shard), so K
  /// shards on a small machine keep their ranges and accounting without
  /// oversubscribing cores; shards map round-robin onto workers.
  int shards = 1;

  /// Per-worker entries of the (vertex, tree) → table-slot cache
  /// (serve/table_cache.h; 0 disables). Workers are long-lived, so unlike
  /// RouteServer's per-call caches these stay warm across batches.
  int cache_entries = 0;
};

/// Everything one shard has counted since construction. p50/p99 come from
/// a log-bucketed latency histogram (util/latency.h) fed one sample per
/// batch-engine block (~the per-query mean of up to 128 queries answered
/// in one pipelined route_batch call; per-query clocking inside the
/// interleaved engine is meaningless) — estimates with sub-bucket
/// resolution, not exact order statistics.
struct ShardStats {
  std::int64_t queries = 0;
  std::int64_t batches = 0;      // sub-batches executed
  std::int64_t hops = 0;         // next-hop decisions evaluated
  std::int64_t cache_hits = 0;   // 0 unless cache_entries > 0
  std::int64_t cache_misses = 0;
  std::int64_t masked = 0;       // answers re-routed past a masked tree
  std::int64_t repaired = 0;     // answers that crossed a patched link
  double p50_us = 0;
  double p99_us = 0;
};

/// Horizontally sharded serving front-end over one FrozenScheme
/// (DESIGN.md §8). The vertex space is partitioned into K contiguous
/// ranges; shard s serves the queries whose *source* falls in its range,
/// reading the shared frozen image (owned or mmap'ed — shards never copy
/// slab data, they slice the query stream, not the tables). Shards map
/// round-robin onto long-lived worker threads fed by lock-light batch
/// queues — one worker per shard up to the hardware concurrency (see
/// ShardedOptions::shards) — and every worker answers its sub-batches
/// through the pipelined FrozenScheme::route_batch() engine in blocks, so
/// aggregate throughput scales with cores while each worker's cache stays
/// hot on its own vertex ranges.
///
/// submit() is async: it partitions a batch by shard, enqueues one task
/// per shard, and returns a Batch ticket; wait() blocks until every query
/// is answered. Responses land at out[i] for queries[i] — callers always
/// see submission order, regardless of shard interleaving (the "response
/// reordering" is positional: workers write answers straight into the
/// caller's slots). Answers are bit-identical to FrozenScheme::route()
/// for any shard count (test_serve pins this).
///
/// The caller must keep `queries` and `out` alive and untouched until
/// wait() returns. Worker exceptions (bad query, corrupt state) are
/// captured and rethrown by wait() on the submitting thread; the batch
/// still completes its accounting, so the server stays usable.
class ShardedRouteServer {
 public:
  explicit ShardedRouteServer(const FrozenScheme& fs,
                              ShardedOptions opt = {});
  ~ShardedRouteServer();
  ShardedRouteServer(const ShardedRouteServer&) = delete;
  ShardedRouteServer& operator=(const ShardedRouteServer&) = delete;

  /// Completion ticket of one submit(). Copyable (shared state); a
  /// default-constructed Batch is already done.
  class Batch {
   public:
    Batch() = default;

    /// Blocks until every query of the batch is answered, then rethrows
    /// the first worker exception, if any. May be called repeatedly and
    /// from several holders of the ticket: a failed batch throws on every
    /// wait(), so no holder can mistake aborted output for answers.
    void wait();

    /// True when every query has been answered (non-blocking).
    bool done() const;

   private:
    friend class ShardedRouteServer;
    struct State;
    std::shared_ptr<State> state_;
  };

  /// Async: dispatch the batch across shard queues and return immediately.
  Batch submit(const Query* queries, std::size_t count, Decision* out);

  /// As submit(), answering through the delta overlay (serve/delta.h):
  /// masked trees are skipped with a fallback re-route, patched links
  /// charge their overridden weight, and the batch pins `delta` until it
  /// retires — the generation-swap contract net::Server relies on. A null
  /// delta serves the unpatched image (identical to plain submit()). When
  /// a worker sees a different delta sequence than its previous batch it
  /// clears its table cache (indices are delta-invariant today, but the
  /// invalidation is keyed by generation, not by that implementation
  /// detail).
  Batch submit(const Query* queries, std::size_t count, Decision* out,
               std::shared_ptr<const DeltaSet> delta);
  Batch submit(const Query* queries, std::size_t count, Decision* out,
               std::shared_ptr<const DeltaSet> delta,
               std::function<void()> on_complete);

  /// As submit(), and additionally invokes `on_complete` exactly once when
  /// every query of the batch is answered — the completion hook the
  /// network front-end (src/net) uses to finish a request without parking
  /// a thread in wait(). The callback runs on the worker thread that
  /// retires the batch's last sub-batch, after all accounting (an empty
  /// batch invokes it inline on the submitting thread). It must not throw
  /// and must not block; calling the ticket's wait() from inside it is
  /// fine (the batch is already done, so wait() returns — or rethrows the
  /// first worker error — immediately). The callback is dropped as soon as
  /// it has run, so state captured by it does not outlive the batch.
  Batch submit(const Query* queries, std::size_t count, Decision* out,
               std::function<void()> on_complete);

  /// Blocking convenience: submit + wait.
  void serve(const Query* queries, std::size_t count, Decision* out);
  void serve(const std::vector<Query>& queries, std::vector<Decision>& out);

  int shards() const { return static_cast<int>(shards_.size()); }

  /// Worker threads actually serving the shards (≤ shards(); see
  /// ShardedOptions::shards for the clamp rules).
  int workers() const { return static_cast<int>(workers_.size()); }

  /// The shard whose vertex range contains u (valid u only).
  int shard_of(graph::Vertex u) const {
    const auto s = static_cast<std::size_t>(u) / span_;
    return static_cast<int>(
        s < shards_.size() ? s : shards_.size() - 1);
  }

  ShardStats shard_stats(int shard) const;

  /// Counters summed across shards; p50/p99 over the merged histograms.
  ShardStats totals() const;

  const FrozenScheme& frozen() const { return *fs_; }
  const ShardedOptions& options() const { return opt_; }

 private:
  struct Task;
  struct Shard;
  struct Worker;
  void worker(Worker& w);
  Batch submit_impl(const Query* queries, std::size_t count, Decision* out,
                    std::shared_ptr<const DeltaSet> delta);
  static Batch attach_hook(Batch ticket, std::function<void()> on_complete);

  const FrozenScheme* fs_;
  ShardedOptions opt_;
  std::size_t span_ = 1;  // vertices per shard (last shard takes the rest)
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::unique_ptr<Worker>> workers_;
};

}  // namespace nors::serve
